/**
 * @file
 * hoop_fleet: sharded-fleet robustness harness CLI.
 *
 * Runs scheme x chaos-profile cells of the fleet harness (see
 * fleet/fleet.hh): N independent HOOP shards behind a hashing
 * front-end, an open-loop Poisson client with bounded retry /
 * backoff / deadline, and a deterministic chaos schedule crashing,
 * stalling and fault-ramping shards mid-traffic. Oracles assert that
 * no acked transaction is ever lost across online recoveries, that
 * every request resolves to a structured client outcome, and that
 * every shard is re-admitted by the end of the run.
 *
 * A violating cell is shrunk to a minimal spec and written as
 * replayable JSON; `--replay <file>` re-executes it deterministically.
 * `--inject-ack-bug` arms the seeded ack-before-durable bug on shard 0
 * (self-test: the run MUST violate). `--json` writes per-cell
 * counters and fleet/per-shard latency tails for CI artifact diffing.
 *
 * Exit codes: 0 = clean matrix, 1 = violations found, 2 = usage
 * error, 3 = watchdog budget exceeded.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/watchdog.hh"
#include "fleet/chaos.hh"
#include "fleet/fleet.hh"

namespace
{

using namespace hoopnvm;

constexpr const char *kUsage =
    "usage: hoop_fleet [options]\n"
    "  --scheme S      hoop|redo|undo|osp|lsm|lad|all   (default all)\n"
    "  --chaos C       none|crashes|stalls|faults|mixed|all\n"
    "                  (default all = crashes,stalls,faults,mixed)\n"
    "  --workload W    vector|hashmap|queue|rbtree|btree|ycsb|tpcc\n"
    "                  (default vector)\n"
    "  --shards N      shard fault domains (default 4)\n"
    "  --cores N       cores per shard (default 2)\n"
    "  --requests N    client requests per cell (default 1500)\n"
    "  --seed N        deterministic seed (default 42)\n"
    "  --warmup N      warmup tx per core per shard (default 10)\n"
    "  --threads N     recovery threads (default 2)\n"
    "  --events N      chaos events per shard (default 2)\n"
    "  --budget-ms N   wall-clock watchdog: abort with exit code 3 if\n"
    "                  progress stalls longer than N ms (0 = off)\n"
    "  --inject-ack-bug  seeded bug self-test: shard 0 acks commits\n"
    "                  before durability; the run must detect it\n"
    "  --out DIR       write reproducer JSON files here (default .)\n"
    "  --json FILE     write per-cell counters as JSON to FILE\n"
    "  --replay FILE   re-execute one fleet spec JSON and exit\n";

const Scheme kPersistentSchemes[] = {Scheme::Hoop, Scheme::OptRedo,
                                     Scheme::OptUndo, Scheme::Osp,
                                     Scheme::Lsm, Scheme::Lad};

const char *kAllProfiles[] = {"crashes", "stalls", "faults", "mixed"};

int
usageError(const std::string &msg)
{
    std::fprintf(stderr, "hoop_fleet: %s\n%s", msg.c_str(), kUsage);
    return 2;
}

void
printResult(const FleetResult &r)
{
    std::printf("  outcomes: acked %llu  rejected %llu  timed out "
                "%llu  shed %llu\n",
                static_cast<unsigned long long>(r.acked),
                static_cast<unsigned long long>(r.rejected),
                static_cast<unsigned long long>(r.timedOut),
                static_cast<unsigned long long>(r.shed));
    std::printf("  client: retries %llu  backoff ticks %llu  deadline "
                "misses %llu  shed admissions %llu\n",
                static_cast<unsigned long long>(r.retryAttempts),
                static_cast<unsigned long long>(r.backoffTicks),
                static_cast<unsigned long long>(r.deadlineMisses),
                static_cast<unsigned long long>(r.shedAdmissions));
    std::printf("  chaos: crashes %llu  stalls %llu  fault ramps %llu "
                " recoveries %llu\n",
                static_cast<unsigned long long>(r.chaosCrashes),
                static_cast<unsigned long long>(r.stallWindows),
                static_cast<unsigned long long>(r.faultRamps),
                static_cast<unsigned long long>(r.recoveries));
    std::printf("  latency ns: p50 %.0f  p99 %.0f  p999 %.0f  max "
                "%.0f (%llu samples)\n",
                r.latency.p50Ns, r.latency.p99Ns, r.latency.p999Ns,
                r.latency.maxNs,
                static_cast<unsigned long long>(r.latency.count));
}

void
appendLatencyJson(std::ostringstream &os, const LatencySummary &l)
{
    os << "{\"count\": " << l.count << ", \"p50_ns\": " << l.p50Ns
       << ", \"p95_ns\": " << l.p95Ns << ", \"p99_ns\": " << l.p99Ns
       << ", \"p999_ns\": " << l.p999Ns << ", \"max_ns\": " << l.maxNs
       << ", \"mean_ns\": " << l.meanNs << "}";
}

void
appendCellJson(std::string &doc, const FleetSpec &spec,
               const FleetResult &r, bool first)
{
    std::ostringstream os;
    os << (first ? "" : ",") << "\n    {\"scheme\": \""
       << schemeToken(spec.scheme) << "\", \"chaos\": \""
       << spec.chaosProfile << "\", \"workload\": \"" << spec.workload
       << "\", \"shards\": " << spec.shards << ", \"violated\": "
       << (r.violated ? "true" : "false")
       << ", \"requests\": " << r.requests
       << ", \"acked\": " << r.acked
       << ", \"rejected\": " << r.rejected
       << ", \"timed_out\": " << r.timedOut
       << ", \"shed\": " << r.shed
       << ", \"retry_attempts\": " << r.retryAttempts
       << ", \"backoff_ticks\": " << r.backoffTicks
       << ", \"deadline_misses\": " << r.deadlineMisses
       << ", \"shed_admissions\": " << r.shedAdmissions
       << ", \"recoveries\": " << r.recoveries
       << ", \"chaos_crashes\": " << r.chaosCrashes
       << ", \"stall_windows\": " << r.stallWindows
       << ", \"fault_ramps\": " << r.faultRamps
       << ", \"latency\": ";
    appendLatencyJson(os, r.latency);
    os << ", \"per_shard\": [";
    for (std::size_t s = 0; s < r.shards.size(); ++s) {
        const FleetShardReport &sh = r.shards[s];
        os << (s ? ", " : "") << "{\"shard\": " << sh.shard
           << ", \"acked\": " << sh.counters.acked
           << ", \"rejected_admission\": "
           << sh.counters.rejectedAdmission
           << ", \"rejected_mid_tx\": " << sh.counters.rejectedMidTx
           << ", \"recoveries\": " << sh.counters.recoveries
           << ", \"chaos_crashes\": " << sh.counters.chaosCrashes
           << ", \"stall_windows\": " << sh.counters.stallWindows
           << ", \"fault_ramps\": " << sh.counters.faultRamps
           << ", \"retry_attempts\": " << sh.retryAttempts
           << ", \"backoff_ticks\": " << sh.backoffTicks
           << ", \"deadline_misses\": " << sh.deadlineMisses
           << ", \"shed_admissions\": " << sh.shedAdmissions
           << ", \"admitting_at_end\": "
           << (sh.admittingAtEnd ? "true" : "false")
           << ", \"retired_units\": " << sh.retiredUnits
           << ", \"degraded_fraction\": " << sh.degradedFraction
           << ", \"latency\": ";
        appendLatencyJson(os, sh.latency);
        os << "}";
    }
    os << "]}";
    doc += os.str();
}

int
replay(const std::string &path, std::uint64_t budget_ms)
{
    std::ifstream in(path);
    if (!in)
        return usageError("cannot open replay file " + path);
    std::stringstream ss;
    ss << in.rdbuf();

    FleetSpec spec;
    std::string err;
    if (!FleetSpec::fromJson(ss.str(), &spec, &err))
        return usageError("malformed fleet spec: " + err);

    std::printf("replaying %s (%s/%s, chaos %s, seed %llu, %u "
                "shards)\n",
                path.c_str(), schemeToken(spec.scheme),
                spec.workload.c_str(), spec.chaosProfile.c_str(),
                static_cast<unsigned long long>(spec.seed),
                spec.shards);
    Watchdog watchdog(budget_ms);
    const FleetResult r = runFleet(
        spec,
        [&watchdog](const std::string &label) { watchdog.beat(label); });
    printResult(r);
    if (r.violated) {
        std::printf("  VIOLATION: %s\n", r.detail.c_str());
        return 1;
    }
    std::printf("  no violation\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hoopnvm;

    std::string scheme_arg = "all";
    std::string chaos_arg = "all";
    std::string out_dir = ".";
    std::string json_path;
    std::string replay_path;
    FleetSpec base;
    std::uint64_t budget_ms = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v = nullptr;
        if (a == "--scheme") {
            if (!(v = next()))
                return usageError("--scheme needs a value");
            scheme_arg = v;
        } else if (a == "--chaos") {
            if (!(v = next()))
                return usageError("--chaos needs a value");
            chaos_arg = v;
        } else if (a == "--workload") {
            if (!(v = next()))
                return usageError("--workload needs a value");
            base.workload = v;
        } else if (a == "--shards") {
            if (!(v = next()))
                return usageError("--shards needs a value");
            base.shards = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
        } else if (a == "--cores") {
            if (!(v = next()))
                return usageError("--cores needs a value");
            base.coresPerShard = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
        } else if (a == "--requests") {
            if (!(v = next()))
                return usageError("--requests needs a value");
            base.requests = std::strtoull(v, nullptr, 10);
        } else if (a == "--seed") {
            if (!(v = next()))
                return usageError("--seed needs a value");
            base.seed = std::strtoull(v, nullptr, 10);
        } else if (a == "--warmup") {
            if (!(v = next()))
                return usageError("--warmup needs a value");
            base.warmupTx = std::strtoull(v, nullptr, 10);
        } else if (a == "--threads") {
            if (!(v = next()))
                return usageError("--threads needs a value");
            base.recoverThreads = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
        } else if (a == "--events") {
            if (!(v = next()))
                return usageError("--events needs a value");
            base.chaosEventsPerShard = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
        } else if (a == "--budget-ms") {
            if (!(v = next()))
                return usageError("--budget-ms needs a value");
            budget_ms = std::strtoull(v, nullptr, 10);
        } else if (a == "--inject-ack-bug") {
            base.injectAckBeforeDurable = true;
        } else if (a == "--out") {
            if (!(v = next()))
                return usageError("--out needs a value");
            out_dir = v;
        } else if (a == "--json") {
            if (!(v = next()))
                return usageError("--json needs a value");
            json_path = v;
        } else if (a == "--replay") {
            if (!(v = next()))
                return usageError("--replay needs a value");
            replay_path = v;
        } else if (a == "--help" || a == "-h") {
            std::fputs(kUsage, stdout);
            return 0;
        } else {
            return usageError("unknown option " + a);
        }
    }

    if (base.shards == 0 || base.coresPerShard == 0 ||
        base.requests == 0)
        return usageError("--shards, --cores and --requests must be "
                          "positive");

    if (!replay_path.empty())
        return replay(replay_path, budget_ms);

    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
        std::fprintf(stderr,
                     "hoop_fleet: cannot create --out %s: %s\n",
                     out_dir.c_str(), ec.message().c_str());
        return 2;
    }

    std::vector<Scheme> schemes;
    if (scheme_arg == "all") {
        for (Scheme s : kPersistentSchemes)
            schemes.push_back(s);
    } else {
        Scheme s;
        if (!schemeFromToken(scheme_arg, &s) || s == Scheme::Native)
            return usageError("unknown scheme " + scheme_arg);
        schemes.push_back(s);
    }

    std::vector<std::string> profiles;
    if (chaos_arg == "all") {
        profiles.assign(std::begin(kAllProfiles),
                        std::end(kAllProfiles));
    } else {
        if (!chaosProfileKnown(chaos_arg))
            return usageError("unknown chaos profile " + chaos_arg);
        profiles.push_back(chaos_arg);
    }

    Watchdog watchdog(budget_ms);
    const FleetProgress progress =
        [&watchdog](const std::string &label) { watchdog.beat(label); };

    std::string cells_json;
    std::size_t violation_files = 0;
    std::size_t total_violations = 0;
    bool first_cell = true;

    for (Scheme scheme : schemes) {
        for (const std::string &profile : profiles) {
            FleetSpec spec = base;
            spec.scheme = scheme;
            spec.chaosProfile = profile;

            const FleetResult r = runFleet(spec, progress);
            std::printf("%-6s %-8s %s\n", schemeToken(scheme),
                        profile.c_str(),
                        r.violated ? "VIOLATED" : "clean");
            printResult(r);
            appendCellJson(cells_json, spec, r, first_cell);
            first_cell = false;

            if (r.violated) {
                ++total_violations;
                std::string detail = r.detail;
                const FleetSpec repro =
                    shrinkFleet(spec, &detail, progress);
                const std::string path =
                    out_dir + "/fleet_violation_" +
                    schemeToken(scheme) + "_" + profile + "_" +
                    std::to_string(violation_files++) + ".json";
                std::ofstream f(path);
                f << repro.toJson();
                std::printf("  VIOLATION: %s\n  reproducer: %s\n",
                            detail.c_str(), path.c_str());
            }
        }
    }

    if (!json_path.empty()) {
        std::ofstream f(json_path);
        f << "{\n  \"tool\": \"hoop_fleet\",\n  \"cells\": ["
          << cells_json << "\n  ]\n}\n";
    }

    std::printf("total: %zu cell(s) violated\n", total_violations);
    return total_violations == 0 ? 0 : 1;
}
