/**
 * @file
 * hoop_soak: media-fault endurance harness CLI.
 *
 * Runs every requested scheme x workload cell through an escalating
 * media-fault ramp (see check/soak.hh), asserting that committed data
 * survives and that capacity exhaustion degrades gracefully into
 * structured TxRejected outcomes instead of aborts or wedges. A
 * violating cell is shrunk to a minimal spec and written as replayable
 * JSON; `--replay <file>` re-executes it deterministically. `--json`
 * writes the per-cell counters for CI artifact diffing.
 *
 * Exit codes: 0 = clean matrix, 1 = violations found, 2 = usage
 * error, 3 = per-phase watchdog budget exceeded.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/soak.hh"
#include "check/watchdog.hh"

namespace
{

using namespace hoopnvm;

constexpr const char *kUsage =
    "usage: hoop_soak [options]\n"
    "  --scheme S      hoop|redo|undo|osp|lsm|lad|all   (default all)\n"
    "  --workload W    vector|hashmap|queue|rbtree|btree|ycsb|tpcc|all\n"
    "                  (default all)\n"
    "  --seed N        deterministic seed (default 42)\n"
    "  --phases N      escalation steps per cell (default 4)\n"
    "  --tx N          transactions per core per phase (default 60)\n"
    "  --warmup N      fault-free warmup transactions (default 10)\n"
    "  --fault-prob P  per-word fault probability of phase 0\n"
    "                  (default 0.01)\n"
    "  --escalation X  per-phase probability multiplier (default 2)\n"
    "  --threads N     recovery threads (default 2)\n"
    "  --budget-ms N   per-phase wall-clock watchdog: abort with exit\n"
    "                  code 3 if any single phase runs longer than\n"
    "                  N ms (default 0 = off)\n"
    "  --out DIR       write reproducer JSON files here (default .)\n"
    "  --json FILE     write per-cell counters as JSON to FILE\n"
    "  --replay FILE   re-execute one soak spec JSON and exit\n";

const char *kAllWorkloads[] = {"vector", "hashmap", "queue", "rbtree",
                               "btree",  "ycsb",    "tpcc"};

const Scheme kPersistentSchemes[] = {Scheme::Hoop, Scheme::OptRedo,
                                     Scheme::OptUndo, Scheme::Osp,
                                     Scheme::Lsm, Scheme::Lad};

int
usageError(const std::string &msg)
{
    std::fprintf(stderr, "hoop_soak: %s\n%s", msg.c_str(), kUsage);
    return 2;
}

void
printResult(const SoakResult &r)
{
    std::printf("  admission rejects %llu  mid-tx unwinds %llu  "
                "recoveries %llu\n",
                static_cast<unsigned long long>(r.rejectedAdmission),
                static_cast<unsigned long long>(r.rejectedMidTx),
                static_cast<unsigned long long>(r.recoveries));
    std::printf("  retired units %llu  corrected words %llu  "
                "read retries %llu  uncorrectable reads %llu  "
                "degraded %.3f\n",
                static_cast<unsigned long long>(r.retiredUnits),
                static_cast<unsigned long long>(r.correctedWords),
                static_cast<unsigned long long>(r.readRetries),
                static_cast<unsigned long long>(r.uncorrectableReads),
                r.degradedFraction);
}

int
replay(const std::string &path, std::uint64_t budget_ms)
{
    std::ifstream in(path);
    if (!in)
        return usageError("cannot open replay file " + path);
    std::stringstream ss;
    ss << in.rdbuf();

    SoakSpec spec;
    std::string err;
    if (!SoakSpec::fromJson(ss.str(), &spec, &err))
        return usageError("malformed soak spec: " + err);

    std::printf("replaying %s (%s/%s, seed %llu, %u phases)\n",
                path.c_str(), schemeToken(spec.scheme),
                spec.workload.c_str(),
                static_cast<unsigned long long>(spec.seed),
                spec.phases);
    Watchdog watchdog(budget_ms);
    const SoakResult r = runSoak(spec, [&watchdog](
                                           const std::string &label) {
        watchdog.beat(label);
    });
    printResult(r);
    if (r.violated) {
        std::printf("  VIOLATION: %s\n", r.detail.c_str());
        return 1;
    }
    std::printf("  no violation\n");
    return 0;
}

void
appendCellJson(std::string &doc, const SoakSpec &spec,
               const SoakResult &r, bool first)
{
    std::ostringstream os;
    os << (first ? "" : ",") << "\n    {\"scheme\": \""
       << schemeToken(spec.scheme) << "\", \"workload\": \""
       << spec.workload << "\", \"violated\": "
       << (r.violated ? "true" : "false")
       << ", \"rejected_admission\": " << r.rejectedAdmission
       << ", \"rejected_mid_tx\": " << r.rejectedMidTx
       << ", \"recoveries\": " << r.recoveries
       << ", \"retired_units\": " << r.retiredUnits
       << ", \"corrected_words\": " << r.correctedWords
       << ", \"read_retries\": " << r.readRetries
       << ", \"uncorrectable_reads\": " << r.uncorrectableReads
       << ", \"degraded_fraction\": " << r.degradedFraction << "}";
    doc += os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hoopnvm;

    std::string scheme_arg = "all";
    std::string workload_arg = "all";
    std::string out_dir = ".";
    std::string json_path;
    std::string replay_path;
    SoakSpec base;
    std::uint64_t budget_ms = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v = nullptr;
        if (a == "--scheme") {
            if (!(v = next()))
                return usageError("--scheme needs a value");
            scheme_arg = v;
        } else if (a == "--workload") {
            if (!(v = next()))
                return usageError("--workload needs a value");
            workload_arg = v;
        } else if (a == "--seed") {
            if (!(v = next()))
                return usageError("--seed needs a value");
            base.seed = std::strtoull(v, nullptr, 10);
        } else if (a == "--phases") {
            if (!(v = next()))
                return usageError("--phases needs a value");
            base.phases = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
        } else if (a == "--tx") {
            if (!(v = next()))
                return usageError("--tx needs a value");
            base.txPerPhase = std::strtoull(v, nullptr, 10);
        } else if (a == "--warmup") {
            if (!(v = next()))
                return usageError("--warmup needs a value");
            base.warmupTx = std::strtoull(v, nullptr, 10);
        } else if (a == "--fault-prob") {
            if (!(v = next()))
                return usageError("--fault-prob needs a value");
            base.faultProb = std::strtod(v, nullptr);
        } else if (a == "--escalation") {
            if (!(v = next()))
                return usageError("--escalation needs a value");
            base.escalation = std::strtod(v, nullptr);
        } else if (a == "--threads") {
            if (!(v = next()))
                return usageError("--threads needs a value");
            base.recoverThreads = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
        } else if (a == "--budget-ms") {
            if (!(v = next()))
                return usageError("--budget-ms needs a value");
            budget_ms = std::strtoull(v, nullptr, 10);
        } else if (a == "--out") {
            if (!(v = next()))
                return usageError("--out needs a value");
            out_dir = v;
        } else if (a == "--json") {
            if (!(v = next()))
                return usageError("--json needs a value");
            json_path = v;
        } else if (a == "--replay") {
            if (!(v = next()))
                return usageError("--replay needs a value");
            replay_path = v;
        } else if (a == "--help" || a == "-h") {
            std::fputs(kUsage, stdout);
            return 0;
        } else {
            return usageError("unknown option " + a);
        }
    }

    if (base.phases == 0 || base.txPerPhase == 0)
        return usageError("--phases and --tx must be positive");

    if (!replay_path.empty())
        return replay(replay_path, budget_ms);

    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
        std::fprintf(stderr, "hoop_soak: cannot create --out %s: %s\n",
                     out_dir.c_str(), ec.message().c_str());
        return 2;
    }

    std::vector<Scheme> schemes;
    if (scheme_arg == "all") {
        for (Scheme s : kPersistentSchemes)
            schemes.push_back(s);
    } else {
        Scheme s;
        if (!schemeFromToken(scheme_arg, &s) || s == Scheme::Native)
            return usageError("unknown scheme " + scheme_arg);
        schemes.push_back(s);
    }

    std::vector<std::string> workloads;
    if (workload_arg == "all")
        workloads.assign(std::begin(kAllWorkloads),
                         std::end(kAllWorkloads));
    else
        workloads.push_back(workload_arg);

    Watchdog watchdog(budget_ms);
    const SoakProgress progress = [&watchdog](
                                      const std::string &label) {
        watchdog.beat(label);
    };

    std::string cells_json;
    std::size_t violation_files = 0;
    std::size_t total_violations = 0;
    bool first_cell = true;

    for (Scheme scheme : schemes) {
        for (const std::string &wl : workloads) {
            SoakSpec spec = base;
            spec.scheme = scheme;
            spec.workload = wl;

            const SoakResult r = runSoak(spec, progress);
            std::printf("%-6s %-8s %s\n", schemeToken(scheme),
                        wl.c_str(),
                        r.violated ? "VIOLATED" : "clean");
            printResult(r);
            appendCellJson(cells_json, spec, r, first_cell);
            first_cell = false;

            if (r.violated) {
                ++total_violations;
                std::string detail = r.detail;
                const SoakSpec repro =
                    shrinkSoak(spec, &detail, progress);
                const std::string path =
                    out_dir + "/soak_violation_" +
                    schemeToken(scheme) + "_" + wl + "_" +
                    std::to_string(violation_files++) + ".json";
                std::ofstream f(path);
                f << repro.toJson();
                std::printf("  VIOLATION: %s\n  reproducer: %s\n",
                            detail.c_str(), path.c_str());
            }
        }
    }

    if (!json_path.empty()) {
        std::ofstream f(json_path);
        f << "{\n  \"cells\": [" << cells_json << "\n  ]\n}\n";
    }

    std::printf("total: %zu cell(s) violated\n", total_violations);
    return total_violations == 0 ? 0 : 1;
}
