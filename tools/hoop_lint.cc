/**
 * @file
 * hoop_lint: the determinism & durability invariant checker CLI.
 *
 * Scans src/ bench/ tools/ tests/ (or explicit paths) with the
 * token-level rule engine in src/lint/ and prints file:line
 * diagnostics. Suppression is in-source (`// lint: <rule>-ok
 * (reason)`) or via the checked-in baseline file (lint_baseline.txt
 * at the repo root — kept empty by policy; entries exist only to
 * stage large migrations and go stale loudly).
 *
 * --self-test mirrors ordercheck's seeded-bug knobs: every rule must
 * fire on its embedded bad fixture, stay quiet on the clean fixture,
 * and the real tree must report 0 unsuppressed violations.
 *
 * Exit codes match the other check tools: 0 = clean, 1 = violations
 * (or malformed annotations / stale baseline entries / failed
 * self-test), 2 = usage error.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hh"

namespace
{

using namespace hoopnvm;

constexpr const char *kUsage =
    "usage: hoop_lint [options] [paths...]\n"
    "  paths           files or directories to scan, relative to\n"
    "                  --root (default: src bench tools tests)\n"
    "  --root DIR      repository root (default .)\n"
    "  --baseline FILE suppression baseline (default\n"
    "                  <root>/lint_baseline.txt when present)\n"
    "  --list-rules    print the rule catalog and exit\n"
    "  --self-test     prove every rule live on its embedded bad\n"
    "                  fixture, quiet on the clean fixture, and the\n"
    "                  real tree unsuppressed-clean\n"
    "  --verbose       also print suppressed hits with their reasons\n";

int
usageError(const std::string &msg)
{
    std::fprintf(stderr, "hoop_lint: %s\n%s", msg.c_str(), kUsage);
    return 2;
}

bool
lintableExtension(const std::filesystem::path &p)
{
    const std::string e = p.extension().string();
    return e == ".cc" || e == ".hh" || e == ".cpp" || e == ".hpp" ||
           e == ".h";
}

bool
readFile(const std::filesystem::path &p, std::string *out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

/** Collect lintable files under root/path, repo-relative, sorted. */
bool
collectFiles(const std::filesystem::path &root,
             const std::vector<std::string> &paths,
             std::vector<lint::SourceFile> *files)
{
    namespace fs = std::filesystem;
    std::vector<std::string> rels;
    for (const std::string &p : paths) {
        const fs::path full = root / p;
        std::error_code ec;
        if (fs::is_directory(full, ec)) {
            for (fs::recursive_directory_iterator
                     it(full, fs::directory_options::skip_permission_denied,
                        ec),
                 end;
                 it != end && !ec; it.increment(ec)) {
                if (!it->is_regular_file(ec) ||
                    !lintableExtension(it->path()))
                    continue;
                rels.push_back(
                    fs::relative(it->path(), root, ec).generic_string());
            }
        } else if (fs::is_regular_file(full, ec)) {
            rels.push_back(fs::path(p).generic_string());
        } else {
            std::fprintf(stderr, "hoop_lint: no such path: %s\n",
                         full.string().c_str());
            return false;
        }
    }
    std::sort(rels.begin(), rels.end());
    rels.erase(std::unique(rels.begin(), rels.end()), rels.end());
    for (const std::string &rel : rels) {
        lint::SourceFile sf;
        sf.path = rel;
        if (!readFile(root / rel, &sf.content)) {
            std::fprintf(stderr, "hoop_lint: cannot read %s\n",
                         rel.c_str());
            return false;
        }
        files->push_back(std::move(sf));
    }
    return true;
}

void
printReport(const lint::LintReport &rep, bool verbose)
{
    for (const lint::Diagnostic &d : rep.diags) {
        if (d.suppressed) {
            if (verbose)
                std::printf("%s:%u: suppressed [%s] (%s)\n",
                            d.file.c_str(), d.line, d.rule.c_str(),
                            d.suppressedBy.c_str());
            continue;
        }
        std::printf("%s:%u: error: [%s] %s\n", d.file.c_str(), d.line,
                    d.rule.c_str(), d.message.c_str());
    }
    for (const std::string &e : rep.annotationErrors)
        std::printf("%s: error: %s\n", e.c_str(),
                    "(malformed suppressions count as violations)");
    for (const std::string &b : rep.staleBaseline)
        std::printf("baseline: error: stale entry '%s' matches "
                    "nothing — remove it\n",
                    b.c_str());
}

int
selfTest(const std::vector<lint::SourceFile> &treeFiles,
         const lint::LintOptions &opts)
{
    bool ok = true;

    // 1. Every rule fires on its bad fixture — and only rules with a
    // fixture exist (rule without proof-of-life = dead rule).
    std::vector<std::string> provenRules;
    for (const lint::Fixture &fx : lint::badFixtures()) {
        lint::LintReport rep = lint::lintFiles(
            {{fx.path, fx.code}}, lint::LintOptions{});
        std::size_t fires = 0;
        for (const lint::Diagnostic &d : rep.diags) {
            if (d.rule == fx.rule && !d.suppressed)
                ++fires;
        }
        if (fires == 0) {
            std::printf("self-test: rule %-16s DEAD (bad fixture did "
                        "not fire)\n",
                        fx.rule);
            ok = false;
        } else {
            std::printf("self-test: rule %-16s fires %zu on bad "
                        "fixture\n",
                        fx.rule, fires);
        }
        provenRules.push_back(fx.rule);
    }
    for (const lint::RuleInfo &r : lint::ruleCatalog()) {
        if (std::find(provenRules.begin(), provenRules.end(),
                      r.name) == provenRules.end()) {
            std::printf("self-test: rule %-16s has NO bad fixture\n",
                        r.name);
            ok = false;
        }
    }

    // 2. The clean fixture stays quiet under every rule.
    {
        lint::LintReport rep =
            lint::lintFiles({lint::cleanFixture()}, lint::LintOptions{});
        if (rep.unsuppressed != 0 || !rep.annotationErrors.empty()) {
            std::printf("self-test: clean fixture raised %zu "
                        "diagnostics:\n",
                        rep.unsuppressed);
            printReport(rep, false);
            ok = false;
        } else {
            std::printf("self-test: clean fixture quiet\n");
        }
    }

    // 3. The real tree reports 0 unsuppressed violations.
    {
        lint::LintReport rep = lint::lintFiles(treeFiles, opts);
        std::size_t suppressed = 0;
        for (const lint::Diagnostic &d : rep.diags)
            suppressed += d.suppressed ? 1 : 0;
        if (!rep.clean()) {
            std::printf("self-test: tree NOT clean (%zu unsuppressed, "
                        "%zu annotation errors, %zu stale baseline):\n",
                        rep.unsuppressed, rep.annotationErrors.size(),
                        rep.staleBaseline.size());
            printReport(rep, false);
            ok = false;
        } else {
            std::printf("self-test: tree clean (%zu files, %zu "
                        "suppressed by annotation/baseline)\n",
                        treeFiles.size(), suppressed);
        }
    }

    std::printf("self-test: %s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    namespace fs = std::filesystem;

    std::string root = ".";
    std::string baselinePath;
    std::vector<std::string> paths;
    bool listRules = false;
    bool doSelfTest = false;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--root") {
            const char *v = next();
            if (!v)
                return usageError("--root needs a value");
            root = v;
        } else if (a == "--baseline") {
            const char *v = next();
            if (!v)
                return usageError("--baseline needs a value");
            baselinePath = v;
        } else if (a == "--list-rules") {
            listRules = true;
        } else if (a == "--self-test") {
            doSelfTest = true;
        } else if (a == "--verbose") {
            verbose = true;
        } else if (a == "--help" || a == "-h") {
            std::fputs(kUsage, stdout);
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            return usageError("unknown option " + a);
        } else {
            paths.push_back(a);
        }
    }

    if (listRules) {
        for (const lint::RuleInfo &r : lint::ruleCatalog())
            std::printf("%-16s %s\n", r.name, r.summary);
        return 0;
    }

    if (paths.empty())
        paths = {"src", "bench", "tools", "tests"};

    lint::LintOptions opts;
    {
        fs::path bp = baselinePath.empty()
                          ? fs::path(root) / "lint_baseline.txt"
                          : fs::path(baselinePath);
        std::string text;
        if (readFile(bp, &text)) {
            opts.baseline = lint::parseBaselineText(text);
        } else if (!baselinePath.empty()) {
            return usageError("cannot read baseline " + baselinePath);
        }
    }

    std::vector<lint::SourceFile> files;
    if (!collectFiles(root, paths, &files))
        return 2;
    if (files.empty())
        return usageError("no lintable files found");

    if (doSelfTest)
        return selfTest(files, opts);

    lint::LintReport rep = lint::lintFiles(files, opts);
    printReport(rep, verbose);

    std::size_t suppressed = 0;
    for (const lint::Diagnostic &d : rep.diags)
        suppressed += d.suppressed ? 1 : 0;
    std::printf("hoop_lint: %zu files, %zu violations "
                "(%zu suppressed), %zu annotation errors, %zu stale "
                "baseline entries\n",
                files.size(), rep.unsuppressed, suppressed,
                rep.annotationErrors.size(), rep.staleBaseline.size());
    return rep.clean() ? 0 : 1;
}
