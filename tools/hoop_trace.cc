/**
 * @file
 * hoop_trace: run one (scheme, workload) simulation with the Chrome
 * trace-event tracer armed and write a Perfetto-loadable trace.
 *
 * The trace contains per-core transaction spans, GC scan/migrate spans,
 * and — with --crash — the post-crash recovery phases. Load the output
 * in https://ui.perfetto.dev or chrome://tracing.
 *
 * Exit codes: 0 = trace written, 1 = simulation or write failure,
 * 2 = usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/system.hh"
#include "stats/trace.hh"
#include "workloads/registry.hh"

namespace
{

using namespace hoopnvm;

constexpr const char *kUsage =
    "usage: hoop_trace [options]\n"
    "  --out FILE      trace output path       (default hoop_trace.json)\n"
    "  --scheme S      hoop|redo|undo|osp|lsm|lad|native (default hoop)\n"
    "  --workload W    vector|hashmap|queue|rbtree|btree|ycsb|tpcc\n"
    "                  (default hashmap)\n"
    "  --txs N         transactions per core   (default 200)\n"
    "  --cores N       simulated cores         (default 4)\n"
    "  --seed N        deterministic seed      (default 42)\n"
    "  --crash         crash after the run and trace the recovery\n";

int
usageError(const std::string &msg)
{
    std::fprintf(stderr, "hoop_trace: %s\n%s", msg.c_str(), kUsage);
    return 2;
}

Scheme
parseScheme(const std::string &s, bool &ok)
{
    ok = true;
    if (s == "hoop")
        return Scheme::Hoop;
    if (s == "redo")
        return Scheme::OptRedo;
    if (s == "undo")
        return Scheme::OptUndo;
    if (s == "osp")
        return Scheme::Osp;
    if (s == "lsm")
        return Scheme::Lsm;
    if (s == "lad")
        return Scheme::Lad;
    if (s == "native")
        return Scheme::Native;
    ok = false;
    return Scheme::Hoop;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hoopnvm;

    std::string out = "hoop_trace.json";
    std::string scheme_arg = "hoop";
    std::string workload = "hashmap";
    std::uint64_t txs = 200;
    std::uint64_t seed = 42;
    unsigned cores = 4;
    bool crash = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--out") {
            const char *v = next();
            if (!v)
                return usageError("--out needs a value");
            out = v;
        } else if (a == "--scheme") {
            const char *v = next();
            if (!v)
                return usageError("--scheme needs a value");
            scheme_arg = v;
        } else if (a == "--workload") {
            const char *v = next();
            if (!v)
                return usageError("--workload needs a value");
            workload = v;
        } else if (a == "--txs") {
            const char *v = next();
            if (!v)
                return usageError("--txs needs a value");
            txs = std::strtoull(v, nullptr, 10);
        } else if (a == "--cores") {
            const char *v = next();
            if (!v)
                return usageError("--cores needs a value");
            cores = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (a == "--seed") {
            const char *v = next();
            if (!v)
                return usageError("--seed needs a value");
            seed = std::strtoull(v, nullptr, 10);
        } else if (a == "--crash") {
            crash = true;
        } else if (a == "--help" || a == "-h") {
            std::fputs(kUsage, stdout);
            return 0;
        } else {
            return usageError("unknown option " + a);
        }
    }

    bool scheme_ok = false;
    const Scheme scheme = parseScheme(scheme_arg, scheme_ok);
    if (!scheme_ok)
        return usageError("unknown scheme " + scheme_arg);

    Trace::setPath(out);

    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.homeBytes = miB(64);
    cfg.oopBytes = miB(8);
    cfg.auxBytes = miB(64) + miB(8);
    cfg.seed = seed;

    WorkloadParams params;
    params.scale = 1024;

    RunOutcome run;
    Tick recovery_time = 0;
    {
        // Scoped so the System's trace buffer flushes into the global
        // sink before the file is written below.
        System sys(cfg, scheme);
        run = runWorkload(sys, makeWorkload(workload, params), txs);
        if (!run.verified) {
            std::fprintf(stderr,
                         "hoop_trace: %s/%s failed verification\n",
                         schemeName(scheme), workload.c_str());
            return 1;
        }
        if (crash) {
            sys.crash();
            recovery_time = sys.recover(cores);
        }
    }

    if (!Trace::write()) {
        std::fprintf(stderr, "hoop_trace: cannot write %s\n",
                     out.c_str());
        return 1;
    }

    std::printf("hoop_trace: %s/%s, %llu tx/core on %u cores -> %s\n",
                schemeName(scheme), workload.c_str(),
                static_cast<unsigned long long>(txs), cores,
                out.c_str());
    std::printf("  tx committed: %llu, mean critical path %.1f ns\n",
                static_cast<unsigned long long>(run.metrics.transactions),
                run.metrics.avgCriticalPathNs);
    if (crash) {
        std::printf("  recovery traced: %.1f us modelled\n",
                    ticksToNs(recovery_time) / 1000.0);
    }
    std::printf("  open in https://ui.perfetto.dev\n");
    return 0;
}
