/**
 * @file
 * hoop_ordercheck: persistency-ordering rule coverage and violation
 * report.
 *
 * Runs every requested scheme x workload combination under the
 * ordering analyzer (no crashes — this tool checks the declared
 * durability happens-before rules continuously, on the live write
 * stream) and dumps per-scheme rule coverage: how often each rule
 * fired, how many dependencies it checked, violations, race warnings
 * and the drain-overhead counters ("persisted twice", redundant
 * fences). A rule that never fires across a scheme's whole sweep is
 * reported as dead — a spec-coverage hole.
 *
 * The debug-bug knobs (--break-commit-fence, --early-commit-ack,
 * --skip-settle-fences, --skip-undo-log) reintroduce real ordering
 * bugs so the rule that guards each one can be watched firing; they
 * exist to validate the analyzer, not the schemes.
 *
 * Exit codes: 0 = all rules fired and none violated, 1 = violations
 * or dead rules, 2 = usage error.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/order_harness.hh"
#include "check/crash_schedule.hh"
#include "stats/trace.hh"

namespace
{

using namespace hoopnvm;

constexpr const char *kUsage =
    "usage: hoop_ordercheck [options]\n"
    "  --scheme S      hoop|redo|undo|osp|lsm|lad|all   (default all)\n"
    "  --workload W    vector|hashmap|queue|rbtree|btree|ycsb|tpcc|all\n"
    "                  (default hashmap)\n"
    "  --txs N         tracked transactions per core    (default 120)\n"
    "  --seed N        deterministic seed               (default 1)\n"
    "  --cores N       simulated cores                  (default 2)\n"
    "  --faults F      none|torn                        (default none)\n"
    "  --verbose       print every violation/warning trace\n"
    "  debug-bug knobs (validate the analyzer; each should make its\n"
    "  guarding rule fire violations):\n"
    "  --break-commit-fence   hoop: ack commit before record durable\n"
    "  --early-commit-ack     redo/undo/lsm/osp: ack at issue time\n"
    "  --skip-settle-fences   skip drain fences before truncate/GC\n"
    "  --skip-undo-log        undo: in-place writes without log entry\n"
    "  --trace FILE    write a Chrome trace (Perfetto-loadable) of\n"
    "                  every analyzed run to FILE (same as the\n"
    "                  HOOP_TRACE environment variable)\n";

const char *kAllWorkloads[] = {"vector", "hashmap", "queue", "rbtree",
                               "btree",  "ycsb",    "tpcc"};

const Scheme kPersistentSchemes[] = {Scheme::Hoop, Scheme::OptRedo,
                                     Scheme::OptUndo, Scheme::Osp,
                                     Scheme::Lsm, Scheme::Lad};

int
usageError(const std::string &msg)
{
    std::fprintf(stderr, "hoop_ordercheck: %s\n%s", msg.c_str(),
                 kUsage);
    return 2;
}

void
mergeRules(std::vector<OrderingRuleReport> *into,
           const std::vector<OrderingRuleReport> &from)
{
    for (const OrderingRuleReport &rr : from) {
        auto it = std::find_if(into->begin(), into->end(),
                               [&rr](const OrderingRuleReport &have) {
                                   return have.name == rr.name;
                               });
        if (it == into->end()) {
            into->push_back(rr);
        } else {
            it->fires += rr.fires;
            it->depsChecked += rr.depsChecked;
            it->violations += rr.violations;
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hoopnvm;

    std::string scheme_arg = "all";
    std::string workload_arg = "hashmap";
    std::string faults_arg = "none";
    std::uint64_t txs = 120;
    std::uint64_t seed = 1;
    unsigned cores = 2;
    bool verbose = false;
    OrderCheckOptions knobs;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--scheme") {
            const char *v = next();
            if (!v)
                return usageError("--scheme needs a value");
            scheme_arg = v;
        } else if (a == "--workload") {
            const char *v = next();
            if (!v)
                return usageError("--workload needs a value");
            workload_arg = v;
        } else if (a == "--txs") {
            const char *v = next();
            if (!v)
                return usageError("--txs needs a value");
            txs = std::strtoull(v, nullptr, 10);
        } else if (a == "--seed") {
            const char *v = next();
            if (!v)
                return usageError("--seed needs a value");
            seed = std::strtoull(v, nullptr, 10);
        } else if (a == "--cores") {
            const char *v = next();
            if (!v)
                return usageError("--cores needs a value");
            cores = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (a == "--faults") {
            const char *v = next();
            if (!v || (std::strcmp(v, "none") != 0 &&
                       std::strcmp(v, "torn") != 0))
                return usageError("--faults must be none or torn");
            faults_arg = v;
        } else if (a == "--verbose") {
            verbose = true;
        } else if (a == "--break-commit-fence") {
            knobs.breakCommitFence = true;
        } else if (a == "--early-commit-ack") {
            knobs.earlyCommitAck = true;
        } else if (a == "--skip-settle-fences") {
            knobs.skipSettleFences = true;
        } else if (a == "--skip-undo-log") {
            knobs.skipUndoLog = true;
        } else if (a == "--trace") {
            const char *v = next();
            if (!v)
                return usageError("--trace needs a value");
            Trace::setPath(v);
        } else if (a == "--help" || a == "-h") {
            std::fputs(kUsage, stdout);
            return 0;
        } else {
            return usageError("unknown option " + a);
        }
    }

    std::vector<Scheme> schemes;
    if (scheme_arg == "all") {
        // push_back rather than assign(first, last): GCC's UBSan build
        // flags the range-assign growth path with a spurious
        // -Warray-bounds on the 6-element source array.
        for (Scheme s : kPersistentSchemes)
            schemes.push_back(s);
    } else {
        Scheme s;
        if (!schemeFromToken(scheme_arg, &s) || s == Scheme::Native)
            return usageError("unknown scheme " + scheme_arg);
        schemes.push_back(s);
    }

    std::vector<std::string> workloads;
    if (workload_arg == "all")
        workloads.assign(std::begin(kAllWorkloads),
                         std::end(kAllWorkloads));
    else
        workloads.push_back(workload_arg);

    std::uint64_t total_violations = 0;
    std::uint64_t total_dead = 0;

    for (Scheme scheme : schemes) {
        // Dead-rule detection sums fires across every workload: a GC
        // rule idle on one access pattern may be exercised by another.
        std::vector<OrderingRuleReport> scheme_rules;
        OrderingCounters scheme_counters;
        std::uint64_t scheme_warnings = 0;
        bool all_verified = true;

        for (const std::string &wl : workloads) {
            OrderCheckOptions opt = knobs;
            opt.scheme = scheme;
            opt.workload = wl;
            opt.seed = seed;
            opt.numCores = cores;
            opt.runTx = txs;
            opt.tornWrites = faults_arg == "torn";

            const OrderCheckReport rep = runOrderCheck(opt);
            total_violations += rep.totalViolations;
            mergeRules(&scheme_rules, rep.rules);
            scheme_counters.timedWrites += rep.counters.timedWrites;
            scheme_counters.settleCalls += rep.counters.settleCalls;
            scheme_counters.redundantSettles +=
                rep.counters.redundantSettles;
            scheme_counters.settledWrites += rep.counters.settledWrites;
            scheme_counters.inflightOverwrites +=
                rep.counters.inflightOverwrites;
            scheme_counters.depOverwrites += rep.counters.depOverwrites;
            scheme_warnings += rep.warnings.size();
            all_verified = all_verified && rep.verified;

            std::printf("%-6s %-8s tx %5llu violations %4llu "
                        "warnings %3zu verified %s\n",
                        schemeToken(scheme), wl.c_str(),
                        static_cast<unsigned long long>(
                            rep.transactions),
                        static_cast<unsigned long long>(
                            rep.totalViolations),
                        rep.warnings.size(),
                        rep.verified ? "yes" : "NO");
            if (verbose || rep.totalViolations > 0) {
                for (const OrderingViolation &v : rep.violations)
                    std::printf("    VIOLATION [%s]: %s\n",
                                v.rule.c_str(), v.detail.c_str());
            }
            if (verbose) {
                for (const OrderingViolation &w : rep.warnings)
                    std::printf("    warning [%s]: %s\n",
                                w.rule.c_str(), w.detail.c_str());
            }
        }

        std::printf("%-6s rule coverage:\n", schemeToken(scheme));
        for (const OrderingRuleReport &rr : scheme_rules) {
            std::printf("    %-20s %-19s fires %8llu deps %8llu "
                        "violations %llu%s\n",
                        rr.name.c_str(), orderingRuleKindName(rr.kind),
                        static_cast<unsigned long long>(rr.fires),
                        static_cast<unsigned long long>(rr.depsChecked),
                        static_cast<unsigned long long>(rr.violations),
                        rr.fires == 0 ? "  DEAD RULE" : "");
            if (rr.fires == 0)
                ++total_dead;
        }
        std::printf("    counters: writes %llu settles %llu "
                    "(redundant %llu) settled-writes %llu "
                    "inflight-overwrites %llu (dep %llu) "
                    "warnings %llu%s\n",
                    static_cast<unsigned long long>(
                        scheme_counters.timedWrites),
                    static_cast<unsigned long long>(
                        scheme_counters.settleCalls),
                    static_cast<unsigned long long>(
                        scheme_counters.redundantSettles),
                    static_cast<unsigned long long>(
                        scheme_counters.settledWrites),
                    static_cast<unsigned long long>(
                        scheme_counters.inflightOverwrites),
                    static_cast<unsigned long long>(
                        scheme_counters.depOverwrites),
                    static_cast<unsigned long long>(scheme_warnings),
                    all_verified ? "" : "  [VERIFY FAILED]");
    }

    std::printf("total: %llu ordering violations, %llu dead rules\n",
                static_cast<unsigned long long>(total_violations),
                static_cast<unsigned long long>(total_dead));
    return total_violations == 0 && total_dead == 0 ? 0 : 1;
}
