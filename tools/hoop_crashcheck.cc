/**
 * @file
 * hoop_crashcheck: systematic crash-point exploration CLI.
 *
 * Sweeps crash schedules across the five boundary classes for any
 * scheme x workload combination, reports per-class coverage, shrinks
 * violations to minimal reproducers and writes them as replayable
 * JSON. `--replay <file>` re-executes a reproducer deterministically.
 *
 * Exit codes: 0 = clean sweep, 1 = violations found, 2 = usage error,
 * 3 = per-schedule watchdog budget exceeded.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/crash_explorer.hh"
#include "check/watchdog.hh"
#include "stats/trace.hh"

namespace
{

using namespace hoopnvm;

constexpr const char *kUsage =
    "usage: hoop_crashcheck [options]\n"
    "  --scheme S      hoop|redo|undo|osp|lsm|lad|all   (default hoop)\n"
    "  --workload W    vector|hashmap|queue|rbtree|btree|ycsb|tpcc|all\n"
    "                  (default vector)\n"
    "  --budget N      max schedules per scheme x workload (default 50)\n"
    "  --seed N        deterministic seed (default 42)\n"
    "  --threads N     recovery threads (default 2)\n"
    "  --faults F      none|torn|media                  (default none)\n"
    "                  media: runtime media-fault regime — fault\n"
    "                  tolerance on, seeded wear-out faults over free\n"
    "                  capacity plus transient read disturbs, strict\n"
    "                  oracles (committed data must survive)\n"
    "  --budget-ms N   per-schedule wall-clock watchdog: abort with\n"
    "                  exit code 3 if any single schedule runs longer\n"
    "                  than N ms (default 0 = off)\n"
    "  --break-commit-fence   debug: ack commits before the record is\n"
    "                         durable (implies torn writes; HOOP only\n"
    "                         knob, used to validate the checker)\n"
    "  --ordering      arm the persistency-ordering analyzer on every\n"
    "                  schedule: declared durability rules are checked\n"
    "                  continuously, so a violated rule is reported\n"
    "                  even when no schedule's crash lands in the\n"
    "                  vulnerable window; rules that never fire across\n"
    "                  a scheme's whole sweep are reported as dead\n"
    "  --out DIR       write reproducer JSON files here (default .)\n"
    "  --replay FILE   re-execute one schedule JSON and exit\n"
    "  --trace FILE    write a Chrome trace (Perfetto-loadable) of\n"
    "                  every explored schedule to FILE (same as the\n"
    "                  HOOP_TRACE environment variable)\n";

const char *kAllWorkloads[] = {"vector", "hashmap", "queue", "rbtree",
                               "btree",  "ycsb",    "tpcc"};

const Scheme kPersistentSchemes[] = {Scheme::Hoop, Scheme::OptRedo,
                                     Scheme::OptUndo, Scheme::Osp,
                                     Scheme::Lsm, Scheme::Lad};

int
usageError(const std::string &msg)
{
    std::fprintf(stderr, "hoop_crashcheck: %s\n%s", msg.c_str(),
                 kUsage);
    return 2;
}

int
replay(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return usageError("cannot open replay file " + path);
    std::stringstream ss;
    ss << in.rdbuf();

    CrashSchedule sched;
    std::string err;
    if (!CrashSchedule::fromJson(ss.str(), &sched, &err))
        return usageError("malformed schedule: " + err);

    std::printf("replaying %s (%s/%s, seed %llu, %zu steps)\n",
                path.c_str(), schemeToken(sched.scheme),
                sched.workload.c_str(),
                static_cast<unsigned long long>(sched.seed),
                sched.steps.size());
    const ScheduleResult r = runSchedule(sched);
    std::printf("  crash fired: %s  recovery crash fired: %s\n",
                r.crashFired ? "yes" : "no",
                r.recoveryCrashFired ? "yes" : "no");
    std::uint64_t ordering_violations = 0;
    for (const OrderingRuleReport &rr : r.orderingRules) {
        ordering_violations += rr.violations;
        std::printf("  rule %-20s fires %6llu deps %6llu "
                    "violations %llu\n",
                    rr.name.c_str(),
                    static_cast<unsigned long long>(rr.fires),
                    static_cast<unsigned long long>(rr.depsChecked),
                    static_cast<unsigned long long>(rr.violations));
    }
    for (const OrderingViolation &v : r.orderingTraces)
        std::printf("  ORDERING VIOLATION [%s]: %s\n", v.rule.c_str(),
                    v.detail.c_str());
    if (r.violated) {
        std::printf("  VIOLATION: %s\n", r.detail.c_str());
        return 1;
    }
    if (ordering_violations > 0) {
        std::printf("  %llu ordering violation(s)\n",
                    static_cast<unsigned long long>(
                        ordering_violations));
        return 1;
    }
    std::printf("  no violation\n");
    return 0;
}

std::string
reproducerPath(const std::string &dir, const Violation &v,
               std::size_t idx)
{
    return dir + "/crashcheck_violation_" +
           schemeToken(v.reproducer.scheme) + "_" +
           v.reproducer.workload + "_" + std::to_string(idx) + ".json";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hoopnvm;

    std::string scheme_arg = "hoop";
    std::string workload_arg = "vector";
    std::string faults_arg = "none";
    std::string out_dir = ".";
    std::string replay_path;
    std::uint64_t budget = 50;
    std::uint64_t budget_ms = 0;
    std::uint64_t seed = 42;
    unsigned threads = 2;
    bool break_fence = false;
    bool ordering = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (a == "--scheme") {
            const char *v = next();
            if (!v)
                return usageError("--scheme needs a value");
            scheme_arg = v;
        } else if (a == "--workload") {
            const char *v = next();
            if (!v)
                return usageError("--workload needs a value");
            workload_arg = v;
        } else if (a == "--budget") {
            const char *v = next();
            if (!v)
                return usageError("--budget needs a value");
            budget = std::strtoull(v, nullptr, 10);
        } else if (a == "--budget-ms") {
            const char *v = next();
            if (!v)
                return usageError("--budget-ms needs a value");
            budget_ms = std::strtoull(v, nullptr, 10);
        } else if (a == "--seed") {
            const char *v = next();
            if (!v)
                return usageError("--seed needs a value");
            seed = std::strtoull(v, nullptr, 10);
        } else if (a == "--threads") {
            const char *v = next();
            if (!v)
                return usageError("--threads needs a value");
            threads = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
        } else if (a == "--faults") {
            const char *v = next();
            if (!v || (std::strcmp(v, "none") != 0 &&
                       std::strcmp(v, "torn") != 0 &&
                       std::strcmp(v, "media") != 0))
                return usageError(
                    "--faults must be none, torn or media");
            faults_arg = v;
        } else if (a == "--break-commit-fence") {
            break_fence = true;
        } else if (a == "--ordering") {
            ordering = true;
        } else if (a == "--out") {
            const char *v = next();
            if (!v)
                return usageError("--out needs a value");
            out_dir = v;
        } else if (a == "--replay") {
            const char *v = next();
            if (!v)
                return usageError("--replay needs a value");
            replay_path = v;
        } else if (a == "--trace") {
            const char *v = next();
            if (!v)
                return usageError("--trace needs a value");
            Trace::setPath(v);
        } else if (a == "--help" || a == "-h") {
            std::fputs(kUsage, stdout);
            return 0;
        } else {
            return usageError("unknown option " + a);
        }
    }

    if (!replay_path.empty())
        return replay(replay_path);

    // Reproducers are written with plain ofstream, which silently
    // drops the file if the directory is missing — create it up front.
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) {
        std::fprintf(stderr, "hoop_crashcheck: cannot create --out %s: %s\n",
                     out_dir.c_str(), ec.message().c_str());
        return 2;
    }

    std::vector<Scheme> schemes;
    if (scheme_arg == "all") {
        // push_back rather than assign(first, last): GCC's UBSan build
        // flags the range-assign growth path with a spurious
        // -Warray-bounds on the 6-element source array.
        for (Scheme s : kPersistentSchemes)
            schemes.push_back(s);
    } else {
        Scheme s;
        if (!schemeFromToken(scheme_arg, &s) || s == Scheme::Native)
            return usageError("unknown scheme " + scheme_arg);
        schemes.push_back(s);
    }

    std::vector<std::string> workloads;
    if (workload_arg == "all")
        workloads.assign(std::begin(kAllWorkloads),
                         std::end(kAllWorkloads));
    else
        workloads.push_back(workload_arg);

    Watchdog watchdog(budget_ms);

    std::size_t violation_files = 0;
    std::uint64_t total_schedules = 0;
    std::uint64_t total_violations = 0;
    std::uint64_t total_ordering_violations = 0;
    std::uint64_t total_dead_rules = 0;

    for (Scheme scheme : schemes) {
        // A rule can legitimately sit idle on one workload (e.g. a GC
        // rule on a read-mostly stream), so dead-rule detection sums
        // fires across every workload of the scheme's sweep.
        std::vector<OrderingRuleReport> scheme_rules;

        for (const std::string &wl : workloads) {
            ExploreOptions opt;
            opt.scheme = scheme;
            opt.workload = wl;
            opt.seed = seed;
            opt.budget = budget;
            opt.recoverThreads = threads;
            opt.tornWrites = faults_arg == "torn";
            if (faults_arg == "media")
                opt.runtimeFaultProb = 0.02;
            opt.breakCommitFence = break_fence;
            opt.ordering = ordering;
            opt.progress = [&watchdog](const CrashSchedule &s) {
                watchdog.beat(std::string(schemeToken(s.scheme)) + "/" +
                              s.workload + " schedule (" +
                              std::to_string(s.steps.size()) +
                              " steps)");
            };

            const ExploreReport rep = explore(opt);
            total_schedules += rep.schedulesRun;
            total_violations += rep.violations.size();
            total_ordering_violations += rep.orderingViolations;

            for (const OrderingRuleReport &rr : rep.orderingRules) {
                auto it = std::find_if(
                    scheme_rules.begin(), scheme_rules.end(),
                    [&rr](const OrderingRuleReport &have) {
                        return have.name == rr.name;
                    });
                if (it == scheme_rules.end()) {
                    scheme_rules.push_back(rr);
                } else {
                    it->fires += rr.fires;
                    it->depsChecked += rr.depsChecked;
                    it->violations += rr.violations;
                }
            }

            std::printf("%-6s %-8s schedules %4llu crashes %4llu "
                        "rec-crashes %3llu violations %zu\n",
                        schemeToken(scheme), wl.c_str(),
                        static_cast<unsigned long long>(
                            rep.schedulesRun),
                        static_cast<unsigned long long>(
                            rep.crashesFired),
                        static_cast<unsigned long long>(
                            rep.recoveryCrashesFired),
                        rep.violations.size());
            for (unsigned k = 0; k < kNumCrashPointKinds; ++k) {
                std::printf(
                    "         %-15s events %6llu schedules %4llu "
                    "fired %4llu\n",
                    crashPointKindToken(static_cast<CrashPointKind>(k)),
                    static_cast<unsigned long long>(
                        rep.eventsProfiled[k]),
                    static_cast<unsigned long long>(
                        rep.schedulesPerKind[k]),
                    static_cast<unsigned long long>(
                        rep.firedPerKind[k]));
            }

            if (rep.orderingViolations > 0) {
                std::printf("         ordering violations %llu\n",
                            static_cast<unsigned long long>(
                                rep.orderingViolations));
                for (const OrderingViolation &v : rep.orderingTraces)
                    std::printf("         ORDERING [%s]: %s\n",
                                v.rule.c_str(), v.detail.c_str());
            }

            for (const Violation &v : rep.violations) {
                const std::string path =
                    reproducerPath(out_dir, v, violation_files++);
                std::ofstream f(path);
                f << v.reproducer.toJson();
                std::printf("  VIOLATION: %s\n  reproducer: %s\n",
                            v.detail.c_str(), path.c_str());
            }
        }

        if (ordering) {
            std::printf("%-6s ordering rules:\n", schemeToken(scheme));
            for (const OrderingRuleReport &rr : scheme_rules) {
                std::printf("         %-20s fires %8llu deps %8llu "
                            "violations %llu%s\n",
                            rr.name.c_str(),
                            static_cast<unsigned long long>(rr.fires),
                            static_cast<unsigned long long>(
                                rr.depsChecked),
                            static_cast<unsigned long long>(
                                rr.violations),
                            rr.fires == 0 ? "  DEAD RULE" : "");
                if (rr.fires == 0)
                    ++total_dead_rules;
            }
        }
    }

    std::printf("total: %llu schedules, %llu violations",
                static_cast<unsigned long long>(total_schedules),
                static_cast<unsigned long long>(total_violations));
    if (ordering)
        std::printf(", %llu ordering violations, %llu dead rules",
                    static_cast<unsigned long long>(
                        total_ordering_violations),
                    static_cast<unsigned long long>(total_dead_rules));
    std::printf("\n");
    const bool clean = total_violations == 0 &&
                       total_ordering_violations == 0 &&
                       total_dead_rules == 0;
    return clean ? 0 : 1;
}
