/**
 * @file
 * Tests for the parallel bench harness: CellRunner must produce
 * exactly the same per-cell RunMetrics at any job count as a serial
 * `-j1` run (each cell owns a fully independent System), and the
 * -jN / environment-variable plumbing must resolve as documented.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"

namespace hoopnvm
{
namespace
{

using bench::Cell;
using bench::CellRunner;

// Small but real scheme x workload matrix: enough cells to actually
// exercise the pool, small enough to finish in a couple of seconds.
struct MatrixCell
{
    Scheme scheme;
    const char *workload;
};

std::vector<MatrixCell>
matrix()
{
    return {{Scheme::Hoop, "vector"},   {Scheme::Hoop, "queue"},
            {Scheme::Native, "vector"}, {Scheme::OptRedo, "hashmap"},
            {Scheme::OptUndo, "queue"}, {Scheme::Lad, "vector"}};
}

std::vector<Cell>
runMatrix(unsigned jobs, bool fast_path = true)
{
    SystemConfig cfg = bench::paperConfig();
    cfg.fastPath = fast_path;
    WorkloadParams params = bench::paperParams(64);
    params.scale = 256;

    const auto cells = matrix();
    std::vector<Cell> out(cells.size());
    CellRunner runner(jobs);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        bench::scheduleCell(runner,
                            std::string(schemeName(cells[i].scheme)) +
                                "/" + cells[i].workload,
                            cells[i].scheme, cells[i].workload, params,
                            cfg, /*tx_per_core=*/20, &out[i]);
    }
    runner.run();
    return out;
}

void
expectIdenticalSummary(const LatencySummary &a, const LatencySummary &b,
                       const char *which)
{
    SCOPED_TRACE(which);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.p50Ns, b.p50Ns);
    EXPECT_EQ(a.p95Ns, b.p95Ns);
    EXPECT_EQ(a.p99Ns, b.p99Ns);
    EXPECT_EQ(a.p999Ns, b.p999Ns);
    EXPECT_EQ(a.maxNs, b.maxNs);
    EXPECT_EQ(a.meanNs, b.meanNs);
}

void
expectIdenticalMetrics(const RunMetrics &a, const RunMetrics &b)
{
    EXPECT_EQ(a.transactions, b.transactions);
    EXPECT_EQ(a.simTicks, b.simTicks);
    EXPECT_EQ(a.txPerSecond, b.txPerSecond);
    EXPECT_EQ(a.avgCriticalPathNs, b.avgCriticalPathNs);
    EXPECT_EQ(a.nvmBytesWritten, b.nvmBytesWritten);
    EXPECT_EQ(a.nvmBytesRead, b.nvmBytesRead);
    EXPECT_EQ(a.bytesWrittenPerTx, b.bytesWrittenPerTx);
    EXPECT_EQ(a.energyPj, b.energyPj);
    EXPECT_EQ(a.llcMissRatio, b.llcMissRatio);
    // Histograms must merge to the same quantiles at any job count.
    expectIdenticalSummary(a.critPath, b.critPath, "critPath");
    expectIdenticalSummary(a.llcMiss, b.llcMiss, "llcMiss");
    expectIdenticalSummary(a.gcPause, b.gcPause, "gcPause");
    // And the epoch sampler must fire at the same simulated ticks.
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
        SCOPED_TRACE("epoch " + std::to_string(i));
        EXPECT_EQ(a.epochs[i].at, b.epochs[i].at);
        EXPECT_EQ(a.epochs[i].mappingEntries,
                  b.epochs[i].mappingEntries);
        EXPECT_EQ(a.epochs[i].structBytes, b.epochs[i].structBytes);
        EXPECT_EQ(a.epochs[i].backpressureStalls,
                  b.epochs[i].backpressureStalls);
        EXPECT_EQ(a.epochs[i].inflightWrites,
                  b.epochs[i].inflightWrites);
    }
}

// The acceptance property of the whole harness: per-cell metrics are
// bit-identical whether cells run serially or across a pool.
TEST(CellRunner, ParallelMatchesSerialExactly)
{
    const std::vector<Cell> serial = runMatrix(1);
    const std::vector<Cell> parallel = runMatrix(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        EXPECT_TRUE(serial[i].verified);
        EXPECT_TRUE(parallel[i].verified);
        // Not vacuous: every committed tx lands in the histogram.
        EXPECT_EQ(serial[i].metrics.critPath.count,
                  serial[i].metrics.transactions);
        EXPECT_GT(serial[i].metrics.critPath.count, 0u);
        expectIdenticalMetrics(serial[i].metrics, parallel[i].metrics);
    }
}

// The same property must hold on both simulation engines: the batched
// fast path (the default every bench runs on) and the word-at-a-time
// reference engine. Cross-engine equality is fastpath_equiv_test's
// job; here each engine must merely be deterministic under the pool.
TEST(CellRunner, ParallelMatchesSerialOnBothEngines)
{
    for (const bool fast : {true, false}) {
        SCOPED_TRACE(fast ? "fastPath" : "reference");
        const std::vector<Cell> serial = runMatrix(1, fast);
        const std::vector<Cell> parallel = runMatrix(4, fast);
        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            SCOPED_TRACE("cell " + std::to_string(i));
            EXPECT_TRUE(serial[i].verified);
            EXPECT_TRUE(parallel[i].verified);
            expectIdenticalMetrics(serial[i].metrics,
                                   parallel[i].metrics);
        }
    }
}

// And so is a re-run at the same job count (seeds are per-cell).
TEST(CellRunner, ParallelRunIsRepeatable)
{
    const std::vector<Cell> a = runMatrix(3);
    const std::vector<Cell> b = runMatrix(3);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectIdenticalMetrics(a[i].metrics, b[i].metrics);
    }
}

TEST(CellRunner, RunsEveryCellExactlyOnce)
{
    CellRunner runner(4);
    std::atomic<int> counts[8] = {};
    for (int i = 0; i < 8; ++i) {
        runner.add("cell" + std::to_string(i),
                   [&counts, i] { ++counts[i]; });
    }
    EXPECT_EQ(runner.cells(), 8u);
    runner.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(counts[i].load(), 1);
    EXPECT_EQ(runner.label(3), "cell3");
    EXPECT_GE(runner.totalSeconds(), 0.0);
}

TEST(CellRunner, JobFlagParsing)
{
    {
        const char *argv[] = {"bench", "-j4"};
        EXPECT_EQ(bench::benchJobs(2, const_cast<char **>(argv)), 4u);
    }
    {
        const char *argv[] = {"bench", "-j", "7"};
        EXPECT_EQ(bench::benchJobs(3, const_cast<char **>(argv)), 7u);
    }
    {
        const char *argv[] = {"bench"};
        EXPECT_EQ(bench::benchJobs(1, const_cast<char **>(argv)), 0u);
    }
}

TEST(CellRunner, JobsResolveFromEnvironment)
{
    ::setenv("HOOP_BENCH_JOBS", "3", 1);
    EXPECT_EQ(CellRunner(0).jobs(), 3u);
    // An explicit request beats the environment.
    EXPECT_EQ(CellRunner(2).jobs(), 2u);
    ::unsetenv("HOOP_BENCH_JOBS");
    EXPECT_GE(CellRunner(0).jobs(), 1u);
}

TEST(CellRunner, TxPerCoreEnvOverride)
{
    ::setenv("HOOP_BENCH_TX", "5", 1);
    EXPECT_EQ(bench::benchTxPerCore(), 5u);
    ::unsetenv("HOOP_BENCH_TX");
    EXPECT_EQ(bench::benchTxPerCore(), bench::kTxPerCore);
}

} // namespace
} // namespace hoopnvm
