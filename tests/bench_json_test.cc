/**
 * @file
 * Unit tests for the bench JSON string escaper. RFC 8259 requires
 * quotation mark, reverse solidus and ALL control characters below
 * 0x20 to be escaped — the bug this guards against escaped only \n,
 * so a label containing e.g. \x01 produced unparseable JSON.
 */

#include <gtest/gtest.h>

#include <string>

#include "bench_common.hh"

namespace hoopnvm
{
namespace
{

using bench::jsonEscape;

TEST(JsonEscape, PlainAsciiPassesThrough)
{
    const std::string s = "hoop/vector 64B [p50=1.5]";
    EXPECT_EQ(jsonEscape(s), s);
}

TEST(JsonEscape, QuoteAndBackslash)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("\\\""), "\\\\\\\"");
}

TEST(JsonEscape, ShorthandControlEscapes)
{
    EXPECT_EQ(jsonEscape("\b"), "\\b");
    EXPECT_EQ(jsonEscape("\f"), "\\f");
    EXPECT_EQ(jsonEscape("\n"), "\\n");
    EXPECT_EQ(jsonEscape("\r"), "\\r");
    EXPECT_EQ(jsonEscape("\t"), "\\t");
    EXPECT_EQ(jsonEscape("line1\nline2"), "line1\\nline2");
}

TEST(JsonEscape, EveryControlCharBelow0x20IsEscaped)
{
    // The regression: \x01, \x1f etc. used to pass through raw.
    for (int c = 0x00; c < 0x20; ++c) {
        const std::string in(1, static_cast<char>(c));
        const std::string out = jsonEscape(in);
        ASSERT_GE(out.size(), 2u) << "char " << c << " not escaped";
        EXPECT_EQ(out[0], '\\') << "char " << c;
        for (char o : out)
            EXPECT_GE(static_cast<unsigned char>(o), 0x20u)
                << "escape of char " << c
                << " still contains a control byte";
    }
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(jsonEscape(std::string(1, '\x1f')), "\\u001f");
    std::string embedded = "a";
    embedded += '\x01';
    embedded += 'b';
    EXPECT_EQ(jsonEscape(embedded), "a\\u0001b");
    EXPECT_EQ(jsonEscape(std::string("\x00", 1)), "\\u0000");
}

TEST(JsonEscape, HighBytesPassThroughUnchanged)
{
    // 0x7f and UTF-8 continuation bytes are legal raw in JSON strings.
    const std::string s = "\x7f\xc3\xa9"; // DEL + e-acute in UTF-8
    EXPECT_EQ(jsonEscape(s), s);
}

} // namespace
} // namespace hoopnvm
