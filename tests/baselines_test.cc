/**
 * @file
 * Tests for the five reconstructed baselines. Each scheme is driven
 * through the same controller-level scenarios: commit durability,
 * crash discard of uncommitted transactions, fill correctness after
 * evictions, and scheme-specific mechanics (log truncation, shadow
 * flips, index walks, checkpointing).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "baselines/lad_controller.hh"
#include "baselines/lsm_controller.hh"
#include "baselines/osp_controller.hh"
#include "baselines/redo_controller.hh"
#include "baselines/undo_controller.hh"
#include "sim/system.hh"

namespace hoopnvm
{
namespace
{

SystemConfig
baseConfig()
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.homeBytes = miB(16);
    cfg.oopBytes = miB(4);
    cfg.auxBytes = miB(16) + miB(4); // OSP: shadow + selector + log
    return cfg;
}

void
store(PersistenceController &c, CoreId core, Addr a, std::uint64_t v)
{
    std::uint8_t b[8];
    std::memcpy(b, &v, 8);
    c.storeWord(core, a, b, 0);
}

std::uint64_t
readWord(PersistenceController &c, Addr a)
{
    std::uint8_t buf[kCacheLineSize];
    c.debugReadLine(lineAddr(a), buf);
    std::uint64_t v;
    std::memcpy(&v, buf + (a - lineAddr(a)), 8);
    return v;
}

/** Parameterized durability contract over all persistent baselines. */
class BaselineContract : public ::testing::TestWithParam<Scheme>
{
  protected:
    BaselineContract()
        : cfg(baseConfig()), nvm(cfg.nvmCapacity(), cfg.nvm),
          ctrl(makeController(GetParam(), nvm, cfg))
    {
    }

    SystemConfig cfg;
    NvmDevice nvm;
    std::unique_ptr<PersistenceController> ctrl;
};

TEST_P(BaselineContract, CommittedTxSurvivesCrash)
{
    ctrl->txBegin(0, 0);
    for (unsigned i = 0; i < 12; ++i)
        store(*ctrl, 0, 0x1000 + 8 * i, 100 + i);
    ctrl->txEnd(0, 0);

    ctrl->crash();
    ctrl->recover(2);
    for (unsigned i = 0; i < 12; ++i)
        EXPECT_EQ(readWord(*ctrl, 0x1000 + 8 * i), 100u + i) << i;
}

TEST_P(BaselineContract, UncommittedTxDiscardedOnCrash)
{
    // Commit a base value first, then crash mid-overwrite.
    ctrl->txBegin(0, 0);
    store(*ctrl, 0, 0x2000, 1);
    ctrl->txEnd(0, 0);

    ctrl->txBegin(0, 0);
    for (unsigned i = 0; i < 12; ++i)
        store(*ctrl, 0, 0x2000 + 8 * i, 500 + i);
    ctrl->crash(); // no txEnd
    ctrl->recover(2);

    EXPECT_EQ(readWord(*ctrl, 0x2000), 1u);
    for (unsigned i = 1; i < 12; ++i)
        EXPECT_EQ(readWord(*ctrl, 0x2000 + 8 * i), 0u) << i;
}

TEST_P(BaselineContract, FillSeesCommittedData)
{
    ctrl->txBegin(0, 0);
    store(*ctrl, 0, 0x3000, 42);
    ctrl->txEnd(0, 0);
    // Background work retires the data to its readable location (for
    // HOOP the freshest copy otherwise lives in the cache hierarchy,
    // which this controller-level test does not model).
    ctrl->drain(0);
    std::uint8_t buf[kCacheLineSize];
    const FillResult fr = ctrl->fillLine(0, 0x3000, buf, 0);
    std::uint64_t v;
    std::memcpy(&v, buf, 8);
    EXPECT_EQ(v, 42u);
    EXPECT_GT(fr.completion, 0u);
}

TEST_P(BaselineContract, FillSeesOpenTxDataAfterEviction)
{
    // An open transaction's line is evicted from the LLC; a subsequent
    // fill must reconstruct the uncommitted data.
    ctrl->txBegin(0, 0);
    store(*ctrl, 0, 0x4000, 77);
    std::uint8_t line[kCacheLineSize] = {};
    std::uint64_t v = 77;
    std::memcpy(line, &v, 8);
    ctrl->evictLine(0, 0x4000, line, true, ctrl->currentTx(0), 0x01, 0);

    std::uint8_t buf[kCacheLineSize];
    ctrl->fillLine(0, 0x4000, buf, 0);
    std::uint64_t got;
    std::memcpy(&got, buf, 8);
    EXPECT_EQ(got, 77u);
    ctrl->txEnd(0, 0);
}

TEST_P(BaselineContract, SequentialTxsAccumulate)
{
    for (unsigned t = 0; t < 20; ++t) {
        ctrl->txBegin(0, 0);
        store(*ctrl, 0, 0x5000 + 8 * (t % 4), t);
        ctrl->txEnd(0, 0);
        ctrl->maintenance(cfg.gcPeriod * (t + 1));
    }
    ctrl->drain(0);
    EXPECT_EQ(readWord(*ctrl, 0x5000), 16u);
    EXPECT_EQ(readWord(*ctrl, 0x5008), 17u);
    EXPECT_EQ(readWord(*ctrl, 0x5010), 18u);
    EXPECT_EQ(readWord(*ctrl, 0x5018), 19u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, BaselineContract,
    ::testing::Values(Scheme::Hoop, Scheme::OptRedo, Scheme::OptUndo,
                      Scheme::Osp, Scheme::Lsm, Scheme::Lad),
    [](const ::testing::TestParamInfo<Scheme> &info) {
        std::string n = schemeName(info.param);
        for (auto &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

// ---- Scheme-specific mechanics ----

TEST(RedoSpecifics, LogsAndCheckpoints)
{
    SystemConfig cfg = baseConfig();
    NvmDevice nvm(cfg.nvmCapacity(), cfg.nvm);
    RedoController ctrl(nvm, cfg);

    ctrl.txBegin(0, 0);
    store(ctrl, 0, 0x1000, 5);
    store(ctrl, 0, 0x1040, 6); // second line
    EXPECT_EQ(nvm.peekWord(0x1000), 0u); // nothing durable mid-tx
    ctrl.txEnd(0, 0);
    // Two data entries + one commit record, then the double write:
    // each logged line checkpointed home.
    EXPECT_EQ(ctrl.stats().value("log_entries"), 2u);
    EXPECT_EQ(ctrl.stats().value("commit_records"), 1u);
    EXPECT_EQ(ctrl.stats().value("checkpoint_writes"), 2u);
    EXPECT_EQ(nvm.peekWord(0x1000), 5u);
    EXPECT_EQ(nvm.peekWord(0x1040), 6u);

    ctrl.drain(0); // truncate retired entries
    EXPECT_EQ(ctrl.log().size(), 0u);
}

TEST(UndoSpecifics, OldImageCapturedBeforeUpdate)
{
    SystemConfig cfg = baseConfig();
    NvmDevice nvm(cfg.nvmCapacity(), cfg.nvm);
    UndoController ctrl(nvm, cfg);

    nvm.pokeWord(0x2000, 11); // pre-existing committed value

    ctrl.txBegin(0, 0);
    store(ctrl, 0, 0x2000, 22);
    // The undo entry must hold the OLD value.
    bool saw_image = false;
    ctrl.log().forEachLive([&](const LogEntry &e) {
        if (e.type == LogEntryType::UndoImage) {
            saw_image = true;
            EXPECT_EQ(e.words[0], 11u);
        }
    });
    EXPECT_TRUE(saw_image);
    ctrl.txEnd(0, 0);
    // In-place scheme: commit flushed the new value home.
    EXPECT_EQ(nvm.peekWord(0x2000), 22u);
}

TEST(UndoSpecifics, RollbackRestoresOldValues)
{
    SystemConfig cfg = baseConfig();
    NvmDevice nvm(cfg.nvmCapacity(), cfg.nvm);
    UndoController ctrl(nvm, cfg);
    nvm.pokeWord(0x3000, 1);

    ctrl.txBegin(0, 0);
    store(ctrl, 0, 0x3000, 2);
    // Simulate the in-place eviction reaching home before the crash.
    std::uint8_t line[kCacheLineSize] = {};
    std::uint64_t v = 2;
    std::memcpy(line, &v, 8);
    ctrl.evictLine(0, 0x3000, line, true, ctrl.currentTx(0), 0x01, 0);
    EXPECT_EQ(nvm.peekWord(0x3000), 2u); // uncommitted data in place

    ctrl.crash();
    ctrl.recover(1);
    EXPECT_EQ(nvm.peekWord(0x3000), 1u); // rolled back
}

TEST(OspSpecifics, ShadowFlipAlternates)
{
    SystemConfig cfg = baseConfig();
    NvmDevice nvm(cfg.nvmCapacity(), cfg.nvm);
    OspController ctrl(nvm, cfg);

    ctrl.txBegin(0, 0);
    store(ctrl, 0, 0x4000, 1);
    ctrl.txEnd(0, 0);
    EXPECT_TRUE(ctrl.shadowIsCurrent(0x4000));
    EXPECT_EQ(readWord(ctrl, 0x4000), 1u);
    // The original copy still holds the old (zero) data.
    EXPECT_EQ(nvm.peekWord(0x4000), 0u);

    ctrl.txBegin(0, 0);
    store(ctrl, 0, 0x4000, 2);
    ctrl.txEnd(0, 0);
    EXPECT_FALSE(ctrl.shadowIsCurrent(0x4000)); // flipped back
    EXPECT_EQ(nvm.peekWord(0x4000), 2u);
    EXPECT_EQ(ctrl.stats().value("tlb_shootdowns"), 2u);
}

TEST(OspSpecifics, SelectorSurvivesCrash)
{
    SystemConfig cfg = baseConfig();
    NvmDevice nvm(cfg.nvmCapacity(), cfg.nvm);
    OspController ctrl(nvm, cfg);

    ctrl.txBegin(0, 0);
    store(ctrl, 0, 0x5000, 9);
    ctrl.txEnd(0, 0);
    ctrl.crash();
    ctrl.recover(1);
    EXPECT_TRUE(ctrl.shadowIsCurrent(0x5000));
    EXPECT_EQ(readWord(ctrl, 0x5000), 9u);
}

TEST(LsmSpecifics, LoadsPayIndexWalk)
{
    SystemConfig cfg = baseConfig();
    NvmDevice nvm(cfg.nvmCapacity(), cfg.nvm);
    LsmController ctrl(nvm, cfg);
    const Tick cost = ctrl.loadOverhead(0, 0x1000, 0);
    EXPECT_GE(cost, cfg.dramLatency);
    EXPECT_EQ(ctrl.stats().value("index_walks"), 1u);
}

TEST(LsmSpecifics, GcMigratesAndEmptiesIndex)
{
    SystemConfig cfg = baseConfig();
    NvmDevice nvm(cfg.nvmCapacity(), cfg.nvm);
    LsmController ctrl(nvm, cfg);

    ctrl.txBegin(0, 0);
    store(ctrl, 0, 0x6000, 3);
    ctrl.txEnd(0, 0);
    EXPECT_EQ(ctrl.index().size(), 1u);
    EXPECT_EQ(nvm.peekWord(0x6000), 0u);

    ctrl.drain(0);
    EXPECT_EQ(ctrl.index().size(), 0u);
    EXPECT_EQ(nvm.peekWord(0x6000), 3u);
    EXPECT_EQ(ctrl.log().size(), 0u);
}

TEST(LadSpecifics, CommitDrainsQueueImmediately)
{
    SystemConfig cfg = baseConfig();
    NvmDevice nvm(cfg.nvmCapacity(), cfg.nvm);
    LadController ctrl(nvm, cfg);

    ctrl.txBegin(0, 0);
    store(ctrl, 0, 0x7000, 8);
    EXPECT_EQ(nvm.peekWord(0x7000), 0u); // staged only
    const Tick done = ctrl.txEnd(0, 1000);
    EXPECT_EQ(nvm.peekWord(0x7000), 8u); // persisted at commit
    // Commit persists one line at cache-line granularity: roughly one
    // NVM write latency, with no log writes on top.
    EXPECT_GE(done - 1000, cfg.nvm.writeLatency);
    EXPECT_LT(done - 1000, 2 * cfg.nvm.writeLatency);
}

TEST(TrafficShape, LoggingSchemesWriteMoreThanHoop)
{
    // One representative scenario: many small transactions updating a
    // few hot words. HOOP's packing + coalescing must beat both
    // logging baselines on bytes written (the Fig. 8 direction).
    auto run = [](Scheme s) {
        SystemConfig cfg = baseConfig();
        NvmDevice nvm(cfg.nvmCapacity(), cfg.nvm);
        auto ctrl = makeController(s, nvm, cfg);
        for (unsigned t = 0; t < 200; ++t) {
            ctrl->txBegin(0, 0);
            for (unsigned i = 0; i < 4; ++i)
                store(*ctrl, 0, 0x8000 + 8 * ((t + i) % 16), t + i);
            ctrl->txEnd(0, 0);
        }
        ctrl->drain(0);
        return nvm.bytesWritten();
    };

    const auto hoop = run(Scheme::Hoop);
    const auto redo = run(Scheme::OptRedo);
    const auto undo = run(Scheme::OptUndo);
    EXPECT_GT(redo, hoop);
    EXPECT_GT(undo, hoop);
}

} // namespace
} // namespace hoopnvm
