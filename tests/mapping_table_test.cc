/**
 * @file
 * Unit tests for the hash-based physical-to-physical mapping table:
 * capacity enforcement (the Fig. 13 knob), insert/update/remove and
 * iteration.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "hoop/mapping_table.hh"

namespace hoopnvm
{
namespace
{

TEST(MappingTable, CapacityFromBytes)
{
    MappingTable t(kiB(1));
    EXPECT_EQ(t.capacity(), kiB(1) / MappingTable::kEntryBytes);
}

TEST(MappingTable, InsertLookupRemove)
{
    MappingTable t(kiB(1));
    EXPECT_TRUE(t.insert(64, 7));
    auto v = t.lookup(64);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7u);
    t.remove(64);
    EXPECT_FALSE(t.lookup(64).has_value());
}

TEST(MappingTable, UpdateExistingEntry)
{
    MappingTable t(kiB(1));
    EXPECT_TRUE(t.insert(64, 1));
    EXPECT_TRUE(t.insert(64, 2));
    EXPECT_EQ(*t.lookup(64), 2u);
    EXPECT_EQ(t.size(), 1u);
}

TEST(MappingTable, RejectsInsertWhenFull)
{
    MappingTable t(MappingTable::kEntryBytes * 4);
    for (Addr a = 0; a < 4; ++a)
        EXPECT_TRUE(t.insert(a * 64, static_cast<std::uint32_t>(a)));
    EXPECT_TRUE(t.full());
    EXPECT_FALSE(t.insert(1024, 9));
    // Updating an existing key still works at capacity.
    EXPECT_TRUE(t.insert(0, 42));
    EXPECT_EQ(*t.lookup(0), 42u);
}

TEST(MappingTable, ForEachVisitsAll)
{
    MappingTable t(kiB(1));
    for (Addr a = 0; a < 10; ++a)
        t.insert(a * 64, static_cast<std::uint32_t>(a));
    std::set<Addr> seen;
    t.forEach([&](Addr line, std::uint32_t idx) {
        seen.insert(line);
        EXPECT_EQ(idx, line / 64);
    });
    EXPECT_EQ(seen.size(), 10u);
}

TEST(MappingTable, ClearEmptiesTable)
{
    MappingTable t(kiB(1));
    t.insert(0, 1);
    t.insert(64, 2);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_FALSE(t.lookup(0).has_value());
}

// Construction must not allocate the full modelled capacity: a Fig. 13
// 8 MB sweep builds ~512 Ki-entry tables per System and most runs
// touch a tiny fraction of them.
TEST(MappingTable, LazyAllocationFootprint)
{
    MappingTable t(miB(8));
    EXPECT_EQ(t.capacity(), miB(8) / MappingTable::kEntryBytes);
    EXPECT_LT(t.hostAllocatedBytes(), kiB(4));

    for (Addr a = 0; a < 1000; ++a)
        ASSERT_TRUE(t.insert(a * 64, static_cast<std::uint32_t>(a)));
    // Growth tracks the live entry count, not the modelled capacity.
    EXPECT_LT(t.hostAllocatedBytes(), kiB(64));
    for (Addr a = 0; a < 1000; ++a)
        EXPECT_EQ(*t.lookup(a * 64), static_cast<std::uint32_t>(a));

    // clear() releases back to the small initial allocation.
    t.clear();
    EXPECT_LT(t.hostAllocatedBytes(), kiB(4));
}

// Open-addressing stress: interleaved insert/remove/lookup against a
// std::map reference model. Catches backward-shift deletion bugs that
// leave entries unreachable or resurrect removed keys.
TEST(MappingTable, RandomOpsMatchReferenceModel)
{
    MappingTable t(MappingTable::kEntryBytes * 256);
    std::map<Addr, std::uint32_t> ref;
    std::uint64_t state = 12345;
    auto next = [&state] {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 33;
    };
    for (int i = 0; i < 20000; ++i) {
        const Addr line = (next() % 512) * 64;
        const auto op = next() % 3;
        if (op == 0) {
            const auto v = static_cast<std::uint32_t>(next());
            const bool want =
                ref.count(line) || ref.size() < t.capacity();
            EXPECT_EQ(t.insert(line, v), want);
            if (want)
                ref[line] = v;
        } else if (op == 1) {
            t.remove(line);
            ref.erase(line);
        } else {
            const auto got = t.lookup(line);
            const auto it = ref.find(line);
            ASSERT_EQ(got.has_value(), it != ref.end());
            if (got) {
                EXPECT_EQ(*got, it->second);
            }
        }
        ASSERT_EQ(t.size(), ref.size());
    }
    // Final full sweep: every reference entry is reachable.
    std::size_t visited = 0;
    t.forEach([&](Addr line, std::uint32_t idx) {
        ++visited;
        auto it = ref.find(line);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(idx, it->second);
    });
    EXPECT_EQ(visited, ref.size());
}

// Filling to the modelled capacity keeps working through growth.
TEST(MappingTable, FillToCapacityAndDrain)
{
    MappingTable t(MappingTable::kEntryBytes * 1000);
    for (Addr a = 0; a < 1000; ++a)
        ASSERT_TRUE(t.insert(a * 64, static_cast<std::uint32_t>(a)));
    EXPECT_TRUE(t.full());
    EXPECT_FALSE(t.insert(1000 * 64, 0));
    for (Addr a = 0; a < 1000; ++a) {
        ASSERT_TRUE(t.lookup(a * 64).has_value());
        t.remove(a * 64);
    }
    EXPECT_EQ(t.size(), 0u);
}

} // namespace
} // namespace hoopnvm
