/**
 * @file
 * Unit tests for the hash-based physical-to-physical mapping table:
 * capacity enforcement (the Fig. 13 knob), insert/update/remove and
 * iteration.
 */

#include <gtest/gtest.h>

#include <set>

#include "hoop/mapping_table.hh"

namespace hoopnvm
{
namespace
{

TEST(MappingTable, CapacityFromBytes)
{
    MappingTable t(kiB(1));
    EXPECT_EQ(t.capacity(), kiB(1) / MappingTable::kEntryBytes);
}

TEST(MappingTable, InsertLookupRemove)
{
    MappingTable t(kiB(1));
    EXPECT_TRUE(t.insert(64, 7));
    auto v = t.lookup(64);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7u);
    t.remove(64);
    EXPECT_FALSE(t.lookup(64).has_value());
}

TEST(MappingTable, UpdateExistingEntry)
{
    MappingTable t(kiB(1));
    EXPECT_TRUE(t.insert(64, 1));
    EXPECT_TRUE(t.insert(64, 2));
    EXPECT_EQ(*t.lookup(64), 2u);
    EXPECT_EQ(t.size(), 1u);
}

TEST(MappingTable, RejectsInsertWhenFull)
{
    MappingTable t(MappingTable::kEntryBytes * 4);
    for (Addr a = 0; a < 4; ++a)
        EXPECT_TRUE(t.insert(a * 64, static_cast<std::uint32_t>(a)));
    EXPECT_TRUE(t.full());
    EXPECT_FALSE(t.insert(1024, 9));
    // Updating an existing key still works at capacity.
    EXPECT_TRUE(t.insert(0, 42));
    EXPECT_EQ(*t.lookup(0), 42u);
}

TEST(MappingTable, ForEachVisitsAll)
{
    MappingTable t(kiB(1));
    for (Addr a = 0; a < 10; ++a)
        t.insert(a * 64, static_cast<std::uint32_t>(a));
    std::set<Addr> seen;
    t.forEach([&](Addr line, std::uint32_t idx) {
        seen.insert(line);
        EXPECT_EQ(idx, line / 64);
    });
    EXPECT_EQ(seen.size(), 10u);
}

TEST(MappingTable, ClearEmptiesTable)
{
    MappingTable t(kiB(1));
    t.insert(0, 1);
    t.insert(64, 2);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_FALSE(t.lookup(0).has_value());
}

} // namespace
} // namespace hoopnvm
