/**
 * @file
 * Atomic-durability property tests: a crash is injected at a randomized
 * store inside a transaction stream; after recovery the visible state
 * must equal exactly the committed prefix — for every persistent
 * scheme, every workload, and many crash points.
 *
 * This is the paper's core guarantee ("a set of data updates must
 * behave in an atomic, consistent, and durable manner with respect to
 * system failures and crashes", §II-A) verified mechanically.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "hoop/hoop_controller.hh"
#include "workloads/registry.hh"

namespace hoopnvm
{
namespace
{

SystemConfig
crashConfig()
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.homeBytes = miB(64);
    cfg.oopBytes = miB(8);
    cfg.auxBytes = miB(64) + miB(8);
    // Tiny caches widen the crash surface: lots of evictions.
    cfg.cache.l1Size = kiB(1);
    cfg.cache.l1Assoc = 2;
    cfg.cache.l2Size = kiB(4);
    cfg.cache.l2Assoc = 2;
    cfg.cache.llcSize = kiB(16);
    cfg.cache.llcAssoc = 4;
    return cfg;
}

WorkloadParams
crashParams()
{
    WorkloadParams p;
    p.valueBytes = 64;
    p.scale = 128;
    return p;
}

/**
 * Run @p warmup_tx committed transactions per core, then schedule a
 * crash @p crash_after_stores stores into the continuing stream,
 * recover, and verify every workload against its committed shadow.
 */
void
crashAndVerify(Scheme scheme, const char *wl_name,
               std::uint64_t warmup_tx,
               std::uint64_t crash_after_stores, unsigned threads,
               std::uint64_t torn_seed = 0)
{
    SystemConfig cfg = crashConfig();
    System sys(cfg, scheme);
    if (torn_seed != 0) {
        sys.nvm().faults().setSeed(torn_seed);
        sys.nvm().faults().setTornWrites(true);
    }
    auto factory = makeWorkload(wl_name, crashParams());
    std::vector<std::unique_ptr<Workload>> wls;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        wls.push_back(factory(sys, c));
        wls.back()->setup();
    }

    std::uint64_t i = 0;
    for (; i < warmup_tx; ++i) {
        for (unsigned c = 0; c < cfg.numCores; ++c)
            wls[c]->runTransaction(i);
        sys.maintenance();
    }

    // Crash somewhere inside the upcoming transactions.
    sys.scheduleCrashAfterStores(crash_after_stores);
    bool crashed = false;
    try {
        for (; i < warmup_tx + 50 && !crashed; ++i) {
            for (unsigned c = 0; c < cfg.numCores; ++c)
                wls[c]->runTransaction(i);
        }
    } catch (const SimCrash &) {
        crashed = true;
    }
    ASSERT_TRUE(crashed) << "crash point never reached";

    sys.crash();
    sys.recover(threads);

    for (unsigned c = 0; c < cfg.numCores; ++c) {
        EXPECT_TRUE(wls[c]->verify())
            << schemeName(scheme) << "/" << wl_name << " core " << c
            << " crash_after=" << crash_after_stores;
        std::string why;
        EXPECT_TRUE(wls[c]->verifyStructure(&why))
            << schemeName(scheme) << "/" << wl_name << " core " << c
            << " crash_after=" << crash_after_stores << ": " << why;
    }
}

/** (scheme, workload) matrix with randomized crash points. */
class CrashMatrix
    : public ::testing::TestWithParam<std::tuple<Scheme, const char *>>
{
};

TEST_P(CrashMatrix, AtomicDurabilityAcrossCrashPoints)
{
    const auto [scheme, wl] = GetParam();
    Rng rng(0xc7a54 + static_cast<int>(scheme));
    for (int trial = 0; trial < 6; ++trial) {
        const std::uint64_t point = 1 + rng.nextBounded(400);
        const unsigned threads = 1 + rng.nextBounded(4);
        crashAndVerify(scheme, wl, 10, point,
                       static_cast<unsigned>(threads));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPersistentSchemes, CrashMatrix,
    ::testing::Combine(
        ::testing::Values(Scheme::Hoop, Scheme::OptRedo,
                          Scheme::OptUndo, Scheme::Osp, Scheme::Lsm,
                          Scheme::Lad),
        ::testing::Values("vector", "hashmap", "queue", "rbtree",
                          "btree", "ycsb", "tpcc")),
    [](const auto &info) {
        std::string n = schemeName(std::get<0>(info.param));
        for (auto &c : n) {
            if (c == '-')
                c = '_';
        }
        return n + "_" + std::get<1>(info.param);
    });

TEST(CrashEdgeCases, CrashOnVeryFirstStore)
{
    crashAndVerify(Scheme::Hoop, "vector", 0, 1, 2);
}

TEST(CrashEdgeCases, CrashDuringGcWindow)
{
    // Force frequent GC so the crash lands near GC activity.
    SystemConfig cfg = crashConfig();
    cfg.gcPeriod = nsToTicks(1000);
    System sys(cfg, Scheme::Hoop);
    auto factory = makeWorkload("hashmap", crashParams());
    auto wl = factory(sys, 0);
    wl->setup();
    for (int i = 0; i < 30; ++i) {
        wl->runTransaction(i);
        sys.maintenance();
    }
    sys.scheduleCrashAfterStores(37);
    try {
        for (int i = 30; i < 60; ++i) {
            wl->runTransaction(i);
            sys.maintenance();
        }
        FAIL() << "crash never fired";
    } catch (const SimCrash &) {
    }
    sys.crash();
    sys.recover(2);
    EXPECT_TRUE(wl->verify());
}

// ---- Fault-injection regimes (torn writes and media faults) ----

TEST(FaultRegimes, TornWritesAcrossCrashPoints)
{
    // Same property as the clean-crash matrix, but every write still in
    // flight at the crash tears at word granularity. HOOP's commit ack
    // waits for the commit record, and the channel completes writes in
    // issue order, so tearing the in-flight suffix must never damage
    // committed state.
    Rng rng(0x7ea5);
    const char *wls[] = {"vector", "hashmap", "queue", "btree"};
    for (int trial = 0; trial < 8; ++trial) {
        const std::uint64_t point = 1 + rng.nextBounded(400);
        const unsigned threads =
            1 + static_cast<unsigned>(rng.nextBounded(4));
        crashAndVerify(Scheme::Hoop, wls[trial % 4], 10, point, threads,
                       0xbadc0de + trial);
    }
}

/**
 * Manual harness with per-transaction, line-aligned address regions:
 * transaction i stores 8 known words into its own cache line, so
 * post-recovery each line must hold either all of the transaction's
 * words or none of them (all-or-nothing is decidable per line).
 */
class CommitTearHarness
{
  public:
    explicit CommitTearHarness(std::uint64_t seed)
    {
        cfg_.numCores = 1;
        cfg_.gcPeriod = nsToTicks(1'000'000'000); // keep GC out
        // Small blocks spread the transactions across several of them,
        // so corruption exercises many independent live-area cuts.
        cfg_.oopBytes = miB(1);
        cfg_.oopBlockBytes = kiB(8);
        sys_ = std::make_unique<System>(cfg_, Scheme::Hoop);
        sys_->nvm().faults().setSeed(seed);
        sys_->nvm().faults().setTornWrites(true);
        base_ = sys_->alloc(0, kTxCount * kCacheLineSize,
                            kCacheLineSize);
        probe_ = sys_->alloc(0, kTxCount * kCacheLineSize,
                             kCacheLineSize);
    }

    static std::uint64_t
    wordValue(std::uint64_t tx, unsigned w)
    {
        return (tx + 1) * 0x9e3779b97f4a7c15ULL + w;
    }

    /** Run transaction @p tx (8 stores into its line) to completion. */
    void
    runTx(std::uint64_t tx)
    {
        sys_->txBegin(0);
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            sys_->storeWord(0, base_ + tx * kCacheLineSize +
                                   w * kWordSize,
                            wordValue(tx, w));
        }
        // Drain the channel before committing: one cold load syncs the
        // core to the channel, then L1 hits (which advance the clock
        // without touching the channel) carry it past every issued
        // write's completion (≤ channelFree + writeLatency). A crash
        // inside the following txEnd then finds exactly one write in
        // flight — the commit record.
        const Addr probe = probe_ + tx * kCacheLineSize;
        sys_->loadWord(0, probe);
        while (sys_->core(0).clock() <=
               sys_->nvm().channelFree() +
                   sys_->nvm().timing().writeLatency)
            sys_->loadWord(0, probe);
        sys_->txEnd(0);
    }

    /** Post-recovery: is @p tx's line all-new, all-zero, or mixed? */
    enum class LineState
    {
        AllNew,
        AllOld,
        Mixed
    };

    LineState
    lineState(std::uint64_t tx)
    {
        unsigned news = 0, olds = 0;
        for (unsigned w = 0; w < kWordsPerLine; ++w) {
            const std::uint64_t v = sys_->debugLoadWord(
                base_ + tx * kCacheLineSize + w * kWordSize);
            if (v == wordValue(tx, w))
                ++news;
            else if (v == 0)
                ++olds;
        }
        if (news == kWordsPerLine)
            return LineState::AllNew;
        if (olds == kWordsPerLine)
            return LineState::AllOld;
        return LineState::Mixed;
    }

    System &sys() { return *sys_; }

    const RecoveryResult &
    lastRecovery() const
    {
        return static_cast<HoopController &>(sys_->controller())
            .lastRecovery();
    }

    static constexpr std::uint64_t kTxCount = 64;

  private:
    SystemConfig cfg_;
    std::unique_ptr<System> sys_;
    Addr base_ = 0;
    Addr probe_ = 0;
};

TEST(FaultRegimes, TornCommitRecordNeverReplays)
{
    // Crash inside txEnd with the commit record still in flight, for
    // many seeds: the record's tear pattern varies, and whenever
    // recovery reports a torn commit the victim transaction must be
    // absent in full. Every earlier (acknowledged) transaction must be
    // present in full.
    std::uint64_t torn_seen = 0;
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        CommitTearHarness h(seed);
        const std::uint64_t committed = 5 + (seed % 7);
        for (std::uint64_t tx = 0; tx < committed; ++tx)
            h.runTx(tx);

        h.sys().scheduleCrashAtCommit(1);
        bool crashed = false;
        try {
            h.runTx(committed);
        } catch (const SimCrash &) {
            crashed = true;
        }
        ASSERT_TRUE(crashed) << "commit crash point never fired";

        h.sys().crash();
        h.sys().recover(2);
        const RecoveryResult &r = h.lastRecovery();

        for (std::uint64_t tx = 0; tx < committed; ++tx) {
            EXPECT_EQ(h.lineState(tx), CommitTearHarness::LineState::AllNew)
                << "acknowledged tx " << tx << " damaged (seed " << seed
                << ")";
        }
        const auto last = h.lineState(committed);
        EXPECT_NE(last, CommitTearHarness::LineState::Mixed)
            << "unacknowledged tx partially surfaced (seed " << seed
            << ")";
        if (r.tornCommitsDetected > 0) {
            ++torn_seen;
            EXPECT_EQ(last, CommitTearHarness::LineState::AllOld)
                << "a torn commit record replayed (seed " << seed << ")";
        }
    }
    // The per-word coin leaves the 128-byte record intact with
    // probability 2^-16 per crash; across 24 seeds tears must occur.
    EXPECT_GT(torn_seen, 0u) << "sweep never exercised a torn record";
}

TEST(FaultRegimes, BitFlipsVetoButNeverMixTransactions)
{
    // Commit transactions cleanly, crash, then corrupt the OOP region
    // at rest before recovery runs: stuck-at faults land in slices and
    // commit records. Recovery may veto affected transactions (their
    // lines stay old) but must never surface part of one, and must
    // report what it rejected.
    CommitTearHarness h(77);
    for (std::uint64_t tx = 0; tx < CommitTearHarness::kTxCount; ++tx)
        h.runTx(tx);

    h.sys().crash();
    const SystemConfig &cfg = h.sys().config();
    h.sys().nvm().faults().addMediaFault(
        cfg.oopBase(), cfg.oopBase() + cfg.oopBytes,
        MediaFaultKind::StuckAtOne, 0.05);
    h.sys().recover(2);
    const RecoveryResult first = h.lastRecovery();

    std::uint64_t vetoed = 0;
    for (std::uint64_t tx = 0; tx < CommitTearHarness::kTxCount; ++tx) {
        const auto st = h.lineState(tx);
        ASSERT_NE(st, CommitTearHarness::LineState::Mixed)
            << "tx " << tx << " partially replayed under media faults";
        if (st == CommitTearHarness::LineState::AllOld)
            ++vetoed;
    }
    // 5% faulty words across the whole region must hit live slices,
    // recovery must classify the damage as media faults, and some
    // transaction must actually have been vetoed by it.
    EXPECT_GT(first.slicesRejected + first.headersRejected, 0u);
    EXPECT_GT(first.bitFlipsDetected, 0u);
    EXPECT_GT(vetoed, 0u);

    // Idempotence: crash and recover again with the faults still
    // scheduled; the surviving state must not change.
    std::vector<CommitTearHarness::LineState> before;
    for (std::uint64_t tx = 0; tx < CommitTearHarness::kTxCount; ++tx)
        before.push_back(h.lineState(tx));
    h.sys().crash();
    h.sys().recover(3);
    for (std::uint64_t tx = 0; tx < CommitTearHarness::kTxCount; ++tx) {
        EXPECT_EQ(h.lineState(tx), before[tx])
            << "second recovery changed tx " << tx;
    }
}

/**
 * Recovery idempotence for every persistent scheme: crash, arm a
 * second crash partway through recovery, re-enter recovery on the
 * twice-crashed image — the visible state must be the same committed
 * prefix a single recovery would have produced.
 */
class RecoveryIdempotence : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(RecoveryIdempotence, SecondRecoveryYieldsSameState)
{
    const Scheme scheme = GetParam();
    for (std::uint64_t rec_point : {1u, 2u, 5u, 9u}) {
        SystemConfig cfg = crashConfig();
        System sys(cfg, scheme);
        auto wl = makeWorkload("hashmap", crashParams())(sys, 0);
        wl->setup();
        for (int i = 0; i < 25; ++i) {
            wl->runTransaction(i);
            sys.maintenance();
        }

        sys.crash();
        sys.crashHook().arm(CrashPointKind::RecoveryStep, rec_point);
        bool rec_crashed = false;
        try {
            sys.recover(2);
        } catch (const SimCrash &) {
            rec_crashed = true;
            sys.crash();
        }
        sys.crashHook().disarm(CrashPointKind::RecoveryStep);
        if (rec_crashed)
            sys.recover(3);

        EXPECT_TRUE(wl->verify())
            << schemeName(scheme) << " rec_point=" << rec_point
            << " rec_crashed=" << rec_crashed;
        std::string why;
        EXPECT_TRUE(wl->verifyStructure(&why))
            << schemeName(scheme) << " rec_point=" << rec_point << ": "
            << why;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPersistentSchemes, RecoveryIdempotence,
    ::testing::Values(Scheme::Hoop, Scheme::OptRedo, Scheme::OptUndo,
                      Scheme::Osp, Scheme::Lsm, Scheme::Lad),
    [](const auto &info) {
        std::string n = schemeName(info.param);
        for (auto &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

TEST(CrashEdgeCases, DoubleCrashDuringRecoveryWindow)
{
    // Crash, recover, immediately crash again before any new work:
    // state must stay the committed one (recovery idempotence).
    SystemConfig cfg = crashConfig();
    System sys(cfg, Scheme::Hoop);
    auto wl = makeWorkload("queue", crashParams())(sys, 0);
    wl->setup();
    for (int i = 0; i < 25; ++i)
        wl->runTransaction(i);
    sys.crash();
    sys.recover(2);
    sys.crash();
    sys.recover(4);
    EXPECT_TRUE(wl->verify());
}

} // namespace
} // namespace hoopnvm
