/**
 * @file
 * Atomic-durability property tests: a crash is injected at a randomized
 * store inside a transaction stream; after recovery the visible state
 * must equal exactly the committed prefix — for every persistent
 * scheme, every workload, and many crash points.
 *
 * This is the paper's core guarantee ("a set of data updates must
 * behave in an atomic, consistent, and durable manner with respect to
 * system failures and crashes", §II-A) verified mechanically.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "workloads/registry.hh"

namespace hoopnvm
{
namespace
{

SystemConfig
crashConfig()
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.homeBytes = miB(64);
    cfg.oopBytes = miB(8);
    cfg.auxBytes = miB(64) + miB(8);
    // Tiny caches widen the crash surface: lots of evictions.
    cfg.cache.l1Size = kiB(1);
    cfg.cache.l1Assoc = 2;
    cfg.cache.l2Size = kiB(4);
    cfg.cache.l2Assoc = 2;
    cfg.cache.llcSize = kiB(16);
    cfg.cache.llcAssoc = 4;
    return cfg;
}

WorkloadParams
crashParams()
{
    WorkloadParams p;
    p.valueBytes = 64;
    p.scale = 128;
    return p;
}

/**
 * Run @p warmup_tx committed transactions per core, then schedule a
 * crash @p crash_after_stores stores into the continuing stream,
 * recover, and verify every workload against its committed shadow.
 */
void
crashAndVerify(Scheme scheme, const char *wl_name,
               std::uint64_t warmup_tx,
               std::uint64_t crash_after_stores, unsigned threads)
{
    SystemConfig cfg = crashConfig();
    System sys(cfg, scheme);
    auto factory = makeWorkload(wl_name, crashParams());
    std::vector<std::unique_ptr<Workload>> wls;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        wls.push_back(factory(sys, c));
        wls.back()->setup();
    }

    std::uint64_t i = 0;
    for (; i < warmup_tx; ++i) {
        for (unsigned c = 0; c < cfg.numCores; ++c)
            wls[c]->runTransaction(i);
        sys.maintenance();
    }

    // Crash somewhere inside the upcoming transactions.
    sys.scheduleCrashAfterStores(crash_after_stores);
    bool crashed = false;
    try {
        for (; i < warmup_tx + 50 && !crashed; ++i) {
            for (unsigned c = 0; c < cfg.numCores; ++c)
                wls[c]->runTransaction(i);
        }
    } catch (const SimCrash &) {
        crashed = true;
    }
    ASSERT_TRUE(crashed) << "crash point never reached";

    sys.crash();
    sys.recover(threads);

    for (unsigned c = 0; c < cfg.numCores; ++c) {
        EXPECT_TRUE(wls[c]->verify())
            << schemeName(scheme) << "/" << wl_name << " core " << c
            << " crash_after=" << crash_after_stores;
    }
}

/** (scheme, workload) matrix with randomized crash points. */
class CrashMatrix
    : public ::testing::TestWithParam<std::tuple<Scheme, const char *>>
{
};

TEST_P(CrashMatrix, AtomicDurabilityAcrossCrashPoints)
{
    const auto [scheme, wl] = GetParam();
    Rng rng(0xc7a54 + static_cast<int>(scheme));
    for (int trial = 0; trial < 6; ++trial) {
        const std::uint64_t point = 1 + rng.nextBounded(400);
        const unsigned threads = 1 + rng.nextBounded(4);
        crashAndVerify(scheme, wl, 10, point,
                       static_cast<unsigned>(threads));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPersistentSchemes, CrashMatrix,
    ::testing::Combine(
        ::testing::Values(Scheme::Hoop, Scheme::OptRedo,
                          Scheme::OptUndo, Scheme::Osp, Scheme::Lsm,
                          Scheme::Lad),
        ::testing::Values("vector", "hashmap", "queue", "rbtree",
                          "btree", "ycsb", "tpcc")),
    [](const auto &info) {
        std::string n = schemeName(std::get<0>(info.param));
        for (auto &c : n) {
            if (c == '-')
                c = '_';
        }
        return n + "_" + std::get<1>(info.param);
    });

TEST(CrashEdgeCases, CrashOnVeryFirstStore)
{
    crashAndVerify(Scheme::Hoop, "vector", 0, 1, 2);
}

TEST(CrashEdgeCases, CrashDuringGcWindow)
{
    // Force frequent GC so the crash lands near GC activity.
    SystemConfig cfg = crashConfig();
    cfg.gcPeriod = nsToTicks(1000);
    System sys(cfg, Scheme::Hoop);
    auto factory = makeWorkload("hashmap", crashParams());
    auto wl = factory(sys, 0);
    wl->setup();
    for (int i = 0; i < 30; ++i) {
        wl->runTransaction(i);
        sys.maintenance();
    }
    sys.scheduleCrashAfterStores(37);
    try {
        for (int i = 30; i < 60; ++i) {
            wl->runTransaction(i);
            sys.maintenance();
        }
        FAIL() << "crash never fired";
    } catch (const SimCrash &) {
    }
    sys.crash();
    sys.recover(2);
    EXPECT_TRUE(wl->verify());
}

TEST(CrashEdgeCases, DoubleCrashDuringRecoveryWindow)
{
    // Crash, recover, immediately crash again before any new work:
    // state must stay the committed one (recovery idempotence).
    SystemConfig cfg = crashConfig();
    System sys(cfg, Scheme::Hoop);
    auto wl = makeWorkload("queue", crashParams())(sys, 0);
    wl->setup();
    for (int i = 0; i < 25; ++i)
        wl->runTransaction(i);
    sys.crash();
    sys.recover(2);
    sys.crash();
    sys.recover(4);
    EXPECT_TRUE(wl->verify());
}

} // namespace
} // namespace hoopnvm
