/**
 * @file
 * Tests for the crash-point exploration engine: schedule JSON
 * round-trips, crash-during-recovery and GC-migration coverage for
 * every persistent scheme, and checker validation against a
 * deliberately broken commit fence (which must yield a small,
 * replayable reproducer).
 */

#include <gtest/gtest.h>

#include "check/crash_explorer.hh"

namespace hoopnvm
{
namespace
{

TEST(CrashSchedule, JsonRoundTrip)
{
    CrashSchedule s;
    s.scheme = Scheme::Lsm;
    s.workload = "btree";
    s.seed = 1234;
    s.numCores = 3;
    s.warmupTx = 7;
    s.runTx = 21;
    s.recoverThreads = 4;
    s.tornWrites = true;
    s.breakCommitFence = true;
    s.steps.push_back({CrashPointKind::GcStep, 17, 0});
    s.steps.push_back({CrashPointKind::Store, 3, 9});

    CrashSchedule r;
    std::string err;
    ASSERT_TRUE(CrashSchedule::fromJson(s.toJson(), &r, &err)) << err;
    EXPECT_EQ(r.scheme, s.scheme);
    EXPECT_EQ(r.workload, s.workload);
    EXPECT_EQ(r.seed, s.seed);
    EXPECT_EQ(r.numCores, s.numCores);
    EXPECT_EQ(r.warmupTx, s.warmupTx);
    EXPECT_EQ(r.runTx, s.runTx);
    EXPECT_EQ(r.recoverThreads, s.recoverThreads);
    EXPECT_EQ(r.tornWrites, s.tornWrites);
    EXPECT_EQ(r.breakCommitFence, s.breakCommitFence);
    ASSERT_EQ(r.steps.size(), 2u);
    EXPECT_EQ(r.steps[0].kind, CrashPointKind::GcStep);
    EXPECT_EQ(r.steps[0].countdown, 17u);
    EXPECT_EQ(r.steps[1].kind, CrashPointKind::Store);
    EXPECT_EQ(r.steps[1].recoveryCountdown, 9u);
}

TEST(CrashSchedule, RejectsMalformedInput)
{
    CrashSchedule r;
    std::string err;
    EXPECT_FALSE(CrashSchedule::fromJson("{\"scheme\": \"bogus\"}", &r,
                                         &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(CrashSchedule::fromJson("not json", &r, &err));
    EXPECT_FALSE(CrashSchedule::fromJson(
        "{\"steps\": [{\"kind\": \"warp\"}]}", &r, &err));
}

/** Per-scheme exploration of one boundary class. */
class ExplorerSchemes : public ::testing::TestWithParam<Scheme>
{
};

TEST_P(ExplorerSchemes, CrashDuringRecoveryIsSurvivable)
{
    ExploreOptions opt;
    opt.scheme = GetParam();
    opt.workload = "hashmap";
    opt.budget = 6;
    opt.kinds = {CrashPointKind::RecoveryStep};

    const ExploreReport rep = explore(opt);
    const unsigned k =
        static_cast<unsigned>(CrashPointKind::RecoveryStep);
    ASSERT_GT(rep.eventsProfiled[k], 0u)
        << schemeName(opt.scheme)
        << " recovery exposes no crash points";
    EXPECT_GT(rep.schedulesRun, 0u);
    EXPECT_GT(rep.recoveryCrashesFired, 0u)
        << schemeName(opt.scheme)
        << " never crashed inside recovery";
    EXPECT_TRUE(rep.violations.empty())
        << schemeName(opt.scheme) << ": "
        << rep.violations.front().detail;
}

TEST_P(ExplorerSchemes, GcMigrationCrashIsSurvivable)
{
    ExploreOptions opt;
    opt.scheme = GetParam();
    opt.workload = "hashmap";
    opt.budget = 6;
    opt.kinds = {CrashPointKind::GcStep};

    const ExploreReport rep = explore(opt);
    const unsigned k = static_cast<unsigned>(CrashPointKind::GcStep);
    ASSERT_GT(rep.eventsProfiled[k], 0u)
        << schemeName(opt.scheme)
        << " exposes no GC/checkpoint crash points";
    EXPECT_GT(rep.firedPerKind[k], 0u)
        << schemeName(opt.scheme) << " never crashed at a GC step";
    EXPECT_TRUE(rep.violations.empty())
        << schemeName(opt.scheme) << ": "
        << rep.violations.front().detail;
}

INSTANTIATE_TEST_SUITE_P(
    AllPersistentSchemes, ExplorerSchemes,
    ::testing::Values(Scheme::Hoop, Scheme::OptRedo, Scheme::OptUndo,
                      Scheme::Osp, Scheme::Lsm, Scheme::Lad),
    [](const auto &info) {
        std::string n = schemeName(info.param);
        for (auto &c : n) {
            if (c == '-')
                c = '_';
        }
        return n;
    });

TEST(Explorer, HoopCleanSweepAllClasses)
{
    ExploreOptions opt;
    opt.scheme = Scheme::Hoop;
    opt.workload = "btree";
    opt.budget = 25;

    const ExploreReport rep = explore(opt);
    EXPECT_GT(rep.crashesFired, 0u);
    // Every class with events must have been scheduled.
    for (unsigned k = 0; k < kNumCrashPointKinds; ++k) {
        if (rep.eventsProfiled[k] > 0) {
            EXPECT_GT(rep.schedulesPerKind[k], 0u)
                << crashPointKindToken(static_cast<CrashPointKind>(k));
        }
    }
    EXPECT_TRUE(rep.violations.empty())
        << rep.violations.front().detail;
}

TEST(Explorer, BrokenCommitFenceYieldsReplayableReproducer)
{
    // The checker must catch a scheme that acknowledges commits before
    // the commit record is durable — and shrink the failure to a small
    // deterministic reproducer.
    ExploreOptions opt;
    opt.scheme = Scheme::Hoop;
    opt.workload = "vector";
    opt.budget = 10;
    opt.breakCommitFence = true; // implies torn writes
    opt.kinds = {CrashPointKind::Store, CrashPointKind::CommitRecord};

    const ExploreReport rep = explore(opt);
    ASSERT_FALSE(rep.violations.empty())
        << "broken commit fence escaped the checker";

    const Violation &v = rep.violations.front();
    EXPECT_LE(v.reproducer.steps.size(), 10u);
    EXPECT_LE(v.reproducer.warmupTx + v.reproducer.runTx, 50u)
        << "shrinking left an oversized reproducer";

    // The reproducer re-runs deterministically...
    ScheduleResult direct = runSchedule(v.reproducer);
    EXPECT_TRUE(direct.violated);

    // ...including after a JSON round-trip (the --replay path).
    CrashSchedule parsed;
    std::string err;
    ASSERT_TRUE(CrashSchedule::fromJson(v.reproducer.toJson(), &parsed,
                                        &err))
        << err;
    ScheduleResult replayed = runSchedule(parsed);
    EXPECT_TRUE(replayed.violated);
}

TEST(Explorer, MultiStepScheduleSurvivesRepeatedCrashes)
{
    // Several crash+recover cycles in one run, with a
    // crash-during-recovery in the middle: state must stay consistent
    // throughout.
    CrashSchedule sched;
    sched.scheme = Scheme::Hoop;
    sched.workload = "queue";
    sched.warmupTx = 5;
    sched.runTx = 20;
    sched.steps.push_back({CrashPointKind::Store, 40, 0});
    sched.steps.push_back({CrashPointKind::CommitRecord, 3, 2});
    sched.steps.push_back({CrashPointKind::Store, 25, 1});

    const ScheduleResult r = runSchedule(sched);
    EXPECT_TRUE(r.crashFired);
    EXPECT_TRUE(r.recoveryCrashFired);
    EXPECT_FALSE(r.violated) << r.detail;
}

// Fixed torn-write schedules that each reproduced a real
// crash-consistency bug before it was fixed. One entry per fix:
//  - hoop/hashmap: a torn in-flight slice lowered the recovery
//    corruption floor to the block's openSeq and vetoed a fully
//    durable commit (fix: per-block corruption floor).
//  - hoop/btree: torn GC recycle headers lowered the floor to the GC
//    watermark and vetoed txs spanning the GC boundary (fix: only
//    media faults on the header line lower the floor).
//  - redo/hashmap: partially torn 128-byte log entries passed the
//    type/seq scan checks (fix: per-entry CRC + single-word
//    superblock).
//  - redo/queue: async checkpoint home-writes raced the log
//    truncation superblock write (fix: drain + settle first).
//  - lsm: GC home-migration writes raced the log truncation the same
//    way (fix: drain + settle first).
//  - lad: commit drain writes could tear even though LAD's
//    battery-backed ADR queues guarantee they complete (fix: settle
//    the drain at commit).
struct TornRegression
{
    Scheme scheme;
    const char *workload;
    std::uint64_t warmupTx;
    std::uint64_t runTx;
    CrashStep step;
};

class TornWriteRegressions
    : public ::testing::TestWithParam<TornRegression>
{
};

TEST_P(TornWriteRegressions, FixedScheduleStaysConsistent)
{
    const TornRegression &p = GetParam();
    CrashSchedule sched;
    sched.scheme = p.scheme;
    sched.workload = p.workload;
    sched.seed = 7;
    sched.warmupTx = p.warmupTx;
    sched.runTx = p.runTx;
    sched.tornWrites = true;
    sched.steps.push_back(p.step);

    const ScheduleResult r = runSchedule(sched);
    EXPECT_FALSE(r.violated) << r.detail;
}

INSTANTIATE_TEST_SUITE_P(
    AllFixedBugs, TornWriteRegressions,
    ::testing::Values(
        TornRegression{Scheme::Hoop, "hashmap", 10, 40,
                       {CrashPointKind::CommitRecord, 61, 0}},
        TornRegression{Scheme::Hoop, "btree", 10, 40,
                       {CrashPointKind::Store, 712, 0}},
        TornRegression{Scheme::Hoop, "btree", 10, 40,
                       {CrashPointKind::Store, 712, 1}},
        TornRegression{Scheme::OptRedo, "hashmap", 0, 40,
                       {CrashPointKind::Eviction, 1, 0}},
        TornRegression{Scheme::OptRedo, "queue", 10, 1,
                       {CrashPointKind::Store, 1, 0}},
        TornRegression{Scheme::Lsm, "queue", 5, 40,
                       {CrashPointKind::Eviction, 17, 0}},
        TornRegression{Scheme::Lsm, "tpcc", 2, 1,
                       {CrashPointKind::Store, 1, 0}},
        TornRegression{Scheme::Lad, "vector", 0, 1,
                       {CrashPointKind::CommitRecord, 1, 0}},
        TornRegression{Scheme::Lad, "hashmap", 10, 10,
                       {CrashPointKind::CommitRecord, 11, 0}}),
    [](const ::testing::TestParamInfo<TornRegression> &info) {
        return std::string(schemeToken(info.param.scheme)) + "_" +
               info.param.workload + "_" +
               std::to_string(info.index);
    });

} // namespace
} // namespace hoopnvm
