/**
 * @file
 * Differential harness for the simulation fast paths: every run with
 * cfg.fastPath = true (batched line-granularity range access, skipped
 * redundant coherence work, event-driven maintenance polls, tracker-
 * based next-core selection) must be *bit-identical* to the reference
 * engine with cfg.fastPath = false — the fast path is an execution-
 * strategy change, not a model change.
 *
 * "Bit-identical" is checked at full depth over the scheme × workload
 * matrix: every counter and histogram bucket of every component
 * (system, hierarchy, each cache, controller, NVM device), the epoch
 * sample ring including sample ticks, and all RunMetrics fields.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "hoop/hoop_controller.hh"
#include "sim/system.hh"
#include "stats/histogram.hh"
#include "stats/stat_set.hh"
#include "workloads/registry.hh"

using namespace hoopnvm;

namespace
{

/** Small machine that still exercises evictions, GC and sampling. */
SystemConfig
testConfig(bool fast_path)
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.cache.l1Size = kiB(4);
    cfg.cache.l2Size = kiB(16);
    cfg.cache.llcSize = kiB(32);
    cfg.homeBytes = miB(16);
    cfg.oopBytes = miB(4);
    cfg.auxBytes = miB(20);
    cfg.mappingTableBytes = kiB(256);
    cfg.evictionBufferBytes = kiB(32);
    cfg.oopBlockBytes = kiB(256);
    cfg.gcPeriod = nsToTicks(2e5);
    cfg.epochSamplePeriod = nsToTicks(5e3);
    cfg.epochRingCapacity = 64;
    cfg.fastPath = fast_path;
    return cfg;
}

void
expectStatsEqual(const StatSet &fast, const StatSet &ref,
                 const std::string &what)
{
    ASSERT_EQ(fast.counters().size(), ref.counters().size()) << what;
    for (const auto &kv : fast.counters()) {
        ASSERT_TRUE(ref.counters().contains(kv.first))
            << what << "." << kv.first;
        EXPECT_EQ(kv.second.value(),
                  ref.counters().at(kv.first).value())
            << what << "." << kv.first;
    }
    ASSERT_EQ(fast.histograms().size(), ref.histograms().size())
        << what;
    for (const auto &kv : fast.histograms()) {
        ASSERT_TRUE(ref.histograms().contains(kv.first))
            << what << "." << kv.first;
        const Histogram &hf = kv.second;
        const Histogram &hr = ref.histograms().at(kv.first);
        EXPECT_EQ(hf.count(), hr.count()) << what << "." << kv.first;
        EXPECT_EQ(hf.sum(), hr.sum()) << what << "." << kv.first;
        EXPECT_EQ(hf.min(), hr.min()) << what << "." << kv.first;
        EXPECT_EQ(hf.max(), hr.max()) << what << "." << kv.first;
        for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
            ASSERT_EQ(hf.bucketCount(i), hr.bucketCount(i))
                << what << "." << kv.first << " bucket " << i;
        }
    }
}

void
expectSummaryEqual(const LatencySummary &f, const LatencySummary &r,
                   const std::string &what)
{
    EXPECT_EQ(f.count, r.count) << what;
    EXPECT_EQ(f.p50Ns, r.p50Ns) << what;
    EXPECT_EQ(f.p95Ns, r.p95Ns) << what;
    EXPECT_EQ(f.p99Ns, r.p99Ns) << what;
    EXPECT_EQ(f.maxNs, r.maxNs) << what;
    EXPECT_EQ(f.meanNs, r.meanNs) << what;
}

void
expectMetricsEqual(const RunMetrics &f, const RunMetrics &r,
                   const std::string &what)
{
    EXPECT_EQ(f.transactions, r.transactions) << what;
    EXPECT_EQ(f.simTicks, r.simTicks) << what;
    EXPECT_EQ(f.txPerSecond, r.txPerSecond) << what;
    EXPECT_EQ(f.avgCriticalPathNs, r.avgCriticalPathNs) << what;
    EXPECT_EQ(f.nvmBytesWritten, r.nvmBytesWritten) << what;
    EXPECT_EQ(f.nvmBytesRead, r.nvmBytesRead) << what;
    EXPECT_EQ(f.bytesWrittenPerTx, r.bytesWrittenPerTx) << what;
    EXPECT_EQ(f.energyPj, r.energyPj) << what;
    EXPECT_EQ(f.llcMissRatio, r.llcMissRatio) << what;
    expectSummaryEqual(f.critPath, r.critPath, what + ".critPath");
    expectSummaryEqual(f.llcMiss, r.llcMiss, what + ".llcMiss");
    expectSummaryEqual(f.gcPause, r.gcPause, what + ".gcPause");
    expectSummaryEqual(f.scrubPause, r.scrubPause,
                       what + ".scrubPause");
    EXPECT_EQ(f.eccCorrectedWords, r.eccCorrectedWords) << what;
    EXPECT_EQ(f.uncorrectableReads, r.uncorrectableReads) << what;
    EXPECT_EQ(f.readRetries, r.readRetries) << what;
    EXPECT_EQ(f.retiredUnits, r.retiredUnits) << what;
    EXPECT_EQ(f.txRejected, r.txRejected) << what;
    EXPECT_EQ(f.degradedFraction, r.degradedFraction) << what;

    // Epoch ring: same number of samples, taken at the same ticks,
    // observing the same gauges.
    ASSERT_EQ(f.epochs.size(), r.epochs.size()) << what;
    for (std::size_t i = 0; i < f.epochs.size(); ++i) {
        const EpochSample &ef = f.epochs[i];
        const EpochSample &er = r.epochs[i];
        EXPECT_EQ(ef.at, er.at) << what << " epoch " << i;
        EXPECT_EQ(ef.mappingEntries, er.mappingEntries)
            << what << " epoch " << i;
        EXPECT_EQ(ef.structBytes, er.structBytes)
            << what << " epoch " << i;
        EXPECT_EQ(ef.backpressureStalls, er.backpressureStalls)
            << what << " epoch " << i;
        EXPECT_EQ(ef.inflightWrites, er.inflightWrites)
            << what << " epoch " << i;
        EXPECT_EQ(ef.retiredUnits, er.retiredUnits)
            << what << " epoch " << i;
        EXPECT_EQ(ef.correctedWords, er.correctedWords)
            << what << " epoch " << i;
        EXPECT_EQ(ef.degradedFraction, er.degradedFraction)
            << what << " epoch " << i;
        EXPECT_EQ(ef.txRejected, er.txRejected)
            << what << " epoch " << i;
    }
}

/** Run one cell (scheme × workload × engine) to completion. */
struct CellResult
{
    RunMetrics metrics;
    bool verified = false;
    std::unique_ptr<System> sys; // kept alive for stat comparison
};

CellResult
runCell(Scheme scheme, const std::string &workload, bool fast_path,
        SystemConfig cfg)
{
    cfg.fastPath = fast_path;
    WorkloadParams p;
    p.valueBytes = 128;
    p.scale = 512;
    CellResult out;
    out.sys = std::make_unique<System>(cfg, scheme);
    const RunOutcome o =
        runWorkload(*out.sys, makeWorkload(workload, p), 100);
    out.metrics = o.metrics;
    out.verified = o.verified;
    return out;
}

void
compareCell(Scheme scheme, const std::string &workload,
            const SystemConfig &cfg)
{
    const std::string what =
        std::string(schemeName(scheme)) + "/" + workload;
    CellResult fast = runCell(scheme, workload, true, cfg);
    CellResult ref = runCell(scheme, workload, false, cfg);
    EXPECT_TRUE(fast.verified) << what;
    EXPECT_TRUE(ref.verified) << what;

    expectMetricsEqual(fast.metrics, ref.metrics, what);

    System &sf = *fast.sys;
    System &sr = *ref.sys;
    EXPECT_EQ(sf.committedTx(), sr.committedTx()) << what;
    EXPECT_EQ(sf.criticalPathSum(), sr.criticalPathSum()) << what;
    EXPECT_EQ(sf.minClock(), sr.minClock()) << what;
    EXPECT_EQ(sf.maxClock(), sr.maxClock()) << what;
    expectStatsEqual(sf.stats(), sr.stats(), what + ".system");
    expectStatsEqual(sf.caches().stats(), sr.caches().stats(),
                     what + ".hierarchy");
    expectStatsEqual(sf.caches().llc().stats(),
                     sr.caches().llc().stats(), what + ".llc");
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        expectStatsEqual(sf.caches().l1(c).stats(),
                         sr.caches().l1(c).stats(),
                         what + ".l1." + std::to_string(c));
        expectStatsEqual(sf.caches().l2(c).stats(),
                         sr.caches().l2(c).stats(),
                         what + ".l2." + std::to_string(c));
    }
    expectStatsEqual(sf.controller().stats(), sr.controller().stats(),
                     what + ".controller");
    if (scheme == Scheme::Hoop) {
        expectStatsEqual(
            static_cast<HoopController &>(sf.controller()).gc().stats(),
            static_cast<HoopController &>(sr.controller()).gc().stats(),
            what + ".gc");
    }
    EXPECT_EQ(sf.nvm().bytesWritten(), sr.nvm().bytesWritten()) << what;
    EXPECT_EQ(sf.nvm().bytesRead(), sr.nvm().bytesRead()) << what;
}

} // namespace

// One test per workload keeps failures attributable and lets ctest
// parallelize the matrix.

TEST(FastPathEquivalence, AllSchemesVector)
{
    for (Scheme s : kAllSchemes)
        compareCell(s, "vector", testConfig(true));
}

TEST(FastPathEquivalence, AllSchemesHashmap)
{
    for (Scheme s : kAllSchemes)
        compareCell(s, "hashmap", testConfig(true));
}

TEST(FastPathEquivalence, AllSchemesQueue)
{
    for (Scheme s : kAllSchemes)
        compareCell(s, "queue", testConfig(true));
}

// Media-fault tolerance on: the scrubber's event-driven scheduling and
// the ECC/retry counters must stay bit-identical too. HOOP plus one
// log baseline cover the two scrub implementations.
TEST(FastPathEquivalence, FaultToleranceScrubPath)
{
    SystemConfig cfg = testConfig(true);
    cfg.ft.enabled = true;
    cfg.ft.scrubPeriod = nsToTicks(50e3);
    for (Scheme s : {Scheme::Hoop, Scheme::OptRedo})
        compareCell(s, "vector", cfg);
}

// GC disabled: allocation backpressure runs GC on demand inside the
// store path instead of via maintenance — the poll-skip logic must not
// change when the period trigger is absent.
TEST(FastPathEquivalence, OnDemandGcPath)
{
    SystemConfig cfg = testConfig(true);
    cfg.gcEnabled = false;
    compareCell(Scheme::Hoop, "vector", cfg);
}
