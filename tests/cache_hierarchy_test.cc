/**
 * @file
 * Tests for the three-level hierarchy over the native controller:
 * functional load/store correctness, inclusion, write-back behaviour,
 * eviction routing, coherence across cores, and debug reads.
 */

#include <gtest/gtest.h>

#include "controller/native_controller.hh"
#include "mem/cache_hierarchy.hh"

namespace hoopnvm
{
namespace
{

SystemConfig
tinyConfig()
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.homeBytes = miB(16);
    cfg.oopBytes = miB(4);
    cfg.auxBytes = miB(32);
    // Small caches force evictions quickly.
    cfg.cache.l1Size = kiB(1);
    cfg.cache.l1Assoc = 2;
    cfg.cache.l2Size = kiB(4);
    cfg.cache.l2Assoc = 2;
    cfg.cache.llcSize = kiB(16);
    cfg.cache.llcAssoc = 4;
    return cfg;
}

struct HierarchyFixture : ::testing::Test
{
    HierarchyFixture()
        : cfg(tinyConfig()),
          nvm(cfg.nvmCapacity(), cfg.nvm),
          ctrl(nvm, cfg),
          hier(cfg)
    {
        hier.setController(&ctrl);
    }

    SystemConfig cfg;
    NvmDevice nvm;
    NativeController ctrl;
    CacheHierarchy hier;
};

TEST_F(HierarchyFixture, StoreThenLoadSameCore)
{
    Tick t = hier.storeWord(0, 0x100, 0xabcd, 0);
    std::uint64_t v = 0;
    t = hier.loadWord(0, 0x100, v, t);
    EXPECT_EQ(v, 0xabcdu);
}

TEST_F(HierarchyFixture, LoadsFromNvmOnColdMiss)
{
    nvm.pokeWord(0x200, 777);
    std::uint64_t v = 0;
    hier.loadWord(0, 0x200, v, 0);
    EXPECT_EQ(v, 777u);
}

TEST_F(HierarchyFixture, HitLatencyOrdering)
{
    nvm.pokeWord(0x300, 1);
    std::uint64_t v;
    // Cold miss pays NVM latency.
    const Tick miss = hier.loadWord(0, 0x300, v, 0);
    // Warm hit is much cheaper.
    const Tick hit = hier.loadWord(0, 0x300, v, miss) - miss;
    EXPECT_LT(hit, nsToTicks(10));
    EXPECT_GE(miss, cfg.nvm.readLatency);
}

TEST_F(HierarchyFixture, CapacityEvictionWritesBack)
{
    // Stream writes over 4x the LLC capacity; dirty lines must reach
    // the controller (which writes them home for Native).
    const std::uint64_t span = cfg.cache.llcSize * 4;
    Tick t = 0;
    for (Addr a = 0; a < span; a += kCacheLineSize)
        t = hier.storeWord(0, a, a + 1, t);
    EXPECT_GT(ctrl.stats().value("home_writebacks"), 0u);
    // All values readable through the hierarchy (cache or NVM).
    for (Addr a = 0; a < span; a += kCacheLineSize) {
        std::uint64_t v = 0;
        t = hier.loadWord(0, a, v, t);
        ASSERT_EQ(v, a + 1);
    }
}

TEST_F(HierarchyFixture, DebugReadSeesDirtyCacheData)
{
    hier.storeWord(0, 0x400, 42, 0);
    EXPECT_EQ(nvm.peekWord(0x400), 0u); // not yet written back
    std::uint64_t v = 0;
    hier.debugRead(0x400, &v, kWordSize);
    EXPECT_EQ(v, 42u);
}

TEST_F(HierarchyFixture, CrossCoreCoherence)
{
    // Core 0 writes; core 1 must read the new value even though the
    // line is dirty in core 0's private caches.
    Tick t = hier.storeWord(0, 0x500, 11, 0);
    std::uint64_t v = 0;
    t = hier.loadWord(1, 0x500, v, t);
    EXPECT_EQ(v, 11u);

    // Core 1 overwrites; core 0 must observe it.
    t = hier.storeWord(1, 0x500, 22, t);
    t = hier.loadWord(0, 0x500, v, t);
    EXPECT_EQ(v, 22u);
}

TEST_F(HierarchyFixture, WritebackAllDrainsDirtyLines)
{
    Tick t = 0;
    for (Addr a = 0; a < kiB(2); a += kCacheLineSize)
        t = hier.storeWord(0, a, a ^ 0x55, t);
    hier.writebackAll(t);
    for (Addr a = 0; a < kiB(2); a += kCacheLineSize)
        ASSERT_EQ(nvm.peekWord(a), a ^ 0x55);
    // Caches are empty afterwards.
    EXPECT_FALSE(hier.llc().peekLine(0));
}

TEST_F(HierarchyFixture, DropAllLosesDirtyData)
{
    hier.storeWord(0, 0x600, 99, 0);
    hier.dropAll();
    EXPECT_EQ(nvm.peekWord(0x600), 0u);
    std::uint64_t v = 1;
    hier.debugRead(0x600, &v, kWordSize);
    EXPECT_EQ(v, 0u);
}

TEST_F(HierarchyFixture, PersistentBitSetInTx)
{
    ctrl.txBegin(0, 0);
    hier.storeWord(0, 0x700, 5, 0);
    const CacheLine l = hier.l1(0).peekLine(lineAddr(0x700));
    ASSERT_TRUE(l);
    EXPECT_TRUE(l.persistent());
    EXPECT_EQ(l.txId(), ctrl.currentTx(0));
    EXPECT_EQ(l.wordMask(), 1u << ((0x700 % 64) / 8));
    ctrl.txEnd(0, 1);
}

TEST_F(HierarchyFixture, NonTxStoreIsNotPersistent)
{
    hier.storeWord(0, 0x800, 5, 0);
    const CacheLine l = hier.l1(0).peekLine(lineAddr(0x800));
    ASSERT_TRUE(l);
    EXPECT_FALSE(l.persistent());
    EXPECT_TRUE(l.dirty());
}

TEST_F(HierarchyFixture, LlcMissRatioTracked)
{
    std::uint64_t v;
    // 4 cold LLC misses.
    for (Addr a = 0; a < 4 * kCacheLineSize; a += kCacheLineSize)
        hier.loadWord(0, a, v, 0);
    EXPECT_DOUBLE_EQ(hier.llcMissRatio(), 1.0);
    // Re-fetch from the LLC after dropping the private copies.
    hier.l1(0).invalidateAll();
    hier.l2(0).invalidateAll();
    for (Addr a = 0; a < 4 * kCacheLineSize; a += kCacheLineSize)
        hier.loadWord(0, a, v, 0);
    EXPECT_DOUBLE_EQ(hier.llcMissRatio(), 0.5);
}

} // namespace
} // namespace hoopnvm
