/**
 * @file
 * Unit tests for the 128-byte memory slice codec (paper Fig. 5b):
 * round-trips of data, eviction and address slices, 40-bit home
 * addresses, and field boundary conditions.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "hoop/memory_slice.hh"

namespace hoopnvm
{
namespace
{

TEST(MemorySlice, DataSliceRoundTrip)
{
    MemorySlice s;
    s.type = SliceType::Data;
    s.count = 8;
    s.start = true;
    s.prevIdx = 12345;
    s.txId = 42;
    s.seq = 777;
    for (unsigned i = 0; i < 8; ++i) {
        s.words[i] = 0x1111111111111111ULL * (i + 1);
        s.homeAddrs[i] = 0x1000 + 8 * i;
    }

    std::uint8_t buf[MemorySlice::kSliceBytes];
    s.encode(buf);
    const MemorySlice d = MemorySlice::decode(buf);

    EXPECT_EQ(d.type, SliceType::Data);
    EXPECT_EQ(d.count, 8);
    EXPECT_TRUE(d.start);
    EXPECT_EQ(d.prevIdx, 12345u);
    EXPECT_EQ(d.txId, 42u);
    EXPECT_EQ(d.seq, 777u);
    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_EQ(d.words[i], s.words[i]);
        EXPECT_EQ(d.homeAddrs[i], s.homeAddrs[i]);
    }
}

TEST(MemorySlice, PartialCount)
{
    MemorySlice s;
    s.type = SliceType::Evict;
    s.count = 3;
    s.txId = 7;
    s.seq = 1;
    for (unsigned i = 0; i < 3; ++i) {
        s.words[i] = i;
        s.homeAddrs[i] = 64 * i;
    }
    std::uint8_t buf[MemorySlice::kSliceBytes];
    s.encode(buf);
    const MemorySlice d = MemorySlice::decode(buf);
    EXPECT_EQ(d.type, SliceType::Evict);
    EXPECT_EQ(d.count, 3);
    EXPECT_FALSE(d.start);
    EXPECT_EQ(d.prevIdx, MemorySlice::kNullIdx);
}

TEST(MemorySlice, FortyBitHomeAddress)
{
    // The 40-bit word number covers home regions up to 8 TB.
    MemorySlice s;
    s.type = SliceType::Data;
    s.count = 1;
    s.txId = 1;
    s.seq = 1;
    s.homeAddrs[0] = (1ULL << 42) - 8; // largest encodable word addr
    s.words[0] = 9;
    std::uint8_t buf[MemorySlice::kSliceBytes];
    s.encode(buf);
    EXPECT_EQ(MemorySlice::decode(buf).homeAddrs[0], s.homeAddrs[0]);
}

TEST(MemorySlice, AddressSliceRoundTrip)
{
    MemorySlice s;
    s.type = SliceType::AddrRec;
    s.count = 1;
    s.txId = 9;
    s.seq = 55;
    s.record.txId = 9;
    s.record.commitId = 1234;
    s.record.tailSliceIdx = 4321;
    s.record.sliceCount = 17;
    std::uint8_t buf[MemorySlice::kSliceBytes];
    s.encode(buf);
    const MemorySlice d = MemorySlice::decode(buf);
    EXPECT_EQ(d.type, SliceType::AddrRec);
    EXPECT_EQ(d.record.txId, 9u);
    EXPECT_EQ(d.record.commitId, 1234u);
    EXPECT_EQ(d.record.tailSliceIdx, 4321u);
    EXPECT_EQ(d.record.sliceCount, 17u);
    EXPECT_FALSE(d.carriesWords());
}

TEST(MemorySlice, ZeroBufferDecodesInvalid)
{
    std::uint8_t buf[MemorySlice::kSliceBytes] = {};
    EXPECT_EQ(MemorySlice::decode(buf).type, SliceType::Invalid);
}

TEST(MemorySlice, CrcDetectsCorruption)
{
    MemorySlice s;
    s.type = SliceType::Data;
    s.count = 4;
    s.txId = 13;
    s.seq = 21;
    for (unsigned i = 0; i < 4; ++i) {
        s.words[i] = 0xabcd + i;
        s.homeAddrs[i] = 128 * (i + 1);
    }
    std::uint8_t buf[MemorySlice::kSliceBytes];
    s.encode(buf);
    EXPECT_TRUE(MemorySlice::decode(buf).crcOk);

    // Any single-bit flip in the covered area must be caught, whether
    // it lands in a word, a home address or the metadata byte. (A flip
    // that zeroes the type nibble is not a CRC case: the slice decodes
    // as Invalid, which recovery treats as the end of the log anyway.)
    for (const std::size_t byte : {0u, 37u, 67u, 104u, 108u, 112u}) {
        std::uint8_t dam[MemorySlice::kSliceBytes];
        std::memcpy(dam, buf, sizeof(dam));
        dam[byte] ^= 0x10;
        EXPECT_FALSE(MemorySlice::decode(dam).crcOk)
            << "flip at byte " << byte << " went undetected";
    }
    std::uint8_t meta[MemorySlice::kSliceBytes];
    std::memcpy(meta, buf, sizeof(meta));
    meta[120] ^= 0x08; // flip the start flag, type stays valid
    EXPECT_FALSE(MemorySlice::decode(meta).crcOk);

    // A flip in the stored CRC itself must also fail verification.
    std::uint8_t dam[MemorySlice::kSliceBytes];
    std::memcpy(dam, buf, sizeof(dam));
    dam[121] ^= 0x01;
    EXPECT_FALSE(MemorySlice::decode(dam).crcOk);
}

TEST(MemorySlice, InvalidTxIdCanonicalizes)
{
    // The 32-bit all-ones image of kInvalidTxId decodes back to the
    // 64-bit sentinel, so consumers compare against one constant.
    MemorySlice s;
    s.type = SliceType::Evict;
    s.count = 1;
    s.txId = kInvalidTxId;
    s.seq = 5;
    s.words[0] = 1;
    s.homeAddrs[0] = 8;
    std::uint8_t buf[MemorySlice::kSliceBytes];
    s.encode(buf);
    EXPECT_EQ(MemorySlice::decode(buf).txId, kInvalidTxId);
}

TEST(MemorySlice, CarriesWordsClassification)
{
    MemorySlice s;
    s.type = SliceType::Data;
    EXPECT_TRUE(s.carriesWords());
    s.type = SliceType::Evict;
    EXPECT_TRUE(s.carriesWords());
    s.type = SliceType::AddrRec;
    EXPECT_FALSE(s.carriesWords());
    s.type = SliceType::Invalid;
    EXPECT_FALSE(s.carriesWords());
}

/** Property sweep: every (count, start, type) combination survives a
 *  round trip. */
class SliceParamTest
    : public ::testing::TestWithParam<std::tuple<int, bool, int>>
{
};

TEST_P(SliceParamTest, RoundTrip)
{
    const auto [count, start, type_i] = GetParam();
    MemorySlice s;
    s.type = static_cast<SliceType>(type_i);
    s.count = static_cast<std::uint8_t>(count);
    s.start = start;
    s.txId = 3;
    s.seq = 11;
    for (int i = 0; i < count; ++i) {
        s.words[i] = 1000 + i;
        s.homeAddrs[i] = 8 * (i + 1);
    }
    std::uint8_t buf[MemorySlice::kSliceBytes];
    s.encode(buf);
    const MemorySlice d = MemorySlice::decode(buf);
    EXPECT_EQ(d.count, count);
    EXPECT_EQ(d.start, start);
    EXPECT_EQ(static_cast<int>(d.type), type_i);
    for (int i = 0; i < count; ++i)
        EXPECT_EQ(d.words[i], 1000u + i);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, SliceParamTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 7, 8),
                       ::testing::Bool(),
                       ::testing::Values(1, 3))); // Data, Evict

} // namespace
} // namespace hoopnvm
