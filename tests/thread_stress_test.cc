/**
 * @file
 * Targeted thread-stress regressions for the components that share
 * mutable state across host threads: the process-wide trace sink
 * (concurrent TraceBuffer::flush), the watchdog's beat/wait handshake,
 * and the CellRunner worker pool. The assertions are deliberately
 * light — the real oracle is ThreadSanitizer (HOOP_SANITIZE=thread
 * build, see EXPERIMENTS.md), under which any data race in these
 * paths fails the test run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "check/watchdog.hh"
#include "common/rng.hh"
#include "stats/trace.hh"

namespace hoopnvm
{
namespace
{

TEST(ThreadStress, ConcurrentTraceFlush)
{
    const std::string path = "thread_stress_trace.json";
    Trace::setPath(path);
    ASSERT_TRUE(Trace::enabled());

    constexpr unsigned kThreads = 8;
    constexpr unsigned kEvents = 200;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([t] {
            // Each worker owns its buffer (the supported pattern);
            // only flush() touches the shared sink.
            TraceBuffer buf("stress/worker-" + std::to_string(t));
            for (unsigned i = 0; i < kEvents; ++i) {
                const Tick at = nsToTicks(10 * (i + 1));
                buf.span("tx", "tx", t, at, at + nsToTicks(5));
                buf.counter("events", at, i);
                if (i % 32 == 0)
                    buf.flush();
            }
            buf.flush();
        });
    }
    for (std::thread &w : workers)
        w.join();

    EXPECT_TRUE(Trace::write());
    Trace::clearForTest();
    Trace::setPath("");
    std::remove(path.c_str());
}

TEST(ThreadStress, WatchdogBeatsUnderContention)
{
    // Many producers beating one watchdog while its waiter thread
    // arms and re-arms deadlines. A generous budget keeps the
    // watchdog from firing; the test is the race-free handshake.
    Watchdog wd(60 * 1000);
    constexpr unsigned kThreads = 8;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&wd, t] {
            for (unsigned i = 0; i < 500; ++i)
                wd.beat("stress-" + std::to_string(t));
        });
    }
    for (std::thread &w : workers)
        w.join();
    wd.beat("done");
}

TEST(ThreadStress, CellRunnerPoolMatchesSerial)
{
    // The same cell set must produce bit-identical per-cell results
    // from the inline runner and from a contended worker pool. Each
    // cell is self-contained (own seeded RNG), so any cross-talk is a
    // harness bug — and a TSan hit.
    constexpr std::size_t kCells = 24;
    auto runAll = [](unsigned jobs) {
        std::vector<std::uint64_t> results(kCells, 0);
        bench::CellRunner runner(jobs);
        for (std::size_t i = 0; i < kCells; ++i) {
            runner.add("cell-" + std::to_string(i), [&results, i] {
                Rng rng(0x9e3779b9ull + i);
                std::uint64_t acc = 0;
                for (unsigned k = 0; k < 10000; ++k)
                    acc ^= rng.next() * (k | 1);
                results[i] = acc;
            });
        }
        runner.run();
        return results;
    };

    const std::vector<std::uint64_t> serial = runAll(1);
    const std::vector<std::uint64_t> pooled = runAll(4);
    EXPECT_EQ(serial, pooled);
}

} // namespace
} // namespace hoopnvm
