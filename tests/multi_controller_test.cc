/**
 * @file
 * Tests for the multi-memory-controller extension (paper §III-I):
 * line interleaving, two-phase commit, and consensus recovery — in
 * particular that a crash *between* the per-controller commit-record
 * writes discards the transaction on every channel (all-or-nothing).
 */

#include <gtest/gtest.h>

#include "hoop/multi_controller.hh"

namespace hoopnvm
{
namespace
{

SystemConfig
mcConfig()
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.homeBytes = miB(16);
    cfg.oopBytes = miB(4);
    cfg.oopBlockBytes = miB(1);
    cfg.auxBytes = miB(32);
    return cfg;
}

TEST(MultiController, InterleavesLinesAcrossChannels)
{
    MultiHoopSystem sys(mcConfig(), 4);
    EXPECT_EQ(sys.controllers(), 4u);
    EXPECT_EQ(sys.channelOf(0), 0u);
    EXPECT_EQ(sys.channelOf(64), 1u);
    EXPECT_EQ(sys.channelOf(2 * 64), 2u);
    EXPECT_EQ(sys.channelOf(4 * 64), 0u); // wraps
    EXPECT_EQ(sys.channelOf(64 + 8), 1u); // same line, same channel
}

TEST(MultiController, CommittedTxVisibleOnAllChannels)
{
    MultiHoopSystem sys(mcConfig(), 2);
    sys.txBegin(0);
    for (unsigned i = 0; i < 8; ++i)
        sys.storeWord(0, 0x1000 + 64 * i, 100 + i); // spans channels
    sys.txEnd(0);

    sys.crash();
    sys.recoverAll(2);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(sys.readWord(0x1000 + 64 * i), 100u + i) << i;
}

TEST(MultiController, SingleChannelTxNeedsNoSecondRecord)
{
    MultiHoopSystem sys(mcConfig(), 2);
    sys.txBegin(0);
    sys.storeWord(0, 0x2000, 7); // channel of 0x2000 only
    sys.txEnd(0);
    sys.crash();
    sys.recoverAll(1);
    EXPECT_EQ(sys.readWord(0x2000), 7u);
}

TEST(MultiController, CrashBetweenCommitRecordsDiscardsEverywhere)
{
    MultiHoopSystem sys(mcConfig(), 2);

    // A committed base transaction across both channels.
    sys.txBegin(0);
    sys.storeWord(0, 0x3000, 1);      // channel A
    sys.storeWord(0, 0x3000 + 64, 2); // channel B
    sys.txEnd(0);

    // The next transaction's commit is torn: exactly one of the two
    // participants writes its record before power fails.
    sys.txBegin(0);
    sys.storeWord(0, 0x3000, 100);
    sys.storeWord(0, 0x3000 + 64, 200);
    sys.scheduleCommitCrash(1);
    sys.txEnd(0);

    sys.crash();
    sys.recoverAll(2);

    // Consensus must veto the torn transaction on BOTH channels, even
    // though one of them holds a valid commit record.
    EXPECT_EQ(sys.readWord(0x3000), 1u);
    EXPECT_EQ(sys.readWord(0x3000 + 64), 2u);
}

TEST(MultiController, CrashBeforeAnyRecordDiscards)
{
    MultiHoopSystem sys(mcConfig(), 3);
    sys.txBegin(0);
    for (unsigned i = 0; i < 6; ++i)
        sys.storeWord(0, 0x4000 + 64 * i, 50 + i);
    sys.scheduleCommitCrash(0);
    sys.txEnd(0);
    sys.crash();
    sys.recoverAll(3);
    for (unsigned i = 0; i < 6; ++i)
        EXPECT_EQ(sys.readWord(0x4000 + 64 * i), 0u) << i;
}

TEST(MultiController, IndependentCoresCommitIndependently)
{
    MultiHoopSystem sys(mcConfig(), 2);
    sys.txBegin(0);
    sys.txBegin(1);
    sys.storeWord(0, 0x5000, 11);
    sys.storeWord(1, 0x6000, 22);
    sys.txEnd(0);
    // Core 1 crashes uncommitted.
    sys.crash();
    sys.recoverAll(2);
    EXPECT_EQ(sys.readWord(0x5000), 11u);
    EXPECT_EQ(sys.readWord(0x6000), 0u);
}

TEST(MultiController, ManyTornCommitsNeverLeakPartialState)
{
    // Sweep the crash point over every record position of a 3-channel
    // commit; recovery must always produce all-or-nothing.
    for (unsigned crash_at = 0; crash_at <= 2; ++crash_at) {
        MultiHoopSystem sys(mcConfig(), 3);
        sys.txBegin(0);
        sys.storeWord(0, 0x7000, 1);
        sys.storeWord(0, 0x7000 + 64, 2);
        sys.storeWord(0, 0x7000 + 128, 3);
        sys.txEnd(0);

        sys.txBegin(0);
        sys.storeWord(0, 0x7000, 91);
        sys.storeWord(0, 0x7000 + 64, 92);
        sys.storeWord(0, 0x7000 + 128, 93);
        sys.scheduleCommitCrash(crash_at);
        sys.txEnd(0);
        sys.crash();
        sys.recoverAll(2);

        const std::uint64_t a = sys.readWord(0x7000);
        const std::uint64_t b = sys.readWord(0x7000 + 64);
        const std::uint64_t c = sys.readWord(0x7000 + 128);
        const bool old_state = a == 1 && b == 2 && c == 3;
        const bool new_state = a == 91 && b == 92 && c == 93;
        EXPECT_TRUE(old_state || new_state)
            << "crash_at=" << crash_at << " -> " << a << "," << b
            << "," << c;
        // With fewer records than participants, it must be the old
        // state (consensus vetoes the torn commit).
        EXPECT_TRUE(old_state) << "crash_at=" << crash_at;
    }
}

} // namespace
} // namespace hoopnvm
