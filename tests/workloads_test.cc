/**
 * @file
 * Functional tests for the Table III workload suite: every structure
 * runs transactions on the native system and verifies against its
 * committed shadow, for both of the paper's item sizes.
 */

#include <gtest/gtest.h>

#include "workloads/registry.hh"

namespace hoopnvm
{
namespace
{

SystemConfig
wlConfig()
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.homeBytes = miB(64);
    cfg.oopBytes = miB(8);
    cfg.auxBytes = miB(64) + miB(8);
    return cfg;
}

WorkloadParams
smallParams(std::size_t value_bytes)
{
    WorkloadParams p;
    p.valueBytes = value_bytes;
    p.scale = 256;
    return p;
}

/** name x valueBytes sweep. */
class WorkloadSweep
    : public ::testing::TestWithParam<
          std::tuple<const char *, std::size_t>>
{
};

TEST_P(WorkloadSweep, RunsAndVerifiesOnNative)
{
    const auto [name, bytes] = GetParam();
    SystemConfig cfg = wlConfig();
    System sys(cfg, Scheme::Native);
    const RunOutcome out =
        runWorkload(sys, makeWorkload(name, smallParams(bytes)), 50);
    EXPECT_TRUE(out.verified) << name;
    EXPECT_EQ(out.metrics.transactions, 100u); // 2 cores x 50
    EXPECT_GT(out.metrics.simTicks, 0u);
    EXPECT_GT(out.metrics.avgCriticalPathNs, 0.0);
}

TEST_P(WorkloadSweep, RunsAndVerifiesOnHoop)
{
    const auto [name, bytes] = GetParam();
    SystemConfig cfg = wlConfig();
    System sys(cfg, Scheme::Hoop);
    const RunOutcome out =
        runWorkload(sys, makeWorkload(name, smallParams(bytes)), 50);
    EXPECT_TRUE(out.verified) << name;
    EXPECT_GT(out.metrics.nvmBytesWritten, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    TableThree, WorkloadSweep,
    ::testing::Combine(::testing::Values("vector", "hashmap", "queue",
                                         "rbtree", "btree", "ycsb",
                                         "tpcc"),
                       ::testing::Values(std::size_t{64},
                                         std::size_t{1024})),
    [](const auto &info) {
        return std::string(std::get<0>(info.param)) + "_" +
               std::to_string(std::get<1>(info.param)) + "B";
    });

TEST(WorkloadSuite, RegistryBuildsAllSuites)
{
    const WorkloadParams p = smallParams(64);
    EXPECT_EQ(syntheticSuite(p).size(), 5u);
    EXPECT_EQ(fullSuite(p).size(), 7u);
}

TEST(WorkloadSuite, DeterministicAcrossRuns)
{
    SystemConfig cfg = wlConfig();
    auto run = [&]() {
        System sys(cfg, Scheme::Hoop);
        return runWorkload(sys, makeWorkload("ycsb", smallParams(64)),
                           30);
    };
    const RunOutcome a = run();
    const RunOutcome b = run();
    EXPECT_EQ(a.metrics.simTicks, b.metrics.simTicks);
    EXPECT_EQ(a.metrics.nvmBytesWritten, b.metrics.nvmBytesWritten);
}

TEST(WorkloadSuite, PerCoreDataIsDisjoint)
{
    // Two cores run the same workload; verification would fail if
    // their arenas overlapped.
    SystemConfig cfg = wlConfig();
    System sys(cfg, Scheme::Native);
    const RunOutcome out =
        runWorkload(sys, makeWorkload("hashmap", smallParams(64)), 100);
    EXPECT_TRUE(out.verified);
}

TEST(WorkloadSuite, VerifyCatchesCorruption)
{
    // Corrupting committed home data after a run must fail verify.
    SystemConfig cfg = wlConfig();
    System sys(cfg, Scheme::Native);
    auto factory = makeWorkload("vector", smallParams(64));
    std::vector<std::unique_ptr<Workload>> wls;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        wls.push_back(factory(sys, c));
        wls.back()->setup();
    }
    for (int i = 0; i < 20; ++i)
        wls[0]->runTransaction(i);
    sys.finalize();
    ASSERT_TRUE(wls[0]->verify());

    // Smash a word of core 0's arena (vector items live right after
    // the size word's line).
    sys.nvm().pokeWord(kCacheLineSize + 128, 0xdeadbeef);
    EXPECT_FALSE(wls[0]->verify());
}

} // namespace
} // namespace hoopnvm
