/**
 * @file
 * Tests for the runtime media-fault tolerance subsystem: the bounded
 * ECC/retry read path of NvmDevice, the durable slot-retirement
 * discipline of LogRegion (burns, canAppend reservation, recovery
 * scans skipping retired slots), and the system-level contracts —
 * scrub-driven retirement surviving crash + recovery, and mid-
 * transaction TxRejected unwinding through recovery without losing
 * committed data.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/order_harness.hh"
#include "baselines/log_region.hh"
#include "check/soak.hh"
#include "common/errors.hh"
#include "nvm/nvm_device.hh"
#include "sim/system.hh"
#include "workloads/registry.hh"

namespace hoopnvm
{
namespace
{

constexpr Addr kBase = 0x10000;
constexpr std::size_t kLen = 256; // 32 words

/** Fill @p buf with a recognizable per-byte pattern. */
void
fillPattern(std::uint8_t *buf, std::size_t len, std::uint8_t tag)
{
    for (std::size_t i = 0; i < len; ++i)
        buf[i] = static_cast<std::uint8_t>(tag ^ (i * 131));
}

NvmDevice
makeTolerantDevice(std::uint64_t seed)
{
    const SystemConfig cfg;
    NvmDevice dev(cfg.nvmCapacity(), cfg.nvm);
    dev.faults().setSeed(seed);
    dev.faults().setEcc(1);
    dev.faults().setTransientFaults(4);
    dev.setReadRetryPolicy(4, nsToTicks(100), nsToTicks(20));
    return dev;
}

TEST(ReadRetry, TransientFaultsDeliverCleanData)
{
    // Regression guard for the retry-loop condition in
    // NvmDevice::read(): transient (read-disturb) words beyond the ECC
    // budget must be retried until they clear, never delivered corrupt
    // — a transient word leaked into a cache fill gets written back to
    // the home region later as silent permanent corruption.
    NvmDevice dev = makeTolerantDevice(1234);
    std::uint8_t data[kLen], got[kLen];
    fillPattern(data, kLen, 0x5a);
    dev.poke(kBase, data, kLen);
    dev.faults().addMediaFault(kBase, kBase + kLen,
                               MediaFaultKind::BitFlip, 1.0, 2);

    ReadFaultInfo rf;
    dev.read(0, kBase, got, kLen, &rf);
    EXPECT_EQ(std::memcmp(got, data, kLen), 0)
        << "a timed read delivered transient corruption instead of "
           "retrying it clear";
    EXPECT_EQ(rf.uncorrectableWords, 0u);
    EXPECT_EQ(rf.transientWords, 0u)
        << "the settled read still reports corrupt transient words";
    EXPECT_GT(rf.retries, 0u)
        << "2-bit flips beyond a 1-bit ECC must cost retries";
    EXPECT_GT(dev.readRetries(), 0u);
    EXPECT_EQ(dev.uncorrectableReads(), 0u);
}

TEST(ReadRetry, PermanentDamageSurfacesAsUncorrectable)
{
    // Stuck-at faults never clear: the retry budget is burned in full
    // and the read surfaces as uncorrectable (upstream CRCs or the
    // program-verify contract take it from there).
    NvmDevice dev = makeTolerantDevice(4321);
    std::vector<std::uint8_t> ones(kLen, 0xff);
    dev.poke(kBase, ones.data(), kLen);
    dev.faults().addMediaFault(kBase, kBase + kLen,
                               MediaFaultKind::StuckAtZero, 1.0, 3);

    std::uint8_t got[kLen];
    ReadFaultInfo rf;
    dev.read(0, kBase, got, kLen, &rf);
    EXPECT_TRUE(rf.uncorrectable());
    EXPECT_EQ(rf.retries, 4u)
        << "permanent damage must exhaust the whole retry budget";
    EXPECT_GT(dev.uncorrectableReads(), 0u);
    EXPECT_NE(std::memcmp(got, ones.data(), kLen), 0);
    EXPECT_TRUE(dev.faults().uncorrectableInRange(kBase, kLen))
        << "program-verify predicate disagrees with the read path";
}

/** Build a fault-tolerant LogRegion over a fresh device. */
struct LogFixture
{
    SystemConfig cfg;
    NvmDevice dev;
    static constexpr Addr kLogBase = 0x200000;
    static constexpr std::uint64_t kLogBytes = 64 * 1024;

    explicit LogFixture(std::uint64_t seed)
        : cfg(), dev(cfg.nvmCapacity(), cfg.nvm)
    {
        cfg.ft.enabled = true;
        dev.faults().setSeed(seed);
        dev.faults().setEcc(cfg.ft.eccCorrectBits);
        dev.faults().setTransientFaults(cfg.ft.readRetryMax);
        dev.setReadRetryPolicy(cfg.ft.readRetryMax,
                               cfg.ft.readRetryBackoff,
                               cfg.ft.eccCorrectCost);
    }

    LogEntry entry(std::uint64_t i) const
    {
        LogEntry e;
        e.type = LogEntryType::RedoData;
        e.txId = i;
        e.commitId = i * 3 + 1;
        e.line = kBase + i * 64;
        e.mask = 0xff;
        for (unsigned w = 0; w < 8; ++w)
            e.words[w] = i * 1000 + w;
        return e;
    }
};

TEST(LogRetirement, AppendsBurnPastBadSlotsAndRecoveryScansSkipThem)
{
    LogFixture fx(31);
    LogRegion log(fx.dev, LogFixture::kLogBase, LogFixture::kLogBytes,
                  "testlog", &fx.cfg);
    ASSERT_TRUE(log.faultToleranceEnabled());

    // Damage a band of free ring slots beyond any ECC before the first
    // append lands on them.
    const auto free_ranges = log.freeSlotRanges();
    ASSERT_FALSE(free_ranges.empty());
    const Addr lo = free_ranges.front().first + 8 * 128;
    fx.dev.faults().addMediaFault(lo, lo + 16 * 128,
                                  MediaFaultKind::StuckAtOne, 1.0, 8);

    constexpr std::uint64_t kAppends = 100;
    Tick now = 0;
    for (std::uint64_t i = 0; i < kAppends; ++i) {
        ASSERT_TRUE(log.canAppend(1));
        now = log.append(now, fx.entry(i));
    }
    EXPECT_GT(log.retiredSlots(), 0u)
        << "appends crossed a fully-damaged band without retiring it";
    EXPECT_GT(log.degradedFraction(), 0.0);

    // Burns keep seq == logical index + 1: the live scan must yield
    // exactly the appended entries, oldest first, seqs strictly
    // ascending, none replaced by garbage from a burned slot.
    auto check_scan = [&](const LogRegion &lr, const char *when) {
        std::vector<LogEntry> seen;
        lr.scan([&](const LogEntry &e) { seen.push_back(e); });
        ASSERT_EQ(seen.size(), kAppends) << when;
        for (std::uint64_t i = 0; i < kAppends; ++i) {
            const LogEntry want = fx.entry(i);
            EXPECT_TRUE(seen[i].crcOk) << when;
            EXPECT_EQ(seen[i].txId, want.txId) << when;
            EXPECT_EQ(seen[i].commitId, want.commitId) << when;
            EXPECT_EQ(seen[i].words, want.words) << when;
            if (i > 0)
                EXPECT_GT(seen[i].seq, seen[i - 1].seq) << when;
        }
    };
    check_scan(log, "pre-crash scan");

    // Crash: a recovery-time LogRegion over the same area adopts the
    // durable retirement bitmap and must scan the same live suffix —
    // retired slots are skipped, not treated as a scan-cutting tear.
    LogRegion reborn(fx.dev, LogFixture::kLogBase,
                     LogFixture::kLogBytes, "testlog-reborn", &fx.cfg);
    reborn.loadRetirement();
    EXPECT_EQ(reborn.retiredSlots(), log.retiredSlots())
        << "durable retirement bitmap did not round-trip";
    check_scan(reborn, "post-crash scan");
}

TEST(LogRetirement, CanAppendReservationIsExact)
{
    LogFixture fx(57);
    LogRegion log(fx.dev, LogFixture::kLogBase, LogFixture::kLogBytes,
                  "testlog", &fx.cfg);

    // Make a band of slots unusable so exhaustion happens through a
    // mix of burns and real appends.
    const auto free_ranges = log.freeSlotRanges();
    ASSERT_FALSE(free_ranges.empty());
    const Addr lo = free_ranges.front().first + 32 * 128;
    fx.dev.faults().addMediaFault(lo, lo + 24 * 128,
                                  MediaFaultKind::StuckAtZero, 1.0, 8);

    // canAppend(1) is a reservation: while it holds, append() must
    // succeed; once it stops holding, append() must throw the
    // structured exhaustion error, not corrupt state or abort.
    Tick now = 0;
    std::uint64_t appended = 0;
    while (log.canAppend(1)) {
        ASSERT_NO_THROW(now = log.append(now, fx.entry(appended)));
        ++appended;
        ASSERT_LT(appended, 2 * log.capacity()) << "ring never filled";
    }
    EXPECT_GT(appended, 0u);
    try {
        log.append(now, fx.entry(appended));
        FAIL() << "append past a false canAppend(1) did not throw";
    } catch (const TxRejected &rj) {
        EXPECT_EQ(rj.cause, RejectCause::LogExhausted);
    }

    // Truncation frees slots and the reservation recovers.
    log.truncate(now, 8);
    EXPECT_TRUE(log.canAppend(1));
    EXPECT_NO_THROW(log.append(now, fx.entry(appended)));
}

/** Shared harness for the system-level tolerance contracts. */
struct SoakLikeRig
{
    SystemConfig cfg;
    std::unique_ptr<System> sys;
    std::vector<std::unique_ptr<Workload>> wls;
    std::uint64_t txi = 0;

    SoakLikeRig(Scheme scheme, unsigned cores, std::uint64_t seed,
                const std::function<void(SystemConfig &)> &tweak = {})
        : cfg(smallCheckConfig(cores, seed))
    {
        cfg.ft.enabled = true;
        cfg.ft.scrubPeriod = cfg.gcPeriod; // scrub inside short windows
        if (tweak)
            tweak(cfg);
        sys = std::make_unique<System>(cfg, scheme);
        sys->nvm().faults().setSeed(seed ^ 0x7ea55eedULL);
        WorkloadParams params;
        params.valueBytes = 64;
        params.scale = 128;
        auto factory = makeWorkload("vector", params);
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            wls.push_back(factory(*sys, c));
            wls.back()->setup();
        }
    }

    void runTx(std::uint64_t n)
    {
        for (std::uint64_t i = 0; i < n; ++i, ++txi) {
            for (auto &wl : wls)
                wl->runTransaction(txi);
            sys->maintenance();
        }
    }

    /** Post-recovery oracle: committed data and structure both hold. */
    void expectIntact(const char *when)
    {
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            bool ok = wls[c]->verify();
            if (!ok && wls[c]->hasPendingShadow()) {
                wls[c]->applyPendingShadow();
                ok = wls[c]->verify();
            } else {
                wls[c]->dropPendingShadow();
            }
            EXPECT_TRUE(ok) << "core " << c
                            << ": committed data lost (" << when << ")";
            std::string why;
            EXPECT_TRUE(wls[c]->verifyStructure(&why))
                << "core " << c << ": " << why << " (" << when << ")";
        }
    }
};

TEST(MediaTolerance, ScrubRetirementSurvivesCrashAndRecovery)
{
    SoakLikeRig rig(Scheme::Hoop, 2, 7);
    rig.runTx(10); // warmup: put committed data on the media

    // Permanent damage over then-free capacity only: the program-
    // verify contract keeps new data off it, so committed data must
    // survive while the scrubber and allocators retire the bad units.
    installRuntimeFaults(*rig.sys, rig.cfg, 0.05, 0);
    rig.runTx(80);

    const ControllerGauges before = rig.sys->controller().sampleGauges();
    EXPECT_GT(before.retiredUnits, 0u)
        << "a 5% fault rate over free capacity retired nothing";
    EXPECT_GT(before.correctedWords, 0u)
        << "single-bit stripes produced no ECC corrections";

    rig.sys->crash();
    rig.sys->recover(2);
    for (auto &wl : rig.wls)
        wl->dropPendingShadow();

    const ControllerGauges after = rig.sys->controller().sampleGauges();
    EXPECT_GE(after.retiredUnits, before.retiredUnits)
        << "recovery forgot durably retired units";
    rig.expectIntact("after crash + recovery on accumulated damage");
}

TEST(MediaTolerance, MidTxRejectionUnwindsThroughCrashRecovery)
{
    // Deterministic mid-transaction rejection: disable the admission
    // gate (rejectCapacityFraction > 1 never trips) and make every
    // free log slot uncorrectable, so the ring exhausts through burns
    // mid-transaction. The contract: a structured TxRejected — never
    // an abort — and crash + recovery discards the partial transaction
    // while keeping everything committed before it.
    // A small aux region keeps the ring short: exhausting it burns
    // (and durably retires) every slot once, so ring size is the
    // dominant cost of this test.
    SoakLikeRig rig(Scheme::OptRedo, 1, 11, [](SystemConfig &c) {
        c.ft.rejectCapacityFraction = 2.0;
        c.auxBytes = 2 * 1024 * 1024;
    });
    rig.runTx(10);

    for (const auto &r : rig.sys->controller().freeMediaRanges())
        rig.sys->nvm().faults().addMediaFault(
            r.first, r.second, MediaFaultKind::StuckAtOne, 1.0, 8);

    bool rejected = false;
    for (unsigned n = 0; n < 200 && !rejected; ++n) {
        try {
            rig.wls[0]->runTransaction(rig.txi++);
            rig.sys->maintenance();
        } catch (const TxRejected &rj) {
            EXPECT_NE(rj.cause, RejectCause::CapacityDegraded)
                << "admission gate fired despite being disabled";
            rejected = true;
        }
    }
    ASSERT_TRUE(rejected)
        << "ring with every free slot uncorrectable never exhausted";

    rig.sys->crash();
    rig.sys->recover(1);
    for (auto &wl : rig.wls)
        wl->dropPendingShadow();
    rig.expectIntact("after mid-tx rejection unwound through recovery");
}

} // namespace
} // namespace hoopnvm
