/**
 * @file
 * Unit tests for the hoop_lint rule engine: every rule fires on its
 * seeded-bad fixture, stays quiet on clean code, and the two
 * suppression channels (inline annotation, checked-in baseline) round
 * trip — including their failure modes (malformed annotation, stale
 * baseline entry), which must themselves count as violations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.hh"

namespace hoopnvm
{
namespace lint
{
namespace
{

LintReport
lintOne(const std::string &path, const std::string &code,
        const LintOptions &opts = {})
{
    return lintFiles({{path, code}}, opts);
}

std::vector<std::string>
firedRules(const LintReport &rep, bool includeSuppressed = false)
{
    std::vector<std::string> out;
    for (const Diagnostic &d : rep.diags) {
        if (d.suppressed && !includeSuppressed)
            continue;
        out.push_back(d.rule);
    }
    return out;
}

TEST(LintFixtures, EveryRuleHasALiveBadFixture)
{
    std::set<std::string> covered;
    for (const Fixture &fx : badFixtures()) {
        ASSERT_TRUE(ruleKnown(fx.rule)) << fx.rule;
        const LintReport rep = lintOne(fx.path, fx.code);
        const std::vector<std::string> fired = firedRules(rep);
        EXPECT_NE(std::find(fired.begin(), fired.end(), fx.rule),
                  fired.end())
            << "fixture for '" << fx.rule << "' did not fire its rule";
        covered.insert(fx.rule);
    }
    for (const RuleInfo &r : ruleCatalog())
        EXPECT_TRUE(covered.count(r.name))
            << "rule '" << r.name << "' has no bad fixture";
}

TEST(LintFixtures, CleanFixtureIsQuiet)
{
    const SourceFile &clean = cleanFixture();
    const LintReport rep = lintFiles({clean});
    EXPECT_TRUE(rep.clean());
    EXPECT_TRUE(firedRules(rep, true).empty());
}

TEST(LintFixtures, DiagnosticsCarryFileAndLine)
{
    for (const Fixture &fx : badFixtures()) {
        const LintReport rep = lintOne(fx.path, fx.code);
        for (const Diagnostic &d : rep.diags) {
            EXPECT_EQ(d.file, fx.path);
            EXPECT_GE(d.line, 1u);
            EXPECT_FALSE(d.message.empty());
        }
    }
}

TEST(LintAnnotation, SameLineSuppresses)
{
    const LintReport rep = lintOne(
        "src/x.cc",
        "void f() {\n"
        "    srand(42); // lint: nondet-api-ok (test vector seeding)\n"
        "}\n");
    ASSERT_EQ(rep.diags.size(), 1u);
    EXPECT_TRUE(rep.diags[0].suppressed);
    EXPECT_EQ(rep.diags[0].suppressedBy, "test vector seeding");
    EXPECT_EQ(rep.unsuppressed, 0u);
    EXPECT_TRUE(rep.clean());
}

TEST(LintAnnotation, CommentLineAboveBindsToNextCodeLine)
{
    const LintReport rep = lintOne(
        "src/x.cc",
        "void f() {\n"
        "    // lint: nondet-api-ok (host profiling only)\n"
        "    srand(42);\n"
        "}\n");
    ASSERT_EQ(rep.diags.size(), 1u);
    EXPECT_TRUE(rep.diags[0].suppressed);
    EXPECT_TRUE(rep.clean());
}

TEST(LintAnnotation, WrongRuleDoesNotSuppress)
{
    const LintReport rep = lintOne(
        "src/x.cc",
        "void f() {\n"
        "    srand(42); // lint: float-eq-ok (wrong rule)\n"
        "}\n");
    ASSERT_EQ(rep.diags.size(), 1u);
    EXPECT_FALSE(rep.diags[0].suppressed);
    EXPECT_EQ(rep.unsuppressed, 1u);
    EXPECT_FALSE(rep.clean());
}

TEST(LintAnnotation, MalformedAnnotationIsAnError)
{
    // Unknown rule name.
    LintReport rep = lintOne(
        "src/x.cc", "int a; // lint: no-such-rule-ok (reason)\n");
    ASSERT_EQ(rep.annotationErrors.size(), 1u);
    EXPECT_FALSE(rep.clean());

    // Missing reason.
    rep = lintOne("src/x.cc", "int a; // lint: nondet-api-ok\n");
    ASSERT_EQ(rep.annotationErrors.size(), 1u);
    EXPECT_FALSE(rep.clean());

    // Empty reason.
    rep = lintOne("src/x.cc", "int a; // lint: nondet-api-ok ()\n");
    ASSERT_EQ(rep.annotationErrors.size(), 1u);
    EXPECT_FALSE(rep.clean());
}

TEST(LintAnnotation, ProseMentionsAreNotMarkers)
{
    // "hoop_lint:" and doc text quoting the grammar must not parse as
    // annotations (the marker needs a word boundary and a rule token).
    const LintReport rep = lintOne(
        "src/x.cc",
        "// hoop_lint: the checker described in DESIGN.md\n"
        "// annotate with lint: <rule>-ok (reason)\n"
        "int a;\n");
    EXPECT_TRUE(rep.annotationErrors.empty());
    EXPECT_TRUE(rep.clean());
}

TEST(LintBaseline, EntrySuppressesWholeFileRulePair)
{
    LintOptions opts;
    opts.baseline = {"src/x.cc:nondet-api"};
    const LintReport rep = lintOne(
        "src/x.cc",
        "void f() {\n"
        "    srand(42);\n"
        "    rand();\n"
        "}\n",
        opts);
    ASSERT_EQ(rep.diags.size(), 2u);
    for (const Diagnostic &d : rep.diags) {
        EXPECT_TRUE(d.suppressed);
        EXPECT_EQ(d.suppressedBy, "baseline");
    }
    EXPECT_TRUE(rep.staleBaseline.empty());
    EXPECT_TRUE(rep.clean());
}

TEST(LintBaseline, StaleEntryFailsTheRun)
{
    LintOptions opts;
    opts.baseline = {"src/x.cc:nondet-api", "src/gone.cc:float-eq"};
    const LintReport rep = lintOne(
        "src/x.cc", "void f() { srand(42); }\n", opts);
    ASSERT_EQ(rep.staleBaseline.size(), 1u);
    EXPECT_EQ(rep.staleBaseline[0], "src/gone.cc:float-eq");
    EXPECT_FALSE(rep.clean());
}

TEST(LintBaseline, ParserSkipsCommentsAndBlanks)
{
    const std::vector<std::string> entries = parseBaselineText(
        "# header comment\n"
        "\n"
        "  src/a.cc:nondet-api  \n"
        "# trailing comment\n"
        "src/b.cc:raw-json");
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0], "src/a.cc:nondet-api");
    EXPECT_EQ(entries[1], "src/b.cc:raw-json");
}

TEST(LintRules, StatsLookupExemptInConstructor)
{
    // The PR 2 invariant: string-keyed lookups are fine in a
    // constructor init body (that is where counters get resolved),
    // and a violation everywhere else.
    const LintReport ctor = lintOne(
        "src/x.cc",
        "Foo::Foo()\n"
        "{\n"
        "    c_ = stats_.counter(\"tx_committed\");\n"
        "}\n");
    EXPECT_TRUE(firedRules(ctor).empty());

    const LintReport hot = lintOne(
        "src/x.cc",
        "void Foo::commit()\n"
        "{\n"
        "    stats_.counter(\"tx_committed\") += 1;\n"
        "}\n");
    const std::vector<std::string> fired = firedRules(hot);
    EXPECT_NE(std::find(fired.begin(), fired.end(), "stats-lookup"),
              fired.end());
}

TEST(LintRules, SortedKeysIterationIsBlessed)
{
    const std::string decl =
        "std::unordered_map<Addr, LineImage> writes;\n";
    const LintReport bad = lintOne(
        "src/x.cc",
        decl + "void f() { for (const auto &kv : writes) {} }\n");
    EXPECT_EQ(firedRules(bad),
              std::vector<std::string>{"unordered-iter"});

    const LintReport good = lintOne(
        "src/x.cc",
        decl +
            "void f() { for (const Addr a : sortedKeys(writes)) {} }\n");
    EXPECT_TRUE(firedRules(good).empty());
}

TEST(LintRules, HeaderPairingSeesMembersAcrossFiles)
{
    // A member declared unordered in foo.hh must make a range-for in
    // foo.cc fire, even though foo.cc never names the container type.
    const SourceFile hh{
        "src/foo.hh",
        "struct Foo { std::unordered_map<Addr, LineImage> live; };\n"};
    const SourceFile cc{
        "src/foo.cc", "void Foo::f() { for (auto &kv : live) {} }\n"};
    const LintReport rep = lintFiles({hh, cc});
    bool fired_in_cc = false;
    for (const Diagnostic &d : rep.diags)
        fired_in_cc |=
            d.file == "src/foo.cc" && d.rule == "unordered-iter";
    EXPECT_TRUE(fired_in_cc);
}

TEST(LintRules, StringAndCommentContentsNeverFire)
{
    const LintReport rep = lintOne(
        "src/x.cc",
        "// calls srand() and getenv() in prose\n"
        "const char *doc = \"srand(1); getenv(x); rand()\";\n"
        "const char *raw = R\"(system(\"rand\"))\";\n");
    EXPECT_TRUE(firedRules(rep, true).empty());
    EXPECT_TRUE(rep.clean());
}

TEST(LintReportShape, DiagsSortedByFileLineRule)
{
    const LintReport rep = lintFiles(
        {{"src/b.cc", "void f() { srand(1); }\n"},
         {"src/a.cc", "void g() { rand(); srand(2); }\n"}});
    ASSERT_GE(rep.diags.size(), 3u);
    for (std::size_t i = 1; i < rep.diags.size(); ++i) {
        const Diagnostic &p = rep.diags[i - 1];
        const Diagnostic &d = rep.diags[i];
        EXPECT_LE(std::tie(p.file, p.line, p.rule),
                  std::tie(d.file, d.line, d.rule));
    }
}

} // namespace
} // namespace lint
} // namespace hoopnvm
