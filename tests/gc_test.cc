/**
 * @file
 * Tests for HOOP's garbage collector (Algorithm 1): committed-data
 * migration with coalescing, block recycling, open-transaction
 * pinning, mapping-table cleanup and the data-reduction metric.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "hoop/hoop_controller.hh"

namespace hoopnvm
{
namespace
{

SystemConfig
gcConfig()
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.homeBytes = miB(16);
    cfg.oopBytes = miB(4);
    cfg.oopBlockBytes = miB(1);
    cfg.auxBytes = miB(32);
    return cfg;
}

struct GcFixture : ::testing::Test
{
    GcFixture()
        : cfg(gcConfig()), nvm(cfg.nvmCapacity(), cfg.nvm),
          ctrl(nvm, cfg)
    {
    }

    void
    storeWords(CoreId core, Addr base, unsigned words,
               std::uint64_t v0)
    {
        for (unsigned i = 0; i < words; ++i) {
            std::uint64_t v = v0 + i;
            std::uint8_t b[8];
            std::memcpy(b, &v, 8);
            ctrl.storeWord(core, base + 8 * i, b, 0);
        }
    }

    SystemConfig cfg;
    NvmDevice nvm;
    HoopController ctrl;
};

TEST_F(GcFixture, MigratesCommittedDataHome)
{
    ctrl.txBegin(0, 0);
    storeWords(0, 0x1000, 8, 100);
    ctrl.txEnd(0, 0);

    EXPECT_EQ(nvm.peekWord(0x1000), 0u); // not yet home
    ctrl.drain(0);                       // close block + GC
    EXPECT_EQ(nvm.peekWord(0x1000), 100u);
    EXPECT_EQ(nvm.peekWord(0x1038), 107u);
    EXPECT_GT(ctrl.gc().stats().value("runs"), 0u);
    EXPECT_GT(ctrl.gc().stats().value("blocks_recycled"), 0u);
}

TEST_F(GcFixture, CoalescesRepeatedUpdates)
{
    // Ten transactions updating the same word: GC must write it home
    // exactly once, with the latest value.
    for (int t = 0; t < 10; ++t) {
        ctrl.txBegin(0, 0);
        storeWords(0, 0x2000, 1, 100 + t);
        ctrl.txEnd(0, 0);
    }
    ctrl.drain(0);
    EXPECT_EQ(nvm.peekWord(0x2000), 109u);
    EXPECT_EQ(ctrl.gc().stats().value("home_lines_written"), 1u);
    // 10 tx * 8 B modified, 8 B migrated -> 90% reduction.
    EXPECT_NEAR(ctrl.gc().dataReductionRatio(), 0.9, 0.01);
}

TEST_F(GcFixture, LatestVersionWinsAcrossSlices)
{
    ctrl.txBegin(0, 0);
    storeWords(0, 0x3000, 8, 0); // fills one slice
    storeWords(0, 0x3000, 8, 50); // same words again, second slice
    ctrl.txEnd(0, 0);
    ctrl.drain(0);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(nvm.peekWord(0x3000 + 8 * i), 50u + i);
}

TEST_F(GcFixture, OpenTransactionPinsBlock)
{
    // Core 1 keeps a transaction open while core 0 commits work; GC
    // must not recycle the shared in-use block.
    ctrl.txBegin(1, 0);
    storeWords(1, 0x9000, 1, 1); // open tx has a buffered word only
    std::uint8_t line[kCacheLineSize] = {};
    ctrl.evictLine(1, 0x9040, line, true, ctrl.currentTx(1), 0x01, 0);

    ctrl.txBegin(0, 0);
    storeWords(0, 0x4000, 8, 7);
    ctrl.txEnd(0, 0);

    ctrl.region().closeCurrentBlock(0);
    ctrl.gc().run(0);
    // Nothing recycled: the single full block contains the open tx's
    // eviction slice.
    EXPECT_EQ(ctrl.gc().stats().value("blocks_recycled"), 0u);
    EXPECT_EQ(nvm.peekWord(0x4000), 0u);

    // After the open transaction commits, GC can proceed.
    ctrl.txEnd(1, 0);
    ctrl.region().closeCurrentBlock(0);
    ctrl.gc().run(0);
    EXPECT_GT(ctrl.gc().stats().value("blocks_recycled"), 0u);
    EXPECT_EQ(nvm.peekWord(0x4000), 7u);
    EXPECT_EQ(nvm.peekWord(0x9000), 1u);
}

TEST_F(GcFixture, MappingEntriesDroppedForCollectedBlocks)
{
    const TxId tx = ctrl.txBegin(0, 0);
    std::uint8_t line[kCacheLineSize] = {};
    std::uint64_t v = 77;
    std::memcpy(line, &v, 8);
    ctrl.evictLine(0, 0x5000, line, true, tx, 0x01, 0);
    ctrl.txEnd(0, 0);
    ASSERT_TRUE(ctrl.mappingTable().lookup(0x5000).has_value());

    ctrl.drain(0);
    EXPECT_FALSE(ctrl.mappingTable().lookup(0x5000).has_value());
    EXPECT_EQ(nvm.peekWord(0x5000), 77u);
    // The migrated line parks in the eviction buffer.
    std::uint8_t out[kCacheLineSize];
    EXPECT_TRUE(ctrl.evictionBuffer().get(0x5000, out));
}

TEST_F(GcFixture, EvictSliceParticipatesInCoalescing)
{
    // A committed eviction slice must deliver its words to GC even
    // though it is not part of the recovery chain: evict a word that
    // was never captured through storeWord.
    const TxId tx = ctrl.txBegin(0, 0);
    storeWords(0, 0x6000, 1, 11);
    std::uint8_t line[kCacheLineSize] = {};
    std::uint64_t v = 22;
    std::memcpy(line + 8, &v, 8); // word 1 of the line
    ctrl.evictLine(0, 0x6000, line, true, tx, /*mask=*/0x02, 0);
    ctrl.txEnd(0, 0);
    ctrl.drain(0);
    EXPECT_EQ(nvm.peekWord(0x6000), 11u); // from the chain slice
    EXPECT_EQ(nvm.peekWord(0x6008), 22u); // from the eviction slice
}

TEST_F(GcFixture, NoopWhenNothingCollectable)
{
    const Tick done = ctrl.gc().run(1000);
    EXPECT_EQ(done, 1000u);
    EXPECT_EQ(ctrl.gc().stats().value("runs"), 0u);
    EXPECT_GT(ctrl.gc().stats().value("noop_runs"), 0u);
}

TEST_F(GcFixture, PeriodicMaintenanceTriggersGc)
{
    ctrl.txBegin(0, 0);
    storeWords(0, 0x7000, 8, 3);
    ctrl.txEnd(0, 0);
    ctrl.region().closeCurrentBlock(0);
    // Before the period elapses: no GC.
    ctrl.maintenance(cfg.gcPeriod / 2);
    const auto runs_before = ctrl.gc().stats().value("runs");
    // After the period: GC fires.
    ctrl.maintenance(cfg.gcPeriod + 1);
    EXPECT_GT(ctrl.gc().stats().value("runs"), runs_before);
}

TEST_F(GcFixture, GcChargesNvmTraffic)
{
    ctrl.txBegin(0, 0);
    storeWords(0, 0x8000, 8, 1);
    ctrl.txEnd(0, 0);
    const auto written_before = nvm.bytesWritten();
    const auto read_before = nvm.bytesRead();
    ctrl.drain(0);
    EXPECT_GT(nvm.bytesRead(), read_before);     // slice + home reads
    EXPECT_GT(nvm.bytesWritten(), written_before); // home lines
}

} // namespace
} // namespace hoopnvm
