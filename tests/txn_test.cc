/**
 * @file
 * Tests for the transaction/system layer: TxContext typed accessors,
 * the allocator, core clocks, crash scheduling, and System metrics.
 */

#include <gtest/gtest.h>

#include "txn/tx_context.hh"
#include "txn/sim_allocator.hh"

namespace hoopnvm
{
namespace
{

SystemConfig
txConfig()
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.homeBytes = miB(16);
    cfg.oopBytes = miB(4);
    cfg.auxBytes = miB(16) + miB(4);
    return cfg;
}

TEST(SimAllocator, ArenasAreDisjointAndAligned)
{
    SimAllocator a(0, miB(8), 4);
    const Addr x = a.alloc(0, 100, 64);
    const Addr y = a.alloc(0, 100, 64);
    EXPECT_TRUE(isAligned(x, 64));
    EXPECT_GE(y, x + 100);
    const Addr z = a.alloc(1, 100, 64);
    EXPECT_GE(z, miB(2)); // arena 1 starts at its own slice
    EXPECT_GT(a.bytesUsed(0), 0u);
    // Address 0 is reserved as the structures' null pointer.
    EXPECT_NE(x, 0u);
}

TEST(TxContext, TypedRoundTrip)
{
    SystemConfig cfg = txConfig();
    System sys(cfg, Scheme::Hoop);
    TxContext ctx(sys, 0, 7);

    struct Rec
    {
        std::uint64_t a;
        std::uint64_t b;
    };
    const Addr at = ctx.alloc(sizeof(Rec));
    ctx.txBegin();
    ctx.storeT(at, Rec{11, 22});
    ctx.txEnd();
    const Rec r = ctx.loadT<Rec>(at);
    EXPECT_EQ(r.a, 11u);
    EXPECT_EQ(r.b, 22u);
}

TEST(TxContext, InitBypassesTiming)
{
    SystemConfig cfg = txConfig();
    System sys(cfg, Scheme::Hoop);
    TxContext ctx(sys, 0, 7);
    const Addr at = ctx.alloc(64);
    const std::uint64_t v = 99;
    ctx.init(at, &v, 8);
    EXPECT_EQ(sys.core(0).clock(), 0u);
    EXPECT_EQ(ctx.debugLoad(at), 99u);
}

TEST(SystemClock, AdvancesMonotonically)
{
    SystemConfig cfg = txConfig();
    System sys(cfg, Scheme::Hoop);
    const Addr at = sys.alloc(0, 64);
    const Tick t0 = sys.core(0).clock();
    sys.txBegin(0);
    sys.storeWord(0, at, 1);
    sys.txEnd(0);
    EXPECT_GT(sys.core(0).clock(), t0);
    // Core 1 is untouched.
    EXPECT_EQ(sys.core(1).clock(), 0u);
    EXPECT_EQ(sys.minClock(), 0u);
    EXPECT_GT(sys.maxClock(), 0u);
}

TEST(SystemCrash, ScheduledCrashFires)
{
    SystemConfig cfg = txConfig();
    System sys(cfg, Scheme::Hoop);
    const Addr at = sys.alloc(0, 640);
    sys.scheduleCrashAfterStores(3);
    sys.txBegin(0);
    sys.storeWord(0, at, 1);
    sys.storeWord(0, at + 8, 2);
    EXPECT_THROW(sys.storeWord(0, at + 16, 3), SimCrash);
    sys.crash();
    sys.recover(1);
    // Nothing committed: all zero.
    EXPECT_EQ(sys.debugLoadWord(at), 0u);
}

TEST(SystemMetrics, CountsCommitsAndCriticalPath)
{
    SystemConfig cfg = txConfig();
    System sys(cfg, Scheme::Hoop);
    const Addr at = sys.alloc(0, 64);
    sys.beginMeasurement();
    for (int i = 0; i < 10; ++i) {
        sys.txBegin(0);
        sys.storeWord(0, at, i);
        sys.txEnd(0);
    }
    sys.finalize();
    const RunMetrics m = sys.metrics();
    EXPECT_EQ(m.transactions, 10u);
    EXPECT_GT(m.avgCriticalPathNs, 0.0);
    EXPECT_GT(m.txPerSecond, 0.0);
    EXPECT_GT(m.nvmBytesWritten, 0u);
}

TEST(SystemMetrics, MeasurementWindowResets)
{
    SystemConfig cfg = txConfig();
    System sys(cfg, Scheme::Native);
    const Addr at = sys.alloc(0, 64);
    sys.txBegin(0);
    sys.storeWord(0, at, 1);
    sys.txEnd(0);
    sys.beginMeasurement();
    EXPECT_EQ(sys.committedTx(), 0u);
    EXPECT_EQ(sys.metrics().nvmBytesWritten, 0u);
}

} // namespace
} // namespace hoopnvm
