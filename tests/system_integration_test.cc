/**
 * @file
 * End-to-end integration: every workload runs on every scheme and
 * verifies; cross-scheme metric relationships reproduce the paper's
 * qualitative claims (Table I / Figs. 7-8 directions).
 */

#include <gtest/gtest.h>

#include "workloads/registry.hh"

namespace hoopnvm
{
namespace
{

SystemConfig
intConfig()
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.homeBytes = miB(64);
    cfg.oopBytes = miB(8);
    cfg.auxBytes = miB(64) + miB(8);
    return cfg;
}

WorkloadParams
smallParams()
{
    WorkloadParams p;
    p.valueBytes = 64;
    p.scale = 256;
    return p;
}

/** (scheme, workload) sweep: run and verify. */
class SchemeWorkloadMatrix
    : public ::testing::TestWithParam<
          std::tuple<Scheme, const char *>>
{
};

TEST_P(SchemeWorkloadMatrix, RunsAndVerifies)
{
    const auto [scheme, name] = GetParam();
    SystemConfig cfg = intConfig();
    System sys(cfg, scheme);
    const RunOutcome out =
        runWorkload(sys, makeWorkload(name, smallParams()), 40);
    EXPECT_TRUE(out.verified)
        << schemeName(scheme) << "/" << name;
    EXPECT_EQ(out.metrics.transactions, 80u);
}

INSTANTIATE_TEST_SUITE_P(
    FullMatrix, SchemeWorkloadMatrix,
    ::testing::Combine(
        ::testing::Values(Scheme::Native, Scheme::Hoop, Scheme::OptRedo,
                          Scheme::OptUndo, Scheme::Osp, Scheme::Lsm,
                          Scheme::Lad),
        ::testing::Values("vector", "hashmap", "queue", "rbtree",
                          "btree", "ycsb", "tpcc")),
    [](const auto &info) {
        std::string n = schemeName(std::get<0>(info.param));
        for (auto &c : n) {
            if (c == '-')
                c = '_';
        }
        return n + "_" + std::get<1>(info.param);
    });

/** Run one workload on one scheme and return the metrics. */
RunMetrics
measure(Scheme scheme, const char *wl, std::uint64_t tx = 60)
{
    SystemConfig cfg = intConfig();
    System sys(cfg, scheme);
    const RunOutcome out =
        runWorkload(sys, makeWorkload(wl, smallParams()), tx);
    EXPECT_TRUE(out.verified) << schemeName(scheme) << "/" << wl;
    return out.metrics;
}

TEST(CrossScheme, NativeIsFastest)
{
    const RunMetrics native = measure(Scheme::Native, "hashmap");
    const RunMetrics hoop = measure(Scheme::Hoop, "hashmap");
    const RunMetrics redo = measure(Scheme::OptRedo, "hashmap");
    EXPECT_GE(native.txPerSecond, hoop.txPerSecond);
    EXPECT_GT(hoop.txPerSecond, redo.txPerSecond);
}

TEST(CrossScheme, HoopCriticalPathNearNative)
{
    const RunMetrics native = measure(Scheme::Native, "vector");
    const RunMetrics hoop = measure(Scheme::Hoop, "vector");
    const RunMetrics undo = measure(Scheme::OptUndo, "vector");
    // HOOP adds modest overhead over the ideal system (the paper's
    // full-scale transactions are larger, putting it at +24%; these
    // small vector transactions make the fixed commit write loom
    // larger)...
    EXPECT_LT(hoop.avgCriticalPathNs, native.avgCriticalPathNs * 8.0);
    // ...while undo logging's ordered flushes cost much more.
    EXPECT_GT(undo.avgCriticalPathNs, hoop.avgCriticalPathNs);
}

TEST(CrossScheme, LoggingWriteTrafficExceedsHoop)
{
    for (const char *wl : {"hashmap", "rbtree"}) {
        const RunMetrics hoop = measure(Scheme::Hoop, wl);
        const RunMetrics redo = measure(Scheme::OptRedo, wl);
        const RunMetrics undo = measure(Scheme::OptUndo, wl);
        EXPECT_GT(redo.bytesWrittenPerTx, hoop.bytesWrittenPerTx)
            << wl;
        EXPECT_GT(undo.bytesWrittenPerTx, hoop.bytesWrittenPerTx)
            << wl;
    }
}

TEST(CrossScheme, EnergyFollowsWriteTraffic)
{
    const RunMetrics hoop = measure(Scheme::Hoop, "btree");
    const RunMetrics redo = measure(Scheme::OptRedo, "btree");
    EXPECT_GT(redo.energyPj, hoop.energyPj);
}

TEST(CrashRecovery, WorkloadSurvivesCrashOnHoop)
{
    SystemConfig cfg = intConfig();
    System sys(cfg, Scheme::Hoop);
    auto factory = makeWorkload("hashmap", smallParams());
    std::vector<std::unique_ptr<Workload>> wls;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        wls.push_back(factory(sys, c));
        wls.back()->setup();
    }
    for (int i = 0; i < 60; ++i) {
        for (unsigned c = 0; c < cfg.numCores; ++c)
            wls[c]->runTransaction(i);
    }
    // Power failure with plenty of dirty state in the caches.
    sys.crash();
    sys.recover(4);
    for (unsigned c = 0; c < cfg.numCores; ++c)
        EXPECT_TRUE(wls[c]->verify()) << "core " << c;
}

TEST(CrashRecovery, HoopRecoveryTimeScalesWithThreads)
{
    auto build = [&]() {
        SystemConfig cfg = intConfig();
        auto sys = std::make_unique<System>(cfg, Scheme::Hoop);
        auto factory = makeWorkload("ycsb", smallParams());
        auto wl = factory(*sys, 0);
        wl->setup();
        for (int i = 0; i < 100; ++i)
            wl->runTransaction(i);
        sys->crash();
        return sys;
    };
    auto s1 = build();
    const Tick t1 = s1->recover(1);
    auto s8 = build();
    const Tick t8 = s8->recover(8);
    EXPECT_LE(t8, t1);
}

} // namespace
} // namespace hoopnvm
