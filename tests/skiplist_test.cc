/**
 * @file
 * Unit tests for the skip list used as LSM's DRAM-resident index,
 * including a randomized differential test against std::map.
 */

#include <gtest/gtest.h>

#include <map>

#include "baselines/skiplist.hh"
#include "common/rng.hh"

namespace hoopnvm
{
namespace
{

TEST(SkipList, InsertFind)
{
    SkipList s;
    s.insert(10, 100);
    s.insert(20, 200);
    s.insert(5, 50);
    EXPECT_EQ(s.size(), 3u);
    EXPECT_EQ(*s.find(10), 100u);
    EXPECT_EQ(*s.find(5), 50u);
    EXPECT_FALSE(s.find(7).has_value());
}

TEST(SkipList, InsertOverwrites)
{
    SkipList s;
    s.insert(1, 10);
    s.insert(1, 20);
    EXPECT_EQ(s.size(), 1u);
    EXPECT_EQ(*s.find(1), 20u);
}

TEST(SkipList, EraseRemoves)
{
    SkipList s;
    s.insert(1, 10);
    s.insert(2, 20);
    EXPECT_TRUE(s.erase(1));
    EXPECT_FALSE(s.erase(1));
    EXPECT_FALSE(s.find(1).has_value());
    EXPECT_EQ(*s.find(2), 20u);
    EXPECT_EQ(s.size(), 1u);
}

TEST(SkipList, OrderedIteration)
{
    SkipList s;
    for (std::uint64_t k : {9ull, 3ull, 7ull, 1ull, 5ull})
        s.insert(k, k * 10);
    std::uint64_t prev = 0;
    unsigned count = 0;
    s.forEach([&](std::uint64_t k, std::uint64_t v) {
        EXPECT_GT(k, prev);
        EXPECT_EQ(v, k * 10);
        prev = k;
        ++count;
    });
    EXPECT_EQ(count, 5u);
}

TEST(SkipList, ClearResets)
{
    SkipList s;
    for (std::uint64_t k = 0; k < 100; ++k)
        s.insert(k, k);
    s.clear();
    EXPECT_EQ(s.size(), 0u);
    EXPECT_FALSE(s.find(50).has_value());
    s.insert(1, 2);
    EXPECT_EQ(*s.find(1), 2u);
}

TEST(SkipList, HeightGrowsLogarithmically)
{
    SkipList s;
    for (std::uint64_t k = 0; k < 10000; ++k)
        s.insert(k, k);
    // Expected height ~ log2(10000) = 13; allow generous slack.
    EXPECT_GE(s.height(), 8u);
    EXPECT_LE(s.height(), SkipList::kMaxLevel);
}

TEST(SkipList, DifferentialAgainstStdMap)
{
    SkipList s;
    std::map<std::uint64_t, std::uint64_t> ref;
    Rng rng(321);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t key = rng.nextBounded(500);
        switch (rng.nextBounded(3)) {
          case 0:
            s.insert(key, i);
            ref[key] = static_cast<std::uint64_t>(i);
            break;
          case 1: {
            const bool erased_s = s.erase(key);
            const bool erased_r = ref.erase(key) > 0;
            ASSERT_EQ(erased_s, erased_r);
            break;
          }
          default: {
            auto v = s.find(key);
            auto it = ref.find(key);
            ASSERT_EQ(v.has_value(), it != ref.end());
            if (v) {
                ASSERT_EQ(*v, it->second);
            }
          }
        }
    }
    ASSERT_EQ(s.size(), ref.size());
    auto it = ref.begin();
    s.forEach([&](std::uint64_t k, std::uint64_t v) {
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(k, it->first);
        EXPECT_EQ(v, it->second);
        ++it;
    });
}

} // namespace
} // namespace hoopnvm
