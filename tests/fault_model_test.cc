/**
 * @file
 * Unit tests for the seeded NVM fault injector (fault_model.hh):
 * deterministic torn writes at 8-byte word granularity, and scheduled
 * media faults that corrupt reads reproducibly.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "nvm/nvm_device.hh"
#include "sim/system_config.hh"

namespace hoopnvm
{
namespace
{

constexpr Addr kBase = 0x10000;
constexpr std::size_t kLen = 256; // 32 words

NvmDevice
makeDevice(std::uint64_t seed, bool torn)
{
    const SystemConfig cfg;
    NvmDevice dev(cfg.nvmCapacity(), cfg.nvm);
    dev.faults().setSeed(seed);
    dev.faults().setTornWrites(torn);
    return dev;
}

/** Fill @p buf with a recognizable per-byte pattern. */
void
fillPattern(std::uint8_t *buf, std::size_t len, std::uint8_t tag)
{
    for (std::size_t i = 0; i < len; ++i)
        buf[i] = static_cast<std::uint8_t>(tag ^ (i * 131));
}

TEST(TornWrites, EachWordIsOldOrNew)
{
    NvmDevice dev = makeDevice(42, true);

    std::uint8_t oldv[kLen], newv[kLen], got[kLen];
    fillPattern(oldv, kLen, 0x11);
    fillPattern(newv, kLen, 0xee);
    dev.poke(kBase, oldv, kLen);

    const Tick done = dev.write(0, kBase, newv, kLen);
    ASSERT_GT(done, 0u);
    dev.applyCrashFaults(0); // crash before the write completes

    dev.peek(kBase, got, kLen);
    unsigned persisted = 0, reverted = 0;
    for (std::size_t w = 0; w < kLen; w += kWordSize) {
        const bool is_new = std::memcmp(got + w, newv + w, kWordSize) == 0;
        const bool is_old = std::memcmp(got + w, oldv + w, kWordSize) == 0;
        EXPECT_TRUE(is_new || is_old) << "word at offset " << w
                                      << " is neither old nor new";
        is_new ? ++persisted : ++reverted;
    }
    // With 32 words and a fair coin, both outcomes occur (probability
    // of a miss is 2^-32 per seed; seed 42 shows both).
    EXPECT_GT(persisted, 0u);
    EXPECT_GT(reverted, 0u);
    EXPECT_EQ(dev.faults().writesTorn(), 1u);
    EXPECT_EQ(dev.faults().wordsTorn(), reverted);
}

TEST(TornWrites, CompletedWritesNeverTear)
{
    NvmDevice dev = makeDevice(42, true);

    std::uint8_t newv[kLen], got[kLen];
    fillPattern(newv, kLen, 0xee);
    const Tick done = dev.write(0, kBase, newv, kLen);

    dev.applyCrashFaults(done); // crash exactly at completion
    dev.peek(kBase, got, kLen);
    EXPECT_EQ(std::memcmp(got, newv, kLen), 0)
        << "a write completed by the crash tick must persist whole";
    EXPECT_EQ(dev.faults().writesTorn(), 0u);
}

TEST(TornWrites, DeterministicUnderFixedSeed)
{
    // Two devices, same seed, same access stream, same crash tick:
    // byte-identical post-crash contents.
    for (int run = 0; run < 2; ++run) {
        NvmDevice a = makeDevice(7, true);
        NvmDevice b = makeDevice(7, true);
        Tick ta = 0, tb = 0;
        std::uint8_t buf[kLen];
        for (int i = 0; i < 8; ++i) {
            fillPattern(buf, kLen, static_cast<std::uint8_t>(i));
            ta = a.write(ta, kBase + i * kLen, buf, kLen);
            tb = b.write(tb, kBase + i * kLen, buf, kLen);
        }
        // Crash with the last few writes still in flight.
        const Tick crash = ta / 2;
        a.applyCrashFaults(crash);
        b.applyCrashFaults(crash);
        std::uint8_t ga[kLen], gb[kLen];
        for (int i = 0; i < 8; ++i) {
            a.peek(kBase + i * kLen, ga, kLen);
            b.peek(kBase + i * kLen, gb, kLen);
            ASSERT_EQ(std::memcmp(ga, gb, kLen), 0)
                << "same seed diverged at write " << i;
        }
    }
}

TEST(TornWrites, DifferentSeedsTearDifferently)
{
    NvmDevice a = makeDevice(1, true);
    NvmDevice b = makeDevice(2, true);
    std::uint8_t oldv[kLen], newv[kLen];
    fillPattern(oldv, kLen, 0x11);
    fillPattern(newv, kLen, 0xee);
    a.poke(kBase, oldv, kLen);
    b.poke(kBase, oldv, kLen);
    a.write(0, kBase, newv, kLen);
    b.write(0, kBase, newv, kLen);
    a.applyCrashFaults(0);
    b.applyCrashFaults(0);
    std::uint8_t ga[kLen], gb[kLen];
    a.peek(kBase, ga, kLen);
    b.peek(kBase, gb, kLen);
    EXPECT_NE(std::memcmp(ga, gb, kLen), 0)
        << "32-word tear masks should differ across seeds";
}

TEST(TornWrites, DisabledModelIsCleanCrash)
{
    NvmDevice dev = makeDevice(42, false);
    std::uint8_t newv[kLen], got[kLen];
    fillPattern(newv, kLen, 0xee);
    dev.write(0, kBase, newv, kLen);
    dev.applyCrashFaults(0);
    dev.peek(kBase, got, kLen);
    EXPECT_EQ(std::memcmp(got, newv, kLen), 0)
        << "with torn writes disabled every issued byte persists";
}

TEST(MediaFaults, StuckBitsReadTheSameEveryTime)
{
    NvmDevice dev = makeDevice(99, false);
    std::uint8_t data[kLen], first[kLen], again[kLen];
    fillPattern(data, kLen, 0x55);
    dev.poke(kBase, data, kLen);
    dev.faults().addMediaFault(kBase, kBase + kLen,
                               MediaFaultKind::StuckAtOne, 1.0);

    dev.peek(kBase, first, kLen);
    dev.peek(kBase, again, kLen);
    EXPECT_EQ(std::memcmp(first, again, kLen), 0)
        << "a faulty cell must read the same wrong value every time";

    // Every word differs from the stored data in at most one bit, and
    // that bit reads as 1.
    unsigned corrupted = 0;
    for (std::size_t w = 0; w < kLen; w += kWordSize) {
        std::uint64_t stored, seen;
        std::memcpy(&stored, data + w, kWordSize);
        std::memcpy(&seen, first + w, kWordSize);
        const std::uint64_t diff = stored ^ seen;
        EXPECT_EQ(diff & (diff - 1), 0u)
            << "more than one bit changed in one word";
        EXPECT_EQ(seen & diff, diff) << "stuck-at-one bit read as 0";
        if (diff)
            ++corrupted;
    }
    EXPECT_GT(corrupted, 0u);
}

TEST(MediaFaults, KindsBehaveAsNamed)
{
    // All-ones data: stuck-at-one is invisible, stuck-at-zero and
    // bit-flip both clear exactly the selected bit.
    NvmDevice one = makeDevice(5, false);
    NvmDevice zero = makeDevice(5, false);
    NvmDevice flip = makeDevice(5, false);
    std::vector<std::uint8_t> ones(kLen, 0xff);
    one.poke(kBase, ones.data(), kLen);
    zero.poke(kBase, ones.data(), kLen);
    flip.poke(kBase, ones.data(), kLen);
    one.faults().addMediaFault(kBase, kBase + kLen,
                               MediaFaultKind::StuckAtOne, 1.0);
    zero.faults().addMediaFault(kBase, kBase + kLen,
                                MediaFaultKind::StuckAtZero, 1.0);
    flip.faults().addMediaFault(kBase, kBase + kLen,
                                MediaFaultKind::BitFlip, 1.0);

    std::uint8_t g1[kLen], g0[kLen], gf[kLen];
    one.peek(kBase, g1, kLen);
    zero.peek(kBase, g0, kLen);
    flip.peek(kBase, gf, kLen);
    EXPECT_EQ(std::memcmp(g1, ones.data(), kLen), 0);
    // Same seed selects the same faulty bits, so clearing them (stuck
    // at zero) and flipping them (xor on all-ones) agree.
    EXPECT_NE(std::memcmp(g0, ones.data(), kLen), 0);
    EXPECT_EQ(std::memcmp(g0, gf, kLen), 0);
}

TEST(MediaFaults, RangePredicateMatchesCorruption)
{
    NvmDevice dev = makeDevice(11, false);
    dev.faults().addMediaFault(kBase, kBase + kLen,
                               MediaFaultKind::BitFlip, 0.5);
    EXPECT_TRUE(dev.faults().mediaFaultyRange(kBase, kLen));
    EXPECT_FALSE(dev.faults().mediaFaultyRange(kBase + kLen, kLen))
        << "addresses outside every scheduled range are never faulty";

    // Words the predicate calls clean read back clean.
    std::uint8_t data[kLen], got[kLen];
    fillPattern(data, kLen, 0x3c);
    dev.poke(kBase, data, kLen);
    dev.peek(kBase, got, kLen);
    for (std::size_t w = 0; w < kLen; w += kWordSize) {
        if (!dev.faults().mediaFaultyRange(kBase + w, kWordSize)) {
            EXPECT_EQ(std::memcmp(got + w, data + w, kWordSize), 0)
                << "word the predicate calls clean was corrupted";
        }
    }
}

TEST(MediaFaults, ZeroProbabilityIsClean)
{
    NvmDevice dev = makeDevice(11, false);
    dev.faults().addMediaFault(kBase, kBase + kLen,
                               MediaFaultKind::BitFlip, 0.0);
    std::uint8_t data[kLen], got[kLen];
    fillPattern(data, kLen, 0x3c);
    dev.poke(kBase, data, kLen);
    dev.peek(kBase, got, kLen);
    EXPECT_EQ(std::memcmp(got, data, kLen), 0);
    EXPECT_FALSE(dev.faults().mediaFaultyRange(kBase, kLen));
}

TEST(MediaFaults, StuckAtFaultsReadTheSameAtEveryAttempt)
{
    // Stuck-at damage is permanent: even with transient clearing
    // configured (which only applies to BitFlip faults), the corrupted
    // value must be identical at every retry attempt, and each kind
    // must drive the affected bits toward its named polarity.
    NvmDevice dev = makeDevice(77, false);
    FaultModel &fm = dev.faults();
    fm.setTransientFaults(4);
    fm.addMediaFault(kBase, kBase + kLen / 2,
                     MediaFaultKind::StuckAtZero, 1.0, 2);
    fm.addMediaFault(kBase + kLen / 2, kBase + kLen,
                     MediaFaultKind::StuckAtOne, 1.0, 2);

    std::uint8_t data[kLen];
    fillPattern(data, kLen, 0xa5);
    std::uint8_t first[kLen];
    std::memcpy(first, data, kLen);
    fm.filterRead(kBase, first, kLen, 0, nullptr);
    EXPECT_NE(std::memcmp(first, data, kLen), 0);

    for (unsigned attempt = 1; attempt <= 6; ++attempt) {
        std::uint8_t got[kLen];
        std::memcpy(got, data, kLen);
        fm.filterRead(kBase, got, kLen, attempt, nullptr);
        EXPECT_EQ(std::memcmp(got, first, kLen), 0)
            << "stuck-at corruption changed at attempt " << attempt;
    }

    for (std::size_t w = 0; w < kLen; w += kWordSize) {
        std::uint64_t stored, seen;
        std::memcpy(&stored, data + w, kWordSize);
        std::memcpy(&seen, first + w, kWordSize);
        const std::uint64_t diff = stored ^ seen;
        if (w < kLen / 2)
            EXPECT_EQ(seen & diff, 0u) << "stuck-at-zero bit read as 1";
        else
            EXPECT_EQ(seen & diff, diff)
                << "stuck-at-one bit read as 0";
    }
}

TEST(MediaFaults, FirstScheduledRangeWinsOnOverlap)
{
    // Two devices, same seed: one with a single scheduled range, one
    // with the same range plus a later overlapping range of different
    // kind and a much larger bit budget. First-covering-range
    // precedence means the overlap contributes nothing.
    NvmDevice a = makeDevice(13, false);
    NvmDevice b = makeDevice(13, false);
    std::uint8_t data[kLen];
    fillPattern(data, kLen, 0x66);
    a.poke(kBase, data, kLen);
    b.poke(kBase, data, kLen);
    a.faults().addMediaFault(kBase, kBase + kLen,
                             MediaFaultKind::StuckAtOne, 1.0, 1);
    b.faults().addMediaFault(kBase, kBase + kLen,
                             MediaFaultKind::StuckAtOne, 1.0, 1);
    b.faults().addMediaFault(kBase, kBase + kLen,
                             MediaFaultKind::StuckAtZero, 1.0, 8);

    std::uint8_t ga[kLen], gb[kLen];
    a.peek(kBase, ga, kLen);
    b.peek(kBase, gb, kLen);
    EXPECT_EQ(std::memcmp(ga, gb, kLen), 0)
        << "a later overlapping range changed first-range corruption";

    // The precedence also governs severity: the winning range's 1-bit
    // budget keeps every faulty word within a 1-bit ECC, even though
    // the shadowed range would have made most words uncorrectable.
    b.faults().setEcc(1);
    EXPECT_FALSE(b.faults().uncorrectableInRange(kBase, kLen));
    for (std::size_t w = 0; w < kLen; w += kWordSize) {
        const FaultSeverity sev = b.faults().classifySeverity(kBase + w);
        EXPECT_NE(sev, FaultSeverity::Uncorrectable)
            << "shadowed range's bit budget leaked into word " << w;
    }
}

TEST(MediaFaults, ResetRestoresPristineMediaButKeepsWiring)
{
    NvmDevice dev = makeDevice(21, false);
    FaultModel &fm = dev.faults();
    fm.setEcc(1);
    fm.setTransientFaults(3);
    fm.addMediaFault(kBase, kBase + kLen, MediaFaultKind::StuckAtOne,
                     1.0, 3);

    std::uint8_t data[kLen], got[kLen];
    fillPattern(data, kLen, 0x0f);
    dev.poke(kBase, data, kLen);
    dev.peek(kBase, got, kLen);
    EXPECT_NE(std::memcmp(got, data, kLen), 0);
    EXPECT_GT(fm.wordsCorrupted() + fm.wordsEccCorrected() +
                  fm.wordsUncorrectable(),
              0u);

    fm.reset();

    // Fault state and tallies are gone ...
    EXPECT_FALSE(fm.hasMediaFaults());
    EXPECT_EQ(fm.wordsCorrupted(), 0u);
    EXPECT_EQ(fm.wordsEccCorrected(), 0u);
    EXPECT_EQ(fm.wordsTransientCleared(), 0u);
    EXPECT_EQ(fm.wordsUncorrectable(), 0u);
    EXPECT_EQ(fm.inflight(), 0u);
    dev.peek(kBase, got, kLen);
    EXPECT_EQ(std::memcmp(got, data, kLen), 0)
        << "reset() must leave a fault-free injector";

    // ... but the media-tolerance policy is wiring and survives.
    EXPECT_EQ(fm.eccBits(), 1u);
    EXPECT_EQ(fm.transientAttempts(), 3u);

    // The injector is reusable: a re-scheduled single-bit fault is
    // corrected by the surviving ECC config and counted again.
    fm.addMediaFault(kBase, kBase + kLen, MediaFaultKind::StuckAtOne,
                     1.0, 1);
    dev.peek(kBase, got, kLen);
    EXPECT_EQ(std::memcmp(got, data, kLen), 0)
        << "1-bit faults within a 1-bit ECC must be delivered clean";
    EXPECT_GT(fm.wordsEccCorrected(), 0u);
}

} // namespace
} // namespace hoopnvm
