/**
 * @file
 * End-to-end smoke test for a bench binary: runs it with a tiny
 * transaction count (HOOP_BENCH_TX) on a 2-thread pool and validates
 * the machine-readable BENCH_<name>.json it emits against the schema —
 * well-formed JSON, schema_version, the config/host summary blocks,
 * and per-cell records with labels, wall seconds, and metrics.
 *
 * Usage: bench_smoke_test <path-to-bench-binary> <expected-json-name>
 * (wired up by tests/CMakeLists.txt with $<TARGET_FILE:bench_workloads>).
 * Plain main, no gtest: the bench path comes in via argv.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace
{

int failures = 0;

#define CHECK(cond, ...)                                                \
    do {                                                                \
        if (!(cond)) {                                                  \
            std::fprintf(stderr, "FAIL %s:%d: ", __FILE__, __LINE__);   \
            std::fprintf(stderr, __VA_ARGS__);                          \
            std::fprintf(stderr, "\n");                                 \
            ++failures;                                                 \
        }                                                               \
    } while (0)

/** Minimal JSON value: just enough to validate the bench schema. */
struct Json
{
    enum Kind { Null, Bool, Num, Str, Arr, Obj } kind = Null;
    double num = 0.0;
    bool boolean = false;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    const Json *find(const std::string &key) const
    {
        auto it = obj.find(key);
        return it == obj.end() ? nullptr : &it->second;
    }
};

/** Recursive-descent parser; returns false on malformed input. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    bool parse(Json &out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        return pos == s.size();
    }

  private:
    const std::string &s;
    std::size_t pos = 0;

    void skipWs()
    {
        while (pos < s.size() && std::isspace(
                   static_cast<unsigned char>(s[pos])))
            ++pos;
    }
    bool eat(char c)
    {
        skipWs();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }
    bool value(Json &out)
    {
        skipWs();
        if (pos >= s.size())
            return false;
        const char c = s[pos];
        if (c == '{')
            return object(out);
        if (c == '[')
            return array(out);
        if (c == '"') {
            out.kind = Json::Str;
            return string(out.str);
        }
        if (s.compare(pos, 4, "true") == 0) {
            out.kind = Json::Bool;
            out.boolean = true;
            pos += 4;
            return true;
        }
        if (s.compare(pos, 5, "false") == 0) {
            out.kind = Json::Bool;
            pos += 5;
            return true;
        }
        if (s.compare(pos, 4, "null") == 0) {
            pos += 4;
            return true;
        }
        return number(out);
    }
    bool number(Json &out)
    {
        const char *start = s.c_str() + pos;
        char *end = nullptr;
        out.num = std::strtod(start, &end);
        if (end == start)
            return false;
        out.kind = Json::Num;
        pos += static_cast<std::size_t>(end - start);
        return true;
    }
    bool string(std::string &out)
    {
        if (!eat('"'))
            return false;
        out.clear();
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\') {
                if (++pos >= s.size())
                    return false;
                switch (s[pos]) {
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'r': out += '\r'; break;
                case '\\': out += '\\'; break;
                case '"': out += '"'; break;
                case '/': out += '/'; break;
                case 'u': {
                    // The bench only emits \u00XX (control bytes).
                    if (pos + 4 >= s.size())
                        return false;
                    unsigned v = 0;
                    for (int d = 1; d <= 4; ++d) {
                        const char h = s[pos + d];
                        if (!std::isxdigit(
                                static_cast<unsigned char>(h)))
                            return false;
                        v = v * 16 +
                            (h <= '9' ? h - '0'
                                      : (std::tolower(h) - 'a') + 10);
                    }
                    if (v > 0xff)
                        return false;
                    out += static_cast<char>(v);
                    pos += 4;
                    break;
                }
                default: return false;
                }
                ++pos;
            } else {
                out += s[pos++];
            }
        }
        return pos < s.size() && s[pos++] == '"';
    }
    bool object(Json &out)
    {
        if (!eat('{'))
            return false;
        out.kind = Json::Obj;
        skipWs();
        if (eat('}'))
            return true;
        do {
            std::string key;
            if (!string(key) || !eat(':'))
                return false;
            Json v;
            if (!value(v))
                return false;
            out.obj.emplace(std::move(key), std::move(v));
        } while (eat(','));
        return eat('}');
    }
    bool array(Json &out)
    {
        if (!eat('['))
            return false;
        out.kind = Json::Arr;
        skipWs();
        if (eat(']'))
            return true;
        do {
            Json v;
            if (!value(v))
                return false;
            out.arr.push_back(std::move(v));
        } while (eat(','));
        return eat(']');
    }
};

void
requireNum(const Json &obj, const char *key, const char *where)
{
    const Json *v = obj.find(key);
    CHECK(v != nullptr, "%s missing key \"%s\"", where, key);
    if (v)
        CHECK(v->kind == Json::Num, "%s key \"%s\" is not a number",
              where, key);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::fprintf(stderr,
                     "usage: %s <bench-binary> <expected-json-name>\n",
                     argv[0]);
        return 2;
    }
    const std::string bench = argv[1];
    const std::string jsonName = argv[2];

    // Tiny run: a handful of transactions on a 2-thread pool, JSON
    // into the CWD (the ctest working directory).
    ::setenv("HOOP_BENCH_TX", "3", 1);
    ::setenv("HOOP_BENCH_JOBS", "2", 1);
    ::setenv("HOOP_BENCH_JSON_DIR", ".", 1);
    std::remove(jsonName.c_str());

    // lint: raw-json-ok (shell-command quoting for std::system, not JSON emission)
    const std::string cmd = "\"" + bench + "\" > bench_smoke_stdout.txt";
    const int rc = std::system(cmd.c_str());
    CHECK(rc == 0, "bench exited with status %d", rc);

    std::ifstream in(jsonName);
    CHECK(in.good(), "bench did not write %s", jsonName.c_str());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    CHECK(!text.empty(), "%s is empty", jsonName.c_str());

    Json root;
    CHECK(Parser(text).parse(root), "%s is not well-formed JSON",
          jsonName.c_str());
    if (failures)
        return 1;

    CHECK(root.kind == Json::Obj, "root is not an object");
    const Json *ver = root.find("schema_version");
    CHECK(ver && ver->kind == Json::Num && ver->num == 5.0,
          "schema_version != 5");
    const Json *name = root.find("bench");
    CHECK(name && name->kind == Json::Str && !name->str.empty(),
          "missing bench name");

    const Json *config = root.find("config");
    CHECK(config && config->kind == Json::Obj, "missing config object");
    if (config && config->kind == Json::Obj) {
        for (const char *k :
             {"num_cores", "cpu_ghz", "l1_bytes", "l2_bytes",
              "llc_bytes", "oop_bytes", "oop_block_bytes",
              "mapping_table_bytes", "nvm_read_ns", "nvm_write_ns",
              "tx_per_core"})
            requireNum(*config, k, "config");
    }

    const Json *host = root.find("host");
    CHECK(host && host->kind == Json::Obj, "missing host object");
    if (host && host->kind == Json::Obj) {
        for (const char *k : {"jobs", "wall_seconds", "cells",
                              "cells_per_sec", "sim_ticks",
                              "sim_ticks_per_sec"})
            requireNum(*host, k, "host");
        const Json *jobs = host->find("jobs");
        if (jobs)
            CHECK(jobs->num == 2.0, "host.jobs should honour "
                  "HOOP_BENCH_JOBS=2, got %g", jobs->num);
    }

    const Json *cells = root.find("cells");
    CHECK(cells && cells->kind == Json::Arr, "missing cells array");
    if (cells && cells->kind == Json::Arr) {
        CHECK(!cells->arr.empty(), "cells array is empty");
        for (std::size_t i = 0; i < cells->arr.size(); ++i) {
            const Json &cell = cells->arr[i];
            CHECK(cell.kind == Json::Obj, "cell %zu not an object", i);
            const Json *label = cell.find("label");
            CHECK(label && label->kind == Json::Str &&
                      !label->str.empty(),
                  "cell %zu missing label", i);
            requireNum(cell, "seconds", "cell");
            const Json *metrics = cell.find("metrics");
            if (metrics) {
                CHECK(metrics->kind == Json::Obj,
                      "cell %zu metrics not an object", i);
                for (const char *k :
                     {"transactions", "sim_ticks", "tx_per_second",
                      "nvm_bytes_written", "nvm_bytes_read"})
                    requireNum(*metrics, k, "metrics");
                // Schema v2: latency quantile summaries + epoch ring.
                // Schema v3 adds the scrub pause summary and the
                // media-tolerance tallies below. Schema v4 adds the
                // p999 tail quantile and the client-activity epoch
                // gauges (fleet degradation timelines). Schema v5
                // adds the under-populated-quantile markers, the NVM
                // channel-occupancy gauges and the per-role block.
                for (const char *k :
                     {"crit_path", "llc_miss_lat", "gc_pause",
                      "scrub_pause"}) {
                    const Json *sum = metrics->find(k);
                    CHECK(sum && sum->kind == Json::Obj,
                          "cell %zu metrics missing summary \"%s\"",
                          i, k);
                    if (sum && sum->kind == Json::Obj) {
                        for (const char *q :
                             {"count", "p50_ns", "p95_ns", "p99_ns",
                              "p999_ns", "max_ns", "mean_ns",
                              "p50_saturated", "p95_saturated",
                              "p99_saturated", "p999_saturated"})
                            requireNum(*sum, q, k);
                    }
                }
                for (const char *k :
                     {"ecc_corrected_words", "uncorrectable_reads",
                      "read_retries", "retired_units", "tx_rejected",
                      "degraded_fraction", "channel_busy_ticks",
                      "channel_wait_ticks", "drain_fences",
                      "channel_utilization"})
                    requireNum(*metrics, k, "metrics");
                const Json *roles = metrics->find("roles");
                CHECK(roles && roles->kind == Json::Arr,
                      "cell %zu metrics missing roles array", i);
                if (roles && roles->kind == Json::Arr) {
                    // Empty for every non-interference bench; when a
                    // role is present it carries the full record.
                    for (const Json &r : roles->arr) {
                        CHECK(r.kind == Json::Obj,
                              "role entry not an object");
                        const Json *rn = r.find("role");
                        CHECK(rn && rn->kind == Json::Str &&
                                  !rn->str.empty(),
                              "role entry missing name");
                        requireNum(r, "transactions", "role");
                        requireNum(r, "tx_per_second", "role");
                        const Json *lat = r.find("latency");
                        CHECK(lat && lat->kind == Json::Obj,
                              "role entry missing latency summary");
                    }
                }
                const Json *epochs = metrics->find("epochs");
                CHECK(epochs && epochs->kind == Json::Arr,
                      "cell %zu metrics missing epochs array", i);
                if (epochs && epochs->kind == Json::Arr) {
                    for (const Json &e : epochs->arr) {
                        CHECK(e.kind == Json::Obj,
                              "epoch entry not an object");
                        for (const char *k :
                             {"at_ticks", "mapping_entries",
                              "struct_bytes", "backpressure_stalls",
                              "inflight_writes", "retired_units",
                              "corrected_words", "degraded_fraction",
                              "tx_rejected", "client_retry_attempts",
                              "client_backoff_ticks",
                              "client_deadline_misses",
                              "client_shed_admissions",
                              "channel_busy_ticks",
                              "channel_wait_ticks"})
                            requireNum(e, k, "epoch");
                    }
                }
            }
        }
    }

    if (failures) {
        std::fprintf(stderr, "%d check(s) failed\n", failures);
        return 1;
    }
    std::printf("bench smoke OK: %s -> %s (%zu cells)\n", bench.c_str(),
                jsonName.c_str(),
                cells ? cells->arr.size() : 0);
    return 0;
}
