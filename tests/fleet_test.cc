/**
 * @file
 * Tests for the sharded fleet harness: deterministic arrival streams
 * (bit-identical generated serially or from a worker pool), the
 * shared client retry/backoff/deadline policy, chaos profile
 * expansion, clean fleet runs under chaos with every request ending
 * in a structured outcome, spec JSON round-trips, and the seeded
 * ack-before-durable self-test (the oracles must be able to fail).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "fleet/arrivals.hh"
#include "fleet/chaos.hh"
#include "fleet/client_policy.hh"
#include "fleet/fleet.hh"

namespace hoopnvm
{
namespace
{

using bench::CellRunner;

// ---------------------------------------------------------------
// Arrival generator
// ---------------------------------------------------------------

std::vector<Arrival>
generate(const ArrivalConfig &cfg, std::size_t n)
{
    ArrivalGenerator gen(cfg);
    std::vector<Arrival> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(gen.next());
    return out;
}

void
expectIdenticalStreams(const std::vector<Arrival> &a,
                       const std::vector<Arrival> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("arrival " + std::to_string(i));
        EXPECT_EQ(a[i].at, b[i].at);
        EXPECT_EQ(a[i].tenant, b[i].tenant);
        EXPECT_EQ(a[i].connection, b[i].connection);
        EXPECT_EQ(a[i].seq, b[i].seq);
    }
}

TEST(ArrivalStream, DeterministicForAGivenSeed)
{
    ArrivalConfig cfg;
    cfg.seed = 7;
    expectIdenticalStreams(generate(cfg, 500), generate(cfg, 500));

    ArrivalConfig other = cfg;
    other.seed = 8;
    const auto a = generate(cfg, 500);
    const auto b = generate(other, 500);
    bool differs = false;
    for (std::size_t i = 0; i < a.size() && !differs; ++i)
        differs = a[i].at != b[i].at || a[i].tenant != b[i].tenant;
    EXPECT_TRUE(differs) << "seed must matter";
}

TEST(ArrivalStream, RespectsThinkTimePerConnection)
{
    ArrivalConfig cfg;
    cfg.seed = 11;
    cfg.thinkTicks = nsToTicks(5'000);
    cfg.churnProb = 0.0; // stable connections: the constraint is exact
    cfg.connections = 4;
    std::map<std::uint64_t, Tick> lastAt;
    for (const Arrival &a : generate(cfg, 800)) {
        auto it = lastAt.find(a.connection);
        if (it != lastAt.end())
            EXPECT_GE(a.at, it->second + cfg.thinkTicks)
                << "connection " << a.connection;
        lastAt[a.connection] = a.at;
    }
}

TEST(ArrivalStream, ChurnMintsFreshConnections)
{
    ArrivalConfig cfg;
    cfg.seed = 13;
    cfg.connections = 4;
    cfg.churnProb = 0.5;
    std::uint64_t maxConn = 0;
    for (const Arrival &a : generate(cfg, 400))
        maxConn = std::max(maxConn, a.connection);
    // With aggressive churn the connection id space must grow far
    // past the initial slot count.
    EXPECT_GT(maxConn, 50u);

    // Sequence numbers are dense and ordered regardless of churn.
    const auto arr = generate(cfg, 400);
    for (std::size_t i = 0; i < arr.size(); ++i)
        EXPECT_EQ(arr[i].seq, i);
}

TEST(ArrivalStream, SkewsTenantsZipfian)
{
    ArrivalConfig cfg;
    cfg.seed = 17;
    cfg.tenants = 64;
    cfg.tenantTheta = 0.99;
    std::vector<std::uint64_t> counts(cfg.tenants, 0);
    for (const Arrival &a : generate(cfg, 4000))
        ++counts[a.tenant];
    // The hottest tenant must dominate the median tenant decisively.
    std::vector<std::uint64_t> sorted = counts;
    std::sort(sorted.rbegin(), sorted.rend());
    EXPECT_GT(sorted[0], 10 * std::max<std::uint64_t>(1, sorted[32]));
}

// The determinism property the fleet matrix relies on: a stream
// generated on a worker pool is bit-identical to one generated
// serially — the generator is a pure function of its config.
TEST(ArrivalStream, BitIdenticalSeriallyAndOnWorkerPool)
{
    constexpr std::size_t kStreams = 6;
    constexpr std::size_t kLen = 400;

    std::vector<std::vector<Arrival>> serial(kStreams);
    for (std::size_t s = 0; s < kStreams; ++s) {
        ArrivalConfig cfg;
        cfg.seed = 1000 + s;
        cfg.churnProb = 0.1;
        serial[s] = generate(cfg, kLen);
    }

    std::vector<std::vector<Arrival>> pooled(kStreams);
    CellRunner runner(4);
    for (std::size_t s = 0; s < kStreams; ++s) {
        runner.add("stream" + std::to_string(s), [&pooled, s] {
            ArrivalConfig cfg;
            cfg.seed = 1000 + s;
            cfg.churnProb = 0.1;
            pooled[s] = generate(cfg, kLen);
        });
    }
    runner.run();

    for (std::size_t s = 0; s < kStreams; ++s) {
        SCOPED_TRACE("stream " + std::to_string(s));
        expectIdenticalStreams(serial[s], pooled[s]);
    }
}

// ---------------------------------------------------------------
// Client policy
// ---------------------------------------------------------------

TEST(ClientPolicy, ClassifiesRejectCauses)
{
    EXPECT_EQ(classifyReject({RejectCause::CapacityDegraded, ""}),
              RejectAction::AdmissionSkip);
    EXPECT_EQ(classifyReject({RejectCause::OopExhausted, ""}),
              RejectAction::CrashRecover);
    EXPECT_EQ(classifyReject({RejectCause::LogExhausted, ""}),
              RejectAction::CrashRecover);
}

TEST(ClientPolicy, BackoffGrowsExponentiallyWithBoundedJitter)
{
    RetryPolicy p;
    p.backoffBase = 1000;
    p.backoffMultiplier = 2.0;
    p.jitterFraction = 0.5;
    Rng rng(99);
    for (unsigned retry = 0; retry < 8; ++retry) {
        const double nominal = 1000.0 * std::pow(2.0, retry);
        const Tick b = retryBackoffTicks(p, retry, rng);
        EXPECT_GE(static_cast<double>(b), 0.5 * nominal - 1)
            << "retry " << retry;
        EXPECT_LE(static_cast<double>(b), 1.5 * nominal + 1)
            << "retry " << retry;
    }
    // Deterministic: same RNG stream position, same draw.
    Rng r1(7), r2(7);
    EXPECT_EQ(retryBackoffTicks(p, 3, r1), retryBackoffTicks(p, 3, r2));
    // Never zero, even with a tiny base.
    p.backoffBase = 1;
    p.jitterFraction = 1.0;
    Rng r3(1);
    for (int i = 0; i < 64; ++i)
        EXPECT_GE(retryBackoffTicks(p, 0, r3), 1u);
}

TEST(ClientPolicy, DeadlineSemantics)
{
    RetryPolicy p;
    p.deadlineTicks = 100;
    EXPECT_FALSE(pastDeadline(p, 1000, 1100)); // exactly at: not past
    EXPECT_TRUE(pastDeadline(p, 1000, 1101));
    p.deadlineTicks = 0; // disabled
    EXPECT_FALSE(pastDeadline(p, 0, kNeverTick - 1));
}

// ---------------------------------------------------------------
// Chaos profiles
// ---------------------------------------------------------------

TEST(ChaosProfile, ExpansionIsDeterministicSortedAndCovering)
{
    ChaosTuning tuning;
    tuning.eventsPerShard = 3;
    const Tick horizon = nsToTicks(1e6);
    const auto a = expandChaosProfile("mixed", 4, horizon, 5, tuning);
    const auto b = expandChaosProfile("mixed", 4, horizon, 5, tuning);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.size(), 12u);
    std::vector<unsigned> perShard(4, 0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].at, b[i].at);
        EXPECT_EQ(a[i].shard, b[i].shard);
        EXPECT_EQ(a[i].kind, b[i].kind);
        if (i > 0)
            EXPECT_GE(a[i].at, a[i - 1].at) << "sorted by time";
        // Events land inside the horizon, clear of both edges.
        EXPECT_GE(a[i].at, horizon / 8);
        EXPECT_LT(a[i].at, horizon);
        ++perShard[a[i].shard];
    }
    for (unsigned s = 0; s < 4; ++s)
        EXPECT_EQ(perShard[s], 3u) << "shard " << s;

    EXPECT_TRUE(
        expandChaosProfile("none", 4, horizon, 5, tuning).empty());
}

TEST(ChaosProfile, SingleKindProfilesExpandTheirKind)
{
    ChaosTuning tuning;
    tuning.eventsPerShard = 2;
    const Tick horizon = nsToTicks(1e6);
    for (const auto &[profile, kind] :
         std::vector<std::pair<std::string, ChaosKind>>{
             {"crashes", ChaosKind::Crash},
             {"stalls", ChaosKind::Stall},
             {"faults", ChaosKind::FaultRamp}}) {
        SCOPED_TRACE(profile);
        for (const ChaosEvent &ev :
             expandChaosProfile(profile, 3, horizon, 9, tuning)) {
            EXPECT_EQ(ev.kind, kind);
            if (kind == ChaosKind::Stall)
                EXPECT_GT(ev.durationTicks, 0u);
            if (kind == ChaosKind::FaultRamp)
                EXPECT_GT(ev.faultProb, 0.0);
        }
    }
}

// ---------------------------------------------------------------
// Fleet spec JSON
// ---------------------------------------------------------------

TEST(FleetSpec, JsonRoundTripIsExact)
{
    FleetSpec spec;
    spec.scheme = Scheme::OptRedo;
    spec.workload = "hashmap";
    spec.chaosProfile = "stalls";
    spec.seed = 1234567;
    spec.shards = 6;
    spec.requests = 321;
    spec.injectAckBeforeDurable = true;

    FleetSpec back;
    std::string err;
    ASSERT_TRUE(FleetSpec::fromJson(spec.toJson(), &back, &err))
        << err;
    EXPECT_EQ(spec.toJson(), back.toJson());
    EXPECT_EQ(back.scheme, Scheme::OptRedo);
    EXPECT_EQ(back.workload, "hashmap");
    EXPECT_EQ(back.chaosProfile, "stalls");
    EXPECT_EQ(back.shards, 6u);
    EXPECT_TRUE(back.injectAckBeforeDurable);
}

TEST(FleetSpec, RejectsMalformedInput)
{
    FleetSpec out;
    std::string err;
    EXPECT_FALSE(FleetSpec::fromJson("{\"bogus\": 1}", &out, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(FleetSpec::fromJson(
        "{\"chaos_profile\": \"tornado\"}", &out, &err));
    EXPECT_FALSE(
        FleetSpec::fromJson("{\"scheme\": \"hoop\"", &out, &err));
}

// ---------------------------------------------------------------
// Fleet runs
// ---------------------------------------------------------------

FleetSpec
smallFleetSpec()
{
    FleetSpec spec;
    spec.scheme = Scheme::Hoop;
    spec.workload = "vector";
    spec.chaosProfile = "mixed";
    spec.seed = 42;
    spec.shards = 3;
    spec.coresPerShard = 2;
    spec.requests = 250;
    spec.warmupTx = 6;
    return spec;
}

void
expectOutcomesPartitionRequests(const FleetResult &r)
{
    EXPECT_EQ(r.acked + r.rejected + r.timedOut + r.shed, r.requests);
}

TEST(FleetRun, CleanUnderMixedChaos)
{
    const FleetResult r = runFleet(smallFleetSpec());
    EXPECT_FALSE(r.violated) << r.detail;
    expectOutcomesPartitionRequests(r);
    EXPECT_GT(r.acked, 0u);
    // The mixed profile actually exercised every fault domain knob.
    EXPECT_GT(r.chaosCrashes + r.stallWindows + r.faultRamps, 0u);
    ASSERT_EQ(r.shards.size(), 3u);
    for (const FleetShardReport &sh : r.shards) {
        SCOPED_TRACE("shard " + std::to_string(sh.shard));
        EXPECT_TRUE(sh.admittingAtEnd);
        // Probe phase guarantees every shard served at the end.
        EXPECT_GT(sh.counters.acked, 0u);
    }
    // Fleet latency is the merge of per-shard histograms.
    std::uint64_t perShard = 0;
    for (const FleetShardReport &sh : r.shards)
        perShard += sh.latency.count;
    EXPECT_EQ(r.latency.count, perShard);
    EXPECT_GT(r.latency.count, 0u);
    EXPECT_GE(r.latency.p999Ns, r.latency.p99Ns);
}

TEST(FleetRun, DeterministicRunToRun)
{
    const FleetResult a = runFleet(smallFleetSpec());
    const FleetResult b = runFleet(smallFleetSpec());
    EXPECT_EQ(a.violated, b.violated);
    EXPECT_EQ(a.acked, b.acked);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.retryAttempts, b.retryAttempts);
    EXPECT_EQ(a.backoffTicks, b.backoffTicks);
    EXPECT_EQ(a.recoveries, b.recoveries);
    EXPECT_EQ(a.latency.count, b.latency.count);
    EXPECT_EQ(a.latency.p50Ns, b.latency.p50Ns);
    EXPECT_EQ(a.latency.p999Ns, b.latency.p999Ns);
    ASSERT_EQ(a.shards.size(), b.shards.size());
    for (std::size_t s = 0; s < a.shards.size(); ++s) {
        EXPECT_EQ(a.shards[s].counters.acked,
                  b.shards[s].counters.acked);
        EXPECT_EQ(a.shards[s].counters.recoveries,
                  b.shards[s].counters.recoveries);
        EXPECT_EQ(a.shards[s].latency.p99Ns, b.shards[s].latency.p99Ns);
    }
}

TEST(FleetRun, CrashProfileRecoversOnlineWithoutLoss)
{
    FleetSpec spec = smallFleetSpec();
    spec.chaosProfile = "crashes";
    spec.chaosEventsPerShard = 2;
    const FleetResult r = runFleet(spec);
    EXPECT_FALSE(r.violated) << r.detail;
    expectOutcomesPartitionRequests(r);
    // Every shard crashed and recovered at least once, mid-traffic.
    EXPECT_GE(r.chaosCrashes, 3u);
    EXPECT_GE(r.recoveries, r.chaosCrashes);
    EXPECT_GT(r.acked, 0u);
}

TEST(FleetRun, SelfTestDetectsAckBeforeDurable)
{
    FleetSpec spec = smallFleetSpec();
    spec.chaosProfile = "crashes";
    spec.injectAckBeforeDurable = true;
    spec.requests = 400;
    const FleetResult r = runFleet(spec);
    EXPECT_TRUE(r.violated)
        << "seeded ack-before-durable bug must be detected";
    EXPECT_NE(r.detail.find("shard 0"), std::string::npos)
        << "violation must implicate the buggy shard: " << r.detail;

    // The shrunk reproducer must still violate after a JSON
    // round-trip — that is what --replay consumes.
    std::string detail;
    const FleetSpec repro = shrinkFleet(spec, &detail);
    EXPECT_LE(repro.requests, spec.requests);
    FleetSpec parsed;
    std::string err;
    ASSERT_TRUE(FleetSpec::fromJson(repro.toJson(), &parsed, &err))
        << err;
    const FleetResult again = runFleet(parsed);
    EXPECT_TRUE(again.violated)
        << "shrunk reproducer must replay the violation";
}

} // namespace
} // namespace hoopnvm
