/**
 * @file
 * Unit tests for the named-statistics registry, in particular the
 * reference-stability guarantee the hot-path components rely on:
 * Counter& obtained once at construction must stay valid (and alias
 * the named entry) while other counters are created afterwards.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "stats/stat_set.hh"

namespace hoopnvm
{
namespace
{

TEST(StatSet, CounterStartsAtZeroAndAccumulates)
{
    StatSet s("test");
    Counter &c = s.counter("events");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    EXPECT_EQ(s.value("events"), 42u);
}

// The hot-path pattern: components resolve Counter& once in their
// constructor and bump the reference ever after. Creating many other
// counters afterwards must not invalidate or re-seat the reference.
TEST(StatSet, ReferencesSurviveLaterInsertions)
{
    StatSet s("test");
    Counter &early = s.counter("early");
    ++early;

    std::vector<Counter *> later;
    for (int i = 0; i < 1000; ++i)
        later.push_back(&s.counter("c" + std::to_string(i)));

    // The early reference still aliases the registry entry.
    ++early;
    EXPECT_EQ(s.value("early"), 2u);
    EXPECT_EQ(&s.counter("early"), &early);

    // And the later pointers also stayed put.
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(&s.counter("c" + std::to_string(i)), later[i]);
}

// Bumps through a cached reference and bumps through by-name lookup
// must aggregate into the same counter.
TEST(StatSet, CachedReferenceAggregatesWithNamedLookup)
{
    StatSet s("test");
    Counter &cached = s.counter("mixed");
    ++cached;
    ++s.counter("mixed");
    cached += 10;
    s.counter("mixed") += 100;
    EXPECT_EQ(s.value("mixed"), 112u);
}

TEST(StatSet, ResetAllZeroesButKeepsReferencesValid)
{
    StatSet s("test");
    Counter &c = s.counter("events");
    c += 7;
    s.resetAll();
    EXPECT_EQ(s.value("events"), 0u);
    ++c; // reference still valid and still aliased
    EXPECT_EQ(s.value("events"), 1u);
}

TEST(StatSet, DumpPrefixesEveryCounter)
{
    StatSet s("unit");
    s.counter("a") += 1;
    s.counter("b") += 2;
    const std::string d = s.dump();
    EXPECT_NE(d.find("unit.a"), std::string::npos);
    EXPECT_NE(d.find("unit.b"), std::string::npos);
}

TEST(StatSet, ValueOfUnknownCounterIsZero)
{
    StatSet s("test");
    EXPECT_EQ(s.value("never_created"), 0u);
}

} // namespace
} // namespace hoopnvm
