/**
 * @file
 * Unit tests for the log-bucketed latency histogram: bucket boundary
 * arithmetic over the whole u64 range, nearest-rank quantiles with
 * in-bucket interpolation, and merge() associativity/commutativity —
 * the property the parallel bench harness relies on for bit-identical
 * -jN results.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "stats/histogram.hh"

namespace hoopnvm
{
namespace
{

TEST(HistogramBuckets, ExactBelowSubBucketCount)
{
    for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
        EXPECT_EQ(Histogram::bucketIndex(v), v);
        EXPECT_EQ(Histogram::bucketLow(v), v);
        EXPECT_EQ(Histogram::bucketHigh(v), v + 1);
    }
}

TEST(HistogramBuckets, BoundsContainTheirValue)
{
    std::vector<std::uint64_t> vals;
    for (unsigned p = 0; p < 63; ++p) {
        const std::uint64_t v = std::uint64_t{1} << p;
        vals.push_back(v);
        vals.push_back(v - 1);
        vals.push_back(v + 1);
        vals.push_back(v | (v >> 3));
    }
    for (std::uint64_t v : vals) {
        const std::size_t i = Histogram::bucketIndex(v);
        ASSERT_LT(i, Histogram::kBuckets) << "value " << v;
        EXPECT_LE(Histogram::bucketLow(i), v) << "value " << v;
        EXPECT_GT(Histogram::bucketHigh(i), v) << "value " << v;
    }
}

TEST(HistogramBuckets, BucketsTileTheRangeWithoutGaps)
{
    for (std::size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
        EXPECT_EQ(Histogram::bucketHigh(i),
                  Histogram::bucketLow(i + 1))
            << "bucket " << i;
    }
}

TEST(HistogramBuckets, RelativeWidthBoundedBySubBucketCount)
{
    // Geometric bucketing promise: width <= low / kSubBuckets above
    // the exact range, which bounds quantile error at ~1/16.
    for (std::size_t i = Histogram::kSubBuckets;
         i + 1 < Histogram::kBuckets; ++i) {
        const std::uint64_t lo = Histogram::bucketLow(i);
        const std::uint64_t width = Histogram::bucketHigh(i) - lo;
        EXPECT_LE(width, lo / Histogram::kSubBuckets)
            << "bucket " << i;
    }
}

TEST(HistogramQuantile, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramQuantile, SingleValueExactAtEveryQuantile)
{
    Histogram h;
    h.recordN(12345, 7);
    for (double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0})
        EXPECT_EQ(h.quantile(q), 12345.0) << "q " << q;
    EXPECT_EQ(h.min(), 12345u);
    EXPECT_EQ(h.max(), 12345u);
    EXPECT_EQ(h.mean(), 12345.0);
    EXPECT_EQ(h.sum(), 12345u * 7);
}

TEST(HistogramQuantile, UniformWidthOneBucketsAreHalfSampleExact)
{
    // 0..9 once each: every sample sits in its own width-1 bucket, so
    // nearest-rank + mid-bucket interpolation gives rank - 0.5.
    Histogram h;
    for (std::uint64_t v = 0; v < 10; ++v)
        h.record(v);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.1), 0.5);
    // Extremes clamp to the observed min/max.
    EXPECT_EQ(h.quantile(1.0), 9.0);
    EXPECT_GE(h.quantile(0.0), 0.0);
}

TEST(HistogramQuantile, InterpolatesWithinASharedBucket)
{
    // 40 and 41 share the width-2 bucket [40, 42): the interpolated
    // quantile walks the bucket linearly and clamps at max().
    ASSERT_EQ(Histogram::bucketIndex(40), Histogram::bucketIndex(41));
    Histogram h;
    h.record(40);
    h.record(41);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 40.5);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 41.0);
    EXPECT_GE(h.quantile(0.01), 40.0);
}

TEST(HistogramQuantile, LargeValuesStayWithinRelativeError)
{
    Histogram h;
    const std::uint64_t big = std::uint64_t{3} << 40;
    h.recordN(big, 100);
    const double q99 = h.quantile(0.99);
    EXPECT_EQ(q99, static_cast<double>(big)); // clamped to max
    EXPECT_EQ(h.max(), big);
}

/** Deterministic pseudo-random sample stream (xorshift). */
std::uint64_t
nextSample(std::uint64_t &state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

void
expectIdentical(const Histogram &a, const Histogram &b)
{
    ASSERT_EQ(a.count(), b.count());
    EXPECT_EQ(a.sum(), b.sum());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
        ASSERT_EQ(a.bucketCount(i), b.bucketCount(i)) << "bucket " << i;
    for (double q : {0.5, 0.95, 0.99, 0.999})
        EXPECT_EQ(a.quantile(q), b.quantile(q)) << "q " << q;
}

TEST(HistogramMerge, AssociativeAndCommutative)
{
    Histogram parts[3];
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    for (int p = 0; p < 3; ++p) {
        for (int i = 0; i < 500; ++i)
            parts[p].record(nextSample(state) >> (p * 11));
    }

    Histogram ab_c; // (a + b) + c
    ab_c.merge(parts[0]);
    ab_c.merge(parts[1]);
    ab_c.merge(parts[2]);

    Histogram c_ba; // c + (b + a), built in reverse
    c_ba.merge(parts[2]);
    c_ba.merge(parts[1]);
    c_ba.merge(parts[0]);

    Histogram bc_a; // a + (b + c) with an explicit inner merge
    Histogram bc;
    bc.merge(parts[1]);
    bc.merge(parts[2]);
    bc_a.merge(parts[0]);
    bc_a.merge(bc);

    expectIdentical(ab_c, c_ba);
    expectIdentical(ab_c, bc_a);

    std::uint64_t total = 0;
    for (const Histogram &p : parts)
        total += p.count();
    EXPECT_EQ(ab_c.count(), total);
}

TEST(HistogramMerge, MergingEmptyIsIdentity)
{
    Histogram h;
    h.record(99);
    Histogram empty;
    Histogram merged = h;
    merged.merge(empty);
    expectIdentical(merged, h);

    Histogram from_empty;
    from_empty.merge(h);
    expectIdentical(from_empty, h);
}

TEST(HistogramMerge, EqualsSingleStreamRecording)
{
    // Sharded recording + merge must equal recording the same stream
    // into one histogram — the -jN determinism property.
    Histogram whole, shard_a, shard_b;
    std::uint64_t state = 42;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = nextSample(state) % 1000000;
        whole.record(v);
        (i % 2 ? shard_a : shard_b).record(v);
    }
    Histogram merged;
    merged.merge(shard_a);
    merged.merge(shard_b);
    expectIdentical(merged, whole);
}

TEST(HistogramMerge, P999IsMergeOrderDeterministic)
{
    // The fleet harness merges per-shard latency histograms into a
    // fleet-wide tail report; p999 must be exactly the same number
    // regardless of how many shards the samples were recorded in and
    // in which order the shards merge. 10k samples put ~10 of them
    // past the p999 rank, so the extreme tail is actually exercised.
    constexpr int kShards = 5;
    Histogram whole, shards[kShards];
    std::uint64_t state = 0xfee1f1ee7ull;
    for (int i = 0; i < 10000; ++i) {
        // Long-tailed stream: mostly small values, occasional spikes.
        std::uint64_t v = nextSample(state) % 4096;
        if (i % 997 == 0)
            v += 1u << 22;
        whole.record(v);
        shards[i % kShards].record(v);
    }

    Histogram forward, backward;
    for (int s = 0; s < kShards; ++s)
        forward.merge(shards[s]);
    for (int s = kShards - 1; s >= 0; --s)
        backward.merge(shards[s]);

    expectIdentical(forward, whole);
    expectIdentical(backward, whole);
    EXPECT_EQ(forward.quantile(0.999), whole.quantile(0.999));
    // And the tail ordering is sane: p999 sits between p99 and max.
    EXPECT_GE(whole.quantile(0.999), whole.quantile(0.99));
    EXPECT_LE(whole.quantile(0.999),
              static_cast<double>(whole.max()));
    // The spikes actually moved p999 away from the body.
    EXPECT_GT(whole.quantile(0.999), whole.quantile(0.5));
}

TEST(HistogramQuantile, SmallPopulationTailIsExactMax)
{
    // Regression (PR 10): p999/p99 on counts below ~1/(1-q) used to
    // interpolate inside the top occupied bucket — a value up to the
    // ~6% bucket width away from any real sample. The target rank is
    // the last sample, whose exact value is max(): return it.
    Histogram h;
    h.record(1000);     // bucket [960, 1024): width 64
    h.record(5000);     // bucket [4864, 5120): width 256
    h.record(100000);   // wide bucket far from its low edge
    // 3 samples: p99 and p999 target rank 3 == count -> exact max.
    EXPECT_EQ(h.quantile(0.99), 100000.0);
    EXPECT_EQ(h.quantile(0.999), 100000.0);
    // p50 targets rank 2 (resolvable): interpolates in 5000's bucket.
    EXPECT_LT(h.quantile(0.5), 100000.0);
}

TEST(HistogramQuantile, SaturationRuleAtBucketEdges)
{
    // Exactly 1/(1-q) samples is the threshold: p99 of 100 samples
    // targets rank ceil(0.99*100) = 99 < 100 and must still resolve,
    // while 99 samples target ceil(0.99*99) = 99 == count -> max.
    Histogram resolved;
    for (std::uint64_t i = 0; i < 100; ++i)
        resolved.record(i < 99 ? 100 : 100000);
    EXPECT_FALSE(Histogram::quantileSaturated(100, 0.99));
    // Rank 99 is one of the 99 samples at 100, not the max spike.
    EXPECT_LT(resolved.quantile(0.99), 100000.0);

    Histogram saturated;
    for (std::uint64_t i = 0; i < 99; ++i)
        saturated.record(i < 98 ? 100 : 100000);
    EXPECT_TRUE(Histogram::quantileSaturated(99, 0.99));
    EXPECT_EQ(saturated.quantile(0.99), 100000.0);
}

TEST(HistogramQuantile, SaturationPredicateMatchesQuantile)
{
    EXPECT_TRUE(Histogram::quantileSaturated(0, 0.5));
    EXPECT_TRUE(Histogram::quantileSaturated(1, 0.0));
    EXPECT_TRUE(Histogram::quantileSaturated(1, 0.999));
    EXPECT_TRUE(Histogram::quantileSaturated(999, 0.999));
    EXPECT_FALSE(Histogram::quantileSaturated(1001, 0.999));
    EXPECT_FALSE(Histogram::quantileSaturated(2, 0.5));
    // q = 1 is always the max by definition and always "saturated".
    EXPECT_TRUE(Histogram::quantileSaturated(1000000, 1.0));
}

TEST(Histogram, ResetForgetsEverything)
{
    Histogram h;
    h.recordN(7, 3);
    h.record(1u << 20);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.quantile(0.99), 0.0);
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
        ASSERT_EQ(h.bucketCount(i), 0u);
}

} // namespace
} // namespace hoopnvm
