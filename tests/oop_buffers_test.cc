/**
 * @file
 * Unit tests for the OOP data buffer (word packing and same-word
 * combining, §III-C) and the GC eviction buffer (bounded FIFO).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "hoop/eviction_buffer.hh"
#include "hoop/oop_data_buffer.hh"

namespace hoopnvm
{
namespace
{

TEST(OopDataBuffer, FillsAfterEightWords)
{
    OopDataBuffer buf(2, kiB(1), /*packing=*/true);
    for (unsigned i = 0; i < 7; ++i)
        EXPECT_FALSE(buf.addWord(0, 8 * i, i));
    EXPECT_TRUE(buf.addWord(0, 56, 7));
    const PendingSlice p = buf.take(0);
    EXPECT_EQ(p.count, 8);
    EXPECT_EQ(p.addrs[3], 24u);
    EXPECT_EQ(p.words[3], 3u);
    EXPECT_FALSE(buf.hasPending(0));
}

TEST(OopDataBuffer, CombinesSameWordUpdates)
{
    OopDataBuffer buf(1, kiB(1), true);
    EXPECT_FALSE(buf.addWord(0, 64, 1));
    EXPECT_FALSE(buf.addWord(0, 64, 2)); // combined, not a new slot
    EXPECT_FALSE(buf.addWord(0, 64, 3));
    EXPECT_EQ(buf.combinedWords(), 2u);
    const PendingSlice p = buf.take(0);
    EXPECT_EQ(p.count, 1);
    EXPECT_EQ(p.words[0], 3u); // last value wins
}

TEST(OopDataBuffer, CoresAreIndependent)
{
    OopDataBuffer buf(2, kiB(1), true);
    buf.addWord(0, 0, 10);
    buf.addWord(1, 8, 20);
    EXPECT_TRUE(buf.hasPending(0));
    EXPECT_TRUE(buf.hasPending(1));
    const PendingSlice p0 = buf.take(0);
    EXPECT_EQ(p0.words[0], 10u);
    EXPECT_TRUE(buf.hasPending(1));
}

TEST(OopDataBuffer, NoPackingFlushesEveryWord)
{
    OopDataBuffer buf(1, kiB(1), /*packing=*/false);
    EXPECT_TRUE(buf.addWord(0, 0, 1)); // immediately full
    const PendingSlice p = buf.take(0);
    EXPECT_EQ(p.count, 1);
    // Without packing even a repeated word is not combined.
    EXPECT_TRUE(buf.addWord(0, 0, 2));
    EXPECT_EQ(buf.combinedWords(), 0u);
}

TEST(OopDataBuffer, ClearDropsState)
{
    OopDataBuffer buf(2, kiB(1), true);
    buf.addWord(0, 0, 1);
    buf.addWord(1, 8, 2);
    buf.clear(0);
    EXPECT_FALSE(buf.hasPending(0));
    EXPECT_TRUE(buf.hasPending(1));
    buf.clearAll();
    EXPECT_FALSE(buf.hasPending(1));
}

TEST(EvictionBuffer, PutGetRoundTrip)
{
    EvictionBuffer eb(kiB(1));
    std::uint8_t line[kCacheLineSize];
    std::memset(line, 0x5a, sizeof(line));
    eb.put(128, line);
    std::uint8_t out[kCacheLineSize] = {};
    ASSERT_TRUE(eb.get(128, out));
    EXPECT_EQ(std::memcmp(line, out, kCacheLineSize), 0);
    EXPECT_FALSE(eb.get(64, out));
}

TEST(EvictionBuffer, RefreshOverwritesInPlace)
{
    EvictionBuffer eb(kiB(1));
    std::uint8_t a[kCacheLineSize], b[kCacheLineSize];
    std::memset(a, 1, sizeof(a));
    std::memset(b, 2, sizeof(b));
    eb.put(0, a);
    eb.put(0, b);
    EXPECT_EQ(eb.size(), 1u);
    std::uint8_t out[kCacheLineSize];
    ASSERT_TRUE(eb.get(0, out));
    EXPECT_EQ(out[0], 2);
}

TEST(EvictionBuffer, FifoReplacementWhenFull)
{
    // Capacity = 1024 / 72 = 14 entries.
    EvictionBuffer eb(kiB(1));
    const std::size_t cap = eb.capacity();
    std::uint8_t line[kCacheLineSize] = {};
    for (std::size_t i = 0; i <= cap; ++i)
        eb.put(64 * i, line);
    std::uint8_t out[kCacheLineSize];
    EXPECT_FALSE(eb.get(0, out)); // oldest evicted
    EXPECT_TRUE(eb.get(64 * cap, out));
    EXPECT_EQ(eb.size(), cap);
}

TEST(EvictionBuffer, InvalidateAndClear)
{
    EvictionBuffer eb(kiB(1));
    std::uint8_t line[kCacheLineSize] = {};
    eb.put(0, line);
    eb.put(64, line);
    eb.invalidate(0);
    std::uint8_t out[kCacheLineSize];
    EXPECT_FALSE(eb.get(0, out));
    EXPECT_TRUE(eb.get(64, out));
    eb.clear();
    EXPECT_FALSE(eb.get(64, out));
    EXPECT_EQ(eb.size(), 0u);
}

} // namespace
} // namespace hoopnvm
