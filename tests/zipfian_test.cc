/**
 * @file
 * Distribution tests for the Zipfian generator (PR 10 bugfix sweep).
 *
 * Gray's closed-form sampler diverges as theta -> 1 (the exponent
 * alpha = 1/(1-theta) blows up and pow() underflows, collapsing draws
 * onto item 0), and the old generator rejected n == 1 and theta
 * outside (0, 1) outright — which the fleet's tenant sampler can hit
 * (tenants = 1 soak configs, tenantTheta = 1.0 hot-spot profiles).
 * These tests pin the fixed behaviour: a chi-squared-style check of
 * empirical frequencies against the exact p_i = i^-theta / zeta(n) on
 * both the Gray path (theta = 0.99) and the inverse-CDF path
 * (theta = 1.0), the degenerate edges, and renormalization when the
 * item count changes between generators.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/zipfian.hh"
#include "fleet/arrivals.hh"

namespace hoopnvm
{
namespace
{

/**
 * Chi-squared statistic of @p draws Zipfian samples against the
 * generator's own exact per-item probabilities.
 */
double
chiSquared(ZipfianGenerator &gen, std::uint64_t draws,
           std::vector<std::uint64_t> *counts_out = nullptr)
{
    std::vector<std::uint64_t> counts(gen.itemCount(), 0);
    for (std::uint64_t i = 0; i < draws; ++i) {
        const std::uint64_t v = gen.next();
        EXPECT_LT(v, gen.itemCount());
        ++counts[v];
    }
    double chi2 = 0.0;
    for (std::uint64_t i = 0; i < gen.itemCount(); ++i) {
        const double expected =
            gen.itemProbability(i) * static_cast<double>(draws);
        const double diff = static_cast<double>(counts[i]) - expected;
        chi2 += diff * diff / expected;
    }
    if (counts_out)
        *counts_out = std::move(counts);
    return chi2;
}

TEST(Zipfian, ProbabilitiesSumToOne)
{
    for (const double theta : {0.0, 0.5, 0.99, 0.999, 1.0}) {
        ZipfianGenerator gen(64, theta, 1);
        double sum = 0.0;
        for (std::uint64_t i = 0; i < 64; ++i)
            sum += gen.itemProbability(i);
        EXPECT_NEAR(sum, 1.0, 1e-12) << "theta " << theta;
    }
}

TEST(Zipfian, GrayPathTracksTheExactDistribution)
{
    // The YCSB default: theta = 0.99 over 16 items, 100k seeded
    // draws. Gray's closed form is an *approximation* — items 0 and 1
    // are drawn with their exact probabilities, the tail follows the
    // continuous inverse — so a plain chi-squared against the exact
    // p_i sits in the low hundreds by design (measured ~212 here).
    // The bound guards against the theta->1 collapse bug, which sends
    // it past 10^5 (item 0 absorbs nearly every draw).
    ZipfianGenerator gen(16, 0.99, 12345);
    std::vector<std::uint64_t> counts;
    EXPECT_LT(chiSquared(gen, 100000, &counts), 1500.0);
    // The head probabilities are exact in Gray's method: pin them
    // tightly (~3 sigma of a 100k-draw binomial is ~0.4%).
    EXPECT_NEAR(static_cast<double>(counts[0]) / 100000,
                gen.itemProbability(0), 0.005);
    EXPECT_NEAR(static_cast<double>(counts[1]) / 100000,
                gen.itemProbability(1), 0.005);
    // And the empirical ranking stays monotone head-to-tail.
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[4]);
    EXPECT_GT(counts[4], counts[15]);
}

TEST(Zipfian, CdfPathHandlesThetaOneExactly)
{
    // Regression: theta = 1.0 used to assert (and anything past
    // ~0.998 was numerically collapsed onto item 0 by pow()
    // underflow). The inverse-CDF path must match the exact harmonic
    // distribution, not over-favour item 0.
    ZipfianGenerator gen(16, 1.0, 999);
    std::vector<std::uint64_t> counts;
    EXPECT_LT(chiSquared(gen, 100000, &counts), 60.0);
    // Spot-check the singularity symptom directly: item 0's share is
    // 1/zeta(16) ~ 29.6%, nowhere near the collapsed ~100%.
    EXPECT_LT(static_cast<double>(counts[0]), 0.35 * 100000);
    EXPECT_GT(static_cast<double>(counts[0]), 0.25 * 100000);
}

TEST(Zipfian, NearOneThetaStaysOnExactPath)
{
    // theta = 0.999 crosses kGrayThetaMax and must be served by the
    // CDF table; the distribution still matches the exact p_i.
    ZipfianGenerator gen(32, 0.999, 777);
    EXPECT_LT(chiSquared(gen, 100000), 80.0);
}

TEST(Zipfian, SingleItemAlwaysDrawsZero)
{
    // Regression: n == 1 used to trip the n >= 2 assert; the fleet
    // clamps tenants to >= 1 and a single-tenant soak is legal.
    ZipfianGenerator gen(1, 0.99, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(gen.next(), 0u);
    EXPECT_EQ(gen.itemProbability(0), 1.0);
}

TEST(Zipfian, UniformAtThetaZero)
{
    // theta = 0 is the uniform distribution; every item's probability
    // is 1/n and the sampler must cover the whole range.
    ZipfianGenerator gen(8, 0.0, 3);
    std::vector<std::uint64_t> counts;
    EXPECT_LT(chiSquared(gen, 80000, &counts), 40.0);
    for (std::uint64_t c : counts)
        EXPECT_GT(c, 0u);
}

TEST(Zipfian, RenormalizesWhenItemCountChanges)
{
    // Renormalization audit: a generator built for n = 64 after one
    // built for n = 8 (and vice versa) must use zeta for its own n —
    // construct-order independence rules out any stale shared state.
    ZipfianGenerator first8(8, 0.99, 11);
    ZipfianGenerator then64(64, 0.99, 11);
    ZipfianGenerator fresh64(64, 0.99, 11);
    ZipfianGenerator then8(8, 0.99, 11);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(then64.next(), fresh64.next());
        EXPECT_EQ(first8.next(), then8.next());
    }
    // And the per-item probabilities differ across n (zeta really was
    // recomputed): P(0 | n=8) > P(0 | n=64).
    EXPECT_GT(ZipfianGenerator(8, 0.99, 1).itemProbability(0),
              ZipfianGenerator(64, 0.99, 1).itemProbability(0));
}

TEST(ArrivalGenerator, DegenerateTenantConfigsDoNotCrash)
{
    // Regression: tenants = 1 asserted in the old Zipfian; a
    // tenantTheta of 1.0 (hot-spot chaos profile) asserted too.
    ArrivalConfig cfg;
    cfg.tenants = 1;
    cfg.tenantTheta = 1.0;
    ArrivalGenerator gen(cfg);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(gen.next().tenant, 0u);

    ArrivalConfig skewed;
    skewed.tenants = 16;
    skewed.tenantTheta = 1.0;
    ArrivalGenerator gen2(skewed);
    std::vector<std::uint64_t> counts(16, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[gen2.next().tenant];
    // The harmonic distribution is skewed but not collapsed: the
    // hottest tenant holds ~30%, and the tail tenants still appear.
    EXPECT_LT(counts[0], 20000u * 2 / 5);
    for (std::uint64_t c : counts)
        EXPECT_GT(c, 0u);
}

} // namespace
} // namespace hoopnvm
