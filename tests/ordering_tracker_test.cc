/**
 * @file
 * Unit tests for the persistency-ordering tracker
 * (analysis/ordering_tracker.hh): each rule kind's pass/fail boundary,
 * minDeps enforcement, dependency-group consumption, the redundant
 * settle / in-flight overwrite counters, dead-rule reporting and the
 * crash reset.
 *
 * The tracker is driven directly through its NvmWriteObserver
 * interface — no simulator is built, which pins down the contract
 * each controller integration relies on.
 */

#include <gtest/gtest.h>

#include "analysis/ordering_tracker.hh"

namespace hoopnvm
{
namespace
{

constexpr Addr kA = 0x1000;
constexpr Addr kB = 0x2000;

TEST(DurableByAck, PassesWhenAckCoversCompletion)
{
    OrderingTracker t;
    t.rule("commit").requiresDurable("the commit record");

    t.onTimedWrite(kA, 64, 10, 100);
    t.addDep("commit", 7);
    t.trigger("commit", 7, /*ack=*/100);

    EXPECT_EQ(t.totalViolations(), 0u);
    const auto reps = t.ruleReports();
    ASSERT_EQ(reps.size(), 1u);
    EXPECT_EQ(reps[0].fires, 1u);
    EXPECT_EQ(reps[0].depsChecked, 1u);
}

TEST(DurableByAck, FlagsAckBeforeCompletion)
{
    OrderingTracker t;
    t.rule("commit").requiresDurable("the commit record");

    t.onTimedWrite(kA, 64, 10, 100);
    t.addDep("commit", 7);
    t.trigger("commit", 7, /*ack=*/99);

    EXPECT_EQ(t.totalViolations(), 1u);
    ASSERT_EQ(t.violations().size(), 1u);
    EXPECT_EQ(t.violations()[0].rule, "commit");
}

TEST(SettledAtTrigger, PassesAfterFence)
{
    OrderingTracker t;
    t.rule("truncate").requiresSettled("retired log entries");

    t.onTimedWrite(kA, 64, 10, 100);
    t.addDep("truncate", 0);
    t.onSettle(100); // fence drains the write
    t.trigger("truncate", 0);

    EXPECT_EQ(t.totalViolations(), 0u);
}

TEST(SettledAtTrigger, FlagsInFlightDependency)
{
    OrderingTracker t;
    t.rule("truncate").requiresSettled("retired log entries");

    t.onTimedWrite(kA, 64, 10, 100);
    t.addDep("truncate", 0);
    t.onSettle(99); // fence too early: completion is 100
    t.trigger("truncate", 0);

    EXPECT_EQ(t.totalViolations(), 1u);
}

TEST(IssuedBeforeTrigger, MinDepsEnforcesPresence)
{
    OrderingTracker t;
    t.rule("wal").requiresIssued("the line's undo entry");

    // No dependency issued: the write-ahead contract is broken.
    t.trigger("wal", 3, 0, /*minDeps=*/1, /*consume=*/false);
    EXPECT_EQ(t.totalViolations(), 1u);

    // With the entry issued first, the same trigger passes.
    t.onTimedWrite(kB, 64, 10, 50);
    t.addDep("wal", 3);
    t.trigger("wal", 3, 0, /*minDeps=*/1, /*consume=*/false);
    EXPECT_EQ(t.totalViolations(), 1u);
}

TEST(Trigger, ConsumeRetiresTheGroup)
{
    OrderingTracker t;
    t.rule("commit").requiresDurable("the commit record");

    t.onTimedWrite(kA, 64, 10, 100);
    t.addDep("commit", 1);
    t.trigger("commit", 1, /*ack=*/100); // consumes group 1

    // Re-triggering the consumed group checks nothing.
    t.trigger("commit", 1, /*ack=*/0);
    EXPECT_EQ(t.totalViolations(), 0u);
    EXPECT_EQ(t.ruleReports()[0].depsChecked, 1u);
}

TEST(Trigger, NonConsumingGroupIsRecheckable)
{
    OrderingTracker t;
    t.rule("wal").requiresIssued("the line's undo entry");

    t.onTimedWrite(kA, 64, 10, 100);
    t.addDep("wal", 9);
    t.trigger("wal", 9, 0, 1, /*consume=*/false);
    t.trigger("wal", 9, 0, 1, /*consume=*/false);

    EXPECT_EQ(t.totalViolations(), 0u);
    EXPECT_EQ(t.ruleReports()[0].depsChecked, 2u);
}

TEST(Trigger, ClearRuleRetiresEveryGroup)
{
    OrderingTracker t;
    t.rule("wal").requiresIssued("the line's undo entry");

    t.onTimedWrite(kA, 64, 10, 100);
    t.addDep("wal", 1);
    t.onTimedWrite(kB, 64, 20, 110);
    t.addDep("wal", 2);
    t.clearRule("wal"); // e.g. the log was truncated

    t.trigger("wal", 1, 0, /*minDeps=*/1);
    EXPECT_EQ(t.totalViolations(), 1u); // group gone -> presence fails
}

TEST(Counters, RedundantSettleIsCounted)
{
    OrderingTracker t;
    t.onTimedWrite(kA, 64, 10, 100);
    t.onSettle(100); // drains one write
    t.onSettle(200); // drains nothing
    EXPECT_EQ(t.counters().settledWrites, 1u);
    EXPECT_EQ(t.counters().redundantSettles, 1u);
    EXPECT_EQ(t.counters().settleCalls, 2u);
}

TEST(Counters, InflightOverwriteIsCounted)
{
    OrderingTracker t;
    t.onTimedWrite(kA, 8, 10, 100);
    t.onTimedWrite(kA, 8, 20, 110); // same word, first still in flight
    EXPECT_EQ(t.counters().inflightOverwrites, 1u);
    EXPECT_EQ(t.counters().depOverwrites, 0u);

    // After a fence the rewrite is not a race.
    t.onSettle(110);
    t.onTimedWrite(kA, 8, 30, 120);
    EXPECT_EQ(t.counters().inflightOverwrites, 1u);
}

TEST(Counters, DependencyOverwriteWarns)
{
    OrderingTracker t;
    t.rule("commit").requiresDurable("the commit record");

    t.onTimedWrite(kA, 8, 10, 100);
    t.addDep("commit", 1);
    t.onTimedWrite(kA, 8, 20, 110); // clobbers the live dependency

    EXPECT_EQ(t.counters().depOverwrites, 1u);
    ASSERT_EQ(t.warnings().size(), 1u);
    EXPECT_EQ(t.warnings()[0].rule, "commit");
    EXPECT_EQ(t.totalViolations(), 0u) << "races warn, not violate";
}

TEST(Reporting, UnfiredRuleIsDead)
{
    OrderingTracker t;
    t.rule("used").requiresSettled("something");
    t.rule("orphan").requiresSettled("something else");
    t.trigger("used", 0);

    const auto dead = t.deadRules();
    ASSERT_EQ(dead.size(), 1u);
    EXPECT_EQ(dead[0], "orphan");
}

TEST(Crash, ResetsVolatileStateButKeepsTotals)
{
    OrderingTracker t;
    t.rule("commit").requiresDurable("the commit record");

    t.onTimedWrite(kA, 8, 10, 100);
    t.addDep("commit", 1);
    t.onCrash(50);

    // The open group died with the crash: a post-recovery trigger of
    // the same key checks nothing and passes.
    t.trigger("commit", 1, /*ack=*/0);
    EXPECT_EQ(t.totalViolations(), 0u);

    // The pre-crash write is resolved, not in flight: rewriting its
    // word is not an overwrite race...
    t.onTimedWrite(kA, 8, 60, 160);
    EXPECT_EQ(t.counters().inflightOverwrites, 0u);

    // ...and cumulative totals survive the crash.
    EXPECT_EQ(t.counters().timedWrites, 2u);
    EXPECT_EQ(t.ruleReports()[0].fires, 1u);
}

} // namespace
} // namespace hoopnvm
