/**
 * @file
 * Tests for the HOOP controller: out-of-place store capture, slice
 * chains and commit records, mapping-table redirection on fills,
 * eviction routing, and the load/store flow of Fig. 6.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "hoop/hoop_controller.hh"

namespace hoopnvm
{
namespace
{

SystemConfig
hoopConfig()
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.homeBytes = miB(16);
    cfg.oopBytes = miB(4);
    cfg.oopBlockBytes = miB(1);
    cfg.auxBytes = miB(32);
    cfg.mappingTableBytes = kiB(64);
    cfg.evictionBufferBytes = kiB(8);
    return cfg;
}

struct HoopFixture : ::testing::Test
{
    HoopFixture()
        : cfg(hoopConfig()), nvm(cfg.nvmCapacity(), cfg.nvm),
          ctrl(nvm, cfg)
    {
    }

    /** Run one transaction storing @p words at consecutive addrs. */
    TxId
    storeTx(CoreId core, Addr base, unsigned words,
            std::uint64_t value0)
    {
        const TxId tx = ctrl.txBegin(core, 0);
        for (unsigned i = 0; i < words; ++i) {
            std::uint64_t v = value0 + i;
            std::uint8_t b[8];
            std::memcpy(b, &v, 8);
            ctrl.storeWord(core, base + 8 * i, b, 0);
        }
        ctrl.txEnd(core, 0);
        return tx;
    }

    SystemConfig cfg;
    NvmDevice nvm;
    HoopController ctrl;
};

TEST_F(HoopFixture, TxLifecycle)
{
    EXPECT_FALSE(ctrl.inTx(0));
    const TxId tx = ctrl.txBegin(0, 0);
    EXPECT_TRUE(ctrl.inTx(0));
    EXPECT_EQ(ctrl.currentTx(0), tx);
    EXPECT_FALSE(ctrl.isCommitted(tx));
    ctrl.txEnd(0, 0);
    EXPECT_FALSE(ctrl.inTx(0));
    EXPECT_TRUE(ctrl.isCommitted(tx));
    EXPECT_GT(ctrl.commitIdOf(tx), 0u);
}

TEST_F(HoopFixture, StoresAreCapturedAsSlices)
{
    storeTx(0, 0x1000, 8, 100);
    // One full data slice plus one packed commit record must be on
    // NVM: 128 B slice + 32 B record + 64 B block header.
    EXPECT_EQ(ctrl.stats().value("data_slices"), 1u);
    EXPECT_EQ(ctrl.stats().value("addr_slices"), 1u);
    EXPECT_EQ(nvm.bytesWritten(), MemorySlice::kSliceBytes + 32 + 64u);
}

TEST_F(HoopFixture, PartialSliceFlushedAtCommit)
{
    storeTx(0, 0x1000, 3, 5);
    EXPECT_EQ(ctrl.stats().value("data_slices"), 1u);
    const MemorySlice s = ctrl.region().peekSlice(
        1); // first slice slot of block 0
    EXPECT_EQ(s.type, SliceType::Data);
    EXPECT_EQ(s.count, 3);
    EXPECT_TRUE(s.start);
    EXPECT_EQ(s.words[0], 5u);
    EXPECT_EQ(s.homeAddrs[2], 0x1000u + 16);
}

TEST_F(HoopFixture, ChainLinksMultipleSlices)
{
    storeTx(0, 0x2000, 20, 0); // 3 data slices (8+8+4)
    EXPECT_EQ(ctrl.stats().value("data_slices"), 3u);
    // The address slice records the chain tail; walk backwards.
    const MemorySlice rec = ctrl.region().peekSlice(4);
    ASSERT_EQ(rec.type, SliceType::AddrRec);
    EXPECT_EQ(rec.record.sliceCount, 3u);
    MemorySlice s = ctrl.region().peekSlice(rec.record.tailSliceIdx);
    unsigned hops = 1;
    while (s.prevIdx != MemorySlice::kNullIdx) {
        s = ctrl.region().peekSlice(s.prevIdx);
        ++hops;
    }
    EXPECT_EQ(hops, 3u);
    EXPECT_TRUE(s.start);
}

TEST_F(HoopFixture, SameWordCombinedWithinSlice)
{
    const TxId tx = ctrl.txBegin(0, 0);
    std::uint64_t v = 1;
    std::uint8_t b[8];
    for (int i = 0; i < 6; ++i) {
        v = 100 + i;
        std::memcpy(b, &v, 8);
        ctrl.storeWord(0, 0x3000, b, 0); // same word every time
    }
    ctrl.txEnd(0, 0);
    (void)tx;
    EXPECT_EQ(ctrl.stats().value("data_slices"), 1u);
    const MemorySlice s = ctrl.region().peekSlice(1);
    EXPECT_EQ(s.count, 1);
    EXPECT_EQ(s.words[0], 105u);
}

TEST_F(HoopFixture, ReadOnlyTxCommitsWithoutSlices)
{
    ctrl.txBegin(0, 0);
    const Tick done = ctrl.txEnd(0, 123);
    EXPECT_EQ(done, 123u);
    EXPECT_EQ(ctrl.stats().value("addr_slices"), 0u);
}

TEST_F(HoopFixture, EvictionOfOpenTxGoesOutOfPlace)
{
    const TxId tx = ctrl.txBegin(0, 0);
    std::uint8_t line[kCacheLineSize] = {};
    line[0] = 0xaa;
    ctrl.evictLine(0, 0x4000, line, /*persistent=*/true, tx,
                   /*mask=*/0x01, 0);
    EXPECT_EQ(ctrl.stats().value("oop_evictions"), 1u);
    EXPECT_TRUE(ctrl.mappingTable().lookup(0x4000).has_value());
    // The home region must still hold the old (zero) data.
    EXPECT_EQ(nvm.peekWord(0x4000), 0u);
    ctrl.txEnd(0, 0);
}

TEST_F(HoopFixture, EvictionOfCommittedTxAlsoGoesOutOfPlace)
{
    // The home region is written only by GC (§III-B): even after the
    // transaction committed, the eviction produces an OOP slice and a
    // mapping entry rather than an in-place write.
    const TxId tx = storeTx(0, 0x5000, 1, 42);
    std::uint8_t line[kCacheLineSize] = {};
    std::uint64_t v = 42;
    std::memcpy(line, &v, 8);
    ctrl.evictLine(0, 0x5000, line, true, tx, 0x01, 0);
    EXPECT_EQ(ctrl.stats().value("oop_evictions"), 1u);
    EXPECT_EQ(nvm.peekWord(0x5000), 0u); // home untouched until GC
    EXPECT_TRUE(ctrl.mappingTable().lookup(0x5000).has_value());

    // GC migrates the committed value home and drops the entry.
    ctrl.drain(0);
    EXPECT_EQ(nvm.peekWord(0x5000), 42u);
    EXPECT_FALSE(ctrl.mappingTable().lookup(0x5000).has_value());
}

TEST_F(HoopFixture, NonTransactionalEvictionGoesHome)
{
    std::uint8_t line[kCacheLineSize] = {};
    std::uint64_t v = 7;
    std::memcpy(line, &v, 8);
    ctrl.evictLine(0, 0x5040, line, /*persistent=*/false, kInvalidTxId,
                   0x01, 0);
    EXPECT_EQ(ctrl.stats().value("home_evictions"), 1u);
    EXPECT_EQ(nvm.peekWord(0x5040), 7u);
}

TEST_F(HoopFixture, FillReconstructsFromMappingHit)
{
    // Home holds an old value for word 1; the eviction slice holds the
    // new value for word 0 only.
    nvm.pokeWord(0x6008, 7);
    const TxId tx = ctrl.txBegin(0, 0);
    std::uint8_t line[kCacheLineSize] = {};
    std::uint64_t v = 99;
    std::memcpy(line, &v, 8);
    ctrl.evictLine(0, 0x6000, line, true, tx, 0x01, 0);

    std::uint8_t buf[kCacheLineSize] = {};
    const FillResult fr = ctrl.fillLine(0, 0x6000, buf, 0);
    std::uint64_t w0, w1;
    std::memcpy(&w0, buf, 8);
    std::memcpy(&w1, buf + 8, 8);
    EXPECT_EQ(w0, 99u); // from the OOP slice
    EXPECT_EQ(w1, 7u);  // from the home region (parallel read)
    EXPECT_TRUE(fr.dirty);
    EXPECT_TRUE(fr.persistent);
    EXPECT_EQ(fr.txId, tx);
    EXPECT_EQ(fr.wordMask, 0x01);
    EXPECT_EQ(ctrl.stats().value("parallel_reads"), 1u);
    // The entry is consumed: the freshest copy now lives in the cache.
    EXPECT_FALSE(ctrl.mappingTable().lookup(0x6000).has_value());
    ctrl.txEnd(0, 0);
}

TEST_F(HoopFixture, FillFromHomeOnMappingMiss)
{
    nvm.pokeWord(0x7000, 55);
    std::uint8_t buf[kCacheLineSize];
    const FillResult fr = ctrl.fillLine(0, 0x7000, buf, 0);
    std::uint64_t w;
    std::memcpy(&w, buf, 8);
    EXPECT_EQ(w, 55u);
    EXPECT_FALSE(fr.dirty);
    EXPECT_GE(fr.completion, cfg.nvm.readLatency);
}

TEST_F(HoopFixture, DebugReadLineSeesMappingRedirection)
{
    const TxId tx = ctrl.txBegin(0, 0);
    std::uint8_t line[kCacheLineSize] = {};
    std::uint64_t v = 1234;
    std::memcpy(line, &v, 8);
    ctrl.evictLine(0, 0x8000, line, true, tx, 0x01, 0);
    std::uint8_t buf[kCacheLineSize];
    ctrl.debugReadLine(0x8000, buf);
    std::uint64_t w;
    std::memcpy(&w, buf, 8);
    EXPECT_EQ(w, 1234u);
    ctrl.txEnd(0, 0);
}

TEST_F(HoopFixture, CrashDropsVolatileState)
{
    ctrl.txBegin(0, 0);
    std::uint8_t b[8] = {1};
    ctrl.storeWord(0, 0x9000, b, 0);
    std::uint8_t line[kCacheLineSize] = {};
    ctrl.evictLine(0, 0x9040, line, true, ctrl.currentTx(0), 0x01, 0);
    ctrl.crash();
    EXPECT_FALSE(ctrl.inTx(0));
    EXPECT_EQ(ctrl.mappingTable().size(), 0u);
    EXPECT_FALSE(ctrl.dataBuffer().hasPending(0));
}

TEST_F(HoopFixture, TxModifiedBytesTracked)
{
    storeTx(0, 0x1000, 8, 0);
    EXPECT_EQ(ctrl.txModifiedBytes(), 64u);
}

} // namespace
} // namespace hoopnvm
