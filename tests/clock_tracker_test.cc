/**
 * @file
 * ClockTracker differential tests: the incremental min/max tournament
 * trees must agree with a scan-based reference on randomized clock
 * sequences — values, and crucially argMin()'s lowest-index tie-break,
 * which the workload driver relies on to pick the same next core as
 * the scan it replaced.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/clock_tracker.hh"

using namespace hoopnvm;

namespace
{

/** Scan reference over the mirrored slot values. */
struct Reference
{
    std::vector<Tick> clocks;
    std::vector<bool> enabled;

    explicit Reference(std::size_t n) : clocks(n, 0), enabled(n, true)
    {
    }

    Tick
    min() const
    {
        Tick best = kNeverTick;
        for (std::size_t i = 0; i < clocks.size(); ++i) {
            if (enabled[i] && clocks[i] < best)
                best = clocks[i];
        }
        return best;
    }

    Tick
    max() const
    {
        Tick best = 0;
        for (std::size_t i = 0; i < clocks.size(); ++i) {
            if (enabled[i] && clocks[i] > best)
                best = clocks[i];
        }
        return best;
    }

    /** First slot with a strictly smaller clock wins — the workload
     *  driver's historical selection rule. */
    std::size_t
    argMin() const
    {
        std::size_t arg = clocks.size();
        Tick best = kNeverTick;
        for (std::size_t i = 0; i < clocks.size(); ++i) {
            if (enabled[i] && clocks[i] < best) {
                best = clocks[i];
                arg = i;
            }
        }
        return arg;
    }
};

} // namespace

TEST(ClockTracker, MatchesScanOnRandomizedSequences)
{
    // Deliberately includes non-power-of-two sizes (padding leaves must
    // never win) and size 1.
    for (const std::size_t n : {1u, 2u, 5u, 8u, 13u, 32u}) {
        Rng rng(1234 + n);
        ClockTracker t(n);
        Reference ref(n);
        for (int step = 0; step < 4000; ++step) {
            const std::size_t i = rng.nextBounded(n);
            if (rng.nextBool(0.05)) {
                t.disable(i);
                ref.enabled[i] = false;
            } else {
                // Mostly monotone advances (the engine's pattern) with
                // occasional decreases to exercise general updates, and
                // frequent exact ties to stress the tie-break.
                Tick v;
                if (rng.nextBool(0.3)) {
                    v = ref.clocks[rng.nextBounded(n)]; // force a tie
                } else if (rng.nextBool(0.1)) {
                    v = rng.nextBounded(1000); // decrease
                } else {
                    v = ref.clocks[i] + rng.nextRange(1, 50);
                }
                t.set(i, v);
                ref.clocks[i] = v;
                ref.enabled[i] = true;
            }
            ASSERT_EQ(t.min(), ref.min()) << "n=" << n << " @" << step;
            ASSERT_EQ(t.max(), ref.max()) << "n=" << n << " @" << step;
            if (ref.argMin() < n) {
                ASSERT_EQ(t.argMin(), ref.argMin())
                    << "n=" << n << " @" << step;
            }
        }
    }
}

TEST(ClockTracker, NextCoreSelectionMatchesScan)
{
    // Simulate the workload driver's loop: repeatedly pick the core
    // with the smallest clock (scan reference vs tracker), advance it
    // by a random amount, retire cores after a quota. The chosen
    // sequence must be identical — including ties, which occur
    // constantly at the start when every clock is 0.
    const std::size_t n = 8;
    const std::uint64_t quota = 200;
    Rng rng(42);
    ClockTracker t(n);
    Reference ref(n);
    std::vector<std::uint64_t> done(n, 0);
    std::uint64_t remaining = quota * n;
    while (remaining > 0) {
        const std::size_t want = ref.argMin();
        ASSERT_EQ(t.argMin(), want);
        // Random advance; ~10% of steps leave the clock unchanged so
        // the same slot must win again.
        const Tick d = rng.nextBool(0.1) ? 0 : rng.nextRange(1, 1000);
        ref.clocks[want] += d;
        ++done[want];
        --remaining;
        if (done[want] >= quota) {
            t.disable(want);
            ref.enabled[want] = false;
        } else {
            t.set(want, ref.clocks[want]);
        }
    }
    EXPECT_EQ(t.min(), kNeverTick); // all slots retired
    EXPECT_EQ(t.max(), 0u);
}

TEST(ClockTracker, InitialStateAndSingleSlot)
{
    ClockTracker t(3);
    EXPECT_EQ(t.min(), 0u);
    EXPECT_EQ(t.max(), 0u);
    EXPECT_EQ(t.argMin(), 0u); // leftmost among the all-zero tie

    ClockTracker one(1);
    one.set(0, 77);
    EXPECT_EQ(one.min(), 77u);
    EXPECT_EQ(one.max(), 77u);
    EXPECT_EQ(one.argMin(), 0u);
}
