/**
 * @file
 * Unit tests for the log-structured OOP region: block allocation and
 * state machine, round-robin wear leveling, slice IO, header
 * persistence and transaction-to-block bookkeeping.
 */

#include <gtest/gtest.h>

#include "hoop/oop_region.hh"

namespace hoopnvm
{
namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.homeBytes = miB(8);
    cfg.oopBytes = miB(4);
    cfg.oopBlockBytes = miB(1);
    cfg.auxBytes = miB(16);
    return cfg;
}

struct RegionFixture : ::testing::Test
{
    RegionFixture()
        : cfg(smallConfig()),
          nvm(cfg.nvmCapacity(), cfg.nvm),
          region(nvm, cfg)
    {
    }

    SystemConfig cfg;
    NvmDevice nvm;
    OopRegion region;
};

TEST_F(RegionFixture, Geometry)
{
    EXPECT_EQ(region.numBlocks(), 4u);
    EXPECT_EQ(region.slicesPerBlock(), miB(1) / 128 - 1);
    EXPECT_EQ(region.freeBlocks(), 4u);
}

TEST_F(RegionFixture, AllocOpensBlock)
{
    std::uint32_t idx;
    ASSERT_TRUE(region.allocSlice(idx, 0));
    EXPECT_EQ(region.blockOfSlice(idx), 0u);
    EXPECT_EQ(region.block(0).state, BlockState::InUse);
    EXPECT_EQ(region.freeBlocks(), 3u);
    // Header persisted to NVM.
    const BlockHeaderView h = region.peekHeader(0);
    EXPECT_TRUE(h.valid);
    EXPECT_EQ(h.state, BlockState::InUse);
}

TEST_F(RegionFixture, SliceAddressesAreDistinctAndInRange)
{
    std::uint32_t prev = 0;
    for (int i = 0; i < 100; ++i) {
        std::uint32_t idx;
        ASSERT_TRUE(region.allocSlice(idx, 0));
        if (i > 0) {
            EXPECT_NE(idx, prev);
        }
        const Addr a = region.sliceAddr(idx);
        EXPECT_GE(a, cfg.oopBase());
        EXPECT_LT(a, cfg.oopBase() + cfg.oopBytes);
        EXPECT_TRUE(isAligned(a, MemorySlice::kSliceBytes));
        prev = idx;
    }
}

TEST_F(RegionFixture, SliceWriteReadRoundTrip)
{
    std::uint32_t idx;
    ASSERT_TRUE(region.allocSlice(idx, 0));
    MemorySlice s;
    s.type = SliceType::Data;
    s.count = 2;
    s.txId = 5;
    s.seq = region.allocSeq();
    s.words[0] = 111;
    s.words[1] = 222;
    s.homeAddrs[0] = 64;
    s.homeAddrs[1] = 72;
    region.writeSlice(0, idx, s);

    const MemorySlice r = region.peekSlice(idx);
    EXPECT_EQ(r.type, SliceType::Data);
    EXPECT_EQ(r.words[0], 111u);
    EXPECT_EQ(r.words[1], 222u);

    Tick done = 0;
    const MemorySlice t = region.readSlice(0, idx, &done);
    EXPECT_EQ(t.words[1], 222u);
    EXPECT_GT(done, 0u);
}

TEST_F(RegionFixture, BlockFillsAndBecomesFull)
{
    std::uint32_t idx = 0;
    for (std::uint32_t i = 0; i <= region.slicesPerBlock(); ++i)
        ASSERT_TRUE(region.allocSlice(idx, 0));
    // First block must now be Full and a second block opened.
    EXPECT_EQ(region.block(0).state, BlockState::Full);
    EXPECT_EQ(region.block(1).state, BlockState::InUse);
    EXPECT_EQ(region.blockOfSlice(idx), 1u);
}

TEST_F(RegionFixture, RegionExhaustionReturnsFalse)
{
    std::uint32_t idx;
    const std::uint64_t total =
        static_cast<std::uint64_t>(region.numBlocks()) *
        region.slicesPerBlock();
    for (std::uint64_t i = 0; i < total; ++i)
        ASSERT_TRUE(region.allocSlice(idx, 0));
    EXPECT_FALSE(region.allocSlice(idx, 0));
}

TEST_F(RegionFixture, RoundRobinReuse)
{
    // Fill block 0, recycle it, fill blocks 1..3: the next open must
    // wrap to block 0 (uniform aging).
    std::uint32_t idx;
    for (std::uint32_t i = 0; i < region.slicesPerBlock(); ++i)
        ASSERT_TRUE(region.allocSlice(idx, 0));
    ASSERT_TRUE(region.allocSlice(idx, 0)); // opens block 1
    region.setBlockState(0, BlockState::Unused, 0);

    for (std::uint32_t b = 1; b < 4; ++b) {
        while (region.block(b).state == BlockState::InUse)
            ASSERT_TRUE(region.allocSlice(idx, 0));
    }
    EXPECT_EQ(region.blockOfSlice(idx), 0u);
}

TEST_F(RegionFixture, TxBlockBookkeeping)
{
    std::uint32_t idx;
    ASSERT_TRUE(region.allocSlice(idx, 0));
    region.noteSliceTx(idx, 7);
    ASSERT_TRUE(region.allocSlice(idx, 0));
    region.noteSliceTx(idx, 7);
    region.noteSliceTx(idx, 8);

    EXPECT_EQ(region.block(0).txs.size(), 2u);
    const auto blocks = region.txBlocks(7);
    EXPECT_EQ(blocks.size(), 1u);

    region.retireTx(7);
    EXPECT_TRUE(region.txBlocks(7).empty());
    EXPECT_EQ(region.block(0).txs.size(), 1u);
}

TEST_F(RegionFixture, UnusedTransitionClearsBookkeeping)
{
    std::uint32_t idx;
    ASSERT_TRUE(region.allocSlice(idx, 0));
    region.noteSliceTx(idx, 9);
    region.setBlockState(0, BlockState::Unused, 0);
    EXPECT_TRUE(region.txBlocks(9).empty());
    EXPECT_TRUE(region.block(0).txs.empty());
    EXPECT_EQ(region.peekHeader(0).state, BlockState::Unused);
}

TEST_F(RegionFixture, StaleSliceDetectionViaOpenSeq)
{
    // Write a slice, recycle the block, reopen it: the stale slice's
    // seq predates the new openSeq.
    std::uint32_t idx;
    ASSERT_TRUE(region.allocSlice(idx, 0));
    MemorySlice s;
    s.type = SliceType::Data;
    s.count = 1;
    s.txId = 1;
    s.seq = region.allocSeq();
    s.homeAddrs[0] = 64;
    region.writeSlice(0, idx, s);

    region.setBlockState(0, BlockState::Unused, 0);
    region.reset();
    region.setNextSeq(s.seq + 1);

    std::uint32_t idx2;
    ASSERT_TRUE(region.allocSlice(idx2, 0));
    const BlockHeaderView h = region.peekHeader(region.blockOfSlice(idx2));
    // Stale slice seq < openSeq of the re-opened block.
    EXPECT_LT(s.seq, h.openSeq + 1);
    EXPECT_GE(h.openSeq, s.seq + 1);
}

TEST_F(RegionFixture, ResetClearsEverything)
{
    std::uint32_t idx;
    ASSERT_TRUE(region.allocSlice(idx, 0));
    region.noteSliceTx(idx, 3);
    region.reset();
    EXPECT_EQ(region.freeBlocks(), region.numBlocks());
    EXPECT_TRUE(region.txBlocks(3).empty());
    for (std::uint32_t b = 0; b < region.numBlocks(); ++b)
        EXPECT_EQ(region.peekHeader(b).state, BlockState::Unused);
}

} // namespace
} // namespace hoopnvm
