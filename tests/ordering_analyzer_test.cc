/**
 * @file
 * End-to-end tests of the persistency-ordering analyzer over the real
 * simulator (analysis/order_harness.hh).
 *
 * Two halves:
 *  - clean runs: every persistent scheme, driven through a workload
 *    with GC/checkpoint/truncation activity, must finish with zero
 *    rule violations and zero dead rules — each declared rule both
 *    holds and is actually exercised;
 *  - seeded bugs: each debug knob reintroduces one real ordering bug
 *    (early commit ack, skipped drain fence, skipped undo entry) and
 *    the one rule that guards that protocol step must fire violations,
 *    while recovery-grade crash tests might still pass by luck.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "analysis/order_harness.hh"

namespace hoopnvm
{
namespace
{

const Scheme kPersistentSchemes[] = {Scheme::Hoop, Scheme::OptRedo,
                                     Scheme::OptUndo, Scheme::Osp,
                                     Scheme::Lsm, Scheme::Lad};

std::uint64_t
ruleViolations(const OrderCheckReport &rep, const std::string &rule)
{
    for (const OrderingRuleReport &rr : rep.rules) {
        if (rr.name == rule)
            return rr.violations;
    }
    ADD_FAILURE() << "rule " << rule << " not declared";
    return 0;
}

OrderCheckReport
runScheme(Scheme s, void (*tweak)(OrderCheckOptions &) = nullptr)
{
    OrderCheckOptions opt;
    opt.scheme = s;
    opt.workload = "hashmap";
    if (tweak)
        tweak(opt);
    return runOrderCheck(opt);
}

TEST(CleanRun, EverySchemeHasZeroViolationsAndNoDeadRules)
{
    for (Scheme s : kPersistentSchemes) {
        const OrderCheckReport rep = runScheme(s);
        EXPECT_TRUE(rep.verified) << schemeName(s);
        EXPECT_EQ(rep.totalViolations, 0u) << schemeName(s);
        EXPECT_TRUE(rep.deadRules.empty())
            << schemeName(s) << " dead rule: "
            << (rep.deadRules.empty() ? "" : rep.deadRules.front());
        EXPECT_FALSE(rep.rules.empty()) << schemeName(s);
    }
}

TEST(CleanRun, TornWriteInjectionStaysClean)
{
    // Arming the torn-write fault injector must not perturb rule
    // checking on a crash-free run.
    const OrderCheckReport rep = runScheme(
        Scheme::Hoop, [](OrderCheckOptions &o) { o.tornWrites = true; });
    EXPECT_EQ(rep.totalViolations, 0u);
    EXPECT_TRUE(rep.deadRules.empty());
}

TEST(SeededBug, HoopBrokenCommitFenceFiresCommitRule)
{
    const OrderCheckReport rep =
        runScheme(Scheme::Hoop, [](OrderCheckOptions &o) {
            o.breakCommitFence = true;
        });
    EXPECT_GT(ruleViolations(rep, "hoop-commit-record"), 0u);
    EXPECT_EQ(ruleViolations(rep, "hoop-gc-watermark"), 0u);
}

TEST(SeededBug, HoopSkippedGcFencesFireWatermarkRule)
{
    const OrderCheckReport rep =
        runScheme(Scheme::Hoop, [](OrderCheckOptions &o) {
            o.skipSettleFences = true;
        });
    EXPECT_GT(ruleViolations(rep, "hoop-gc-watermark"), 0u);
    EXPECT_EQ(ruleViolations(rep, "hoop-commit-record"), 0u);
}

TEST(SeededBug, RedoEarlyAckFiresCommitRule)
{
    const OrderCheckReport rep =
        runScheme(Scheme::OptRedo, [](OrderCheckOptions &o) {
            o.earlyCommitAck = true;
        });
    EXPECT_GT(ruleViolations(rep, "redo-commit-record"), 0u);
    EXPECT_EQ(ruleViolations(rep, "redo-log-truncate"), 0u);
}

TEST(SeededBug, RedoSkippedDrainFiresTruncateRule)
{
    const OrderCheckReport rep =
        runScheme(Scheme::OptRedo, [](OrderCheckOptions &o) {
            o.skipSettleFences = true;
        });
    EXPECT_GT(ruleViolations(rep, "redo-log-truncate"), 0u);
    EXPECT_EQ(ruleViolations(rep, "redo-commit-record"), 0u);
}

TEST(SeededBug, UndoEarlyAckFiresCommitRule)
{
    const OrderCheckReport rep =
        runScheme(Scheme::OptUndo, [](OrderCheckOptions &o) {
            o.earlyCommitAck = true;
        });
    EXPECT_GT(ruleViolations(rep, "undo-commit-record"), 0u);
}

TEST(SeededBug, UndoSkippedLogFiresWriteAheadRule)
{
    const OrderCheckReport rep =
        runScheme(Scheme::OptUndo, [](OrderCheckOptions &o) {
            o.skipUndoLog = true;
        });
    EXPECT_GT(ruleViolations(rep, "undo-home-write"), 0u);
    EXPECT_EQ(ruleViolations(rep, "undo-commit-record"), 0u);
}

TEST(SeededBug, LsmEarlyAckFiresCommitRule)
{
    const OrderCheckReport rep =
        runScheme(Scheme::Lsm, [](OrderCheckOptions &o) {
            o.earlyCommitAck = true;
        });
    EXPECT_GT(ruleViolations(rep, "lsm-commit-record"), 0u);
}

TEST(SeededBug, LsmSkippedDrainFiresTruncateRule)
{
    const OrderCheckReport rep =
        runScheme(Scheme::Lsm, [](OrderCheckOptions &o) {
            o.skipSettleFences = true;
        });
    EXPECT_GT(ruleViolations(rep, "lsm-log-truncate"), 0u);
    EXPECT_EQ(ruleViolations(rep, "lsm-commit-record"), 0u);
}

TEST(SeededBug, OspEarlyAckFiresFlipRule)
{
    const OrderCheckReport rep =
        runScheme(Scheme::Osp, [](OrderCheckOptions &o) {
            o.earlyCommitAck = true;
        });
    EXPECT_GT(ruleViolations(rep, "osp-flip-record"), 0u);
}

TEST(SeededBug, LadSkippedDrainFiresCommitDrainRule)
{
    const OrderCheckReport rep =
        runScheme(Scheme::Lad, [](OrderCheckOptions &o) {
            o.skipSettleFences = true;
        });
    EXPECT_GT(ruleViolations(rep, "lad-commit-drain"), 0u);
}

} // namespace
} // namespace hoopnvm
