/**
 * @file
 * Unit tests for the common layer: RNG, Zipfian generator, address
 * helpers, hashing, stats and the table printer.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/crc32.hh"
#include "common/hash.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "common/zipfian.hh"
#include "stats/stat_set.hh"
#include "stats/table.hh"

namespace hoopnvm
{
namespace
{

TEST(Types, AlignmentHelpers)
{
    EXPECT_EQ(alignDown(127, 64), 64u);
    EXPECT_EQ(alignDown(128, 64), 128u);
    EXPECT_EQ(alignUp(127, 64), 128u);
    EXPECT_EQ(alignUp(128, 64), 128u);
    EXPECT_EQ(lineAddr(130), 128u);
    EXPECT_EQ(wordAddr(13), 8u);
    EXPECT_TRUE(isAligned(256, 64));
    EXPECT_FALSE(isAligned(257, 64));
}

TEST(Types, TickConversions)
{
    EXPECT_EQ(nsToTicks(50), 50000u);
    EXPECT_DOUBLE_EQ(ticksToNs(50000), 50.0);
    EXPECT_DOUBLE_EQ(ticksToMs(nsToTicks(10e6)), 10.0);
    EXPECT_EQ(kiB(32), 32768u);
    EXPECT_EQ(miB(2), 2097152u);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(r.nextBounded(17), 17u);
        const auto v = r.nextRange(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        sum += d;
    }
    // Mean of U[0,1) should be near 1/2.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliRate)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.nextBool(0.2) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.2, 0.02);
}

TEST(Zipfian, SkewsTowardsSmallKeys)
{
    ZipfianGenerator z(1000, 0.99, 42);
    std::uint64_t small = 0, total = 100000;
    for (std::uint64_t i = 0; i < total; ++i) {
        const auto k = z.next();
        ASSERT_LT(k, 1000u);
        if (k < 10)
            ++small;
    }
    // With theta=0.99 the top-1% of keys draw a large share.
    EXPECT_GT(small, total / 5);
}

TEST(Zipfian, CoversKeySpace)
{
    ZipfianGenerator z(64, 0.5, 9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 50000; ++i)
        seen.insert(z.next());
    EXPECT_GT(seen.size(), 60u);
}

TEST(Crc32, KnownVectors)
{
    // RFC 3720 test vector: CRC-32C("123456789") == 0xe3069283.
    EXPECT_EQ(crc32c("123456789", 9), 0xe3069283u);
    EXPECT_EQ(crc32cSoft("123456789", 9), 0xe3069283u);
    EXPECT_EQ(crc32c(nullptr, 0), 0u);
}

TEST(Crc32, HardwareMatchesTableOnAllLengthsAndSeeds)
{
    // The dispatched implementation (hardware crc32 when the host has
    // SSE4.2) must agree with the table reference byte-for-byte on
    // every length the slice formats use, including unaligned spans
    // and chained seeds — the recovery CRC check depends on it.
    Rng r(99);
    std::uint8_t buf[192];
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(r.next());
    for (std::size_t off = 0; off < 8; ++off) {
        for (std::size_t len = 0; len + off <= sizeof(buf); ++len) {
            ASSERT_EQ(crc32c(buf + off, len), crc32cSoft(buf + off, len));
            ASSERT_EQ(crc32c(buf + off, len, 0xdeadbeef),
                      crc32cSoft(buf + off, len, 0xdeadbeef));
        }
    }
    // Chaining: crc(a+b) == crc(b, seed = crc(a)).
    const std::uint32_t whole = crc32c(buf, 121);
    const std::uint32_t part = crc32c(buf + 40, 81, crc32c(buf, 40));
    EXPECT_EQ(whole, part);
}

TEST(Hash, MixesDistinctInputs)
{
    std::set<std::uint64_t> out;
    for (std::uint64_t i = 0; i < 1000; ++i)
        out.insert(mixHash(i * 64));
    EXPECT_EQ(out.size(), 1000u);
}

TEST(StatSet, CountsAndDumps)
{
    StatSet s("unit");
    ++s.counter("a");
    s.counter("a") += 4;
    s.counter("b") += 2;
    EXPECT_EQ(s.value("a"), 5u);
    EXPECT_EQ(s.value("b"), 2u);
    EXPECT_EQ(s.value("missing"), 0u);
    const std::string d = s.dump();
    EXPECT_NE(d.find("unit.a 5"), std::string::npos);
    s.resetAll();
    EXPECT_EQ(s.value("a"), 0u);
}

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t("demo");
    t.setHeader({"name", "value"});
    t.addRow({"x", TablePrinter::num(1.5, 2)});
    t.addRow({"longer", "2"});
    const std::string out = t.render();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
}

} // namespace
} // namespace hoopnvm
