/**
 * @file
 * Unit tests for the NVM device model: functional sparse storage,
 * latency/bandwidth timing, traffic counters and the energy model.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "nvm/nvm_device.hh"

namespace hoopnvm
{
namespace
{

NvmTiming
testTiming()
{
    NvmTiming t;
    t.readLatency = nsToTicks(50);
    t.writeLatency = nsToTicks(150);
    t.bandwidthBytesPerSec = 25e9;
    return t;
}

TEST(NvmDevice, ReadsBackWrittenBytes)
{
    NvmDevice dev(miB(16), testTiming());
    const char msg[] = "hello, persistent world!";
    dev.write(0, 4096, msg, sizeof(msg));
    char out[sizeof(msg)] = {};
    dev.read(0, 4096, out, sizeof(msg));
    EXPECT_STREQ(out, msg);
}

TEST(NvmDevice, UnwrittenBytesReadZero)
{
    NvmDevice dev(miB(16), testTiming());
    std::uint8_t buf[64];
    std::memset(buf, 0xab, sizeof(buf));
    dev.peek(miB(1), buf, sizeof(buf));
    for (auto b : buf)
        EXPECT_EQ(b, 0);
}

TEST(NvmDevice, CrossPageAccess)
{
    NvmDevice dev(miB(16), testTiming());
    std::vector<std::uint8_t> in(10000);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<std::uint8_t>(i * 7);
    dev.poke(4000, in.data(), in.size()); // spans multiple 4K pages
    std::vector<std::uint8_t> out(in.size());
    dev.peek(4000, out.data(), out.size());
    EXPECT_EQ(in, out);
}

TEST(NvmDevice, ReadLatencyApplied)
{
    NvmDevice dev(miB(16), testTiming());
    std::uint8_t buf[64];
    const Tick done = dev.read(0, 0, buf, 64);
    // 50 ns latency + 64 B / 25 GB/s transfer.
    EXPECT_GE(done, nsToTicks(50));
    EXPECT_LT(done, nsToTicks(60));
}

TEST(NvmDevice, WriteLatencyApplied)
{
    NvmDevice dev(miB(16), testTiming());
    std::uint8_t buf[64] = {};
    const Tick done = dev.write(0, 0, buf, 64);
    EXPECT_GE(done, nsToTicks(150));
    EXPECT_LT(done, nsToTicks(160));
}

TEST(NvmDevice, BandwidthSerializesTransfers)
{
    NvmDevice dev(miB(16), testTiming());
    std::uint8_t buf[4096] = {};
    // Issue many back-to-back writes at t=0; the channel must
    // serialize their transfer phases.
    Tick last = 0;
    for (int i = 0; i < 100; ++i)
        last = dev.write(0, 0, buf, 4096);
    const double expected_ns = 100 * 4096 / 25e9 * 1e9; // ~16.4 us
    EXPECT_GT(ticksToNs(last), expected_ns * 0.9);
}

TEST(NvmDevice, CountersTrackTraffic)
{
    NvmDevice dev(miB(16), testTiming());
    std::uint8_t buf[128] = {};
    dev.write(0, 0, buf, 128);
    dev.read(0, 0, buf, 64);
    dev.writeAccounting(0, 64);
    dev.readAccounting(0, 32);
    EXPECT_EQ(dev.bytesWritten(), 192u);
    EXPECT_EQ(dev.bytesRead(), 96u);
    EXPECT_EQ(dev.writeAccesses(), 2u);
    EXPECT_EQ(dev.readAccesses(), 2u);
    dev.resetCounters();
    EXPECT_EQ(dev.bytesWritten(), 0u);
    EXPECT_EQ(dev.bytesRead(), 0u);
}

TEST(NvmDevice, EnergyChargesPerBit)
{
    EnergyParams p;
    NvmDevice dev(miB(16), testTiming(), p);
    std::uint8_t buf[64] = {};
    dev.write(0, 0, buf, 64);
    const double expected_write =
        64 * 8 * (p.rowBufferWritePjPerBit + p.arrayWritePjPerBit);
    EXPECT_DOUBLE_EQ(dev.energy().writeEnergyPj(), expected_write);
    dev.read(0, 0, buf, 64);
    const double expected_read =
        64 * 8 * (p.rowBufferReadPjPerBit + p.arrayReadPjPerBit);
    EXPECT_DOUBLE_EQ(dev.energy().readEnergyPj(), expected_read);
    // Writes are far more expensive than reads (Table II).
    EXPECT_GT(dev.energy().writeEnergyPj(),
              dev.energy().readEnergyPj() * 4);
}

TEST(NvmDevice, PokeDoesNotCount)
{
    NvmDevice dev(miB(16), testTiming());
    std::uint8_t buf[64] = {};
    dev.poke(0, buf, 64);
    dev.peek(0, buf, 64);
    EXPECT_EQ(dev.bytesWritten(), 0u);
    EXPECT_EQ(dev.bytesRead(), 0u);
}

TEST(NvmDevice, WordHelpers)
{
    NvmDevice dev(miB(1), testTiming());
    dev.pokeWord(512, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(dev.peekWord(512), 0xdeadbeefcafef00dULL);
}

TEST(NvmDevice, ClearDropsState)
{
    NvmDevice dev(miB(1), testTiming());
    dev.pokeWord(0, 42);
    std::uint8_t buf[8] = {};
    dev.write(0, 0, buf, 8);
    dev.clear();
    EXPECT_EQ(dev.peekWord(0), 0u);
    EXPECT_EQ(dev.bytesWritten(), 0u);
    EXPECT_EQ(dev.channelFree(), 0u);
}

} // namespace
} // namespace hoopnvm
