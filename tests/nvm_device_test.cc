/**
 * @file
 * Unit tests for the NVM device model: functional sparse storage,
 * latency/bandwidth timing, traffic counters and the energy model.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "nvm/nvm_device.hh"

namespace hoopnvm
{
namespace
{

NvmTiming
testTiming()
{
    NvmTiming t;
    t.readLatency = nsToTicks(50);
    t.writeLatency = nsToTicks(150);
    t.bandwidthBytesPerSec = 25e9;
    return t;
}

TEST(NvmDevice, ReadsBackWrittenBytes)
{
    NvmDevice dev(miB(16), testTiming());
    const char msg[] = "hello, persistent world!";
    dev.write(0, 4096, msg, sizeof(msg));
    char out[sizeof(msg)] = {};
    dev.read(0, 4096, out, sizeof(msg));
    EXPECT_STREQ(out, msg);
}

TEST(NvmDevice, UnwrittenBytesReadZero)
{
    NvmDevice dev(miB(16), testTiming());
    std::uint8_t buf[64];
    std::memset(buf, 0xab, sizeof(buf));
    dev.peek(miB(1), buf, sizeof(buf));
    for (auto b : buf)
        EXPECT_EQ(b, 0);
}

TEST(NvmDevice, CrossPageAccess)
{
    NvmDevice dev(miB(16), testTiming());
    std::vector<std::uint8_t> in(10000);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<std::uint8_t>(i * 7);
    dev.poke(4000, in.data(), in.size()); // spans multiple 4K pages
    std::vector<std::uint8_t> out(in.size());
    dev.peek(4000, out.data(), out.size());
    EXPECT_EQ(in, out);
}

TEST(NvmDevice, ReadLatencyApplied)
{
    NvmDevice dev(miB(16), testTiming());
    std::uint8_t buf[64];
    const Tick done = dev.read(0, 0, buf, 64);
    // 50 ns latency + 64 B / 25 GB/s transfer.
    EXPECT_GE(done, nsToTicks(50));
    EXPECT_LT(done, nsToTicks(60));
}

TEST(NvmDevice, WriteLatencyApplied)
{
    NvmDevice dev(miB(16), testTiming());
    std::uint8_t buf[64] = {};
    const Tick done = dev.write(0, 0, buf, 64);
    EXPECT_GE(done, nsToTicks(150));
    EXPECT_LT(done, nsToTicks(160));
}

TEST(NvmDevice, BandwidthSerializesTransfers)
{
    NvmDevice dev(miB(16), testTiming());
    std::uint8_t buf[4096] = {};
    // Issue many back-to-back writes at t=0; the channel must
    // serialize their transfer phases.
    Tick last = 0;
    for (int i = 0; i < 100; ++i)
        last = dev.write(0, 0, buf, 4096);
    const double expected_ns = 100 * 4096 / 25e9 * 1e9; // ~16.4 us
    EXPECT_GT(ticksToNs(last), expected_ns * 0.9);
}

TEST(NvmDevice, CountersTrackTraffic)
{
    NvmDevice dev(miB(16), testTiming());
    std::uint8_t buf[128] = {};
    dev.write(0, 0, buf, 128);
    dev.read(0, 0, buf, 64);
    dev.writeAccounting(0, 64);
    dev.readAccounting(0, 32);
    EXPECT_EQ(dev.bytesWritten(), 192u);
    EXPECT_EQ(dev.bytesRead(), 96u);
    EXPECT_EQ(dev.writeAccesses(), 2u);
    EXPECT_EQ(dev.readAccesses(), 2u);
    dev.resetCounters();
    EXPECT_EQ(dev.bytesWritten(), 0u);
    EXPECT_EQ(dev.bytesRead(), 0u);
}

TEST(NvmDevice, EnergyChargesPerBit)
{
    EnergyParams p;
    NvmDevice dev(miB(16), testTiming(), p);
    std::uint8_t buf[64] = {};
    dev.write(0, 0, buf, 64);
    const double expected_write =
        64 * 8 * (p.rowBufferWritePjPerBit + p.arrayWritePjPerBit);
    EXPECT_DOUBLE_EQ(dev.energy().writeEnergyPj(), expected_write);
    dev.read(0, 0, buf, 64);
    const double expected_read =
        64 * 8 * (p.rowBufferReadPjPerBit + p.arrayReadPjPerBit);
    EXPECT_DOUBLE_EQ(dev.energy().readEnergyPj(), expected_read);
    // Writes are far more expensive than reads (Table II).
    EXPECT_GT(dev.energy().writeEnergyPj(),
              dev.energy().readEnergyPj() * 4);
}

TEST(NvmDevice, PokeDoesNotCount)
{
    NvmDevice dev(miB(16), testTiming());
    std::uint8_t buf[64] = {};
    dev.poke(0, buf, 64);
    dev.peek(0, buf, 64);
    EXPECT_EQ(dev.bytesWritten(), 0u);
    EXPECT_EQ(dev.bytesRead(), 0u);
}

TEST(NvmDevice, WordHelpers)
{
    NvmDevice dev(miB(1), testTiming());
    dev.pokeWord(512, 0xdeadbeefcafef00dULL);
    EXPECT_EQ(dev.peekWord(512), 0xdeadbeefcafef00dULL);
}

TEST(NvmDevice, ClearDropsState)
{
    NvmDevice dev(miB(1), testTiming());
    dev.pokeWord(0, 42);
    std::uint8_t buf[8] = {};
    dev.write(0, 0, buf, 8);
    dev.clear();
    EXPECT_EQ(dev.peekWord(0), 0u);
    EXPECT_EQ(dev.bytesWritten(), 0u);
    EXPECT_EQ(dev.channelFree(), 0u);
}

// ---------------------------------------------------------------------
// PR 10 channel-accounting regressions.
// ---------------------------------------------------------------------

TEST(NvmChannel, EccSurchargeOccupiesTheChannel)
{
    // Regression: the per-corrected-word ECC surcharge used to be
    // charged to the requester's completion time only; the channel was
    // marked free as if the correction pipeline were off-device, so a
    // competing read slipped into the correction window. The surcharge
    // must extend channelFree by exactly the same amount it extends the
    // read's own completion. Fully-correctable faults (1-bit flips
    // against 1-bit ECC) keep retries out of the picture.
    constexpr std::size_t kLen = 256; // 32 words
    const Tick ecc_cost = nsToTicks(20);

    NvmDevice clean(miB(16), testTiming());
    NvmDevice faulty(miB(16), testTiming());
    faulty.faults().setSeed(99);
    faulty.faults().setEcc(1);
    faulty.setReadRetryPolicy(4, nsToTicks(100), ecc_cost);
    faulty.faults().addMediaFault(0x1000, 0x1000 + kLen,
                                  MediaFaultKind::BitFlip, 1.0, 1);

    std::uint8_t buf[kLen];
    ReadFaultInfo rf;
    const Tick done_clean = clean.read(0, 0x1000, buf, kLen);
    const Tick done_faulty = faulty.read(0, 0x1000, buf, kLen, &rf);
    ASSERT_GT(rf.correctedWords, 0u);
    ASSERT_EQ(rf.retries, 0u) << "1-bit flips must not trigger retries";

    const Tick surcharge = ecc_cost * rf.correctedWords;
    EXPECT_EQ(done_faulty, done_clean + surcharge);
    EXPECT_EQ(faulty.channelFree(), clean.channelFree() + surcharge)
        << "ECC surcharge left the channel free during correction";
    EXPECT_EQ(faulty.channelBusyTicks(),
              clean.channelBusyTicks() + surcharge);

    // And a follow-up requester really queues behind the correction:
    // its completion shifts by the full surcharge too.
    const Tick next_clean = clean.read(0, 0x8000, buf, kLen);
    const Tick next_faulty = faulty.read(0, 0x8000, buf, kLen);
    EXPECT_EQ(next_faulty, next_clean + surcharge);
}

TEST(NvmChannel, DrainFenceBoundsAndHoldsTheChannel)
{
    NvmDevice dev(miB(16), testTiming());
    std::uint8_t buf[64] = {};
    dev.write(0, 0, buf, sizeof(buf));
    const Tick free_before = dev.channelFree();

    // The fence bound is channelFree + writeLatency: every issued write
    // holds its channel slot, then completes one (pipelined) array
    // write later.
    const Tick bound = dev.drainFence(0);
    EXPECT_EQ(bound, free_before + nsToTicks(150));
    EXPECT_EQ(dev.channelFree(), bound)
        << "the drain window must occupy the channel, not just "
           "timestamp it";
    EXPECT_EQ(dev.drainFences(), 1u);

    // Regression: a read issued *after* the fence but at an earlier
    // core clock used to start at its own clock, inside the very
    // window the fence drains. It must queue behind the bound.
    const Tick done = dev.read(0, 4096, buf, sizeof(buf));
    EXPECT_GE(done, bound + nsToTicks(50));
    EXPECT_GT(dev.channelWaitTicks(), 0u);

    // A fence issued when the channel is long idle is a no-op bound:
    // it returns `now` and holds nothing extra.
    NvmDevice idle(miB(16), testTiming());
    EXPECT_EQ(idle.drainFence(nsToTicks(500)), nsToTicks(500));
}

TEST(NvmChannel, GaugesAccumulateAndReset)
{
    NvmDevice dev(miB(16), testTiming());
    std::uint8_t buf[64] = {};

    // First read at t=0 takes the idle channel: busy accrues, wait
    // does not.
    dev.read(0, 0, buf, sizeof(buf));
    const std::uint64_t hold = dev.channelBusyTicks();
    EXPECT_GT(hold, 0u);
    EXPECT_EQ(dev.channelWaitTicks(), 0u);

    // Second read also issued at t=0 queues for the full first hold.
    dev.read(0, 4096, buf, sizeof(buf));
    EXPECT_EQ(dev.channelWaitTicks(), hold);
    EXPECT_EQ(dev.channelBusyTicks(), 2 * hold);

    dev.drainFence(0);
    EXPECT_EQ(dev.drainFences(), 1u);

    dev.resetCounters();
    EXPECT_EQ(dev.channelBusyTicks(), 0u);
    EXPECT_EQ(dev.channelWaitTicks(), 0u);
    EXPECT_EQ(dev.drainFences(), 0u);
    // resetCounters is a measurement boundary, not a time machine: the
    // channel stays reserved.
    EXPECT_GT(dev.channelFree(), 0u);
}

} // namespace
} // namespace hoopnvm
