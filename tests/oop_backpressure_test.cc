/**
 * @file
 * OOP-region exhaustion must be modelled backpressure, not UB: with
 * periodic GC disabled, a writer that outruns the tiny OOP region
 * stalls on an on-demand GC run (counted, and charged to the timing
 * model) instead of tripping an assert — and the resulting state still
 * recovers cleanly.
 */

#include <gtest/gtest.h>

#include "workloads/registry.hh"

namespace hoopnvm
{
namespace
{

SystemConfig
tinyOopConfig()
{
    SystemConfig cfg;
    cfg.numCores = 1;
    cfg.homeBytes = miB(64);
    // A handful of small blocks: a few hundred transactions overrun
    // them many times over.
    cfg.oopBytes = kiB(32);
    cfg.oopBlockBytes = kiB(8);
    cfg.auxBytes = miB(64) + miB(8);
    cfg.cache.l1Size = kiB(1);
    cfg.cache.l1Assoc = 2;
    cfg.cache.l2Size = kiB(4);
    cfg.cache.l2Assoc = 2;
    cfg.cache.llcSize = kiB(16);
    cfg.cache.llcAssoc = 4;
    // Disable periodic/pressure GC so only allocation-time
    // backpressure can reclaim space.
    cfg.gcEnabled = false;
    return cfg;
}

TEST(OopBackpressure, ExhaustionStallsInsteadOfAsserting)
{
    SystemConfig cfg = tinyOopConfig();
    System sys(cfg, Scheme::Hoop);

    WorkloadParams params;
    params.valueBytes = 64;
    params.scale = 128;
    auto wl = makeWorkload("hashmap", params)(sys, 0);
    wl->setup();

    for (int i = 0; i < 300; ++i)
        wl->runTransaction(i);

    const StatSet &st = sys.controller().stats();
    EXPECT_GT(st.value("oop_backpressure_stalls"), 0u)
        << "300 transactions never exhausted a 32 KiB OOP region";
    EXPECT_GT(st.value("oop_backpressure_stall_ticks"), 0u)
        << "stalls were counted but never charged to the timing model";
    EXPECT_GT(st.value("gc_on_demand"), 0u);

    EXPECT_TRUE(wl->verify());
    std::string why;
    EXPECT_TRUE(wl->verifyStructure(&why)) << why;

    // The backpressured run must still be crash-consistent.
    sys.crash();
    sys.recover(2);
    EXPECT_TRUE(wl->verify());
    EXPECT_TRUE(wl->verifyStructure(&why)) << why;
}

TEST(OopBackpressure, VectorAppendsUnderPressure)
{
    SystemConfig cfg = tinyOopConfig();
    System sys(cfg, Scheme::Hoop);

    WorkloadParams params;
    params.valueBytes = 64;
    params.scale = 512;
    auto wl = makeWorkload("vector", params)(sys, 0);
    wl->setup();

    for (int i = 0; i < 300; ++i)
        wl->runTransaction(i);

    EXPECT_GT(sys.controller().stats().value("oop_backpressure_stalls"),
              0u);
    EXPECT_TRUE(wl->verify());
    std::string why;
    EXPECT_TRUE(wl->verifyStructure(&why)) << why;
}

} // namespace
} // namespace hoopnvm
