/**
 * @file
 * Measurement-phase reset regression tests.
 *
 * beginMeasurement() must put every metric metrics() reports back to
 * zero — NVM traffic and energy, cache counters (the LLC miss ratio
 * used to count warmup accesses), the latency histograms and the epoch
 * ring. The strongest form of the property: a system in steady state
 * running two back-to-back *identical* measurement phases must report
 * *identical* metrics, field for field — any counter that leaks across
 * beginMeasurement() makes the second phase read differently.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "sim/system.hh"

namespace hoopnvm
{
namespace
{

SystemConfig
smallConfig()
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.homeBytes = miB(64);
    cfg.oopBytes = miB(8);
    cfg.auxBytes = miB(64) + miB(8);
    // Sample gauges often enough that a short phase collects several
    // epochs, and keep the ring small so the overwrite path runs too.
    cfg.epochSamplePeriod = nsToTicks(500);
    cfg.epochRingCapacity = 8;
    return cfg;
}

/**
 * One fixed, fully deterministic work phase: every repetition writes
 * the same values to the same addresses, so from any steady state the
 * phase leaves the system in exactly the state it found it in.
 */
void
runPhase(System &sys, Addr base, unsigned words)
{
    for (unsigned rep = 0; rep < 6; ++rep) {
        for (CoreId c = 0; c < sys.config().numCores; ++c) {
            sys.txBegin(c);
            for (unsigned i = 0; i < 48; ++i) {
                const Addr a =
                    base + ((c * 48 + i) % words) * kWordSize;
                sys.storeWord(c, a, (std::uint64_t{rep} << 8) | i);
                (void)sys.loadWord(c, a);
            }
            sys.txEnd(c);
            sys.maintenance();
        }
    }
    sys.finalize();
}

void
expectIdenticalSummary(const LatencySummary &a, const LatencySummary &b,
                       const char *which)
{
    SCOPED_TRACE(which);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.p50Ns, b.p50Ns);
    EXPECT_EQ(a.p95Ns, b.p95Ns);
    EXPECT_EQ(a.p99Ns, b.p99Ns);
    EXPECT_EQ(a.p999Ns, b.p999Ns);
    EXPECT_EQ(a.maxNs, b.maxNs);
    EXPECT_EQ(a.meanNs, b.meanNs);
}

TEST(MeasurementReset, BackToBackPhasesReportIdenticalMetrics)
{
    System sys(smallConfig(), Scheme::Native);
    const unsigned kWords = 256;
    const Addr base = sys.alloc(0, kWords * kWordSize);

    // Warm up into steady state, then measure the same phase twice.
    runPhase(sys, base, kWords);

    sys.beginMeasurement();
    runPhase(sys, base, kWords);
    const RunMetrics a = sys.metrics();

    sys.beginMeasurement();
    runPhase(sys, base, kWords);
    const RunMetrics b = sys.metrics();

    ASSERT_GT(a.transactions, 0u);
    EXPECT_EQ(a.transactions, b.transactions);
    EXPECT_EQ(a.simTicks, b.simTicks);
    EXPECT_EQ(a.txPerSecond, b.txPerSecond);
    EXPECT_EQ(a.avgCriticalPathNs, b.avgCriticalPathNs);
    EXPECT_EQ(a.nvmBytesWritten, b.nvmBytesWritten);
    EXPECT_EQ(a.nvmBytesRead, b.nvmBytesRead);
    EXPECT_EQ(a.bytesWrittenPerTx, b.bytesWrittenPerTx);
    EXPECT_EQ(a.energyPj, b.energyPj);
    EXPECT_EQ(a.llcMissRatio, b.llcMissRatio);

    expectIdenticalSummary(a.critPath, b.critPath, "critPath");
    expectIdenticalSummary(a.llcMiss, b.llcMiss, "llcMiss");
    expectIdenticalSummary(a.gcPause, b.gcPause, "gcPause");
    EXPECT_EQ(a.critPath.count, a.transactions);

    // Epoch samples: identical gauges at identical offsets from the
    // start of each phase (the absolute ticks differ by one phase).
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    ASSERT_FALSE(a.epochs.empty());
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
        SCOPED_TRACE("epoch " + std::to_string(i));
        EXPECT_EQ(a.epochs[i].at - a.epochs[0].at,
                  b.epochs[i].at - b.epochs[0].at);
        EXPECT_EQ(a.epochs[i].mappingEntries,
                  b.epochs[i].mappingEntries);
        EXPECT_EQ(a.epochs[i].structBytes, b.epochs[i].structBytes);
        EXPECT_EQ(a.epochs[i].backpressureStalls,
                  b.epochs[i].backpressureStalls);
        EXPECT_EQ(a.epochs[i].inflightWrites,
                  b.epochs[i].inflightWrites);
    }
}

TEST(MeasurementReset, MetricsAreZeroRightAfterBeginMeasurement)
{
    // HOOP exercises the controller-side histograms (GC pauses) and
    // gauges that Native never populates, so run the warmup there.
    System sys(smallConfig(), Scheme::Hoop);
    const unsigned kWords = 256;
    const Addr base = sys.alloc(0, kWords * kWordSize);
    runPhase(sys, base, kWords);

    const RunMetrics warm = sys.metrics();
    ASSERT_GT(warm.transactions, 0u);
    ASSERT_GT(warm.nvmBytesWritten, 0u);
    ASSERT_GT(warm.critPath.count, 0u);

    sys.beginMeasurement();
    const RunMetrics m = sys.metrics();
    EXPECT_EQ(m.transactions, 0u);
    EXPECT_EQ(m.simTicks, 0u);
    EXPECT_EQ(m.txPerSecond, 0.0);
    EXPECT_EQ(m.avgCriticalPathNs, 0.0);
    EXPECT_EQ(m.nvmBytesWritten, 0u);
    EXPECT_EQ(m.nvmBytesRead, 0u);
    EXPECT_EQ(m.energyPj, 0.0);
    EXPECT_EQ(m.llcMissRatio, 0.0);
    EXPECT_EQ(m.critPath.count, 0u);
    EXPECT_EQ(m.llcMiss.count, 0u);
    EXPECT_EQ(m.gcPause.count, 0u);
    EXPECT_TRUE(m.epochs.empty());
}

} // namespace
} // namespace hoopnvm
