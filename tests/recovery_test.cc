/**
 * @file
 * Tests for HOOP's multi-threaded crash recovery (§III-F): committed
 * transactions are replayed exactly, uncommitted ones discarded,
 * intra-transaction order preserved, thread counts agree, and the
 * timing model follows Fig. 11's bandwidth/thread scaling.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "hoop/hoop_controller.hh"

namespace hoopnvm
{
namespace
{

SystemConfig
recConfig()
{
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.homeBytes = miB(16);
    cfg.oopBytes = miB(4);
    cfg.oopBlockBytes = miB(1);
    cfg.auxBytes = miB(32);
    return cfg;
}

struct RecoveryFixture : ::testing::Test
{
    RecoveryFixture()
        : cfg(recConfig()), nvm(cfg.nvmCapacity(), cfg.nvm),
          ctrl(nvm, cfg)
    {
    }

    void
    store(CoreId core, Addr a, std::uint64_t v)
    {
        std::uint8_t b[8];
        std::memcpy(b, &v, 8);
        ctrl.storeWord(core, a, b, 0);
    }

    SystemConfig cfg;
    NvmDevice nvm;
    HoopController ctrl;
};

TEST_F(RecoveryFixture, ReplaysCommittedTransaction)
{
    ctrl.txBegin(0, 0);
    for (unsigned i = 0; i < 12; ++i)
        store(0, 0x1000 + 8 * i, 100 + i);
    ctrl.txEnd(0, 0);

    ctrl.crash();
    ctrl.recover(2);
    for (unsigned i = 0; i < 12; ++i)
        EXPECT_EQ(nvm.peekWord(0x1000 + 8 * i), 100u + i);
}

TEST_F(RecoveryFixture, DiscardsUncommittedTransaction)
{
    ctrl.txBegin(0, 0);
    for (unsigned i = 0; i < 12; ++i) // > 8 forces a flushed slice
        store(0, 0x2000 + 8 * i, 55 + i);
    // No txEnd: crash strikes mid-transaction.
    ctrl.crash();
    ctrl.recover(2);
    for (unsigned i = 0; i < 12; ++i)
        EXPECT_EQ(nvm.peekWord(0x2000 + 8 * i), 0u);
}

TEST_F(RecoveryFixture, LastWriteInTransactionWins)
{
    ctrl.txBegin(0, 0);
    // Write the same word 20 times; slices flush every 8 words of
    // distinct addresses, so interleave a second word to force flushes.
    for (unsigned i = 0; i < 20; ++i) {
        store(0, 0x3000, 100 + i);
        store(0, 0x3000 + 8 * ((i % 7) + 1), i);
    }
    ctrl.txEnd(0, 0);
    ctrl.crash();
    ctrl.recover(1);
    EXPECT_EQ(nvm.peekWord(0x3000), 119u);
}

TEST_F(RecoveryFixture, CommitOrderAcrossCores)
{
    // Core 0 commits first, core 1 second; both write the same word.
    // (Apps serialize such conflicts with locks; the recovery contract
    // is that the later commit wins.)
    ctrl.txBegin(0, 0);
    store(0, 0x4000, 1);
    ctrl.txEnd(0, 0);
    ctrl.txBegin(1, 0);
    store(1, 0x4000, 2);
    ctrl.txEnd(1, 0);

    ctrl.crash();
    ctrl.recover(4);
    EXPECT_EQ(nvm.peekWord(0x4000), 2u);
}

TEST_F(RecoveryFixture, ThreadCountsAgreeOnFinalState)
{
    // Build a moderate workload, snapshot recovery with 1 thread,
    // rebuild it identically and recover with 8 threads: same state.
    auto run_workload = [&](HoopController &c) {
        for (unsigned t = 0; t < 40; ++t) {
            const CoreId core = t % 4;
            c.txBegin(core, 0);
            for (unsigned i = 0; i < 10; ++i) {
                std::uint64_t v = t * 100 + i;
                std::uint8_t b[8];
                std::memcpy(b, &v, 8);
                c.storeWord(core,
                            0x8000 + 8 * ((t * 7 + i * 3) % 64), b, 0);
            }
            c.txEnd(core, 0);
        }
    };

    run_workload(ctrl);
    ctrl.crash();
    ctrl.recover(1);
    std::vector<std::uint64_t> one(64);
    for (unsigned i = 0; i < 64; ++i)
        one[i] = nvm.peekWord(0x8000 + 8 * i);

    NvmDevice nvm8(cfg.nvmCapacity(), cfg.nvm);
    HoopController ctrl8(nvm8, cfg);
    run_workload(ctrl8);
    ctrl8.crash();
    ctrl8.recover(8);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(nvm8.peekWord(0x8000 + 8 * i), one[i]) << i;
}

TEST_F(RecoveryFixture, RecoveryIsIdempotentAfterGc)
{
    // GC migrates data home, then a crash: recovery of the remaining
    // region must not corrupt the migrated state.
    ctrl.txBegin(0, 0);
    for (unsigned i = 0; i < 8; ++i)
        store(0, 0x5000 + 8 * i, 10 + i);
    ctrl.txEnd(0, 0);
    ctrl.drain(0); // GC everything home

    ctrl.txBegin(0, 0);
    store(0, 0x5000, 99);
    ctrl.txEnd(0, 0);

    ctrl.crash();
    ctrl.recover(2);
    EXPECT_EQ(nvm.peekWord(0x5000), 99u);
    for (unsigned i = 1; i < 8; ++i)
        EXPECT_EQ(nvm.peekWord(0x5000 + 8 * i), 10u + i);
}

TEST_F(RecoveryFixture, RegionClearedAfterRecovery)
{
    ctrl.txBegin(0, 0);
    store(0, 0x6000, 5);
    ctrl.txEnd(0, 0);
    ctrl.crash();
    ctrl.recover(1);
    EXPECT_EQ(ctrl.region().freeBlocks(), ctrl.region().numBlocks());
    EXPECT_EQ(ctrl.mappingTable().size(), 0u);

    // The system keeps working after recovery; ids do not repeat.
    const TxId tx = ctrl.txBegin(0, 0);
    store(0, 0x6000, 6);
    ctrl.txEnd(0, 0);
    EXPECT_TRUE(ctrl.isCommitted(tx));
    ctrl.drain(0);
    EXPECT_EQ(nvm.peekWord(0x6000), 6u);
}

TEST(GcBoundaryRecovery, ChainSpanningCollectedPrefixReplays)
{
    // A transaction whose slice chain starts in one block and commits
    // in the next, where GC collects only the first block: the commit
    // record then counts more Data slices than recovery can find, with
    // no corruption anywhere. The missing prefix is already home (GC
    // migrated it before recycling), so recovery must replay the
    // survivors rather than veto the transaction — vetoing would leave
    // it half-applied.
    SystemConfig cfg = recConfig();
    cfg.oopBlockBytes = kiB(8); // 63 slice slots per block
    NvmDevice nvm(cfg.nvmCapacity(), cfg.nvm);
    HoopController ctrl(nvm, cfg);

    auto store = [&](Addr a, std::uint64_t v) {
        std::uint8_t b[8];
        std::memcpy(b, &v, 8);
        ctrl.storeWord(0, a, b, 0);
    };

    // 31 two-slice transactions (one Data slice + one commit record)
    // fill slots 1..62 of block 0, leaving exactly one slot.
    for (unsigned t = 0; t < 31; ++t) {
        ctrl.txBegin(0, 0);
        for (unsigned i = 0; i < 8; ++i)
            store(0x1000 + 8 * (t * 8 + i), 1000 + t * 8 + i);
        ctrl.txEnd(0, 0);
    }
    // The spanning transaction: its first Data slice takes block 0's
    // last slot (sealing it Full), its second Data slice and commit
    // record land in block 1.
    ctrl.txBegin(0, 0);
    for (unsigned i = 0; i < 16; ++i)
        store(0x8000 + 8 * i, 7000 + i);
    ctrl.txEnd(0, 0);

    // GC collects exactly the all-committed Full prefix: block 0.
    ctrl.gc().run(0);
    ASSERT_EQ(ctrl.region().block(0).state, BlockState::Unused);
    ASSERT_NE(ctrl.region().block(1).state, BlockState::Unused);

    ctrl.crash();
    ctrl.recover(2);
    const RecoveryResult &r = ctrl.lastRecovery();
    EXPECT_EQ(r.incompleteTxVetoed, 0u);
    EXPECT_EQ(r.gcTrimmedTxReplayed, 1u);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(nvm.peekWord(0x8000 + 8 * i), 7000u + i) << i;
    for (unsigned t = 0; t < 31; ++t) {
        for (unsigned i = 0; i < 8; ++i) {
            EXPECT_EQ(nvm.peekWord(0x1000 + 8 * (t * 8 + i)),
                      1000u + t * 8 + i);
        }
    }
}

TEST_F(RecoveryFixture, TimingScalesWithBandwidthAndThreads)
{
    // Populate a sizeable OOP footprint.
    for (unsigned t = 0; t < 200; ++t) {
        ctrl.txBegin(0, 0);
        for (unsigned i = 0; i < 16; ++i)
            store(0, 0x10000 + 8 * ((t * 16 + i) % 4096), t + i);
        ctrl.txEnd(0, 0);
    }

    // More threads must not slow recovery down (CPU phase shrinks).
    NvmDevice nvm_b(cfg.nvmCapacity(), cfg.nvm);
    HoopController ctrl_b(nvm_b, cfg);
    for (unsigned t = 0; t < 200; ++t) {
        ctrl_b.txBegin(0, 0);
        for (unsigned i = 0; i < 16; ++i) {
            std::uint64_t v = t + i;
            std::uint8_t b[8];
            std::memcpy(b, &v, 8);
            ctrl_b.storeWord(0, 0x10000 + 8 * ((t * 16 + i) % 4096), b,
                             0);
        }
        ctrl_b.txEnd(0, 0);
    }

    ctrl.crash();
    const Tick t1 = ctrl.recover(1);
    ctrl_b.crash();
    const Tick t16 = ctrl_b.recover(16);
    EXPECT_LE(t16, t1);
}

} // namespace
} // namespace hoopnvm
