/**
 * @file
 * Unit tests for the baseline log substrate: entry codec, ring
 * append/truncate, and the durable-state-only post-crash scan.
 */

#include <gtest/gtest.h>

#include <vector>

#include "baselines/log_region.hh"

namespace hoopnvm
{
namespace
{

struct LogFixture : ::testing::Test
{
    LogFixture()
        : nvm(miB(8), NvmTiming{}),
          log(nvm, 0, kiB(64), "test_log")
    {
    }

    LogEntry
    dataEntry(TxId tx, Addr line, std::uint64_t w0)
    {
        LogEntry e;
        e.type = LogEntryType::RedoData;
        e.txId = tx;
        e.line = line;
        e.mask = 0x01;
        e.words[0] = w0;
        return e;
    }

    NvmDevice nvm;
    LogRegion log;
};

TEST_F(LogFixture, EntryCodecRoundTrip)
{
    LogEntry e;
    e.type = LogEntryType::UndoImage;
    e.txId = 77;
    e.commitId = 88;
    e.line = 0x1000;
    e.mask = 0xa5;
    e.count = 3;
    e.seq = 123;
    for (unsigned i = 0; i < 8; ++i)
        e.words[i] = i * 1111;
    std::uint8_t buf[LogEntry::kEntryBytes];
    e.encode(buf);
    const LogEntry d = LogEntry::decode(buf);
    EXPECT_EQ(d.type, LogEntryType::UndoImage);
    EXPECT_EQ(d.txId, 77u);
    EXPECT_EQ(d.commitId, 88u);
    EXPECT_EQ(d.line, 0x1000u);
    EXPECT_EQ(d.mask, 0xa5);
    EXPECT_EQ(d.count, 3);
    EXPECT_EQ(d.seq, 123u);
    EXPECT_EQ(d.words[7], 7u * 1111);
}

TEST_F(LogFixture, AppendAndScan)
{
    for (int i = 0; i < 5; ++i)
        log.append(0, dataEntry(1, 64 * i, i));
    EXPECT_EQ(log.size(), 5u);

    std::vector<std::uint64_t> seen;
    log.scan([&](const LogEntry &e) { seen.push_back(e.words[0]); });
    ASSERT_EQ(seen.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(seen[i], static_cast<std::uint64_t>(i));
}

TEST_F(LogFixture, TruncateHidesOldEntries)
{
    for (int i = 0; i < 6; ++i)
        log.append(0, dataEntry(1, 0, i));
    log.truncate(0, 4);
    EXPECT_EQ(log.size(), 2u);
    std::vector<std::uint64_t> seen;
    log.scan([&](const LogEntry &e) { seen.push_back(e.words[0]); });
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], 4u);
    EXPECT_EQ(seen[1], 5u);
}

TEST_F(LogFixture, ScanSurvivesWrapAround)
{
    const std::uint64_t cap = log.capacity();
    // Fill, truncate half, and append past the wrap point.
    for (std::uint64_t i = 0; i < cap; ++i)
        log.append(0, dataEntry(1, 0, i));
    log.truncate(0, cap / 2 + 2);
    for (std::uint64_t i = 0; i < cap / 2; ++i)
        log.append(0, dataEntry(2, 0, 1000 + i));

    std::uint64_t count = 0, first = ~0ull;
    log.scan([&](const LogEntry &e) {
        if (count == 0)
            first = e.words[0];
        ++count;
    });
    EXPECT_EQ(count, log.size());
    EXPECT_EQ(first, cap / 2 + 2); // oldest live entry
}

TEST_F(LogFixture, ScanIgnoresStaleWrappedEntries)
{
    // Old entries that were truncated but not overwritten must not
    // resurface in a post-crash scan.
    for (int i = 0; i < 8; ++i)
        log.append(0, dataEntry(1, 0, i));
    log.truncate(0, 8);
    std::uint64_t count = 0;
    log.scan([&](const LogEntry &) { ++count; });
    EXPECT_EQ(count, 0u);
}

TEST_F(LogFixture, ClearEmptiesLog)
{
    for (int i = 0; i < 3; ++i)
        log.append(0, dataEntry(1, 0, i));
    log.clear(0);
    EXPECT_EQ(log.size(), 0u);
    std::uint64_t count = 0;
    log.scan([&](const LogEntry &) { ++count; });
    EXPECT_EQ(count, 0u);
}

TEST_F(LogFixture, AppendsCountTraffic)
{
    const std::uint64_t before = nvm.bytesWritten();
    log.append(0, dataEntry(1, 0, 0));
    EXPECT_EQ(nvm.bytesWritten() - before, LogEntry::kEntryBytes);
}

} // namespace
} // namespace hoopnvm
