/**
 * @file
 * Unit tests for the set-associative cache: hit/miss behaviour, LRU
 * replacement, dirty/persistent/word-mask state, and invalidation.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "mem/cache.hh"

namespace hoopnvm
{
namespace
{

std::array<std::uint8_t, kCacheLineSize>
lineData(std::uint8_t fill)
{
    std::array<std::uint8_t, kCacheLineSize> d;
    d.fill(fill);
    return d;
}

TEST(Cache, MissThenHit)
{
    Cache c("t", kiB(4), 4, nsToTicks(2));
    EXPECT_FALSE(c.probe(0));
    auto d = lineData(1);
    c.insert(0, d.data(), false, false, 0, kInvalidTxId);
    CacheLine l = c.probe(0);
    ASSERT_TRUE(l);
    EXPECT_EQ(l.data()[0], 1);
    EXPECT_EQ(c.stats().value("hits"), 1u);
    EXPECT_EQ(c.stats().value("misses"), 1u);
}

TEST(Cache, GeometryChecks)
{
    Cache c("t", kiB(32), 4, 0);
    EXPECT_EQ(c.numSets(), 32u * 1024 / (4 * 64));
    EXPECT_EQ(c.associativity(), 4u);
}

TEST(Cache, LruEvictsOldest)
{
    // Single-set cache: capacity = 2 lines.
    Cache c("t", 128, 2, 0);
    auto d = lineData(0);
    c.insert(0, d.data(), false, false, 0, kInvalidTxId);
    c.insert(64, d.data(), false, false, 0, kInvalidTxId);
    c.probe(0); // touch 0 so 64 is LRU
    CacheVictim v =
        c.insert(128, d.data(), false, false, 0, kInvalidTxId);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, 64u);
    EXPECT_TRUE(c.probe(0));
    EXPECT_TRUE(c.probe(128));
    EXPECT_FALSE(c.probe(64));
}

TEST(Cache, VictimCarriesState)
{
    Cache c("t", 128, 2, 0);
    auto d = lineData(7);
    c.insert(0, d.data(), true, true, 3, 99, 0x0f);
    c.insert(64, d.data(), false, false, 0, kInvalidTxId);
    c.probe(64);
    CacheVictim v =
        c.insert(128, d.data(), false, false, 0, kInvalidTxId);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, 0u);
    EXPECT_TRUE(v.dirty);
    EXPECT_TRUE(v.persistent);
    EXPECT_EQ(v.lastWriter, 3u);
    EXPECT_EQ(v.txId, 99u);
    EXPECT_EQ(v.wordMask, 0x0f);
    EXPECT_EQ(v.data[0], 7);
}

TEST(Cache, ReinsertMergesFlags)
{
    Cache c("t", kiB(4), 4, 0);
    auto d = lineData(1);
    c.insert(0, d.data(), true, false, 1, 5, 0x01);
    auto d2 = lineData(2);
    c.insert(0, d2.data(), false, true, 2, 6, 0x02);
    CacheLine l = c.probe(0);
    ASSERT_TRUE(l);
    EXPECT_TRUE(l.dirty());      // sticky
    EXPECT_TRUE(l.persistent()); // sticky
    EXPECT_EQ(l.wordMask(), 0x03);
    EXPECT_EQ(l.data()[0], 2); // newest data wins
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c("t", kiB(4), 4, 0);
    auto d = lineData(1);
    c.insert(0, d.data(), true, true, 0, 1, 0xff);
    c.invalidate(0);
    EXPECT_FALSE(c.probe(0));
    c.invalidate(64); // no-op on absent lines
}

TEST(Cache, InvalidateAll)
{
    Cache c("t", kiB(4), 4, 0);
    auto d = lineData(1);
    for (Addr a = 0; a < kiB(2); a += kCacheLineSize)
        c.insert(a, d.data(), true, false, 0, kInvalidTxId);
    c.invalidateAll();
    for (Addr a = 0; a < kiB(2); a += kCacheLineSize)
        EXPECT_FALSE(c.peekLine(a));
}

TEST(Cache, PeekDoesNotTouchLru)
{
    Cache c("t", 128, 2, 0);
    auto d = lineData(0);
    c.insert(0, d.data(), false, false, 0, kInvalidTxId);
    c.insert(64, d.data(), false, false, 0, kInvalidTxId);
    // peek must not refresh line 0's LRU position.
    EXPECT_TRUE(c.peekLine(0));
    CacheVictim v =
        c.insert(128, d.data(), false, false, 0, kInvalidTxId);
    EXPECT_EQ(v.addr, 0u);
}

TEST(Cache, ForEachLineVisitsValidOnly)
{
    Cache c("t", kiB(4), 4, 0);
    auto d = lineData(1);
    c.insert(0, d.data(), true, false, 0, kInvalidTxId);
    c.insert(64, d.data(), false, false, 0, kInvalidTxId);
    unsigned count = 0, dirty = 0;
    c.forEachLine([&](CacheLine &l) {
        ++count;
        dirty += l.dirty() ? 1 : 0;
    });
    EXPECT_EQ(count, 2u);
    EXPECT_EQ(dirty, 1u);
}

} // namespace
} // namespace hoopnvm
