/**
 * @file
 * Tests for the mixed-role interference suite (PR 10 tentpole).
 *
 * Covers the role-assignment contract (workloads/interference_wl.hh),
 * the determinism acceptance property — bit-identical RunMetrics,
 * including the per-role block and the NVM channel gauges, whether
 * the cells run `-j1` or across a CellRunner pool — and the
 * miss-overlap knob: `missOverlapDepth = 1` must reproduce the
 * legacy single-outstanding-miss engine exactly (it is the same code
 * path), while a deeper window must actually change the timing.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "workloads/interference_wl.hh"

namespace hoopnvm
{
namespace
{

using bench::Cell;
using bench::CellRunner;

TEST(InterferenceRoles, NamesMatchTheStatsContract)
{
    // system.cc's metrics() scans histograms named
    // role_<name>_ticks for exactly these strings; a rename on either
    // side silently drops a role from the JSON.
    EXPECT_STREQ(interferenceRoleName(InterferenceRole::LogAppend),
                 "log_append");
    EXPECT_STREQ(interferenceRoleName(InterferenceRole::PointRead),
                 "point_read");
    EXPECT_STREQ(interferenceRoleName(InterferenceRole::SeqScan),
                 "seq_scan");
    EXPECT_STREQ(interferenceRoleName(InterferenceRole::GcPressure),
                 "gc_pressure");
}

TEST(InterferenceRoles, MixZeroIsAllWriters)
{
    for (CoreId c = 0; c < 8; ++c) {
        const InterferenceRole r = interferenceRoleForCore(c, 8, 0.0);
        EXPECT_EQ(r, (c % 2 == 0) ? InterferenceRole::LogAppend
                                  : InterferenceRole::GcPressure)
            << "core " << c;
    }
}

TEST(InterferenceRoles, MixOneIsAllReaders)
{
    for (CoreId c = 0; c < 8; ++c) {
        const InterferenceRole r = interferenceRoleForCore(c, 8, 1.0);
        EXPECT_EQ(r, (c % 2 == 0) ? InterferenceRole::PointRead
                                  : InterferenceRole::SeqScan)
            << "core " << c;
    }
}

TEST(InterferenceRoles, HalfMixSplitsEightCoresEvenly)
{
    // Reader cores come first; each half alternates its two roles so
    // every role appears even on small machines.
    const InterferenceRole expect[8] = {
        InterferenceRole::PointRead, InterferenceRole::SeqScan,
        InterferenceRole::PointRead, InterferenceRole::SeqScan,
        InterferenceRole::LogAppend, InterferenceRole::GcPressure,
        InterferenceRole::LogAppend, InterferenceRole::GcPressure};
    for (CoreId c = 0; c < 8; ++c)
        EXPECT_EQ(interferenceRoleForCore(c, 8, 0.5), expect[c])
            << "core " << c;
}

TEST(InterferenceRoles, SingleCoreFallsBackToWriter)
{
    // lround(0.4 * 1) = 0 readers: the lone core must still generate
    // persistence traffic, not leave the channel idle.
    EXPECT_EQ(interferenceRoleForCore(0, 1, 0.4),
              InterferenceRole::LogAppend);
    EXPECT_EQ(interferenceRoleForCore(0, 1, 1.0),
              InterferenceRole::PointRead);
}

// ---------------------------------------------------------------------
// Determinism: the acceptance property of the whole suite.
// ---------------------------------------------------------------------

struct SweepPoint
{
    Scheme scheme;
    double saturation;
    double readMix;
};

std::vector<SweepPoint>
sweep()
{
    // hoop + one log-based baseline x a saturation and a mix edge —
    // small enough for test runtime, wide enough to hit all roles and
    // the pacing path (saturation < 1).
    return {{Scheme::Hoop, 1.0, 0.5},
            {Scheme::Hoop, 0.5, 0.75},
            {Scheme::OptRedo, 1.0, 0.5},
            {Scheme::OptRedo, 0.5, 0.25}};
}

std::vector<Cell>
runSweep(unsigned jobs, unsigned overlap_depth = 1)
{
    SystemConfig cfg = bench::paperConfig();
    cfg.missOverlapDepth = overlap_depth;
    WorkloadParams params = bench::paperParams(64);
    params.scale = 256;

    const auto pts = sweep();
    std::vector<Cell> out(pts.size());
    CellRunner runner(jobs);
    for (std::size_t i = 0; i < pts.size(); ++i) {
        WorkloadParams p = params;
        p.interferenceSaturation = pts[i].saturation;
        p.interferenceReadMix = pts[i].readMix;
        bench::scheduleCell(runner, "cell" + std::to_string(i),
                            pts[i].scheme, "interference", p, cfg,
                            /*tx_per_core=*/20, &out[i]);
    }
    runner.run();
    return out;
}

void
expectIdenticalSummary(const LatencySummary &a, const LatencySummary &b,
                       const std::string &which)
{
    SCOPED_TRACE(which);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.p50Ns, b.p50Ns);
    EXPECT_EQ(a.p95Ns, b.p95Ns);
    EXPECT_EQ(a.p99Ns, b.p99Ns);
    EXPECT_EQ(a.p999Ns, b.p999Ns);
    EXPECT_EQ(a.maxNs, b.maxNs);
    EXPECT_EQ(a.meanNs, b.meanNs);
    EXPECT_EQ(a.p50Saturated, b.p50Saturated);
    EXPECT_EQ(a.p95Saturated, b.p95Saturated);
    EXPECT_EQ(a.p99Saturated, b.p99Saturated);
    EXPECT_EQ(a.p999Saturated, b.p999Saturated);
}

void
expectIdenticalMetrics(const RunMetrics &a, const RunMetrics &b)
{
    EXPECT_EQ(a.transactions, b.transactions);
    EXPECT_EQ(a.simTicks, b.simTicks);
    EXPECT_EQ(a.txPerSecond, b.txPerSecond);
    EXPECT_EQ(a.avgCriticalPathNs, b.avgCriticalPathNs);
    EXPECT_EQ(a.nvmBytesWritten, b.nvmBytesWritten);
    EXPECT_EQ(a.nvmBytesRead, b.nvmBytesRead);
    EXPECT_EQ(a.energyPj, b.energyPj);
    expectIdenticalSummary(a.critPath, b.critPath, "critPath");
    // The new channel gauges must be as deterministic as the rest.
    EXPECT_EQ(a.channelBusyTicks, b.channelBusyTicks);
    EXPECT_EQ(a.channelWaitTicks, b.channelWaitTicks);
    EXPECT_EQ(a.drainFences, b.drainFences);
    EXPECT_EQ(a.channelUtilization, b.channelUtilization);
    // And so must the per-role block, order included.
    ASSERT_EQ(a.roles.size(), b.roles.size());
    for (std::size_t i = 0; i < a.roles.size(); ++i) {
        EXPECT_EQ(a.roles[i].name, b.roles[i].name);
        EXPECT_EQ(a.roles[i].transactions, b.roles[i].transactions);
        EXPECT_EQ(a.roles[i].txPerSecond, b.roles[i].txPerSecond);
        expectIdenticalSummary(a.roles[i].latency, b.roles[i].latency,
                               "role " + a.roles[i].name);
    }
}

TEST(Interference, ParallelMatchesSerialExactly)
{
    const std::vector<Cell> serial = runSweep(1);
    const std::vector<Cell> parallel = runSweep(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        EXPECT_TRUE(serial[i].verified);
        EXPECT_TRUE(parallel[i].verified);
        expectIdenticalMetrics(serial[i].metrics, parallel[i].metrics);
    }
}

TEST(Interference, RolesBlockCoversEveryCoreOnce)
{
    const std::vector<Cell> cells = runSweep(1);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        const RunMetrics &m = cells[i].metrics;
        // A 50/50 or 25/75 mix on 8 cores populates all four roles.
        ASSERT_EQ(m.roles.size(), 4u);
        std::uint64_t sum = 0;
        for (const RoleMetrics &r : m.roles) {
            EXPECT_GT(r.transactions, 0u) << r.name;
            EXPECT_GT(r.latency.count, 0u) << r.name;
            EXPECT_GT(r.txPerSecond, 0.0) << r.name;
            sum += r.transactions;
        }
        // Every committed transaction lands in exactly one role.
        EXPECT_EQ(sum, m.transactions);
    }
}

TEST(Interference, ChannelGaugesArePopulated)
{
    const std::vector<Cell> cells = runSweep(1);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        const RunMetrics &m = cells[i].metrics;
        EXPECT_GT(m.channelBusyTicks, 0u);
        EXPECT_GT(m.channelUtilization, 0.0);
        EXPECT_LE(m.channelUtilization, 1.0);
    }
}

// ---------------------------------------------------------------------
// The miss-overlap knob.
// ---------------------------------------------------------------------

TEST(MissOverlap, DepthOneIsTheDefaultEngineExactly)
{
    // Differential acceptance: a config that spells out
    // missOverlapDepth = 1 takes the identical single-outstanding-miss
    // code path as the default, so every metric is bit-identical.
    const std::vector<Cell> dflt = runSweep(1);
    const std::vector<Cell> explicit1 = runSweep(1, /*depth=*/1);
    ASSERT_EQ(dflt.size(), explicit1.size());
    for (std::size_t i = 0; i < dflt.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectIdenticalMetrics(dflt[i].metrics, explicit1[i].metrics);
    }
}

TEST(MissOverlap, DeeperWindowChangesTimingAndStaysCorrect)
{
    // depth = 4 lets a core keep up to four line fills in flight, so
    // read-heavy cells must finish in fewer simulated ticks; the
    // workload's own verify() (run inside runCell) proves the
    // reordering never changed visible memory state.
    const std::vector<Cell> base = runSweep(1, /*depth=*/1);
    const std::vector<Cell> deep = runSweep(1, /*depth=*/4);
    ASSERT_EQ(base.size(), deep.size());
    bool any_differs = false;
    for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_TRUE(deep[i].verified);
        if (base[i].metrics.simTicks != deep[i].metrics.simTicks)
            any_differs = true;
    }
    EXPECT_TRUE(any_differs)
        << "missOverlapDepth=4 left every cell's timing untouched — "
           "the knob is dead";
}

TEST(MissOverlap, DeeperWindowIsDeterministicToo)
{
    const std::vector<Cell> serial = runSweep(1, /*depth=*/4);
    const std::vector<Cell> parallel = runSweep(4, /*depth=*/4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectIdenticalMetrics(serial[i].metrics, parallel[i].metrics);
    }
}

} // namespace
} // namespace hoopnvm
