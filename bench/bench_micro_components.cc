/**
 * @file
 * google-benchmark microbenchmarks of the hot simulator components:
 * slice encode/decode, mapping table, eviction buffer, skip list, and
 * the raw cache probe path. These guard the simulator's own
 * performance (host-side), not simulated time.
 *
 * The custom main wraps google-benchmark with a capturing reporter so
 * the per-benchmark timings also land in BENCH_micro_components.json
 * alongside the other benches' machine-readable reports.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

#include "baselines/skiplist.hh"
#include "common/rng.hh"
#include "hoop/eviction_buffer.hh"
#include "hoop/mapping_table.hh"
#include "hoop/memory_slice.hh"
#include "mem/cache.hh"

using namespace hoopnvm;

namespace
{

void
BM_SliceEncodeDecode(benchmark::State &state)
{
    MemorySlice s;
    s.type = SliceType::Data;
    s.count = 8;
    s.txId = 1;
    s.seq = 2;
    for (unsigned i = 0; i < 8; ++i) {
        s.words[i] = i;
        s.homeAddrs[i] = 8 * i;
    }
    std::uint8_t buf[MemorySlice::kSliceBytes];
    for (auto _ : state) {
        s.encode(buf);
        benchmark::DoNotOptimize(MemorySlice::decode(buf));
    }
}
BENCHMARK(BM_SliceEncodeDecode);

void
BM_MappingTableLookup(benchmark::State &state)
{
    MappingTable t(miB(2));
    Rng rng(1);
    for (int i = 0; i < 100000; ++i)
        t.insert(rng.nextBounded(1 << 24) * 64, i);
    Rng probe(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            t.lookup(probe.nextBounded(1 << 24) * 64));
    }
}
BENCHMARK(BM_MappingTableLookup);

void
BM_EvictionBufferPutGet(benchmark::State &state)
{
    EvictionBuffer eb(kiB(128));
    std::uint8_t line[kCacheLineSize] = {};
    std::uint8_t out[kCacheLineSize];
    Rng rng(3);
    for (auto _ : state) {
        const Addr a = rng.nextBounded(4096) * 64;
        eb.put(a, line);
        benchmark::DoNotOptimize(eb.get(a, out));
    }
}
BENCHMARK(BM_EvictionBufferPutGet);

void
BM_SkipListFind(benchmark::State &state)
{
    SkipList s;
    for (std::uint64_t k = 0; k < 100000; ++k)
        s.insert(k * 64, k);
    Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(s.find(rng.nextBounded(100000) * 64));
}
BENCHMARK(BM_SkipListFind);

void
BM_CacheProbe(benchmark::State &state)
{
    Cache c("bm", miB(2), 16, 0);
    std::uint8_t line[kCacheLineSize] = {};
    Rng fill(5);
    for (int i = 0; i < 20000; ++i) {
        c.insert(fill.nextBounded(1 << 20) * 64, line, false, false, 0,
                 kInvalidTxId);
    }
    Rng rng(6);
    for (auto _ : state)
        benchmark::DoNotOptimize(c.probe(rng.nextBounded(1 << 20) * 64));
}
BENCHMARK(BM_CacheProbe);

/** Console reporter that also captures per-benchmark timings. */
class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    struct Item
    {
        std::string name;
        double realNsPerIter;
        double cpuNsPerIter;
    };
    std::vector<Item> items;

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &r : runs) {
            if (r.error_occurred)
                continue;
            items.push_back({r.benchmark_name(),
                             r.GetAdjustedRealTime(),
                             r.GetAdjustedCPUTime()});
        }
        ConsoleReporter::ReportRuns(runs);
    }
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    CapturingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);

    hoopnvm::bench::BenchReport report(
        "micro_components", hoopnvm::bench::paperConfig(), 0);
    for (const auto &item : reporter.items) {
        report.addCell(item.name, item.realNsPerIter * 1e-9, nullptr);
        report.cellValue(item.name, "real_ns_per_iter",
                         item.realNsPerIter);
        report.cellValue(item.name, "cpu_ns_per_iter",
                         item.cpuNsPerIter);
    }
    report.write();
    return 0;
}
