/**
 * @file
 * Reproduces paper Figure 12: YCSB throughput (1 KB values, 80%
 * updates) under HOOP as (a) NVM read latency sweeps 50..250 ns with
 * write latency fixed at 150 ns, and (b) write latency sweeps
 * 150..350 ns with read latency fixed at 50 ns.
 *
 * Expected shape (paper §IV-H): throughput decreases monotonically as
 * either latency grows, since both the load/store path and GC slow
 * down.
 */

#include "bench_common.hh"

using namespace hoopnvm;
using namespace hoopnvm::bench;

int
main(int argc, char **argv)
{
    SystemConfig cfg = paperConfig();
    banner("Figure 12 - YCSB throughput vs NVM latency (HOOP)", cfg);

    const WorkloadParams params = paperParams(1024);
    const std::uint64_t tx_per_core = benchTxPerCore();

    const double read_ns[] = {50, 100, 150, 200, 250};
    const double write_ns[] = {150, 200, 250, 300, 350};
    std::vector<Cell> read_cells(std::size(read_ns));
    std::vector<Cell> write_cells(std::size(write_ns));

    CellRunner runner(benchJobs(argc, argv));
    for (std::size_t i = 0; i < std::size(read_ns); ++i) {
        SystemConfig c = cfg;
        c.nvm.readLatency = nsToTicks(read_ns[i]);
        scheduleCell(runner,
                     "read/" + TablePrinter::num(read_ns[i], 0) + "ns",
                     Scheme::Hoop, "ycsb", params, c, tx_per_core,
                     &read_cells[i]);
    }
    for (std::size_t i = 0; i < std::size(write_ns); ++i) {
        SystemConfig c = cfg;
        c.nvm.writeLatency = nsToTicks(write_ns[i]);
        // Slower cells also hold the bank longer: scale the write
        // occupancy with the array write time.
        c.nvm.writeBusy = nsToTicks(write_ns[i] / 7.5);
        scheduleCell(runner,
                     "write/" + TablePrinter::num(write_ns[i], 0) +
                         "ns",
                     Scheme::Hoop, "ycsb", params, c, tx_per_core,
                     &write_cells[i]);
    }
    runner.run();

    TablePrinter reads("Fig. 12a: read latency sweep "
                       "(write fixed at 150 ns)");
    reads.setHeader({"read latency", "tx/s (M)", "normalized"});
    double base = 0.0;
    for (std::size_t i = 0; i < std::size(read_ns); ++i) {
        const Cell &cell = read_cells[i];
        // lint: float-eq-ok (0.0 is a first-iteration "unset" sentinel, never a computed value)
        if (base == 0.0)
            base = cell.metrics.txPerSecond;
        reads.addRow({TablePrinter::num(read_ns[i], 0) + "ns",
                      TablePrinter::num(
                          cell.metrics.txPerSecond / 1e6, 3),
                      TablePrinter::num(
                          cell.metrics.txPerSecond / base, 2)});
    }
    reads.print();

    TablePrinter writes("Fig. 12b: write latency sweep "
                        "(read fixed at 50 ns)");
    writes.setHeader({"write latency", "tx/s (M)", "normalized"});
    base = 0.0;
    for (std::size_t i = 0; i < std::size(write_ns); ++i) {
        const Cell &cell = write_cells[i];
        // lint: float-eq-ok (0.0 is a first-iteration "unset" sentinel, never a computed value)
        if (base == 0.0)
            base = cell.metrics.txPerSecond;
        writes.addRow({TablePrinter::num(write_ns[i], 0) + "ns",
                       TablePrinter::num(
                           cell.metrics.txPerSecond / 1e6, 3),
                       TablePrinter::num(
                           cell.metrics.txPerSecond / base, 2)});
    }
    writes.print();

    BenchReport report("fig12_nvm_latency", cfg, tx_per_core);
    report.addCells(runner);
    report.write();
    return 0;
}
