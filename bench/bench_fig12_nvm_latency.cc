/**
 * @file
 * Reproduces paper Figure 12: YCSB throughput (1 KB values, 80%
 * updates) under HOOP as (a) NVM read latency sweeps 50..250 ns with
 * write latency fixed at 150 ns, and (b) write latency sweeps
 * 150..350 ns with read latency fixed at 50 ns.
 *
 * Expected shape (paper §IV-H): throughput decreases monotonically as
 * either latency grows, since both the load/store path and GC slow
 * down.
 */

#include "bench_common.hh"

using namespace hoopnvm;
using namespace hoopnvm::bench;

int
main()
{
    SystemConfig cfg = paperConfig();
    banner("Figure 12 - YCSB throughput vs NVM latency (HOOP)", cfg);

    const WorkloadParams params = paperParams(1024);

    TablePrinter reads("Fig. 12a: read latency sweep "
                       "(write fixed at 150 ns)");
    reads.setHeader({"read latency", "tx/s (M)", "normalized"});
    double base = 0.0;
    for (double ns : {50, 100, 150, 200, 250}) {
        SystemConfig c = cfg;
        c.nvm.readLatency = nsToTicks(ns);
        const Cell cell = runCell(Scheme::Hoop, "ycsb", params, c);
        if (base == 0.0)
            base = cell.metrics.txPerSecond;
        reads.addRow({TablePrinter::num(ns, 0) + "ns",
                      TablePrinter::num(
                          cell.metrics.txPerSecond / 1e6, 3),
                      TablePrinter::num(
                          cell.metrics.txPerSecond / base, 2)});
    }
    reads.print();

    TablePrinter writes("Fig. 12b: write latency sweep "
                        "(read fixed at 50 ns)");
    writes.setHeader({"write latency", "tx/s (M)", "normalized"});
    base = 0.0;
    for (double ns : {150, 200, 250, 300, 350}) {
        SystemConfig c = cfg;
        c.nvm.writeLatency = nsToTicks(ns);
        // Slower cells also hold the bank longer: scale the write
        // occupancy with the array write time.
        c.nvm.writeBusy = nsToTicks(ns / 7.5);
        const Cell cell = runCell(Scheme::Hoop, "ycsb", params, c);
        if (base == 0.0)
            base = cell.metrics.txPerSecond;
        writes.addRow({TablePrinter::num(ns, 0) + "ns",
                       TablePrinter::num(
                           cell.metrics.txPerSecond / 1e6, 3),
                       TablePrinter::num(
                           cell.metrics.txPerSecond / base, 2)});
    }
    writes.print();
    return 0;
}
