/**
 * @file
 * Parallel cell runner and machine-readable bench reports.
 *
 * Implementation notes on determinism: run() only decides *when* each
 * cell executes, never what it computes. Every cell builds its own
 * System from a by-value SystemConfig (per-cell seed included) and
 * touches only its own result slot, so any job count produces the same
 * per-cell RunMetrics and the same printed tables. All harness output
 * goes to stderr / the JSON file; stdout stays byte-identical to a
 * serial run.
 */

#include "bench_common.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/host_profiler.hh"

namespace hoopnvm
{
namespace bench
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               // lint: nondet-api-ok (host wall-clock for bench wall-time reporting; never feeds simulated state)
               std::chrono::steady_clock::now() - t0)
        .count();
}

unsigned
envJobs()
{
    // lint: nondet-api-ok (HOOP_BENCH_JOBS picks host worker-thread count; cells stay deterministic)
    if (const char *env = std::getenv("HOOP_BENCH_JOBS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    return 0;
}

unsigned
resolveJobs(unsigned requested)
{
    if (requested >= 1)
        return requested;
    if (const unsigned env = envJobs())
        return env;
    // lint: nondet-api-ok (host parallelism default; affects scheduling only, not simulated results)
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

void
fputJsonString(std::FILE *f, const std::string &s)
{
    std::fputc('"', f);
    std::fputs(jsonEscape(s).c_str(), f);
    std::fputc('"', f);
}

void
fputKey(std::FILE *f, const char *key)
{
    // lint: raw-json-ok (keys are compile-time identifiers; runtime values go through fputJsonString)
    std::fprintf(f, "\"%s\": ", key);
}

void
fputNum(std::FILE *f, const char *key, double v)
{
    fputKey(f, key);
    std::fprintf(f, "%.17g", v);
}

void
fputNum(std::FILE *f, const char *key, std::uint64_t v)
{
    fputKey(f, key);
    std::fprintf(f, "%llu", static_cast<unsigned long long>(v));
}

void
fputSummary(std::FILE *f, const char *key, const LatencySummary &s)
{
    fputKey(f, key);
    std::fputc('{', f);
    fputNum(f, "count", s.count);
    std::fputs(", ", f);
    fputNum(f, "p50_ns", s.p50Ns);
    std::fputs(", ", f);
    fputNum(f, "p95_ns", s.p95Ns);
    std::fputs(", ", f);
    fputNum(f, "p99_ns", s.p99Ns);
    std::fputs(", ", f);
    fputNum(f, "p999_ns", s.p999Ns);
    std::fputs(", ", f);
    fputNum(f, "max_ns", s.maxNs);
    std::fputs(", ", f);
    fputNum(f, "mean_ns", s.meanNs);
    // Schema v5: saturation markers (0/1) — the matching quantile is
    // the exact max under Histogram's small-population rule, not a
    // resolved quantile.
    std::fputs(", ", f);
    fputNum(f, "p50_saturated", std::uint64_t{s.p50Saturated});
    std::fputs(", ", f);
    fputNum(f, "p95_saturated", std::uint64_t{s.p95Saturated});
    std::fputs(", ", f);
    fputNum(f, "p99_saturated", std::uint64_t{s.p99Saturated});
    std::fputs(", ", f);
    fputNum(f, "p999_saturated", std::uint64_t{s.p999Saturated});
    std::fputc('}', f);
}

void
fputRoles(std::FILE *f, const std::vector<RoleMetrics> &roles)
{
    // Schema v5: per-role interference slices. Always emitted; empty
    // for every workload outside the interference suite so the schema
    // stays uniform across benches.
    fputKey(f, "roles");
    std::fputc('[', f);
    bool first = true;
    for (const RoleMetrics &r : roles) {
        std::fputs(first ? "{" : ", {", f);
        first = false;
        fputKey(f, "role");
        fputJsonString(f, r.name);
        std::fputs(", ", f);
        fputNum(f, "transactions", r.transactions);
        std::fputs(", ", f);
        fputNum(f, "tx_per_second", r.txPerSecond);
        std::fputs(", ", f);
        fputSummary(f, "latency", r.latency);
        std::fputc('}', f);
    }
    std::fputc(']', f);
}

void
fputEpochs(std::FILE *f, const std::vector<EpochSample> &epochs)
{
    fputKey(f, "epochs");
    std::fputc('[', f);
    bool first = true;
    for (const EpochSample &e : epochs) {
        std::fputs(first ? "{" : ", {", f);
        first = false;
        fputNum(f, "at_ticks", e.at);
        std::fputs(", ", f);
        fputNum(f, "mapping_entries", e.mappingEntries);
        std::fputs(", ", f);
        fputNum(f, "struct_bytes", e.structBytes);
        std::fputs(", ", f);
        fputNum(f, "backpressure_stalls", e.backpressureStalls);
        std::fputs(", ", f);
        fputNum(f, "inflight_writes", e.inflightWrites);
        std::fputs(", ", f);
        fputNum(f, "retired_units", e.retiredUnits);
        std::fputs(", ", f);
        fputNum(f, "corrected_words", e.correctedWords);
        std::fputs(", ", f);
        fputNum(f, "degraded_fraction", e.degradedFraction);
        std::fputs(", ", f);
        fputNum(f, "tx_rejected", e.txRejected);
        std::fputs(", ", f);
        fputNum(f, "client_retry_attempts", e.clientRetryAttempts);
        std::fputs(", ", f);
        fputNum(f, "client_backoff_ticks", e.clientBackoffTicks);
        std::fputs(", ", f);
        fputNum(f, "client_deadline_misses", e.clientDeadlineMisses);
        std::fputs(", ", f);
        fputNum(f, "client_shed_admissions", e.clientShedAdmissions);
        std::fputs(", ", f);
        fputNum(f, "channel_busy_ticks", e.channelBusyTicks);
        std::fputs(", ", f);
        fputNum(f, "channel_wait_ticks", e.channelWaitTicks);
        std::fputc('}', f);
    }
    std::fputc(']', f);
}

} // namespace

std::uint64_t
benchTxPerCore()
{
    // lint: nondet-api-ok (HOOP_BENCH_TX scales the run length explicitly; the value is recorded in the report)
    if (const char *env = std::getenv("HOOP_BENCH_TX")) {
        const long long v = std::strtoll(env, nullptr, 10);
        if (v >= 1)
            return static_cast<std::uint64_t>(v);
    }
    return kTxPerCore;
}

unsigned
benchJobs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--profile") == 0) {
            HostProfiler::enable();
            continue;
        }
        if (std::strncmp(argv[i], "-j", 2) != 0)
            continue;
        const char *num = argv[i] + 2;
        if (*num == '\0' && i + 1 < argc)
            num = argv[++i];
        const long v = std::strtol(num, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    return 0;
}

CellRunner::CellRunner(unsigned jobs) : jobs_(resolveJobs(jobs)) {}

std::size_t
CellRunner::add(std::string label, std::function<void()> task)
{
    slots.push_back(Slot{std::move(label), std::move(task), 0.0,
                         nullptr});
    return slots.size() - 1;
}

void
CellRunner::noteMetrics(std::size_t idx, const RunMetrics *m)
{
    slots[idx].metrics = m;
}

double
CellRunner::run()
{
    // lint: nondet-api-ok (host wall-clock for bench wall-time reporting; never feeds simulated state)
    const auto t0 = std::chrono::steady_clock::now();
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, slots.size()));

    auto worker = [this](std::atomic<std::size_t> &next) {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= slots.size())
                return;
            // lint: nondet-api-ok (host wall-clock for per-cell wall-time reporting; never feeds simulated state)
            const auto c0 = std::chrono::steady_clock::now();
            slots[i].task();
            slots[i].seconds = secondsSince(c0);
        }
    };

    std::atomic<std::size_t> next{0};
    if (workers <= 1) {
        worker(next); // -j1: inline on the calling thread, no pool
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back([&] { worker(next); });
        for (auto &t : pool)
            t.join();
    }
    totalSeconds_ += secondsSince(t0);
    return totalSeconds_;
}

BenchReport::BenchReport(std::string name, const SystemConfig &cfg,
                         std::uint64_t tx_per_core)
    : name_(std::move(name)), cfg_(cfg), txPerCore_(tx_per_core)
{
}

void
BenchReport::addCells(const CellRunner &runner)
{
    for (std::size_t i = 0; i < runner.cells(); ++i)
        addCell(runner.label(i), runner.cellSeconds(i),
                runner.metrics(i));
    jobs_ = runner.jobs();
    wallSeconds_ += runner.totalSeconds();
}

void
BenchReport::addCell(std::string label, double seconds,
                     const RunMetrics *m)
{
    CellRecord rec;
    rec.label = std::move(label);
    rec.seconds = seconds;
    if (m) {
        rec.hasMetrics = true;
        rec.metrics = *m;
    }
    cells_.push_back(std::move(rec));
}

void
BenchReport::cellValue(const std::string &label, std::string key,
                       double value)
{
    for (CellRecord &rec : cells_) {
        if (rec.label == label) {
            rec.values.emplace_back(std::move(key), value);
            return;
        }
    }
    HOOP_FATAL("BenchReport: no cell labelled '%s'", label.c_str());
}

void
BenchReport::value(std::string key, double v)
{
    values_.emplace_back(std::move(key), v);
}

void
BenchReport::write() const
{
    std::string dir = ".";
    // lint: nondet-api-ok (HOOP_BENCH_JSON_DIR selects the report output directory only)
    if (const char *env = std::getenv("HOOP_BENCH_JSON_DIR"))
        dir = env;
    const std::string path = dir + "/BENCH_" + name_ + ".json";

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
        return;
    }

    std::uint64_t sim_ticks = 0;
    for (const CellRecord &rec : cells_) {
        if (rec.hasMetrics)
            sim_ticks += rec.metrics.simTicks;
    }
    // HOOP_BENCH_DETERMINISTIC=1 zeroes every host-wall-clock field
    // (jobs, wall seconds, per-cell seconds, derived rates) so the
    // whole JSON is byte-comparable across runs and job counts — the
    // simulated content already is; the host timings are the only
    // nondeterministic bytes. CI's interference-smoke diffs -j1
    // against -jN this way.
    // lint: nondet-api-ok (HOOP_BENCH_DETERMINISTIC selects report normalization only; never feeds simulated state)
    const char *det_env = std::getenv("HOOP_BENCH_DETERMINISTIC");
    const bool deterministic =
        det_env != nullptr && det_env[0] != '\0' && det_env[0] != '0';
    const double wall = wallSeconds_ > 0.0 ? wallSeconds_ : 1e-9;
    const double cells_per_sec =
        deterministic ? 0.0 : cells_.size() / wall;
    const double ticks_per_sec = deterministic ? 0.0 : sim_ticks / wall;

    std::fputs("{\n  ", f);
    fputNum(f, "schema_version", std::uint64_t{5});
    std::fputs(",\n  ", f);
    fputKey(f, "bench");
    fputJsonString(f, name_);

    std::fputs(",\n  \"config\": {", f);
    fputNum(f, "num_cores", std::uint64_t{cfg_.numCores});
    std::fputs(", ", f);
    fputNum(f, "cpu_ghz", cfg_.cpuGhz);
    std::fputs(", ", f);
    fputNum(f, "l1_bytes", cfg_.cache.l1Size);
    std::fputs(", ", f);
    fputNum(f, "l2_bytes", cfg_.cache.l2Size);
    std::fputs(", ", f);
    fputNum(f, "llc_bytes", cfg_.cache.llcSize);
    std::fputs(", ", f);
    fputNum(f, "oop_bytes", cfg_.oopBytes);
    std::fputs(", ", f);
    fputNum(f, "oop_block_bytes", cfg_.oopBlockBytes);
    std::fputs(", ", f);
    fputNum(f, "mapping_table_bytes", cfg_.mappingTableBytes);
    std::fputs(", ", f);
    fputNum(f, "nvm_read_ns", ticksToNs(cfg_.nvm.readLatency));
    std::fputs(", ", f);
    fputNum(f, "nvm_write_ns", ticksToNs(cfg_.nvm.writeLatency));
    std::fputs(", ", f);
    fputNum(f, "tx_per_core", txPerCore_);
    std::fputs("}", f);

    std::fputs(",\n  \"host\": {", f);
    fputNum(f, "jobs", deterministic ? 0 : std::uint64_t{jobs_});
    std::fputs(", ", f);
    fputNum(f, "wall_seconds", deterministic ? 0.0 : wallSeconds_);
    std::fputs(", ", f);
    fputNum(f, "cells", std::uint64_t{cells_.size()});
    std::fputs(", ", f);
    fputNum(f, "cells_per_sec", cells_per_sec);
    std::fputs(", ", f);
    fputNum(f, "sim_ticks", sim_ticks);
    std::fputs(", ", f);
    fputNum(f, "sim_ticks_per_sec", ticks_per_sec);
    std::fputs("}", f);

    for (const auto &[key, v] : values_) {
        std::fputs(",\n  ", f);
        fputJsonString(f, key);
        std::fprintf(f, ": %.17g", v);
    }

    // Host-side per-component wall-time breakdown (--profile only, so
    // the JSON layout is unchanged for unprofiled runs).
    if (HostProfiler::enabled()) {
        std::fputs(",\n  \"host_profile\": {", f);
        for (int c = 0; c < HostProfiler::kNumComponents; ++c) {
            if (c > 0)
                std::fputs(", ", f);
            const std::string key =
                std::string(HostProfiler::name(c)) + "_seconds";
            fputNum(f, key.c_str(),
                    static_cast<double>(HostProfiler::totalNs(c)) *
                        1e-9);
        }
        std::fputs("}", f);
    }

    std::fputs(",\n  \"cells\": [", f);
    bool first_cell = true;
    for (const CellRecord &rec : cells_) {
        std::fputs(first_cell ? "\n    {" : ",\n    {", f);
        first_cell = false;
        fputKey(f, "label");
        fputJsonString(f, rec.label);
        std::fputs(", ", f);
        fputNum(f, "seconds", deterministic ? 0.0 : rec.seconds);
        if (rec.hasMetrics) {
            const RunMetrics &m = rec.metrics;
            std::fputs(",\n     \"metrics\": {", f);
            fputNum(f, "transactions", m.transactions);
            std::fputs(", ", f);
            fputNum(f, "sim_ticks", m.simTicks);
            std::fputs(", ", f);
            fputNum(f, "tx_per_second", m.txPerSecond);
            std::fputs(", ", f);
            fputNum(f, "avg_critical_path_ns", m.avgCriticalPathNs);
            std::fputs(", ", f);
            fputNum(f, "nvm_bytes_written", m.nvmBytesWritten);
            std::fputs(", ", f);
            fputNum(f, "nvm_bytes_read", m.nvmBytesRead);
            std::fputs(", ", f);
            fputNum(f, "bytes_written_per_tx", m.bytesWrittenPerTx);
            std::fputs(", ", f);
            fputNum(f, "energy_pj", m.energyPj);
            std::fputs(", ", f);
            fputNum(f, "llc_miss_ratio", m.llcMissRatio);
            std::fputs(",\n     ", f);
            fputSummary(f, "crit_path", m.critPath);
            std::fputs(",\n     ", f);
            fputSummary(f, "llc_miss_lat", m.llcMiss);
            std::fputs(",\n     ", f);
            fputSummary(f, "gc_pause", m.gcPause);
            std::fputs(",\n     ", f);
            fputSummary(f, "scrub_pause", m.scrubPause);
            std::fputs(",\n     ", f);
            fputNum(f, "ecc_corrected_words", m.eccCorrectedWords);
            std::fputs(", ", f);
            fputNum(f, "uncorrectable_reads", m.uncorrectableReads);
            std::fputs(", ", f);
            fputNum(f, "read_retries", m.readRetries);
            std::fputs(", ", f);
            fputNum(f, "retired_units", m.retiredUnits);
            std::fputs(", ", f);
            fputNum(f, "tx_rejected", m.txRejected);
            std::fputs(", ", f);
            fputNum(f, "degraded_fraction", m.degradedFraction);
            std::fputs(",\n     ", f);
            fputNum(f, "channel_busy_ticks", m.channelBusyTicks);
            std::fputs(", ", f);
            fputNum(f, "channel_wait_ticks", m.channelWaitTicks);
            std::fputs(", ", f);
            fputNum(f, "drain_fences", m.drainFences);
            std::fputs(", ", f);
            fputNum(f, "channel_utilization", m.channelUtilization);
            std::fputs(",\n     ", f);
            fputRoles(f, m.roles);
            std::fputs(",\n     ", f);
            fputEpochs(f, m.epochs);
            std::fputs("}", f);
        }
        for (const auto &[key, v] : rec.values) {
            std::fputs(", ", f);
            fputJsonString(f, key);
            std::fprintf(f, ": %.17g", v);
        }
        std::fputs("}", f);
    }
    std::fputs("\n  ]\n}\n", f);
    std::fclose(f);

    std::fprintf(stderr,
                 "[bench %s] %zu cells, jobs=%u, wall=%.2fs "
                 "(%.2f cells/s, %.3g sim ticks/s) -> %s\n",
                 name_.c_str(), cells_.size(), jobs_, wallSeconds_,
                 cells_per_sec, ticks_per_sec, path.c_str());
    if (HostProfiler::enabled()) {
        std::fprintf(stderr, "[bench %s] host profile:", name_.c_str());
        for (int c = 0; c < HostProfiler::kNumComponents; ++c) {
            std::fprintf(
                stderr, " %s=%.2fs", HostProfiler::name(c),
                static_cast<double>(HostProfiler::totalNs(c)) * 1e-9);
        }
        std::fputc('\n', stderr);
    }
}

} // namespace bench
} // namespace hoopnvm
