/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench binary regenerates one of the paper's evaluation
 * artifacts (Figs. 7-13, Table IV) by running the Table III workloads
 * through full System instances — one per (scheme, workload, config)
 * cell — and printing the same rows/series the paper reports. The
 * default configuration follows Table II; the transaction counts are
 * scaled so each binary completes in seconds on a laptop while keeping
 * every cache and OOP-region mechanism exercised.
 */

#ifndef HOOPNVM_BENCH_BENCH_COMMON_HH
#define HOOPNVM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "stats/table.hh"
#include "workloads/registry.hh"

namespace hoopnvm
{
namespace bench
{

/** Paper Table II configuration, sized for bench runtime. */
inline SystemConfig
paperConfig()
{
    SystemConfig cfg;
    cfg.numCores = 8; // the paper runs 8 threads per workload
    cfg.homeBytes = miB(256);
    cfg.oopBytes = miB(32);
    cfg.auxBytes = miB(256) + miB(16);
    return cfg;
}

/** Default workload sizing for benches. */
inline WorkloadParams
paperParams(std::size_t value_bytes)
{
    WorkloadParams p;
    p.valueBytes = value_bytes;
    p.scale = 2048;
    return p;
}

/** Transactions per core for the standard sweeps. */
inline constexpr std::uint64_t kTxPerCore = 150;

/** One measured cell. */
struct Cell
{
    RunMetrics metrics;
    bool verified = false;
};

/** Run one (scheme, workload) cell. */
inline Cell
runCell(Scheme scheme, const std::string &workload,
        const WorkloadParams &params, const SystemConfig &cfg,
        std::uint64_t tx_per_core = kTxPerCore)
{
    System sys(cfg, scheme);
    const RunOutcome out =
        runWorkload(sys, makeWorkload(workload, params), tx_per_core);
    if (!out.verified) {
        HOOP_FATAL("verification failed for %s/%s",
                   schemeName(scheme), workload.c_str());
    }
    return Cell{out.metrics, out.verified};
}

/** Print the standard bench banner with the Table II parameters. */
inline void
banner(const char *what, const SystemConfig &cfg)
{
    std::printf("hoopnvm bench: %s\n", what);
    std::printf("  config: %u cores @ %.1f GHz, L1 %lluK/L2 %lluK/LLC "
                "%lluM, NVM r/w %.0f/%.0f ns, OOP %lluM (%lluM "
                "blocks), mapping %lluK, GC period %.0f ms\n\n",
                cfg.numCores, cfg.cpuGhz,
                static_cast<unsigned long long>(cfg.cache.l1Size >> 10),
                static_cast<unsigned long long>(cfg.cache.l2Size >> 10),
                static_cast<unsigned long long>(cfg.cache.llcSize >> 20),
                ticksToNs(cfg.nvm.readLatency),
                ticksToNs(cfg.nvm.writeLatency),
                static_cast<unsigned long long>(cfg.oopBytes >> 20),
                static_cast<unsigned long long>(cfg.oopBlockBytes >> 20),
                static_cast<unsigned long long>(
                    cfg.mappingTableBytes >> 10),
                ticksToMs(cfg.gcPeriod));
}

/** The workload columns of Figs. 7-9 (suite x item size). */
struct WorkloadCol
{
    std::string label;
    std::string name;
    std::size_t valueBytes;
};

inline std::vector<WorkloadCol>
figureWorkloads()
{
    std::vector<WorkloadCol> cols;
    for (const char *w :
         {"vector", "hashmap", "queue", "rbtree", "btree"}) {
        cols.push_back({std::string(w) + "-64B", w, 64});
        cols.push_back({std::string(w) + "-1KB", w, 1024});
    }
    cols.push_back({"ycsb-512B", "ycsb", 512});
    cols.push_back({"ycsb-1KB", "ycsb", 1024});
    cols.push_back({"tpcc", "tpcc", 64});
    return cols;
}

/** Schemes in the order the paper's figures plot them. */
inline std::vector<Scheme>
figureSchemes(bool include_ideal = true)
{
    std::vector<Scheme> s = {Scheme::OptRedo, Scheme::OptUndo,
                             Scheme::Osp,     Scheme::Lsm,
                             Scheme::Lad,     Scheme::Hoop};
    if (include_ideal)
        s.push_back(Scheme::Native);
    return s;
}

} // namespace bench
} // namespace hoopnvm

#endif // HOOPNVM_BENCH_BENCH_COMMON_HH
