/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench binary regenerates one of the paper's evaluation
 * artifacts (Figs. 7-13, Table IV) by running the Table III workloads
 * through full System instances — one per (scheme, workload, config)
 * cell — and printing the same rows/series the paper reports. The
 * default configuration follows Table II; the transaction counts are
 * scaled so each binary completes in seconds on a laptop while keeping
 * every cache and OOP-region mechanism exercised.
 */

#ifndef HOOPNVM_BENCH_BENCH_COMMON_HH
#define HOOPNVM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "stats/table.hh"
#include "workloads/registry.hh"

namespace hoopnvm
{
namespace bench
{

/** Paper Table II configuration, sized for bench runtime. */
inline SystemConfig
paperConfig()
{
    SystemConfig cfg;
    cfg.numCores = 8; // the paper runs 8 threads per workload
    cfg.homeBytes = miB(256);
    cfg.oopBytes = miB(32);
    cfg.auxBytes = miB(256) + miB(16);
    return cfg;
}

/** Default workload sizing for benches. */
inline WorkloadParams
paperParams(std::size_t value_bytes)
{
    WorkloadParams p;
    p.valueBytes = value_bytes;
    p.scale = 2048;
    return p;
}

/** Transactions per core for the standard sweeps. */
inline constexpr std::uint64_t kTxPerCore = 150;

/**
 * Transactions per core for this run: kTxPerCore unless the
 * HOOP_BENCH_TX environment variable overrides it (the CI smoke test
 * sets it to a handful so every bench finishes in milliseconds).
 */
std::uint64_t benchTxPerCore();

/**
 * Parse the standard bench flags and return the worker-thread count:
 * the value of a `-jN` argument, or 0 when absent (CellRunner then
 * falls back to HOOP_BENCH_JOBS and finally to hardware_concurrency).
 * A `--profile` argument enables the host-side wall-time profiler
 * (see common/host_profiler.hh); BenchReport then emits the
 * per-component breakdown into the JSON and the stderr summary.
 */
unsigned benchJobs(int argc, char **argv);

/**
 * Escape @p s for embedding in a JSON string literal. The
 * implementation moved to common/json.hh so library emitters
 * (fleet/soak/trace) share it; re-exported here for bench callers.
 */
using ::hoopnvm::jsonEscape;
using ::hoopnvm::jsonQuote;

/** One measured cell. */
struct Cell
{
    RunMetrics metrics;
    bool verified = false;
};

/** Run one (scheme, workload) cell. */
inline Cell
runCell(Scheme scheme, const std::string &workload,
        const WorkloadParams &params, const SystemConfig &cfg,
        std::uint64_t tx_per_core = kTxPerCore)
{
    System sys(cfg, scheme);
    const RunOutcome out =
        runWorkload(sys, makeWorkload(workload, params), tx_per_core);
    if (!out.verified) {
        HOOP_FATAL("verification failed for %s/%s",
                   schemeName(scheme), workload.c_str());
    }
    return Cell{out.metrics, out.verified};
}

/**
 * Schedules independent (scheme, workload, config) cells across a
 * thread pool. Cells are registered up front, run() executes them all,
 * and the bench prints its tables afterwards from the bench-owned
 * result storage — so stdout is byte-identical for any job count (each
 * cell owns a full System seeded from its config; nothing is shared).
 *
 * Job-count resolution: the constructor argument (from a `-jN` flag)
 * wins, then the HOOP_BENCH_JOBS environment variable, then
 * std::thread::hardware_concurrency(). A value of 1 runs the cells
 * inline on the calling thread with no pool at all.
 */
class CellRunner
{
  public:
    /** @param jobs Worker threads; 0 resolves env/hardware default. */
    explicit CellRunner(unsigned jobs = 0);

    /** Register a cell; returns its index. Not thread-safe. */
    std::size_t add(std::string label, std::function<void()> task);

    /**
     * Point cell @p idx at the RunMetrics its task fills in, so the
     * JSON report can aggregate per-cell simulated work. The pointer
     * must stay valid until the report is written.
     */
    void noteMetrics(std::size_t idx, const RunMetrics *m);

    /** Execute every registered cell; returns total wall seconds. */
    double run();

    unsigned jobs() const { return jobs_; }
    std::size_t cells() const { return slots.size(); }
    const std::string &label(std::size_t i) const
    {
        return slots[i].label;
    }
    double cellSeconds(std::size_t i) const { return slots[i].seconds; }
    const RunMetrics *metrics(std::size_t i) const
    {
        return slots[i].metrics;
    }
    double totalSeconds() const { return totalSeconds_; }

  private:
    struct Slot
    {
        std::string label;
        std::function<void()> task;
        double seconds = 0.0;
        const RunMetrics *metrics = nullptr;
    };

    unsigned jobs_;
    std::vector<Slot> slots;
    double totalSeconds_ = 0.0;
};

/**
 * Register the standard runCell() call as a CellRunner cell writing
 * into @p out (which must outlive run()). Returns the cell index.
 */
inline std::size_t
scheduleCell(CellRunner &runner, const std::string &label, Scheme scheme,
             const std::string &workload, const WorkloadParams &params,
             const SystemConfig &cfg, std::uint64_t tx_per_core,
             Cell *out)
{
    const std::size_t idx =
        runner.add(label, [=] {
            *out = runCell(scheme, workload, params, cfg, tx_per_core);
        });
    runner.noteMetrics(idx, &out->metrics);
    return idx;
}

/**
 * Machine-readable record of one bench run: the configuration, every
 * cell's host wall time and simulator metrics, and a host-side summary
 * (cells/sec, simulated-ticks/sec). write() emits
 * `BENCH_<name>.json` into $HOOP_BENCH_JSON_DIR (or the CWD) and
 * prints the summary to stderr — never stdout, which carries only the
 * paper tables.
 */
class BenchReport
{
  public:
    BenchReport(std::string name, const SystemConfig &cfg,
                std::uint64_t tx_per_core);

    /** Copy every cell (label, seconds, metrics) out of @p runner. */
    void addCells(const CellRunner &runner);

    /** Add a cell not driven by a CellRunner (@p m may be null). */
    void addCell(std::string label, double seconds, const RunMetrics *m);

    /** Attach a custom scalar to the first cell labelled @p label. */
    void cellValue(const std::string &label, std::string key,
                   double value);

    /** Attach a custom top-level scalar (e.g. a derived ratio). */
    void value(std::string key, double v);

    /** Write BENCH_<name>.json and print the stderr summary. */
    void write() const;

  private:
    struct CellRecord
    {
        std::string label;
        double seconds = 0.0;
        bool hasMetrics = false;
        RunMetrics metrics;
        std::vector<std::pair<std::string, double>> values;
    };

    std::string name_;
    SystemConfig cfg_;
    std::uint64_t txPerCore_;
    unsigned jobs_ = 1;
    double wallSeconds_ = 0.0;
    std::vector<CellRecord> cells_;
    std::vector<std::pair<std::string, double>> values_;
};

/** Print the standard bench banner with the Table II parameters. */
inline void
banner(const char *what, const SystemConfig &cfg)
{
    std::printf("hoopnvm bench: %s\n", what);
    std::printf("  config: %u cores @ %.1f GHz, L1 %lluK/L2 %lluK/LLC "
                "%lluM, NVM r/w %.0f/%.0f ns, OOP %lluM (%llu x %lluM "
                "blocks), mapping %lluK, GC period %.0f ms\n\n",
                cfg.numCores, cfg.cpuGhz,
                static_cast<unsigned long long>(cfg.cache.l1Size >> 10),
                static_cast<unsigned long long>(cfg.cache.l2Size >> 10),
                static_cast<unsigned long long>(cfg.cache.llcSize >> 20),
                ticksToNs(cfg.nvm.readLatency),
                ticksToNs(cfg.nvm.writeLatency),
                static_cast<unsigned long long>(cfg.oopBytes >> 20),
                static_cast<unsigned long long>(cfg.oopBytes /
                                                cfg.oopBlockBytes),
                static_cast<unsigned long long>(cfg.oopBlockBytes >> 20),
                static_cast<unsigned long long>(
                    cfg.mappingTableBytes >> 10),
                ticksToMs(cfg.gcPeriod));
}

/** The workload columns of Figs. 7-9 (suite x item size). */
struct WorkloadCol
{
    std::string label;
    std::string name;
    std::size_t valueBytes;
};

inline std::vector<WorkloadCol>
figureWorkloads()
{
    std::vector<WorkloadCol> cols;
    for (const char *w :
         {"vector", "hashmap", "queue", "rbtree", "btree"}) {
        cols.push_back({std::string(w) + "-64B", w, 64});
        cols.push_back({std::string(w) + "-1KB", w, 1024});
    }
    cols.push_back({"ycsb-512B", "ycsb", 512});
    cols.push_back({"ycsb-1KB", "ycsb", 1024});
    cols.push_back({"tpcc", "tpcc", 64});
    return cols;
}

/** Schemes in the order the paper's figures plot them. */
inline std::vector<Scheme>
figureSchemes(bool include_ideal = true)
{
    // Reserve for the optional Ideal entry up front: growing from the
    // exact six-element capacity trips a spurious GCC -Warray-bounds
    // in the relocation path under -fsanitize=undefined.
    std::vector<Scheme> s;
    s.reserve(7);
    s.assign({Scheme::OptRedo, Scheme::OptUndo, Scheme::Osp,
              Scheme::Lsm, Scheme::Lad, Scheme::Hoop});
    if (include_ideal)
        s.push_back(Scheme::Native);
    return s;
}

} // namespace bench
} // namespace hoopnvm

#endif // HOOPNVM_BENCH_BENCH_COMMON_HH
