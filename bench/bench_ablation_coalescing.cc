/**
 * @file
 * Ablation: HOOP's GC data coalescing (paper §III-E). With coalescing
 * disabled the collector applies every scanned word update to the home
 * region individually in age order — the "migrating these old data
 * versions sequentially will cause large write traffic" problem the
 * paper's Algorithm 1 exists to avoid.
 */

#include "bench_common.hh"

#include "hoop/hoop_controller.hh"

using namespace hoopnvm;
using namespace hoopnvm::bench;

int
main()
{
    SystemConfig cfg = paperConfig();
    banner("Ablation - GC coalescing on/off (HOOP)", cfg);

    TablePrinter table("GC migration traffic, coalescing vs none");
    table.setHeader({"workload", "home writes coalesced",
                     "home writes raw", "reduction", "bytes/tx ratio"});

    for (const char *wl :
         {"vector", "hashmap", "queue", "rbtree", "btree", "ycsb"}) {
        const std::size_t vb = std::string(wl) == "ycsb" ? 512 : 64;
        WorkloadParams p = paperParams(vb);
        p.scale = 512; // hot working set: coalescing opportunity

        auto run = [&](bool coalesce) {
            SystemConfig c = cfg;
            c.gcCoalescing = coalesce;
            System sys(c, Scheme::Hoop);
            const RunOutcome out =
                runWorkload(sys, makeWorkload(wl, p), kTxPerCore);
            if (!out.verified)
                HOOP_FATAL("verification failed");
            auto &ctrl =
                static_cast<HoopController &>(sys.controller());
            return std::make_pair(
                ctrl.gc().stats().value("home_lines_written"),
                out.metrics.bytesWrittenPerTx);
        };

        const auto on = run(true);
        const auto off = run(false);
        table.addRow(
            {wl, std::to_string(on.first), std::to_string(off.first),
             TablePrinter::num(off.first > 0
                                   ? 100.0 * (1.0 -
                                              static_cast<double>(
                                                  on.first) /
                                                  static_cast<double>(
                                                      off.first))
                                   : 0.0,
                               1) + "%",
             TablePrinter::num(off.second / on.second, 2) + "x"});
    }
    table.print();
    return 0;
}
