/**
 * @file
 * Ablation: HOOP's GC data coalescing (paper §III-E). With coalescing
 * disabled the collector applies every scanned word update to the home
 * region individually in age order — the "migrating these old data
 * versions sequentially will cause large write traffic" problem the
 * paper's Algorithm 1 exists to avoid.
 */

#include "bench_common.hh"

#include "hoop/hoop_controller.hh"

using namespace hoopnvm;
using namespace hoopnvm::bench;

int
main(int argc, char **argv)
{
    SystemConfig cfg = paperConfig();
    banner("Ablation - GC coalescing on/off (HOOP)", cfg);

    const std::vector<const char *> wls = {"vector", "hashmap", "queue",
                                           "rbtree", "btree",  "ycsb"};
    const std::uint64_t tx_per_core = benchTxPerCore();

    struct Result
    {
        RunMetrics metrics;
        std::uint64_t homeLines = 0;
    };
    std::vector<Result> coalesced(wls.size());
    std::vector<Result> raw(wls.size());

    CellRunner runner(benchJobs(argc, argv));
    for (std::size_t w = 0; w < wls.size(); ++w) {
        const char *wl = wls[w];
        const std::size_t vb = std::string(wl) == "ycsb" ? 512 : 64;
        WorkloadParams p = paperParams(vb);
        p.scale = 512; // hot working set: coalescing opportunity

        auto schedule = [&](bool coalesce, Result *out) {
            SystemConfig c = cfg;
            c.gcCoalescing = coalesce;
            const std::string label =
                std::string(wl) +
                (coalesce ? "/coalesced" : "/raw");
            const std::size_t idx = runner.add(label, [c, wl, p,
                                                       tx_per_core,
                                                       out] {
                System sys(c, Scheme::Hoop);
                const RunOutcome res =
                    runWorkload(sys, makeWorkload(wl, p), tx_per_core);
                if (!res.verified)
                    HOOP_FATAL("verification failed");
                auto &ctrl =
                    static_cast<HoopController &>(sys.controller());
                out->metrics = res.metrics;
                out->homeLines =
                    ctrl.gc().stats().value("home_lines_written");
            });
            runner.noteMetrics(idx, &out->metrics);
        };
        schedule(true, &coalesced[w]);
        schedule(false, &raw[w]);
    }
    runner.run();

    TablePrinter table("GC migration traffic, coalescing vs none");
    table.setHeader({"workload", "home writes coalesced",
                     "home writes raw", "reduction", "bytes/tx ratio"});
    for (std::size_t w = 0; w < wls.size(); ++w) {
        const Result &on = coalesced[w];
        const Result &off = raw[w];
        table.addRow(
            {wls[w], std::to_string(on.homeLines),
             std::to_string(off.homeLines),
             TablePrinter::num(
                 off.homeLines > 0
                     ? 100.0 * (1.0 - static_cast<double>(on.homeLines) /
                                          static_cast<double>(
                                              off.homeLines))
                     : 0.0,
                 1) + "%",
             TablePrinter::num(off.metrics.bytesWrittenPerTx /
                                   on.metrics.bytesWrittenPerTx,
                               2) + "x"});
    }
    table.print();

    BenchReport report("ablation_coalescing", cfg, tx_per_core);
    report.addCells(runner);
    report.write();
    return 0;
}
