/**
 * @file
 * Reproduces paper Figure 8: NVM write traffic per transaction,
 * normalized to the native system (lower is better).
 *
 * Expected shape (paper §IV-D): Opt-Redo and Opt-Undo write about
 * 2.1x / 1.9x more than HOOP; OSP, LSM and LAD sit 21.2% / 12.5% /
 * 11.6% above HOOP; HOOP is the lowest of the persistent schemes
 * thanks to word-granularity packing and GC coalescing.
 */

#include <cmath>
#include <map>

#include "bench_common.hh"

using namespace hoopnvm;
using namespace hoopnvm::bench;

int
main(int argc, char **argv)
{
    const SystemConfig cfg = paperConfig();
    banner("Figure 8 - write traffic to NVM", cfg);

    const auto cols = figureWorkloads();
    const auto schemes = figureSchemes();
    const std::uint64_t tx_per_core = benchTxPerCore();

    std::map<Scheme, std::vector<Cell>> results;
    for (Scheme s : schemes)
        results[s].resize(cols.size());

    CellRunner runner(benchJobs(argc, argv));
    for (Scheme s : schemes) {
        for (std::size_t w = 0; w < cols.size(); ++w) {
            scheduleCell(runner,
                         std::string(schemeName(s)) + "/" +
                             cols[w].label,
                         s, cols[w].name,
                         paperParams(cols[w].valueBytes), cfg,
                         tx_per_core, &results[s][w]);
        }
    }
    runner.run();

    std::map<Scheme, std::vector<double>> bytes_per_tx;
    for (Scheme s : schemes) {
        for (std::size_t w = 0; w < cols.size(); ++w)
            bytes_per_tx[s].push_back(
                results[s][w].metrics.bytesWrittenPerTx);
    }

    TablePrinter table(
        "Fig. 8: NVM bytes written per tx, normalized to Ideal "
        "(lower is better)");
    std::vector<std::string> header = {"scheme"};
    for (const auto &c : cols)
        header.push_back(c.label);
    header.push_back("geomean");
    table.setHeader(header);

    std::map<Scheme, double> geo;
    for (Scheme s : schemes) {
        std::vector<std::string> row = {schemeName(s)};
        double g = 0.0;
        for (std::size_t w = 0; w < cols.size(); ++w) {
            const double norm = bytes_per_tx[s][w] /
                                bytes_per_tx[Scheme::Native][w];
            row.push_back(TablePrinter::num(norm, 2));
            g += std::log(norm);
        }
        geo[s] = std::exp(g / static_cast<double>(cols.size()));
        row.push_back(TablePrinter::num(geo[s], 2));
        table.addRow(row);
    }
    table.print();

    std::printf("paper-vs-measured traffic ratios (scheme / HOOP):\n");
    auto ratio = [&](Scheme s) { return geo[s] / geo[Scheme::Hoop]; };
    std::printf("  Opt-Redo: paper 2.1x, measured %.2fx\n",
                ratio(Scheme::OptRedo));
    std::printf("  Opt-Undo: paper 1.9x, measured %.2fx\n",
                ratio(Scheme::OptUndo));
    std::printf("  OSP:      paper 1.21x, measured %.2fx\n",
                ratio(Scheme::Osp));
    std::printf("  LSM:      paper 1.13x, measured %.2fx\n",
                ratio(Scheme::Lsm));
    std::printf("  LAD:      paper 1.12x, measured %.2fx\n",
                ratio(Scheme::Lad));

    BenchReport report("fig8_write_traffic", cfg, tx_per_core);
    report.addCells(runner);
    report.write();
    return 0;
}
