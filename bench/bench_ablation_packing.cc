/**
 * @file
 * Ablation: HOOP's word-granularity data packing (paper §III-C,
 * Fig. 3). With packing disabled every updated word ships as its own
 * memory slice, modelling a controller that persists updates eagerly
 * at word granularity — the strawman the paper's design discussion
 * rejects ("persisting the data and metadata eagerly ... will
 * introduce extra write traffic", §III-A).
 */

#include "bench_common.hh"

using namespace hoopnvm;
using namespace hoopnvm::bench;

int
main(int argc, char **argv)
{
    SystemConfig cfg = paperConfig();
    banner("Ablation - data packing on/off (HOOP)", cfg);

    const std::vector<const char *> wls = {"vector", "hashmap", "queue",
                                           "rbtree", "btree",  "ycsb"};
    const std::uint64_t tx_per_core = benchTxPerCore();

    std::vector<Cell> packed(wls.size());
    std::vector<Cell> unpacked(wls.size());

    CellRunner runner(benchJobs(argc, argv));
    for (std::size_t w = 0; w < wls.size(); ++w) {
        const std::size_t vb =
            std::string(wls[w]) == "ycsb" ? 512 : 64;
        SystemConfig on = cfg;
        on.dataPacking = true;
        SystemConfig off = cfg;
        off.dataPacking = false;
        scheduleCell(runner, std::string(wls[w]) + "/packed",
                     Scheme::Hoop, wls[w], paperParams(vb), on,
                     tx_per_core, &packed[w]);
        scheduleCell(runner, std::string(wls[w]) + "/unpacked",
                     Scheme::Hoop, wls[w], paperParams(vb), off,
                     tx_per_core, &unpacked[w]);
    }
    runner.run();

    TablePrinter table("write traffic and throughput, packing vs none");
    table.setHeader({"workload", "bytes/tx packed", "bytes/tx unpacked",
                     "traffic ratio", "tput ratio (packed/unpacked)"});
    for (std::size_t w = 0; w < wls.size(); ++w) {
        const Cell &a = packed[w];
        const Cell &b = unpacked[w];
        table.addRow(
            {wls[w], TablePrinter::num(a.metrics.bytesWrittenPerTx, 0),
             TablePrinter::num(b.metrics.bytesWrittenPerTx, 0),
             TablePrinter::num(b.metrics.bytesWrittenPerTx /
                                   a.metrics.bytesWrittenPerTx,
                               2) + "x",
             TablePrinter::num(a.metrics.txPerSecond /
                                   b.metrics.txPerSecond,
                               2) + "x"});
    }
    table.print();
    std::printf("packing should cut slice traffic by up to 8x on "
                "multi-word updates.\n");

    BenchReport report("ablation_packing", cfg, tx_per_core);
    report.addCells(runner);
    report.write();
    return 0;
}
