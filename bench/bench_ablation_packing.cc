/**
 * @file
 * Ablation: HOOP's word-granularity data packing (paper §III-C,
 * Fig. 3). With packing disabled every updated word ships as its own
 * memory slice, modelling a controller that persists updates eagerly
 * at word granularity — the strawman the paper's design discussion
 * rejects ("persisting the data and metadata eagerly ... will
 * introduce extra write traffic", §III-A).
 */

#include "bench_common.hh"

using namespace hoopnvm;
using namespace hoopnvm::bench;

int
main()
{
    SystemConfig cfg = paperConfig();
    banner("Ablation - data packing on/off (HOOP)", cfg);

    TablePrinter table("write traffic and throughput, packing vs none");
    table.setHeader({"workload", "bytes/tx packed", "bytes/tx unpacked",
                     "traffic ratio", "tput ratio (packed/unpacked)"});

    for (const char *wl :
         {"vector", "hashmap", "queue", "rbtree", "btree", "ycsb"}) {
        const std::size_t vb = std::string(wl) == "ycsb" ? 512 : 64;
        SystemConfig on = cfg;
        on.dataPacking = true;
        SystemConfig off = cfg;
        off.dataPacking = false;

        const Cell a = runCell(Scheme::Hoop, wl, paperParams(vb), on);
        const Cell b = runCell(Scheme::Hoop, wl, paperParams(vb), off);
        table.addRow(
            {wl, TablePrinter::num(a.metrics.bytesWrittenPerTx, 0),
             TablePrinter::num(b.metrics.bytesWrittenPerTx, 0),
             TablePrinter::num(b.metrics.bytesWrittenPerTx /
                                   a.metrics.bytesWrittenPerTx,
                               2) + "x",
             TablePrinter::num(a.metrics.txPerSecond /
                                   b.metrics.txPerSecond,
                               2) + "x"});
    }
    table.print();
    std::printf("packing should cut slice traffic by up to 8x on "
                "multi-word updates.\n");
    return 0;
}
