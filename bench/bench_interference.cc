/**
 * @file
 * Interference & bandwidth-saturation sweep (ROADMAP item 3, beyond
 * the paper's evaluation).
 *
 * Every core runs one of four traffic roles (log_append, point_read,
 * seq_scan, gc_pressure — see workloads/interference_wl.hh); the
 * sweep crosses target channel saturation x read/write core mix x
 * persistence scheme and reports per-role throughput and tail
 * latency plus the NVM channel-occupancy gauges. The interesting
 * question is the one homogeneous workloads cannot ask: how does each
 * scheme's *tail* degrade as mixed traffic fills the channel, and
 * does HOOP's out-of-place batching hold its ordering against the
 * log-based baselines once readers fight the persistence stream?
 *
 * Flags: the standard -jN plus `--schemes=hoop,redo,...` to restrict
 * the scheme axis (CI's interference-smoke runs the hoop+redo pair).
 */

#include <cstring>

#include "bench_common.hh"

using namespace hoopnvm;
using namespace hoopnvm::bench;

namespace
{

/** Map a user token ("hoop", "redo", ...) to a Scheme. */
bool
parseScheme(const std::string &tok, Scheme *out)
{
    struct Entry
    {
        const char *token;
        Scheme scheme;
    };
    static const Entry kTable[] = {
        {"hoop", Scheme::Hoop},   {"redo", Scheme::OptRedo},
        {"undo", Scheme::OptUndo}, {"osp", Scheme::Osp},
        {"lsm", Scheme::Lsm},     {"lad", Scheme::Lad},
        {"ideal", Scheme::Native},
    };
    for (const Entry &e : kTable) {
        if (tok == e.token) {
            *out = e.scheme;
            return true;
        }
    }
    return false;
}

/** Schemes from a `--schemes=a,b,c` flag, or the full figure set. */
std::vector<Scheme>
schemesFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--schemes=", 10) != 0)
            continue;
        std::vector<Scheme> out;
        std::string tok;
        for (const char *p = arg + 10;; ++p) {
            if (*p == ',' || *p == '\0') {
                Scheme s;
                if (!tok.empty() && parseScheme(tok, &s))
                    out.push_back(s);
                else if (!tok.empty())
                    HOOP_FATAL("unknown scheme token '%s'",
                               tok.c_str());
                tok.clear();
                if (*p == '\0')
                    break;
            } else {
                tok += *p;
            }
        }
        if (!out.empty())
            return out;
    }
    return figureSchemes(false);
}

} // namespace

int
main(int argc, char **argv)
{
    SystemConfig cfg = paperConfig();
    banner("Interference - mixed-role saturation sweep", cfg);

    const std::uint64_t tx_per_core = benchTxPerCore();
    const std::vector<Scheme> schemes = schemesFromArgs(argc, argv);

    // Saturation is the duty-cycle target (1 = flat out); the read
    // mix is the fraction of cores running reader roles. Values are
    // percent in the labels so they parse as identifiers.
    const double saturations[] = {0.25, 0.5, 1.0};
    const double read_mixes[] = {0.25, 0.75};

    struct Point
    {
        Scheme scheme;
        double saturation;
        double readMix;
        Cell cell;
    };
    std::vector<Point> points;
    points.reserve(schemes.size() * std::size(saturations) *
                   std::size(read_mixes));
    for (const Scheme s : schemes) {
        for (const double sat : saturations) {
            for (const double mix : read_mixes)
                points.push_back({s, sat, mix, Cell{}});
        }
    }

    CellRunner runner(benchJobs(argc, argv));
    for (Point &pt : points) {
        WorkloadParams params = paperParams(64);
        params.scale = 1024;
        params.interferenceSaturation = pt.saturation;
        params.interferenceReadMix = pt.readMix;
        const std::string label =
            std::string(schemeName(pt.scheme)) + "/s" +
            TablePrinter::num(pt.saturation * 100, 0) + "/r" +
            TablePrinter::num(pt.readMix * 100, 0);
        scheduleCell(runner, label, pt.scheme, "interference", params,
                     cfg, tx_per_core, &pt.cell);
    }
    runner.run();

    for (const double mix : read_mixes) {
        TablePrinter t("Saturation sweep, read mix " +
                       TablePrinter::num(mix * 100, 0) +
                       "% (per-role p99 in us; channel util)");
        std::vector<std::string> header{"scheme", "saturation",
                                        "tx/s (M)", "util"};
        for (const char *r :
             {"log_append", "point_read", "seq_scan", "gc_pressure"})
            header.push_back(std::string(r) + " p99");
        t.setHeader(header);
        for (const Point &pt : points) {
            // lint: float-eq-ok (selecting the sweep slice by its own exact literal, not a computed value)
            if (pt.readMix != mix)
                continue;
            std::vector<std::string> row{
                schemeName(pt.scheme),
                TablePrinter::num(pt.saturation * 100, 0) + "%",
                TablePrinter::num(
                    pt.cell.metrics.txPerSecond / 1e6, 3),
                TablePrinter::num(
                    pt.cell.metrics.channelUtilization, 3)};
            for (const char *r : {"log_append", "point_read",
                                  "seq_scan", "gc_pressure"}) {
                std::string v = "-";
                for (const RoleMetrics &rm : pt.cell.metrics.roles) {
                    if (rm.name == r) {
                        v = TablePrinter::num(
                            rm.latency.p99Ns / 1e3, 2);
                        if (rm.latency.p99Saturated)
                            v += "*";
                    }
                }
                row.push_back(v);
            }
            t.addRow(row);
        }
        t.print();
    }
    std::printf("(* = under-populated quantile: exact max reported)\n");

    BenchReport report("interference", cfg, tx_per_core);
    report.addCells(runner);
    report.write();
    return 0;
}
