/**
 * @file
 * Reproduces paper Table III: the benchmark suite's per-transaction
 * store/load footprint, measured against the paper's declared ranges.
 */

#include "bench_common.hh"

using namespace hoopnvm;
using namespace hoopnvm::bench;

int
main(int argc, char **argv)
{
    SystemConfig cfg = paperConfig();
    banner("Table III - benchmark suite footprint", cfg);

    struct Row
    {
        const char *name;
        std::size_t valueBytes;
        const char *paperStores;
        const char *paperMix;
    };
    const Row rows[] = {
        {"vector", 64, "8", "100%/0%"},
        {"hashmap", 64, "8", "100%/0%"},
        {"queue", 64, "4", "100%/0%"},
        {"rbtree", 64, "2-10", "100%/0%"},
        {"btree", 64, "2-12", "100%/0%"},
        {"ycsb", 512, "8-32", "80%/20%"},
        {"tpcc", 64, "10-35", "40%/60%"},
    };
    constexpr std::size_t kRows = std::size(rows);

    const std::uint64_t tx_per_core = benchTxPerCore();

    struct Result
    {
        RunMetrics metrics;
        double stores = 0.0;
        double loads = 0.0;
    };
    std::vector<Result> res(kRows);

    CellRunner runner(benchJobs(argc, argv));
    for (std::size_t i = 0; i < kRows; ++i) {
        const Row &r = rows[i];
        const std::size_t idx = runner.add(r.name, [&, i, r] {
            System sys(cfg, Scheme::Native);
            const RunOutcome out = runWorkload(
                sys, makeWorkload(r.name, paperParams(r.valueBytes)),
                tx_per_core);
            if (!out.verified)
                HOOP_FATAL("verification failed for %s", r.name);
            res[i].metrics = out.metrics;
            res[i].stores = static_cast<double>(
                sys.caches().stats().value("stores"));
            res[i].loads = static_cast<double>(
                sys.caches().stats().value("loads"));
        });
        runner.noteMetrics(idx, &res[i].metrics);
    }
    runner.run();

    TablePrinter table("Table III: measured footprint per transaction");
    table.setHeader({"workload", "paper stores/tx", "measured ops/tx",
                     "paper W/R", "measured W/R"});

    for (std::size_t i = 0; i < kRows; ++i) {
        const Row &r = rows[i];
        const double tx =
            static_cast<double>(res[i].metrics.transactions);
        const double stores = res[i].stores;
        const double loads = res[i].loads;
        // Item-level operation counts: word stores divided by the
        // words per item give the paper's "stores/tx" notion.
        const double item_words = static_cast<double>(
            r.valueBytes) / kWordSize;
        const double ops_per_tx = stores / tx / item_words;
        const double wr =
            100.0 * stores / std::max(1.0, stores + loads);
        table.addRow({r.name, r.paperStores,
                      TablePrinter::num(ops_per_tx, 1), r.paperMix,
                      TablePrinter::num(wr, 0) + "%/" +
                          TablePrinter::num(100.0 - wr, 0) + "%"});
    }
    table.print();
    std::printf("(measured ops/tx counts item-size write bursts; tree "
                "workloads also issue single-word metadata stores, so "
                "their value exceeds 1 accordingly)\n");

    BenchReport report("workloads", cfg, tx_per_core);
    report.addCells(runner);
    report.write();
    return 0;
}
