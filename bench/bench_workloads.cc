/**
 * @file
 * Reproduces paper Table III: the benchmark suite's per-transaction
 * store/load footprint, measured against the paper's declared ranges.
 */

#include "bench_common.hh"

using namespace hoopnvm;
using namespace hoopnvm::bench;

int
main()
{
    SystemConfig cfg = paperConfig();
    banner("Table III - benchmark suite footprint", cfg);

    struct Row
    {
        const char *name;
        std::size_t valueBytes;
        const char *paperStores;
        const char *paperMix;
    };
    const Row rows[] = {
        {"vector", 64, "8", "100%/0%"},
        {"hashmap", 64, "8", "100%/0%"},
        {"queue", 64, "4", "100%/0%"},
        {"rbtree", 64, "2-10", "100%/0%"},
        {"btree", 64, "2-12", "100%/0%"},
        {"ycsb", 512, "8-32", "80%/20%"},
        {"tpcc", 64, "10-35", "40%/60%"},
    };

    TablePrinter table("Table III: measured footprint per transaction");
    table.setHeader({"workload", "paper stores/tx", "measured ops/tx",
                     "paper W/R", "measured W/R"});

    for (const Row &r : rows) {
        System sys(cfg, Scheme::Native);
        const RunOutcome out = runWorkload(
            sys, makeWorkload(r.name, paperParams(r.valueBytes)),
            kTxPerCore);
        if (!out.verified)
            HOOP_FATAL("verification failed for %s", r.name);
        const double tx = static_cast<double>(out.metrics.transactions);
        const double stores = static_cast<double>(
            sys.caches().stats().value("stores"));
        const double loads = static_cast<double>(
            sys.caches().stats().value("loads"));
        // Item-level operation counts: word stores divided by the
        // words per item give the paper's "stores/tx" notion.
        const double item_words = static_cast<double>(
            r.valueBytes) / kWordSize;
        const double ops_per_tx = stores / tx / item_words;
        const double wr =
            100.0 * stores / std::max(1.0, stores + loads);
        table.addRow({r.name, r.paperStores,
                      TablePrinter::num(ops_per_tx, 1), r.paperMix,
                      TablePrinter::num(wr, 0) + "%/" +
                          TablePrinter::num(100.0 - wr, 0) + "%"});
    }
    table.print();
    std::printf("(measured ops/tx counts item-size write bursts; tree "
                "workloads also issue single-word metadata stores, so "
                "their value exceeds 1 accordingly)\n");
    return 0;
}
