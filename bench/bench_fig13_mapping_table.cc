/**
 * @file
 * Reproduces paper Figure 13: YCSB throughput under HOOP as the
 * mapping table size sweeps 512 KB .. 8 MB.
 *
 * Expected shape (paper §IV-H): small tables force frequent GC to
 * drain mapping entries, hurting throughput; around the default 2 MB
 * the curve flattens because the periodic GC (10 ms) bounds how many
 * entries ever accumulate.
 */

#include "bench_common.hh"

#include "hoop/hoop_controller.hh"

using namespace hoopnvm;
using namespace hoopnvm::bench;

int
main(int argc, char **argv)
{
    SystemConfig cfg = paperConfig();
    // A small LLC makes evictions (and therefore mapping entries)
    // frequent enough to exercise the table-pressure mechanism at
    // bench scale.
    cfg.cache.llcSize = kiB(256);
    banner("Figure 13 - YCSB throughput vs mapping table size (HOOP)",
           cfg);

    const WorkloadParams params = paperParams(1024);
    const std::uint64_t tx_per_core = benchTxPerCore();

    const std::uint64_t sizes[] = {kiB(8),   kiB(16),  kiB(32),
                                   kiB(64),  kiB(128), kiB(512),
                                   miB(2)};
    struct Result
    {
        RunMetrics metrics;
        std::uint64_t pressure = 0;
    };
    std::vector<Result> res(std::size(sizes));

    auto sizeLabel = [](std::uint64_t bytes) {
        return bytes >= miB(1)
                   ? TablePrinter::num(
                         static_cast<double>(bytes) / miB(1), 0) + "MB"
                   : TablePrinter::num(
                         static_cast<double>(bytes) / kiB(1), 0) + "KB";
    };

    CellRunner runner(benchJobs(argc, argv));
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
        SystemConfig c = cfg;
        c.mappingTableBytes = sizes[i];
        const std::size_t idx = runner.add(sizeLabel(sizes[i]), [&, c,
                                                                 i] {
            System sys(c, Scheme::Hoop);
            const RunOutcome out = runWorkload(
                sys, makeWorkload("ycsb", params), tx_per_core);
            if (!out.verified)
                HOOP_FATAL("verification failed");
            auto &ctrl =
                static_cast<HoopController &>(sys.controller());
            res[i].metrics = out.metrics;
            res[i].pressure = ctrl.stats().value("gc_mapping_full") +
                              ctrl.stats().value("gc_pressure");
        });
        runner.noteMetrics(idx, &res[i].metrics);
    }
    runner.run();

    TablePrinter table("Fig. 13: mapping table size sweep");
    table.setHeader({"table size", "tx/s (M)", "normalized",
                     "gc runs (pressure)"});
    double base = 0.0;
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
        // lint: float-eq-ok (0.0 is a first-iteration "unset" sentinel, never a computed value)
        if (base == 0.0)
            base = res[i].metrics.txPerSecond;
        table.addRow({sizeLabel(sizes[i]),
                      TablePrinter::num(
                          res[i].metrics.txPerSecond / 1e6, 3),
                      TablePrinter::num(
                          res[i].metrics.txPerSecond / base, 2),
                      std::to_string(res[i].pressure)});
    }
    table.print();
    std::printf("(the paper sweeps 512 KB-8 MB at full scale; the "
                "bench shrinks the LLC so the same pressure mechanism "
                "appears at smaller table sizes)\n");

    BenchReport report("fig13_mapping_table", cfg, tx_per_core);
    report.addCells(runner);
    report.write();
    return 0;
}
