/**
 * @file
 * Reproduces paper Table IV: the GC data-reduction ratio (fraction of
 * transaction-modified bytes that coalescing keeps from being written
 * back to the home region) as the number of transactions grows from
 * 10^1 to 10^4.
 *
 * Expected shape (§IV-D): the ratio climbs from ~25% at 10 txs to
 * >80% at 10^4 txs as repeated updates to hot data coalesce.
 */

#include <algorithm>

#include "bench_common.hh"

#include "hoop/hoop_controller.hh"

using namespace hoopnvm;
using namespace hoopnvm::bench;

int
main()
{
    SystemConfig cfg = paperConfig();
    cfg.numCores = 2; // Table IV counts transactions, not threads
    banner("Table IV - GC data reduction vs transaction count", cfg);

    const std::uint64_t tx_counts[] = {10, 100, 1000, 10000};
    const char *wls[] = {"vector", "queue",  "rbtree", "btree",
                         "hashmap", "ycsb",  "tpcc"};

    TablePrinter table("Table IV: average data reduction in GC");
    table.setHeader({"tx", "vector", "queue", "rbtree", "btree",
                     "hashmap", "ycsb", "tpcc"});

    for (std::uint64_t n : tx_counts) {
        std::vector<std::string> row = {std::to_string(n)};
        for (const char *wl : wls) {
            WorkloadParams p = paperParams(64);
            // Keep the structure small relative to the tx count so
            // update locality (the source of coalescing) matches the
            // paper's setup, but large enough that insert-heavy
            // workloads never exhaust their key space.
            p.scale = std::max<std::uint64_t>(256, n / 4);
            SystemConfig c = cfg;
            System sys(c, Scheme::Hoop);
            const RunOutcome out = runWorkload(
                sys, makeWorkload(wl, p), n / c.numCores + 1);
            if (!out.verified)
                HOOP_FATAL("verification failed");
            auto &ctrl =
                static_cast<HoopController &>(sys.controller());
            row.push_back(TablePrinter::num(
                ctrl.gc().dataReductionRatio() * 100.0, 1) + "%");
        }
        table.addRow(row);
    }
    table.print();
    std::printf("paper Table IV: ~25%% at 10 tx, ~50%% at 100, ~73%% "
                "at 1000, ~83%% at 10000\n");
    return 0;
}
