/**
 * @file
 * Reproduces paper Table IV: the GC data-reduction ratio (fraction of
 * transaction-modified bytes that coalescing keeps from being written
 * back to the home region) as the number of transactions grows from
 * 10^1 to 10^4.
 *
 * Expected shape (§IV-D): the ratio climbs from ~25% at 10 txs to
 * >80% at 10^4 txs as repeated updates to hot data coalesce.
 */

#include <algorithm>

#include "bench_common.hh"

#include "hoop/hoop_controller.hh"

using namespace hoopnvm;
using namespace hoopnvm::bench;

int
main(int argc, char **argv)
{
    SystemConfig cfg = paperConfig();
    cfg.numCores = 2; // Table IV counts transactions, not threads
    banner("Table IV - GC data reduction vs transaction count", cfg);

    const std::uint64_t tx_counts[] = {10, 100, 1000, 10000};
    const char *wls[] = {"vector", "queue",  "rbtree", "btree",
                         "hashmap", "ycsb",  "tpcc"};

    // reduction[tx_count][workload], percent.
    std::vector<std::vector<double>> reduction(
        std::size(tx_counts), std::vector<double>(std::size(wls)));
    std::vector<std::vector<RunMetrics>> metrics(
        std::size(tx_counts),
        std::vector<RunMetrics>(std::size(wls)));

    CellRunner runner(benchJobs(argc, argv));
    for (std::size_t t = 0; t < std::size(tx_counts); ++t) {
        const std::uint64_t n = tx_counts[t];
        for (std::size_t w = 0; w < std::size(wls); ++w) {
            const char *wl = wls[w];
            WorkloadParams p = paperParams(64);
            // Keep the structure small relative to the tx count so
            // update locality (the source of coalescing) matches the
            // paper's setup, but large enough that insert-heavy
            // workloads never exhaust their key space.
            p.scale = std::max<std::uint64_t>(256, n / 4);
            const std::size_t idx = runner.add(
                std::string(wl) + "/" + std::to_string(n),
                [&, t, w, wl, p, n] {
                    SystemConfig c = cfg;
                    System sys(c, Scheme::Hoop);
                    const RunOutcome out = runWorkload(
                        sys, makeWorkload(wl, p), n / c.numCores + 1);
                    if (!out.verified)
                        HOOP_FATAL("verification failed");
                    auto &ctrl = static_cast<HoopController &>(
                        sys.controller());
                    metrics[t][w] = out.metrics;
                    reduction[t][w] =
                        ctrl.gc().dataReductionRatio() * 100.0;
                });
            runner.noteMetrics(idx, &metrics[t][w]);
        }
    }
    runner.run();

    TablePrinter table("Table IV: average data reduction in GC");
    table.setHeader({"tx", "vector", "queue", "rbtree", "btree",
                     "hashmap", "ycsb", "tpcc"});
    for (std::size_t t = 0; t < std::size(tx_counts); ++t) {
        std::vector<std::string> row = {std::to_string(tx_counts[t])};
        for (std::size_t w = 0; w < std::size(wls); ++w)
            row.push_back(TablePrinter::num(reduction[t][w], 1) + "%");
        table.addRow(row);
    }
    table.print();
    std::printf("paper Table IV: ~25%% at 10 tx, ~50%% at 100, ~73%% "
                "at 1000, ~83%% at 10000\n");

    BenchReport report("table4_data_reduction", cfg,
                       benchTxPerCore());
    report.addCells(runner);
    report.write();
    return 0;
}
