/**
 * @file
 * Reproduces paper Figure 7: (a) transaction throughput normalized to
 * Opt-Redo and (b) critical-path latency normalized to the native
 * system, for all Table III workloads across the six schemes plus the
 * Ideal (native) system.
 *
 * Expected shape (paper §IV-B/C): HOOP beats every persistent scheme
 * (Opt-Redo worst; ordering Opt-Redo < Opt-Undo < OSP < LSM < LAD <
 * HOOP < Ideal on average) and its critical path sits close to the
 * native system while undo logging and LSM sit far above it. The
 * footer reports the geometric-mean ratios the paper quotes, plus the
 * read-path profile of §IV-C.
 */

#include <cmath>
#include <map>

#include "bench_common.hh"

using namespace hoopnvm;
using namespace hoopnvm::bench;

int
main(int argc, char **argv)
{
    const SystemConfig cfg = paperConfig();
    banner("Figure 7 - transaction throughput & critical-path latency",
           cfg);

    const auto cols = figureWorkloads();
    const auto schemes = figureSchemes();
    const std::uint64_t tx_per_core = benchTxPerCore();

    // metric[scheme][workload], filled in parallel.
    std::map<Scheme, std::vector<Cell>> results;
    for (Scheme s : schemes)
        results[s].resize(cols.size());

    CellRunner runner(benchJobs(argc, argv));
    for (Scheme s : schemes) {
        for (std::size_t w = 0; w < cols.size(); ++w) {
            scheduleCell(runner,
                         std::string(schemeName(s)) + "/" +
                             cols[w].label,
                         s, cols[w].name,
                         paperParams(cols[w].valueBytes), cfg,
                         tx_per_core, &results[s][w]);
        }
    }

    // §IV-C read-path profile for HOOP on the full suite: needs the
    // System's internal stats, so it runs as a custom cell.
    RunMetrics profile_metrics;
    double profile_fills = 0.0;
    double profile_parallel_reads = 0.0;
    {
        const std::size_t idx =
            runner.add("hoop-read-path/ycsb-1KB", [&] {
                System sys(cfg, Scheme::Hoop);
                const RunOutcome out = runWorkload(
                    sys, makeWorkload("ycsb", paperParams(1024)),
                    tx_per_core);
                profile_metrics = out.metrics;
                profile_fills = static_cast<double>(
                    sys.caches().stats().value("llc_fills"));
                profile_parallel_reads = static_cast<double>(
                    sys.controller().stats().value("parallel_reads"));
            });
        runner.noteMetrics(idx, &profile_metrics);
    }
    runner.run();

    TablePrinter tput(
        "Fig. 7a: throughput normalized to Opt-Redo (higher is better)");
    {
        std::vector<std::string> header = {"scheme"};
        for (const auto &c : cols)
            header.push_back(c.label);
        header.push_back("geomean");
        tput.setHeader(header);
    }
    std::map<Scheme, double> tput_geo;
    for (Scheme s : schemes) {
        std::vector<std::string> row = {schemeName(s)};
        double geo = 0.0;
        for (std::size_t w = 0; w < cols.size(); ++w) {
            const double norm =
                results[s][w].metrics.txPerSecond /
                results[Scheme::OptRedo][w].metrics.txPerSecond;
            row.push_back(TablePrinter::num(norm, 2));
            geo += std::log(norm);
        }
        geo = std::exp(geo / static_cast<double>(cols.size()));
        tput_geo[s] = geo;
        row.push_back(TablePrinter::num(geo, 2));
        tput.addRow(row);
    }
    tput.print();

    TablePrinter lat(
        "Fig. 7b: critical-path latency normalized to Ideal (lower is "
        "better)");
    {
        std::vector<std::string> header = {"scheme"};
        for (const auto &c : cols)
            header.push_back(c.label);
        header.push_back("geomean");
        lat.setHeader(header);
    }
    std::map<Scheme, double> lat_geo;
    for (Scheme s : schemes) {
        std::vector<std::string> row = {schemeName(s)};
        double geo = 0.0;
        for (std::size_t w = 0; w < cols.size(); ++w) {
            const double norm =
                results[s][w].metrics.avgCriticalPathNs /
                results[Scheme::Native][w].metrics.avgCriticalPathNs;
            row.push_back(TablePrinter::num(norm, 2));
            geo += std::log(norm);
        }
        geo = std::exp(geo / static_cast<double>(cols.size()));
        lat_geo[s] = geo;
        row.push_back(TablePrinter::num(geo, 2));
        lat.addRow(row);
    }
    lat.print();

    // Latency tails: the mean in Fig. 7b hides GC- and log-induced
    // spikes; the per-scheme quantiles (geomean across workloads, in
    // ns) make them visible.
    TablePrinter tails("Critical-path latency quantiles "
                       "(geomean across workloads, ns)");
    tails.setHeader({"scheme", "p50", "p95", "p99", "max"});
    for (Scheme s : schemes) {
        double g50 = 0.0, g95 = 0.0, g99 = 0.0, gmax = 0.0;
        for (std::size_t w = 0; w < cols.size(); ++w) {
            const LatencySummary &q = results[s][w].metrics.critPath;
            g50 += std::log(q.p50Ns);
            g95 += std::log(q.p95Ns);
            g99 += std::log(q.p99Ns);
            gmax += std::log(q.maxNs);
        }
        const double n = static_cast<double>(cols.size());
        tails.addRow({schemeName(s),
                      TablePrinter::num(std::exp(g50 / n), 0),
                      TablePrinter::num(std::exp(g95 / n), 0),
                      TablePrinter::num(std::exp(g99 / n), 0),
                      TablePrinter::num(std::exp(gmax / n), 0)});
    }
    tails.print();

    std::printf("paper-vs-measured headline ratios:\n");
    auto imp = [&](Scheme s) {
        return (tput_geo[Scheme::Hoop] / tput_geo[s] - 1.0) * 100.0;
    };
    std::printf("  HOOP throughput vs Opt-Redo: paper +74.3%%, "
                "measured %+.1f%%\n",
                imp(Scheme::OptRedo));
    std::printf("  HOOP throughput vs Opt-Undo: paper +45.1%%, "
                "measured %+.1f%%\n",
                imp(Scheme::OptUndo));
    std::printf("  HOOP throughput vs OSP:      paper +33.8%%, "
                "measured %+.1f%%\n",
                imp(Scheme::Osp));
    std::printf("  HOOP throughput vs LSM:      paper +27.9%%, "
                "measured %+.1f%%\n",
                imp(Scheme::Lsm));
    std::printf("  HOOP throughput vs LAD:      paper +24.3%%, "
                "measured %+.1f%%\n",
                imp(Scheme::Lad));
    std::printf("  HOOP throughput vs Ideal:    paper -20.6%%, "
                "measured %+.1f%%\n",
                (tput_geo[Scheme::Hoop] / tput_geo[Scheme::Native] -
                 1.0) *
                    100.0);
    std::printf("  HOOP critical path vs Ideal: paper +24.1%%, "
                "measured %+.1f%%\n\n",
                (lat_geo[Scheme::Hoop] - 1.0) * 100.0);

    std::printf("HOOP read-path profile (YCSB-1KB): LLC miss ratio "
                "%.1f%% (paper 12.1%%), parallel reads %.1f%% of "
                "fills (paper: 28.3%% of misses incur them, 3.4%% "
                "of accesses)\n",
                profile_metrics.llcMissRatio * 100.0,
                profile_fills > 0.0
                    ? 100.0 * profile_parallel_reads / profile_fills
                    : 0.0);

    BenchReport report("fig7_throughput", cfg, tx_per_core);
    report.addCells(runner);
    report.write();
    return 0;
}
