/**
 * @file
 * Reproduces paper Figure 7: (a) transaction throughput normalized to
 * Opt-Redo and (b) critical-path latency normalized to the native
 * system, for all Table III workloads across the six schemes plus the
 * Ideal (native) system.
 *
 * Expected shape (paper §IV-B/C): HOOP beats every persistent scheme
 * (Opt-Redo worst; ordering Opt-Redo < Opt-Undo < OSP < LSM < LAD <
 * HOOP < Ideal on average) and its critical path sits close to the
 * native system while undo logging and LSM sit far above it. The
 * footer reports the geometric-mean ratios the paper quotes, plus the
 * read-path profile of §IV-C.
 */

#include <cmath>
#include <map>

#include "bench_common.hh"

using namespace hoopnvm;
using namespace hoopnvm::bench;

int
main()
{
    const SystemConfig cfg = paperConfig();
    banner("Figure 7 - transaction throughput & critical-path latency",
           cfg);

    const auto cols = figureWorkloads();
    const auto schemes = figureSchemes();

    // metric[scheme][workload]
    std::map<Scheme, std::vector<RunMetrics>> results;
    for (Scheme s : schemes) {
        for (const auto &col : cols) {
            results[s].push_back(
                runCell(s, col.name, paperParams(col.valueBytes), cfg)
                    .metrics);
        }
    }

    TablePrinter tput(
        "Fig. 7a: throughput normalized to Opt-Redo (higher is better)");
    {
        std::vector<std::string> header = {"scheme"};
        for (const auto &c : cols)
            header.push_back(c.label);
        header.push_back("geomean");
        tput.setHeader(header);
    }
    std::map<Scheme, double> tput_geo;
    for (Scheme s : schemes) {
        std::vector<std::string> row = {schemeName(s)};
        double geo = 0.0;
        for (std::size_t w = 0; w < cols.size(); ++w) {
            const double norm = results[s][w].txPerSecond /
                                results[Scheme::OptRedo][w].txPerSecond;
            row.push_back(TablePrinter::num(norm, 2));
            geo += std::log(norm);
        }
        geo = std::exp(geo / static_cast<double>(cols.size()));
        tput_geo[s] = geo;
        row.push_back(TablePrinter::num(geo, 2));
        tput.addRow(row);
    }
    tput.print();

    TablePrinter lat(
        "Fig. 7b: critical-path latency normalized to Ideal (lower is "
        "better)");
    {
        std::vector<std::string> header = {"scheme"};
        for (const auto &c : cols)
            header.push_back(c.label);
        header.push_back("geomean");
        lat.setHeader(header);
    }
    std::map<Scheme, double> lat_geo;
    for (Scheme s : schemes) {
        std::vector<std::string> row = {schemeName(s)};
        double geo = 0.0;
        for (std::size_t w = 0; w < cols.size(); ++w) {
            const double norm =
                results[s][w].avgCriticalPathNs /
                results[Scheme::Native][w].avgCriticalPathNs;
            row.push_back(TablePrinter::num(norm, 2));
            geo += std::log(norm);
        }
        geo = std::exp(geo / static_cast<double>(cols.size()));
        lat_geo[s] = geo;
        row.push_back(TablePrinter::num(geo, 2));
        lat.addRow(row);
    }
    lat.print();

    std::printf("paper-vs-measured headline ratios:\n");
    auto imp = [&](Scheme s) {
        return (tput_geo[Scheme::Hoop] / tput_geo[s] - 1.0) * 100.0;
    };
    std::printf("  HOOP throughput vs Opt-Redo: paper +74.3%%, "
                "measured %+.1f%%\n",
                imp(Scheme::OptRedo));
    std::printf("  HOOP throughput vs Opt-Undo: paper +45.1%%, "
                "measured %+.1f%%\n",
                imp(Scheme::OptUndo));
    std::printf("  HOOP throughput vs OSP:      paper +33.8%%, "
                "measured %+.1f%%\n",
                imp(Scheme::Osp));
    std::printf("  HOOP throughput vs LSM:      paper +27.9%%, "
                "measured %+.1f%%\n",
                imp(Scheme::Lsm));
    std::printf("  HOOP throughput vs LAD:      paper +24.3%%, "
                "measured %+.1f%%\n",
                imp(Scheme::Lad));
    std::printf("  HOOP throughput vs Ideal:    paper -20.6%%, "
                "measured %+.1f%%\n",
                (tput_geo[Scheme::Hoop] / tput_geo[Scheme::Native] -
                 1.0) *
                    100.0);
    std::printf("  HOOP critical path vs Ideal: paper +24.1%%, "
                "measured %+.1f%%\n\n",
                (lat_geo[Scheme::Hoop] - 1.0) * 100.0);

    // §IV-C read-path profile for HOOP on the full suite.
    {
        System sys(cfg, Scheme::Hoop);
        const RunOutcome out = runWorkload(
            sys, makeWorkload("ycsb", paperParams(1024)), kTxPerCore);
        const auto &st = sys.controller().stats();
        const double fills = static_cast<double>(
            sys.caches().stats().value("llc_fills"));
        std::printf("HOOP read-path profile (YCSB-1KB): LLC miss ratio "
                    "%.1f%% (paper 12.1%%), parallel reads %.1f%% of "
                    "fills (paper: 28.3%% of misses incur them, 3.4%% "
                    "of accesses)\n",
                    out.metrics.llcMissRatio * 100.0,
                    fills > 0.0 ? 100.0 *
                                      static_cast<double>(
                                          st.value("parallel_reads")) /
                                      fills
                                : 0.0);
    }
    return 0;
}
