/**
 * @file
 * Reproduces paper Figure 10: GC efficiency as the periodic trigger
 * threshold sweeps 2..14 ms, on the five synthetic workloads.
 *
 * Expected shape (paper §IV-F): short periods trigger eager GC that
 * forfeits coalescing opportunities and burns NVM bandwidth; peak
 * throughput lands around 8-10 ms; very long periods run out of
 * reserved OOP space and push on-demand GC onto the critical path.
 * The OOP region is sized down here so the long-period cliff is
 * reachable within bench time.
 */

#include "bench_common.hh"

using namespace hoopnvm;
using namespace hoopnvm::bench;

int
main()
{
    SystemConfig cfg = paperConfig();
    // Small reserved region, small LLC (more out-of-place eviction
    // traffic) and short periods so the trade-off shows at bench
    // scale: the paper's ms-scale sweep needs seconds of simulated
    // time; we sweep the same shape at microsecond scale.
    cfg.oopBytes = miB(2);
    cfg.oopBlockBytes = miB(1) / 8;
    cfg.cache.llcSize = kiB(512);
    banner("Figure 10 - GC efficiency vs trigger period", cfg);

    const double periods_us[] = {10, 20, 40, 80, 120, 160, 240};

    TablePrinter table(
        "Fig. 10: throughput (tx/s) vs GC trigger period "
        "(paper sweeps 2-14 ms at full scale; same shape)");
    std::vector<std::string> header = {"workload"};
    for (double p : periods_us)
        header.push_back(TablePrinter::num(p, 0) + "us");
    header.push_back("best");
    table.setHeader(header);

    for (const char *wl :
         {"vector", "hashmap", "queue", "rbtree", "btree"}) {
        std::vector<std::string> row = {wl};
        double best_tput = 0.0;
        double best_period = 0.0;
        for (double p : periods_us) {
            SystemConfig c = cfg;
            c.gcPeriod = nsToTicks(p * 1000.0);
            const Cell cell =
                runCell(Scheme::Hoop, wl, paperParams(64), c, 250);
            row.push_back(
                TablePrinter::num(cell.metrics.txPerSecond / 1e6, 3));
            if (cell.metrics.txPerSecond > best_tput) {
                best_tput = cell.metrics.txPerSecond;
                best_period = p;
            }
        }
        row.push_back(TablePrinter::num(best_period, 0) + "us");
        table.addRow(row);
    }
    table.print();
    std::printf("values are Mtx/s; the paper observes the peak at "
                "8-10 ms with its second-long runs — the same interior "
                "maximum appears here at the scaled period.\n");
    return 0;
}
