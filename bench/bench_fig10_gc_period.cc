/**
 * @file
 * Reproduces paper Figure 10: GC efficiency as the periodic trigger
 * threshold sweeps 2..14 ms, on the five synthetic workloads.
 *
 * Expected shape (paper §IV-F): short periods trigger eager GC that
 * forfeits coalescing opportunities and burns NVM bandwidth; peak
 * throughput lands around 8-10 ms; very long periods run out of
 * reserved OOP space and push on-demand GC onto the critical path.
 * The OOP region is sized down here so the long-period cliff is
 * reachable within bench time.
 */

#include <cstdlib>

#include "bench_common.hh"

using namespace hoopnvm;
using namespace hoopnvm::bench;

int
main(int argc, char **argv)
{
    SystemConfig cfg = paperConfig();
    // Small reserved region, small LLC (more out-of-place eviction
    // traffic) and short periods so the trade-off shows at bench
    // scale: the paper's ms-scale sweep needs seconds of simulated
    // time; we sweep the same shape at microsecond scale.
    cfg.oopBytes = miB(2);
    cfg.oopBlockBytes = miB(1) / 8;
    cfg.cache.llcSize = kiB(512);
    banner("Figure 10 - GC efficiency vs trigger period", cfg);

    const double periods_us[] = {10, 20, 40, 80, 120, 160, 240};
    const std::vector<const char *> workloads = {
        "vector", "hashmap", "queue", "rbtree", "btree"};
    const std::uint64_t tx_per_core =
        // lint: nondet-api-ok (presence probe for the explicit HOOP_BENCH_TX scale knob; recorded in the report)
        std::getenv("HOOP_BENCH_TX") ? benchTxPerCore() : 250;

    // cells[workload][period]
    std::vector<std::vector<Cell>> cells(
        workloads.size(), std::vector<Cell>(std::size(periods_us)));

    CellRunner runner(benchJobs(argc, argv));
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t p = 0; p < std::size(periods_us); ++p) {
            SystemConfig c = cfg;
            c.gcPeriod = nsToTicks(periods_us[p] * 1000.0);
            scheduleCell(runner,
                         std::string(workloads[w]) + "/" +
                             TablePrinter::num(periods_us[p], 0) + "us",
                         Scheme::Hoop, workloads[w], paperParams(64), c,
                         tx_per_core, &cells[w][p]);
        }
    }
    runner.run();

    TablePrinter table(
        "Fig. 10: throughput (tx/s) vs GC trigger period "
        "(paper sweeps 2-14 ms at full scale; same shape)");
    std::vector<std::string> header = {"workload"};
    for (double p : periods_us)
        header.push_back(TablePrinter::num(p, 0) + "us");
    header.push_back("best");
    table.setHeader(header);

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        std::vector<std::string> row = {workloads[w]};
        double best_tput = 0.0;
        double best_period = 0.0;
        for (std::size_t p = 0; p < std::size(periods_us); ++p) {
            const Cell &cell = cells[w][p];
            row.push_back(
                TablePrinter::num(cell.metrics.txPerSecond / 1e6, 3));
            if (cell.metrics.txPerSecond > best_tput) {
                best_tput = cell.metrics.txPerSecond;
                best_period = periods_us[p];
            }
        }
        row.push_back(TablePrinter::num(best_period, 0) + "us");
        table.addRow(row);
    }
    table.print();
    std::printf("values are Mtx/s; the paper observes the peak at "
                "8-10 ms with its second-long runs — the same interior "
                "maximum appears here at the scaled period.\n");

    BenchReport report("fig10_gc_period", cfg, tx_per_core);
    report.addCells(runner);
    report.write();
    return 0;
}
