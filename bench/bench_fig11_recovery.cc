/**
 * @file
 * Reproduces paper Figure 11: time to recover a ~1 GB OOP region as
 * the number of recovery threads (1..16) and the NVM bandwidth
 * (10/15/20/25 GB/s) vary.
 *
 * Expected shape (paper §IV-G): recovery time falls with added threads
 * until the NVM channel saturates; at 25 GB/s recovering 1 GB takes
 * ~47 ms, about 2.3x faster than at 10 GB/s.
 */

#include "bench_common.hh"

#include <memory>
#include <mutex>

#include "hoop/hoop_controller.hh"

using namespace hoopnvm;
using namespace hoopnvm::bench;

namespace
{

/** Fill the OOP region with committed transactions, then crash. */
void
fillOopRegion(System &sys, std::uint64_t target_slices)
{
    auto &ctrl = static_cast<HoopController &>(sys.controller());
    // Disable GC so the region keeps the full footprint.
    std::uint64_t addr_cursor = 0;
    std::uint64_t produced = 0;
    const std::uint64_t words_per_tx = 64;
    while (produced < target_slices) {
        sys.txBegin(0);
        for (std::uint64_t i = 0; i < words_per_tx; ++i) {
            sys.storeWord(0, (addr_cursor * 8) %
                                 (sys.config().homeBytes - 64),
                          addr_cursor);
            ++addr_cursor;
        }
        sys.txEnd(0);
        produced = ctrl.stats().value("data_slices") +
                   ctrl.stats().value("addr_slices");
    }
    sys.crash();
}

} // namespace

int
main(int argc, char **argv)
{
    SystemConfig cfg = paperConfig();
    // 1 GB region at full scale; functionally we fill a 64 MB region
    // and the timing model scales with the scanned bytes either way.
    cfg.homeBytes = miB(512);
    cfg.oopBytes = miB(64);
    cfg.auxBytes = miB(512) + miB(64);
    cfg.gcPeriod = nsToTicks(1e12); // keep everything in the region
    banner("Figure 11 - recovery time vs threads and NVM bandwidth",
           cfg);

    const double bandwidths[] = {10e9, 15e9, 20e9, 25e9};
    const unsigned threads[] = {1, 2, 4, 8, 16};
    const std::uint64_t target_slices =
        cfg.oopBytes / MemorySlice::kSliceBytes * 9 / 10;

    struct Result
    {
        RunMetrics metrics; // simTicks = modelled recovery time
        double recoveryMs = 0.0;
        RecoveryResult integrity{};
    };
    std::vector<std::vector<Result>> res(
        std::size(bandwidths),
        std::vector<Result>(std::size(threads)));

    // The filled, crashed image depends only on the bandwidth — the
    // thread count enters nothing but the recovery-time formula. Each
    // bandwidth therefore fills ONE system (the expensive part: ~1 M
    // transactions plus the pressure-triggered GC runs they provoke)
    // and every thread-count cell models recovery against that shared
    // image via HoopController::modelRecovery(), which is repeatable
    // by contract: the scan reads only durable state and the replay
    // is an idempotent overlay, so each cell's modelled time is
    // bit-identical to the one a private fill would have produced.
    // The mutex serializes same-bandwidth cells under -jN; results
    // are order-independent, so parallel determinism is preserved.
    struct SharedFill
    {
        std::mutex mu;
        std::unique_ptr<System> sys;
        unsigned remaining = 0;
    };
    std::vector<SharedFill> fills(std::size(bandwidths));
    for (SharedFill &f : fills)
        f.remaining = static_cast<unsigned>(std::size(threads));

    CellRunner runner(benchJobs(argc, argv));
    for (std::size_t b = 0; b < std::size(bandwidths); ++b) {
        for (std::size_t t = 0; t < std::size(threads); ++t) {
            const double bw = bandwidths[b];
            const unsigned thr = threads[t];
            const std::string label =
                TablePrinter::num(bw / 1e9, 0) + "GB/s/" +
                std::to_string(thr) + "thr";
            const std::size_t idx = runner.add(label, [&, b, t, bw,
                                                       thr] {
                SharedFill &fill = fills[b];
                std::lock_guard<std::mutex> lk(fill.mu);
                if (!fill.sys) {
                    SystemConfig c = cfg;
                    c.nvm.bandwidthBytesPerSec = bw;
                    fill.sys = std::make_unique<System>(c, Scheme::Hoop);
                    fillOopRegion(*fill.sys, target_slices);
                }
                auto &ctrl = static_cast<HoopController &>(
                    fill.sys->controller());
                const Tick time = ctrl.modelRecovery(thr);
                res[b][t].metrics.simTicks = time;
                res[b][t].recoveryMs = ticksToMs(time);
                res[b][t].integrity = ctrl.lastRecovery();
                // Free the ~hundreds of MB of functional NVM pages as
                // soon as the last thread-count cell has used them.
                if (--fill.remaining == 0)
                    fill.sys.reset();
            });
            runner.noteMetrics(idx, &res[b][t].metrics);
        }
    }
    runner.run();

    TablePrinter table("Fig. 11: modelled recovery time (ms), "
                       "~58 MB of committed OOP slices");
    std::vector<std::string> header = {"bandwidth"};
    for (unsigned t : threads)
        header.push_back(std::to_string(t) + "thr");
    table.setHeader(header);

    for (std::size_t b = 0; b < std::size(bandwidths); ++b) {
        std::vector<std::string> row = {
            TablePrinter::num(bandwidths[b] / 1e9, 0) + "GB/s"};
        for (std::size_t t = 0; t < std::size(threads); ++t)
            row.push_back(TablePrinter::num(res[b][t].recoveryMs, 2));
        table.addRow(row);
    }
    table.print();

    const double t_10_16 = res[0][4].recoveryMs;
    const double t_25_16 = res[3][4].recoveryMs;
    const RecoveryResult &integrity = res[3][4].integrity;

    std::printf("scaled to the paper's 1 GB region this corresponds to "
                "%.0f ms at 25 GB/s (paper: 47 ms); 10 GB/s is %.1fx "
                "slower (paper: 2.3x)\n",
                t_25_16 * (1024.0 / 58.0), t_10_16 / t_25_16);

    // Integrity verification overhead: every scanned slice is
    // CRC-checked before any of its fields are trusted. The charge is
    // CPU work, so it hides behind the channel once the scan is
    // bandwidth-bound — the visible cost is the single-thread delta.
    std::printf("\nintegrity (last run, 16 threads @ 25 GB/s): "
                "%llu slices scanned, %llu rejected, %llu torn commits, "
                "%llu bit flips, %llu headers rejected, %llu incomplete "
                "tx vetoed\n",
                static_cast<unsigned long long>(integrity.slicesScanned),
                static_cast<unsigned long long>(integrity.slicesRejected),
                static_cast<unsigned long long>(
                    integrity.tornCommitsDetected),
                static_cast<unsigned long long>(integrity.bitFlipsDetected),
                static_cast<unsigned long long>(integrity.headersRejected),
                static_cast<unsigned long long>(
                    integrity.incompleteTxVetoed));
    std::printf("CRC verification cost: %.2f ms of CPU work total "
                "(%.2f ms per thread at 16 threads, %.1f%% of the "
                "recovery time)\n",
                ticksToMs(integrity.crcVerifyCost),
                ticksToMs(integrity.crcVerifyCost / 16),
                integrity.time > 0
                    ? 100.0 *
                          static_cast<double>(integrity.crcVerifyCost / 16) /
                          static_cast<double>(integrity.time)
                    : 0.0);

    BenchReport report("fig11_recovery", cfg, benchTxPerCore());
    report.addCells(runner);
    for (std::size_t b = 0; b < std::size(bandwidths); ++b) {
        for (std::size_t t = 0; t < std::size(threads); ++t) {
            report.cellValue(TablePrinter::num(bandwidths[b] / 1e9, 0) +
                                 "GB/s/" + std::to_string(threads[t]) +
                                 "thr",
                             "recovery_ms", res[b][t].recoveryMs);
        }
    }
    report.write();
    return 0;
}
