/**
 * @file
 * Reproduces paper Figure 9: NVM access energy per transaction (Table
 * II energy parameters), normalized to the native system.
 *
 * Expected shape (paper §IV-E): HOOP achieves the best energy
 * efficiency of the persistent schemes even though its GC and parallel
 * reads add read traffic, because writes cost ~5x more energy per bit
 * than reads; paper reductions vs OSP/LSM/LAD are 37.6%/29.6%/10.8%.
 */

#include <cmath>
#include <map>

#include "bench_common.hh"

using namespace hoopnvm;
using namespace hoopnvm::bench;

int
main(int argc, char **argv)
{
    const SystemConfig cfg = paperConfig();
    banner("Figure 9 - NVM energy consumption", cfg);

    const auto cols = figureWorkloads();
    const auto schemes = figureSchemes();
    const std::uint64_t tx_per_core = benchTxPerCore();

    std::map<Scheme, std::vector<Cell>> results;
    for (Scheme s : schemes)
        results[s].resize(cols.size());

    CellRunner runner(benchJobs(argc, argv));
    for (Scheme s : schemes) {
        for (std::size_t w = 0; w < cols.size(); ++w) {
            scheduleCell(runner,
                         std::string(schemeName(s)) + "/" +
                             cols[w].label,
                         s, cols[w].name,
                         paperParams(cols[w].valueBytes), cfg,
                         tx_per_core, &results[s][w]);
        }
    }
    runner.run();

    std::map<Scheme, std::vector<double>> energy;
    for (Scheme s : schemes) {
        for (std::size_t w = 0; w < cols.size(); ++w) {
            const RunMetrics &m = results[s][w].metrics;
            energy[s].push_back(
                m.energyPj / static_cast<double>(m.transactions));
        }
    }

    TablePrinter table("Fig. 9: NVM energy per tx, normalized to Ideal "
                       "(lower is better)");
    std::vector<std::string> header = {"scheme"};
    for (const auto &c : cols)
        header.push_back(c.label);
    header.push_back("geomean");
    table.setHeader(header);

    std::map<Scheme, double> geo;
    for (Scheme s : schemes) {
        std::vector<std::string> row = {schemeName(s)};
        double g = 0.0;
        for (std::size_t w = 0; w < cols.size(); ++w) {
            const double norm =
                energy[s][w] / energy[Scheme::Native][w];
            row.push_back(TablePrinter::num(norm, 2));
            g += std::log(norm);
        }
        geo[s] = std::exp(g / static_cast<double>(cols.size()));
        row.push_back(TablePrinter::num(geo[s], 2));
        table.addRow(row);
    }
    table.print();

    auto saving = [&](Scheme s) {
        return (1.0 - geo[Scheme::Hoop] / geo[s]) * 100.0;
    };
    std::printf("paper-vs-measured energy savings of HOOP:\n");
    std::printf("  vs OSP: paper 37.6%%, measured %.1f%%\n",
                saving(Scheme::Osp));
    std::printf("  vs LSM: paper 29.6%%, measured %.1f%%\n",
                saving(Scheme::Lsm));
    std::printf("  vs LAD: paper 10.8%%, measured %.1f%%\n",
                saving(Scheme::Lad));

    BenchReport report("fig9_energy", cfg, tx_per_core);
    report.addCells(runner);
    report.write();
    return 0;
}
