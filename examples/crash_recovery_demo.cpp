/**
 * @file
 * Crash-recovery walkthrough: a persistent B-tree is grown in
 * failure-atomic transactions, power fails mid-insert, and HOOP's
 * multi-threaded recovery restores exactly the committed state —
 * including the B-tree's structural invariants.
 *
 * The crash is injected with System::scheduleCrashAfterStores, the
 * same hook the repository's property tests sweep over thousands of
 * crash points.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "workloads/registry.hh"

using namespace hoopnvm;

int
main()
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.homeBytes = miB(64);
    cfg.oopBytes = miB(8);
    cfg.auxBytes = miB(64) + miB(8);

    System sys(cfg, Scheme::Hoop);

    WorkloadParams params;
    params.valueBytes = 64;
    params.scale = 512;
    auto factory = makeWorkload("btree", params);
    std::vector<std::unique_ptr<Workload>> trees;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        trees.push_back(factory(sys, c));
        trees.back()->setup();
    }

    std::printf("growing two B-trees, 200 committed transactions "
                "each...\n");
    for (int i = 0; i < 200; ++i) {
        for (unsigned c = 0; c < cfg.numCores; ++c)
            trees[c]->runTransaction(i);
    }

    // Pull the plug 23 stores into the next batch — mid-insert, with
    // node splits potentially half-written in the caches.
    std::printf("power failure lands mid-transaction...\n");
    sys.scheduleCrashAfterStores(23);
    bool crashed = false;
    try {
        for (int i = 200; i < 240 && !crashed; ++i) {
            for (unsigned c = 0; c < cfg.numCores; ++c)
                trees[c]->runTransaction(i);
        }
    } catch (const SimCrash &) {
        crashed = true;
    }
    if (!crashed) {
        std::printf("crash point never hit\n");
        return 1;
    }

    sys.crash(); // caches and controller SRAM are gone
    const Tick t = sys.recover(/*threads=*/4);
    std::printf("recovery replayed the OOP region in %.2f modelled "
                "us using 4 threads\n",
                ticksToNs(t) / 1000.0);

    bool ok = true;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        const bool good = trees[c]->verify();
        std::printf("B-tree on core %u: %s (keys, order, payload "
                    "versions all checked)\n",
                    c, good ? "intact" : "CORRUPT");
        ok = ok && good;
    }
    std::printf(ok ? "the torn transaction vanished; every committed "
                     "insert survived\n"
                   : "ATOMIC DURABILITY VIOLATION\n");
    return ok ? 0 : 1;
}
