/**
 * @file
 * A persistent key-value store on HOOP: the YCSB scenario from the
 * paper's evaluation, driven by hand so the moving parts are visible.
 *
 * Eight cores each own a KvStore shard and run an 80/20 update/read
 * Zipfian mix in failure-atomic transactions, exactly like §IV-A's
 * setup; the demo then prints the controller-internal statistics that
 * explain where HOOP's efficiency comes from (packed slices, mapping
 * table hits, GC coalescing).
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "hoop/hoop_controller.hh"
#include "workloads/registry.hh"

using namespace hoopnvm;

int
main()
{
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.homeBytes = miB(128);
    cfg.oopBytes = miB(16);
    cfg.auxBytes = miB(128) + miB(16);

    System sys(cfg, Scheme::Hoop);

    WorkloadParams params;
    params.valueBytes = 1024; // 1 KB key-value pairs (paper §IV-A)
    params.scale = 2048;      // records per shard
    params.ycsbUpdateRatio = 0.8;
    params.ycsbTheta = 0.99;

    std::printf("running YCSB (80%% updates, Zipfian 0.99, 1 KB "
                "values) on %u cores...\n",
                cfg.numCores);
    const RunOutcome out =
        runWorkload(sys, makeWorkload("ycsb", params), 400);

    const RunMetrics &m = out.metrics;
    std::printf("verified: %s\n", out.verified ? "yes" : "NO");
    std::printf("throughput         : %.2f Mtx/s\n",
                m.txPerSecond / 1e6);
    std::printf("critical path      : %.0f ns/tx\n",
                m.avgCriticalPathNs);
    std::printf("NVM write traffic  : %.0f B/tx\n", m.bytesWrittenPerTx);
    std::printf("NVM energy         : %.1f nJ/tx\n",
                m.energyPj / 1e3 /
                    static_cast<double>(m.transactions));
    std::printf("LLC miss ratio     : %.1f%%\n",
                m.llcMissRatio * 100.0);

    auto &ctrl = static_cast<HoopController &>(sys.controller());
    std::printf("\nHOOP internals:\n");
    std::printf("  data slices written   : %llu\n",
                static_cast<unsigned long long>(
                    ctrl.stats().value("data_slices")));
    std::printf("  eviction slices       : %llu\n",
                static_cast<unsigned long long>(
                    ctrl.stats().value("evict_slices")));
    std::printf("  commit records        : %llu\n",
                static_cast<unsigned long long>(
                    ctrl.stats().value("addr_slices")));
    std::printf("  mapping-table hits    : %llu\n",
                static_cast<unsigned long long>(
                    ctrl.stats().value("mapping_hits")));
    std::printf("  parallel reads        : %llu\n",
                static_cast<unsigned long long>(
                    ctrl.stats().value("parallel_reads")));
    std::printf("  GC runs               : %llu\n",
                static_cast<unsigned long long>(
                    ctrl.gc().stats().value("runs")));
    std::printf("  GC data reduction     : %.1f%% of tx bytes never "
                "written home (paper Table IV)\n",
                ctrl.gc().dataReductionRatio() * 100.0);
    return out.verified ? 0 : 1;
}
