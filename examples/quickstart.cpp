/**
 * @file
 * Quickstart: build a HOOP system, run failure-atomic transactions
 * against simulated NVM, crash it, recover, and inspect the metrics.
 *
 *   $ ./quickstart
 *
 * This is the 5-minute tour of the public API: SystemConfig -> System
 * -> txBegin/store/load/txEnd -> crash/recover -> metrics.
 */

#include <cstdio>

#include "sim/system.hh"

using namespace hoopnvm;

int
main()
{
    // 1. Configure a machine (paper Table II defaults; shrink the
    // regions so the example starts instantly).
    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.homeBytes = miB(64);
    cfg.oopBytes = miB(8);
    cfg.auxBytes = miB(64) + miB(8);

    // 2. Build it with the HOOP persistence controller. Swap the
    // Scheme enum to compare against Opt-Redo, Opt-Undo, OSP, LSM,
    // LAD, or the Native (no-persistence) system.
    System sys(cfg, Scheme::Hoop);

    // 3. Allocate some persistent memory and run transactions.
    const Addr counters = sys.alloc(/*core=*/0, 8 * kWordSize);
    sys.beginMeasurement();
    for (std::uint64_t round = 0; round < 1000; ++round) {
        sys.txBegin(0);
        for (unsigned i = 0; i < 8; ++i) {
            const std::uint64_t v =
                sys.loadWord(0, counters + 8 * i);
            sys.storeWord(0, counters + 8 * i, v + 1);
        }
        sys.txEnd(0); // durability point: all 8 increments are atomic
    }
    sys.finalize();

    const RunMetrics m = sys.metrics();
    std::printf("ran %llu transactions in %.2f simulated us\n",
                static_cast<unsigned long long>(m.transactions),
                ticksToNs(m.simTicks) / 1000.0);
    std::printf("  throughput        : %.2f Mtx/s\n",
                m.txPerSecond / 1e6);
    std::printf("  avg critical path : %.0f ns\n",
                m.avgCriticalPathNs);
    std::printf("  NVM bytes written : %llu (%.0f per tx)\n",
                static_cast<unsigned long long>(m.nvmBytesWritten),
                m.bytesWrittenPerTx);

    // 4. Pull the plug. Caches and controller SRAM vanish; the OOP
    // region survives.
    sys.txBegin(0);
    sys.storeWord(0, counters, 999999); // never committed
    sys.crash();

    const Tick rec = sys.recover(/*threads=*/4);
    std::printf("recovered in %.2f modelled us\n",
                ticksToNs(rec) / 1000.0);

    // 5. Committed state is intact; the torn transaction is gone.
    for (unsigned i = 0; i < 8; ++i) {
        const std::uint64_t v = sys.debugLoadWord(counters + 8 * i);
        if (v != 1000) {
            std::printf("FAILURE: counter %u = %llu (expected 1000)\n",
                        i, static_cast<unsigned long long>(v));
            return 1;
        }
    }
    std::printf("all 8 counters read 1000 after recovery: atomic "
                "durability holds\n");
    return 0;
}
