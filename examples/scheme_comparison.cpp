/**
 * @file
 * Side-by-side comparison of all seven systems (HOOP, the five
 * reconstructed baselines, and the Ideal native machine) on one
 * workload — a miniature of the paper's Figs. 7/8 in a single run.
 *
 *   $ ./scheme_comparison [workload]    (default: hashmap)
 */

#include <cstdio>
#include <string>

#include "stats/table.hh"
#include "workloads/registry.hh"

using namespace hoopnvm;

int
main(int argc, char **argv)
{
    const std::string wl = argc > 1 ? argv[1] : "hashmap";

    SystemConfig cfg;
    cfg.numCores = 4;
    cfg.homeBytes = miB(128);
    cfg.oopBytes = miB(16);
    cfg.auxBytes = miB(128) + miB(16);

    WorkloadParams params;
    params.valueBytes = 64;
    params.scale = 1024;

    std::printf("comparing schemes on '%s' (%u cores, 300 tx/core)\n\n",
                wl.c_str(), cfg.numCores);

    TablePrinter table("scheme comparison");
    table.setHeader({"scheme", "Mtx/s", "critical path ns",
                     "NVM B/tx", "energy nJ/tx", "verified"});

    for (Scheme s : kAllSchemes) {
        System sys(cfg, s);
        const RunOutcome out =
            runWorkload(sys, makeWorkload(wl, params), 300);
        const RunMetrics &m = out.metrics;
        table.addRow(
            {schemeName(s), TablePrinter::num(m.txPerSecond / 1e6, 2),
             TablePrinter::num(m.avgCriticalPathNs, 0),
             TablePrinter::num(m.bytesWrittenPerTx, 0),
             TablePrinter::num(m.energyPj / 1e3 /
                                   static_cast<double>(m.transactions),
                               1),
             out.verified ? "yes" : "NO"});
    }
    table.print();
    std::printf("HOOP should lead every persistent scheme on "
                "throughput while staying closest to Ideal.\n");
    return 0;
}
