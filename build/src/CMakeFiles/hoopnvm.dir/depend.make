# Empty dependencies file for hoopnvm.
# This may be replaced when dependencies are built.
