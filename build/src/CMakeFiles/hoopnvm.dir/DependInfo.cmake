
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/lad_controller.cc" "src/CMakeFiles/hoopnvm.dir/baselines/lad_controller.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/baselines/lad_controller.cc.o.d"
  "/root/repo/src/baselines/log_region.cc" "src/CMakeFiles/hoopnvm.dir/baselines/log_region.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/baselines/log_region.cc.o.d"
  "/root/repo/src/baselines/lsm_controller.cc" "src/CMakeFiles/hoopnvm.dir/baselines/lsm_controller.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/baselines/lsm_controller.cc.o.d"
  "/root/repo/src/baselines/osp_controller.cc" "src/CMakeFiles/hoopnvm.dir/baselines/osp_controller.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/baselines/osp_controller.cc.o.d"
  "/root/repo/src/baselines/redo_controller.cc" "src/CMakeFiles/hoopnvm.dir/baselines/redo_controller.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/baselines/redo_controller.cc.o.d"
  "/root/repo/src/baselines/skiplist.cc" "src/CMakeFiles/hoopnvm.dir/baselines/skiplist.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/baselines/skiplist.cc.o.d"
  "/root/repo/src/baselines/undo_controller.cc" "src/CMakeFiles/hoopnvm.dir/baselines/undo_controller.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/baselines/undo_controller.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/hoopnvm.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/common/rng.cc.o.d"
  "/root/repo/src/common/zipfian.cc" "src/CMakeFiles/hoopnvm.dir/common/zipfian.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/common/zipfian.cc.o.d"
  "/root/repo/src/controller/native_controller.cc" "src/CMakeFiles/hoopnvm.dir/controller/native_controller.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/controller/native_controller.cc.o.d"
  "/root/repo/src/controller/persistence_controller.cc" "src/CMakeFiles/hoopnvm.dir/controller/persistence_controller.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/controller/persistence_controller.cc.o.d"
  "/root/repo/src/hoop/eviction_buffer.cc" "src/CMakeFiles/hoopnvm.dir/hoop/eviction_buffer.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/hoop/eviction_buffer.cc.o.d"
  "/root/repo/src/hoop/garbage_collector.cc" "src/CMakeFiles/hoopnvm.dir/hoop/garbage_collector.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/hoop/garbage_collector.cc.o.d"
  "/root/repo/src/hoop/hoop_controller.cc" "src/CMakeFiles/hoopnvm.dir/hoop/hoop_controller.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/hoop/hoop_controller.cc.o.d"
  "/root/repo/src/hoop/mapping_table.cc" "src/CMakeFiles/hoopnvm.dir/hoop/mapping_table.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/hoop/mapping_table.cc.o.d"
  "/root/repo/src/hoop/memory_slice.cc" "src/CMakeFiles/hoopnvm.dir/hoop/memory_slice.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/hoop/memory_slice.cc.o.d"
  "/root/repo/src/hoop/multi_controller.cc" "src/CMakeFiles/hoopnvm.dir/hoop/multi_controller.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/hoop/multi_controller.cc.o.d"
  "/root/repo/src/hoop/oop_data_buffer.cc" "src/CMakeFiles/hoopnvm.dir/hoop/oop_data_buffer.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/hoop/oop_data_buffer.cc.o.d"
  "/root/repo/src/hoop/oop_region.cc" "src/CMakeFiles/hoopnvm.dir/hoop/oop_region.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/hoop/oop_region.cc.o.d"
  "/root/repo/src/hoop/recovery.cc" "src/CMakeFiles/hoopnvm.dir/hoop/recovery.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/hoop/recovery.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/hoopnvm.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/cache_hierarchy.cc" "src/CMakeFiles/hoopnvm.dir/mem/cache_hierarchy.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/mem/cache_hierarchy.cc.o.d"
  "/root/repo/src/nvm/energy_model.cc" "src/CMakeFiles/hoopnvm.dir/nvm/energy_model.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/nvm/energy_model.cc.o.d"
  "/root/repo/src/nvm/nvm_device.cc" "src/CMakeFiles/hoopnvm.dir/nvm/nvm_device.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/nvm/nvm_device.cc.o.d"
  "/root/repo/src/sim/core.cc" "src/CMakeFiles/hoopnvm.dir/sim/core.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/sim/core.cc.o.d"
  "/root/repo/src/sim/system.cc" "src/CMakeFiles/hoopnvm.dir/sim/system.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/sim/system.cc.o.d"
  "/root/repo/src/sim/system_config.cc" "src/CMakeFiles/hoopnvm.dir/sim/system_config.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/sim/system_config.cc.o.d"
  "/root/repo/src/stats/stat_set.cc" "src/CMakeFiles/hoopnvm.dir/stats/stat_set.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/stats/stat_set.cc.o.d"
  "/root/repo/src/stats/table.cc" "src/CMakeFiles/hoopnvm.dir/stats/table.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/stats/table.cc.o.d"
  "/root/repo/src/txn/sim_allocator.cc" "src/CMakeFiles/hoopnvm.dir/txn/sim_allocator.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/txn/sim_allocator.cc.o.d"
  "/root/repo/src/workloads/btree_wl.cc" "src/CMakeFiles/hoopnvm.dir/workloads/btree_wl.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/workloads/btree_wl.cc.o.d"
  "/root/repo/src/workloads/hashmap_wl.cc" "src/CMakeFiles/hoopnvm.dir/workloads/hashmap_wl.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/workloads/hashmap_wl.cc.o.d"
  "/root/repo/src/workloads/kv_store.cc" "src/CMakeFiles/hoopnvm.dir/workloads/kv_store.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/workloads/kv_store.cc.o.d"
  "/root/repo/src/workloads/queue_wl.cc" "src/CMakeFiles/hoopnvm.dir/workloads/queue_wl.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/workloads/queue_wl.cc.o.d"
  "/root/repo/src/workloads/rbtree_wl.cc" "src/CMakeFiles/hoopnvm.dir/workloads/rbtree_wl.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/workloads/rbtree_wl.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/hoopnvm.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/tpcc.cc" "src/CMakeFiles/hoopnvm.dir/workloads/tpcc.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/workloads/tpcc.cc.o.d"
  "/root/repo/src/workloads/vector_wl.cc" "src/CMakeFiles/hoopnvm.dir/workloads/vector_wl.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/workloads/vector_wl.cc.o.d"
  "/root/repo/src/workloads/ycsb.cc" "src/CMakeFiles/hoopnvm.dir/workloads/ycsb.cc.o" "gcc" "src/CMakeFiles/hoopnvm.dir/workloads/ycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
