file(REMOVE_RECURSE
  "libhoopnvm.a"
)
