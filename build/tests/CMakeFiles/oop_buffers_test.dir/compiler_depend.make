# Empty compiler generated dependencies file for oop_buffers_test.
# This may be replaced when dependencies are built.
