file(REMOVE_RECURSE
  "CMakeFiles/oop_buffers_test.dir/oop_buffers_test.cc.o"
  "CMakeFiles/oop_buffers_test.dir/oop_buffers_test.cc.o.d"
  "oop_buffers_test"
  "oop_buffers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oop_buffers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
