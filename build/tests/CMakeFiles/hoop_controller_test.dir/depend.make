# Empty dependencies file for hoop_controller_test.
# This may be replaced when dependencies are built.
