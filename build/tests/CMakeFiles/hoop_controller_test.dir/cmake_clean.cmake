file(REMOVE_RECURSE
  "CMakeFiles/hoop_controller_test.dir/hoop_controller_test.cc.o"
  "CMakeFiles/hoop_controller_test.dir/hoop_controller_test.cc.o.d"
  "hoop_controller_test"
  "hoop_controller_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoop_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
