file(REMOVE_RECURSE
  "CMakeFiles/mapping_table_test.dir/mapping_table_test.cc.o"
  "CMakeFiles/mapping_table_test.dir/mapping_table_test.cc.o.d"
  "mapping_table_test"
  "mapping_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
