file(REMOVE_RECURSE
  "CMakeFiles/multi_controller_test.dir/multi_controller_test.cc.o"
  "CMakeFiles/multi_controller_test.dir/multi_controller_test.cc.o.d"
  "multi_controller_test"
  "multi_controller_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
