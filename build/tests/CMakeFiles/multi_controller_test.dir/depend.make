# Empty dependencies file for multi_controller_test.
# This may be replaced when dependencies are built.
