file(REMOVE_RECURSE
  "CMakeFiles/system_integration_test.dir/system_integration_test.cc.o"
  "CMakeFiles/system_integration_test.dir/system_integration_test.cc.o.d"
  "system_integration_test"
  "system_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
