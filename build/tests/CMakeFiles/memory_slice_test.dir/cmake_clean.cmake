file(REMOVE_RECURSE
  "CMakeFiles/memory_slice_test.dir/memory_slice_test.cc.o"
  "CMakeFiles/memory_slice_test.dir/memory_slice_test.cc.o.d"
  "memory_slice_test"
  "memory_slice_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_slice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
