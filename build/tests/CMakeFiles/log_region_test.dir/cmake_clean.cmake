file(REMOVE_RECURSE
  "CMakeFiles/log_region_test.dir/log_region_test.cc.o"
  "CMakeFiles/log_region_test.dir/log_region_test.cc.o.d"
  "log_region_test"
  "log_region_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
