# Empty dependencies file for cache_hierarchy_test.
# This may be replaced when dependencies are built.
