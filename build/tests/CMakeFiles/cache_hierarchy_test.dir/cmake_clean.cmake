file(REMOVE_RECURSE
  "CMakeFiles/cache_hierarchy_test.dir/cache_hierarchy_test.cc.o"
  "CMakeFiles/cache_hierarchy_test.dir/cache_hierarchy_test.cc.o.d"
  "cache_hierarchy_test"
  "cache_hierarchy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
