file(REMOVE_RECURSE
  "CMakeFiles/oop_region_test.dir/oop_region_test.cc.o"
  "CMakeFiles/oop_region_test.dir/oop_region_test.cc.o.d"
  "oop_region_test"
  "oop_region_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oop_region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
