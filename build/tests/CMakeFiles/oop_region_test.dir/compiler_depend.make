# Empty compiler generated dependencies file for oop_region_test.
# This may be replaced when dependencies are built.
