# Empty dependencies file for bench_fig13_mapping_table.
# This may be replaced when dependencies are built.
