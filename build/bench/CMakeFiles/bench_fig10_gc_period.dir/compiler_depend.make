# Empty compiler generated dependencies file for bench_fig10_gc_period.
# This may be replaced when dependencies are built.
