file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_gc_period.dir/bench_fig10_gc_period.cc.o"
  "CMakeFiles/bench_fig10_gc_period.dir/bench_fig10_gc_period.cc.o.d"
  "bench_fig10_gc_period"
  "bench_fig10_gc_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_gc_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
