#include "hoop/eviction_buffer.hh"

#include <cstring>

#include "common/logging.hh"

namespace hoopnvm
{

EvictionBuffer::EvictionBuffer(std::uint64_t bytes)
    : entries(static_cast<std::size_t>(bytes / kEntryBytes))
{
    HOOP_ASSERT(!entries.empty(), "eviction buffer too small");
    index.reserve(entries.size());
}

void
EvictionBuffer::put(Addr line, const std::uint8_t *data)
{
    auto it = index.find(line);
    if (it != index.end()) {
        std::memcpy(entries[it->second].data.data(), data,
                    kCacheLineSize);
        return;
    }
    Entry &e = entries[nextSlot];
    if (e.valid)
        index.erase(e.addr);
    e.valid = true;
    e.addr = line;
    std::memcpy(e.data.data(), data, kCacheLineSize);
    index[line] = nextSlot;
    nextSlot = (nextSlot + 1) % entries.size();
}

bool
EvictionBuffer::get(Addr line, std::uint8_t *out) const
{
    auto it = index.find(line);
    if (it == index.end())
        return false;
    std::memcpy(out, entries[it->second].data.data(), kCacheLineSize);
    ++hits_;
    return true;
}

void
EvictionBuffer::invalidate(Addr line)
{
    auto it = index.find(line);
    if (it == index.end())
        return;
    entries[it->second].valid = false;
    entries[it->second].addr = kInvalidAddr;
    index.erase(it);
}

void
EvictionBuffer::clear()
{
    for (auto &e : entries)
        e = Entry{};
    index.clear();
    nextSlot = 0;
}

} // namespace hoopnvm
