/**
 * @file
 * Per-core OOP data buffer (paper §III-C).
 *
 * Each core owns a small staging buffer in the memory controller
 * (1 KB default). Transactional stores deposit updated words here at
 * word granularity; when eight words are packed the controller flushes
 * them to the OOP region as one memory slice (data packing, Fig. 3).
 * Repeated updates to the same word within the assembling slice are
 * combined in place, which is where much of HOOP's write-traffic
 * saving on metadata-heavy workloads comes from.
 */

#ifndef HOOPNVM_HOOP_OOP_DATA_BUFFER_HH
#define HOOPNVM_HOOP_OOP_DATA_BUFFER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "hoop/memory_slice.hh"

namespace hoopnvm
{

/** Words being packed into the next memory slice of one core. */
struct PendingSlice
{
    std::uint8_t count = 0;
    std::array<std::uint64_t, MemorySlice::kMaxWords> words{};
    std::array<Addr, MemorySlice::kMaxWords> addrs{};
};

/** The controller's per-core word-packing stage. */
class OopDataBuffer
{
  public:
    /**
     * @param n_cores        Number of per-core buffer entries.
     * @param bytes_per_core Modelled SRAM per core (capacity check).
     * @param packing        When false (ablation), every word is
     *                       emitted as its own slice — modelling a
     *                       controller without data packing.
     */
    OopDataBuffer(unsigned n_cores, std::uint64_t bytes_per_core,
                  bool packing);

    /**
     * Deposit one updated word for @p core's running transaction.
     * @return true when the assembling slice is now full and must be
     *         flushed by the caller.
     */
    bool addWord(CoreId core, Addr word_addr, std::uint64_t value);

    /** True if @p core has words awaiting a flush. */
    bool hasPending(CoreId core) const;

    /** Remove and return @p core's assembling slice. */
    PendingSlice take(CoreId core);

    /** Discard @p core's assembling slice (crash model). */
    void clear(CoreId core);

    /** Discard every core's state (crash model). */
    void clearAll();

    /** Words combined into an already-buffered slot so far. */
    std::uint64_t combinedWords() const { return combinedWords_; }

  private:
    std::vector<PendingSlice> pending;
    bool packing;
    std::uint64_t combinedWords_ = 0;
};

} // namespace hoopnvm

#endif // HOOPNVM_HOOP_OOP_DATA_BUFFER_HH
