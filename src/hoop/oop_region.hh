/**
 * @file
 * The log-structured OOP region (paper §III-D, Fig. 5a).
 *
 * The region is divided into fixed-size OOP blocks (2 MB by default).
 * Slot 0 of every block holds the block header (index, state, open
 * sequence number, next-block link); the remaining slots hold 128-byte
 * memory slices. Blocks are allocated round-robin so all of them age
 * uniformly (wear leveling), and a block index table records which
 * blocks are live — recovery only scans blocks named by that table.
 *
 * The region keeps a host-side mirror of per-block bookkeeping (state,
 * write pointer, which transactions own slices in the block) purely as
 * an acceleration: everything needed for crash recovery is re-derivable
 * from NVM bytes, which the recovery tests exercise.
 */

#ifndef HOOPNVM_HOOP_OOP_REGION_HH
#define HOOPNVM_HOOP_OOP_REGION_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/flat_map.hh"
#include "common/types.hh"
#include "hoop/memory_slice.hh"
#include "nvm/nvm_device.hh"
#include "nvm/retirement_map.hh"
#include "sim/system_config.hh"
#include "stats/stat_set.hh"

namespace hoopnvm
{

class OrderingTracker;

/** State of an OOP block (paper's BLK_* states + runtime retirement). */
enum class BlockState : std::uint8_t
{
    Unused = 0,
    InUse = 1,
    Full = 2,
    Gc = 3,

    /**
     * Retired: the block's cells exhausted the media-tolerance budget
     * (program-verify failures / uncorrectable reads past the
     * configured fraction). Never allocated again; recovery skips it
     * via the persisted retirement bitmap.
     */
    Bad = 4,
};

/** Host-side mirror of one OOP block's bookkeeping. */
struct OopBlockInfo
{
    BlockState state = BlockState::Unused;

    /** Next free slice slot (1-based; slot 0 is the header). */
    std::uint32_t writePtr = 1;

    /** Sequence number when the block was last opened. */
    std::uint64_t openSeq = 0;

    /** Slice slots that failed program-verify in this life of the block. */
    std::uint32_t badSlots = 0;

    /**
     * Degraded past the retirement threshold: GC migrates survivors
     * out and retires the block instead of recycling it.
     */
    bool retirePending = false;

    /**
     * Distinct transactions owning slices (incl. commit records) in
     * the block, in first-noted order. Uniqueness is enforced by
     * noteSliceTx via the per-tx block list, so this is a plain
     * append-only vector rather than a hash set.
     */
    std::vector<TxId> txs;
};

/** Decoded view of an on-NVM block header (used by recovery). */
struct BlockHeaderView
{
    bool valid = false;
    BlockState state = BlockState::Unused;
    std::uint64_t openSeq = 0;

    /** Magic matched but the header CRC did not (torn/corrupt). */
    bool crcFailed = false;
};

/** Allocator and accessor for the log-structured OOP region. */
class OopRegion
{
  public:
    OopRegion(NvmDevice &nvm, const SystemConfig &cfg);

    /** Number of blocks in the region. */
    std::uint32_t numBlocks() const { return numBlocks_; }

    /** Slice slots per block (excluding the header slot). */
    std::uint32_t slicesPerBlock() const { return slicesPerBlock_; }

    /** Blocks currently in state Unused. */
    std::uint32_t freeBlocks() const;

    /**
     * Allocate the next slice slot, opening a fresh block round-robin
     * when the current one fills (the filled block becomes BLK_FULL).
     * @param[out] idx      Global slice index of the allocated slot.
     * @param[in,out] now   Advanced past any header-write traffic.
     * @return false if no block is available (caller must GC).
     */
    bool allocSlice(std::uint32_t &idx, Tick now);

    /** NVM byte address of slice @p idx. */
    Addr sliceAddr(std::uint32_t idx) const;

    /** Block containing slice @p idx. */
    std::uint32_t
    blockOfSlice(std::uint32_t idx) const
    {
        return idx / (slicesPerBlock_ + 1);
    }

    /** Encode and write @p slice to slot @p idx; returns completion. */
    Tick writeSlice(Tick now, std::uint32_t idx, const MemorySlice &s);

    /** Timed read+decode of slot @p idx. */
    MemorySlice readSlice(Tick now, std::uint32_t idx,
                          Tick *completion = nullptr);

    /** Untimed read+decode (verification and recovery replay). */
    MemorySlice peekSlice(std::uint32_t idx) const;

    /** Untimed decode of block @p b's on-NVM header (recovery). */
    BlockHeaderView peekHeader(std::uint32_t b) const;

    /** Close the currently open block, marking it Full (drain/GC). */
    void closeCurrentBlock(Tick now);

    /**
     * Record that @p tx owns a slice in @p idx's block. Inline fast
     * path: emitSlice calls this once per slice, and almost every call
     * repeats a (block, tx) pair the memo already holds.
     */
    void
    noteSliceTx(std::uint32_t idx, TxId tx)
    {
        const std::uint32_t b = blockOfSlice(idx);
        const std::size_t h = static_cast<std::size_t>(tx) % kNoteWays;
        if (noteBlock_[h] == b && noteTx_[h] == tx)
            return;
        noteSliceTxSlow(b, tx);
        noteBlock_[h] = b;
        noteTx_[h] = tx;
    }

    OopBlockInfo &block(std::uint32_t b) { return blocks[b]; }
    const OopBlockInfo &block(std::uint32_t b) const { return blocks[b]; }

    /** Blocks that still hold slices of transaction @p tx. */
    std::vector<std::uint32_t> txBlocks(TxId tx) const;

    /** Forget transaction @p tx in all block bookkeeping (GC retire). */
    void retireTx(TxId tx);

    /** Transition @p b to @p state, persisting the header (timed). */
    void setBlockState(std::uint32_t b, BlockState state, Tick now);

    /** Reset the whole region to Unused (end of recovery). */
    void reset();

    /**
     * Durable GC watermark: every block whose openSeq is below it had
     * its committed words migrated home and fenced before the
     * watermark was written, so recovery must treat such a block as
     * recycled even if its header still reads live (a torn recycle
     * header can revert wholesale to the previous, self-consistent
     * header — the CRC cannot tell a resurrected block from a live
     * one, but the watermark can).
     */
    std::uint64_t gcWatermark() const;

    /**
     * Persist the watermark (timed). A single 8-byte word: torn-write
     * injection reverts whole words, so a torn watermark is the
     * previous watermark — monotonic and always safe.
     */
    Tick writeGcWatermark(std::uint64_t seq, Tick now);

    /** Restore the global sequence counter after recovery. */
    void setNextSeq(std::uint64_t seq) { nextSeq_ = seq; }

    /** Allocate the next global slice sequence number. */
    std::uint64_t allocSeq() { return nextSeq_++; }

    /** Base NVM address of block @p b. */
    Addr blockBase(std::uint32_t b) const;

    // ---- Runtime fault tolerance (inert unless cfg.ft.enabled) ----

    /** Attach the ordering analyzer for retirement-rule tagging. */
    void setOrdering(OrderingTracker *t) { ordering_ = t; }

    /** True when the retirement machinery is active. */
    bool faultToleranceEnabled() const { return retireMap_.attached(); }

    /** Program-verify: slice slot @p idx sits on uncorrectable cells. */
    bool slotUncorrectable(std::uint32_t idx) const;

    /** Blocks retired so far (durably recorded). */
    std::uint64_t retiredBlocks() const { return retireMap_.retiredCount(); }

    /** Blocks still usable (total minus retired). */
    std::uint32_t
    usableBlocks() const
    {
        return numBlocks_ -
               static_cast<std::uint32_t>(retireMap_.retiredCount());
    }

    /** Fraction of OOP capacity lost to retirement, in [0, 1]. */
    double
    degradedFraction() const
    {
        return static_cast<double>(retireMap_.retiredCount()) /
               static_cast<double>(numBlocks_);
    }

    /**
     * Retire block @p b: mark it Bad (persisted header), set its bit in
     * the durable retirement bitmap, and fence the bitmap write before
     * returning — callers may act on the retirement (reuse the capacity
     * accounting, ack transactions) only after the fence, a contract
     * declared to the analyzer as the "hoop-retire-bitmap" rule. The
     * caller must already have migrated any live data out (GC).
     * @return The fenced completion tick.
     */
    Tick retireBlock(std::uint32_t b, Tick now);

    /**
     * Adopt the durable retirement bitmap into the host mirror (start
     * of recovery): retired blocks become Bad and are never scanned,
     * allocated, or collected again.
     */
    void loadRetirement();

    StatSet &stats() { return stats_; }

  private:
    /** Persist block @p b's header (timed, background). */
    void writeHeader(std::uint32_t b, Tick now);

    /** Find and open an Unused block; returns false if none. */
    bool openNextBlock(Tick now);

    NvmDevice &nvm;
    const SystemConfig &cfg;
    StatSet stats_;

    // Hot-path counters resolved once; StatSet references stay valid
    // for the StatSet's lifetime.
    Counter &headerWritesC_;
    Counter &blocksOpenedC_;
    Counter &sliceWritesC_;
    Counter &sliceReadsC_;
    Counter &slotsSkippedBadC_;
    Counter &blocksRetiredC_;

    std::uint32_t numBlocks_;
    std::uint32_t slicesPerBlock_;
    std::vector<OopBlockInfo> blocks;

    /**
     * Blocks holding slices of one transaction. Nearly every
     * transaction's chain spans one or two blocks, so the list is
     * inline in the map value (no per-node allocation, one probe to
     * test membership); the rare transaction that outgrows it — and
     * any tx id that cannot be a FlatMap key — spills to txSpill_,
     * marked by n == kSpilled.
     */
    struct TxBlockList
    {
        static constexpr std::uint8_t kInlineBlocks = 8;
        static constexpr std::uint8_t kSpilled = 0xff;
        std::array<std::uint32_t, kInlineBlocks> b;
        std::uint8_t n;
    };
    FlatMap<TxBlockList> txBlocks_;
    std::unordered_map<TxId, std::unordered_set<std::uint32_t>>
        txSpill_;

    /** Record a (block, tx) pair the memo does not hold. */
    void noteSliceTxSlow(std::uint32_t b, TxId tx);

    /** Drop block @p b from @p tx's block list (block recycle). */
    void dropTxBlock(TxId tx, std::uint32_t b);

    /**
     * Direct-mapped memo of recently recorded (block, tx) pairs,
     * indexed by tx. Concurrent cores interleave their transactions'
     * slices in the open block, so a single-entry memo thrashes on
     * the alternation; one way per active transaction (mod kNoteWays)
     * catches nearly every repeat. A tx can only sit in its own way,
     * and kInvalidTxId marks a way empty (no real transaction carries
     * that id). Invalidated wherever a pair can be removed (retireTx,
     * block recycle/retire, reset).
     */
    static constexpr std::size_t kNoteWays = 8;
    std::array<std::uint32_t, kNoteWays> noteBlock_{};
    std::array<TxId, kNoteWays> noteTx_{};

    /** Block currently accepting slices; kNoBlock when none open. */
    static constexpr std::uint32_t kNoBlock = 0xffffffffu;
    std::uint32_t currentBlock = kNoBlock;

    /** Round-robin allocation cursor (wear leveling, §III-D). */
    std::uint32_t allocCursor = 0;

    std::uint64_t nextSeq_ = 1;

    /** Durable bad-block bitmap (attached only when cfg.ft.enabled). */
    RetirementMap retireMap_;

    OrderingTracker *ordering_ = nullptr;
};

} // namespace hoopnvm

#endif // HOOPNVM_HOOP_OOP_REGION_HH
