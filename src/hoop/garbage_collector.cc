#include "hoop/garbage_collector.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>
#include <vector>

#include "common/flat_map.hh"
#include "common/host_profiler.hh"
#include "common/logging.hh"
#include "hoop/hoop_controller.hh"
#include "stats/trace.hh"

namespace hoopnvm
{

GarbageCollector::GarbageCollector(HoopController &ctrl_)
    : ctrl(ctrl_), stats_("gc"),
      noopRunsC_(stats_.counter("noop_runs")),
      runsC_(stats_.counter("runs")),
      slicesScannedC_(stats_.counter("slices_scanned")),
      slicesCrcSkippedC_(stats_.counter("slices_crc_skipped")),
      homeLinesWrittenC_(stats_.counter("home_lines_written")),
      homeLinesSkippedFresherC_(
          stats_.counter("home_lines_skipped_fresher")),
      mappingEntriesDroppedC_(
          stats_.counter("mapping_entries_dropped")),
      blocksRecycledC_(stats_.counter("blocks_recycled")),
      pauseH_(ctrl_.stats().histogram("maint_pause_ticks"))
{
}

double
GarbageCollector::dataReductionRatio() const
{
    const std::uint64_t modified = ctrl.txModifiedBytes();
    if (modified == 0)
        return 0.0;
    const double written = static_cast<double>(migratedWordBytes_);
    return 1.0 - written / static_cast<double>(modified);
}

Tick
GarbageCollector::run(Tick now)
{
    HostTimer host_timer(HostProfiler::kGc);
    OopRegion &region = ctrl.region_;
    const std::uint32_t n_blocks = region.numBlocks();

    // ---- Step 1: candidate selection ----
    // Slices are written in global sequence order, and a block opened
    // later holds strictly newer slices than one opened earlier. GC
    // therefore collects a *prefix* of the live blocks in allocation
    // order: after migration, every surviving slice is newer than the
    // home-region baseline, which keeps both reads and recovery
    // correct without per-address bookkeeping. The prefix stops at the
    // first block that is still in use or holds an open transaction.
    std::vector<std::uint32_t> live;
    for (std::uint32_t b = 0; b < n_blocks; ++b) {
        // Bad blocks are retired capacity: nothing to collect, never
        // recycled — including them would wedge the prefix forever.
        if (region.block(b).state != BlockState::Unused &&
            region.block(b).state != BlockState::Bad)
            live.push_back(b);
    }
    std::sort(live.begin(), live.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return region.block(a).openSeq <
                         region.block(b).openSeq;
              });

    std::vector<std::uint32_t> cand;
    std::vector<bool> in_cand(n_blocks, false);
    for (std::uint32_t b : live) {
        if (region.block(b).state != BlockState::Full)
            break;
        bool all_committed = true;
        for (TxId tx : region.block(b).txs) {
            if (!ctrl.isCommitted(tx)) {
                all_committed = false;
                break;
            }
        }
        if (!all_committed)
            break;
        cand.push_back(b);
        in_cand[b] = true;
    }

    if (cand.empty()) {
        ++noopRunsC_;
        return now;
    }
    ++runsC_;

    // Trace lane: one synthetic tid past the last core.
    TraceBuffer *const tr = ctrl.trace();
    const unsigned gc_tid = ctrl.cfg.numCores;

    // ---- Step 2: scan committed slices and coalesce (Algorithm 1) ----
    // Coalesce at line granularity: one open-addressed probe per word
    // into a per-line accumulator (8 seq/value pairs plus a presence
    // mask) instead of a hash-map node per word plus a second
    // tree-of-lines grouping pass. Slice seqs start at 1, so the
    // value-initialized seqs[] == 0 means "no update yet" and the
    // original per-word max-seq-wins rule carries over unchanged.
    struct LineAcc
    {
        std::uint64_t seqs[kWordsPerLine];
        std::uint64_t vals[kWordsPerLine];
        std::uint8_t mask;
    };
    FlatMap<LineAcc> coalesced;
    // Packing fills slices with spatially adjacent words, so
    // consecutive words usually hit the same line: memoize the last
    // accumulator to skip the probe. The pointer stays valid between
    // reassignments — the table can only grow on a new-line insert,
    // which is exactly when the memo is refreshed.
    Addr memo_line = kInvalidAddr;
    LineAcc *memo_acc = nullptr;
    struct RawWord
    {
        std::uint64_t seq;
        Addr addr;
        std::uint64_t value;
    };
    std::vector<RawWord> raw; // used only when coalescing is disabled

    Tick last = now;
    for (std::uint32_t b : cand) {
        // Crash point: between marking blocks as under-GC. A block left
        // in the Gc state is still scanned by recovery, so no slice is
        // lost.
        ctrl.crashStep(CrashPointKind::GcStep);
        region.setBlockState(b, BlockState::Gc, now);
        const std::uint32_t used = region.block(b).writePtr;
        for (std::uint32_t slot = 1; slot < used; ++slot) {
            const std::uint32_t idx =
                b * (region.slicesPerBlock() + 1) + slot;
            Tick done;
            const MemorySlice s = region.readSlice(now, idx, &done);
            last = std::max(last, done);
            ++slicesScannedC_;
            if (!s.crcOk) {
                // A media fault corrupted this slice in place: none of
                // its fields can be trusted, so its words cannot be
                // migrated. Count the loss and move on — the home copy
                // (whatever it holds) is the best surviving version.
                ++slicesCrcSkippedC_;
                continue;
            }
            if (!s.carriesWords())
                continue;
            // Every tx in a candidate block was verified committed by
            // the all_committed check in step 1 (noteSliceTx records
            // each slice's tx in its block), so no per-slice
            // isCommitted probe is needed here.
            scannedWordBytes_ +=
                static_cast<std::uint64_t>(s.count) * kWordSize;
            for (unsigned i = 0; i < s.count; ++i) {
                if (ctrl.cfg.gcCoalescing) {
                    const Addr a = s.homeAddrs[i];
                    const Addr la = lineAddr(a);
                    if (la != memo_line) {
                        memo_acc = &coalesced[la];
                        memo_line = la;
                    }
                    LineAcc &g = *memo_acc;
                    const unsigned w =
                        static_cast<unsigned>((a - la) / kWordSize);
                    if (s.seq >= g.seqs[w]) {
                        g.seqs[w] = s.seq;
                        g.vals[w] = s.words[i];
                        g.mask |= static_cast<std::uint8_t>(1u << w);
                    }
                } else {
                    raw.push_back({s.seq, s.homeAddrs[i], s.words[i]});
                }
            }
        }
    }

    const Tick scan_done = last;
    if (tr)
        tr->span("gc.scan", "gc", gc_tid, now, scan_done);

    // ---- Step 3: migrate to the home region ----
    if (ctrl.cfg.gcCoalescing) {
        // Each accumulated line is written home once, in ascending
        // line-address order — the same order the previous tree-of-
        // lines pass produced, so write timing, crash points and the
        // eviction-buffer contents are bit-identical.
        // Copy the accumulators out alongside their line addresses:
        // the migration loop then streams through a sorted array
        // instead of re-probing the hash table once per line (each
        // probe is a dependent random access into a table far larger
        // than the host LLC).
        std::vector<std::pair<Addr, LineAcc>> lines;
        lines.reserve(coalesced.size());
        coalesced.forEach([&](Addr line, const LineAcc &g) {
            lines.emplace_back(line, g);
        });
        std::sort(lines.begin(), lines.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        for (const auto &[line, g] : lines) {
            std::uint64_t max_seq = 0;
            for (std::size_t w = 0; w < kWordsPerLine; ++w) {
                if (g.mask & (1u << w))
                    max_seq = std::max(max_seq, g.seqs[w]);
            }
            // Crash point: between home-line migration writes. The
            // source blocks are not recycled until after the fence
            // below, so recovery can always redo a torn migration.
            ctrl.crashStep(CrashPointKind::GcStep);
            // Skip lines whose home copy is already newer (a committed
            // eviction wrote the full line in place after these slices
            // were produced) — GC must never regress the home region.
            if (!ctrl.homeFresherThan(line, max_seq)) {
                std::uint8_t buf[kCacheLineSize];
                last = std::max(last, ctrl.nvm_.read(now, line, buf,
                                                     kCacheLineSize));
                for (std::size_t w = 0; w < kWordsPerLine; ++w) {
                    if (g.mask & (1u << w)) {
                        std::memcpy(buf + w * kWordSize, &g.vals[w],
                                    kWordSize);
                    }
                }
                last = std::max(last,
                                ctrl.writeHomeLine(now, line, buf));
                ctrl.orderDep("hoop-gc-watermark", 0);
                ctrl.noteHomeSeq(line, max_seq);
                // Recently migrated lines stay visible in the eviction
                // buffer so racing misses never read a stale home copy.
                ctrl.evictBuf.put(line, buf);
                ++homeLinesWrittenC_;
            } else {
                ++homeLinesSkippedFresherC_;
            }
            migratedWordBytes_ +=
                static_cast<std::uint64_t>(std::popcount(g.mask)) *
                kWordSize;
        }
    } else {
        // Ablation: apply every update individually in age order —
        // a read-modify-write of the home line per scanned word.
        std::sort(raw.begin(), raw.end(),
                  [](const RawWord &a, const RawWord &b) {
                      return a.seq < b.seq;
                  });
        for (const RawWord &w : raw) {
            ctrl.crashStep(CrashPointKind::GcStep);
            const Addr line = lineAddr(w.addr);
            if (ctrl.homeFresherThan(line, w.seq))
                continue;
            std::uint8_t buf[kCacheLineSize];
            last = std::max(
                last, ctrl.nvm_.read(now, line, buf, kCacheLineSize));
            std::memcpy(buf + (w.addr - line), &w.value, kWordSize);
            last = std::max(last, ctrl.writeHomeLine(now, line, buf));
            ctrl.orderDep("hoop-gc-watermark", 0);
            ctrl.evictBuf.put(line, buf);
            migratedWordBytes_ += kWordSize;
            ++homeLinesWrittenC_;
        }
    }

    if (tr)
        tr->span("gc.migrate", "migration", gc_tid, scan_done, last);

    // ---- Step 4: drop mapping entries that point into collected
    // blocks (their lines' latest committed data is now home) ----
    std::vector<Addr> drop;
    ctrl.mapping.forEach([&](Addr line, std::uint32_t slice_idx) {
        if (in_cand[region.blockOfSlice(slice_idx)])
            drop.push_back(line);
    });
    for (Addr line : drop)
        ctrl.mapping.remove(line);
    mappingEntriesDroppedC_ += drop.size();

    // ---- Step 5: durability fence, watermark, then recycle ----
    // A crash must never tear a migration write whose source block was
    // already recycled, so the GC engine drains the channel before the
    // free-list update. The drain costs real time: GC's completion
    // advances to an upper bound on the completion of every write
    // issued so far (the channel frees in issue order), and only
    // writes complete by that tick settle — writes issued afterwards,
    // including the recycle header writes below, can still tear.
    last = std::max(last, ctrl.nvm_.drainFence(last));
    if (!ctrl.cfg.debugSkipSettleFences)
        ctrl.nvm_.faults().settleUpTo(last);
    ctrl.orderTrigger("hoop-gc-watermark", 0, last);

    // Advance the durable GC watermark past every collected block and
    // fence it before any recycle header is issued. The recycle
    // headers are NOT atomic: a torn one can revert wholesale to the
    // previous, CRC-consistent header and resurrect a recycled block,
    // whose stale slices recovery would then replay over the newer
    // migrated home baseline. The watermark closes that hole — if any
    // recycle header was issued the watermark is already durable and
    // recovery skips the whole batch by openSeq; if the watermark
    // itself tore (a single 8-byte word, so it merely reverts), no
    // recycle header was issued yet and every batch block still
    // replays together, reproducing the migration via max-seq-wins.
    std::uint64_t batch_max_open = 0;
    for (std::uint32_t b : cand) {
        batch_max_open =
            std::max(batch_max_open, region.block(b).openSeq);
    }
    last = std::max(last,
                    region.writeGcWatermark(batch_max_open + 1, now));
    ctrl.orderDep("hoop-gc-recycle", 0);
    last = std::max(last, ctrl.nvm_.drainFence(last));
    if (!ctrl.cfg.debugSkipSettleFences)
        ctrl.nvm_.faults().settleUpTo(last);
    ctrl.orderTrigger("hoop-gc-recycle", 0, last, 1);
    for (std::uint32_t b : cand) {
        // Crash point: between block recycles, after the fence. An
        // already-recycled block's data is durably home; a not-yet-
        // recycled one is rescanned and re-migrated idempotently.
        ctrl.crashStep(CrashPointKind::GcStep);
        // A block that degraded past the retirement threshold while in
        // service is retired here instead of recycled: its survivors
        // were just migrated home, so this is the one point where
        // losing the block costs nothing.
        if (region.block(b).retirePending)
            last = std::max(last, region.retireBlock(b, now));
        else
            region.setBlockState(b, BlockState::Unused, now);
    }
    blocksRecycledC_ += cand.size();

    // The pause this GC run imposes on the system: its completion tick
    // minus the tick it started at (Fig. 10's GC-induced latency).
    pauseH_.record(last - now);
    if (tr)
        tr->span("gc", "gc", gc_tid, now, last);

    return last;
}

} // namespace hoopnvm
