/**
 * @file
 * The 128-byte HOOP memory slice (paper Fig. 5b).
 *
 * A *data* slice packs up to eight 8-byte words updated by one
 * transaction together with their 40-bit home-region addresses, the
 * transaction id, a link to the slice chain, and per-slice state. An
 * *eviction* slice has the same shape but is produced when the LLC
 * evicts a transactionally-modified line: it carries the line's dirty
 * words. An *address* slice is the commit record: it names the chain
 * tail of a committed transaction and its commit (durability) order.
 *
 * Layout (byte offsets within the 128-byte slice):
 *
 *   [  0,  64)  8 data words
 *   [ 64, 104)  8 x 5-byte home word numbers (home_addr >> 3, 40 bits)
 *   [104, 108)  previous-slice index (u32, kNullIdx terminates)
 *   [108, 112)  transaction id (u32, per the paper's 32-bit TxID)
 *   [112, 120)  global sequence number (u64)
 *   [120]       meta byte: bits 0-2 = count-1, bit 3 = chain start,
 *               bits 4-7 = slice type
 *   [121, 125)  CRC-32C over bytes [0, 121)
 *   [125, 128)  reserved
 *
 * Deviation from the paper: the paper chains slices *forward* with a
 * 24-bit next pointer; we chain *backward* with a 32-bit previous index
 * so every slice is written exactly once (forward links would require
 * re-writing a slice once its successor's address is known). The commit
 * record therefore stores the chain *tail*. The global sequence number
 * (carried in otherwise-padded bytes) orders slices for GC coalescing
 * and lets recovery distinguish live slices from stale ones left behind
 * in recycled OOP blocks.
 *
 * Integrity: the CRC covers every payload and metadata byte, so a
 * slice torn at 8-byte word granularity (NVM's write atomicity unit)
 * or hit by a media fault fails verification. decode() reports the
 * check in MemorySlice::crcOk; consumers that trust slice contents
 * (recovery, GC, the mapping-table read path) must reject slices whose
 * check fails — a torn commit record must veto, never commit, its
 * transaction.
 */

#ifndef HOOPNVM_HOOP_MEMORY_SLICE_HH
#define HOOPNVM_HOOP_MEMORY_SLICE_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace hoopnvm
{

/** Discriminates the three kinds of memory slice. */
enum class SliceType : std::uint8_t
{
    Invalid = 0, ///< Unwritten slot.
    Data = 1,    ///< Word updates captured from transactional stores.
    AddrRec = 2, ///< Address slice: commit record of a transaction.
    Evict = 3,   ///< Dirty words of an LLC-evicted transactional line.
};

/** One commit record held in an address slice. */
struct CommitRecord
{
    TxId txId = kInvalidTxId;
    std::uint64_t commitId = 0;
    std::uint32_t tailSliceIdx = 0;
    std::uint32_t sliceCount = 0;
};

/** Decoded form of a 128-byte memory slice. */
struct MemorySlice
{
    static constexpr std::size_t kSliceBytes = 128;
    static constexpr std::uint32_t kNullIdx = 0xffffffffu;
    static constexpr unsigned kMaxWords = 8;

    SliceType type = SliceType::Invalid;
    std::uint8_t count = 0; ///< Valid words (Data/Evict) or records.
    bool start = false;     ///< First slice of its transaction chain.
    std::uint32_t prevIdx = kNullIdx;
    TxId txId = kInvalidTxId;
    std::uint64_t seq = 0;

    /**
     * True when the stored CRC matched on decode (always true for
     * freshly-built and Invalid slices). A false value means the slice
     * bytes are torn or corrupt and no other field can be trusted.
     */
    bool crcOk = true;

    std::array<std::uint64_t, kMaxWords> words{};
    std::array<Addr, kMaxWords> homeAddrs{}; ///< Word-aligned.

    /** Commit record (address slices carry exactly one here). */
    CommitRecord record;

    /** Serialize into @p out (kSliceBytes bytes). */
    void encode(std::uint8_t *out) const;

    /** Parse from @p in (kSliceBytes bytes). */
    static MemorySlice decode(const std::uint8_t *in);

    /** True for slices that carry word payloads. */
    bool
    carriesWords() const
    {
        return type == SliceType::Data || type == SliceType::Evict;
    }
};

} // namespace hoopnvm

#endif // HOOPNVM_HOOP_MEMORY_SLICE_HH
