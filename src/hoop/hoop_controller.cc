#include "hoop/hoop_controller.hh"

#include <cstring>

#include "analysis/ordering_tracker.hh"
#include "common/errors.hh"
#include "common/host_profiler.hh"
#include "common/logging.hh"

namespace hoopnvm
{

HoopController::HoopController(NvmDevice &nvm, const SystemConfig &cfg_)
    : PersistenceController("hoop", nvm, cfg_),
      region_(nvm, cfg_),
      buffer(cfg_.numCores, cfg_.oopDataBufferBytesPerCore,
             cfg_.dataPacking),
      mapping(cfg_.mappingTableBytes),
      evictBuf(cfg_.evictionBufferBytes),
      chains(cfg_.numCores),
      bufferInsertCost(cfg_.cycle()),
      unpackCost(2 * cfg_.cycle()),
      evictBufReadCost(nsToTicks(20)),
      gcOnDemandC_(stats_.counter("gc_on_demand")),
      dataSlicesC_(stats_.counter("data_slices")),
      evictSlicesC_(stats_.counter("evict_slices")),
      gcMappingFullC_(stats_.counter("gc_mapping_full")),
      emergencyMigrationsC_(stats_.counter("emergency_migrations")),
      txWordsC_(stats_.counter("tx_words")),
      addrSlicesC_(stats_.counter("addr_slices")),
      txCommittedC_(stats_.counter("tx_committed")),
      mappingHitsC_(stats_.counter("mapping_hits")),
      parallelReadsC_(stats_.counter("parallel_reads")),
      fillSliceCrcDropsC_(stats_.counter("fill_slice_crc_drops")),
      evictionBufferHitsC_(stats_.counter("eviction_buffer_hits")),
      oopEvictionsC_(stats_.counter("oop_evictions")),
      homeEvictionsC_(stats_.counter("home_evictions")),
      gcPressureC_(stats_.counter("gc_pressure")),
      oopBackpressureStallsC_(stats_.counter("oop_backpressure_stalls")),
      oopBackpressureStallTicksC_(
          stats_.counter("oop_backpressure_stall_ticks")),
      txRejectedC_(stats_.counter("tx_rejected")),
      scrubPassesC_(stats_.counter("scrub_passes")),
      scrubCorrectedC_(stats_.counter("scrub_corrected_words")),
      scrubPauseH_(stats_.histogram("scrub_pause_ticks")),
      recoveriesC_(stats_.counter("recoveries")),
      recoveryReplayH_(stats_.histogram("recovery_replay_ticks"))
{
    gc_ = std::make_unique<GarbageCollector>(*this);
    recovery = std::make_unique<RecoveryManager>(*this);
}

HoopController::~HoopController() = default;

void
HoopController::declareOrderingRules(OrderingTracker &t)
{
    t.rule("hoop-commit-record")
        .requiresDurable("every chain slice and the commit record of an "
                         "acknowledged transaction");
    t.rule("hoop-gc-watermark")
        .requiresSettled("migrated home lines before the GC watermark "
                         "advances past their slices");
    t.rule("hoop-gc-recycle")
        .requiresSettled("the GC watermark before any collected block "
                         "is recycled");
    // Declared only when the subsystem can fire it: a rule that cannot
    // fire would (correctly) be reported dead by clean-run sweeps.
    if (cfg.ft.enabled) {
        t.rule("hoop-retire-bitmap")
            .requiresSettled("the durable retirement bitmap before the "
                             "retirement is acted upon");
    }
}

TxId
HoopController::txBeginAs(CoreId core, Tick now, TxId forced)
{
    // Graceful degradation: once retirement has eaten past the
    // configured fraction of the OOP region, stop admitting new
    // transactions (ENOSPC-style) instead of wedging mid-transaction.
    if (cfg.ft.enabled &&
        region_.degradedFraction() >= cfg.ft.rejectCapacityFraction) {
        ++txRejectedC_;
        throw TxRejected{RejectCause::CapacityDegraded,
                         "OOP region degraded past the admission "
                         "threshold by bad-block retirement"};
    }
    const TxId tx = PersistenceController::txBeginAs(core, now, forced);
    chains[core] = CoreChain{};
    return tx;
}

std::uint32_t
HoopController::allocSliceOrGc(Tick &now)
{
    std::uint32_t idx;
    if (region_.allocSlice(idx, now))
        return idx;
    // Region exhausted: the writer stalls while on-demand GC runs on
    // the critical path (§IV-F). This is modelled backpressure, not an
    // error — the GC's completion tick is charged to the blocked store
    // and the stall is counted.
    const Tick stall_start = now;
    ++gcOnDemandC_;
    ++oopBackpressureStallsC_;
    now = std::max(now, gc_->run(now));
    if (region_.allocSlice(idx, now)) {
        oopBackpressureStallTicksC_ += now - stall_start;
        return idx;
    }
    // GC freed nothing: the oldest live block is pinned by a
    // transaction that has not committed, and no other core can commit
    // while this store blocks (the simulation is cooperative), so
    // waiting longer cannot help. A single transaction outgrew the
    // (possibly retirement-degraded) OOP region. Degrade, don't die:
    // reject the offending transaction with a structured error the
    // caller can observe; its chain carries no commit record, so a
    // crash+recovery discards it like any uncommitted transaction.
    ++txRejectedC_;
    throw TxRejected{RejectCause::OopExhausted,
                     "OOP region wedged: every block pinned by open "
                     "transactions; increase oopBytes or shorten "
                     "transactions"};
}

Tick
HoopController::emitSlice(CoreId core, const PendingSlice &p,
                          SliceType type, TxId tx, Tick now)
{
    HOOP_ASSERT(p.count > 0, "emitting an empty slice");
    Tick t = now;
    const std::uint32_t idx = allocSliceOrGc(t);

    MemorySlice s;
    s.type = type;
    s.count = p.count;
    s.txId = tx;
    s.seq = region_.allocSeq();
    for (unsigned i = 0; i < p.count; ++i) {
        s.words[i] = p.words[i];
        s.homeAddrs[i] = p.addrs[i];
    }
    if (type == SliceType::Data) {
        s.prevIdx = chains[core].tailIdx;
        s.start = chains[core].sliceCount == 0;
        chains[core].tailIdx = idx;
        ++chains[core].sliceCount;
        ++dataSlicesC_;
    } else {
        s.prevIdx = MemorySlice::kNullIdx;
        s.start = false;
        ++evictSlicesC_;
    }

    const Tick done = region_.writeSlice(t, idx, s);
    region_.noteSliceTx(idx, tx);
    // Evict slices are read-redirection copies; the chain slices carry
    // the same words, so commit durability depends only on Data slices.
    if (type == SliceType::Data)
        orderDep("hoop-commit-record", tx);

    if (type == SliceType::Evict) {
        if (!mapping.insert(lineAddr(p.addrs[0]), idx)) {
            // Mapping table full: GC drains it (Fig. 13's mechanism).
            ++gcMappingFullC_;
            gc_->run(t);
            // Remaining entries typically point into the still-open
            // block that GC cannot collect; migrate single committed
            // entries home until the insert fits.
            while (!mapping.insert(lineAddr(p.addrs[0]), idx)) {
                const bool drained = emergencyEvictMappingEntry(t);
                HOOP_ASSERT(drained, "mapping table wedged by open "
                                     "transactions");
            }
        }
    }
    // Slice emission is the only place mapping occupancy grows and
    // (outside GC itself) blocks are consumed, so re-deriving the GC
    // pressure flag here keeps maintenancePressure() exact.
    refreshMaintPressure();
    return done;
}

bool
HoopController::emergencyEvictMappingEntry(Tick now)
{
    Addr victim = kInvalidAddr;
    std::uint32_t victim_idx = 0;
    mapping.forEach([&](Addr line, std::uint32_t slice_idx) {
        if (victim != kInvalidAddr)
            return;
        const MemorySlice s = region_.peekSlice(slice_idx);
        if (s.crcOk && s.carriesWords() && isCommitted(s.txId)) {
            victim = line;
            victim_idx = slice_idx;
        }
    });
    if (victim == kInvalidAddr)
        return false;

    // Merge the entry's (newest) words into the home line in place.
    Tick done;
    const MemorySlice s = region_.readSlice(now, victim_idx, &done);
    std::uint8_t buf[kCacheLineSize];
    nvm_.read(now, victim, buf, kCacheLineSize);
    for (unsigned i = 0; i < s.count; ++i) {
        if (lineAddr(s.homeAddrs[i]) == victim) {
            std::memcpy(buf + (s.homeAddrs[i] - victim), &s.words[i],
                        kWordSize);
        }
    }
    writeHomeLine(now, victim, buf);
    noteHomeSeq(victim, s.seq);
    mapping.remove(victim);
    ++emergencyMigrationsC_;
    return true;
}

Tick
HoopController::storeWord(CoreId core, Addr addr,
                          const std::uint8_t *data, Tick now)
{
    std::uint64_t value;
    std::memcpy(&value, data, kWordSize);
    txModifiedBytes_ += kWordSize;
    ++txWordsC_;

    if (buffer.addWord(core, addr, value)) {
        // Slice full: flush it to the OOP region off the critical path.
        const PendingSlice p = buffer.take(core);
        const Tick done =
            emitSlice(core, p, SliceType::Data, currentTx(core), now);
        chains[core].outstanding =
            std::max(chains[core].outstanding, done);
    }
    return bufferInsertCost;
}

Tick
HoopController::prepare(CoreId core, Tick now)
{
    HOOP_ASSERT(coreTx[core].active, "prepare without txBegin (core %u)",
                core);
    if (buffer.hasPending(core)) {
        const PendingSlice p = buffer.take(core);
        const Tick done = emitSlice(core, p, SliceType::Data,
                                    coreTx[core].txId, now);
        chains[core].outstanding =
            std::max(chains[core].outstanding, done);
    }
    return std::max(now, chains[core].outstanding);
}

Tick
HoopController::txEnd(CoreId core, Tick now)
{
    // Single-controller commit: the channel services writes in issue
    // order, so the commit record — issued after the chain slices —
    // persists after them without waiting for their completion. (The
    // multi-controller 2PC driver passes the prepare-acknowledgement
    // time instead, since cross-channel ordering needs explicit acks.)
    prepare(core, now);
    return commitPrepared(core, now);
}

Tick
HoopController::commitPrepared(CoreId core, Tick now)
{
    HOOP_ASSERT(coreTx[core].active, "commit without txBegin (core %u)",
                core);
    const TxId tx = coreTx[core].txId;
    Tick t = now;

    const std::uint64_t cid = allocCommitId();
    Tick commit_done = t;
    if (chains[core].sliceCount > 0) {
        // Persist the commit record (address slice, Fig. 5a).
        const std::uint32_t idx = allocSliceOrGc(t);
        MemorySlice s;
        s.type = SliceType::AddrRec;
        s.count = 1;
        s.txId = tx;
        s.seq = region_.allocSeq();
        s.record.txId = tx;
        s.record.commitId = cid;
        s.record.tailSliceIdx = chains[core].tailIdx;
        s.record.sliceCount = chains[core].sliceCount;
        // Address slices pack many commit records (Fig. 5a); the
        // byte-addressable device persists just the appended record.
        // The simulator stores records one per slot for simplicity but
        // charges the amortized record write (32 B). The record flows
        // through the device's write path (not poke) so the fault
        // injector can tear it like any other in-flight write.
        std::uint8_t enc[MemorySlice::kSliceBytes];
        s.encode(enc);
        commit_done = nvm_.write(t, region_.sliceAddr(idx), enc,
                                 MemorySlice::kSliceBytes, 32);
        region_.noteSliceTx(idx, tx);
        orderDep("hoop-commit-record", tx);
        ++addrSlicesC_;
    }

    // Durability point: the commit record and every chain slice of this
    // transaction are on NVM. The debugNoCommitFence ablation
    // acknowledges at issue time instead — record and chain writes are
    // still in flight, so a crash can tear an acknowledged commit.
    // It exists only so hoop_crashcheck can validate that it catches
    // exactly the bug class this fence prevents.
    if (cfg.debugNoCommitFence)
        commit_done = t;
    else
        commit_done = std::max(commit_done, chains[core].outstanding);
    committed[tx] = cid;
    coreTx[core] = CoreTxState{};
    chains[core] = CoreChain{};
    ++txCommittedC_;
    const Tick ack = std::max(now, commit_done);
    orderTrigger("hoop-commit-record", tx, ack);
    return ack;
}

FillResult
HoopController::fillLine(CoreId core, Addr line, std::uint8_t *buf,
                         Tick now)
{
    (void)core;
    FillResult fr;

    if (auto m = mapping.lookup(line)) {
        // Most recent version lives out of place: read the OOP slice
        // and the home line in parallel and reconstruct (§III-G).
        mapping.remove(line);
        ++mappingHitsC_;
        ++parallelReadsC_;

        const Tick home_done = nvm_.read(now, line, buf, kCacheLineSize);
        Tick slice_done;
        const MemorySlice s = region_.readSlice(now, *m, &slice_done);
        if (!s.crcOk || !s.carriesWords()) {
            // A media fault corrupted the out-of-place copy. The home
            // line (already read) is the best surviving version: serve
            // it rather than overlay garbage words.
            ++fillSliceCrcDropsC_;
            fr.completion = home_done + unpackCost;
            return fr;
        }

        std::uint8_t mask = 0;
        for (unsigned i = 0; i < s.count; ++i) {
            if (lineAddr(s.homeAddrs[i]) != line)
                continue;
            const std::size_t off = s.homeAddrs[i] - line;
            std::memcpy(buf + off, &s.words[i], kWordSize);
            mask |= static_cast<std::uint8_t>(1u << (off / kWordSize));
        }

        fr.completion = std::max(home_done, slice_done) + unpackCost;
        // The reconstructed line is newer than the home region, and the
        // mapping entry is gone: keep it dirty so a later eviction
        // re-creates the out-of-place copy.
        fr.dirty = true;
        fr.persistent = true;
        fr.txId = s.txId;
        fr.wordMask = mask;
        return fr;
    }

    std::uint8_t tmp[kCacheLineSize];
    if (evictBuf.get(line, tmp)) {
        // Served from the controller's eviction buffer (§III-C).
        ++evictionBufferHitsC_;
        std::memcpy(buf, tmp, kCacheLineSize);
        fr.completion = now + evictBufReadCost;
        return fr;
    }

    fr.completion = nvm_.read(now, line, buf, kCacheLineSize);
    return fr;
}

void
HoopController::evictLine(CoreId core, Addr line,
                          const std::uint8_t *data, bool persistent,
                          TxId tx, std::uint8_t word_mask, Tick now)
{
    if (persistent && tx != kInvalidTxId) {
        // Transactionally-modified lines always leave the hierarchy
        // out of place (the home region is written only by GC,
        // §III-B): the dirty words become an eviction slice and the
        // mapping table redirects future misses.
        std::uint8_t mask = word_mask ? word_mask : 0xff;
        PendingSlice p;
        for (unsigned i = 0; i < kWordsPerLine; ++i) {
            if (!(mask & (1u << i)))
                continue;
            p.addrs[p.count] = line + i * kWordSize;
            std::memcpy(&p.words[p.count], data + i * kWordSize,
                        kWordSize);
            ++p.count;
        }
        emitSlice(core, p, SliceType::Evict, tx, now);
        ++oopEvictionsC_;
        return;
    }

    // Non-transactional dirty data: ordinary in-place writeback.
    // Stamp the freshness watermark so a later GC pass over older
    // slices does not regress this line.
    writeHomeLine(now, line, data);
    noteHomeSeq(line, region_.allocSeq());
    mapping.remove(line);
    ++homeEvictionsC_;
}

Tick
HoopController::writeHomeLine(Tick now, Addr line,
                              const std::uint8_t *data)
{
    const Tick done = nvm_.write(now, line, data, kCacheLineSize);
    // Any buffered copy is now stale; the home region is fresh.
    evictBuf.invalidate(line);
    return done;
}

void
HoopController::maintenance(Tick now)
{
    maintDirty_ = false;
    if (!cfg.gcEnabled)
        return;
    const bool period_due = now - lastGc >= cfg.gcPeriod;
    const bool pressure = region_.freeBlocks() <= 1 ||
                          mapping.size() * 10 >= mapping.capacity() * 9;
    if (period_due || pressure) {
        if (pressure && !period_due)
            ++gcPressureC_;
        // Keep the pressure flag armed while GC runs so a SimCrash
        // unwinding out of it leaves the poll re-armed, then settle it
        // to the exact post-GC predicate.
        maintDirty_ = true;
        lastGc = now;
        gc_->run(now);
        refreshMaintPressure();
    }
}

Tick
HoopController::scrub(Tick now)
{
    if (!region_.faultToleranceEnabled())
        return now;
    const std::uint32_t n = region_.numBlocks();
    const std::uint32_t slots = region_.slicesPerBlock() + 1;
    Tick last = now;
    std::uint32_t scanned = 0;
    std::vector<std::uint8_t> buf(
        static_cast<std::size_t>(slots) * MemorySlice::kSliceBytes);
    for (std::uint32_t step = 0; step < n && scanned < cfg.ft.scrubChunks;
         ++step) {
        const std::uint32_t b = scrubCursor_;
        scrubCursor_ = (scrubCursor_ + 1) % n;
        OopBlockInfo &blk = region_.block(b);
        if (blk.state == BlockState::Bad)
            continue;
        ++scanned;

        // Patrol read: the header always, the slice area only when the
        // block has been written in this life (an Unused block's slots
        // are program-verified again at allocation time anyway). The
        // device's read path counts and charges every ECC correction.
        const std::size_t scan_bytes =
            blk.state == BlockState::Unused
                ? MemorySlice::kSliceBytes
                : static_cast<std::size_t>(slots) *
                      MemorySlice::kSliceBytes;
        ReadFaultInfo rf;
        last = std::max(last, nvm_.read(now, region_.blockBase(b),
                                        buf.data(), scan_bytes, &rf));
        scrubCorrectedC_ += rf.correctedWords;

        // Program-verify sweep: how much of the block sits on
        // uncorrectable cells right now?
        std::uint32_t bad = 0;
        for (std::uint32_t slot = 1; slot < slots; ++slot) {
            if (region_.slotUncorrectable(b * slots + slot))
                ++bad;
        }
        const bool header_bad = nvm_.faults().uncorrectableInRange(
            region_.blockBase(b), kCacheLineSize);
        const bool degraded =
            header_bad ||
            static_cast<double>(bad) /
                    static_cast<double>(region_.slicesPerBlock()) >=
                cfg.ft.retireBadSlotFraction;
        if (!degraded)
            continue;
        if (blk.state == BlockState::Unused) {
            // Free block: nothing to migrate, retire on the spot.
            last = std::max(last, region_.retireBlock(b, now));
        } else {
            // Live block: GC must migrate the survivors first; it
            // retires the block at the recycle step.
            blk.retirePending = true;
        }
    }
    ++scrubPassesC_;
    scrubPauseH_.record(last - now);
    return last;
}

std::vector<std::pair<Addr, Addr>>
HoopController::freeMediaRanges() const
{
    std::vector<std::pair<Addr, Addr>> out;
    const std::uint32_t slots = region_.slicesPerBlock() + 1;
    const Addr block_bytes =
        static_cast<Addr>(slots) * MemorySlice::kSliceBytes;
    for (std::uint32_t b = 0; b < region_.numBlocks(); ++b) {
        if (region_.block(b).state != BlockState::Unused)
            continue;
        const Addr lo = region_.blockBase(b);
        if (!out.empty() && out.back().second == lo)
            out.back().second = lo + block_bytes;
        else
            out.emplace_back(lo, lo + block_bytes);
    }
    return out;
}

ControllerGauges
HoopController::sampleGauges() const
{
    ControllerGauges g;
    g.mappingEntries = mapping.size();
    g.structBytes = static_cast<std::uint64_t>(region_.numBlocks() -
                                               region_.freeBlocks()) *
                    cfg.oopBlockBytes;
    g.backpressureStalls = oopBackpressureStallsC_.value();
    if (region_.faultToleranceEnabled()) {
        g.retiredUnits = region_.retiredBlocks();
        g.correctedWords = nvm_.faults().wordsEccCorrected();
        g.degradedFraction = region_.degradedFraction();
    }
    g.txRejected = txRejectedC_.value();
    return g;
}

Tick
HoopController::runGcNow(Tick now)
{
    lastGc = now;
    const Tick done = gc_->run(now);
    refreshMaintPressure();
    return done;
}

Tick
HoopController::drain(Tick now)
{
    // Make every block collectable and migrate all committed data so
    // that end-of-run traffic accounting includes HOOP's deferred work.
    region_.closeCurrentBlock(now);
    return gc_->run(now);
}

bool
HoopController::homeFresherThan(Addr line, std::uint64_t seq) const
{
    const std::uint64_t *s = homeSeq.find(line);
    return s && *s > seq;
}

void
HoopController::noteHomeSeq(Addr line, std::uint64_t seq)
{
    std::uint64_t &s = homeSeq[line];
    if (seq > s)
        s = seq;
}

void
HoopController::crash()
{
    // Everything in the controller's SRAM is volatile.
    buffer.clearAll();
    mapping.clear();
    evictBuf.clear();
    homeSeq.clear();
    for (auto &c : chains)
        c = CoreChain{};
    for (auto &t : coreTx)
        t = CoreTxState{};
    committed.clear();
}

Tick
HoopController::recover(unsigned threads)
{
    return recoverWithFilter(threads, nullptr);
}

Tick
HoopController::modelRecovery(unsigned threads)
{
    HostTimer ht(HostProfiler::kRecovery);
    if (region_.faultToleranceEnabled())
        region_.loadRetirement();
    const RecoveryResult r = recovery->run(threads, nullptr);
    lastRecovery_ = r;
    return r.time;
}

Tick
HoopController::recoverWithFilter(unsigned threads,
                                  const std::unordered_set<TxId> *allow)
{
    // Adopt the durable retirement bitmap before scanning anything:
    // retired blocks' cells are untrustworthy and must never be read,
    // replayed, or reallocated.
    if (region_.faultToleranceEnabled())
        region_.loadRetirement();
    const RecoveryResult r = recovery->run(threads, allow);
    lastRecovery_ = r;

    // Post-recovery: the home region is the single source of truth.
    region_.reset();
    region_.setNextSeq(r.maxSeq + 1);
    mapping.clear();
    evictBuf.clear();
    buffer.clearAll();
    committed.clear();
    homeSeq.clear();
    restartIds(r.maxTxId + 1, r.committedTxReplayed + 1);
    recoveriesC_ += 1;
    recoveryReplayH_.record(r.time);
    return r.time;
}

bool
HoopController::isCommitted(TxId tx) const
{
    return committed.contains(tx);
}

std::uint64_t
HoopController::commitIdOf(TxId tx) const
{
    const std::uint64_t *cid = committed.find(tx);
    return cid ? *cid : 0;
}

void
HoopController::debugReadLine(Addr line, std::uint8_t *buf) const
{
    nvm_.peek(line, buf, kCacheLineSize);
    if (auto m = mapping.lookup(line)) {
        const MemorySlice s = region_.peekSlice(*m);
        if (!s.crcOk)
            return; // corrupt overlay: the home line is the best copy
        for (unsigned i = 0; i < s.count; ++i) {
            if (lineAddr(s.homeAddrs[i]) != line)
                continue;
            std::memcpy(buf + (s.homeAddrs[i] - line), &s.words[i],
                        kWordSize);
        }
        return;
    }
    std::uint8_t tmp[kCacheLineSize];
    if (evictBuf.get(line, tmp))
        std::memcpy(buf, tmp, kCacheLineSize);
}

} // namespace hoopnvm
