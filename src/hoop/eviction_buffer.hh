/**
 * @file
 * GC eviction buffer (paper §III-C).
 *
 * When GC migrates a line from the OOP region back to its home address
 * and removes the corresponding mapping-table entry, a racing LLC miss
 * must not observe the stale home copy. The eviction buffer keeps the
 * most recently migrated lines (128 KB default) so misses that fall in
 * that window are served from the controller. It is a bounded FIFO of
 * full cache lines; entries are replaced in insertion order.
 */

#ifndef HOOPNVM_HOOP_EVICTION_BUFFER_HH
#define HOOPNVM_HOOP_EVICTION_BUFFER_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace hoopnvm
{

/** Bounded FIFO of recently GC-migrated cache lines. */
class EvictionBuffer
{
  public:
    /** Modelled SRAM cost of one entry (tag + line data). */
    static constexpr std::uint64_t kEntryBytes = 72;

    /** @param bytes Modelled buffer capacity in bytes. */
    explicit EvictionBuffer(std::uint64_t bytes);

    /** Insert or refresh the copy of @p line. */
    void put(Addr line, const std::uint8_t *data);

    /** Copy out the buffered line, if present. */
    bool get(Addr line, std::uint8_t *out) const;

    /** Drop the entry for @p line, if present. */
    void invalidate(Addr line);

    std::size_t size() const { return index.size(); }
    std::size_t capacity() const { return entries.size(); }

    std::uint64_t hits() const { return hits_; }

    /** Drop everything (crash / post-recovery). */
    void clear();

  private:
    struct Entry
    {
        bool valid = false;
        Addr addr = kInvalidAddr;
        std::array<std::uint8_t, kCacheLineSize> data{};
    };

    std::vector<Entry> entries;
    std::unordered_map<Addr, std::size_t> index;
    std::size_t nextSlot = 0;
    mutable std::uint64_t hits_ = 0;
};

} // namespace hoopnvm

#endif // HOOPNVM_HOOP_EVICTION_BUFFER_HH
