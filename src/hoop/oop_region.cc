#include "hoop/oop_region.hh"

#include <cstring>

#include "analysis/ordering_tracker.hh"
#include "common/crc32.hh"
#include "common/logging.hh"

namespace hoopnvm
{

namespace
{

/** Magic marking a valid OOP block header. */
constexpr std::uint32_t kHeaderMagic = 0x484f4f50; // "HOOP"

/**
 * openSeq written into Unused headers: no sequence number can reach
 * it, so even if a torn re-open persists the new InUse state byte but
 * reverts the openSeq word, every slice in the block reads as stale
 * and recovery scans an empty block instead of resurrecting slices
 * from the block's previous life.
 */
constexpr std::uint64_t kSealedSeq = ~static_cast<std::uint64_t>(0);

/**
 * On-NVM block header layout (fits in the 128-byte header slot).
 *
 * The CRC covers magic, index and openSeq but deliberately *not*
 * state: state transitions (InUse->Full->Gc->Unused) rewrite only the
 * state byte with openSeq unchanged, and any torn/stale reading of the
 * state byte is safe to act on (see peekHeader), so excluding it keeps
 * those single-byte updates tear-free by construction. The only header
 * write that changes CRC-covered fields is a block (re)open, which by
 * the channel's write ordering can be in flight at a crash only while
 * the block holds no committed data — rejecting it loses nothing.
 */
struct BlockHeader
{
    std::uint32_t magic;
    std::uint32_t index;
    std::uint8_t state;
    std::uint8_t pad[3];
    std::uint32_t crc;
    std::uint64_t openSeq;
};

/** Header CRC over the fields that never change in place. */
std::uint32_t
headerCrc(const BlockHeader &h)
{
    std::uint8_t buf[16];
    std::memcpy(buf, &h.magic, 4);
    std::memcpy(buf + 4, &h.index, 4);
    std::memcpy(buf + 8, &h.openSeq, 8);
    return crc32c(buf, sizeof(buf));
}

} // namespace

OopRegion::OopRegion(NvmDevice &nvm_, const SystemConfig &cfg_)
    : nvm(nvm_), cfg(cfg_), stats_("oop_region"),
      headerWritesC_(stats_.counter("header_writes")),
      blocksOpenedC_(stats_.counter("blocks_opened")),
      sliceWritesC_(stats_.counter("slice_writes")),
      sliceReadsC_(stats_.counter("slice_reads")),
      slotsSkippedBadC_(stats_.counter("slots_skipped_bad")),
      blocksRetiredC_(stats_.counter("blocks_retired"))
{
    HOOP_ASSERT(cfg.oopBlockBytes % MemorySlice::kSliceBytes == 0,
                "OOP block size must be a multiple of the slice size");
    HOOP_ASSERT(cfg.oopBytes % cfg.oopBlockBytes == 0,
                "OOP region size must be a multiple of the block size");
    numBlocks_ =
        static_cast<std::uint32_t>(cfg.oopBytes / cfg.oopBlockBytes);
    slicesPerBlock_ = static_cast<std::uint32_t>(
        cfg.oopBlockBytes / MemorySlice::kSliceBytes - 1);
    HOOP_ASSERT(numBlocks_ >= 2, "need at least two OOP blocks");
    blocks.resize(numBlocks_);
    noteTx_.fill(kInvalidTxId);
    if (cfg.ft.enabled) {
        // The bitmap shares the (HOOP-private) aux region with the GC
        // watermark word: watermark at auxBase, map one line above it.
        const Addr map_base = cfg.auxBase() + kCacheLineSize;
        HOOP_ASSERT(kCacheLineSize + RetirementMap::areaBytes(
                                         numBlocks_) <= cfg.auxBytes,
                    "aux region too small for the retirement map");
        retireMap_.attach(nvm, map_base, numBlocks_);
    }
}

std::uint32_t
OopRegion::freeBlocks() const
{
    std::uint32_t n = 0;
    for (const auto &b : blocks) {
        if (b.state == BlockState::Unused)
            ++n;
    }
    return n;
}

Addr
OopRegion::blockBase(std::uint32_t b) const
{
    return cfg.oopBase() + static_cast<Addr>(b) * cfg.oopBlockBytes;
}

Addr
OopRegion::sliceAddr(std::uint32_t idx) const
{
    const std::uint32_t b = blockOfSlice(idx);
    const std::uint32_t slot = idx % (slicesPerBlock_ + 1);
    HOOP_ASSERT(slot >= 1, "slice index names a header slot");
    return blockBase(b) +
           static_cast<Addr>(slot) * MemorySlice::kSliceBytes;
}

void
OopRegion::writeHeader(std::uint32_t b, Tick now)
{
    std::uint8_t buf[kCacheLineSize] = {};
    BlockHeader h{};
    h.magic = kHeaderMagic;
    h.index = b;
    h.state = static_cast<std::uint8_t>(blocks[b].state);
    // Bad joins Unused under kSealedSeq: a retired block holds no
    // recoverable data, so every slice in it must read as stale.
    h.openSeq = blocks[b].state == BlockState::Unused ||
                        blocks[b].state == BlockState::Bad
                    ? kSealedSeq
                    : blocks[b].openSeq;
    h.crc = headerCrc(h);
    std::memcpy(buf, &h, sizeof(h));
    // Headers persist as one full line write (the header slot).
    nvm.write(now, blockBase(b), buf, kCacheLineSize);
    ++headerWritesC_;
}

bool
OopRegion::openNextBlock(Tick now)
{
    for (std::uint32_t i = 0; i < numBlocks_; ++i) {
        const std::uint32_t b = (allocCursor + i) % numBlocks_;
        if (blocks[b].state == BlockState::Unused) {
            // Program-verify the header line before trusting the block:
            // a header on uncorrectable cells can never be re-read, so
            // the (free) block is retired on the spot.
            if (retireMap_.attached() &&
                nvm.faults().uncorrectableInRange(blockBase(b),
                                                  kCacheLineSize)) {
                retireBlock(b, now);
                continue;
            }
            // Round-robin advance gives uniform block aging (§III-D).
            allocCursor = (b + 1) % numBlocks_;
            blocks[b].state = BlockState::InUse;
            blocks[b].writePtr = 1;
            blocks[b].openSeq = nextSeq_;
            blocks[b].txs.clear();
            writeHeader(b, now);
            currentBlock = b;
            ++blocksOpenedC_;
            return true;
        }
    }
    return false;
}

bool
OopRegion::allocSlice(std::uint32_t &idx, Tick now)
{
    for (;;) {
        if (currentBlock == kNoBlock ||
            blocks[currentBlock].writePtr > slicesPerBlock_) {
            if (currentBlock != kNoBlock &&
                blocks[currentBlock].writePtr > slicesPerBlock_) {
                setBlockState(currentBlock, BlockState::Full, now);
                currentBlock = kNoBlock;
            }
            if (!openNextBlock(now))
                return false;
        }
        OopBlockInfo &blk = blocks[currentBlock];
        idx = currentBlock * (slicesPerBlock_ + 1) + blk.writePtr;
        ++blk.writePtr;
        if (!retireMap_.attached() || !slotUncorrectable(idx))
            return true;
        // Program-verify failure: the slot sits on permanently
        // uncorrectable cells, so data written there would be lost.
        // Skip it (the capacity loss is the cost of not corrupting)
        // and flag the block for retirement once enough slots died.
        ++blk.badSlots;
        ++slotsSkippedBadC_;
        const double bad_fraction =
            static_cast<double>(blk.badSlots) /
            static_cast<double>(slicesPerBlock_);
        if (bad_fraction >= cfg.ft.retireBadSlotFraction)
            blk.retirePending = true;
    }
}

Tick
OopRegion::writeSlice(Tick now, std::uint32_t idx, const MemorySlice &s)
{
    std::uint8_t buf[MemorySlice::kSliceBytes];
    s.encode(buf);
    ++sliceWritesC_;
    return nvm.write(now, sliceAddr(idx), buf,
                     MemorySlice::kSliceBytes);
}

MemorySlice
OopRegion::readSlice(Tick now, std::uint32_t idx, Tick *completion)
{
    std::uint8_t buf[MemorySlice::kSliceBytes];
    const Tick done =
        nvm.read(now, sliceAddr(idx), buf, MemorySlice::kSliceBytes);
    if (completion)
        *completion = done;
    ++sliceReadsC_;
    return MemorySlice::decode(buf);
}

MemorySlice
OopRegion::peekSlice(std::uint32_t idx) const
{
    std::uint8_t buf[MemorySlice::kSliceBytes];
    nvm.peek(sliceAddr(idx), buf, MemorySlice::kSliceBytes);
    return MemorySlice::decode(buf);
}

BlockHeaderView
OopRegion::peekHeader(std::uint32_t b) const
{
    BlockHeader h{};
    nvm.peek(blockBase(b), &h, sizeof(h));
    BlockHeaderView v;
    if (h.magic != kHeaderMagic)
        return v;
    if (h.crc != headerCrc(h)) {
        // A torn block (re)open or a media fault on the header: the
        // openSeq cannot be trusted, so neither can any slice in the
        // block. Report it distinctly from a never-written slot.
        v.crcFailed = true;
        return v;
    }
    // The state byte is outside the CRC (it transitions in place); any
    // torn old/new reading of it is safe: InUse/Full/Gc are all
    // scanned, and a block already recycled to Unused has had its
    // committed content migrated home before the Unused header write
    // was issued.
    v.valid = true;
    v.state = static_cast<BlockState>(h.state);
    v.openSeq = h.openSeq;
    return v;
}

void
OopRegion::closeCurrentBlock(Tick now)
{
    if (currentBlock == kNoBlock)
        return;
    setBlockState(currentBlock, BlockState::Full, now);
    currentBlock = kNoBlock;
}

void
OopRegion::noteSliceTxSlow(std::uint32_t b, TxId tx)
{
    if (tx == kInvalidTxId) {
        // Cannot be a FlatMap key (it is the empty-slot sentinel):
        // track it in the spill map. No real transaction carries this
        // id, so the path never runs in normal operation.
        if (txSpill_[tx].insert(b).second)
            blocks[b].txs.push_back(tx);
        return;
    }
    TxBlockList &l = txBlocks_[tx];
    if (l.n == TxBlockList::kSpilled) {
        if (txSpill_[tx].insert(b).second)
            blocks[b].txs.push_back(tx);
        return;
    }
    for (std::uint8_t i = 0; i < l.n; ++i) {
        if (l.b[i] == b)
            return;
    }
    if (l.n == TxBlockList::kInlineBlocks) {
        // The chain outgrew the inline list: move it to the spill map.
        std::unordered_set<std::uint32_t> &s = txSpill_[tx];
        for (std::uint8_t i = 0; i < l.n; ++i)
            s.insert(l.b[i]);
        s.insert(b);
        l.n = TxBlockList::kSpilled;
        blocks[b].txs.push_back(tx);
        return;
    }
    l.b[l.n++] = b;
    blocks[b].txs.push_back(tx);
}

void
OopRegion::dropTxBlock(TxId tx, std::uint32_t b)
{
    if (tx != kInvalidTxId) {
        TxBlockList *l = txBlocks_.find(tx);
        if (l && l->n != TxBlockList::kSpilled) {
            for (std::uint8_t i = 0; i < l->n; ++i) {
                if (l->b[i] == b) {
                    l->b[i] = l->b[--l->n];
                    break;
                }
            }
            if (l->n == 0)
                txBlocks_.erase(tx);
            return;
        }
        if (!l)
            return;
    }
    auto it = txSpill_.find(tx);
    if (it != txSpill_.end()) {
        it->second.erase(b);
        if (it->second.empty()) {
            txSpill_.erase(it);
            if (tx != kInvalidTxId)
                txBlocks_.erase(tx);
        }
    }
}

std::vector<std::uint32_t>
OopRegion::txBlocks(TxId tx) const
{
    if (tx != kInvalidTxId) {
        const TxBlockList *l = txBlocks_.find(tx);
        if (!l)
            return {};
        if (l->n != TxBlockList::kSpilled)
            return {l->b.begin(), l->b.begin() + l->n};
    }
    auto it = txSpill_.find(tx);
    if (it == txSpill_.end())
        return {};
    return {it->second.begin(), it->second.end()};
}

void
OopRegion::retireTx(TxId tx)
{
    // A tx can only sit in its own direct-mapped way.
    const std::size_t h = static_cast<std::size_t>(tx) % kNoteWays;
    if (noteTx_[h] == tx)
        noteTx_[h] = kInvalidTxId;
    for (std::uint32_t b : txBlocks(tx))
        std::erase(blocks[b].txs, tx);
    if (tx != kInvalidTxId)
        txBlocks_.erase(tx);
    txSpill_.erase(tx);
}

void
OopRegion::setBlockState(std::uint32_t b, BlockState state, Tick now)
{
    blocks[b].state = state;
    if (state == BlockState::Unused) {
        for (std::size_t h = 0; h < kNoteWays; ++h) {
            if (noteBlock_[h] == b)
                noteTx_[h] = kInvalidTxId;
        }
        blocks[b].writePtr = 1;
        blocks[b].badSlots = 0; // re-counted on reopen (cells stay bad)
        blocks[b].retirePending = false;
        for (TxId tx : blocks[b].txs)
            dropTxBlock(tx, b);
        blocks[b].txs.clear();
    }
    writeHeader(b, now);
}

std::uint64_t
OopRegion::gcWatermark() const
{
    // The watermark lives in the (otherwise unused under HOOP) aux
    // region; each controller owns a private device, so the fixed
    // address never collides.
    return nvm.peekWord(cfg.auxBase());
}

Tick
OopRegion::writeGcWatermark(std::uint64_t seq, Tick now)
{
    std::uint8_t buf[kWordSize];
    std::memcpy(buf, &seq, kWordSize);
    return nvm.write(now, cfg.auxBase(), buf, kWordSize);
}

void
OopRegion::reset()
{
    for (std::uint32_t b = 0; b < numBlocks_; ++b) {
        // Retirement is permanent: a Bad block stays Bad across
        // recovery resets (its bitmap bit is durable).
        const bool bad = blocks[b].state == BlockState::Bad;
        blocks[b] = OopBlockInfo{};
        if (bad)
            blocks[b].state = BlockState::Bad;
        // Recovery has drained the region; persist the cleared headers
        // untimed (recovery time is modelled separately).
        BlockHeader h{};
        h.magic = kHeaderMagic;
        h.index = b;
        h.state = static_cast<std::uint8_t>(blocks[b].state);
        h.openSeq = kSealedSeq;
        h.crc = headerCrc(h);
        nvm.poke(blockBase(b), &h, sizeof(h));
    }
    txBlocks_.clear();
    txSpill_.clear();
    noteTx_.fill(kInvalidTxId);
    currentBlock = kNoBlock;
    if (retireMap_.attached())
        retireMap_.persistUntimed();
}

bool
OopRegion::slotUncorrectable(std::uint32_t idx) const
{
    return nvm.faults().uncorrectableInRange(sliceAddr(idx),
                                             MemorySlice::kSliceBytes);
}

Tick
OopRegion::retireBlock(std::uint32_t b, Tick now)
{
    HOOP_ASSERT(retireMap_.attached(),
                "retireBlock without fault tolerance enabled");
    HOOP_ASSERT(blocks[b].state != BlockState::Bad,
                "double retirement of block %u", b);
    if (currentBlock == b)
        currentBlock = kNoBlock;
    // The caller (GC, scrubber, allocator) migrated survivors already:
    // drop the bookkeeping exactly like a recycle, but land on Bad.
    for (std::size_t h = 0; h < kNoteWays; ++h) {
        if (noteBlock_[h] == b)
            noteTx_[h] = kInvalidTxId;
    }
    blocks[b].writePtr = 1;
    blocks[b].badSlots = 0;
    blocks[b].retirePending = false;
    for (TxId tx : blocks[b].txs)
        dropTxBlock(tx, b);
    blocks[b].txs.clear();
    blocks[b].state = BlockState::Bad;
    writeHeader(b, now);
    // Persist the retirement bit and fence it before returning: acting
    // on a retirement that could still tear would let recovery scan
    // (and trip over) the bad block. Declared as "hoop-retire-bitmap".
    const Tick done = retireMap_.persistRetire(b, now);
    if (ordering_)
        ordering_->addDep("hoop-retire-bitmap", 0);
    if (!cfg.debugSkipSettleFences)
        nvm.faults().settleUpTo(done);
    if (ordering_)
        ordering_->trigger("hoop-retire-bitmap", 0, done, 1, true);
    ++blocksRetiredC_;
    return done;
}

void
OopRegion::loadRetirement()
{
    if (!retireMap_.attached())
        return;
    retireMap_.loadDurable();
    for (std::uint32_t b = 0; b < numBlocks_; ++b) {
        if (retireMap_.isRetired(b))
            blocks[b].state = BlockState::Bad;
    }
}

} // namespace hoopnvm
