/**
 * @file
 * HOOP's adaptive garbage collector (paper §III-E, Algorithm 1).
 *
 * GC selects full OOP blocks whose transactions have all committed,
 * coalesces every word update found in them (latest version wins) into
 * a hash map, migrates the coalesced lines to the home region, removes
 * the corresponding mapping-table entries, and recycles the blocks.
 *
 * Two refinements over the paper's Algorithm 1 pseudo-code are needed
 * for strict correctness, both noted in DESIGN.md:
 *  - A block is only collectable when every transaction owning slices
 *    in it is committed AND all blocks holding those transactions'
 *    slices are collected together (otherwise recycling a block could
 *    cut a commit-record chain that recovery still needs).
 *  - A mapping-table entry is only removed when it points into a
 *    collected block (an entry pointing at a newer slice in a live
 *    block must survive the migration of older versions).
 *
 * The paper scans committed transactions in reverse commit order and
 * keeps the first version seen; we scan forward and keep the highest
 * sequence number, which selects the same version.
 */

#ifndef HOOPNVM_HOOP_GARBAGE_COLLECTOR_HH
#define HOOPNVM_HOOP_GARBAGE_COLLECTOR_HH

#include <cstdint>

#include "common/types.hh"
#include "stats/stat_set.hh"

namespace hoopnvm
{

class HoopController;

/** Background migrator from the OOP region to the home region. */
class GarbageCollector
{
  public:
    explicit GarbageCollector(HoopController &ctrl);

    /**
     * Run one GC pass at time @p now.
     * @return Completion tick of the pass (== now when nothing to do).
     */
    Tick run(Tick now);

    /** Bytes of coalesced word data migrated to the home region. */
    std::uint64_t migratedWordBytes() const { return migratedWordBytes_; }

    /** Word-update bytes observed in scanned committed slices. */
    std::uint64_t scannedWordBytes() const { return scannedWordBytes_; }

    /**
     * Data reduction ratio (paper Table IV): the fraction of bytes
     * modified by transactions that coalescing kept from being written
     * back to the home region.
     */
    double dataReductionRatio() const;

    StatSet &stats() { return stats_; }

  private:
    HoopController &ctrl;
    StatSet stats_;

    // Hot-path counters resolved once; StatSet references stay valid
    // for the StatSet's lifetime.
    Counter &noopRunsC_;
    Counter &runsC_;
    Counter &slicesScannedC_;
    Counter &slicesCrcSkippedC_;
    Counter &homeLinesWrittenC_;
    Counter &homeLinesSkippedFresherC_;
    Counter &mappingEntriesDroppedC_;
    Counter &blocksRecycledC_;

    /** GC pause durations, recorded into the controller's StatSet. */
    Histogram &pauseH_;

    std::uint64_t migratedWordBytes_ = 0;
    std::uint64_t scannedWordBytes_ = 0;
};

} // namespace hoopnvm

#endif // HOOPNVM_HOOP_GARBAGE_COLLECTOR_HH
