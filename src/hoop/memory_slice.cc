#include "hoop/memory_slice.hh"

#include <cstring>

#include "common/crc32.hh"
#include "common/logging.hh"

namespace hoopnvm
{

namespace
{

void
put32(std::uint8_t *p, std::uint32_t v)
{
    std::memcpy(p, &v, sizeof(v));
}

void
put64(std::uint8_t *p, std::uint64_t v)
{
    std::memcpy(p, &v, sizeof(v));
}

std::uint32_t
get32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

std::uint64_t
get64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/** Store a 40-bit home word number as 5 little-endian bytes. */
void
put40(std::uint8_t *p, std::uint64_t v)
{
    HOOP_ASSERT(v < (1ULL << 40), "home word number exceeds 40 bits");
    for (int i = 0; i < 5; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
get40(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 5; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Byte offset of the slice CRC; it covers every byte before it. */
constexpr std::size_t kCrcOffset = 121;

/** The 32-bit image of "no transaction" in the slice's TxId field. */
constexpr std::uint32_t kInvalidTxId32 =
    static_cast<std::uint32_t>(kInvalidTxId);

} // namespace

void
MemorySlice::encode(std::uint8_t *out) const
{
    std::memset(out, 0, kSliceBytes);
    HOOP_ASSERT(count >= 1 && count <= kMaxWords,
                "slice count %u out of range", count);

    if (type == SliceType::AddrRec) {
        // Commit record payload occupies the word area.
        put64(out + 0, record.txId);
        put64(out + 8, record.commitId);
        put32(out + 16, record.tailSliceIdx);
        put32(out + 20, record.sliceCount);
    } else {
        for (unsigned i = 0; i < count; ++i) {
            put64(out + 8 * i, words[i]);
            HOOP_ASSERT(isAligned(homeAddrs[i], kWordSize),
                        "unaligned home address in slice");
            put40(out + 64 + 5 * i, homeAddrs[i] >> 3);
        }
    }

    put32(out + 104, prevIdx);
    HOOP_ASSERT(txId <= 0xffffffffu || txId == kInvalidTxId,
                "TxId exceeds the 32-bit slice field");
    put32(out + 108, static_cast<std::uint32_t>(txId));
    put64(out + 112, seq);
    out[120] = static_cast<std::uint8_t>(
        (count - 1) | (start ? 0x08 : 0x00) |
        (static_cast<std::uint8_t>(type) << 4));
    put32(out + kCrcOffset, crc32c(out, kCrcOffset));
}

MemorySlice
MemorySlice::decode(const std::uint8_t *in)
{
    MemorySlice s;
    const std::uint8_t meta = in[120];
    s.type = static_cast<SliceType>(meta >> 4);
    if (s.type == SliceType::Invalid)
        return s;
    s.crcOk = get32(in + kCrcOffset) == crc32c(in, kCrcOffset);
    s.count = static_cast<std::uint8_t>((meta & 0x07) + 1);
    s.start = (meta & 0x08) != 0;
    s.prevIdx = get32(in + 104);
    const std::uint32_t tx32 = get32(in + 108);
    s.txId = tx32 == kInvalidTxId32 ? kInvalidTxId : tx32;
    s.seq = get64(in + 112);

    if (s.type == SliceType::AddrRec) {
        s.record.txId = get64(in + 0);
        s.record.commitId = get64(in + 8);
        s.record.tailSliceIdx = get32(in + 16);
        s.record.sliceCount = get32(in + 20);
    } else {
        for (unsigned i = 0; i < s.count; ++i) {
            s.words[i] = get64(in + 8 * i);
            s.homeAddrs[i] = get40(in + 64 + 5 * i) << 3;
        }
    }
    return s;
}

} // namespace hoopnvm
