/**
 * @file
 * The HOOP memory controller: the paper's primary contribution.
 *
 * HOOP writes transactional updates *out of place* into the
 * log-structured OOP region instead of logging or shadow-copying them:
 *
 *  - Transactional stores deposit words into the per-core OOP data
 *    buffer; full slices are flushed to the OOP region asynchronously
 *    (data packing, §III-C/D). The core never waits on a store.
 *  - Tx_end flushes the remaining slice plus an address slice (the
 *    commit record) and waits for those writes only — there are no
 *    cache flushes or fences on the application side (Fig. 4d).
 *  - LLC evictions of transactionally-modified lines write their dirty
 *    words to the OOP region and install a mapping-table entry; LLC
 *    misses consult the table and read the OOP slice and home line in
 *    parallel, then drop the entry (the freshest copy moves into the
 *    cache hierarchy).
 *  - Background GC coalesces committed updates and migrates them to the
 *    home region (see GarbageCollector); recovery replays committed
 *    slice chains after a crash (see RecoveryManager).
 */

#ifndef HOOPNVM_HOOP_HOOP_CONTROLLER_HH
#define HOOPNVM_HOOP_HOOP_CONTROLLER_HH

#include <memory>
#include <unordered_set>
#include <vector>

#include "common/flat_map.hh"
#include "controller/persistence_controller.hh"
#include "hoop/eviction_buffer.hh"
#include "hoop/garbage_collector.hh"
#include "hoop/mapping_table.hh"
#include "hoop/oop_data_buffer.hh"
#include "hoop/oop_region.hh"
#include "hoop/recovery.hh"

namespace hoopnvm
{

/** Hardware-assisted out-of-place update controller. */
class HoopController : public PersistenceController
{
  public:
    HoopController(NvmDevice &nvm, const SystemConfig &cfg);
    ~HoopController() override;

    Scheme scheme() const override { return Scheme::Hoop; }

    TxId txBeginAs(CoreId core, Tick now, TxId forced) override;
    Tick txEnd(CoreId core, Tick now) override;

    /**
     * 2PC phase 1 (§III-I): flush the core's outstanding slices to the
     * OOP region and return when they are durable. txEnd == prepare
     * followed by commitPrepared.
     */
    Tick prepare(CoreId core, Tick now);

    /** 2PC phase 2: persist the commit record and retire the tx. */
    Tick commitPrepared(CoreId core, Tick now);

    /** Recovery restricted to @p allow (multi-controller consensus). */
    Tick recoverWithFilter(unsigned threads,
                           const std::unordered_set<TxId> *allow);

    /**
     * Model recovery on the current crash image WITHOUT the
     * post-recovery reset that recover() performs: the scan replays
     * the winners home (idempotently) and returns the modelled
     * recovery time, but the OOP region, mapping table and tx-id
     * state are left untouched, so the call is repeatable — running
     * it N times on one crashed system yields N identical results,
     * because the scan phases read only durable state the replay
     * never modifies. Benches sweeping a recovery parameter (e.g.
     * Fig. 11's thread count) use this to share one expensive fill
     * across the sweep. lastRecovery() reflects the run.
     */
    Tick modelRecovery(unsigned threads);
    Tick storeWord(CoreId core, Addr addr, const std::uint8_t *data,
                   Tick now) override;
    FillResult fillLine(CoreId core, Addr line, std::uint8_t *buf,
                        Tick now) override;
    void evictLine(CoreId core, Addr line, const std::uint8_t *data,
                   bool persistent, TxId tx, std::uint8_t word_mask,
                   Tick now) override;
    void maintenance(Tick now) override;

    /** Next periodic-GC trigger tick (kNeverTick when GC is off). */
    Tick
    nextMaintenanceDue() const override
    {
        return cfg.gcEnabled ? lastGc + cfg.gcPeriod : kNeverTick;
    }

    Tick scrub(Tick now) override;
    ControllerGauges sampleGauges() const override;
    Tick drain(Tick now) override;
    void crash() override;
    Tick recover(unsigned threads) override;
    void debugReadLine(Addr line, std::uint8_t *buf) const override;
    void declareOrderingRules(OrderingTracker &t) override;

    /** Forward the tracker to the OOP region's retirement machinery. */
    void
    setOrderingTracker(OrderingTracker *t) override
    {
        PersistenceController::setOrderingTracker(t);
        region_.setOrdering(t);
    }

    /** Unused OOP blocks: wear-out fault-injection targets. */
    std::vector<std::pair<Addr, Addr>> freeMediaRanges() const override;

    // ---- Component access (tests, benches, GC) ----

    OopRegion &region() { return region_; }
    MappingTable &mappingTable() { return mapping; }
    EvictionBuffer &evictionBuffer() { return evictBuf; }
    OopDataBuffer &dataBuffer() { return buffer; }
    GarbageCollector &gc() { return *gc_; }

    /** Full result of the most recent recovery run (integrity stats). */
    const RecoveryResult &lastRecovery() const { return lastRecovery_; }

    /** True once @p tx has durably committed. */
    bool isCommitted(TxId tx) const;

    /** Commit (durability order) id of @p tx; 0 if not committed. */
    std::uint64_t commitIdOf(TxId tx) const;

    /** Total bytes modified by transactions so far (Table IV input). */
    std::uint64_t txModifiedBytes() const { return txModifiedBytes_; }

    /**
     * Write @p data to home line @p line (timed) and keep the eviction
     * buffer coherent. Used by the eviction path and by GC migration.
     */
    Tick writeHomeLine(Tick now, Addr line, const std::uint8_t *data);

    /** Run GC immediately (on-demand); returns its completion tick. */
    Tick runGcNow(Tick now);

    /**
     * True when @p line's home copy was written by a committed
     * eviction *after* slice sequence @p seq was produced. GC uses
     * this to avoid regressing the home region.
     */
    bool homeFresherThan(Addr line, std::uint64_t seq) const;

    /** Record that home holds content at least as new as @p seq. */
    void noteHomeSeq(Addr line, std::uint64_t seq);

  private:
    friend class GarbageCollector;
    friend class RecoveryManager;

    /** Per-core slice-chain state of the running transaction. */
    struct CoreChain
    {
        std::uint32_t tailIdx = MemorySlice::kNullIdx;
        std::uint32_t sliceCount = 0;

        /** Completion tick of the newest posted slice write. */
        Tick outstanding = 0;
    };

    /**
     * Emit @p p as one memory slice of @p type for transaction @p tx,
     * chaining data slices into the core's transaction chain.
     * @return Completion tick of the slice write.
     */
    Tick emitSlice(CoreId core, const PendingSlice &p, SliceType type,
                   TxId tx, Tick now);

    /** Allocate a slice slot, GCing on demand when the region is full. */
    std::uint32_t allocSliceOrGc(Tick &now);

    /**
     * Last-resort mapping-table drain: migrate one committed entry's
     * line home immediately and drop the entry. Used when even
     * on-demand GC cannot free space (the entries point into the
     * still-open block).
     */
    bool emergencyEvictMappingEntry(Tick now);

    OopRegion region_;
    OopDataBuffer buffer;
    MappingTable mapping;
    EvictionBuffer evictBuf;
    std::unique_ptr<GarbageCollector> gc_;
    std::unique_ptr<RecoveryManager> recovery;
    RecoveryResult lastRecovery_;

    std::vector<CoreChain> chains;

    /**
     * Commit ids of all committed transactions, keyed by TxId.
     * Entries persist for the simulation's lifetime: LLC evictions may
     * carry the TxId of a long-committed transaction, and GC must
     * still classify those slices as committed. Open-addressed — GC's
     * candidate scan and the eviction path probe this per slice. (Not
     * a dense vector: the multi-controller forces global TxIds
     * starting at 2^31, which would make a by-id array 17 GB.)
     */
    FlatMap<std::uint64_t> committed;

    Tick lastGc = 0;
    std::uint64_t txModifiedBytes_ = 0;

    /**
     * Recompute maintenancePressure() from the exact GC pressure
     * predicate (block exhaustion / mapping-table occupancy). Called
     * wherever the predicate's inputs change outside maintenance():
     * slice emission and on-demand GC.
     */
    void
    refreshMaintPressure()
    {
        maintDirty_ = cfg.gcEnabled &&
                      (region_.freeBlocks() <= 1 ||
                       mapping.size() * 10 >= mapping.capacity() * 9);
    }

    /** Round-robin block cursor of the background scrubber. */
    std::uint32_t scrubCursor_ = 0;

    /**
     * Per-line freshness watermark of the home region: the slice
     * sequence number up to which the home copy is known current.
     * Volatile (host-side); recovery does not depend on it.
     */
    FlatMap<std::uint64_t> homeSeq;

    /** Controller-internal latencies. */
    Tick bufferInsertCost;
    Tick unpackCost;
    Tick evictBufReadCost;

    // Hot-path counters resolved once against stats_ (see
    // PersistenceController). "recoveries" stays string-keyed: rare.
    Counter &gcOnDemandC_;
    Counter &dataSlicesC_;
    Counter &evictSlicesC_;
    Counter &gcMappingFullC_;
    Counter &emergencyMigrationsC_;
    Counter &txWordsC_;
    Counter &addrSlicesC_;
    Counter &txCommittedC_;
    Counter &mappingHitsC_;
    Counter &parallelReadsC_;
    Counter &fillSliceCrcDropsC_;
    Counter &evictionBufferHitsC_;
    Counter &oopEvictionsC_;
    Counter &homeEvictionsC_;
    Counter &gcPressureC_;
    Counter &oopBackpressureStallsC_;
    Counter &oopBackpressureStallTicksC_;
    Counter &txRejectedC_;
    Counter &scrubPassesC_;
    Counter &scrubCorrectedC_;
    Histogram &scrubPauseH_;
    Counter &recoveriesC_;
    Histogram &recoveryReplayH_;
};

} // namespace hoopnvm

#endif // HOOPNVM_HOOP_HOOP_CONTROLLER_HH
