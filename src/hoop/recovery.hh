/**
 * @file
 * Multi-threaded crash recovery for HOOP (paper §III-F).
 *
 * Recovery works purely from durable NVM bytes: it scans the OOP
 * blocks named live by their headers, collects address slices (commit
 * records), distributes the committed transactions round-robin over
 * recovery worker threads, has each worker walk its chains into a local
 * hash map (latest version per word, ordered by commit id and position
 * in the chain), merges the local maps, and writes the winning versions
 * back to their home addresses.
 *
 * The *functional* replay really runs on std::thread workers; the
 * *timing* reported follows the paper's machine model: the scan and
 * write-back phases are limited by NVM channel bandwidth, while the
 * per-slice parsing work scales with the number of recovery threads
 * (Fig. 11's two axes).
 *
 * Fault tolerance: nothing read from NVM is trusted without its CRC.
 * A torn or corrupt slice ends its block's live area; a corrupt
 * commit record never enters the committed set (recovery never
 * falsely commits); a committed transaction whose chain may have lost
 * slices to corruption is dropped whole (atomicity over durability),
 * while a chain merely trimmed by GC — its missing slices already
 * migrated home — replays its survivors. The CRC verification work is
 * charged in the recovery timing model and every rejection is counted
 * in RecoveryResult.
 */

#ifndef HOOPNVM_HOOP_RECOVERY_HH
#define HOOPNVM_HOOP_RECOVERY_HH

#include <cstdint>
#include <unordered_set>

#include "common/types.hh"
#include "stats/stat_set.hh"

namespace hoopnvm
{

class HoopController;

/** Outcome of one recovery run. */
struct RecoveryResult
{
    /** Modelled wall-clock recovery time. */
    Tick time = 0;

    std::uint64_t committedTxReplayed = 0;
    std::uint64_t slicesScanned = 0;
    std::uint64_t bytesScanned = 0;
    std::uint64_t homeLinesWritten = 0;

    /** Highest slice sequence number observed (counter restart point). */
    std::uint64_t maxSeq = 0;

    /** Highest transaction id observed. */
    TxId maxTxId = 0;

    // ---- Integrity (fault-tolerant recovery) ----

    /** Slices dropped because their CRC failed (torn or corrupt). */
    std::uint64_t slicesRejected = 0;

    /** CRC-failing slices whose type field still read AddrRec: torn
     *  commit records. Such a record never enters the committed set,
     *  so its transaction cannot replay. */
    std::uint64_t tornCommitsDetected = 0;

    /** CRC failures attributable to scheduled media faults (the slice
     *  sits in a scheduled fault range) rather than torn writes. */
    std::uint64_t bitFlipsDetected = 0;

    /** Block headers rejected by their CRC (block skipped whole). */
    std::uint64_t headersRejected = 0;

    /** Blocks skipped because their openSeq sits below the durable GC
     *  watermark: their words are migrated home, so a live-looking
     *  header is a recycle write that tore back to its previous,
     *  CRC-consistent value (a resurrected block). */
    std::uint64_t blocksSkippedByWatermark = 0;

    /** Committed transactions vetoed because part of their slice chain
     *  may have been lost to observed corruption — replaying the
     *  remainder could break atomicity, so the whole transaction is
     *  dropped. */
    std::uint64_t incompleteTxVetoed = 0;

    /** Committed transactions replayed from a partial chain whose
     *  missing slices no observed corruption could explain: GC
     *  migrated them home when it recycled their blocks, so the
     *  surviving slices complete the transaction on top of that
     *  baseline. */
    std::uint64_t gcTrimmedTxReplayed = 0;

    /** Total CPU ticks charged for CRC verification (before dividing
     *  across recovery threads); part of `time`. */
    Tick crcVerifyCost = 0;

    // ---- Runtime fault tolerance (zero unless cfg.ft.enabled) ----

    /** Blocks skipped whole because the durable retirement bitmap marks
     *  them bad: their cells are untrustworthy and, by the retirement
     *  contract, held no live data when they were retired. */
    std::uint64_t blocksSkippedRetired = 0;

    /** Uncorrectable slice slots stepped over without ending the
     *  block's live area. Program-verify never lets a slice land on
     *  uncorrectable cells, so such a slot hides no data — cutting the
     *  scan there (as a CRC failure would) would instead lose the good
     *  slices written around it. */
    std::uint64_t slicesSkippedBad = 0;
};

/** Parallel replay of committed transactions from the OOP region. */
class RecoveryManager
{
  public:
    explicit RecoveryManager(HoopController &ctrl);

    /**
     * Recover the home region using @p threads workers. On return the
     * home region holds exactly the committed state, and the OOP
     * region, mapping table and eviction buffer are cleared.
     */
    /**
     * @param allow When non-null, only transactions in this set replay
     *              (multi-controller consensus, §III-I).
     */
    RecoveryResult run(unsigned threads,
                       const std::unordered_set<TxId> *allow = nullptr);

    /** Per-slice CPU processing cost used by the timing model. */
    static constexpr Tick kPerSliceCpuCost = nsToTicks(25);

    /**
     * CPU cost of one 128-byte CRC-32C verification, charged per slice
     * scan in the timing model. Hardware CRC32 instructions sustain
     * roughly one cache line per handful of cycles; 4 ns at 2.5 GHz is
     * a deliberately conservative software-assist figure.
     */
    static constexpr Tick kCrcVerifyCpuCost = nsToTicks(4);

    StatSet &stats() { return stats_; }

  private:
    HoopController &ctrl;
    StatSet stats_;
    // Stats resolved once at construction: run() must never do
    // string-keyed lookups (hoop_lint stats-lookup invariant).
    Counter &runsC_;
    Counter &txReplayedC_;
    Counter &linesWrittenC_;
    Counter &slicesRejectedC_;
    Counter &tornCommitsC_;
    Counter &bitFlipsC_;
    Counter &headersRejectedC_;
    Counter &blocksSkippedWatermarkC_;
    Counter &incompleteTxVetoedC_;
    Counter &gcTrimmedTxReplayedC_;
    Counter &blocksSkippedRetiredC_;
    Counter &slicesSkippedBadC_;
};

} // namespace hoopnvm

#endif // HOOPNVM_HOOP_RECOVERY_HH
