#include "hoop/multi_controller.hh"

#include <cstring>

#include "common/flat_map.hh"
#include "common/logging.hh"

namespace hoopnvm
{

MultiHoopSystem::MultiHoopSystem(const SystemConfig &cfg_,
                                 unsigned controllers)
    : cfg(cfg_), touched(cfg_.numCores),
      globalTx(cfg_.numCores, kInvalidTxId), clocks(cfg_.numCores, 0)
{
    HOOP_ASSERT(controllers >= 1, "need at least one controller");
    mcs.reserve(controllers);
    for (unsigned i = 0; i < controllers; ++i) {
        Channel ch;
        ch.nvm = std::make_unique<NvmDevice>(cfg.nvmCapacity(), cfg.nvm,
                                             cfg.energy);
        ch.ctrl = std::make_unique<HoopController>(*ch.nvm, cfg);
        mcs.push_back(std::move(ch));
    }
}

unsigned
MultiHoopSystem::channelOf(Addr line) const
{
    return static_cast<unsigned>((lineAddr(line) / kCacheLineSize) %
                                 mcs.size());
}

void
MultiHoopSystem::txBegin(CoreId core)
{
    HOOP_ASSERT(touched[core].empty(), "nested multi-MC transaction");
    globalTx[core] = nextGlobal++;
}

void
MultiHoopSystem::storeWord(CoreId core, Addr addr, std::uint64_t value)
{
    const unsigned ch = channelOf(addr);
    // Lazily enlist the channel as a 2PC participant.
    if (!touched[core].contains(ch)) {
        mcs[ch].ctrl->txBeginAs(core, clocks[core], globalTx[core]);
        touched[core].insert(ch);
    }
    std::uint8_t bytes[kWordSize];
    std::memcpy(bytes, &value, kWordSize);
    clocks[core] +=
        mcs[ch].ctrl->storeWord(core, addr, bytes, clocks[core]);
}

std::uint64_t
MultiHoopSystem::readWord(Addr addr) const
{
    const unsigned ch = channelOf(addr);
    std::uint8_t buf[kCacheLineSize];
    mcs[ch].ctrl->debugReadLine(lineAddr(addr), buf);
    std::uint64_t v;
    std::memcpy(&v, buf + (addr - lineAddr(addr)), kWordSize);
    return v;
}

Tick
MultiHoopSystem::txEnd(CoreId core)
{
    Tick done = clocks[core];

    // Phase 1 — prepare: every participant flushes its outstanding
    // slices; the coordinator waits for all acknowledgements.
    // Channel order: commitCrashAfter cuts the phase-2 loop after a
    // fixed count, so which participants hold commit records at the
    // injected crash is observable — iterate both phases sorted.
    for (unsigned ch : sortedValues(touched[core]))
        done = std::max(done, mcs[ch].ctrl->prepare(core, clocks[core]));

    // Phase 2 — commit: write each participant's commit record. A
    // crash inside this window leaves records on a strict subset of
    // the participants, which consensus recovery must resolve.
    for (unsigned ch : sortedValues(touched[core])) {
        if (commitCrashAfter == 0) {
            crashed = true;
            break;
        }
        done = std::max(done,
                        mcs[ch].ctrl->commitPrepared(core, done));
        if (commitCrashAfter > 0)
            --commitCrashAfter;
    }

    touched[core].clear();
    globalTx[core] = kInvalidTxId;
    clocks[core] = done;
    return done;
}

void
MultiHoopSystem::crash()
{
    for (auto &ch : mcs)
        ch.ctrl->crash();
    // lint: unordered-iter-ok (outer std::vector of per-core sets; clearing is order-insensitive)
    for (auto &t : touched)
        t.clear();
    crashed = false;
    commitCrashAfter = -1;
}

void
MultiHoopSystem::recoverAll(unsigned threads)
{
    // Consensus: a transaction replays only if every controller that
    // holds any of its slices also holds its commit record.
    std::unordered_map<TxId, bool> eligible; // tx -> still consistent
    for (auto &mc : mcs) {
        OopRegion &region = mc.ctrl->region();
        std::unordered_set<TxId> has_slices;
        std::unordered_set<TxId> has_record;
        for (std::uint32_t b = 0; b < region.numBlocks(); ++b) {
            const BlockHeaderView h = region.peekHeader(b);
            if (!h.valid || h.state == BlockState::Unused)
                continue;
            for (std::uint32_t slot = 1;
                 slot <= region.slicesPerBlock(); ++slot) {
                const MemorySlice s = region.peekSlice(
                    b * (region.slicesPerBlock() + 1) + slot);
                // A corrupt slice ends the live area exactly as in
                // RecoveryManager::run — in particular a torn commit
                // record never lands in has_record, so the transaction
                // stays ineligible on this controller.
                if (s.type == SliceType::Invalid || !s.crcOk ||
                    s.seq < h.openSeq)
                    break;
                if (s.carriesWords())
                    has_slices.insert(s.txId);
                else if (s.type == SliceType::AddrRec)
                    has_record.insert(s.record.txId);
            }
        }
        // lint: unordered-iter-ok (commutative fold: each tx's verdict is AND-ed in independently)
        for (TxId tx : has_slices) {
            auto it = eligible.emplace(tx, true).first;
            if (!has_record.contains(tx))
                it->second = false; // prepared but never committed here
        }
        // lint: unordered-iter-ok (emplace never overwrites; the result set is order-independent)
        for (TxId tx : has_record)
            eligible.emplace(tx, true);
    }

    std::unordered_set<TxId> allow;
    // lint: unordered-iter-ok (building an unordered filter set; membership is order-independent)
    for (const auto &kv : eligible) {
        if (kv.second)
            allow.insert(kv.first);
    }

    for (auto &mc : mcs)
        mc.ctrl->recoverWithFilter(threads, &allow);
}

} // namespace hoopnvm
