/**
 * @file
 * Multi-memory-controller HOOP with two-phase commit (paper §III-I).
 *
 * The paper sketches how HOOP extends to several memory controllers:
 * home addresses interleave across controllers, each with its own OOP
 * data buffers, mapping table and OOP region. Commit runs a two-phase
 * protocol — *prepare* flushes every participating controller's
 * outstanding slices, *commit* writes a commit record on each of them.
 * A crash between the per-controller record writes leaves the record on
 * some controllers but not others; recovery therefore reaches consensus
 * first: a transaction replays only if **every** controller holding its
 * slices also holds its commit record, otherwise it is discarded
 * everywhere (all-or-nothing across channels).
 *
 * This module drives unmodified HoopControllers (one per channel, each
 * with a private NvmDevice) through that protocol. It is exercised by
 * tests/multi_controller_test.cc, including crashes injected between
 * the two commit phases.
 */

#ifndef HOOPNVM_HOOP_MULTI_CONTROLLER_HH
#define HOOPNVM_HOOP_MULTI_CONTROLLER_HH

#include <memory>
#include <unordered_set>
#include <vector>

#include "hoop/hoop_controller.hh"

namespace hoopnvm
{

/** HOOP spanning multiple memory controllers via two-phase commit. */
class MultiHoopSystem
{
  public:
    /**
     * @param cfg         Per-controller configuration (regions are per
     *                    channel; each controller gets its own device).
     * @param controllers Number of memory controllers (channels).
     */
    MultiHoopSystem(const SystemConfig &cfg, unsigned controllers);

    unsigned controllers() const
    {
        return static_cast<unsigned>(mcs.size());
    }

    /** Controller owning home line @p line (line interleaving). */
    unsigned channelOf(Addr line) const;

    // ---- Transactional API (word granularity, controller level) ----

    void txBegin(CoreId core);

    /** Store one word; routed to its channel's controller. */
    void storeWord(CoreId core, Addr addr, std::uint64_t value);

    /** Read the current word value (committed or own-tx). */
    std::uint64_t readWord(Addr addr) const;

    /**
     * Two-phase commit: prepare (flush slices on every participant),
     * then commit (write each participant's commit record).
     * @return Tick at which the slowest controller acknowledged.
     */
    Tick txEnd(CoreId core);

    /**
     * Crash with a fault window: if @p fail_after_records >= 0, the
     * power fails after that many of the current in-flight commit's
     * records were written (used by tests to split the commit phase).
     */
    void crash();

    /** Consensus recovery across all controllers (see file header). */
    void recoverAll(unsigned threads);

    /** Inject a crash after @p n more commit-record writes. */
    void scheduleCommitCrash(unsigned n) { commitCrashAfter = n; }

    HoopController &controller(unsigned i) { return *mcs[i].ctrl; }
    NvmDevice &device(unsigned i) { return *mcs[i].nvm; }

  private:
    struct Channel
    {
        std::unique_ptr<NvmDevice> nvm;
        std::unique_ptr<HoopController> ctrl;
    };

    /** Channels the running tx of @p core has touched. */
    std::unordered_set<unsigned> &participants(CoreId core)
    {
        return touched[core];
    }

    SystemConfig cfg;
    std::vector<Channel> mcs;
    std::vector<std::unordered_set<unsigned>> touched;
    std::vector<TxId> globalTx;
    std::vector<Tick> clocks;

    /** Commit-phase fault injection: -1 = disabled. */
    int commitCrashAfter = -1;
    bool crashed = false;

    /**
     * Next global (cross-controller) transaction id. Global ids live
     * in the upper half of the 32-bit slice TxId space so they cannot
     * collide with controller-local ids (which count up from 1).
     */
    TxId nextGlobal = TxId{1} << 31;
};

} // namespace hoopnvm

#endif // HOOPNVM_HOOP_MULTI_CONTROLLER_HH
