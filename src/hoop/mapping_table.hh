/**
 * @file
 * Hash-based physical-to-physical address mapping table (paper §III-C).
 *
 * Maps home-region cache-line addresses to OOP-region slice indices so
 * that LLC misses observe the most recent out-of-place version. The
 * table is a fixed-capacity structure in the memory controller (2 MB
 * default, 16 bytes per entry); when it fills up the controller must
 * run GC to drain entries (Fig. 13 sweeps this size).
 *
 * The software model mirrors the hardware: a flat open-addressed array
 * (linear probing, backward-shift deletion) rather than a node-based
 * hash map — controller SRAM is a fixed array of entry slots, and the
 * flat layout is also the fastest thing the host can probe. Keys and
 * values live in separate parallel arrays so the probe loop scans only
 * packed 8-byte keys (eight per host cache line); the slice value is
 * touched on a hit alone. The host allocation grows lazily from a few
 * slots up to the modelled capacity, so a Fig. 13 8 MB sweep whose run
 * touches a few thousand lines does not pay for half a million buckets
 * per System.
 */

#ifndef HOOPNVM_HOOP_MAPPING_TABLE_HH
#define HOOPNVM_HOOP_MAPPING_TABLE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace hoopnvm
{

/** Fixed-capacity home-line -> OOP-slice mapping. */
class MappingTable
{
  public:
    /** Modelled SRAM cost of one entry (home addr + OOP addr). */
    static constexpr std::uint64_t kEntryBytes = 16;

    /** @param bytes Modelled table capacity in bytes. */
    explicit MappingTable(std::uint64_t bytes);

    /**
     * Insert or update the mapping for @p line.
     * @return false when the table is full and @p line is not already
     *         present (the caller must GC and retry).
     */
    bool insert(Addr line, std::uint32_t slice_idx);

    /** Slice index mapped for @p line, if any. */
    std::optional<std::uint32_t> lookup(Addr line) const;

    /** Drop the mapping for @p line; no-op if absent. */
    void remove(Addr line);

    /** Visit every (line, slice) entry. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < lines_.size(); ++i) {
            if (lines_[i] != kEmptyLine)
                fn(lines_[i], slices_[i]);
        }
    }

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }
    bool full() const { return size_ >= capacity_; }

    /** Drop every entry (crash / post-recovery). */
    void clear();

    /**
     * Host memory currently allocated for slots, in bytes. Exposed so
     * the lazy-growth behaviour is testable: a freshly built table
     * must cost a few hundred bytes regardless of the modelled
     * capacity.
     */
    std::size_t
    hostAllocatedBytes() const
    {
        return lines_.size() * sizeof(Addr) +
               slices_.size() * sizeof(std::uint32_t);
    }

  private:
    /**
     * Sentinel marking an empty slot. Mapping keys are line-aligned
     * simulated physical addresses, which can never be all-ones.
     */
    static constexpr Addr kEmptyLine = kInvalidAddr;

    /** Preferred slot of @p line in a table of lines_.size() entries. */
    std::size_t homeSlot(Addr line) const;

    /** Slot holding @p line, or SIZE_MAX when absent. */
    std::size_t findSlot(Addr line) const;

    /** Double the slot arrays (bounded by maxSlots_) and rehash. */
    void grow();

    std::size_t capacity_;
    std::size_t size_ = 0;

    /**
     * Largest slot count the table may grow to: the smallest power of
     * two that keeps the probe load factor at or below 3/4 when the
     * modelled capacity is fully used.
     */
    std::size_t maxSlots_;

    // Parallel slot arrays: probe keys apart from values.
    std::vector<Addr> lines_;
    std::vector<std::uint32_t> slices_;
};

} // namespace hoopnvm

#endif // HOOPNVM_HOOP_MAPPING_TABLE_HH
