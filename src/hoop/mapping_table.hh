/**
 * @file
 * Hash-based physical-to-physical address mapping table (paper §III-C).
 *
 * Maps home-region cache-line addresses to OOP-region slice indices so
 * that LLC misses observe the most recent out-of-place version. The
 * table is a fixed-capacity structure in the memory controller (2 MB
 * default, 16 bytes per entry); when it fills up the controller must
 * run GC to drain entries (Fig. 13 sweeps this size).
 */

#ifndef HOOPNVM_HOOP_MAPPING_TABLE_HH
#define HOOPNVM_HOOP_MAPPING_TABLE_HH

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/types.hh"

namespace hoopnvm
{

/** Fixed-capacity home-line -> OOP-slice mapping. */
class MappingTable
{
  public:
    /** Modelled SRAM cost of one entry (home addr + OOP addr). */
    static constexpr std::uint64_t kEntryBytes = 16;

    /** @param bytes Modelled table capacity in bytes. */
    explicit MappingTable(std::uint64_t bytes);

    /**
     * Insert or update the mapping for @p line.
     * @return false when the table is full and @p line is not already
     *         present (the caller must GC and retry).
     */
    bool insert(Addr line, std::uint32_t slice_idx);

    /** Slice index mapped for @p line, if any. */
    std::optional<std::uint32_t> lookup(Addr line) const;

    /** Drop the mapping for @p line; no-op if absent. */
    void remove(Addr line);

    /** Visit every (line, slice) entry. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &kv : map)
            fn(kv.first, kv.second);
    }

    std::size_t size() const { return map.size(); }
    std::size_t capacity() const { return capacity_; }
    bool full() const { return map.size() >= capacity_; }

    /** Drop every entry (crash / post-recovery). */
    void clear();

  private:
    std::size_t capacity_;
    std::unordered_map<Addr, std::uint32_t> map;
};

} // namespace hoopnvm

#endif // HOOPNVM_HOOP_MAPPING_TABLE_HH
