#include "hoop/oop_data_buffer.hh"

#include "common/logging.hh"

namespace hoopnvm
{

OopDataBuffer::OopDataBuffer(unsigned n_cores,
                             std::uint64_t bytes_per_core, bool packing_)
    : pending(n_cores), packing(packing_)
{
    // One assembling slice (8 words + 8 addresses + state) comfortably
    // fits the paper's 1 KB per-core budget; reject absurd configs.
    HOOP_ASSERT(bytes_per_core >= MemorySlice::kSliceBytes,
                "OOP data buffer smaller than one memory slice");
}

bool
OopDataBuffer::addWord(CoreId core, Addr word_addr, std::uint64_t value)
{
    HOOP_ASSERT(core < pending.size(), "unknown core %u", core);
    HOOP_ASSERT(isAligned(word_addr, kWordSize),
                "unaligned word into OOP data buffer");
    PendingSlice &p = pending[core];

    if (packing) {
        // Combine a repeated update to the same word in place.
        for (unsigned i = 0; i < p.count; ++i) {
            if (p.addrs[i] == word_addr) {
                p.words[i] = value;
                ++combinedWords_;
                return false;
            }
        }
    }

    HOOP_ASSERT(p.count < MemorySlice::kMaxWords,
                "assembling slice overflow");
    p.addrs[p.count] = word_addr;
    p.words[p.count] = value;
    ++p.count;

    // Without packing each word ships as its own slice immediately.
    const unsigned full_at = packing ? MemorySlice::kMaxWords : 1;
    return p.count >= full_at;
}

bool
OopDataBuffer::hasPending(CoreId core) const
{
    return pending[core].count > 0;
}

PendingSlice
OopDataBuffer::take(CoreId core)
{
    PendingSlice out = pending[core];
    pending[core] = PendingSlice{};
    return out;
}

void
OopDataBuffer::clear(CoreId core)
{
    pending[core] = PendingSlice{};
}

void
OopDataBuffer::clearAll()
{
    for (auto &p : pending)
        p = PendingSlice{};
}

} // namespace hoopnvm
