#include "hoop/recovery.hh"

#include <algorithm>
#include <cstring>
#include <map>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "hoop/hoop_controller.hh"
#include "stats/trace.hh"

namespace hoopnvm
{

namespace
{

/** The winning version of one home word during replay. */
struct WordVersion
{
    std::uint64_t seq = 0;
    std::uint64_t value = 0;
};

using LocalMap = std::unordered_map<Addr, WordVersion>;

} // namespace

RecoveryManager::RecoveryManager(HoopController &ctrl_)
    : ctrl(ctrl_), stats_("recovery")
{
}

RecoveryResult
RecoveryManager::run(unsigned threads,
                     const std::unordered_set<TxId> *allow)
{
    threads = std::max(1u, threads);
    OopRegion &region = ctrl.region_;
    RecoveryResult res;

    // ---- Phase 1: locate live blocks and commit records, using only
    // durable NVM state (block headers + address slices). Slices are
    // appended in sequence order, so a stale, invalid or corrupt slice
    // ends a block's live area. Nothing is trusted without its CRC: a
    // commit record that fails its CRC never enters the committed set,
    // and a committed transaction that may have lost chain slices to
    // corruption is dropped whole — recovery must never surface a
    // partial transaction. ----
    struct LiveBlock
    {
        std::uint32_t block;
        std::uint32_t usedSlots;
    };
    std::vector<LiveBlock> live;
    std::unordered_set<TxId> committed;
    std::unordered_map<TxId, std::uint32_t> chainExpected;
    std::unordered_map<TxId, std::uint32_t> chainFound;
    std::unordered_map<TxId, std::uint64_t> commitSeq;
    std::uint64_t max_commit = 0;
    // Lowest slice sequence number a corruption cut could have
    // swallowed. A CRC failure that ends a block's live area can only
    // hide slices newer than the last good slice before the cut
    // (slices append in sequence order); a block whose *header* fails
    // its CRC is bounded below by the GC watermark instead. While no
    // corruption is observed the floor sits above every real sequence
    // number, so nothing is vetoed for incompleteness.
    std::uint64_t corruptionFloor = ~0ull;
    const FaultModel &faults = ctrl.nvm_.faults();
    // Durable GC watermark (a single 8-byte word, so it never tears
    // into an invalid value): blocks below it are migrated home.
    const std::uint64_t gc_watermark = region.gcWatermark();

    for (std::uint32_t b = 0; b < region.numBlocks(); ++b) {
        // Crash point: between block-header scans. Recovery has
        // written nothing yet, so re-entering recovery after a crash
        // here sees the untouched post-crash image.
        ctrl.crashStep(CrashPointKind::RecoveryStep);
        if (region.faultToleranceEnabled() &&
            region.block(b).state == BlockState::Bad) {
            // Durably retired (the bitmap was adopted before this scan):
            // the cells are untrustworthy and the retirement contract
            // guarantees every live word was migrated home first.
            ++res.blocksSkippedRetired;
            continue;
        }
        const BlockHeaderView h = region.peekHeader(b);
        if (h.crcFailed) {
            ++res.headersRejected;
            // A torn header write never hides committed data: a torn
            // *recycle* header means the block's content was migrated
            // home and fenced before the recycle was issued (watermark
            // protocol), and a torn *(re)open* header means no slice in
            // the block had settled — by in-order channel completion a
            // settled slice implies a settled open write — so no
            // committed slice (acked, hence settled) ever lived there.
            // Only a media fault on the header line can swallow real
            // data; then the durable watermark still bounds the loss
            // (everything below it is migrated home), so the floor
            // drops to the watermark instead of zero. Lowering the
            // floor for harmless torn headers would veto — and thereby
            // half-apply — committed transactions whose chains span
            // the GC boundary.
            if (faults.mediaFaultyRange(region.blockBase(b),
                                        kCacheLineSize)) {
                // One refinement under runtime fault tolerance: a block
                // is only ever *opened* on a header that passed
                // program-verify, so a header on uncorrectable cells
                // means the block was never opened in this life — it
                // can hide nothing and must not depress the floor.
                if (!region.faultToleranceEnabled() ||
                    !faults.uncorrectableInRange(region.blockBase(b),
                                                 kCacheLineSize)) {
                    corruptionFloor =
                        std::min(corruptionFloor, gc_watermark);
                }
            }
        }
        if (!h.valid || h.state == BlockState::Unused)
            continue;
        if (h.openSeq < gc_watermark) {
            // The block sits below the durable GC watermark: its
            // committed words were migrated home and fenced before the
            // watermark was written, so this header is a recycle write
            // that tore back to its previous (self-consistent) value.
            // Replaying the resurrected slices would overlay the newer
            // migrated baseline with stale data — skip the block.
            ++res.blocksSkippedByWatermark;
            continue;
        }
        std::uint32_t used = 0;
        // Lowest sequence number a corruption cut in THIS block could
        // swallow. Slices are appended in strictly increasing global
        // sequence order, so a cut after a good slice with seq S can
        // only hide slices with seq > S; only a cut at the very first
        // slot could reach back to the block's openSeq.
        std::uint64_t block_floor = h.openSeq;
        for (std::uint32_t slot = 1; slot <= region.slicesPerBlock();
             ++slot) {
            const std::uint32_t idx =
                b * (region.slicesPerBlock() + 1) + slot;
            if (region.faultToleranceEnabled() &&
                region.slotUncorrectable(idx)) {
                // Program-verify skipped this slot at allocation time
                // (a slice never lands on uncorrectable cells), so it
                // hides no data. It must be stepped over BEFORE the
                // Invalid-type / CRC checks: its garbage bytes would
                // otherwise read as a cut and lose the good slices
                // written around it.
                ++res.slicesSkippedBad;
                continue;
            }
            const MemorySlice s = region.peekSlice(idx);
            if (s.type == SliceType::Invalid)
                break;
            if (!s.crcOk) {
                // Torn or corrupt: no field of this slice — including
                // seq and txId — can be trusted, so the block's live
                // area ends here. A commit record that tore never
                // enters `committed`, which is veto enough; acting on
                // its corrupt txId bytes could instead hit a
                // *different* transaction whose intact record lives
                // elsewhere. The cut may have swallowed chain slices
                // of any transaction young enough for this block, so
                // lower the corruption floor to the block's openSeq.
                ++res.slicesRejected;
                if (faults.mediaFaultyRange(region.sliceAddr(idx),
                                            MemorySlice::kSliceBytes))
                    ++res.bitFlipsDetected;
                if (s.type == SliceType::AddrRec)
                    ++res.tornCommitsDetected;
                corruptionFloor =
                    std::min(corruptionFloor, block_floor);
                break;
            }
            if (s.seq < h.openSeq)
                break; // stale slice from the block's previous life
            used = slot;
            block_floor = s.seq + 1;
            ++res.slicesScanned;
            res.bytesScanned += MemorySlice::kSliceBytes;
            res.maxSeq = std::max(res.maxSeq, s.seq);
            if (s.txId != kInvalidTxId)
                res.maxTxId = std::max(res.maxTxId, s.txId);
            if (s.type == SliceType::Data) {
                ++chainFound[s.txId];
            } else if (s.type == SliceType::AddrRec) {
                if (allow && !allow->count(s.record.txId))
                    continue; // vetoed by cross-controller consensus
                committed.insert(s.record.txId);
                chainExpected[s.record.txId] = s.record.sliceCount;
                commitSeq[s.record.txId] = s.seq;
                max_commit = std::max(max_commit, s.record.commitId);
                res.maxTxId = std::max(res.maxTxId, s.record.txId);
            }
        }
        if (used > 0)
            live.push_back({b, used});
    }

    // Chain completeness: a committed transaction must present every
    // Data slice its commit record counted. A shortfall has two
    // causes that demand opposite treatment. If corruption cut slices
    // out of a block old enough to have held part of this chain (its
    // openSeq is at or below the commit record's seq), replaying the
    // remainder could surface a torn transaction — drop it whole. If
    // no observed corruption could explain the gap, the missing
    // slices sat in blocks GC already recycled — GC only collects
    // all-committed blocks and migrates their words home first, so
    // the survivors overlay that migrated baseline and replaying them
    // completes the transaction (vetoing would leave it
    // half-applied).
    for (auto it = committed.begin(); it != committed.end();) {
        const auto found = chainFound.find(*it);
        const std::uint32_t have =
            found == chainFound.end() ? 0 : found->second;
        if (have >= chainExpected[*it]) {
            ++it;
        } else if (corruptionFloor <= commitSeq[*it]) {
            ++res.incompleteTxVetoed;
            it = committed.erase(it);
        } else {
            ++res.gcTrimmedTxReplayed;
            ++it;
        }
    }
    res.committedTxReplayed = committed.size();

    // ---- Phase 2: parallel slice scan into thread-local maps.
    // Blocks are dealt to workers round-robin; every committed Data or
    // Evict slice contributes its words, and the highest sequence
    // number wins. GC only ever recycles sequence-order prefixes of the
    // log, so every surviving slice is newer than the home baseline and
    // straight overlay is safe. ----
    std::vector<LocalMap> locals(threads);
    auto worker = [&](unsigned id) {
        LocalMap &local = locals[id];
        for (std::size_t i = id; i < live.size(); i += threads) {
            const LiveBlock &lb = live[i];
            for (std::uint32_t slot = 1; slot <= lb.usedSlots; ++slot) {
                const std::uint32_t idx =
                    lb.block * (region.slicesPerBlock() + 1) + slot;
                const MemorySlice s = region.peekSlice(idx);
                if (!s.crcOk || !s.carriesWords() ||
                    !committed.contains(s.txId))
                    continue;
                for (unsigned w = 0; w < s.count; ++w) {
                    WordVersion &v = local[s.homeAddrs[w]];
                    if (s.seq >= v.seq) {
                        v.seq = s.seq;
                        v.value = s.words[w];
                    }
                }
            }
        }
    };

    if (threads == 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            pool.emplace_back(worker, i);
        for (auto &t : pool)
            t.join();
    }

    // ---- Phase 3: merge local maps and write the winners home ----
    LocalMap global;
    for (const LocalMap &local : locals) {
        for (const auto &kv : local) {
            WordVersion &v = global[kv.first];
            if (kv.second.seq >= v.seq)
                v = kv.second;
        }
    }

    std::map<Addr, std::vector<std::pair<std::size_t, std::uint64_t>>>
        by_line;
    for (const auto &kv : global) {
        by_line[lineAddr(kv.first)].emplace_back(
            kv.first - lineAddr(kv.first), kv.second.value);
    }
    for (const auto &kv : by_line) {
        // Crash point: between home-line replay writes. The OOP region
        // is untouched until recoverWithFilter() resets it after run()
        // returns, so a second recovery redoes the overlay idempotently
        // (winning words depend only on the durable slices). Serial
        // code: phase-2 workers must never fire crash points.
        ctrl.crashStep(CrashPointKind::RecoveryStep);
        std::uint8_t buf[kCacheLineSize];
        ctrl.nvm_.peek(kv.first, buf, kCacheLineSize);
        for (const auto &w : kv.second)
            std::memcpy(buf + w.first, &w.second, kWordSize);
        ctrl.nvm_.poke(kv.first, buf, kCacheLineSize);
        ++res.homeLinesWritten;
    }

    // ---- Phase 4: timing model (Fig. 11) ----
    // Both scan passes and the write-back stream are limited by channel
    // bandwidth; per-slice parsing is CPU work that divides across the
    // recovery threads.
    const std::uint64_t total_slices = res.slicesScanned * 2;
    const std::uint64_t rw_bytes =
        res.bytesScanned * 2 + res.homeLinesWritten * kCacheLineSize * 2;
    const Tick channel_time = ctrl.nvm_.timing().transferTicks(
        static_cast<std::size_t>(rw_bytes));
    // Every scanned slice is CRC-verified before any field is trusted;
    // that work divides across the recovery threads like the parsing
    // work, but is reported separately so Fig. 11 runs can show the
    // integrity overhead.
    res.crcVerifyCost =
        static_cast<Tick>(total_slices) * kCrcVerifyCpuCost;
    const Tick cpu_time =
        (total_slices + threads - 1) / threads *
            (kPerSliceCpuCost + kCrcVerifyCpuCost) +
        static_cast<Tick>(global.size()) * nsToTicks(5);
    res.time = std::max(channel_time, cpu_time) +
               ctrl.nvm_.timing().readLatency +
               ctrl.nvm_.timing().writeLatency;

    if (TraceBuffer *tr = ctrl.trace()) {
        // Recovery runs on a freshly-reset machine: the cores sit at
        // tick 0, so the phase spans start there. The scan phases are
        // charged the portion of the modelled time proportional to
        // their share of the channel traffic; replay gets the rest.
        const unsigned tid = ctrl.cfg.numCores + 1;
        Tick scan_t = res.time;
        if (rw_bytes > 0) {
            scan_t = static_cast<Tick>(
                static_cast<double>(res.time) *
                static_cast<double>(res.bytesScanned * 2) /
                static_cast<double>(rw_bytes));
        }
        tr->span("recovery.scan", "recovery", tid, 0, scan_t);
        tr->span("recovery.replay", "recovery", tid, scan_t, res.time);
        tr->span("recovery", "recovery", tid, 0, res.time);
    }
    res.bytesScanned = rw_bytes;

    stats_.counter("runs") += 1;
    stats_.counter("tx_replayed") += res.committedTxReplayed;
    stats_.counter("lines_written") += res.homeLinesWritten;
    stats_.counter("slices_rejected") += res.slicesRejected;
    stats_.counter("torn_commits_detected") += res.tornCommitsDetected;
    stats_.counter("bit_flips_detected") += res.bitFlipsDetected;
    stats_.counter("headers_rejected") += res.headersRejected;
    stats_.counter("blocks_skipped_by_watermark") +=
        res.blocksSkippedByWatermark;
    stats_.counter("incomplete_tx_vetoed") += res.incompleteTxVetoed;
    stats_.counter("gc_trimmed_tx_replayed") += res.gcTrimmedTxReplayed;
    stats_.counter("blocks_skipped_retired") += res.blocksSkippedRetired;
    stats_.counter("slices_skipped_bad") += res.slicesSkippedBad;
    return res;
}

} // namespace hoopnvm
