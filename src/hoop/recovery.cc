#include "hoop/recovery.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/flat_map.hh"
#include "common/logging.hh"
#include "hoop/hoop_controller.hh"
#include "stats/trace.hh"

namespace hoopnvm
{

namespace
{

/** Per-transaction replay bookkeeping accumulated by the phase-1
 *  scan: commit-record contents plus the Data-slice census the chain-
 *  completeness check compares against. */
struct TxInfo
{
    std::uint32_t expected = 0;
    std::uint32_t found = 0;
    std::uint64_t commitSeq = 0;
    bool committed = false;
};

/** The winning versions of one home line during replay: per-word
 *  max-seq-wins accumulators plus a presence mask. Slice seqs start
 *  at 1, so seqs[] == 0 means "no update". */
struct LineAcc
{
    std::uint64_t seqs[kWordsPerLine];
    std::uint64_t vals[kWordsPerLine];
    std::uint8_t mask;
};

} // namespace

RecoveryManager::RecoveryManager(HoopController &ctrl_)
    : ctrl(ctrl_), stats_("recovery"), runsC_(stats_.counter("runs")),
      txReplayedC_(stats_.counter("tx_replayed")),
      linesWrittenC_(stats_.counter("lines_written")),
      slicesRejectedC_(stats_.counter("slices_rejected")),
      tornCommitsC_(stats_.counter("torn_commits_detected")),
      bitFlipsC_(stats_.counter("bit_flips_detected")),
      headersRejectedC_(stats_.counter("headers_rejected")),
      blocksSkippedWatermarkC_(
          stats_.counter("blocks_skipped_by_watermark")),
      incompleteTxVetoedC_(stats_.counter("incomplete_tx_vetoed")),
      gcTrimmedTxReplayedC_(stats_.counter("gc_trimmed_tx_replayed")),
      blocksSkippedRetiredC_(stats_.counter("blocks_skipped_retired")),
      slicesSkippedBadC_(stats_.counter("slices_skipped_bad"))
{
}

RecoveryResult
RecoveryManager::run(unsigned threads,
                     const std::unordered_set<TxId> *allow)
{
    threads = std::max(1u, threads);
    OopRegion &region = ctrl.region_;
    RecoveryResult res;

    // ---- Phase 1: locate live blocks and commit records, using only
    // durable NVM state (block headers + address slices). Slices are
    // appended in sequence order, so a stale, invalid or corrupt slice
    // ends a block's live area. Nothing is trusted without its CRC: a
    // commit record that fails its CRC never enters the committed set,
    // and a committed transaction that may have lost chain slices to
    // corruption is dropped whole — recovery must never surface a
    // partial transaction. ----
    // Word-carrying slices the phase-1 scan accepted, in scan order.
    // Phase 2 replays straight from this cache instead of re-reading
    // and re-CRC-checking every slice off the device: acceptance
    // already proved crcOk, and the slots phase 2 used to re-scan but
    // phase 1 did not accept (program-verify-skipped bad slots) fail
    // their CRC there too, so the cached set IS phase 2's working set.
    std::vector<MemorySlice> replayable;
    // Reserve up to the region's slot count (the hard upper bound on
    // accepted slices), capped so a huge sparsely-filled region does
    // not commit gigabytes up front — beyond the cap growth falls
    // back to the usual geometric schedule.
    replayable.reserve(std::min<std::size_t>(
        static_cast<std::size_t>(region.numBlocks()) *
            region.slicesPerBlock(),
        std::size_t{1} << 19));
    FlatMap<TxInfo> txs;
    std::uint64_t max_commit = 0;
    // Lowest slice sequence number a corruption cut could have
    // swallowed. A CRC failure that ends a block's live area can only
    // hide slices newer than the last good slice before the cut
    // (slices append in sequence order); a block whose *header* fails
    // its CRC is bounded below by the GC watermark instead. While no
    // corruption is observed the floor sits above every real sequence
    // number, so nothing is vetoed for incompleteness.
    std::uint64_t corruptionFloor = ~0ull;
    const FaultModel &faults = ctrl.nvm_.faults();
    // Durable GC watermark (a single 8-byte word, so it never tears
    // into an invalid value): blocks below it are migrated home.
    const std::uint64_t gc_watermark = region.gcWatermark();

    for (std::uint32_t b = 0; b < region.numBlocks(); ++b) {
        // Crash point: between block-header scans. Recovery has
        // written nothing yet, so re-entering recovery after a crash
        // here sees the untouched post-crash image.
        ctrl.crashStep(CrashPointKind::RecoveryStep);
        if (region.faultToleranceEnabled() &&
            region.block(b).state == BlockState::Bad) {
            // Durably retired (the bitmap was adopted before this scan):
            // the cells are untrustworthy and the retirement contract
            // guarantees every live word was migrated home first.
            ++res.blocksSkippedRetired;
            continue;
        }
        const BlockHeaderView h = region.peekHeader(b);
        if (h.crcFailed) {
            ++res.headersRejected;
            // A torn header write never hides committed data: a torn
            // *recycle* header means the block's content was migrated
            // home and fenced before the recycle was issued (watermark
            // protocol), and a torn *(re)open* header means no slice in
            // the block had settled — by in-order channel completion a
            // settled slice implies a settled open write — so no
            // committed slice (acked, hence settled) ever lived there.
            // Only a media fault on the header line can swallow real
            // data; then the durable watermark still bounds the loss
            // (everything below it is migrated home), so the floor
            // drops to the watermark instead of zero. Lowering the
            // floor for harmless torn headers would veto — and thereby
            // half-apply — committed transactions whose chains span
            // the GC boundary.
            if (faults.mediaFaultyRange(region.blockBase(b),
                                        kCacheLineSize)) {
                // One refinement under runtime fault tolerance: a block
                // is only ever *opened* on a header that passed
                // program-verify, so a header on uncorrectable cells
                // means the block was never opened in this life — it
                // can hide nothing and must not depress the floor.
                if (!region.faultToleranceEnabled() ||
                    !faults.uncorrectableInRange(region.blockBase(b),
                                                 kCacheLineSize)) {
                    corruptionFloor =
                        std::min(corruptionFloor, gc_watermark);
                }
            }
        }
        if (!h.valid || h.state == BlockState::Unused)
            continue;
        if (h.openSeq < gc_watermark) {
            // The block sits below the durable GC watermark: its
            // committed words were migrated home and fenced before the
            // watermark was written, so this header is a recycle write
            // that tore back to its previous (self-consistent) value.
            // Replaying the resurrected slices would overlay the newer
            // migrated baseline with stale data — skip the block.
            ++res.blocksSkippedByWatermark;
            continue;
        }
        // Lowest sequence number a corruption cut in THIS block could
        // swallow. Slices are appended in strictly increasing global
        // sequence order, so a cut after a good slice with seq S can
        // only hide slices with seq > S; only a cut at the very first
        // slot could reach back to the block's openSeq.
        std::uint64_t block_floor = h.openSeq;
        for (std::uint32_t slot = 1; slot <= region.slicesPerBlock();
             ++slot) {
            const std::uint32_t idx =
                b * (region.slicesPerBlock() + 1) + slot;
            if (region.faultToleranceEnabled() &&
                region.slotUncorrectable(idx)) {
                // Program-verify skipped this slot at allocation time
                // (a slice never lands on uncorrectable cells), so it
                // hides no data. It must be stepped over BEFORE the
                // Invalid-type / CRC checks: its garbage bytes would
                // otherwise read as a cut and lose the good slices
                // written around it.
                ++res.slicesSkippedBad;
                continue;
            }
            const MemorySlice s = region.peekSlice(idx);
            if (s.type == SliceType::Invalid)
                break;
            if (!s.crcOk) {
                // Torn or corrupt: no field of this slice — including
                // seq and txId — can be trusted, so the block's live
                // area ends here. A commit record that tore never
                // enters `committed`, which is veto enough; acting on
                // its corrupt txId bytes could instead hit a
                // *different* transaction whose intact record lives
                // elsewhere. The cut may have swallowed chain slices
                // of any transaction young enough for this block, so
                // lower the corruption floor to the block's openSeq.
                ++res.slicesRejected;
                if (faults.mediaFaultyRange(region.sliceAddr(idx),
                                            MemorySlice::kSliceBytes))
                    ++res.bitFlipsDetected;
                if (s.type == SliceType::AddrRec)
                    ++res.tornCommitsDetected;
                corruptionFloor =
                    std::min(corruptionFloor, block_floor);
                break;
            }
            if (s.seq < h.openSeq)
                break; // stale slice from the block's previous life
            block_floor = s.seq + 1;
            ++res.slicesScanned;
            res.bytesScanned += MemorySlice::kSliceBytes;
            res.maxSeq = std::max(res.maxSeq, s.seq);
            if (s.txId != kInvalidTxId)
                res.maxTxId = std::max(res.maxTxId, s.txId);
            if (s.carriesWords())
                replayable.push_back(s);
            if (s.type == SliceType::Data) {
                if (s.txId != kInvalidTxId)
                    ++txs[s.txId].found;
            } else if (s.type == SliceType::AddrRec) {
                if (allow && !allow->count(s.record.txId))
                    continue; // vetoed by cross-controller consensus
                TxInfo &ti = txs[s.record.txId];
                ti.committed = true;
                ti.expected = s.record.sliceCount;
                ti.commitSeq = s.seq;
                max_commit = std::max(max_commit, s.record.commitId);
                res.maxTxId = std::max(res.maxTxId, s.record.txId);
            }
        }
    }

    // Chain completeness: a committed transaction must present every
    // Data slice its commit record counted. A shortfall has two
    // causes that demand opposite treatment. If corruption cut slices
    // out of a block old enough to have held part of this chain (its
    // openSeq is at or below the commit record's seq), replaying the
    // remainder could surface a torn transaction — drop it whole. If
    // no observed corruption could explain the gap, the missing
    // slices sat in blocks GC already recycled — GC only collects
    // all-committed blocks and migrates their words home first, so
    // the survivors overlay that migrated baseline and replaying them
    // completes the transaction (vetoing would leave it
    // half-applied).
    std::uint64_t replayed = 0;
    std::vector<TxId> committed_txs;
    txs.forEach([&](TxId tx, const TxInfo &ti) {
        if (ti.committed)
            committed_txs.push_back(tx);
    });
    for (TxId tx : committed_txs) {
        TxInfo &ti = *txs.find(tx);
        if (ti.found >= ti.expected) {
            ++replayed;
        } else if (corruptionFloor <= ti.commitSeq) {
            ++res.incompleteTxVetoed;
            ti.committed = false;
        } else {
            ++res.gcTrimmedTxReplayed;
            ++replayed;
        }
    }
    res.committedTxReplayed = replayed;

    // ---- Phase 2: scan committed slices into a line-keyed
    // accumulator. Every committed Data or Evict slice contributes its
    // words, and the highest sequence number wins. GC only ever
    // recycles sequence-order prefixes of the log, so every surviving
    // slice is newer than the home baseline and straight overlay is
    // safe. The `threads` parameter models the recovery engine's
    // parallelism and enters only the phase-4 time formula: the merge
    // rule is associative and commutative, so one host-side pass
    // computes the identical winner set the previous per-thread
    // maps-then-merge arrangement did, without the rendezvous cost. ----
    FlatMap<LineAcc> winners;
    // Last-line memo: slices pack consecutive words of one store burst,
    // so successive words usually land on the same home line. The
    // cached pointer can only be invalidated by table growth, which
    // only happens on a new-line insert — exactly when the memo
    // refreshes.
    Addr memo_line = kInvalidAddr;
    LineAcc *memo_acc = nullptr;
    for (const MemorySlice &s : replayable) {
        const TxInfo *ti = txs.find(s.txId);
        if (!ti || !ti->committed)
            continue;
        for (unsigned w = 0; w < s.count; ++w) {
            const Addr a = s.homeAddrs[w];
            const Addr la = lineAddr(a);
            if (la != memo_line) {
                memo_acc = &winners[la];
                memo_line = la;
            }
            LineAcc &g = *memo_acc;
            const unsigned wi =
                static_cast<unsigned>((a - la) / kWordSize);
            if (s.seq >= g.seqs[wi]) {
                g.seqs[wi] = s.seq;
                g.vals[wi] = s.words[w];
                g.mask |= static_cast<std::uint8_t>(1u << wi);
            }
        }
    }

    // ---- Phase 3: write the winners home, in ascending line-address
    // order (the order the previous tree-of-lines pass produced, so
    // the crash-point schedule is unchanged) ----
    // Copy the accumulators out alongside their line addresses so the
    // write-back loop streams through a sorted array instead of
    // re-probing the hash table once per line.
    std::uint64_t distinct_words = 0;
    std::vector<std::pair<Addr, LineAcc>> lines;
    lines.reserve(winners.size());
    winners.forEach([&](Addr line, const LineAcc &g) {
        lines.emplace_back(line, g);
        distinct_words += std::popcount(g.mask);
    });
    std::sort(lines.begin(), lines.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    for (const auto &[line, g] : lines) {
        // Crash point: between home-line replay writes. The OOP region
        // is untouched until recoverWithFilter() resets it after run()
        // returns, so a second recovery redoes the overlay idempotently
        // (winning words depend only on the durable slices).
        ctrl.crashStep(CrashPointKind::RecoveryStep);
        std::uint8_t buf[kCacheLineSize];
        ctrl.nvm_.peek(line, buf, kCacheLineSize);
        for (std::size_t w = 0; w < kWordsPerLine; ++w) {
            if (g.mask & (1u << w))
                std::memcpy(buf + w * kWordSize, &g.vals[w], kWordSize);
        }
        ctrl.nvm_.poke(line, buf, kCacheLineSize);
        ++res.homeLinesWritten;
    }

    // ---- Phase 4: timing model (Fig. 11) ----
    // Both scan passes and the write-back stream are limited by channel
    // bandwidth; per-slice parsing is CPU work that divides across the
    // recovery threads.
    const std::uint64_t total_slices = res.slicesScanned * 2;
    const std::uint64_t rw_bytes =
        res.bytesScanned * 2 + res.homeLinesWritten * kCacheLineSize * 2;
    const Tick channel_time = ctrl.nvm_.timing().transferTicks(
        static_cast<std::size_t>(rw_bytes));
    // Every scanned slice is CRC-verified before any field is trusted;
    // that work divides across the recovery threads like the parsing
    // work, but is reported separately so Fig. 11 runs can show the
    // integrity overhead.
    res.crcVerifyCost =
        static_cast<Tick>(total_slices) * kCrcVerifyCpuCost;
    const Tick cpu_time =
        (total_slices + threads - 1) / threads *
            (kPerSliceCpuCost + kCrcVerifyCpuCost) +
        static_cast<Tick>(distinct_words) * nsToTicks(5);
    res.time = std::max(channel_time, cpu_time) +
               ctrl.nvm_.timing().readLatency +
               ctrl.nvm_.timing().writeLatency;

    if (TraceBuffer *tr = ctrl.trace()) {
        // Recovery runs on a freshly-reset machine: the cores sit at
        // tick 0, so the phase spans start there. The scan phases are
        // charged the portion of the modelled time proportional to
        // their share of the channel traffic; replay gets the rest.
        const unsigned tid = ctrl.cfg.numCores + 1;
        Tick scan_t = res.time;
        if (rw_bytes > 0) {
            scan_t = static_cast<Tick>(
                static_cast<double>(res.time) *
                static_cast<double>(res.bytesScanned * 2) /
                static_cast<double>(rw_bytes));
        }
        tr->span("recovery.scan", "recovery", tid, 0, scan_t);
        tr->span("recovery.replay", "recovery", tid, scan_t, res.time);
        tr->span("recovery", "recovery", tid, 0, res.time);
    }
    res.bytesScanned = rw_bytes;

    runsC_ += 1;
    txReplayedC_ += res.committedTxReplayed;
    linesWrittenC_ += res.homeLinesWritten;
    slicesRejectedC_ += res.slicesRejected;
    tornCommitsC_ += res.tornCommitsDetected;
    bitFlipsC_ += res.bitFlipsDetected;
    headersRejectedC_ += res.headersRejected;
    blocksSkippedWatermarkC_ += res.blocksSkippedByWatermark;
    incompleteTxVetoedC_ += res.incompleteTxVetoed;
    gcTrimmedTxReplayedC_ += res.gcTrimmedTxReplayed;
    blocksSkippedRetiredC_ += res.blocksSkippedRetired;
    slicesSkippedBadC_ += res.slicesSkippedBad;
    return res;
}

} // namespace hoopnvm
