#include "hoop/mapping_table.hh"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/hash.hh"
#include "common/logging.hh"

namespace hoopnvm
{

namespace
{

/** Smallest power of two >= @p n. */
std::size_t
ceilPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

constexpr std::size_t kInitialSlots = 64;
constexpr std::size_t kNoSlot = std::numeric_limits<std::size_t>::max();

} // namespace

MappingTable::MappingTable(std::uint64_t bytes)
    : capacity_(static_cast<std::size_t>(bytes / kEntryBytes))
{
    HOOP_ASSERT(capacity_ > 0, "mapping table too small for one entry");
    // Full table at <= 3/4 probe load: 4/3 * capacity slots, rounded up
    // to a power of two so the probe mask is a single AND.
    maxSlots_ = ceilPow2((capacity_ * 4 + 2) / 3);
    const std::size_t n = std::min(kInitialSlots, maxSlots_);
    lines_.assign(n, kEmptyLine);
    slices_.assign(n, 0);
}

std::size_t
MappingTable::homeSlot(Addr line) const
{
    return static_cast<std::size_t>(mixHash(line / kCacheLineSize)) &
           (lines_.size() - 1);
}

std::size_t
MappingTable::findSlot(Addr line) const
{
    const std::size_t mask = lines_.size() - 1;
    std::size_t i = homeSlot(line);
    while (lines_[i] != kEmptyLine) {
        if (lines_[i] == line)
            return i;
        i = (i + 1) & mask;
    }
    return kNoSlot;
}

void
MappingTable::grow()
{
    std::vector<Addr> old_lines = std::move(lines_);
    std::vector<std::uint32_t> old_slices = std::move(slices_);
    lines_.assign(old_lines.size() * 2, kEmptyLine);
    slices_.assign(old_slices.size() * 2, 0);
    const std::size_t mask = lines_.size() - 1;
    for (std::size_t s = 0; s < old_lines.size(); ++s) {
        if (old_lines[s] == kEmptyLine)
            continue;
        std::size_t i = homeSlot(old_lines[s]);
        while (lines_[i] != kEmptyLine)
            i = (i + 1) & mask;
        lines_[i] = old_lines[s];
        slices_[i] = old_slices[s];
    }
}

bool
MappingTable::insert(Addr line, std::uint32_t slice_idx)
{
    HOOP_ASSERT(isAligned(line, kCacheLineSize),
                "mapping table keys are line addresses");
    const std::size_t existing = findSlot(line);
    if (existing != kNoSlot) {
        slices_[existing] = slice_idx; // update-in-place, even full
        return true;
    }
    if (size_ >= capacity_)
        return false;
    // Grow before the probe load factor crosses 3/4 (maxSlots_ keeps
    // even a completely full table at or below that bound).
    if (lines_.size() < maxSlots_ && (size_ + 1) * 4 > lines_.size() * 3)
        grow();
    const std::size_t mask = lines_.size() - 1;
    std::size_t i = homeSlot(line);
    while (lines_[i] != kEmptyLine)
        i = (i + 1) & mask;
    lines_[i] = line;
    slices_[i] = slice_idx;
    ++size_;
    return true;
}

std::optional<std::uint32_t>
MappingTable::lookup(Addr line) const
{
    const std::size_t i = findSlot(line);
    if (i == kNoSlot)
        return std::nullopt;
    return slices_[i];
}

void
MappingTable::remove(Addr line)
{
    std::size_t i = findSlot(line);
    if (i == kNoSlot)
        return;
    --size_;
    // Backward-shift deletion: pull displaced entries over the hole so
    // no tombstones accumulate and probe chains stay short.
    const std::size_t mask = lines_.size() - 1;
    std::size_t j = i;
    for (;;) {
        j = (j + 1) & mask;
        if (lines_[j] == kEmptyLine)
            break;
        const std::size_t home = homeSlot(lines_[j]);
        // lines_[j] can fill the hole unless its home slot lies
        // (cyclically) strictly after the hole — then it is already
        // reachable from its home and must stay put.
        const bool keep = (i <= j) ? (i < home && home <= j)
                                   : (i < home || home <= j);
        if (!keep) {
            lines_[i] = lines_[j];
            slices_[i] = slices_[j];
            i = j;
        }
    }
    lines_[i] = kEmptyLine;
    slices_[i] = 0;
}

void
MappingTable::clear()
{
    const std::size_t n = std::min(kInitialSlots, maxSlots_);
    lines_.assign(n, kEmptyLine);
    slices_.assign(n, 0);
    size_ = 0;
}

} // namespace hoopnvm
