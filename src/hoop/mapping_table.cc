#include "hoop/mapping_table.hh"

#include "common/logging.hh"

namespace hoopnvm
{

MappingTable::MappingTable(std::uint64_t bytes)
    : capacity_(static_cast<std::size_t>(bytes / kEntryBytes))
{
    HOOP_ASSERT(capacity_ > 0, "mapping table too small for one entry");
    map.reserve(capacity_);
}

bool
MappingTable::insert(Addr line, std::uint32_t slice_idx)
{
    HOOP_ASSERT(isAligned(line, kCacheLineSize),
                "mapping table keys are line addresses");
    auto it = map.find(line);
    if (it != map.end()) {
        it->second = slice_idx;
        return true;
    }
    if (map.size() >= capacity_)
        return false;
    map.emplace(line, slice_idx);
    return true;
}

std::optional<std::uint32_t>
MappingTable::lookup(Addr line) const
{
    auto it = map.find(line);
    if (it == map.end())
        return std::nullopt;
    return it->second;
}

void
MappingTable::remove(Addr line)
{
    map.erase(line);
}

void
MappingTable::clear()
{
    map.clear();
}

} // namespace hoopnvm
