#include "mem/cache.hh"

#include <algorithm>
#include <cstring>

#include "common/hash.hh"
#include "common/logging.hh"

namespace hoopnvm
{

Cache::Cache(const std::string &name, std::uint64_t size_bytes,
             unsigned assoc_, Tick latency)
    : assoc(assoc_), latency_(latency), stats_(name),
      hitsC_(stats_.counter("hits")),
      missesC_(stats_.counter("misses")),
      insertionsC_(stats_.counter("insertions")),
      dirtyEvictionsC_(stats_.counter("dirty_evictions")),
      cleanEvictionsC_(stats_.counter("clean_evictions"))
{
    HOOP_ASSERT(assoc > 0, "associativity must be positive");
    HOOP_ASSERT(size_bytes % (assoc * kCacheLineSize) == 0,
                "cache size not a multiple of assoc * line size");
    numSets_ = static_cast<unsigned>(
        size_bytes / (assoc * kCacheLineSize));
    HOOP_ASSERT(numSets_ > 0, "cache must have at least one set");
    const std::size_t ways = static_cast<std::size_t>(numSets_) * assoc;
    tags_.assign(ways, kInvalidAddr);
    lastUse_.assign(ways, 0);
    meta_.resize(ways);
    data_.resize(ways * kCacheLineSize);
}

unsigned
Cache::setIndex(Addr line_addr) const
{
    // Mix the address so power-of-two strides do not alias pathologically.
    return static_cast<unsigned>(
        mixHash(line_addr / kCacheLineSize) % numSets_);
}

CacheLine
Cache::probe(Addr line_addr, bool touch)
{
    HOOP_ASSERT(isAligned(line_addr, kCacheLineSize),
                "probe of unaligned line address");
    const std::size_t base =
        static_cast<std::size_t>(setIndex(line_addr)) * assoc;
    for (unsigned w = 0; w < assoc; ++w) {
        if (tags_[base + w] == line_addr) {
            if (touch)
                lastUse_[base + w] = ++useClock;
            ++hitsC_;
            return viewOf(base + w);
        }
    }
    ++missesC_;
    return {};
}

CacheLine
Cache::peekLine(Addr line_addr) const
{
    const std::size_t base =
        static_cast<std::size_t>(setIndex(line_addr)) * assoc;
    for (unsigned w = 0; w < assoc; ++w) {
        if (tags_[base + w] == line_addr)
            return viewOf(base + w);
    }
    return {};
}

std::size_t
Cache::findVictim(Addr line_addr)
{
    HOOP_ASSERT(isAligned(line_addr, kCacheLineSize),
                "insert of unaligned line address");
    const std::size_t base =
        static_cast<std::size_t>(setIndex(line_addr)) * assoc;

    // One fused scan finds an existing copy, a free way, or the LRU
    // victim. Invalidation zeroes lastUse and valid lines always carry
    // lastUse >= 1 (fillSlot/touch assign ++useClock), so the min-
    // lastUse way IS the first invalid way whenever one exists — the
    // same choice the previous separate invalid-scan + LRU-scan pair
    // made (strict < keeps the lowest index on ties, exactly like the
    // old first-invalid preference).
    std::size_t victim = base;
    for (unsigned w = 0; w < assoc; ++w) {
        if (tags_[base + w] == line_addr)
            return base + w;
        if (lastUse_[base + w] < lastUse_[victim])
            victim = base + w;
    }
    if (tags_[victim] != kInvalidAddr) {
        if (meta_[victim].dirty)
            ++dirtyEvictionsC_;
        else
            ++cleanEvictionsC_;
    }
    return victim;
}

void
Cache::fillSlot(std::size_t i, Addr line_addr, const std::uint8_t *data,
                bool dirty, bool persistent, CoreId writer, TxId tx_id,
                std::uint8_t word_mask)
{
    CacheLineMeta &m = meta_[i];
    const bool reinsert = tags_[i] == line_addr;
    tags_[i] = line_addr;
    m.dirty = reinsert ? (m.dirty || dirty) : dirty;
    m.persistent = reinsert ? (m.persistent || persistent) : persistent;
    m.wordMask = reinsert ? (m.wordMask | word_mask) : word_mask;
    if (!reinsert || dirty) {
        m.lastWriter = writer;
        m.txId = tx_id;
    }
    std::memcpy(&data_[i * kCacheLineSize], data, kCacheLineSize);
    lastUse_[i] = ++useClock;
    ++insertionsC_;
}

CacheVictim
Cache::insert(Addr line_addr, const std::uint8_t *data, bool dirty,
              bool persistent, CoreId writer, TxId tx_id,
              std::uint8_t word_mask)
{
    CacheVictim victim;
    insert(line_addr, data, dirty, persistent, writer, tx_id, word_mask,
           [&victim](const CacheLine &lru) {
               victim.valid = true;
               victim.addr = lru.addr();
               victim.dirty = lru.dirty();
               victim.persistent = lru.persistent();
               victim.lastWriter = lru.lastWriter();
               victim.txId = lru.txId();
               victim.wordMask = lru.wordMask();
               std::memcpy(victim.data.data(), lru.data(),
                           kCacheLineSize);
           });
    return victim;
}

void
Cache::invalidate(Addr line_addr)
{
    const std::size_t base =
        static_cast<std::size_t>(setIndex(line_addr)) * assoc;
    for (unsigned w = 0; w < assoc; ++w) {
        if (tags_[base + w] == line_addr) {
            tags_[base + w] = kInvalidAddr;
            CacheLineMeta &m = meta_[base + w];
            m.dirty = false;
            m.persistent = false;
            m.txId = kInvalidTxId;
            m.wordMask = 0;
            // Zero stamp ranks invalid ways first in findVictim.
            lastUse_[base + w] = 0;
            return;
        }
    }
}

void
Cache::invalidateAll()
{
    std::fill(tags_.begin(), tags_.end(), kInvalidAddr);
    for (auto &m : meta_) {
        m.dirty = false;
        m.persistent = false;
        m.txId = kInvalidTxId;
        m.wordMask = 0;
    }
    std::fill(lastUse_.begin(), lastUse_.end(), 0);
}

} // namespace hoopnvm
