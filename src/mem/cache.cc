#include "mem/cache.hh"

#include <cstring>

#include "common/hash.hh"
#include "common/logging.hh"

namespace hoopnvm
{

Cache::Cache(const std::string &name, std::uint64_t size_bytes,
             unsigned assoc_, Tick latency)
    : assoc(assoc_), latency_(latency), stats_(name),
      hitsC_(stats_.counter("hits")),
      missesC_(stats_.counter("misses")),
      insertionsC_(stats_.counter("insertions")),
      dirtyEvictionsC_(stats_.counter("dirty_evictions")),
      cleanEvictionsC_(stats_.counter("clean_evictions"))
{
    HOOP_ASSERT(assoc > 0, "associativity must be positive");
    HOOP_ASSERT(size_bytes % (assoc * kCacheLineSize) == 0,
                "cache size not a multiple of assoc * line size");
    numSets_ = static_cast<unsigned>(
        size_bytes / (assoc * kCacheLineSize));
    HOOP_ASSERT(numSets_ > 0, "cache must have at least one set");
    lines.resize(static_cast<std::size_t>(numSets_) * assoc);
}

unsigned
Cache::setIndex(Addr line_addr) const
{
    // Mix the address so power-of-two strides do not alias pathologically.
    return static_cast<unsigned>(
        mixHash(line_addr / kCacheLineSize) % numSets_);
}

CacheLine *
Cache::probe(Addr line_addr, bool touch)
{
    HOOP_ASSERT(isAligned(line_addr, kCacheLineSize),
                "probe of unaligned line address");
    const unsigned set = setIndex(line_addr);
    for (unsigned w = 0; w < assoc; ++w) {
        CacheLine &line = lines[static_cast<std::size_t>(set) * assoc + w];
        if (line.valid && line.addr == line_addr) {
            if (touch)
                line.lastUse = ++useClock;
            ++hitsC_;
            return &line;
        }
    }
    ++missesC_;
    return nullptr;
}

CacheLine *
Cache::findLine(Addr line_addr)
{
    const unsigned set = setIndex(line_addr);
    for (unsigned w = 0; w < assoc; ++w) {
        CacheLine &line =
            lines[static_cast<std::size_t>(set) * assoc + w];
        if (line.valid && line.addr == line_addr)
            return &line;
    }
    return nullptr;
}

const CacheLine *
Cache::peekLine(Addr line_addr) const
{
    const unsigned set = setIndex(line_addr);
    for (unsigned w = 0; w < assoc; ++w) {
        const CacheLine &line =
            lines[static_cast<std::size_t>(set) * assoc + w];
        if (line.valid && line.addr == line_addr)
            return &line;
    }
    return nullptr;
}

CacheLine *
Cache::findVictim(Addr line_addr)
{
    HOOP_ASSERT(isAligned(line_addr, kCacheLineSize),
                "insert of unaligned line address");
    const unsigned set = setIndex(line_addr);
    CacheLine *slot = nullptr;

    // Reuse an existing copy or an invalid way before evicting.
    for (unsigned w = 0; w < assoc; ++w) {
        CacheLine &line = lines[static_cast<std::size_t>(set) * assoc + w];
        if (line.valid && line.addr == line_addr)
            return &line;
        if (!line.valid && !slot)
            slot = &line;
    }
    if (slot)
        return slot;

    // Evict the LRU way.
    CacheLine *lru = nullptr;
    for (unsigned w = 0; w < assoc; ++w) {
        CacheLine &line =
            lines[static_cast<std::size_t>(set) * assoc + w];
        if (!lru || line.lastUse < lru->lastUse)
            lru = &line;
    }
    if (lru->dirty)
        ++dirtyEvictionsC_;
    else
        ++cleanEvictionsC_;
    return lru;
}

void
Cache::fillSlot(CacheLine &slot, Addr line_addr, const std::uint8_t *data,
                bool dirty, bool persistent, CoreId writer, TxId tx_id,
                std::uint8_t word_mask)
{
    const bool reinsert = slot.valid && slot.addr == line_addr;
    slot.addr = line_addr;
    slot.valid = true;
    slot.dirty = reinsert ? (slot.dirty || dirty) : dirty;
    slot.persistent =
        reinsert ? (slot.persistent || persistent) : persistent;
    slot.wordMask = reinsert ? (slot.wordMask | word_mask) : word_mask;
    if (!reinsert || dirty) {
        slot.lastWriter = writer;
        slot.txId = tx_id;
    }
    std::memcpy(slot.data.data(), data, kCacheLineSize);
    slot.lastUse = ++useClock;
    ++insertionsC_;
}

CacheVictim
Cache::insert(Addr line_addr, const std::uint8_t *data, bool dirty,
              bool persistent, CoreId writer, TxId tx_id,
              std::uint8_t word_mask)
{
    CacheVictim victim;
    insert(line_addr, data, dirty, persistent, writer, tx_id, word_mask,
           [&victim](const CacheLine &lru) {
               victim.valid = true;
               victim.addr = lru.addr;
               victim.dirty = lru.dirty;
               victim.persistent = lru.persistent;
               victim.lastWriter = lru.lastWriter;
               victim.txId = lru.txId;
               victim.wordMask = lru.wordMask;
               victim.data = lru.data;
           });
    return victim;
}

void
Cache::invalidate(Addr line_addr)
{
    const unsigned set = setIndex(line_addr);
    for (unsigned w = 0; w < assoc; ++w) {
        CacheLine &line = lines[static_cast<std::size_t>(set) * assoc + w];
        if (line.valid && line.addr == line_addr) {
            line.valid = false;
            line.dirty = false;
            line.persistent = false;
            line.txId = kInvalidTxId;
            line.wordMask = 0;
            return;
        }
    }
}

void
Cache::invalidateAll()
{
    for (auto &line : lines) {
        line.valid = false;
        line.dirty = false;
        line.persistent = false;
        line.txId = kInvalidTxId;
        line.wordMask = 0;
    }
}

} // namespace hoopnvm
