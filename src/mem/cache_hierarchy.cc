#include "mem/cache_hierarchy.hh"

#include <cstring>

#include "common/logging.hh"

namespace hoopnvm
{

namespace
{

/**
 * Capture an evicted line's tag state; the 64-byte payload is copied
 * only when the victim is dirty — every retirement path either never
 * reads a clean victim's data or overwrites it wholesale from a dirtier
 * upper-level copy first.
 */
inline void
captureVictim(const CacheLine &lru, CacheVictim &v)
{
    v.valid = true;
    v.addr = lru.addr();
    v.dirty = lru.dirty();
    v.persistent = lru.persistent();
    v.lastWriter = lru.lastWriter();
    v.txId = lru.txId();
    v.wordMask = lru.wordMask();
    if (lru.dirty())
        std::memcpy(v.data.data(), lru.data(), kCacheLineSize);
}

} // namespace

CacheHierarchy::CacheHierarchy(const SystemConfig &cfg_)
    : cfg(cfg_), stats_("hierarchy"),
      loadsC_(stats_.counter("loads")),
      storesC_(stats_.counter("stores")),
      llcFillsC_(stats_.counter("llc_fills")),
      invalidationsC_(stats_.counter("invalidations")),
      downgradesC_(stats_.counter("downgrades")),
      backInvalidationsC_(stats_.counter("back_invalidations")),
      llcDirtyWritebacksC_(stats_.counter("llc_dirty_writebacks")),
      llcMissLatH_(stats_.histogram("llc_miss_latency_ticks"))
{
    HOOP_ASSERT(cfg.numCores >= 1 && cfg.numCores <= 32,
                "sharer mask supports 1..32 cores");
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        l1s.push_back(std::make_unique<Cache>(
            "l1." + std::to_string(c), cfg.cache.l1Size, cfg.cache.l1Assoc,
            cfg.cache.l1Latency));
        l2s.push_back(std::make_unique<Cache>(
            "l2." + std::to_string(c), cfg.cache.l2Size, cfg.cache.l2Assoc,
            cfg.cache.l2Latency));
    }
    llc_ = std::make_unique<Cache>("llc", cfg.cache.llcSize,
                                   cfg.cache.llcAssoc,
                                   cfg.cache.llcLatency);
    memo_.resize(cfg.numCores);
}

void
CacheHierarchy::reconcileSharers(CoreId core, Addr line,
                                 CacheLine llc_line, bool exclusive)
{
    std::uint32_t *mask = sharers.find(line);
    if (!mask)
        return;
    const std::uint32_t others = *mask & ~(std::uint32_t{1} << core);
    if (others == 0)
        return;
    // Another core's copy is about to be merged, downgraded or
    // invalidated: no memo taken before this point may survive.
    ++structGen_;

    for (unsigned c = 0; c < cfg.numCores; ++c) {
        if (!(others & (std::uint32_t{1} << c)))
            continue;
        // L2 first, then L1: when both hold the line, the L1 copy is
        // the newer one and must win the merge.
        for (Cache *cache : {l2s[c].get(), l1s[c].get()}) {
            CacheLine upper = cache->findLine(line);
            if (!upper)
                continue;
            const bool upper_dirty = upper.dirty();
            if (upper_dirty) {
                std::memcpy(llc_line.data(), upper.data(),
                            kCacheLineSize);
                llc_line.dirty() = true;
                llc_line.persistent() |= upper.persistent();
                llc_line.lastWriter() = upper.lastWriter();
                llc_line.txId() = upper.txId();
                llc_line.wordMask() |= upper.wordMask();
            }
            if (exclusive) {
                cache->invalidate(line);
                ++invalidationsC_;
            } else if (upper_dirty) {
                // Downgrade: LLC now has the data; drop the dirty copy
                // so a single up-to-date copy exists below.
                cache->invalidate(line);
                ++downgradesC_;
            }
        }
        if (exclusive)
            *mask &= ~(std::uint32_t{1} << c);
    }
    if (*mask == 0)
        sharers.erase(line);
}

CacheLine
CacheHierarchy::ensureInL1(CoreId core, Addr line, bool for_store,
                           Tick &t)
{
    Cache &l1 = *l1s[core];
    Cache &l2 = *l2s[core];

    t += l1.latency();
    if (CacheLine l = l1.probe(line)) {
        if (for_store) {
            // Another core may hold a stale copy; invalidate it.
            CacheLine llcl = llc_->findLine(line);
            if (llcl)
                reconcileSharers(core, line, llcl, /*exclusive=*/true);
            sharers[line] |= std::uint32_t{1} << core;
        }
        return l;
    }

    t += l2.latency();
    if (CacheLine l = l2.probe(line)) {
        // Promote a clean copy into L1; dirtiness stays in L2.
        insertL1(core, line, l.data(), false, false, core,
                 kInvalidTxId, 0, t);
        CacheLine l1l = l1.findLine(line);
        HOOP_ASSERT(l1l, "L1 insert must succeed");
        if (for_store) {
            CacheLine llcl = llc_->findLine(line);
            if (llcl)
                reconcileSharers(core, line, llcl, /*exclusive=*/true);
            sharers[line] |= std::uint32_t{1} << core;
        }
        return l1l;
    }

    t += llc_->latency();
    CacheLine llcl = llc_->probe(line);
    if (!llcl) {
        // LLC miss: ask the persistence controller for the line.
        ++llcFillsC_;
        std::uint8_t buf[kCacheLineSize];
        FillResult fr = ctrl->fillLine(core, line, buf, t);
        llcMissLatH_.record(fr.completion > t ? fr.completion - t : 0);
        t = fr.completion;
        insertLlc(core, line, buf, fr.dirty, fr.persistent, core,
                  fr.txId, fr.wordMask, t);
        llcl = llc_->findLine(line);
        HOOP_ASSERT(llcl, "LLC insert must succeed");
    }

    reconcileSharers(core, line, llcl, for_store);
    sharers[line] |= std::uint32_t{1} << core;

    // Promote clean copies upward; the LLC keeps dirty ownership.
    insertL2(core, line, llcl.data(), false, false, core,
             kInvalidTxId, 0, t);
    insertL1(core, line, llcl.data(), false, false, core,
             kInvalidTxId, 0, t);
    CacheLine l1l = l1.findLine(line);
    HOOP_ASSERT(l1l, "L1 fill must succeed");
    return l1l;
}

Tick
CacheHierarchy::loadWord(CoreId core, Addr addr, std::uint64_t &out,
                         Tick now)
{
    if (cfg.fastPath) {
        WordMemo &m = memo_[core];
        if (m.gen == structGen_ && m.line == lineAddr(addr))
            return loadWordHit(core, m.view, addr, out, now);
        CacheLine line;
        const Tick t = loadWordResolved(core, addr, out, now, line);
        m = WordMemo{lineAddr(addr), structGen_, false, line};
        return t;
    }
    CacheLine line;
    return loadWordResolved(core, addr, out, now, line);
}

Tick
CacheHierarchy::loadWordResolved(CoreId core, Addr addr,
                                 std::uint64_t &out, Tick now,
                                 CacheLine &line)
{
    HOOP_ASSERT(isAligned(addr, kWordSize), "unaligned word load");
    ++loadsC_;
    Tick t = now + cfg.opCost();
    // Software translation overheads (e.g. LSM's index walk) apply
    // when the access leaves the L1 — hot translations stay cached
    // alongside their hot data.
    if (!l1s[core]->peekLine(lineAddr(addr)))
        t += ctrl->loadOverhead(core, addr, t);
    line = ensureInL1(core, lineAddr(addr), false, t);
    std::memcpy(&out, line.data() + (addr - lineAddr(addr)), kWordSize);
    return t;
}

Tick
CacheHierarchy::loadWordHit(CoreId core, CacheLine line, Addr addr,
                            std::uint64_t &out, Tick now)
{
    // The word-at-a-time path for a second word of a resident line:
    // opCost, an L1 probe hit (latency, hit counter, LRU touch), no
    // load overhead (the line is in L1), no controller involvement.
    ++loadsC_;
    Tick t = now + cfg.opCost();
    t += l1s[core]->latency();
    l1s[core]->touchHit(line);
    std::memcpy(&out, line.data() + (addr - line.addr()), kWordSize);
    return t;
}

Tick
CacheHierarchy::storeWord(CoreId core, Addr addr, std::uint64_t value,
                          Tick now)
{
    if (cfg.fastPath) {
        WordMemo &m = memo_[core];
        if (m.gen == structGen_ && m.line == lineAddr(addr) &&
            m.exclusive)
            return storeWordHit(core, m.view, addr, value, now);
        CacheLine line;
        const Tick t = storeWordResolved(core, addr, value, now, line);
        m = WordMemo{lineAddr(addr), structGen_, true, line};
        return t;
    }
    CacheLine line;
    return storeWordResolved(core, addr, value, now, line);
}

Tick
CacheHierarchy::storeWordResolved(CoreId core, Addr addr,
                                  std::uint64_t value, Tick now,
                                  CacheLine &line)
{
    HOOP_ASSERT(isAligned(addr, kWordSize), "unaligned word store");
    ++storesC_;
    Tick t = now + cfg.opCost();
    line = ensureInL1(core, lineAddr(addr), true, t);
    std::memcpy(line.data() + (addr - lineAddr(addr)), &value,
                kWordSize);
    line.dirty() = true;
    line.lastWriter() = core;
    line.wordMask() |= static_cast<std::uint8_t>(
        1u << ((addr - lineAddr(addr)) / kWordSize));

    const bool in_tx = ctrl->inTx(core);
    if (in_tx) {
        line.persistent() = true;
        line.txId() = ctrl->currentTx(core);
        std::uint8_t bytes[kWordSize];
        std::memcpy(bytes, &value, kWordSize);
        t += ctrl->storeWord(core, addr, bytes, t);
    }
    return t;
}

Tick
CacheHierarchy::storeWordHit(CoreId core, CacheLine line, Addr addr,
                             std::uint64_t value, Tick now)
{
    // The word-at-a-time path for a second store to a line this core
    // already holds exclusive: the L1 probe hits (latency, hit
    // counter, LRU touch) and the coherence work — LLC lookup, sharer
    // reconciliation, sharer-mask OR — is a structural no-op (the
    // first store stripped every other sharer and set this core's
    // bit), so it is skipped rather than re-executed.
    ++storesC_;
    Tick t = now + cfg.opCost();
    t += l1s[core]->latency();
    l1s[core]->touchHit(line);
    std::memcpy(line.data() + (addr - line.addr()), &value, kWordSize);
    line.dirty() = true;
    line.lastWriter() = core;
    line.wordMask() |= static_cast<std::uint8_t>(
        1u << ((addr - line.addr()) / kWordSize));

    const bool in_tx = ctrl->inTx(core);
    if (in_tx) {
        line.persistent() = true;
        line.txId() = ctrl->currentTx(core);
        std::uint8_t bytes[kWordSize];
        std::memcpy(bytes, &value, kWordSize);
        t += ctrl->storeWord(core, addr, bytes, t);
    }
    return t;
}

void
CacheHierarchy::insertL1(CoreId core, Addr line, const std::uint8_t *data,
                         bool dirty, bool persistent, CoreId writer,
                         TxId tx, std::uint8_t mask, Tick now)
{
    ++structGen_;
    // The victim is captured inside the insert but processed only
    // after it completes, so nested evictions (which may back-
    // invalidate the line being inserted) observe the same hierarchy
    // state as before the zero-copy rework.
    CacheVictim v;
    l1s[core]->insert(line, data, dirty, persistent, writer, tx, mask,
                      [&v](const CacheLine &lru) {
                          captureVictim(lru, v);
                      });
    if (!v.valid)
        return;
    if (v.dirty) {
        insertL2(core, v.addr, v.data.data(), true, v.persistent,
                 v.lastWriter, v.txId, v.wordMask, now);
    } else {
        updateSharerOnDrop(core, v.addr);
    }
}

void
CacheHierarchy::insertL2(CoreId core, Addr line, const std::uint8_t *data,
                         bool dirty, bool persistent, CoreId writer,
                         TxId tx, std::uint8_t mask, Tick now)
{
    ++structGen_;
    CacheVictim v;
    l2s[core]->insert(line, data, dirty, persistent, writer, tx, mask,
                      [&v](const CacheLine &lru) {
                          captureVictim(lru, v);
                      });
    if (!v.valid)
        return;

    // Maintain L2 inclusion of L1: merge and drop any L1 copy.
    if (CacheLine l1l = l1s[core]->findLine(v.addr)) {
        if (l1l.dirty()) {
            std::memcpy(v.data.data(), l1l.data(), kCacheLineSize);
            v.dirty = true;
            v.persistent |= l1l.persistent();
            v.lastWriter = l1l.lastWriter();
            v.txId = l1l.txId();
            v.wordMask |= l1l.wordMask();
        }
        l1s[core]->invalidate(v.addr);
    }
    updateSharerOnDrop(core, v.addr);

    if (v.dirty) {
        insertLlc(core, v.addr, v.data.data(), true, v.persistent,
                  v.lastWriter, v.txId, v.wordMask, now);
    }
}

void
CacheHierarchy::insertLlc(CoreId core, Addr line, const std::uint8_t *data,
                          bool dirty, bool persistent, CoreId writer,
                          TxId tx, std::uint8_t mask, Tick now)
{
    (void)core;
    ++structGen_;
    CacheVictim v;
    llc_->insert(line, data, dirty, persistent, writer, tx, mask,
                 [&v](const CacheLine &lru) {
                     captureVictim(lru, v);
                 });
    if (v.valid)
        retireLlcVictim(v, now);
}

void
CacheHierarchy::retireLlcVictim(CacheVictim &victim, Tick now)
{
    // Inclusive LLC: back-invalidate every upper-level copy, folding
    // any dirty data into the victim before it leaves the hierarchy.
    std::uint32_t *mask = sharers.find(victim.addr);
    if (mask) {
        const std::uint32_t bits = *mask;
        for (unsigned c = 0; c < cfg.numCores; ++c) {
            if (!(bits & (std::uint32_t{1} << c)))
                continue;
            // L2 before L1: the L1 copy is newer when both exist.
            for (Cache *cache : {l2s[c].get(), l1s[c].get()}) {
                CacheLine upper = cache->findLine(victim.addr);
                if (!upper)
                    continue;
                if (upper.dirty()) {
                    std::memcpy(victim.data.data(), upper.data(),
                                kCacheLineSize);
                    victim.dirty = true;
                    victim.persistent |= upper.persistent();
                    victim.lastWriter = upper.lastWriter();
                    victim.txId = upper.txId();
                    victim.wordMask |= upper.wordMask();
                }
                cache->invalidate(victim.addr);
            }
        }
        sharers.erase(victim.addr);
        ++backInvalidationsC_;
    }

    if (victim.dirty) {
        ++llcDirtyWritebacksC_;
        // Crash point: the dirty victim has left the hierarchy but the
        // controller has not yet accepted (and persisted) it.
        ctrl->crashStep(CrashPointKind::Eviction);
        ctrl->evictLine(victim.lastWriter, victim.addr,
                        victim.data.data(), victim.persistent,
                        victim.txId, victim.wordMask, now);
    }
}

void
CacheHierarchy::updateSharerOnDrop(CoreId core, Addr line)
{
    if (l1s[core]->peekLine(line) || l2s[core]->peekLine(line))
        return;
    std::uint32_t *mask = sharers.find(line);
    if (!mask)
        return;
    *mask &= ~(std::uint32_t{1} << core);
    if (*mask == 0)
        sharers.erase(line);
}

void
CacheHierarchy::debugRead(Addr addr, void *buf, std::size_t len) const
{
    auto *out = static_cast<std::uint8_t *>(buf);
    while (len > 0) {
        const Addr line = lineAddr(addr);
        const std::size_t off = addr - line;
        const std::size_t chunk =
            std::min<std::size_t>(len, kCacheLineSize - off);

        if (debugBatch_) {
            // Verification batch: resolve the line once and serve the
            // remaining words of it from the memo (nothing can mutate
            // while the batch is open).
            if (line != debugMemoLine_) {
                CacheLine hit;
                for (unsigned c = 0; c < cfg.numCores && !hit; ++c) {
                    hit = l1s[c]->peekLine(line);
                    if (!hit)
                        hit = l2s[c]->peekLine(line);
                }
                if (!hit)
                    hit = llc_->peekLine(line);
                if (hit)
                    std::memcpy(debugMemoData_, hit.data(),
                                kCacheLineSize);
                else
                    ctrl->debugReadLine(line, debugMemoData_);
                debugMemoLine_ = line;
            }
            std::memcpy(out, debugMemoData_ + off, chunk);
            addr += chunk;
            out += chunk;
            len -= chunk;
            continue;
        }

        CacheLine found;
        for (unsigned c = 0; c < cfg.numCores && !found; ++c) {
            found = l1s[c]->peekLine(line);
            if (!found)
                found = l2s[c]->peekLine(line);
        }
        if (!found)
            found = llc_->peekLine(line);

        if (found) {
            std::memcpy(out, found.data() + off, chunk);
        } else {
            std::uint8_t tmp[kCacheLineSize];
            ctrl->debugReadLine(line, tmp);
            std::memcpy(out, tmp + off, chunk);
        }
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
CacheHierarchy::dropAll()
{
    ++structGen_;
    for (auto &c : l1s)
        c->invalidateAll();
    for (auto &c : l2s)
        c->invalidateAll();
    llc_->invalidateAll();
    sharers.clear();
}

void
CacheHierarchy::writebackAll(Tick now)
{
    ++structGen_;
    // Drain strictly top-down: L1 dirt folds into L2 first (an L2 copy
    // of the same line may be dirty but stale), then L2 into the LLC.
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        l1s[c]->forEachLine([&](CacheLine &line) {
            if (!line.dirty())
                return;
            insertL2(c, line.addr(), line.data(), true,
                     line.persistent(), line.lastWriter(), line.txId(),
                     line.wordMask(), now);
            line.dirty() = false;
        });
        l1s[c]->invalidateAll();
        l2s[c]->forEachLine([&](CacheLine &line) {
            if (!line.dirty())
                return;
            insertLlc(c, line.addr(), line.data(), true,
                      line.persistent(), line.lastWriter(), line.txId(),
                      line.wordMask(), now);
            line.dirty() = false;
        });
        l2s[c]->invalidateAll();
    }
    llc_->forEachLine([&](CacheLine &line) {
        if (!line.dirty())
            return;
        ctrl->evictLine(line.lastWriter(), line.addr(), line.data(),
                        line.persistent(), line.txId(), line.wordMask(),
                        now);
        line.dirty() = false;
    });
    llc_->invalidateAll();
    sharers.clear();
}

void
CacheHierarchy::resetStats()
{
    stats_.resetAll();
    llc_->stats().resetAll();
    for (auto &c : l1s)
        c->stats().resetAll();
    for (auto &c : l2s)
        c->stats().resetAll();
}

double
CacheHierarchy::llcMissRatio() const
{
    // Misses per executed load/store, comparable to the paper's
    // whole-program "LLC miss ratio" (12.1% on their suite).
    const auto misses = llc_->stats().value("misses");
    const auto ops =
        stats_.value("loads") + stats_.value("stores");
    return ops == 0 ? 0.0
                    : static_cast<double>(misses) /
                          static_cast<double>(ops);
}

} // namespace hoopnvm
