/**
 * @file
 * A single set-associative, write-back cache with LRU replacement.
 *
 * Lines carry the usual valid/dirty state plus the HOOP *persistent bit*
 * (§III-G of the paper): one bit per cache line marking lines modified
 * inside a failure-atomic region, so the eviction path can route them to
 * the OOP region instead of the home region. Lines also remember the
 * last writing core and the transaction that last modified them, which
 * the memory-controller models need to stamp out-of-place slices.
 */

#ifndef HOOPNVM_MEM_CACHE_HH
#define HOOPNVM_MEM_CACHE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "stats/stat_set.hh"

namespace hoopnvm
{

/** One cache line: tag state plus the full data payload. */
struct CacheLine
{
    /** Line-aligned address; only meaningful when valid. */
    Addr addr = kInvalidAddr;

    bool valid = false;
    bool dirty = false;

    /** Set when the line was modified inside a transaction (§III-G). */
    bool persistent = false;

    /** Core that performed the last store to this line. */
    CoreId lastWriter = 0;

    /** Transaction that last modified this line (kInvalidTxId if none). */
    TxId txId = kInvalidTxId;

    /**
     * Which of the line's eight words hold data newer than the home
     * region (HOOP tracks updates at word granularity, §III-C). Bit i
     * covers bytes [8i, 8i+8).
     */
    std::uint8_t wordMask = 0;

    /** LRU timestamp (bigger = more recently used). */
    std::uint64_t lastUse = 0;

    std::array<std::uint8_t, kCacheLineSize> data{};
};

/** A victim line produced by an insertion. */
struct CacheVictim
{
    bool valid = false;
    Addr addr = kInvalidAddr;
    bool dirty = false;
    bool persistent = false;
    CoreId lastWriter = 0;
    TxId txId = kInvalidTxId;
    std::uint8_t wordMask = 0;
    std::array<std::uint8_t, kCacheLineSize> data{};
};

/** Set-associative write-back cache with LRU replacement. */
class Cache
{
  public:
    /**
     * @param name        Stat prefix, e.g. "l1.0" or "llc".
     * @param size_bytes  Total capacity; must be a multiple of
     *                    assoc * kCacheLineSize.
     * @param assoc       Associativity (ways per set).
     * @param latency     Access latency charged on hits in this level.
     */
    Cache(const std::string &name, std::uint64_t size_bytes,
          unsigned assoc, Tick latency);

    /**
     * Look up @p line_addr. On a hit the LRU state is refreshed (unless
     * @p touch is false) and the line is returned; nullptr on miss.
     */
    CacheLine *probe(Addr line_addr, bool touch = true);

    /** Const lookup without LRU update. */
    const CacheLine *peekLine(Addr line_addr) const;

    /**
     * Mutable lookup that updates neither LRU state nor hit/miss
     * statistics. For internal coherence bookkeeping, so protocol
     * probes do not distort the measured hit ratios.
     */
    CacheLine *findLine(Addr line_addr);

    /**
     * Insert a line, evicting the LRU way of the set if necessary.
     * The victim (possibly invalid) is returned so the caller can
     * write it back or merge it into the next level.
     */
    CacheVictim insert(Addr line_addr, const std::uint8_t *data,
                       bool dirty, bool persistent, CoreId writer,
                       TxId tx_id, std::uint8_t word_mask = 0);

    /** Drop @p line_addr without writeback; no-op if absent. */
    void invalidate(Addr line_addr);

    /** Drop every line without writeback (crash model). */
    void invalidateAll();

    /** Call @p fn on every valid line. fn may mutate the line. */
    template <typename Fn>
    void
    forEachLine(Fn &&fn)
    {
        for (auto &line : lines) {
            if (line.valid)
                fn(line);
        }
    }

    Tick latency() const { return latency_; }
    unsigned numSets() const { return numSets_; }
    unsigned associativity() const { return assoc; }

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

  private:
    /** Index of the set holding @p line_addr. */
    unsigned setIndex(Addr line_addr) const;

    unsigned assoc;
    unsigned numSets_;
    Tick latency_;
    std::uint64_t useClock = 0;
    std::vector<CacheLine> lines;
    StatSet stats_;
};

} // namespace hoopnvm

#endif // HOOPNVM_MEM_CACHE_HH
