/**
 * @file
 * A single set-associative, write-back cache with LRU replacement.
 *
 * Lines carry the usual valid/dirty state plus the HOOP *persistent bit*
 * (§III-G of the paper): one bit per cache line marking lines modified
 * inside a failure-atomic region, so the eviction path can route them to
 * the OOP region instead of the home region. Lines also remember the
 * last writing core and the transaction that last modified them, which
 * the memory-controller models need to stamp out-of-place slices.
 *
 * Storage is structure-of-arrays: the set-lookup scan walks a packed
 * tag array (one 8-byte tag per way, so an 8-way set is a single host
 * cache line), while per-line metadata and the 64-byte payloads live in
 * separate arrays touched only on a hit. CacheLine is a non-owning
 * *view* into those arrays, not the storage itself; views are cheap to
 * copy and remain valid until the way they reference is re-filled or
 * invalidated.
 */

#ifndef HOOPNVM_MEM_CACHE_HH
#define HOOPNVM_MEM_CACHE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "stats/stat_set.hh"

namespace hoopnvm
{

/**
 * Per-line bookkeeping kept out of the tag scan array. The LRU stamp
 * is not here either: victim selection scans every way's stamp, so the
 * stamps live in their own packed array (like the tags) and this
 * struct holds only state touched on a hit.
 */
struct CacheLineMeta
{
    /** Transaction that last modified this line (kInvalidTxId if none). */
    TxId txId = kInvalidTxId;

    /** Core that performed the last store to this line. */
    CoreId lastWriter = 0;

    /**
     * Which of the line's eight words hold data newer than the home
     * region (HOOP tracks updates at word granularity, §III-C). Bit i
     * covers bytes [8i, 8i+8).
     */
    std::uint8_t wordMask = 0;

    bool dirty = false;

    /** Set when the line was modified inside a transaction (§III-G). */
    bool persistent = false;
};

/**
 * View of one resident cache line: the line address plus pointers to
 * its metadata slot and 64-byte payload. A default-constructed view is
 * "no line" and tests false. Mutations through the accessors write the
 * cache's backing arrays directly.
 */
class CacheLine
{
  public:
    CacheLine() = default;

    explicit operator bool() const { return meta_ != nullptr; }

    /** Line-aligned address of the viewed line. */
    Addr addr() const { return addr_; }

    /** The 64-byte payload. */
    std::uint8_t *data() const { return data_; }

    bool &dirty() const { return meta_->dirty; }
    bool &persistent() const { return meta_->persistent; }
    CoreId &lastWriter() const { return meta_->lastWriter; }
    TxId &txId() const { return meta_->txId; }
    std::uint8_t &wordMask() const { return meta_->wordMask; }
    std::uint64_t lastUse() const { return *lastUse_; }

  private:
    friend class Cache;
    CacheLine(Addr addr, CacheLineMeta *meta, std::uint64_t *last_use,
              std::uint8_t *data)
        : addr_(addr), meta_(meta), lastUse_(last_use), data_(data)
    {
    }

    Addr addr_ = kInvalidAddr;
    CacheLineMeta *meta_ = nullptr;
    std::uint64_t *lastUse_ = nullptr;
    std::uint8_t *data_ = nullptr;
};

/**
 * A victim line produced by an insertion. The payload is left
 * uninitialized until a victim is captured into it — when valid is
 * false, data holds garbage.
 */
struct CacheVictim
{
    bool valid = false;
    Addr addr = kInvalidAddr;
    bool dirty = false;
    bool persistent = false;
    CoreId lastWriter = 0;
    TxId txId = kInvalidTxId;
    std::uint8_t wordMask = 0;
    std::array<std::uint8_t, kCacheLineSize> data;
};

/** Set-associative write-back cache with LRU replacement. */
class Cache
{
  public:
    /**
     * @param name        Stat prefix, e.g. "l1.0" or "llc".
     * @param size_bytes  Total capacity; must be a multiple of
     *                    assoc * kCacheLineSize.
     * @param assoc       Associativity (ways per set).
     * @param latency     Access latency charged on hits in this level.
     */
    Cache(const std::string &name, std::uint64_t size_bytes,
          unsigned assoc, Tick latency);

    /**
     * Look up @p line_addr. On a hit the LRU state is refreshed (unless
     * @p touch is false) and a view of the line is returned; an empty
     * view on miss.
     */
    CacheLine probe(Addr line_addr, bool touch = true);

    /**
     * Lookup without LRU update. Declared const because it does not
     * change cache or statistics state, but the returned view allows
     * mutation like any other — callers holding a const Cache must
     * treat it as read-only.
     */
    CacheLine peekLine(Addr line_addr) const;

    /**
     * Lookup that updates neither LRU state nor hit/miss statistics.
     * For internal coherence bookkeeping, so protocol probes do not
     * distort the measured hit ratios.
     */
    CacheLine findLine(Addr line_addr) { return peekLine(line_addr); }

    /**
     * Refresh LRU and count a hit for @p line without re-scanning its
     * set. The batched range paths use this for the second and later
     * words of a line whose residency is already established; the stat
     * and LRU effects are exactly those of a touching probe() hit.
     */
    void
    touchHit(const CacheLine &line)
    {
        *line.lastUse_ = ++useClock;
        ++hitsC_;
    }

    /**
     * Insert a line, evicting the LRU way of the set if necessary.
     *
     * When a valid line with a different address is displaced,
     * @p retire is invoked with a view of the victim *in place* — the
     * callback borrows the slot's storage for its duration, so the
     * common case (no writeback, or a writeback that only reads the
     * data once) never copies the 64-byte payload. The slot is
     * overwritten as soon as the callback returns; callers must not
     * retain the view. The callback may mutate the victim (e.g. fold
     * dirtier upper-level copies into it) but must not touch this
     * cache.
     */
    template <typename RetireFn>
    void
    insert(Addr line_addr, const std::uint8_t *data, bool dirty,
           bool persistent, CoreId writer, TxId tx_id,
           std::uint8_t word_mask, RetireFn &&retire)
    {
        const std::size_t slot = findVictim(line_addr);
        if (tags_[slot] != kInvalidAddr && tags_[slot] != line_addr)
            retire(viewOf(slot));
        fillSlot(slot, line_addr, data, dirty, persistent, writer,
                 tx_id, word_mask);
    }

    /**
     * Insert returning a copy of the victim (possibly invalid).
     * Convenience wrapper over the retire-callback overload for tests
     * and tools that want the copy.
     */
    CacheVictim insert(Addr line_addr, const std::uint8_t *data,
                       bool dirty, bool persistent, CoreId writer,
                       TxId tx_id, std::uint8_t word_mask = 0);

    /** Drop @p line_addr without writeback; no-op if absent. */
    void invalidate(Addr line_addr);

    /** Drop every line without writeback (crash model). */
    void invalidateAll();

    /** Call @p fn on every valid line. fn may mutate the line. */
    template <typename Fn>
    void
    forEachLine(Fn &&fn)
    {
        for (std::size_t i = 0; i < tags_.size(); ++i) {
            if (tags_[i] != kInvalidAddr) {
                CacheLine view = viewOf(i);
                fn(view);
            }
        }
    }

    Tick latency() const { return latency_; }
    unsigned numSets() const { return numSets_; }
    unsigned associativity() const { return assoc; }

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

  private:
    /** Index of the set holding @p line_addr. */
    unsigned setIndex(Addr line_addr) const;

    /** View of way-slot @p i (caller guarantees it is valid). */
    CacheLine
    viewOf(std::size_t i) const
    {
        return CacheLine(tags_[i],
                         const_cast<CacheLineMeta *>(&meta_[i]),
                         const_cast<std::uint64_t *>(&lastUse_[i]),
                         const_cast<std::uint8_t *>(
                             &data_[i * kCacheLineSize]));
    }

    /**
     * Slot index that will hold @p line_addr: an existing copy, an
     * invalid way, or the LRU way of the set (whose previous occupant
     * the caller must retire). Updates the eviction statistics when
     * the returned slot holds a valid line with a different address.
     */
    std::size_t findVictim(Addr line_addr);

    /** Overwrite slot @p i with the inserted line's state. */
    void fillSlot(std::size_t i, Addr line_addr,
                  const std::uint8_t *data, bool dirty, bool persistent,
                  CoreId writer, TxId tx_id, std::uint8_t word_mask);

    unsigned assoc;
    unsigned numSets_;
    Tick latency_;
    std::uint64_t useClock = 0;

    // Parallel arrays indexed by set * assoc + way. A tag of
    // kInvalidAddr marks an invalid way, so the lookup scan needs no
    // separate valid flag. LRU stamps are packed like the tags: victim
    // selection reads every way's stamp, so an 8-way set's stamps fit
    // one host cache line instead of spanning eight meta structs.
    std::vector<Addr> tags_;
    std::vector<std::uint64_t> lastUse_;
    std::vector<CacheLineMeta> meta_;
    std::vector<std::uint8_t> data_;

    StatSet stats_;

    // Hot-path counters resolved once; StatSet references stay valid
    // for the StatSet's lifetime, so these alias the named registry.
    Counter &hitsC_;
    Counter &missesC_;
    Counter &insertionsC_;
    Counter &dirtyEvictionsC_;
    Counter &cleanEvictionsC_;
};

} // namespace hoopnvm

#endif // HOOPNVM_MEM_CACHE_HH
