/**
 * @file
 * A single set-associative, write-back cache with LRU replacement.
 *
 * Lines carry the usual valid/dirty state plus the HOOP *persistent bit*
 * (§III-G of the paper): one bit per cache line marking lines modified
 * inside a failure-atomic region, so the eviction path can route them to
 * the OOP region instead of the home region. Lines also remember the
 * last writing core and the transaction that last modified them, which
 * the memory-controller models need to stamp out-of-place slices.
 */

#ifndef HOOPNVM_MEM_CACHE_HH
#define HOOPNVM_MEM_CACHE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "stats/stat_set.hh"

namespace hoopnvm
{

/** One cache line: tag state plus the full data payload. */
struct CacheLine
{
    /** Line-aligned address; only meaningful when valid. */
    Addr addr = kInvalidAddr;

    bool valid = false;
    bool dirty = false;

    /** Set when the line was modified inside a transaction (§III-G). */
    bool persistent = false;

    /** Core that performed the last store to this line. */
    CoreId lastWriter = 0;

    /** Transaction that last modified this line (kInvalidTxId if none). */
    TxId txId = kInvalidTxId;

    /**
     * Which of the line's eight words hold data newer than the home
     * region (HOOP tracks updates at word granularity, §III-C). Bit i
     * covers bytes [8i, 8i+8).
     */
    std::uint8_t wordMask = 0;

    /** LRU timestamp (bigger = more recently used). */
    std::uint64_t lastUse = 0;

    std::array<std::uint8_t, kCacheLineSize> data{};
};

/**
 * A victim line produced by an insertion. The payload is left
 * uninitialized until a victim is captured into it — when valid is
 * false, data holds garbage.
 */
struct CacheVictim
{
    bool valid = false;
    Addr addr = kInvalidAddr;
    bool dirty = false;
    bool persistent = false;
    CoreId lastWriter = 0;
    TxId txId = kInvalidTxId;
    std::uint8_t wordMask = 0;
    std::array<std::uint8_t, kCacheLineSize> data;
};

/** Set-associative write-back cache with LRU replacement. */
class Cache
{
  public:
    /**
     * @param name        Stat prefix, e.g. "l1.0" or "llc".
     * @param size_bytes  Total capacity; must be a multiple of
     *                    assoc * kCacheLineSize.
     * @param assoc       Associativity (ways per set).
     * @param latency     Access latency charged on hits in this level.
     */
    Cache(const std::string &name, std::uint64_t size_bytes,
          unsigned assoc, Tick latency);

    /**
     * Look up @p line_addr. On a hit the LRU state is refreshed (unless
     * @p touch is false) and the line is returned; nullptr on miss.
     */
    CacheLine *probe(Addr line_addr, bool touch = true);

    /** Const lookup without LRU update. */
    const CacheLine *peekLine(Addr line_addr) const;

    /**
     * Mutable lookup that updates neither LRU state nor hit/miss
     * statistics. For internal coherence bookkeeping, so protocol
     * probes do not distort the measured hit ratios.
     */
    CacheLine *findLine(Addr line_addr);

    /**
     * Insert a line, evicting the LRU way of the set if necessary.
     *
     * When a valid line with a different address is displaced,
     * @p retire is invoked with the victim *in place* — the callback
     * borrows the slot's storage for its duration, so the common case
     * (no writeback, or a writeback that only reads the data once)
     * never copies the 64-byte payload. The referenced line is
     * overwritten as soon as the callback returns; callers must not
     * retain the reference. The callback may mutate the victim (e.g.
     * fold dirtier upper-level copies into it) but must not touch this
     * cache.
     */
    template <typename RetireFn>
    void
    insert(Addr line_addr, const std::uint8_t *data, bool dirty,
           bool persistent, CoreId writer, TxId tx_id,
           std::uint8_t word_mask, RetireFn &&retire)
    {
        CacheLine *slot = findVictim(line_addr);
        if (slot->valid && slot->addr != line_addr)
            retire(*slot);
        fillSlot(*slot, line_addr, data, dirty, persistent, writer,
                 tx_id, word_mask);
    }

    /**
     * Insert returning a copy of the victim (possibly invalid).
     * Convenience wrapper over the retire-callback overload for tests
     * and tools that want the copy.
     */
    CacheVictim insert(Addr line_addr, const std::uint8_t *data,
                       bool dirty, bool persistent, CoreId writer,
                       TxId tx_id, std::uint8_t word_mask = 0);

    /** Drop @p line_addr without writeback; no-op if absent. */
    void invalidate(Addr line_addr);

    /** Drop every line without writeback (crash model). */
    void invalidateAll();

    /** Call @p fn on every valid line. fn may mutate the line. */
    template <typename Fn>
    void
    forEachLine(Fn &&fn)
    {
        for (auto &line : lines) {
            if (line.valid)
                fn(line);
        }
    }

    Tick latency() const { return latency_; }
    unsigned numSets() const { return numSets_; }
    unsigned associativity() const { return assoc; }

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

  private:
    /** Index of the set holding @p line_addr. */
    unsigned setIndex(Addr line_addr) const;

    /**
     * Slot that will hold @p line_addr: an existing copy, an invalid
     * way, or the LRU way of the set (whose previous occupant the
     * caller must retire). Updates the eviction statistics when the
     * returned slot holds a valid line with a different address.
     */
    CacheLine *findVictim(Addr line_addr);

    /** Overwrite @p slot with the inserted line's state. */
    void fillSlot(CacheLine &slot, Addr line_addr,
                  const std::uint8_t *data, bool dirty, bool persistent,
                  CoreId writer, TxId tx_id, std::uint8_t word_mask);

    unsigned assoc;
    unsigned numSets_;
    Tick latency_;
    std::uint64_t useClock = 0;
    std::vector<CacheLine> lines;
    StatSet stats_;

    // Hot-path counters resolved once; StatSet references stay valid
    // for the StatSet's lifetime, so these alias the named registry.
    Counter &hitsC_;
    Counter &missesC_;
    Counter &insertionsC_;
    Counter &dirtyEvictionsC_;
    Counter &cleanEvictionsC_;
};

} // namespace hoopnvm

#endif // HOOPNVM_MEM_CACHE_HH
