/**
 * @file
 * Three-level cache hierarchy: private L1/L2 per core and a shared,
 * inclusive LLC, backed by a PersistenceController.
 *
 * The hierarchy is functional (lines carry data) and timed (each level
 * adds its hit latency; misses add the controller's fill latency). Dirty
 * evictions cascade L1 -> L2 -> LLC; LLC victims are back-invalidated
 * from all upper levels, merged, and handed to the controller, which is
 * where crash-consistency schemes differ (home region vs out-of-place).
 *
 * Coherence: the simulator executes cores one at a time, so a simple
 * invalidate-on-write protocol with an LLC-side sharer mask suffices.
 * Workloads use application-level locking for inter-transaction
 * concurrency control (as the paper assumes, §III-G), so cross-core
 * write sharing is rare; the protocol is nonetheless complete.
 */

#ifndef HOOPNVM_MEM_CACHE_HIERARCHY_HH
#define HOOPNVM_MEM_CACHE_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "controller/persistence_controller.hh"
#include "mem/cache.hh"
#include "sim/system_config.hh"

namespace hoopnvm
{

/** Per-core L1/L2 plus shared inclusive LLC. */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const SystemConfig &cfg);

    /** Attach the memory-controller persistence scheme. */
    void setController(PersistenceController *c) { ctrl = c; }

    /**
     * Timed load of the aligned 8-byte word at @p addr.
     * @return Completion tick; the value is stored in @p out.
     */
    Tick loadWord(CoreId core, Addr addr, std::uint64_t &out, Tick now);

    /**
     * Timed store of the aligned 8-byte word at @p addr. If the core is
     * inside a transaction the line's persistent bit is set and the
     * controller's storeWord hook is invoked (Fig. 6 store path).
     * @return Completion tick.
     */
    Tick storeWord(CoreId core, Addr addr, std::uint64_t value, Tick now);

    /** Untimed coherent read for verification (caches beat NVM). */
    void debugRead(Addr addr, void *buf, std::size_t len) const;

    /** Power failure: all cached state vanishes, nothing written back. */
    void dropAll();

    /** Flush every dirty line down to the controller (end of run). */
    void writebackAll(Tick now);

    Cache &llc() { return *llc_; }
    Cache &l1(CoreId core) { return *l1s[core]; }
    Cache &l2(CoreId core) { return *l2s[core]; }

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

    /** LLC miss ratio over all accesses so far. */
    double llcMissRatio() const;

    /**
     * Zero the hierarchy's and every cache's counters and histograms so
     * a measurement phase starting mid-run (after warmup) reports only
     * its own accesses. Cache *contents* are untouched.
     */
    void resetStats();

  private:
    /** Returns the L1 line for @p line, fetching through the levels. */
    CacheLine *ensureInL1(CoreId core, Addr line, bool for_store,
                          Tick &t);

    /** Insert into L1; dirty victims merge into L2. */
    void insertL1(CoreId core, Addr line, const std::uint8_t *data,
                  bool dirty, bool persistent, CoreId writer, TxId tx,
                  std::uint8_t mask, Tick now);

    /** Insert into L2; dirty victims merge into the LLC. */
    void insertL2(CoreId core, Addr line, const std::uint8_t *data,
                  bool dirty, bool persistent, CoreId writer, TxId tx,
                  std::uint8_t mask, Tick now);

    /** Insert into the LLC; victims are back-invalidated and evicted. */
    void insertLlc(CoreId core, Addr line, const std::uint8_t *data,
                   bool dirty, bool persistent, CoreId writer, TxId tx,
                   std::uint8_t mask, Tick now);

    /** Handle an LLC victim: merge upper copies, hand to controller. */
    void retireLlcVictim(CacheVictim &victim, Tick now);

    /**
     * Pull the freshest copy of @p line from other cores' private
     * caches into @p llc_line, invalidating them if @p exclusive.
     */
    void reconcileSharers(CoreId core, Addr line, CacheLine &llc_line,
                          bool exclusive);

    /** Drop @p core from the sharer mask if its L1/L2 no longer hold
     *  @p line. */
    void updateSharerOnDrop(CoreId core, Addr line);

    const SystemConfig &cfg;
    PersistenceController *ctrl = nullptr;
    std::vector<std::unique_ptr<Cache>> l1s;
    std::vector<std::unique_ptr<Cache>> l2s;
    std::unique_ptr<Cache> llc_;

    /** Which cores may hold each LLC-resident line in L1/L2. */
    std::unordered_map<Addr, std::uint32_t> sharers;

    StatSet stats_;

    // Hot-path counters resolved once at construction (the StatSet
    // guarantees reference stability), so the per-access paths skip
    // the string-keyed registry lookup.
    Counter &loadsC_;
    Counter &storesC_;
    Counter &llcFillsC_;
    Counter &invalidationsC_;
    Counter &downgradesC_;
    Counter &backInvalidationsC_;
    Counter &llcDirtyWritebacksC_;

    /** Per-miss memory latency (fill completion minus request tick). */
    Histogram &llcMissLatH_;
};

} // namespace hoopnvm

#endif // HOOPNVM_MEM_CACHE_HIERARCHY_HH
