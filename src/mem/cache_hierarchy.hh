/**
 * @file
 * Three-level cache hierarchy: private L1/L2 per core and a shared,
 * inclusive LLC, backed by a PersistenceController.
 *
 * The hierarchy is functional (lines carry data) and timed (each level
 * adds its hit latency; misses add the controller's fill latency). Dirty
 * evictions cascade L1 -> L2 -> LLC; LLC victims are back-invalidated
 * from all upper levels, merged, and handed to the controller, which is
 * where crash-consistency schemes differ (home region vs out-of-place).
 *
 * Coherence: the simulator executes cores one at a time, so a simple
 * invalidate-on-write protocol with an LLC-side sharer mask suffices.
 * Workloads use application-level locking for inter-transaction
 * concurrency control (as the paper assumes, §III-G), so cross-core
 * write sharing is rare; the protocol is nonetheless complete.
 */

#ifndef HOOPNVM_MEM_CACHE_HIERARCHY_HH
#define HOOPNVM_MEM_CACHE_HIERARCHY_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/flat_map.hh"
#include "common/types.hh"
#include "controller/persistence_controller.hh"
#include "mem/cache.hh"
#include "sim/system_config.hh"

namespace hoopnvm
{

/** Per-core L1/L2 plus shared inclusive LLC. */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const SystemConfig &cfg);

    /** Attach the memory-controller persistence scheme. */
    void setController(PersistenceController *c) { ctrl = c; }

    /**
     * Timed load of the aligned 8-byte word at @p addr.
     * @return Completion tick; the value is stored in @p out.
     */
    Tick loadWord(CoreId core, Addr addr, std::uint64_t &out, Tick now);

    /**
     * Timed store of the aligned 8-byte word at @p addr. If the core is
     * inside a transaction the line's persistent bit is set and the
     * controller's storeWord hook is invoked (Fig. 6 store path).
     * @return Completion tick.
     */
    Tick storeWord(CoreId core, Addr addr, std::uint64_t value, Tick now);

    /**
     * Timed load of @p len bytes (word-aligned) starting at @p addr,
     * batched at line granularity: the first word of each 64 B line
     * resolves the line through the hierarchy exactly like loadWord();
     * the remaining words of that line are guaranteed L1 hits (nothing
     * between consecutive words of a batch can displace the line — the
     * persistence controllers never touch the cache hierarchy) and
     * skip re-resolution while applying the identical stat, LRU and
     * latency effects. @p advance is called with each word's
     * completion tick and must return the core clock to use as the
     * next word's start tick, so per-word clock progress — and
     * therefore the state seen by a mid-range exception — matches the
     * word-at-a-time path bit for bit.
     */
    template <typename AdvanceFn>
    void
    loadRange(CoreId core, Addr addr, std::uint8_t *out,
              std::size_t len, Tick now, AdvanceFn &&advance)
    {
        std::size_t off = 0;
        while (off < len) {
            const Addr line_addr = lineAddr(addr + off);
            std::uint64_t v = 0;
            CacheLine line;
            now = advance(loadWordResolved(core, addr + off, v, now,
                                           line));
            std::memcpy(out + off, &v, kWordSize);
            off += kWordSize;
            while (off < len && lineAddr(addr + off) == line_addr) {
                now = advance(loadWordHit(core, line, addr + off, v,
                                          now));
                std::memcpy(out + off, &v, kWordSize);
                off += kWordSize;
            }
        }
    }

    /**
     * Timed store of @p len bytes (word-aligned) starting at @p addr,
     * batched at line granularity like loadRange(). @p pre_word runs
     * before each word (the caller's per-store crash-point hook) and
     * @p advance after it, so crash injection, controller hooks and
     * clock progress stay word-granular and bit-identical to a loop
     * of storeWord() calls.
     */
    template <typename PreWordFn, typename AdvanceFn>
    void
    storeRange(CoreId core, Addr addr, const std::uint8_t *in,
               std::size_t len, Tick now, PreWordFn &&pre_word,
               AdvanceFn &&advance)
    {
        std::size_t off = 0;
        while (off < len) {
            const Addr line_addr = lineAddr(addr + off);
            pre_word();
            std::uint64_t v;
            std::memcpy(&v, in + off, kWordSize);
            CacheLine line;
            now = advance(storeWordResolved(core, addr + off, v, now,
                                            line));
            off += kWordSize;
            while (off < len && lineAddr(addr + off) == line_addr) {
                pre_word();
                std::memcpy(&v, in + off, kWordSize);
                now = advance(storeWordHit(core, line, addr + off, v,
                                           now));
                off += kWordSize;
            }
        }
    }

    /** Untimed coherent read for verification (caches beat NVM). */
    void debugRead(Addr addr, void *buf, std::size_t len) const;

    /**
     * Enter/leave debug-batch mode: between the calls, debugRead
     * memoizes the last reconstructed line, so word-by-word
     * verification loops resolve each 64-byte line once instead of
     * once per word (each resolution scans every cache level and may
     * rebuild the line from controller metadata). The caller promises
     * no simulated mutation — no stores, maintenance, or controller
     * activity — happens while the batch is open; the verify phase
     * after finalize() is exactly that window.
     */
    void
    beginDebugBatch()
    {
        debugBatch_ = true;
        debugMemoLine_ = kInvalidAddr;
    }

    void endDebugBatch() { debugBatch_ = false; }

    /** Power failure: all cached state vanishes, nothing written back. */
    void dropAll();

    /** Flush every dirty line down to the controller (end of run). */
    void writebackAll(Tick now);

    Cache &llc() { return *llc_; }
    Cache &l1(CoreId core) { return *l1s[core]; }
    Cache &l2(CoreId core) { return *l2s[core]; }

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

    /** LLC miss ratio over all accesses so far. */
    double llcMissRatio() const;

    /**
     * Zero the hierarchy's and every cache's counters and histograms so
     * a measurement phase starting mid-run (after warmup) reports only
     * its own accesses. Cache *contents* are untouched.
     */
    void resetStats();

  private:
    /** Returns the L1 line for @p line, fetching through the levels. */
    CacheLine ensureInL1(CoreId core, Addr line, bool for_store,
                         Tick &t);

    /** loadWord that also hands back the resolved L1 line view. */
    Tick loadWordResolved(CoreId core, Addr addr, std::uint64_t &out,
                          Tick now, CacheLine &line);

    /** storeWord that also hands back the resolved L1 line view. */
    Tick storeWordResolved(CoreId core, Addr addr, std::uint64_t value,
                           Tick now, CacheLine &line);

    /**
     * Load continuation for a word of a line already resolved in this
     * core's L1 by a preceding loadWordResolved in the same range
     * batch: identical stat/LRU/latency effects, no set re-scan.
     */
    Tick loadWordHit(CoreId core, CacheLine line, Addr addr,
                     std::uint64_t &out, Tick now);

    /**
     * Store continuation for a word of a line already resolved
     * exclusive in this core's L1 by a preceding storeWordResolved in
     * the same range batch. Skips the redundant L1 set scan, LLC
     * lookup and sharer reconciliation (the line is already exclusive,
     * so those are no-ops on the word-at-a-time path too) while
     * applying the identical stat, LRU, latency and controller-hook
     * effects.
     */
    Tick storeWordHit(CoreId core, CacheLine line, Addr addr,
                      std::uint64_t value, Tick now);

    /** Insert into L1; dirty victims merge into L2. */
    void insertL1(CoreId core, Addr line, const std::uint8_t *data,
                  bool dirty, bool persistent, CoreId writer, TxId tx,
                  std::uint8_t mask, Tick now);

    /** Insert into L2; dirty victims merge into the LLC. */
    void insertL2(CoreId core, Addr line, const std::uint8_t *data,
                  bool dirty, bool persistent, CoreId writer, TxId tx,
                  std::uint8_t mask, Tick now);

    /** Insert into the LLC; victims are back-invalidated and evicted. */
    void insertLlc(CoreId core, Addr line, const std::uint8_t *data,
                   bool dirty, bool persistent, CoreId writer, TxId tx,
                   std::uint8_t mask, Tick now);

    /** Handle an LLC victim: merge upper copies, hand to controller. */
    void retireLlcVictim(CacheVictim &victim, Tick now);

    /**
     * Pull the freshest copy of @p line from other cores' private
     * caches into @p llc_line, invalidating them if @p exclusive.
     */
    void reconcileSharers(CoreId core, Addr line, CacheLine llc_line,
                          bool exclusive);

    /** Drop @p core from the sharer mask if its L1/L2 no longer hold
     *  @p line. */
    void updateSharerOnDrop(CoreId core, Addr line);

    const SystemConfig &cfg;
    PersistenceController *ctrl = nullptr;
    std::vector<std::unique_ptr<Cache>> l1s;
    std::vector<std::unique_ptr<Cache>> l2s;
    std::unique_ptr<Cache> llc_;

    /** Which cores may hold each LLC-resident line in L1/L2. */
    FlatMap<std::uint32_t> sharers;

    /**
     * Cross-call line memo (fast path only): the line resolved by this
     * core's most recent load/store, remembered so a consecutive
     * word-at-a-time access to the same line can take the
     * loadWordHit/storeWordHit continuation without re-running the L1
     * set scan, LLC lookup and sharer reconciliation — all provably
     * no-ops while the memo holds. Validity is guarded by structGen_:
     * any insertion, invalidation or sharer-stripping anywhere in the
     * hierarchy bumps the generation and kills every memo, so a memo
     * hit guarantees the line still sits in the same L1 way with the
     * same coherence state the resolution established. `exclusive` is
     * set only by store resolutions (which strip every other sharer);
     * loads may reuse any memo, stores require an exclusive one.
     */
    struct WordMemo
    {
        Addr line = kInvalidAddr;
        std::uint64_t gen = 0;
        bool exclusive = false;
        CacheLine view;
    };
    std::vector<WordMemo> memo_;

    /** Bumped on every structural mutation; see WordMemo. */
    std::uint64_t structGen_ = 0;

    /**
     * Debug-batch line memo (see beginDebugBatch): one fully
     * reconstructed line, valid only while a batch is open — the
     * caller guarantees nothing mutates between batched reads.
     * Mutable because debugRead is const and the memo is pure
     * host-side acceleration.
     */
    bool debugBatch_ = false;
    mutable Addr debugMemoLine_ = kInvalidAddr;
    mutable std::uint8_t debugMemoData_[kCacheLineSize];

    StatSet stats_;

    // Hot-path counters resolved once at construction (the StatSet
    // guarantees reference stability), so the per-access paths skip
    // the string-keyed registry lookup.
    Counter &loadsC_;
    Counter &storesC_;
    Counter &llcFillsC_;
    Counter &invalidationsC_;
    Counter &downgradesC_;
    Counter &backInvalidationsC_;
    Counter &llcDirtyWritebacksC_;

    /** Per-miss memory latency (fill completion minus request tick). */
    Histogram &llcMissLatH_;
};

} // namespace hoopnvm

#endif // HOOPNVM_MEM_CACHE_HIERARCHY_HH
