#include "baselines/lad_controller.hh"

#include <cstring>

#include "analysis/ordering_tracker.hh"
#include "common/flat_map.hh"
#include "common/logging.hh"

namespace hoopnvm
{

LadController::LadController(NvmDevice &nvm, const SystemConfig &cfg_)
    : PersistenceController("lad", nvm, cfg_),
      txWrites(cfg_.numCores),
      queueInsertCost(4 * cfg_.cycle()),
      queueDrainsC_(stats_.counter("queue_drains")),
      txCommittedC_(stats_.counter("tx_committed")),
      evictionsAbsorbedC_(stats_.counter("evictions_absorbed")),
      homeWritebacksC_(stats_.counter("home_writebacks")),
      recoveriesC_(stats_.counter("recoveries"))
{
}

void
LadController::declareOrderingRules(OrderingTracker &t)
{
    t.rule("lad-commit-drain")
        .requiresSettled("every committed line inside the ADR domain "
                         "(battery-drained) before the commit ack");
}

TxId
LadController::txBegin(CoreId core, Tick now)
{
    const TxId tx = PersistenceController::txBegin(core, now);
    txWrites[core].clear();
    return tx;
}

Tick
LadController::storeWord(CoreId core, Addr addr,
                         const std::uint8_t *data, Tick now)
{
    std::uint64_t value;
    std::memcpy(&value, data, kWordSize);
    const Addr line = lineAddr(addr);
    txWrites[core][line].setWord(
        static_cast<unsigned>((addr - line) / kWordSize), value);
    return cfg.cycle();
    (void)now;
}

Tick
LadController::txEnd(CoreId core, Tick now)
{
    HOOP_ASSERT(coreTx[core].active, "txEnd without txBegin");
    auto &writes = txWrites[core];

    // Commit = the updated lines are persisted at cache-line
    // granularity through the controller queues (§IV-C: LAD "still
    // persists data at cache-line granularity upon transaction
    // commits"), so the transaction waits for those writes.
    // Prepare/commit handshake with the controller (the two-phase
    // protocol LAD uses to make queue contents the durability point).
    Tick t = now + (writes.empty() ? 0 : cfg.ladCommitOverhead);
    // Address order: queue drain order is observable durable state.
    for (const Addr line : sortedKeys(writes)) {
        t += queueInsertCost;
        std::uint8_t buf[kCacheLineSize];
        nvm_.peek(line, buf, kCacheLineSize);
        writes.at(line).overlay(buf);
        t = std::max(t, nvm_.write(now, line, buf, kCacheLineSize));
        orderDep("lad-commit-drain", coreTx[core].txId);
        ++queueDrainsC_;
    }

    // The controller queues sit inside the ADR persistence domain:
    // once the drain writes are queued, the battery guarantees they
    // reach the media in full even across power loss. Settle them in
    // the fault model so a later crash can never tear a committed
    // drain — without this, LAD's whole durability argument is void.
    if (!writes.empty()) {
        const Tick drained = nvm_.drainFence(t);
        if (!cfg.debugSkipSettleFences)
            nvm_.faults().settleUpTo(drained);
        orderTrigger("lad-commit-drain", coreTx[core].txId, drained);
    }

    // Crash point: the ADR queue-drain boundary. The whole drain is
    // the durability domain (battery-backed queues complete it across
    // power loss), so the hook fires once after the full drain rather
    // than between lines — a mid-drain cut would model a failure mode
    // LAD's hardware guarantees cannot produce.
    if (!writes.empty())
        crashStep(CrashPointKind::GcStep);

    writes.clear();
    coreTx[core] = CoreTxState{};
    ++txCommittedC_;
    return t;
}

FillResult
LadController::fillLine(CoreId, Addr line, std::uint8_t *buf, Tick now)
{
    FillResult fr;
    fr.completion = nvm_.read(now, line, buf, kCacheLineSize);

    // An evicted line of a running transaction: overlay staged words.
    std::uint8_t mask = 0;
    TxId owner = kInvalidTxId;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        auto it = txWrites[c].find(line);
        if (it != txWrites[c].end()) {
            it->second.overlay(buf);
            mask |= it->second.mask;
            owner = coreTx[c].txId;
        }
    }
    if (mask) {
        fr.dirty = true;
        fr.persistent = true;
        fr.txId = owner;
        fr.wordMask = mask;
    }
    return fr;
}

void
LadController::evictLine(CoreId, Addr line, const std::uint8_t *data,
                         bool persistent, TxId, std::uint8_t, Tick now)
{
    if (persistent) {
        // Committed words already drained home; uncommitted words are
        // staged in the controller — nothing to write.
        ++evictionsAbsorbedC_;
        return;
    }
    nvm_.write(now, line, data, kCacheLineSize);
    ++homeWritebacksC_;
}

ControllerGauges
LadController::sampleGauges() const
{
    // LAD's only persistence structure is the staged write set of each
    // open transaction (the controller's persistent queues).
    ControllerGauges g;
    // lint: unordered-iter-ok (outer std::vector of per-core maps; commutative size sum)
    for (const auto &w : txWrites) {
        g.mappingEntries += w.size();
        g.structBytes += w.size() * kCacheLineSize;
    }
    return g;
}

void
LadController::crash()
{
    // Uncommitted staging buffers vanish; the persistent queue already
    // drained its committed lines to the home region.
    // lint: unordered-iter-ok (outer std::vector of per-core maps; clearing is order-insensitive)
    for (auto &w : txWrites)
        w.clear();
    for (auto &t : coreTx)
        t = CoreTxState{};
}

Tick
LadController::recover(unsigned)
{
    // Nothing to replay: the ADR drain left the home region consistent.
    // Crash point: trivially idempotent (recovery is a no-op).
    crashStep(CrashPointKind::RecoveryStep);
    recoveriesC_ += 1;
    return nsToTicks(100);
}

void
LadController::debugReadLine(Addr line, std::uint8_t *buf) const
{
    nvm_.peek(line, buf, kCacheLineSize);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        auto it = txWrites[c].find(line);
        if (it != txWrites[c].end())
            it->second.overlay(buf);
    }
}

} // namespace hoopnvm
