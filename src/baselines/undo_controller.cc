#include "baselines/undo_controller.hh"

#include <algorithm>
#include <cstring>
#include <map>

#include "analysis/ordering_tracker.hh"
#include "common/errors.hh"
#include "common/flat_map.hh"
#include "common/logging.hh"

namespace hoopnvm
{

UndoController::UndoController(NvmDevice &nvm, const SystemConfig &cfg_)
    : PersistenceController("undo", nvm, cfg_),
      log_(nvm, cfg_.auxBase(), cfg_.auxBytes, "undo_log", &cfg_),
      txWrites(cfg_.numCores),
      outstanding(cfg_.numCores, 0),
      logEntriesC_(stats_.counter("log_entries")),
      commitFlushesC_(stats_.counter("commit_flushes")),
      commitRecordsC_(stats_.counter("commit_records")),
      txCommittedC_(stats_.counter("tx_committed")),
      homeWritebacksC_(stats_.counter("home_writebacks")),
      logBackpressureStallsC_(
          stats_.counter("log_backpressure_stalls")),
      txRejectedC_(stats_.counter("tx_rejected")),
      scrubCorrectedC_(stats_.counter("scrub_corrected_words")),
      scrubPassesC_(stats_.counter("scrub_passes")),
      scrubPauseH_(stats_.histogram("scrub_pause_ticks")),
      recoveriesC_(stats_.counter("recoveries"))
{
}

void
UndoController::declareOrderingRules(OrderingTracker &t)
{
    t.rule("undo-home-write")
        .requiresIssued("the line's undo pre-image entry before any "
                        "in-place write of an open transaction's line");
    t.rule("undo-commit-record")
        .requiresDurable("in-place data flushes and the commit record "
                         "of an acknowledged transaction");
    if (cfg.ft.enabled) {
        t.rule("log-retire-bitmap")
            .requiresSettled("the durable slot-retirement bitmap before "
                             "the retirement is acted upon");
    }
}

TxId
UndoController::txBegin(CoreId core, Tick now)
{
    if (cfg.ft.enabled &&
        log_.degradedFraction() >= cfg.ft.rejectCapacityFraction) {
        txRejectedC_ += 1;
        throw TxRejected{RejectCause::CapacityDegraded,
                         "undo log degraded past the admission "
                         "threshold by bad-slot retirement"};
    }
    const TxId tx = PersistenceController::txBegin(core, now);
    txWrites[core].clear();
    outstanding[core] = now;
    return tx;
}

Tick
UndoController::storeWord(CoreId core, Addr addr,
                          const std::uint8_t *data, Tick now)
{
    std::uint64_t value;
    std::memcpy(&value, data, kWordSize);
    const Addr line = lineAddr(addr);
    auto &writes = txWrites[core];
    auto it = writes.find(line);
    if (it == writes.end()) {
        // First touch: capture the old image and append the undo entry
        // before any in-place update may reach the home region. ATOM
        // enforces the ordering in the controller, so the store itself
        // is not delayed; the commit waits for the log instead.
        // debugSkipUndoLog drops the entry, breaking write-ahead
        // logging so the issued-before-trigger rule can be validated.
        if (!cfg.debugSkipUndoLog) {
            if (log_.full())
                stallForLogSpace(now);
            std::uint8_t old_line[kCacheLineSize];
            nvm_.read(now, line, old_line, kCacheLineSize);
            LogEntry e;
            e.type = LogEntryType::UndoImage;
            e.txId = coreTx[core].txId;
            e.line = line;
            e.mask = 0xff;
            std::memcpy(e.words.data(), old_line, kCacheLineSize);
            outstanding[core] =
                std::max(outstanding[core], log_.append(now, e));
            orderDep("undo-home-write", line);
            // Metadata companion line of the undo entry.
            nvm_.writeAccounting(now, kCacheLineSize);
            ++openEntries;
            ++logEntriesC_;
        }
        it = writes.emplace(line, LineImage{}).first;
    }
    it->second.setWord(
        static_cast<unsigned>((addr - line) / kWordSize), value);
    markLogPressure();
    return cfg.cycle();
}

Tick
UndoController::txEnd(CoreId core, Tick now)
{
    HOOP_ASSERT(coreTx[core].active, "txEnd without txBegin");
    const TxId tx = coreTx[core].txId;
    const std::uint64_t cid = allocCommitId();

    // Undo logging must make every data update durable in place before
    // the commit record retires the log — the strict persist ordering
    // that stretches the critical path (Fig. 4a).
    Tick t = std::max(now, outstanding[core]);
    Tick data_done = t;
    for (const Addr line : sortedKeys(txWrites[core])) {
        std::uint8_t buf[kCacheLineSize];
        nvm_.peek(line, buf, kCacheLineSize);
        txWrites[core].at(line).overlay(buf);
        data_done = std::max(
            data_done, nvm_.write(t, line, buf, kCacheLineSize));
        orderDep("undo-commit-record", tx);
        orderTrigger("undo-home-write", line, 0, 1, false);
        ++commitFlushesC_;
    }

    Tick commit_done = data_done;
    if (!txWrites[core].empty()) {
        if (log_.full())
            stallForLogSpace(data_done);
        LogEntry rec;
        rec.type = LogEntryType::Commit;
        rec.txId = tx;
        rec.commitId = cid;
        rec.mask = 1;
        commit_done = log_.append(data_done, rec);
        orderDep("undo-commit-record", tx);
        ++openEntries;
        ++commitRecordsC_;
    }

    // debugEarlyCommitAck acknowledges at issue time while the flushes
    // and the record are still in flight (checker validation only).
    const Tick ack = cfg.debugEarlyCommitAck ? now : commit_done;
    orderTrigger("undo-commit-record", tx, ack);
    committedEntries += openEntries;
    openEntries = 0;
    txWrites[core].clear();
    coreTx[core] = CoreTxState{};
    ++txCommittedC_;
    markLogPressure();
    return ack;
}

FillResult
UndoController::fillLine(CoreId, Addr line, std::uint8_t *buf, Tick now)
{
    // In-place updates: the home region is always current (evictions
    // and commit flushes both land there), so reads are cheap.
    FillResult fr;
    fr.completion = nvm_.read(now, line, buf, kCacheLineSize);
    return fr;
}

void
UndoController::evictLine(CoreId, Addr line, const std::uint8_t *data,
                          bool, TxId, std::uint8_t, Tick now)
{
    // In-place writeback is always legal: the undo entry for any
    // uncommitted content was persisted before the first store.
    if (ordering()) {
        bool open_tx_line = false;
        for (unsigned c = 0; c < cfg.numCores && !open_tx_line; ++c)
            open_tx_line = txWrites[c].contains(line);
        if (open_tx_line)
            orderTrigger("undo-home-write", line, 0, 1, false);
    }
    nvm_.write(now, line, data, kCacheLineSize);
    ++homeWritebacksC_;
}

void
UndoController::truncateCommitted(Tick now)
{
    // Between transactions every live entry belongs to a committed
    // transaction whose data was flushed in place at commit, so the
    // whole log is dead. With a transaction open, truncation must wait.
    bool any_open = false;
    for (const auto &t : coreTx)
        any_open |= t.active;
    if (any_open || log_.size() == 0)
        return;
    // Crash point: before the tail moves. All live entries belong to
    // committed transactions whose data is durably in place, so
    // recovery rolls nothing back either way.
    crashStep(CrashPointKind::GcStep);
    log_.truncate(now, log_.size());
    // The truncated entries' pre-images are gone; retire their
    // write-ahead obligations (all owners have committed).
    orderClear("undo-home-write");
    committedEntries = 0;
}

void
UndoController::stallForLogSpace(Tick now)
{
    // Log full mid-transaction: the writer stalls on truncation
    // (modelled backpressure, counted). Truncation can only proceed
    // between transactions, so if it frees nothing the open
    // transactions have outgrown the log — configuration error.
    ++logBackpressureStallsC_;
    truncateCommitted(now);
    if (log_.full()) {
        // Degrade, don't die: the offending transaction's in-place
        // writes are rolled back by its logged pre-images on recovery.
        txRejectedC_ += 1;
        throw TxRejected{RejectCause::LogExhausted,
                         "undo log wedged: all entries belong to open "
                         "transactions; increase auxBytes"};
    }
}

Tick
UndoController::scrub(Tick now)
{
    std::uint64_t corrected = 0;
    const Tick done =
        log_.scrubSlots(now, cfg.ft.scrubChunks, &corrected);
    scrubCorrectedC_ += corrected;
    scrubPassesC_ += 1;
    scrubPauseH_.record(done - now);
    return done;
}

void
UndoController::maintenance(Tick now)
{
    maintDirty_ = false;
    if (now - lastTruncate >= cfg.gcPeriod ||
        log_.size() * 4 >= log_.capacity() * 3) {
        maintDirty_ = true; // re-armed if truncation unwinds on crash
        lastTruncate = now;
        truncateCommitted(now);
        maintDirty_ = log_.size() * 4 >= log_.capacity() * 3;
    }
}

ControllerGauges
UndoController::sampleGauges() const
{
    ControllerGauges g;
    g.mappingEntries = log_.size();
    g.structBytes = log_.size() * LogEntry::kEntryBytes;
    g.backpressureStalls = stats_.value("log_backpressure_stalls");
    if (log_.faultToleranceEnabled()) {
        g.retiredUnits = log_.retiredSlots();
        g.correctedWords = nvm_.faults().wordsEccCorrected();
        g.degradedFraction = log_.degradedFraction();
    }
    g.txRejected = stats_.value("tx_rejected");
    return g;
}

void
UndoController::crash()
{
    // lint: unordered-iter-ok (outer std::vector of per-core maps; clearing is order-insensitive)
    for (auto &w : txWrites)
        w.clear();
    for (auto &t : coreTx)
        t = CoreTxState{};
    openEntries = 0;
}

Tick
UndoController::recover(unsigned)
{
    // Adopt the durable slot-retirement bitmap before the scan: retired
    // slots are burned, not read — their garbage would cut the suffix.
    log_.loadRetirement();
    // Roll back every transaction without a commit record by applying
    // its old images newest-first.
    std::unordered_map<TxId, bool> has_record;
    std::vector<LogEntry> images;
    std::uint64_t entries = 0;
    log_.scan([&](const LogEntry &e) {
        ++entries;
        if (e.type == LogEntryType::Commit)
            has_record[e.txId] = true;
        else if (e.type == LogEntryType::UndoImage)
            images.push_back(e);
    });

    std::uint64_t lines = 0;
    for (auto it = images.rbegin(); it != images.rend(); ++it) {
        if (has_record.contains(it->txId))
            continue; // committed: keep the in-place data
        // Crash point: between rollback writes. Pre-images are
        // absolute and the log survives until the clear below, so a
        // second recovery reapplies them idempotently.
        crashStep(CrashPointKind::RecoveryStep);
        nvm_.poke(it->line, it->words.data(), kCacheLineSize);
        ++lines;
    }
    // Crash point: rollback done, log not yet cleared.
    crashStep(CrashPointKind::RecoveryStep);
    log_.clear(0);
    committedEntries = 0;
    recoveriesC_ += 1;

    const Tick channel = nvm_.timing().transferTicks(
        entries * LogEntry::kEntryBytes + lines * kCacheLineSize);
    return channel + entries * nsToTicks(40);
}

void
UndoController::debugReadLine(Addr line, std::uint8_t *buf) const
{
    nvm_.peek(line, buf, kCacheLineSize);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        auto it = txWrites[c].find(line);
        if (it != txWrites[c].end())
            it->second.overlay(buf);
    }
}

} // namespace hoopnvm
