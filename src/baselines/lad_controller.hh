/**
 * @file
 * LAD: logless atomic durability after Gupta et al. [16].
 *
 * LAD exploits the fact that memory-controller queues sit inside the
 * ADR persistence domain: a transaction commits the moment its updated
 * cache lines are accepted by the controller, with no log writes at
 * all. The controller then drains the lines to their home addresses in
 * the background. On power failure the queue drains automatically, so
 * committed data always reaches NVM, while uncommitted updates are
 * discarded from the staging buffers.
 *
 * Its residual costs versus HOOP (paper §IV-B/D): data is persisted at
 * cache-line granularity (no word packing) and updates of the same line
 * across transactions are not coalesced before reaching NVM.
 */

#ifndef HOOPNVM_BASELINES_LAD_CONTROLLER_HH
#define HOOPNVM_BASELINES_LAD_CONTROLLER_HH

#include <unordered_map>
#include <vector>

#include "baselines/redo_controller.hh" // LineImage
#include "controller/persistence_controller.hh"

namespace hoopnvm
{

/** Logless atomic durability via persistent controller queues. */
class LadController : public PersistenceController
{
  public:
    LadController(NvmDevice &nvm, const SystemConfig &cfg);

    Scheme scheme() const override { return Scheme::Lad; }

    TxId txBegin(CoreId core, Tick now) override;
    Tick txEnd(CoreId core, Tick now) override;
    Tick storeWord(CoreId core, Addr addr, const std::uint8_t *data,
                   Tick now) override;
    FillResult fillLine(CoreId core, Addr line, std::uint8_t *buf,
                        Tick now) override;
    void evictLine(CoreId core, Addr line, const std::uint8_t *data,
                   bool persistent, TxId tx, std::uint8_t word_mask,
                   Tick now) override;
    ControllerGauges sampleGauges() const override;
    void crash() override;
    Tick recover(unsigned threads) override;
    void debugReadLine(Addr line, std::uint8_t *buf) const override;
    void declareOrderingRules(OrderingTracker &t) override;

  private:
    /** Per-core staged words of the running transaction (volatile). */
    std::vector<std::unordered_map<Addr, LineImage>> txWrites;

    /** Cost of accepting one line into the persistent queue. */
    Tick queueInsertCost;

    // Hot-path counters resolved once against the inherited stats_.
    Counter &queueDrainsC_;
    Counter &txCommittedC_;
    Counter &evictionsAbsorbedC_;
    Counter &homeWritebacksC_;
    Counter &recoveriesC_;
};

} // namespace hoopnvm

#endif // HOOPNVM_BASELINES_LAD_CONTROLLER_HH
