/**
 * @file
 * Durable append-only log substrate shared by the baseline schemes.
 *
 * Opt-Redo, Opt-Undo and OSP all need a persistent, crash-scannable
 * log: redo data images, undo (old) images, commit records, and OSP's
 * shadow-flip records. The log is a ring of 128-byte entries in the
 * auxiliary NVM region. Entries carry a monotonic sequence number; a
 * small superblock persists the ring tail on every truncation, so a
 * post-crash scan can walk forward from the durable tail while entry
 * sequence numbers keep ascending, recovering exactly the live suffix
 * (the standard head/tail-pointer discipline of hardware log units).
 */

#ifndef HOOPNVM_BASELINES_LOG_REGION_HH
#define HOOPNVM_BASELINES_LOG_REGION_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hh"
#include "nvm/nvm_device.hh"
#include "nvm/retirement_map.hh"
#include "sim/system_config.hh"
#include "stats/stat_set.hh"

namespace hoopnvm
{

class OrderingTracker;

/** Kinds of entries the baseline schemes write. */
enum class LogEntryType : std::uint8_t
{
    Invalid = 0,
    RedoData = 1,   ///< New words of one line (Opt-Redo).
    Commit = 2,     ///< Commit record of a transaction.
    UndoImage = 3,  ///< Old image of one line (Opt-Undo).
    OspRecord = 4,  ///< Shadow-flip list of a committed tx (OSP).
    LsmData = 5,    ///< Appended word updates (LSM).
};

/** Decoded 128-byte log entry. */
struct LogEntry
{
    static constexpr std::size_t kEntryBytes = 128;

    LogEntryType type = LogEntryType::Invalid;
    TxId txId = kInvalidTxId;
    std::uint64_t commitId = 0;
    Addr line = kInvalidAddr;
    std::uint8_t mask = 0;  ///< Valid words (bit i = word i of line).
    std::uint8_t count = 0; ///< Payload count for list-style entries.
    std::uint64_t seq = 0;

    /** CRC verdict filled by decode(); encode() stamps the CRC. A
     *  torn or corrupt entry cannot be trusted in any field, so a
     *  post-crash scan must cut the log at the first failure. */
    bool crcOk = true;

    /** Word payload: line words, or a list of line addresses (OSP). */
    std::array<std::uint64_t, 8> words{};

    void encode(std::uint8_t *out) const;
    static LogEntry decode(const std::uint8_t *in);
};

/** Ring of durable log entries with a persisted tail superblock. */
class LogRegion
{
  public:
    /**
     * @param nvm   Backing device.
     * @param base  First byte of the log area (64-byte superblock,
     *              then the entry ring).
     * @param bytes Total area size.
     * @param cfg   When non-null and cfg->ft.enabled, a durable slot
     *              retirement bitmap is carved from the area's tail and
     *              the ring runs the media-tolerance discipline: bad
     *              slots are program-verified at append, burned (head
     *              and nextSeq advance in lockstep past them, keeping
     *              seq == logical index + 1), durably retired, and
     *              skipped — never cut — by post-crash scans.
     */
    LogRegion(NvmDevice &nvm, Addr base, std::uint64_t bytes,
              const std::string &name,
              const SystemConfig *cfg = nullptr);

    /** Entries the ring can hold. */
    std::uint64_t capacity() const { return capacity_; }

    /** Live entries (head - tail). */
    std::uint64_t size() const { return head - tail; }

    bool full() const { return size() >= capacity_; }

    /**
     * True when @p n appends are guaranteed to succeed from the current
     * head — i.e. n usable (non-retired, non-faulted) free slots exist,
     * counting the bad slots the appends would burn through. Pure
     * check: lets a multi-record commit reserve space upfront so it
     * never throws after a partial append.
     */
    bool canAppend(std::uint64_t n) const;

    /**
     * Append @p e durably (stamps its sequence number).
     * @return Completion tick of the entry write.
     */
    Tick append(Tick now, LogEntry e);

    /**
     * Drop the oldest @p n entries and persist the new tail.
     * @return Completion tick of the superblock write.
     */
    Tick truncate(Tick now, std::uint64_t n);

    /** Drop everything and persist the empty state. */
    void clear(Tick now);

    /**
     * Post-crash scan: visit the live entries oldest-first, using only
     * durable state (superblock + entry sequence numbers).
     */
    void scan(const std::function<void(const LogEntry &)> &fn) const;

    /** Visit live entries oldest-first from host state (no crash). */
    void forEachLive(const std::function<void(const LogEntry &)> &fn)
        const;

    StatSet &stats() { return stats_; }

    // ---- Runtime fault tolerance (inert unless cfg.ft.enabled) ----

    /** Attach the ordering analyzer for retirement-rule tagging. */
    void setOrdering(OrderingTracker *t) { ordering_ = t; }

    /** True when the slot-retirement machinery is active. */
    bool faultToleranceEnabled() const { return retireMap_.attached(); }

    /** Ring slots durably retired as bad. */
    std::uint64_t retiredSlots() const { return retireMap_.retiredCount(); }

    /** Fraction of ring capacity lost to retirement, in [0, 1]. */
    double
    degradedFraction() const
    {
        return static_cast<double>(retireMap_.retiredCount()) /
               static_cast<double>(capacity_);
    }

    /**
     * One background scrub pass: patrol-read @p count ring slots round
     * robin, counting ECC corrections into @p corrected (may be null),
     * and durably retire uncorrectable slots that hold no live entry.
     * @return Completion tick of the patrol traffic.
     */
    Tick scrubSlots(Tick now, std::uint32_t count,
                    std::uint64_t *corrected = nullptr);

    /**
     * Adopt the durable retirement bitmap into the host mirror (start
     * of recovery); retired slots are burned, not scanned.
     */
    void loadRetirement();

    /**
     * Byte ranges of ring slots holding no live entry and not retired
     * (adjacent slots coalesced) — the slots a wear-out fault may be
     * scheduled over without damaging durable data.
     */
    std::vector<std::pair<Addr, Addr>> freeSlotRanges() const;

  private:
    Addr entryAddr(std::uint64_t logical_idx) const;
    void writeSuperblock(Tick now);

    /** True when physical slot @p slot sits on uncorrectable cells. */
    bool slotUncorrectable(std::uint64_t slot) const;

    /**
     * Program-verify at the ring head: burn (head++, nextSeq++) past
     * retired or uncorrectable slots, durably retiring newly-degraded
     * ones with a fenced bitmap write ("log-retire-bitmap" rule).
     */
    Tick skipBadHead(Tick now);

    /** Durably retire physical slot @p slot (fenced). */
    Tick retireSlot(std::uint64_t slot, Tick now);

    NvmDevice &nvm;
    Addr base;
    std::uint64_t capacity_;
    StatSet stats_;

    // Hot-path counters resolved once; StatSet references stay valid
    // for the StatSet's lifetime.
    Counter &superblockWritesC_;
    Counter &appendsC_;
    Counter &truncatedC_;
    Counter &slotsBurnedC_;
    Counter &slotsRetiredC_;

    /** Monotonic logical indices; slot = idx % capacity. */
    std::uint64_t head = 0;
    std::uint64_t tail = 0;
    std::uint64_t nextSeq = 1;

    /** Fence retirement bitmap writes (cfg.debugSkipSettleFences). */
    bool skipSettleFences_ = false;

    /** Round-robin slot cursor of the background scrubber. */
    std::uint64_t scrubCursor_ = 0;

    /** Durable bad-slot bitmap (attached only when cfg.ft.enabled). */
    RetirementMap retireMap_;

    OrderingTracker *ordering_ = nullptr;
};

} // namespace hoopnvm

#endif // HOOPNVM_BASELINES_LOG_REGION_HH
