/**
 * @file
 * Opt-Undo: hardware-assisted undo logging after ATOM [24].
 *
 * Before a line's first in-transaction modification, the controller
 * captures its old image from the home region and appends an undo
 * entry; the log-before-data ordering is enforced inside the memory
 * controller, keeping it off the store's critical path. Updates are
 * applied *in place*: commit must make every modified line durable at
 * its home address (the strict persist ordering that gives undo logging
 * the longest critical path in Fig. 4a) before the commit record
 * invalidates the undo entries. Reads always hit the home region, so
 * read latency is low (Table I).
 */

#ifndef HOOPNVM_BASELINES_UNDO_CONTROLLER_HH
#define HOOPNVM_BASELINES_UNDO_CONTROLLER_HH

#include <unordered_map>
#include <vector>

#include "baselines/log_region.hh"
#include "baselines/redo_controller.hh" // LineImage
#include "controller/persistence_controller.hh"

namespace hoopnvm
{

/** Hardware undo logging with in-place updates. */
class UndoController : public PersistenceController
{
  public:
    UndoController(NvmDevice &nvm, const SystemConfig &cfg);

    Scheme scheme() const override { return Scheme::OptUndo; }

    TxId txBegin(CoreId core, Tick now) override;
    Tick txEnd(CoreId core, Tick now) override;
    Tick storeWord(CoreId core, Addr addr, const std::uint8_t *data,
                   Tick now) override;
    FillResult fillLine(CoreId core, Addr line, std::uint8_t *buf,
                        Tick now) override;
    void evictLine(CoreId core, Addr line, const std::uint8_t *data,
                   bool persistent, TxId tx, std::uint8_t word_mask,
                   Tick now) override;
    void maintenance(Tick now) override;

    /** Next periodic trigger tick of the maintenance hook. */
    Tick
    nextMaintenanceDue() const override
    {
        return lastTruncate + cfg.gcPeriod;
    }
    Tick scrub(Tick now) override;
    ControllerGauges sampleGauges() const override;
    void crash() override;
    Tick recover(unsigned threads) override;
    void debugReadLine(Addr line, std::uint8_t *buf) const override;
    void declareOrderingRules(OrderingTracker &t) override;

    /** Forward the tracker to the log's retirement machinery. */
    void
    setOrderingTracker(OrderingTracker *t) override
    {
        PersistenceController::setOrderingTracker(t);
        log_.setOrdering(t);
    }

    /** Free log-ring slots: wear-out fault-injection targets. */
    std::vector<std::pair<Addr, Addr>>
    freeMediaRanges() const override
    {
        return log_.freeSlotRanges();
    }

    LogRegion &log() { return log_; }

  private:
    /** Truncate undo entries of fully-committed transactions. */
    void truncateCommitted(Tick now);

    /** Backpressure: stall until truncation frees log space. */
    void stallForLogSpace(Tick now);

    LogRegion log_;

    /** Per-core new data of the running transaction (for the commit
     *  flush; the old images live in the durable log). */
    std::vector<std::unordered_map<Addr, LineImage>> txWrites;

    /** Completion of each core's newest posted log write. */
    std::vector<Tick> outstanding;

    /** Live log entries per transaction, for truncation accounting. */
    std::uint64_t committedEntries = 0;
    std::uint64_t openEntries = 0;

    Tick lastTruncate = 0;

    /**
     * Arm maintenancePressure() when log occupancy crosses the
     * maintenance threshold; called after every append burst so the
     * engine's event-driven poll skip never misses pressure onset.
     */
    void
    markLogPressure()
    {
        if (log_.size() * 4 >= log_.capacity() * 3)
            maintDirty_ = true;
    }


    // Hot-path counters resolved once against the inherited stats_.
    Counter &logEntriesC_;
    Counter &commitFlushesC_;
    Counter &commitRecordsC_;
    Counter &txCommittedC_;
    Counter &homeWritebacksC_;
    Counter &logBackpressureStallsC_;
    Counter &txRejectedC_;
    Counter &scrubCorrectedC_;
    Counter &scrubPassesC_;
    Histogram &scrubPauseH_;
    Counter &recoveriesC_;
};

} // namespace hoopnvm

#endif // HOOPNVM_BASELINES_UNDO_CONTROLLER_HH
