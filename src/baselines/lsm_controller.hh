/**
 * @file
 * LSM: software log-structured NVM after LSNVMM [17].
 *
 * All writes append to a durable log; a DRAM-resident skip-list index
 * maps home line addresses to their newest log entry. Every load pays
 * an index walk (the O(log N) software translation the paper blames
 * for LSNVMM's long critical path), and LLC misses on logged lines pay
 * an extra log read. GC runs at the same frequency as HOOP's (as the
 * paper configures for fairness): it migrates the live images back to
 * the home region, drops their index entries and truncates the log.
 *
 * Appended entries carry the *cumulative* live image of their line
 * (words newer than the home region), so the newest entry per line plus
 * the home region always reconstructs the current data.
 */

#ifndef HOOPNVM_BASELINES_LSM_CONTROLLER_HH
#define HOOPNVM_BASELINES_LSM_CONTROLLER_HH

#include <unordered_map>
#include <vector>

#include "baselines/log_region.hh"
#include "baselines/redo_controller.hh" // LineImage
#include "baselines/skiplist.hh"
#include "controller/persistence_controller.hh"

namespace hoopnvm
{

/** Software log-structured NVM with a skip-list address index. */
class LsmController : public PersistenceController
{
  public:
    LsmController(NvmDevice &nvm, const SystemConfig &cfg);

    Scheme scheme() const override { return Scheme::Lsm; }

    TxId txBegin(CoreId core, Tick now) override;
    Tick txEnd(CoreId core, Tick now) override;
    Tick storeWord(CoreId core, Addr addr, const std::uint8_t *data,
                   Tick now) override;
    Tick loadOverhead(CoreId core, Addr addr, Tick now) override;
    FillResult fillLine(CoreId core, Addr line, std::uint8_t *buf,
                        Tick now) override;
    void evictLine(CoreId core, Addr line, const std::uint8_t *data,
                   bool persistent, TxId tx, std::uint8_t word_mask,
                   Tick now) override;
    void maintenance(Tick now) override;

    /** Next periodic trigger tick of the maintenance hook. */
    Tick
    nextMaintenanceDue() const override
    {
        return lastGc + cfg.gcPeriod;
    }
    Tick scrub(Tick now) override;
    ControllerGauges sampleGauges() const override;
    Tick drain(Tick now) override;
    void crash() override;
    Tick recover(unsigned threads) override;
    void debugReadLine(Addr line, std::uint8_t *buf) const override;
    void declareOrderingRules(OrderingTracker &t) override;

    /** Forward the tracker to the log's retirement machinery. */
    void
    setOrderingTracker(OrderingTracker *t) override
    {
        PersistenceController::setOrderingTracker(t);
        log_.setOrdering(t);
    }

    /** Free log-ring slots: wear-out fault-injection targets. */
    std::vector<std::pair<Addr, Addr>>
    freeMediaRanges() const override
    {
        return log_.freeSlotRanges();
    }

    SkipList &index() { return index_; }
    LogRegion &log() { return log_; }

  private:
    /** Migrate all committed live images home and truncate the log. */
    Tick gc(Tick now);

    /** Backpressure: stall until compaction frees log space. */
    Tick stallForLogSpace(Tick now);

    /** Cost of one index walk at the current tree size. */
    Tick indexWalkCost() const;

    LogRegion log_;
    SkipList index_; ///< home line -> newest log entry (DRAM-cached).

    /** Words newer than the home region, cumulative per line. */
    std::unordered_map<Addr, LineImage> liveImage;

    /** Per-core words of the running transaction. */
    std::vector<std::unordered_map<Addr, LineImage>> txWrites;

    Tick lastGc = 0;

    /**
     * Arm maintenancePressure() when log occupancy crosses the
     * maintenance threshold; called after every append burst so the
     * engine's event-driven poll skip never misses pressure onset.
     */
    void
    markLogPressure()
    {
        if (log_.size() * 4 >= log_.capacity() * 3)
            maintDirty_ = true;
    }

    std::uint64_t logicalEntryIdx = 0;

    // Hot-path counters resolved once against the inherited stats_.
    Counter &indexWalksC_;
    Counter &logEntriesC_;
    Counter &commitRecordsC_;
    Counter &txCommittedC_;
    Counter &logReadsC_;
    Counter &evictionsAbsorbedC_;
    Counter &homeWritebacksC_;
    Counter &gcRunsC_;
    Counter &migratedLinesC_;
    Counter &logBackpressureStallsC_;
    Counter &txRejectedC_;
    Counter &scrubCorrectedC_;
    Counter &scrubPassesC_;
    Histogram &scrubPauseH_;
    Counter &recoveriesC_;
};

} // namespace hoopnvm

#endif // HOOPNVM_BASELINES_LSM_CONTROLLER_HH
