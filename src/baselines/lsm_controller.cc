#include "baselines/lsm_controller.hh"

#include <algorithm>
#include <cstring>
#include <map>

#include "analysis/ordering_tracker.hh"
#include "common/errors.hh"
#include "common/flat_map.hh"
#include "common/logging.hh"

namespace hoopnvm
{

LsmController::LsmController(NvmDevice &nvm, const SystemConfig &cfg_)
    : PersistenceController("lsm", nvm, cfg_),
      log_(nvm, cfg_.auxBase(), cfg_.auxBytes, "lsm_log", &cfg_),
      txWrites(cfg_.numCores),
      indexWalksC_(stats_.counter("index_walks")),
      logEntriesC_(stats_.counter("log_entries")),
      commitRecordsC_(stats_.counter("commit_records")),
      txCommittedC_(stats_.counter("tx_committed")),
      logReadsC_(stats_.counter("log_reads")),
      evictionsAbsorbedC_(stats_.counter("evictions_absorbed")),
      homeWritebacksC_(stats_.counter("home_writebacks")),
      gcRunsC_(stats_.counter("gc_runs")),
      migratedLinesC_(stats_.counter("migrated_lines")),
      logBackpressureStallsC_(
          stats_.counter("log_backpressure_stalls")),
      txRejectedC_(stats_.counter("tx_rejected")),
      scrubCorrectedC_(stats_.counter("scrub_corrected_words")),
      scrubPassesC_(stats_.counter("scrub_passes")),
      scrubPauseH_(stats_.histogram("scrub_pause_ticks")),
      recoveriesC_(stats_.counter("recoveries"))
{
}

Tick
LsmController::indexWalkCost() const
{
    // O(log N) DRAM pointer chases plus software bookkeeping cycles;
    // the upper skip-list levels stay cached, so only a fraction of
    // the tower height costs a DRAM access.
    const unsigned hops = index_.height() / 5 + 2;
    return cfg.lsmIndexCycles * cfg.cycle() + hops * cfg.dramLatency;
}

void
LsmController::declareOrderingRules(OrderingTracker &t)
{
    t.rule("lsm-commit-record")
        .requiresDurable("every log extent and the commit record of an "
                         "acknowledged transaction");
    t.rule("lsm-log-truncate")
        .requiresSettled("home-migration writes before the log entries "
                         "that redo them are truncated");
    if (cfg.ft.enabled) {
        t.rule("log-retire-bitmap")
            .requiresSettled("the durable slot-retirement bitmap before "
                             "the retirement is acted upon");
    }
}

TxId
LsmController::txBegin(CoreId core, Tick now)
{
    if (cfg.ft.enabled &&
        log_.degradedFraction() >= cfg.ft.rejectCapacityFraction) {
        txRejectedC_ += 1;
        throw TxRejected{RejectCause::CapacityDegraded,
                         "lsm log degraded past the admission "
                         "threshold by bad-slot retirement"};
    }
    const TxId tx = PersistenceController::txBegin(core, now);
    txWrites[core].clear();
    return tx;
}

Tick
LsmController::storeWord(CoreId core, Addr addr,
                         const std::uint8_t *data, Tick now)
{
    std::uint64_t value;
    std::memcpy(&value, data, kWordSize);
    const Addr line = lineAddr(addr);
    auto &writes = txWrites[core];
    auto it = writes.find(line);
    const bool first_touch = it == writes.end();
    if (first_touch)
        it = writes.emplace(line, LineImage{}).first;
    it->second.setWord(
        static_cast<unsigned>((addr - line) / kWordSize), value);
    // Software write-path bookkeeping (allocation, index preparation)
    // is paid once per appended extent, i.e. per line.
    return first_touch ? cfg.lsmIndexCycles * cfg.cycle() : 0;
    (void)now;
}

Tick
LsmController::loadOverhead(CoreId, Addr, Tick)
{
    // Every load translates through the DRAM-cached skip list.
    ++indexWalksC_;
    return indexWalkCost();
}

Tick
LsmController::txEnd(CoreId core, Tick now)
{
    HOOP_ASSERT(coreTx[core].active, "txEnd without txBegin");
    const TxId tx = coreTx[core].txId;
    const std::uint64_t cid = allocCommitId();
    auto &writes = txWrites[core];

    Tick t = now;
    // Address order: log append order is observable durable state.
    for (const Addr line : sortedKeys(writes)) {
        if (log_.full())
            t = std::max(t, stallForLogSpace(t));
        // Fold into the cumulative live image so one entry per line is
        // always sufficient to reconstruct the newest data.
        LineImage &img = liveImage[line];
        img.merge(writes.at(line));

        LogEntry e;
        e.type = LogEntryType::LsmData;
        e.txId = tx;
        e.commitId = cid;
        e.line = line;
        e.mask = img.mask;
        e.words = img.words;
        t = std::max(t, log_.append(now, e));
        orderDep("lsm-commit-record", tx);
        index_.insert(line, logicalEntryIdx++);
        ++logEntriesC_;
    }

    if (!writes.empty()) {
        if (log_.full())
            t = std::max(t, stallForLogSpace(t));
        LogEntry rec;
        rec.type = LogEntryType::Commit;
        rec.txId = tx;
        rec.commitId = cid;
        rec.mask = 1;
        t = std::max(t, log_.append(now, rec));
        orderDep("lsm-commit-record", tx);
        ++commitRecordsC_;
    }

    // debugEarlyCommitAck acknowledges at issue time while the log
    // appends are still in flight (checker validation only).
    const Tick ack = cfg.debugEarlyCommitAck ? now : t;
    orderTrigger("lsm-commit-record", tx, ack);
    writes.clear();
    coreTx[core] = CoreTxState{};
    ++txCommittedC_;
    markLogPressure();
    return ack;
}

FillResult
LsmController::fillLine(CoreId, Addr line, std::uint8_t *buf, Tick now)
{
    FillResult fr;
    fr.completion = nvm_.read(now, line, buf, kCacheLineSize);

    std::uint8_t mask = 0;
    auto lit = liveImage.find(line);
    if (lit != liveImage.end()) {
        // The newest version lives in the log: extra log read.
        lit->second.overlay(buf);
        mask |= lit->second.mask;
        fr.completion = std::max(
            fr.completion,
            nvm_.readAccounting(now, LogEntry::kEntryBytes));
        ++logReadsC_;
    }

    TxId owner = kInvalidTxId;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        auto it = txWrites[c].find(line);
        if (it != txWrites[c].end()) {
            it->second.overlay(buf);
            mask |= it->second.mask;
            owner = coreTx[c].txId;
        }
    }
    if (mask) {
        fr.dirty = true;
        fr.persistent = true;
        fr.txId = owner;
        fr.wordMask = mask;
    }
    return fr;
}

void
LsmController::evictLine(CoreId, Addr line, const std::uint8_t *data,
                         bool persistent, TxId, std::uint8_t, Tick now)
{
    if (persistent) {
        // The log and live-image map already hold this data.
        ++evictionsAbsorbedC_;
        return;
    }
    nvm_.write(now, line, data, kCacheLineSize);
    ++homeWritebacksC_;
}

Tick
LsmController::gc(Tick now)
{
    // Cannot truncate while a transaction's entries are still
    // uncommitted in the log tail.
    for (const auto &t : coreTx) {
        if (t.active)
            return now;
    }
    if (liveImage.empty() && log_.size() == 0)
        return now;
    ++gcRunsC_;

    Tick last = now;
    for (const Addr line : sortedKeys(liveImage)) {
        // Crash point: between home-migration writes. The log keeps
        // every migrated image until the truncate below, so recovery
        // redoes torn migrations from the log.
        crashStep(CrashPointKind::GcStep);
        std::uint8_t buf[kCacheLineSize];
        nvm_.read(now, line, buf, kCacheLineSize);
        liveImage.at(line).overlay(buf);
        last = std::max(last,
                        nvm_.write(now, line, buf, kCacheLineSize));
        orderDep("lsm-log-truncate", 0);
        index_.erase(line);
        ++migratedLinesC_;
    }
    liveImage.clear();
    if (log_.size() > 0) {
        // Crash point: migration done, log tail not yet moved.
        crashStep(CrashPointKind::GcStep);
        // The truncation superblock write must not race the migration
        // writes above: if a migration tears while the truncation
        // survives, the log no longer holds the only good copy. Drain
        // the channel and settle the migrations first.
        const Tick drained = nvm_.drainFence(last);
        if (!cfg.debugSkipSettleFences)
            nvm_.faults().settleUpTo(drained);
        orderTrigger("lsm-log-truncate", 0, drained);
        last = std::max(last, log_.truncate(drained, log_.size()));
    }
    return last;
}

Tick
LsmController::stallForLogSpace(Tick now)
{
    // Log full on the commit path: the writer stalls for compaction
    // (modelled backpressure, counted). Whole-log truncation cannot
    // run while this transaction's own entries are live, so a full log
    // here means open transactions outgrew it — configuration error.
    ++logBackpressureStallsC_;
    const Tick done = gc(now);
    if (log_.full()) {
        // Degrade, don't die: the offending transaction carries no
        // commit record, so crash+recovery discards it whole.
        txRejectedC_ += 1;
        throw TxRejected{RejectCause::LogExhausted,
                         "lsm log wedged: all entries belong to open "
                         "transactions; increase auxBytes"};
    }
    return done;
}

Tick
LsmController::scrub(Tick now)
{
    std::uint64_t corrected = 0;
    const Tick done =
        log_.scrubSlots(now, cfg.ft.scrubChunks, &corrected);
    scrubCorrectedC_ += corrected;
    scrubPassesC_ += 1;
    scrubPauseH_.record(done - now);
    return done;
}

void
LsmController::maintenance(Tick now)
{
    maintDirty_ = false;
    if (now - lastGc >= cfg.gcPeriod ||
        log_.size() * 4 >= log_.capacity() * 3) {
        // Stay armed while GC runs (a SimCrash unwinding out of it
        // must leave the poll re-armed), then settle to the exact
        // post-GC occupancy predicate.
        maintDirty_ = true;
        lastGc = now;
        gc(now);
        maintDirty_ = log_.size() * 4 >= log_.capacity() * 3;
    }
}

ControllerGauges
LsmController::sampleGauges() const
{
    ControllerGauges g;
    g.mappingEntries = index_.size();
    g.structBytes = log_.size() * LogEntry::kEntryBytes;
    g.backpressureStalls = stats_.value("log_backpressure_stalls");
    if (log_.faultToleranceEnabled()) {
        g.retiredUnits = log_.retiredSlots();
        g.correctedWords = nvm_.faults().wordsEccCorrected();
        g.degradedFraction = log_.degradedFraction();
    }
    g.txRejected = stats_.value("tx_rejected");
    return g;
}

Tick
LsmController::drain(Tick now)
{
    return gc(now);
}

void
LsmController::crash()
{
    // lint: unordered-iter-ok (outer std::vector of per-core maps; clearing is order-insensitive)
    for (auto &w : txWrites)
        w.clear();
    for (auto &t : coreTx)
        t = CoreTxState{};
    liveImage.clear();
    index_.clear();
}

Tick
LsmController::recover(unsigned)
{
    // Adopt the durable slot-retirement bitmap before the scan: retired
    // slots are burned, not read — their garbage would cut the suffix.
    log_.loadRetirement();
    // Apply committed cumulative images in commit order.
    std::unordered_map<TxId, bool> has_record;
    std::map<std::uint64_t, std::vector<LogEntry>> by_commit;
    std::uint64_t entries = 0;
    log_.scan([&](const LogEntry &e) {
        ++entries;
        if (e.type == LogEntryType::Commit)
            has_record[e.txId] = true;
        else if (e.type == LogEntryType::LsmData)
            by_commit[e.commitId].push_back(e);
    });

    std::uint64_t lines = 0;
    for (const auto &kv : by_commit) {
        for (const LogEntry &e : kv.second) {
            if (!has_record.contains(e.txId))
                continue;
            // Crash point: between replay writes; the log survives
            // until the clear below, so replay is re-runnable.
            crashStep(CrashPointKind::RecoveryStep);
            std::uint8_t buf[kCacheLineSize];
            nvm_.peek(e.line, buf, kCacheLineSize);
            LineImage img;
            img.mask = e.mask;
            img.words = e.words;
            img.overlay(buf);
            nvm_.poke(e.line, buf, kCacheLineSize);
            ++lines;
        }
    }
    // Crash point: replay done, log not yet cleared.
    crashStep(CrashPointKind::RecoveryStep);
    log_.clear(0);
    liveImage.clear();
    index_.clear();
    recoveriesC_ += 1;

    const Tick channel = nvm_.timing().transferTicks(
        entries * LogEntry::kEntryBytes + lines * kCacheLineSize);
    return channel + entries * nsToTicks(60);
}

void
LsmController::debugReadLine(Addr line, std::uint8_t *buf) const
{
    nvm_.peek(line, buf, kCacheLineSize);
    auto lit = liveImage.find(line);
    if (lit != liveImage.end())
        lit->second.overlay(buf);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        auto it = txWrites[c].find(line);
        if (it != txWrites[c].end())
            it->second.overlay(buf);
    }
}

} // namespace hoopnvm
