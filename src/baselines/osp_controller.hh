/**
 * @file
 * OSP: optimized shadow paging after SSP [38], [39].
 *
 * Every home-region cache line is backed by two physical copies: the
 * original line and a shadow line in the auxiliary region. A one-byte
 * per-line selector table (persisted in NVM) names the current copy.
 * Commit eagerly writes each modified line to the *inactive* copy,
 * appends a durable flip record listing the lines, performs the flips,
 * and pays a TLB shootdown (the address seen by the processor changes,
 * which the paper identifies as OSP's main cost). A crash before the
 * record leaves the old copies live; a crash after it is completed by
 * recovery re-applying the flips.
 */

#ifndef HOOPNVM_BASELINES_OSP_CONTROLLER_HH
#define HOOPNVM_BASELINES_OSP_CONTROLLER_HH

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "baselines/log_region.hh"
#include "baselines/redo_controller.hh" // LineImage
#include "controller/persistence_controller.hh"

namespace hoopnvm
{

/** Cache-line-granularity shadow paging. */
class OspController : public PersistenceController
{
  public:
    OspController(NvmDevice &nvm, const SystemConfig &cfg);

    Scheme scheme() const override { return Scheme::Osp; }

    TxId txBegin(CoreId core, Tick now) override;
    Tick txEnd(CoreId core, Tick now) override;
    Tick storeWord(CoreId core, Addr addr, const std::uint8_t *data,
                   Tick now) override;
    FillResult fillLine(CoreId core, Addr line, std::uint8_t *buf,
                        Tick now) override;
    void evictLine(CoreId core, Addr line, const std::uint8_t *data,
                   bool persistent, TxId tx, std::uint8_t word_mask,
                   Tick now) override;
    void maintenance(Tick now) override;
    Tick scrub(Tick now) override;
    ControllerGauges sampleGauges() const override;
    void crash() override;
    Tick recover(unsigned threads) override;
    void debugReadLine(Addr line, std::uint8_t *buf) const override;
    void declareOrderingRules(OrderingTracker &t) override;

    /** Forward the tracker to the log's retirement machinery. */
    void
    setOrderingTracker(OrderingTracker *t) override
    {
        PersistenceController::setOrderingTracker(t);
        log_.setOrdering(t);
    }

    /** Free log-ring slots: wear-out fault-injection targets. */
    std::vector<std::pair<Addr, Addr>>
    freeMediaRanges() const override
    {
        return log_.freeSlotRanges();
    }

    /** NVM address of the line's shadow copy. */
    Addr shadowOf(Addr line) const;

    /** True if the shadow copy of @p line is the current one. */
    bool shadowIsCurrent(Addr line) const;

  private:
    /** NVM address of @p line's entry in the selector table. */
    Addr selectorAddr(Addr line) const;

    /** Address of the currently live copy of @p line. */
    Addr currentCopy(Addr line) const;

    /** Persist selector bytes for @p lines and update the host view. */
    Tick applyFlips(Tick now, const std::vector<Addr> &lines);

    LogRegion log_; ///< Flip records (atomic multi-line commit).

    /** Host view of the NVM selector table (shadow-current lines). */
    std::unordered_set<Addr> shadowCurrent;

    /** Per-core words written by the running transaction. */
    std::vector<std::unordered_map<Addr, LineImage>> txWrites;

    /** Commits since the last page consolidation pass. */
    std::uint64_t commitsSinceConsolidation = 0;

    // Hot-path counters resolved once against the inherited stats_.
    Counter &selectorWritesC_;
    Counter &shadowWritesC_;
    Counter &txCommittedC_;
    Counter &flipRecordsC_;
    Counter &tlbShootdownsC_;
    Counter &consolidationCopiesC_;
    Counter &inactiveWritebacksC_;
    Counter &homeWritebacksC_;
    Counter &logBackpressureStallsC_;
    Counter &txRejectedC_;
    Counter &scrubCorrectedC_;
    Counter &scrubPassesC_;
    Histogram &scrubPauseH_;
    Counter &recoveriesC_;
};

} // namespace hoopnvm

#endif // HOOPNVM_BASELINES_OSP_CONTROLLER_HH
