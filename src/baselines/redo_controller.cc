#include "baselines/redo_controller.hh"

#include <algorithm>
#include <cstring>
#include <map>

#include "analysis/ordering_tracker.hh"
#include "common/errors.hh"
#include "common/flat_map.hh"
#include "common/logging.hh"

namespace hoopnvm
{

void
LineImage::overlay(std::uint8_t *buf) const
{
    for (unsigned i = 0; i < kWordsPerLine; ++i) {
        if (mask & (1u << i))
            std::memcpy(buf + i * kWordSize, &words[i], kWordSize);
    }
}

void
LineImage::merge(const LineImage &other)
{
    for (unsigned i = 0; i < kWordsPerLine; ++i) {
        if (other.mask & (1u << i))
            setWord(i, other.words[i]);
    }
}

RedoController::RedoController(NvmDevice &nvm, const SystemConfig &cfg_)
    : PersistenceController("redo", nvm, cfg_),
      log_(nvm, cfg_.auxBase(), cfg_.auxBytes, "redo_log", &cfg_),
      txWrites(cfg_.numCores),
      outstanding(cfg_.numCores, 0),
      logLookupCost(nsToTicks(20)),
      logEntriesC_(stats_.counter("log_entries")),
      commitRecordsC_(stats_.counter("commit_records")),
      checkpointWritesC_(stats_.counter("checkpoint_writes")),
      txCommittedC_(stats_.counter("tx_committed")),
      evictionsAbsorbedC_(stats_.counter("evictions_absorbed")),
      homeWritebacksC_(stats_.counter("home_writebacks")),
      truncationsC_(stats_.counter("truncations")),
      logBackpressureStallsC_(
          stats_.counter("log_backpressure_stalls")),
      txRejectedC_(stats_.counter("tx_rejected")),
      scrubCorrectedC_(stats_.counter("scrub_corrected_words")),
      scrubPassesC_(stats_.counter("scrub_passes")),
      scrubPauseH_(stats_.histogram("scrub_pause_ticks")),
      recoveriesC_(stats_.counter("recoveries"))
{
}

void
RedoController::declareOrderingRules(OrderingTracker &t)
{
    t.rule("redo-commit-record")
        .requiresDurable("every redo entry and the commit record of an "
                         "acknowledged transaction");
    t.rule("redo-log-truncate")
        .requiresSettled("asynchronous checkpoint writes before the log "
                         "entries that redo them are truncated");
    // Declared only when the subsystem can fire it: a rule that cannot
    // fire would (correctly) be reported dead by clean-run sweeps.
    if (cfg.ft.enabled) {
        t.rule("log-retire-bitmap")
            .requiresSettled("the durable slot-retirement bitmap before "
                             "the retirement is acted upon");
    }
}

TxId
RedoController::txBegin(CoreId core, Tick now)
{
    // Graceful degradation: once slot retirement has eaten past the
    // configured fraction of the log ring, stop admitting transactions
    // (ENOSPC-style) instead of wedging mid-commit.
    if (cfg.ft.enabled &&
        log_.degradedFraction() >= cfg.ft.rejectCapacityFraction) {
        txRejectedC_ += 1;
        throw TxRejected{RejectCause::CapacityDegraded,
                         "redo log degraded past the admission "
                         "threshold by bad-slot retirement"};
    }
    const TxId tx = PersistenceController::txBegin(core, now);
    txWrites[core].clear();
    outstanding[core] = now;
    return tx;
}

Tick
RedoController::storeWord(CoreId core, Addr addr,
                          const std::uint8_t *data, Tick now)
{
    std::uint64_t value;
    std::memcpy(&value, data, kWordSize);
    const Addr line = lineAddr(addr);
    const unsigned idx =
        static_cast<unsigned>((addr - line) / kWordSize);
    txWrites[core][line].setWord(idx, value);
    return cfg.cycle();
    (void)now;
}

Tick
RedoController::txEnd(CoreId core, Tick now)
{
    HOOP_ASSERT(coreTx[core].active, "txEnd without txBegin");
    const TxId tx = coreTx[core].txId;
    const std::uint64_t cid = allocCommitId();
    Tick t = now;

    // Stream one redo entry per modified line (data + metadata line),
    // in address order: log append order is observable durable state.
    for (const Addr line : sortedKeys(txWrites[core])) {
        const LineImage &img = txWrites[core].at(line);
        if (log_.full())
            t = std::max(t, stallForLogSpace(t));
        LogEntry e;
        e.type = LogEntryType::RedoData;
        e.txId = tx;
        e.commitId = cid;
        e.line = line;
        e.mask = img.mask;
        e.words = img.words;
        t = std::max(t, log_.append(now, e));
        orderDep("redo-commit-record", tx);
        // WrAP's per-update metadata occupies a second cache line.
        nvm_.writeAccounting(now, kCacheLineSize);
        ++logEntriesC_;
    }

    // Commit record makes the transaction durable.
    if (!txWrites[core].empty()) {
        if (log_.full())
            t = std::max(t, stallForLogSpace(t));
        LogEntry rec;
        rec.type = LogEntryType::Commit;
        rec.txId = tx;
        rec.commitId = cid;
        rec.mask = 1;
        t = std::max(t, log_.append(now, rec));
        orderDep("redo-commit-record", tx);
        ++commitRecordsC_;

        // Asynchronous checkpointing (WrAP): each logged line is
        // retired to its home address in place. The commit does not
        // wait, but the double write consumes NVM bandwidth — the
        // scheme's fundamental cost (§II-B).
        for (const Addr line : sortedKeys(txWrites[core])) {
            // Crash point: between checkpoint (migration-home) writes.
            // The log still holds the full redo image, so recovery
            // redoes any torn checkpoint.
            crashStep(CrashPointKind::GcStep);
            std::uint8_t buf[kCacheLineSize];
            nvm_.peek(line, buf, kCacheLineSize);
            txWrites[core].at(line).overlay(buf);
            nvm_.write(t, line, buf, kCacheLineSize);
            orderDep("redo-log-truncate", 0);
            ++checkpointWritesC_;
        }
        truncatableEntries += txWrites[core].size() + 1;
    }

    t = std::max(t, outstanding[core]);
    // debugEarlyCommitAck acknowledges at issue time while the log
    // appends are still in flight — the durable-by-ack rule must flag
    // every such commit (checker validation only).
    const Tick ack = cfg.debugEarlyCommitAck ? now : t;
    orderTrigger("redo-commit-record", tx, ack);
    txWrites[core].clear();
    coreTx[core] = CoreTxState{};
    ++txCommittedC_;
    markLogPressure();
    return ack;
}

FillResult
RedoController::fillLine(CoreId core, Addr line, std::uint8_t *buf,
                         Tick now)
{
    (void)core;
    FillResult fr;
    fr.completion = nvm_.read(now, line, buf, kCacheLineSize);

    // An evicted line of a still-running transaction: its newest words
    // exist only in the controller's transaction buffer.
    std::uint8_t mask = 0;
    TxId owner = kInvalidTxId;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        auto it = txWrites[c].find(line);
        if (it != txWrites[c].end()) {
            it->second.overlay(buf);
            mask |= it->second.mask;
            owner = coreTx[c].txId;
        }
    }
    if (mask) {
        fr.dirty = true;
        fr.persistent = true;
        fr.txId = owner;
        fr.wordMask = mask;
    }
    return fr;
}

void
RedoController::evictLine(CoreId, Addr line, const std::uint8_t *data,
                          bool persistent, TxId, std::uint8_t, Tick now)
{
    if (persistent) {
        // Transactional data is (or will be) durable via the log and
        // reaches home through checkpointing — never written here.
        ++evictionsAbsorbedC_;
        return;
    }
    nvm_.write(now, line, data, kCacheLineSize);
    ++homeWritebacksC_;
}

Tick
RedoController::truncateRetired(Tick now)
{
    if (truncatableEntries == 0)
        return now;
    // Crash point: before the tail moves. Entries about to be
    // truncated are already checkpointed home, so replaying them once
    // more after the crash is idempotent.
    crashStep(CrashPointKind::GcStep);
    // The checkpoint writes were issued asynchronously at commit time
    // and may still be in flight: once the tail moves past an entry,
    // its checkpointed home line is the ONLY durable copy, so the
    // channel must drain (checkpoints settled) before the superblock
    // write is issued. Without the drain a crash could tear a
    // checkpoint while the later superblock write survives, losing
    // committed data with no log entry left to redo it.
    const Tick drained = nvm_.drainFence(now);
    if (!cfg.debugSkipSettleFences)
        nvm_.faults().settleUpTo(drained);
    orderTrigger("redo-log-truncate", 0, drained);
    const Tick done = log_.truncate(drained, truncatableEntries);
    truncatableEntries = 0;
    ++truncationsC_;
    return done;
}

Tick
RedoController::stallForLogSpace(Tick now)
{
    // Log full on the commit path: the writer stalls until retired
    // entries are truncated (modelled backpressure, counted). If
    // truncation frees nothing every live entry belongs to open
    // transactions and no progress is possible — configuration error.
    ++logBackpressureStallsC_;
    const Tick done = truncateRetired(now);
    if (log_.full()) {
        // Degrade, don't die: the offending transaction carries no
        // commit record, so crash+recovery discards it whole.
        txRejectedC_ += 1;
        throw TxRejected{RejectCause::LogExhausted,
                         "redo log wedged: all entries belong to open "
                         "transactions; increase auxBytes"};
    }
    return done;
}

Tick
RedoController::scrub(Tick now)
{
    std::uint64_t corrected = 0;
    const Tick done =
        log_.scrubSlots(now, cfg.ft.scrubChunks, &corrected);
    scrubCorrectedC_ += corrected;
    scrubPassesC_ += 1;
    scrubPauseH_.record(done - now);
    return done;
}

void
RedoController::maintenance(Tick now)
{
    maintDirty_ = false;
    if (now - lastCkpt >= cfg.gcPeriod ||
        log_.size() * 4 >= log_.capacity() * 3) {
        maintDirty_ = true; // re-armed if truncation unwinds on crash
        lastCkpt = now;
        truncateRetired(now);
        maintDirty_ = log_.size() * 4 >= log_.capacity() * 3;
    }
}

ControllerGauges
RedoController::sampleGauges() const
{
    ControllerGauges g;
    g.mappingEntries = log_.size();
    g.structBytes = log_.size() * LogEntry::kEntryBytes;
    g.backpressureStalls = stats_.value("log_backpressure_stalls");
    if (log_.faultToleranceEnabled()) {
        g.retiredUnits = log_.retiredSlots();
        g.correctedWords = nvm_.faults().wordsEccCorrected();
        g.degradedFraction = log_.degradedFraction();
    }
    g.txRejected = stats_.value("tx_rejected");
    return g;
}

Tick
RedoController::drain(Tick now)
{
    return truncateRetired(now);
}

void
RedoController::crash()
{
    // lint: unordered-iter-ok (outer std::vector of per-core maps; clearing is order-insensitive)
    for (auto &w : txWrites)
        w.clear();
    for (auto &t : coreTx)
        t = CoreTxState{};
}

Tick
RedoController::recover(unsigned)
{
    // Adopt the durable slot-retirement bitmap before the scan: retired
    // slots are burned, not read — their garbage would cut the suffix.
    log_.loadRetirement();
    // Replay committed transactions' redo images in commit order.
    std::map<std::uint64_t, std::vector<LogEntry>> by_commit;
    std::unordered_map<TxId, bool> has_record;
    std::uint64_t entries = 0;
    log_.scan([&](const LogEntry &e) {
        ++entries;
        if (e.type == LogEntryType::Commit)
            has_record[e.txId] = true;
        else if (e.type == LogEntryType::RedoData)
            by_commit[e.commitId].push_back(e);
    });

    std::uint64_t lines = 0;
    for (const auto &kv : by_commit) {
        for (const LogEntry &e : kv.second) {
            if (!has_record.contains(e.txId))
                continue; // uncommitted: discard
            // Crash point: between replay writes. The log is cleared
            // only after the loop, so a second recovery replays the
            // same committed images idempotently.
            crashStep(CrashPointKind::RecoveryStep);
            std::uint8_t buf[kCacheLineSize];
            nvm_.peek(e.line, buf, kCacheLineSize);
            LineImage img;
            img.mask = e.mask;
            img.words = e.words;
            img.overlay(buf);
            nvm_.poke(e.line, buf, kCacheLineSize);
            ++lines;
        }
    }
    // Crash point: replay done, log not yet cleared — re-entering
    // recovery replays everything again with the same result.
    crashStep(CrashPointKind::RecoveryStep);
    log_.clear(0);
    truncatableEntries = 0;
    recoveriesC_ += 1;

    // Single-threaded log replay, channel-bound plus per-entry work.
    const Tick channel = nvm_.timing().transferTicks(
        entries * LogEntry::kEntryBytes + lines * kCacheLineSize);
    return channel + entries * nsToTicks(40);
}

void
RedoController::debugReadLine(Addr line, std::uint8_t *buf) const
{
    nvm_.peek(line, buf, kCacheLineSize);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        auto it = txWrites[c].find(line);
        if (it != txWrites[c].end())
            it->second.overlay(buf);
    }
}

} // namespace hoopnvm
