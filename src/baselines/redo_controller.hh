/**
 * @file
 * Opt-Redo: hardware-assisted redo logging after WrAP [13].
 *
 * Every transactionally-modified cache line is streamed into a durable
 * redo log (128 B per line: a data line plus a metadata line, as the
 * paper notes WrAP "persists both the data and metadata for a single
 * update using two cache lines"). Commit waits for the outstanding log
 * writes plus a commit record. Data reaches its home address only via
 * asynchronous checkpointing: a background pass periodically retires
 * the latest committed image of every logged line to the home region
 * and truncates the log — the scheme's unavoidable double write.
 *
 * Reads of logged-but-not-yet-checkpointed lines must consult the log
 * (Table I classifies WrAP's read latency as High).
 */

#ifndef HOOPNVM_BASELINES_REDO_CONTROLLER_HH
#define HOOPNVM_BASELINES_REDO_CONTROLLER_HH

#include <unordered_map>
#include <vector>

#include "baselines/log_region.hh"
#include "controller/persistence_controller.hh"

namespace hoopnvm
{

/** Buffered image of one line touched by a transaction. */
struct LineImage
{
    std::uint8_t mask = 0;
    std::array<std::uint64_t, kWordsPerLine> words{};

    void
    setWord(unsigned idx, std::uint64_t v)
    {
        words[idx] = v;
        mask |= static_cast<std::uint8_t>(1u << idx);
    }

    /** Overlay this image's valid words onto @p buf (a full line). */
    void overlay(std::uint8_t *buf) const;

    /** Merge @p other on top of this image. */
    void merge(const LineImage &other);
};

/** Hardware redo logging with asynchronous checkpointing. */
class RedoController : public PersistenceController
{
  public:
    RedoController(NvmDevice &nvm, const SystemConfig &cfg);

    Scheme scheme() const override { return Scheme::OptRedo; }

    TxId txBegin(CoreId core, Tick now) override;
    Tick txEnd(CoreId core, Tick now) override;
    Tick storeWord(CoreId core, Addr addr, const std::uint8_t *data,
                   Tick now) override;
    FillResult fillLine(CoreId core, Addr line, std::uint8_t *buf,
                        Tick now) override;
    void evictLine(CoreId core, Addr line, const std::uint8_t *data,
                   bool persistent, TxId tx, std::uint8_t word_mask,
                   Tick now) override;
    void maintenance(Tick now) override;

    /** Next periodic trigger tick of the maintenance hook. */
    Tick
    nextMaintenanceDue() const override
    {
        return lastCkpt + cfg.gcPeriod;
    }
    Tick scrub(Tick now) override;
    ControllerGauges sampleGauges() const override;
    Tick drain(Tick now) override;
    void crash() override;
    Tick recover(unsigned threads) override;
    void debugReadLine(Addr line, std::uint8_t *buf) const override;
    void declareOrderingRules(OrderingTracker &t) override;

    /** Forward the tracker to the log's retirement machinery. */
    void
    setOrderingTracker(OrderingTracker *t) override
    {
        PersistenceController::setOrderingTracker(t);
        log_.setOrdering(t);
    }

    /** Free log-ring slots: wear-out fault-injection targets. */
    std::vector<std::pair<Addr, Addr>>
    freeMediaRanges() const override
    {
        return log_.freeSlotRanges();
    }

    LogRegion &log() { return log_; }

  private:
    /** Truncate retired log entries. */
    Tick truncateRetired(Tick now);

    /** Backpressure: stall the committer until truncation frees log
     *  space; fatal if nothing is truncatable (wedged). */
    Tick stallForLogSpace(Tick now);

    LogRegion log_;

    /** Per-core in-flight transaction writes. */
    std::vector<std::unordered_map<Addr, LineImage>> txWrites;

    /** Completion tick of each core's newest posted log write. */
    std::vector<Tick> outstanding;

    /** Log entries that the next truncation may drop. */
    std::uint64_t truncatableEntries = 0;

    Tick lastCkpt = 0;

    /**
     * Arm maintenancePressure() when log occupancy crosses the
     * maintenance threshold; called after every append burst so the
     * engine's event-driven poll skip never misses pressure onset.
     */
    void
    markLogPressure()
    {
        if (log_.size() * 4 >= log_.capacity() * 3)
            maintDirty_ = true;
    }

    Tick logLookupCost;

    // Hot-path counters resolved once against the inherited stats_.
    Counter &logEntriesC_;
    Counter &commitRecordsC_;
    Counter &checkpointWritesC_;
    Counter &txCommittedC_;
    Counter &evictionsAbsorbedC_;
    Counter &homeWritebacksC_;
    Counter &truncationsC_;
    Counter &logBackpressureStallsC_;
    Counter &txRejectedC_;
    Counter &scrubCorrectedC_;
    Counter &scrubPassesC_;
    Histogram &scrubPauseH_;
    Counter &recoveriesC_;
};

} // namespace hoopnvm

#endif // HOOPNVM_BASELINES_REDO_CONTROLLER_HH
