#include "baselines/log_region.hh"

#include <algorithm>
#include <cstring>

#include "analysis/ordering_tracker.hh"
#include "common/crc32.hh"
#include "common/errors.hh"
#include "common/logging.hh"

namespace hoopnvm
{

namespace
{

/**
 * Durable ring state, kept at the base of the log area.
 *
 * The only mutable field is tailIdx — a single 8-byte word, so a torn
 * superblock write merely reverts it to the previous value (the NVM
 * word is the tear unit). The matching tail sequence is derived as
 * tailIdx + 1 (head and nextSeq move in lockstep from 0 and 1), never
 * stored: persisting it separately would let the two words tear
 * independently into an inconsistent pair that disowns the whole log.
 */
struct Superblock
{
    std::uint32_t magic;
    std::uint32_t pad;
    std::uint64_t tailIdx;
};

constexpr std::uint32_t kSuperMagic = 0x4c4f4752; // "LOGR"
constexpr std::uint64_t kSuperBytes = 64;

} // namespace

void
LogEntry::encode(std::uint8_t *out) const
{
    std::memset(out, 0, kEntryBytes);
    std::memcpy(out + 0, words.data(), 64);
    std::memcpy(out + 64, &line, 8);
    std::memcpy(out + 72, &txId, 8);
    std::memcpy(out + 80, &commitId, 8);
    std::memcpy(out + 88, &seq, 8);
    out[96] = mask;
    out[97] = count;
    out[98] = static_cast<std::uint8_t>(type);
    // Entry writes span 16 NVM words and are not atomic: a crash can
    // revert any subset of them while the type byte and sequence word
    // survive. The CRC (over every meaningful byte above) lets the
    // post-crash scan reject such a torn entry instead of replaying
    // its garbage payload as committed data.
    const std::uint32_t crc = crc32c(out, 100);
    std::memcpy(out + 100, &crc, 4);
}

LogEntry
LogEntry::decode(const std::uint8_t *in)
{
    LogEntry e;
    e.type = static_cast<LogEntryType>(in[98]);
    if (e.type == LogEntryType::Invalid)
        return e;
    std::uint32_t stored;
    std::memcpy(&stored, in + 100, 4);
    e.crcOk = stored == crc32c(in, 100);
    std::memcpy(e.words.data(), in + 0, 64);
    std::memcpy(&e.line, in + 64, 8);
    std::memcpy(&e.txId, in + 72, 8);
    std::memcpy(&e.commitId, in + 80, 8);
    std::memcpy(&e.seq, in + 88, 8);
    e.mask = in[96];
    e.count = in[97];
    return e;
}

LogRegion::LogRegion(NvmDevice &nvm_, Addr base_, std::uint64_t bytes,
                     const std::string &name, const SystemConfig *cfg)
    : nvm(nvm_), base(base_),
      capacity_((bytes - kSuperBytes) / LogEntry::kEntryBytes),
      stats_(name),
      superblockWritesC_(stats_.counter("superblock_writes")),
      appendsC_(stats_.counter("appends")),
      truncatedC_(stats_.counter("truncated")),
      slotsBurnedC_(stats_.counter("slots_burned")),
      slotsRetiredC_(stats_.counter("slots_retired"))
{
    if (cfg && cfg->ft.enabled) {
        // Carve the durable retirement bitmap from the area's tail.
        // areaBytes() of the un-shrunk capacity over-reserves by at
        // most one slot's worth of bitmap — deliberately simple.
        const std::uint64_t area = RetirementMap::areaBytes(capacity_);
        HOOP_ASSERT(bytes > kSuperBytes + area +
                                16 * LogEntry::kEntryBytes,
                    "log region too small for a retirement map");
        capacity_ = (bytes - kSuperBytes - area) / LogEntry::kEntryBytes;
        retireMap_.attach(nvm, base + bytes - area, capacity_);
        skipSettleFences_ = cfg->debugSkipSettleFences;
    }
    HOOP_ASSERT(capacity_ >= 16, "log region too small");
    writeSuperblock(0);
}

bool
LogRegion::slotUncorrectable(std::uint64_t slot) const
{
    return nvm.faults().uncorrectableInRange(
        base + kSuperBytes + slot * LogEntry::kEntryBytes,
        LogEntry::kEntryBytes);
}

Tick
LogRegion::retireSlot(std::uint64_t slot, Tick now)
{
    Tick done = retireMap_.persistRetire(slot, now);
    if (ordering_)
        ordering_->addDep("log-retire-bitmap", 0);
    // The retirement must be durable before anything acts on it (a
    // burn that skips the slot, a scan that steps over it): a crash in
    // between would otherwise scan the bad slot, read garbage, and cut
    // the live suffix — losing acknowledged entries behind it.
    if (!skipSettleFences_)
        nvm.faults().settleUpTo(done);
    if (ordering_)
        ordering_->trigger("log-retire-bitmap", 0, done, 1, true);
    ++slotsRetiredC_;
    return done;
}

Tick
LogRegion::skipBadHead(Tick now)
{
    if (!retireMap_.attached())
        return now;
    while (size() < capacity_) {
        const std::uint64_t slot = head % capacity_;
        if (!retireMap_.isRetired(slot)) {
            if (!slotUncorrectable(slot))
                break;
            // Program-verify failure: the head slot's cells cannot
            // hold data. Retire it durably, then burn past it.
            now = retireSlot(slot, now);
        }
        // Burn: consume the logical index AND its sequence number so
        // scans keep seeing seq == logical index + 1 in lockstep.
        ++head;
        ++nextSeq;
        ++slotsBurnedC_;
    }
    return now;
}

bool
LogRegion::canAppend(std::uint64_t n) const
{
    if (!retireMap_.attached())
        return size() + n <= capacity_;
    // Appends are single-threaded and nothing truncates mid-commit, so
    // the slots a burst of n appends would use are exactly the first n
    // usable free slots from the head — count them without mutating.
    std::uint64_t idx = head;
    std::uint64_t good = 0;
    while (idx - tail < capacity_ && good < n) {
        const std::uint64_t slot = idx % capacity_;
        if (!retireMap_.isRetired(slot) && !slotUncorrectable(slot))
            ++good;
        ++idx;
    }
    return good >= n;
}

Tick
LogRegion::scrubSlots(Tick now, std::uint32_t count,
                      std::uint64_t *corrected)
{
    if (!retireMap_.attached() || capacity_ == 0)
        return now;
    Tick last = now;
    const std::uint64_t live = size();
    const std::uint64_t tail_slot = tail % capacity_;
    std::uint8_t buf[LogEntry::kEntryBytes];
    for (std::uint32_t i = 0; i < count && i < capacity_; ++i) {
        const std::uint64_t slot = scrubCursor_;
        scrubCursor_ = (scrubCursor_ + 1) % capacity_;
        if (retireMap_.isRetired(slot))
            continue;
        ReadFaultInfo rf;
        last = std::max(
            last, nvm.read(now,
                           base + kSuperBytes +
                               slot * LogEntry::kEntryBytes,
                           buf, LogEntry::kEntryBytes, &rf));
        if (corrected)
            *corrected += rf.correctedWords;
        if (!rf.uncorrectable())
            continue;
        // Only retire slots holding no live entry; a live slot is
        // handled by the scan-side skip once it is truncated past.
        const bool is_live =
            live > 0 &&
            (slot + capacity_ - tail_slot) % capacity_ < live;
        if (!is_live)
            last = std::max(last, retireSlot(slot, now));
    }
    return last;
}

std::vector<std::pair<Addr, Addr>>
LogRegion::freeSlotRanges() const
{
    std::vector<std::pair<Addr, Addr>> out;
    const std::uint64_t live = size();
    const std::uint64_t tail_slot = tail % capacity_;
    for (std::uint64_t slot = 0; slot < capacity_; ++slot) {
        const bool is_live =
            live > 0 &&
            (slot + capacity_ - tail_slot) % capacity_ < live;
        if (is_live ||
            (retireMap_.attached() && retireMap_.isRetired(slot)))
            continue;
        const Addr b =
            base + kSuperBytes + slot * LogEntry::kEntryBytes;
        if (!out.empty() && out.back().second == b)
            out.back().second = b + LogEntry::kEntryBytes;
        else
            out.emplace_back(b, b + LogEntry::kEntryBytes);
    }
    return out;
}

void
LogRegion::loadRetirement()
{
    if (!retireMap_.attached())
        return;
    retireMap_.loadDurable();
}

Addr
LogRegion::entryAddr(std::uint64_t logical_idx) const
{
    return base + kSuperBytes +
           (logical_idx % capacity_) * LogEntry::kEntryBytes;
}

void
LogRegion::writeSuperblock(Tick now)
{
    Superblock sb{};
    sb.magic = kSuperMagic;
    sb.tailIdx = tail;
    nvm.write(now, base, &sb, sizeof(sb));
    ++superblockWritesC_;
}

Tick
LogRegion::append(Tick now, LogEntry e)
{
    // Program-verify the head slot first: burn past bad slots so the
    // entry never lands on uncorrectable cells. Burning can exhaust
    // the ring; that is a structured capacity error, not a crash.
    now = skipBadHead(now);
    if (full() && retireMap_.attached()) {
        throw TxRejected{RejectCause::LogExhausted,
                         "log ring exhausted after bad-slot burns; "
                         "truncate or grow auxBytes"};
    }
    HOOP_ASSERT(!full(), "append to a full log (caller must truncate)");
    e.seq = nextSeq++;
    std::uint8_t buf[LogEntry::kEntryBytes];
    e.encode(buf);
    const Tick done =
        nvm.write(now, entryAddr(head), buf, LogEntry::kEntryBytes);
    ++head;
    ++appendsC_;
    return done;
}

Tick
LogRegion::truncate(Tick now, std::uint64_t n)
{
    HOOP_ASSERT(n <= size(), "truncating more entries than live");
    if (!retireMap_.attached()) {
        tail += n;
    } else {
        // Callers count *entries*; burned logical indices interleave
        // with them and carry none, so skip-count: a burned index
        // advances the tail without consuming the caller's budget.
        // Trailing burns are swallowed too — they pin no data.
        std::uint64_t left = n;
        while (left > 0 && tail < head) {
            if (!retireMap_.isRetired(tail % capacity_))
                --left;
            ++tail;
        }
        while (tail < head && retireMap_.isRetired(tail % capacity_))
            ++tail;
    }
    writeSuperblock(now);
    truncatedC_ += n;
    return now;
}

void
LogRegion::clear(Tick now)
{
    tail = head;
    writeSuperblock(now);
}

void
LogRegion::scan(const std::function<void(const LogEntry &)> &fn) const
{
    // Durable-state-only walk: read the superblock, then follow
    // strictly ascending sequence numbers from the persisted tail.
    Superblock sb{};
    nvm.peek(base, &sb, sizeof(sb));
    if (sb.magic != kSuperMagic)
        return;
    for (std::uint64_t i = 0; i < capacity_; ++i) {
        // Retired slots were burned at append time (no entry, but a
        // consumed sequence number): step over them BEFORE decoding —
        // their garbage bytes would otherwise read as a cut and lose
        // every acknowledged entry behind them.
        if (retireMap_.attached() &&
            retireMap_.isRetired((sb.tailIdx + i) % capacity_))
            continue;
        std::uint8_t buf[LogEntry::kEntryBytes];
        nvm.peek(entryAddr(sb.tailIdx + i), buf, LogEntry::kEntryBytes);
        const LogEntry e = LogEntry::decode(buf);
        // Live entries verify their CRC and carry exactly the expected
        // ascending sequence (seq == logical index + 1 by the lockstep
        // head/nextSeq discipline, burns included); anything else — an
        // unwritten slot, stale previous-lap entry, or a torn
        // in-flight write — ends the live suffix.
        if (e.type == LogEntryType::Invalid || !e.crcOk ||
            e.seq != sb.tailIdx + 1 + i)
            break;
        fn(e);
    }
}

void
LogRegion::forEachLive(
    const std::function<void(const LogEntry &)> &fn) const
{
    for (std::uint64_t idx = tail; idx < head; ++idx) {
        if (retireMap_.attached() &&
            retireMap_.isRetired(idx % capacity_))
            continue; // burned logical index: holds no entry
        std::uint8_t buf[LogEntry::kEntryBytes];
        nvm.peek(entryAddr(idx), buf, LogEntry::kEntryBytes);
        fn(LogEntry::decode(buf));
    }
}

} // namespace hoopnvm
