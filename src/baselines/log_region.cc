#include "baselines/log_region.hh"

#include <cstring>

#include "common/crc32.hh"
#include "common/logging.hh"

namespace hoopnvm
{

namespace
{

/**
 * Durable ring state, kept at the base of the log area.
 *
 * The only mutable field is tailIdx — a single 8-byte word, so a torn
 * superblock write merely reverts it to the previous value (the NVM
 * word is the tear unit). The matching tail sequence is derived as
 * tailIdx + 1 (head and nextSeq move in lockstep from 0 and 1), never
 * stored: persisting it separately would let the two words tear
 * independently into an inconsistent pair that disowns the whole log.
 */
struct Superblock
{
    std::uint32_t magic;
    std::uint32_t pad;
    std::uint64_t tailIdx;
};

constexpr std::uint32_t kSuperMagic = 0x4c4f4752; // "LOGR"
constexpr std::uint64_t kSuperBytes = 64;

} // namespace

void
LogEntry::encode(std::uint8_t *out) const
{
    std::memset(out, 0, kEntryBytes);
    std::memcpy(out + 0, words.data(), 64);
    std::memcpy(out + 64, &line, 8);
    std::memcpy(out + 72, &txId, 8);
    std::memcpy(out + 80, &commitId, 8);
    std::memcpy(out + 88, &seq, 8);
    out[96] = mask;
    out[97] = count;
    out[98] = static_cast<std::uint8_t>(type);
    // Entry writes span 16 NVM words and are not atomic: a crash can
    // revert any subset of them while the type byte and sequence word
    // survive. The CRC (over every meaningful byte above) lets the
    // post-crash scan reject such a torn entry instead of replaying
    // its garbage payload as committed data.
    const std::uint32_t crc = crc32c(out, 100);
    std::memcpy(out + 100, &crc, 4);
}

LogEntry
LogEntry::decode(const std::uint8_t *in)
{
    LogEntry e;
    e.type = static_cast<LogEntryType>(in[98]);
    if (e.type == LogEntryType::Invalid)
        return e;
    std::uint32_t stored;
    std::memcpy(&stored, in + 100, 4);
    e.crcOk = stored == crc32c(in, 100);
    std::memcpy(e.words.data(), in + 0, 64);
    std::memcpy(&e.line, in + 64, 8);
    std::memcpy(&e.txId, in + 72, 8);
    std::memcpy(&e.commitId, in + 80, 8);
    std::memcpy(&e.seq, in + 88, 8);
    e.mask = in[96];
    e.count = in[97];
    return e;
}

LogRegion::LogRegion(NvmDevice &nvm_, Addr base_, std::uint64_t bytes,
                     const std::string &name)
    : nvm(nvm_), base(base_),
      capacity_((bytes - kSuperBytes) / LogEntry::kEntryBytes),
      stats_(name),
      superblockWritesC_(stats_.counter("superblock_writes")),
      appendsC_(stats_.counter("appends")),
      truncatedC_(stats_.counter("truncated"))
{
    HOOP_ASSERT(capacity_ >= 16, "log region too small");
    writeSuperblock(0);
}

Addr
LogRegion::entryAddr(std::uint64_t logical_idx) const
{
    return base + kSuperBytes +
           (logical_idx % capacity_) * LogEntry::kEntryBytes;
}

void
LogRegion::writeSuperblock(Tick now)
{
    Superblock sb{};
    sb.magic = kSuperMagic;
    sb.tailIdx = tail;
    nvm.write(now, base, &sb, sizeof(sb));
    ++superblockWritesC_;
}

Tick
LogRegion::append(Tick now, LogEntry e)
{
    HOOP_ASSERT(!full(), "append to a full log (caller must truncate)");
    e.seq = nextSeq++;
    std::uint8_t buf[LogEntry::kEntryBytes];
    e.encode(buf);
    const Tick done =
        nvm.write(now, entryAddr(head), buf, LogEntry::kEntryBytes);
    ++head;
    ++appendsC_;
    return done;
}

Tick
LogRegion::truncate(Tick now, std::uint64_t n)
{
    HOOP_ASSERT(n <= size(), "truncating more entries than live");
    tail += n;
    writeSuperblock(now);
    truncatedC_ += n;
    return now;
}

void
LogRegion::clear(Tick now)
{
    tail = head;
    writeSuperblock(now);
}

void
LogRegion::scan(const std::function<void(const LogEntry &)> &fn) const
{
    // Durable-state-only walk: read the superblock, then follow
    // strictly ascending sequence numbers from the persisted tail.
    Superblock sb{};
    nvm.peek(base, &sb, sizeof(sb));
    if (sb.magic != kSuperMagic)
        return;
    for (std::uint64_t i = 0; i < capacity_; ++i) {
        std::uint8_t buf[LogEntry::kEntryBytes];
        nvm.peek(entryAddr(sb.tailIdx + i), buf, LogEntry::kEntryBytes);
        const LogEntry e = LogEntry::decode(buf);
        // Live entries verify their CRC and carry exactly the expected
        // ascending sequence (seq == logical index + 1 by the lockstep
        // head/nextSeq discipline); anything else — unwritten slot,
        // stale previous-lap entry, or a torn in-flight write — ends
        // the live suffix.
        if (e.type == LogEntryType::Invalid || !e.crcOk ||
            e.seq != sb.tailIdx + 1 + i)
            break;
        fn(e);
    }
}

void
LogRegion::forEachLive(
    const std::function<void(const LogEntry &)> &fn) const
{
    for (std::uint64_t idx = tail; idx < head; ++idx) {
        std::uint8_t buf[LogEntry::kEntryBytes];
        nvm.peek(entryAddr(idx), buf, LogEntry::kEntryBytes);
        fn(LogEntry::decode(buf));
    }
}

} // namespace hoopnvm
