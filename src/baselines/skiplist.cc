#include "baselines/skiplist.hh"

#include <cstdlib>
#include <cstring>
#include <new>

#include "common/logging.hh"

namespace hoopnvm
{

SkipList::Node *
SkipList::makeNode(std::uint64_t key, std::uint64_t value,
                   unsigned levels)
{
    const std::size_t bytes =
        sizeof(Node) + (levels - 1) * sizeof(Node *);
    void *mem = ::operator new(bytes);
    Node *n = static_cast<Node *>(mem);
    n->key = key;
    n->value = value;
    n->levels = levels;
    std::memset(n->next, 0, levels * sizeof(Node *));
    return n;
}

SkipList::SkipList(std::uint64_t seed)
    : rng(seed)
{
    head = makeNode(0, 0, kMaxLevel);
}

SkipList::~SkipList()
{
    clear();
    ::operator delete(head);
}

void
SkipList::clear()
{
    Node *n = head->next[0];
    while (n) {
        Node *next = n->next[0];
        ::operator delete(n);
        n = next;
    }
    std::memset(head->next, 0, kMaxLevel * sizeof(Node *));
    level = 1;
    size_ = 0;
}

unsigned
SkipList::randomLevel()
{
    unsigned lvl = 1;
    // p = 1/2 promotion, capped at kMaxLevel.
    while (lvl < kMaxLevel && (rng.next() & 1))
        ++lvl;
    return lvl;
}

void
SkipList::insert(std::uint64_t key, std::uint64_t value)
{
    Node *update[kMaxLevel];
    Node *x = head;
    for (int i = static_cast<int>(level) - 1; i >= 0; --i) {
        while (x->next[i] && x->next[i]->key < key)
            x = x->next[i];
        update[i] = x;
    }
    Node *next = x->next[0];
    if (next && next->key == key) {
        next->value = value;
        return;
    }
    const unsigned lvl = randomLevel();
    if (lvl > level) {
        for (unsigned i = level; i < lvl; ++i)
            update[i] = head;
        level = lvl;
    }
    Node *n = makeNode(key, value, lvl);
    for (unsigned i = 0; i < lvl; ++i) {
        n->next[i] = update[i]->next[i];
        update[i]->next[i] = n;
    }
    ++size_;
}

std::optional<std::uint64_t>
SkipList::find(std::uint64_t key) const
{
    const Node *x = head;
    for (int i = static_cast<int>(level) - 1; i >= 0; --i) {
        while (x->next[i] && x->next[i]->key < key)
            x = x->next[i];
    }
    const Node *n = x->next[0];
    if (n && n->key == key)
        return n->value;
    return std::nullopt;
}

bool
SkipList::erase(std::uint64_t key)
{
    Node *update[kMaxLevel];
    Node *x = head;
    for (int i = static_cast<int>(level) - 1; i >= 0; --i) {
        while (x->next[i] && x->next[i]->key < key)
            x = x->next[i];
        update[i] = x;
    }
    Node *n = x->next[0];
    if (!n || n->key != key)
        return false;
    for (unsigned i = 0; i < n->levels; ++i) {
        if (update[i]->next[i] == n)
            update[i]->next[i] = n->next[i];
    }
    ::operator delete(n);
    while (level > 1 && !head->next[level - 1])
        --level;
    --size_;
    return true;
}

} // namespace hoopnvm
