#include "baselines/osp_controller.hh"

#include <algorithm>
#include <cstring>

#include "analysis/ordering_tracker.hh"
#include "common/errors.hh"
#include "common/flat_map.hh"
#include "common/logging.hh"

namespace hoopnvm
{

namespace
{

/**
 * Auxiliary-region layout for OSP:
 *   [auxBase, +homeBytes)            shadow copies
 *   [+homeBytes, +homeBytes/64)      selector table (1 byte per line)
 *   [rest]                           flip-record log
 */
Addr
ospLogBase(const SystemConfig &cfg)
{
    return cfg.auxBase() + cfg.homeBytes + cfg.homeBytes / kCacheLineSize;
}

std::uint64_t
ospLogBytes(const SystemConfig &cfg)
{
    const std::uint64_t used =
        cfg.homeBytes + cfg.homeBytes / kCacheLineSize;
    HOOP_ASSERT(cfg.auxBytes > used + miB(1),
                "auxBytes too small for OSP shadow + selector + log");
    return cfg.auxBytes - used;
}

} // namespace

OspController::OspController(NvmDevice &nvm, const SystemConfig &cfg_)
    : PersistenceController("osp", nvm, cfg_),
      log_(nvm, ospLogBase(cfg_), ospLogBytes(cfg_), "osp_log", &cfg_),
      txWrites(cfg_.numCores),
      selectorWritesC_(stats_.counter("selector_writes")),
      shadowWritesC_(stats_.counter("shadow_writes")),
      txCommittedC_(stats_.counter("tx_committed")),
      flipRecordsC_(stats_.counter("flip_records")),
      tlbShootdownsC_(stats_.counter("tlb_shootdowns")),
      consolidationCopiesC_(stats_.counter("consolidation_copies")),
      inactiveWritebacksC_(stats_.counter("inactive_writebacks")),
      homeWritebacksC_(stats_.counter("home_writebacks")),
      logBackpressureStallsC_(
          stats_.counter("log_backpressure_stalls")),
      txRejectedC_(stats_.counter("tx_rejected")),
      scrubCorrectedC_(stats_.counter("scrub_corrected_words")),
      scrubPassesC_(stats_.counter("scrub_passes")),
      scrubPauseH_(stats_.histogram("scrub_pause_ticks")),
      recoveriesC_(stats_.counter("recoveries"))
{
}

void
OspController::declareOrderingRules(OrderingTracker &t)
{
    t.rule("osp-flip-record")
        .requiresDurable("inactive-copy data writes and the flip "
                         "records of an acknowledged transaction");
    if (cfg.ft.enabled) {
        t.rule("log-retire-bitmap")
            .requiresSettled("the durable slot-retirement bitmap before "
                             "the retirement is acted upon");
    }
}

Addr
OspController::shadowOf(Addr line) const
{
    return cfg.auxBase() + line;
}

Addr
OspController::selectorAddr(Addr line) const
{
    return cfg.auxBase() + cfg.homeBytes + line / kCacheLineSize;
}

bool
OspController::shadowIsCurrent(Addr line) const
{
    return shadowCurrent.contains(line);
}

Addr
OspController::currentCopy(Addr line) const
{
    return shadowIsCurrent(line) ? shadowOf(line) : line;
}

TxId
OspController::txBegin(CoreId core, Tick now)
{
    if (cfg.ft.enabled &&
        log_.degradedFraction() >= cfg.ft.rejectCapacityFraction) {
        txRejectedC_ += 1;
        throw TxRejected{RejectCause::CapacityDegraded,
                         "osp flip log degraded past the admission "
                         "threshold by bad-slot retirement"};
    }
    const TxId tx = PersistenceController::txBegin(core, now);
    txWrites[core].clear();
    return tx;
}

Tick
OspController::storeWord(CoreId core, Addr addr,
                         const std::uint8_t *data, Tick now)
{
    std::uint64_t value;
    std::memcpy(&value, data, kWordSize);
    const Addr line = lineAddr(addr);
    txWrites[core][line].setWord(
        static_cast<unsigned>((addr - line) / kWordSize), value);
    return cfg.cycle();
    (void)now;
}

Tick
OspController::applyFlips(Tick now, const std::vector<Addr> &lines)
{
    // Batch selector-byte updates per selector-table cache line.
    std::unordered_set<Addr> selector_lines;
    Tick last = now;
    for (Addr line : lines) {
        const std::uint8_t v = shadowCurrent.contains(line) ? 1 : 0;
        nvm_.poke(selectorAddr(line), &v, 1);
        selector_lines.insert(lineAddr(selectorAddr(line)));
    }
    // lint: unordered-iter-ok (commutative max-fold and count; the element value is unused)
    for (Addr sl : selector_lines) {
        last = std::max(last, nvm_.writeAccounting(now, kCacheLineSize));
        ++selectorWritesC_;
        (void)sl;
    }
    return last;
}

Tick
OspController::txEnd(CoreId core, Tick now)
{
    HOOP_ASSERT(coreTx[core].active, "txEnd without txBegin");
    const TxId tx = coreTx[core].txId;
    const std::uint64_t cid = allocCommitId();
    auto &writes = txWrites[core];

    // 1. Eagerly persist each modified line into its inactive copy.
    Tick data_done = now;
    std::vector<Addr> flipped;
    flipped.reserve(writes.size());
    // Address order: shadow writes and the flip-record line order
    // derived from `flipped` are observable durable state.
    for (const Addr line : sortedKeys(writes)) {
        std::uint8_t buf[kCacheLineSize];
        nvm_.peek(currentCopy(line), buf, kCacheLineSize);
        writes.at(line).overlay(buf);
        const Addr target =
            shadowIsCurrent(line) ? line : shadowOf(line);
        data_done = std::max(
            data_done, nvm_.write(now, target, buf, kCacheLineSize));
        orderDep("osp-flip-record", tx);
        flipped.push_back(line);
        ++shadowWritesC_;
    }

    if (writes.empty()) {
        coreTx[core] = CoreTxState{};
        ++txCommittedC_;
        return now;
    }

    // 2. Durable flip records make the multi-line commit atomic. Each
    // record stores up to 8 (line | new-selector) entries. The flip
    // log only truncates between transactions, so a full log here
    // cannot drain — reserve the whole burst upfront: recovery applies
    // every durable flip record independently, so rejecting after a
    // partial append would replay a half-flipped commit.
    const std::uint64_t recs = (flipped.size() + 7) / 8;
    if (!log_.canAppend(recs)) {
        ++logBackpressureStallsC_;
        // Degrade, don't die: no flip record was appended, so the old
        // copies stay live and the commit vanishes atomically.
        txRejectedC_ += 1;
        throw TxRejected{RejectCause::LogExhausted,
                         "osp flip log wedged by open transactions; "
                         "increase auxBytes"};
    }
    Tick rec_done = data_done;
    for (std::size_t i = 0; i < flipped.size(); i += 8) {
        LogEntry e;
        e.type = LogEntryType::OspRecord;
        e.txId = tx;
        e.commitId = cid;
        e.count = static_cast<std::uint8_t>(
            std::min<std::size_t>(8, flipped.size() - i));
        for (unsigned j = 0; j < e.count; ++j) {
            const Addr line = flipped[i + j];
            const std::uint64_t new_sel = shadowIsCurrent(line) ? 0 : 1;
            e.words[j] = line | new_sel;
        }
        rec_done = std::max(rec_done, log_.append(data_done, e));
        orderDep("osp-flip-record", tx);
        ++flipRecordsC_;
    }

    // The commit is durable once every inactive-copy write and flip
    // record is on NVM — rec_done bounds them all (records are issued
    // after the data on the same channel). debugEarlyCommitAck claims
    // durability at issue time instead (checker validation only).
    orderTrigger("osp-flip-record", tx,
                 cfg.debugEarlyCommitAck ? now : rec_done);

    // 3. Apply the flips (selector table) and pay the TLB shootdown.
    for (Addr line : flipped) {
        if (!shadowCurrent.erase(line))
            shadowCurrent.insert(line);
    }
    Tick done = applyFlips(rec_done, flipped);
    done += cfg.tlbShootdownCost;
    ++tlbShootdownsC_;

    // Page consolidation (§IV-B): SSP periodically re-packs split
    // line pairs to recover spatial efficiency, copying data between
    // the two physical copies in the background.
    if (++commitsSinceConsolidation >= 8) {
        commitsSinceConsolidation = 0;
        std::uint64_t copied = 0;
        for ([[maybe_unused]] Addr line : flipped) {
            // Crash point: between background consolidation copies
            // (OSP's migration analog — both physical copies stay
            // valid throughout).
            crashStep(CrashPointKind::GcStep);
            nvm_.readAccounting(done, kCacheLineSize);
            nvm_.writeAccounting(done, kCacheLineSize);
            if (++copied >= 8)
                break;
        }
        consolidationCopiesC_ += copied;
    }

    writes.clear();
    coreTx[core] = CoreTxState{};
    ++txCommittedC_;
    // The flip records appended above become dead the moment no region
    // is open — exactly the condition maintenance() truncates on, and
    // closing a region is the only way it can newly become true.
    bool any_open = false;
    for (const auto &s : coreTx)
        any_open |= s.active;
    if (!any_open && log_.size() > 0)
        maintDirty_ = true;
    return done;
}

FillResult
OspController::fillLine(CoreId, Addr line, std::uint8_t *buf, Tick now)
{
    FillResult fr;
    fr.completion =
        nvm_.read(now, currentCopy(line), buf, kCacheLineSize);

    // Overlay any open transaction's buffered words (covers the case
    // where the line was evicted mid-transaction).
    std::uint8_t mask = 0;
    TxId owner = kInvalidTxId;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        auto it = txWrites[c].find(line);
        if (it != txWrites[c].end()) {
            it->second.overlay(buf);
            mask |= it->second.mask;
            owner = coreTx[c].txId;
        }
    }
    if (mask) {
        fr.dirty = true;
        fr.persistent = true;
        fr.txId = owner;
        fr.wordMask = mask;
    }
    return fr;
}

void
OspController::evictLine(CoreId core, Addr line, const std::uint8_t *data,
                         bool persistent, TxId, std::uint8_t, Tick now)
{
    if (persistent) {
        bool open = false;
        for (unsigned c = 0; c < cfg.numCores && !open; ++c)
            open = txWrites[c].contains(line);
        if (open) {
            // Uncommitted data parks in the inactive copy; the old copy
            // stays intact for crash safety.
            const Addr target =
                shadowIsCurrent(line) ? line : shadowOf(line);
            nvm_.write(now, target, data, kCacheLineSize);
            ++inactiveWritebacksC_;
        }
        // Committed content matches the current copy already (it was
        // eagerly flushed at commit); dropping it costs nothing.
        return;
    }
    nvm_.write(now, currentCopy(line), data, kCacheLineSize);
    ++homeWritebacksC_;
    (void)core;
}

void
OspController::maintenance(Tick now)
{
    // Flip records are applied synchronously at commit; between
    // transactions the whole record log is dead.
    maintDirty_ = false;
    bool any_open = false;
    for (const auto &t : coreTx)
        any_open |= t.active;
    if (!any_open && log_.size() > 0) {
        maintDirty_ = true; // re-armed if the crash point fires
        // Crash point: before the flip-log tail moves. Every live
        // record was already applied to the durable selector table and
        // re-applying is idempotent.
        crashStep(CrashPointKind::GcStep);
        log_.truncate(now, log_.size());
        maintDirty_ = false; // the whole log was just truncated
    }
}

Tick
OspController::scrub(Tick now)
{
    std::uint64_t corrected = 0;
    const Tick done =
        log_.scrubSlots(now, cfg.ft.scrubChunks, &corrected);
    scrubCorrectedC_ += corrected;
    scrubPassesC_ += 1;
    scrubPauseH_.record(done - now);
    return done;
}

ControllerGauges
OspController::sampleGauges() const
{
    ControllerGauges g;
    g.mappingEntries = log_.size();
    g.structBytes = log_.size() * LogEntry::kEntryBytes;
    g.backpressureStalls = stats_.value("log_backpressure_stalls");
    if (log_.faultToleranceEnabled()) {
        g.retiredUnits = log_.retiredSlots();
        g.correctedWords = nvm_.faults().wordsEccCorrected();
        g.degradedFraction = log_.degradedFraction();
    }
    g.txRejected = stats_.value("tx_rejected");
    return g;
}

void
OspController::crash()
{
    // lint: unordered-iter-ok (outer std::vector of per-core maps; clearing is order-insensitive)
    for (auto &w : txWrites)
        w.clear();
    for (auto &t : coreTx)
        t = CoreTxState{};
    // shadowCurrent mirrors the durable selector table; recovery will
    // rebuild it from NVM.
    shadowCurrent.clear();
}

Tick
OspController::recover(unsigned)
{
    // Adopt the durable slot-retirement bitmap before the scan: retired
    // slots are burned, not read — their garbage would cut the suffix.
    log_.loadRetirement();
    // 1. Rebuild the selector view from the durable table.
    shadowCurrent.clear();
    const std::uint64_t n_lines = cfg.homeBytes / kCacheLineSize;
    const Addr table = cfg.auxBase() + cfg.homeBytes;
    std::vector<std::uint8_t> chunk(4096);
    for (std::uint64_t off = 0; off < n_lines;
         off += chunk.size()) {
        // Crash point: during the read-only selector-table rebuild.
        crashStep(CrashPointKind::RecoveryStep);
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(chunk.size(), n_lines - off));
        nvm_.peek(table + off, chunk.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            if (chunk[i])
                shadowCurrent.insert((off + i) * kCacheLineSize);
        }
    }

    // 2. Re-apply flips of committed records (idempotent: records store
    // absolute selector values, and data was durable before the record).
    std::uint64_t entries = 0;
    log_.scan([&](const LogEntry &e) {
        ++entries;
        if (e.type != LogEntryType::OspRecord)
            return;
        // Crash point: between flip-record re-applications. Records
        // hold absolute selector values and survive until the clear
        // below, so a second recovery converges to the same table.
        crashStep(CrashPointKind::RecoveryStep);
        for (unsigned j = 0; j < e.count; ++j) {
            const Addr line = e.words[j] & ~std::uint64_t{1};
            const bool to_shadow = (e.words[j] & 1) != 0;
            const std::uint8_t v = to_shadow ? 1 : 0;
            nvm_.poke(selectorAddr(line), &v, 1);
            if (to_shadow)
                shadowCurrent.insert(line);
            else
                shadowCurrent.erase(line);
        }
    });
    // Crash point: flips re-applied, log not yet cleared.
    crashStep(CrashPointKind::RecoveryStep);
    log_.clear(0);
    recoveriesC_ += 1;

    const Tick channel = nvm_.timing().transferTicks(
        n_lines + entries * LogEntry::kEntryBytes);
    return channel + entries * nsToTicks(40);
}

void
OspController::debugReadLine(Addr line, std::uint8_t *buf) const
{
    nvm_.peek(currentCopy(line), buf, kCacheLineSize);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        auto it = txWrites[c].find(line);
        if (it != txWrites[c].end())
            it->second.overlay(buf);
    }
}

} // namespace hoopnvm
