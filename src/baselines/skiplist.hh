/**
 * @file
 * Deterministic skip list mapping 64-bit keys to 64-bit values.
 *
 * LSNVMM [17] keeps its home-address -> log-address mapping tree in
 * DRAM; the paper's authors implement it with a skip list, so we do
 * too. Level promotion uses the library's deterministic xorshift RNG
 * so simulations are reproducible. Expected O(log n) search, insert
 * and erase; height() is exposed because the LSM controller charges
 * read latency proportional to the walk depth.
 */

#ifndef HOOPNVM_BASELINES_SKIPLIST_HH
#define HOOPNVM_BASELINES_SKIPLIST_HH

#include <array>
#include <cstdint>
#include <optional>

#include "common/rng.hh"

namespace hoopnvm
{

/** Skip list from uint64 keys to uint64 values. */
class SkipList
{
  public:
    static constexpr unsigned kMaxLevel = 24;

    explicit SkipList(std::uint64_t seed = 0x5eed);
    ~SkipList();

    SkipList(const SkipList &) = delete;
    SkipList &operator=(const SkipList &) = delete;

    /** Insert or update @p key. */
    void insert(std::uint64_t key, std::uint64_t value);

    /** Value for @p key, if present. */
    std::optional<std::uint64_t> find(std::uint64_t key) const;

    /** Remove @p key. @return true if it was present. */
    bool erase(std::uint64_t key);

    std::size_t size() const { return size_; }

    /** Current tower height (index walk depth proxy). */
    unsigned height() const { return level; }

    /** Remove every entry. */
    void clear();

    /** Visit all (key, value) pairs in ascending key order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Node *n = head->next[0]; n; n = n->next[0])
            fn(n->key, n->value);
    }

  private:
    struct Node
    {
        std::uint64_t key;
        std::uint64_t value;
        unsigned levels;
        Node *next[1]; // over-allocated to `levels`
    };

    static Node *makeNode(std::uint64_t key, std::uint64_t value,
                          unsigned levels);
    unsigned randomLevel();

    Node *head;
    unsigned level = 1;
    std::size_t size_ = 0;
    Rng rng;
};

} // namespace hoopnvm

#endif // HOOPNVM_BASELINES_SKIPLIST_HH
