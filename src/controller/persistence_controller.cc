#include "controller/persistence_controller.hh"

#include "common/logging.hh"

namespace hoopnvm
{

PersistenceController::PersistenceController(const std::string &name,
                                             NvmDevice &nvm,
                                             const SystemConfig &cfg_)
    : nvm_(nvm), cfg(cfg_), stats_(name),
      txBegunC_(stats_.counter("tx_begun")), coreTx(cfg_.numCores)
{
}

TxId
PersistenceController::txBegin(CoreId core, Tick now)
{
    return txBeginAs(core, now, allocTxId());
}

TxId
PersistenceController::txBeginAs(CoreId core, Tick now, TxId forced)
{
    (void)now;
    HOOP_ASSERT(core < coreTx.size(), "txBegin on unknown core %u", core);
    HOOP_ASSERT(!coreTx[core].active,
                "nested transactions are not supported (core %u)", core);
    coreTx[core].active = true;
    coreTx[core].txId = forced;
    ++txBegunC_;
    return coreTx[core].txId;
}

void
PersistenceController::debugReadLine(Addr line, std::uint8_t *buf) const
{
    // Default: the home region is the truth.
    nvm_.peek(line, buf, kCacheLineSize);
}

} // namespace hoopnvm
