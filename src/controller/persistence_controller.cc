#include "controller/persistence_controller.hh"

#include "analysis/ordering_tracker.hh"
#include "common/logging.hh"

namespace hoopnvm
{

PersistenceController::PersistenceController(const std::string &name,
                                             NvmDevice &nvm,
                                             const SystemConfig &cfg_)
    : nvm_(nvm), cfg(cfg_), stats_(name),
      txBegunC_(stats_.counter("tx_begun")), coreTx(cfg_.numCores)
{
}

TxId
PersistenceController::txBegin(CoreId core, Tick now)
{
    return txBeginAs(core, now, allocTxId());
}

TxId
PersistenceController::txBeginAs(CoreId core, Tick now, TxId forced)
{
    (void)now;
    HOOP_ASSERT(core < coreTx.size(), "txBegin on unknown core %u", core);
    HOOP_ASSERT(!coreTx[core].active,
                "nested transactions are not supported (core %u)", core);
    coreTx[core].active = true;
    coreTx[core].txId = forced;
    ++txBegunC_;
    return coreTx[core].txId;
}

void
PersistenceController::orderDep(const char *rule, std::uint64_t key)
{
    if (ordering_)
        ordering_->addDep(rule, key);
}

void
PersistenceController::orderTrigger(const char *rule, std::uint64_t key,
                                    Tick ack, std::size_t minDeps,
                                    bool consume)
{
    if (ordering_)
        ordering_->trigger(rule, key, ack, minDeps, consume);
}

void
PersistenceController::orderClear(const char *rule)
{
    if (ordering_)
        ordering_->clearRule(rule);
}

void
PersistenceController::debugReadLine(Addr line, std::uint8_t *buf) const
{
    // Default: the home region is the truth.
    nvm_.peek(line, buf, kCacheLineSize);
}

} // namespace hoopnvm
