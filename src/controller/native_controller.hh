/**
 * @file
 * Native system without persistence support — the paper's "Ideal"
 * configuration. Stores and evictions behave like an ordinary DRAM-style
 * memory controller: dirty lines are written back in place, transactions
 * carry no durability guarantee, and a crash simply loses whatever was
 * still cached.
 */

#ifndef HOOPNVM_CONTROLLER_NATIVE_CONTROLLER_HH
#define HOOPNVM_CONTROLLER_NATIVE_CONTROLLER_HH

#include "controller/persistence_controller.hh"

namespace hoopnvm
{

/** Ideal baseline: no crash consistency, minimal overhead. */
class NativeController : public PersistenceController
{
  public:
    NativeController(NvmDevice &nvm, const SystemConfig &cfg);

    Scheme scheme() const override { return Scheme::Native; }

    Tick txEnd(CoreId core, Tick now) override;
    Tick storeWord(CoreId core, Addr addr, const std::uint8_t *data,
                   Tick now) override;
    FillResult fillLine(CoreId core, Addr line, std::uint8_t *buf,
                        Tick now) override;
    void evictLine(CoreId core, Addr line, const std::uint8_t *data,
                   bool persistent, TxId tx, std::uint8_t word_mask,
                   Tick now) override;
    void crash() override;
    Tick recover(unsigned threads) override;

  private:
    // Hot-path counters resolved once against the inherited stats_.
    Counter &txCommittedC_;
    Counter &homeWritebacksC_;
};

} // namespace hoopnvm

#endif // HOOPNVM_CONTROLLER_NATIVE_CONTROLLER_HH
