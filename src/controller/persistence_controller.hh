/**
 * @file
 * Abstract memory-controller persistence mechanism.
 *
 * Every crash-consistency scheme in the paper — HOOP itself and the five
 * reconstructed baselines — is a PersistenceController. The cache
 * hierarchy calls into the controller at the architectural points where
 * the real hardware would:
 *
 *  - storeWord()   on every transactional store (word granularity; the
 *                  cache controller forwards modified words, Fig. 6);
 *  - loadOverhead() before every load (software schemes such as LSM add
 *                  index-lookup latency here);
 *  - fillLine()    on an LLC miss (schemes may redirect to out-of-place
 *                  locations or logs);
 *  - evictLine()   on an LLC dirty writeback (schemes decide whether the
 *                  line goes to the home region or elsewhere);
 *  - txBegin()/txEnd() at failure-atomic region boundaries;
 *  - maintenance() periodically (GC, checkpointing, log truncation).
 *
 * Controllers are *functional*: the bytes they write to the NvmDevice
 * are real, so crash() + recover() can be verified to reproduce exactly
 * the committed-transaction state.
 */

#ifndef HOOPNVM_CONTROLLER_PERSISTENCE_CONTROLLER_HH
#define HOOPNVM_CONTROLLER_PERSISTENCE_CONTROLLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "nvm/nvm_device.hh"
#include "sim/crash_hook.hh"
#include "sim/system_config.hh"
#include "stats/stat_set.hh"

namespace hoopnvm
{

class OrderingTracker;
class TraceBuffer;

/**
 * Scheme-generic occupancy gauges snapshotted by the epoch sampler.
 * Each controller reports the state of whatever persistence structure
 * it maintains — HOOP its mapping table and OOP region, the log-based
 * baselines their log, OSP its shadow directory.
 */
struct ControllerGauges
{
    /** Live entries in the remap structure (mapping table, log index). */
    std::uint64_t mappingEntries = 0;

    /** Bytes held live in the scheme's persistence structure. */
    std::uint64_t structBytes = 0;

    /** Cumulative allocation backpressure stalls (monotonic). */
    std::uint64_t backpressureStalls = 0;

    // ---- Runtime fault tolerance (zero unless cfg.ft.enabled) ----

    /** Blocks/slots durably retired as bad (monotonic). */
    std::uint64_t retiredUnits = 0;

    /** Words the ECC delivered clean (monotonic). */
    std::uint64_t correctedWords = 0;

    /** Fraction of this scheme's capacity lost to retirement, [0,1]. */
    double degradedFraction = 0.0;

    /** Transactions rejected with a structured error (monotonic). */
    std::uint64_t txRejected = 0;

    // ---- Client-side degradation (zero unless a fleet/soak driver
    // ---- feeds ClientActivity via noteClientActivity) ----

    /** Client retry attempts against this controller (monotonic). */
    std::uint64_t clientRetryAttempts = 0;

    /** Simulated ticks clients spent backing off (monotonic). */
    std::uint64_t clientBackoffTicks = 0;

    /** Client requests whose deadline expired (monotonic). */
    std::uint64_t clientDeadlineMisses = 0;

    /** Client requests refused by admission control (monotonic). */
    std::uint64_t clientShedAdmissions = 0;
};

/**
 * Client-observed pressure against one controller, maintained by an
 * external serving layer (the fleet front-end, the soak harness).
 * Controllers have no visibility into retries and shedding — those
 * happen on the client side of the admission boundary — so the driver
 * pushes cumulative totals in and the epoch sampler snapshots them
 * alongside the controller's own gauges, giving one merged degradation
 * timeline per shard.
 */
struct ClientActivity
{
    std::uint64_t retryAttempts = 0;
    std::uint64_t backoffTicks = 0;
    std::uint64_t deadlineMisses = 0;
    std::uint64_t shedAdmissions = 0;
};

/** Result of servicing an LLC miss. */
struct FillResult
{
    /** Tick at which the fill data is available. */
    Tick completion = 0;

    /**
     * True if the filled line must be inserted dirty (it holds state
     * newer than the home region — e.g. HOOP reconstructed it from the
     * OOP region and dropped the mapping entry, §III-C).
     */
    bool dirty = false;

    /** True if the filled line must keep its persistent bit. */
    bool persistent = false;

    /** Transaction to re-associate with the line (if dirty). */
    TxId txId = kInvalidTxId;

    /** Words of the filled line that are newer than the home region. */
    std::uint8_t wordMask = 0;
};

/** Base class for all crash-consistency mechanisms. */
class PersistenceController
{
  public:
    PersistenceController(const std::string &name, NvmDevice &nvm,
                          const SystemConfig &cfg);
    virtual ~PersistenceController() = default;

    PersistenceController(const PersistenceController &) = delete;
    PersistenceController &operator=(const PersistenceController &) =
        delete;

    /** Which of the paper's schemes this controller implements. */
    virtual Scheme scheme() const = 0;

    // ---- Transaction lifecycle ----

    /** Open a failure-atomic region on @p core; returns its TxId. */
    virtual TxId txBegin(CoreId core, Tick now);

    /**
     * Open a failure-atomic region under an externally-assigned id
     * (multi-controller 2PC gives every participant the same global
     * TxId so recovery can correlate them, §III-I).
     */
    virtual TxId txBeginAs(CoreId core, Tick now, TxId forced);

    /**
     * Close the failure-atomic region on @p core, making it durable.
     * @return The tick at which durability is guaranteed (>= now).
     */
    virtual Tick txEnd(CoreId core, Tick now) = 0;

    bool inTx(CoreId core) const { return coreTx[core].active; }
    TxId currentTx(CoreId core) const { return coreTx[core].txId; }

    // ---- Cache hierarchy hooks ----

    /**
     * A transactional store of one word. Called on the critical path.
     * @return Extra critical-path ticks beyond the cache write itself.
     */
    virtual Tick storeWord(CoreId core, Addr addr,
                           const std::uint8_t *data, Tick now) = 0;

    /** Extra critical-path ticks charged before any load. */
    virtual Tick
    loadOverhead(CoreId core, Addr addr, Tick now)
    {
        (void)core;
        (void)addr;
        (void)now;
        return 0;
    }

    /** Service an LLC miss for @p line; fills @p buf (64 bytes). */
    virtual FillResult fillLine(CoreId core, Addr line,
                                std::uint8_t *buf, Tick now) = 0;

    /**
     * Handle an LLC dirty writeback. Off the critical path.
     * @p word_mask marks the words modified since the line last agreed
     * with the home region (0 means unknown / whole line).
     */
    virtual void evictLine(CoreId core, Addr line,
                           const std::uint8_t *data, bool persistent,
                           TxId tx, std::uint8_t word_mask,
                           Tick now) = 0;

    /** Periodic maintenance hook (GC, checkpointing, truncation). */
    virtual void
    maintenance(Tick now)
    {
        (void)now;
    }

    /**
     * Earliest tick at which this scheme's *time-triggered* maintenance
     * could next fire (kNeverTick when it has none). The engine's fast
     * path skips maintenance() polls while now is before this tick and
     * maintenancePressure() is clear — a combination under which the
     * call is provably a no-op, so skipping it is bit-identical to the
     * polled reference engine. The returned tick may only move later
     * between maintenance() calls (the period anchors lastGc/lastCkpt/
     * lastTruncate never move backwards); a conservatively early value
     * merely costs a no-op call.
     */
    virtual Tick
    nextMaintenanceDue() const
    {
        return kNeverTick;
    }

    /**
     * True when a *state-triggered* maintenance condition (allocation
     * pressure, pending dead log) may hold. Derived controllers arm
     * the flag at every site where their condition can newly become
     * true and recompute it exactly on each maintenance() call, so a
     * clear flag proves the next poll would observe no pressure.
     */
    bool maintenancePressure() const { return maintDirty_; }

    /**
     * One background scrub pass (runtime fault tolerance): proactively
     * read a few blocks/slots of this scheme's persistent structure,
     * count ECC corrections, and retire units that degraded past the
     * configured threshold. Driven by the System on the cfg.ft
     * scrubPeriod cadence; never called unless cfg.ft.enabled.
     * @return Completion tick of the pass's modelled traffic (>= now).
     */
    virtual Tick
    scrub(Tick now)
    {
        return now;
    }

    /** Snapshot this scheme's occupancy gauges (epoch sampler). */
    virtual ControllerGauges
    sampleGauges() const
    {
        return {};
    }

    /**
     * sampleGauges() plus the client-activity overlay: the complete
     * gauge set the epoch sampler and serving layers should read.
     */
    ControllerGauges
    gauges() const
    {
        ControllerGauges g = sampleGauges();
        g.clientRetryAttempts = client_.retryAttempts;
        g.clientBackoffTicks = client_.backoffTicks;
        g.clientDeadlineMisses = client_.deadlineMisses;
        g.clientShedAdmissions = client_.shedAdmissions;
        return g;
    }

    /**
     * Update the client-activity overlay with fresh cumulative totals
     * (see ClientActivity). Values must be monotonic per driver.
     */
    void noteClientActivity(const ClientActivity &a) { client_ = a; }

    /** The most recent client-activity overlay. */
    const ClientActivity &clientActivity() const { return client_; }

    /**
     * Address ranges of this scheme's persistent structure that hold
     * no live data right now — safe targets for wear-out (stuck-at)
     * fault injection. Under the program-verify contract, data only
     * lands on cells that were readable at write time, so scheduling
     * permanent faults over these ranges degrades capacity without
     * ever damaging committed state. Schemes without spare capacity
     * (in-place home region only) return nothing.
     */
    virtual std::vector<std::pair<Addr, Addr>>
    freeMediaRanges() const
    {
        return {};
    }

    /**
     * Finalize all pending background work (outstanding checkpoints,
     * partially filled OOP blocks, log truncation) so end-of-run
     * traffic measurements compare schemes fairly.
     * @return Completion tick.
     */
    virtual Tick
    drain(Tick now)
    {
        return now;
    }

    // ---- Crash and recovery ----

    /**
     * Power failure: volatile controller state disappears. The caches
     * are dropped separately by the System.
     */
    virtual void crash() = 0;

    /**
     * Rebuild a consistent home-region state from durable NVM contents
     * using @p threads recovery workers.
     * @return Modelled recovery time in ticks.
     */
    virtual Tick recover(unsigned threads) = 0;

    /**
     * Functional view of the line the memory system would return for
     * @p line right now if asked (ignoring caches). Used by debug reads
     * and verification, never timed.
     */
    virtual void debugReadLine(Addr line, std::uint8_t *buf) const;

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

    NvmDevice &nvm() { return nvm_; }

    // ---- Persistency-ordering analysis ----

    /**
     * Attach the ordering analyzer (nullptr detaches). Virtual so
     * controllers that delegate rule tagging to sub-components (the
     * OOP region's / log ring's retirement machinery) can forward the
     * tracker; overrides must call the base.
     */
    virtual void setOrderingTracker(OrderingTracker *t) { ordering_ = t; }

    /** The attached analyzer, or nullptr when not armed. */
    OrderingTracker *ordering() const { return ordering_; }

    /**
     * Declare this scheme's durability happens-before rules into @p t.
     * Called once when the analyzer is armed; implementations then tag
     * the runtime via orderDep()/orderTrigger() at the matching sites.
     */
    virtual void
    declareOrderingRules(OrderingTracker &t)
    {
        (void)t;
    }

    // ---- Tracing ----

    /** Attach the system's trace buffer (nullptr detaches). */
    void setTrace(TraceBuffer *t) { trace_ = t; }

    /** The attached trace buffer, or nullptr when tracing is off. */
    TraceBuffer *trace() const { return trace_; }

    // ---- Crash-point injection ----

    /** Attach the system's crash hook (nullptr detaches). */
    void setCrashHook(CrashHook *hook) { crashHook_ = hook; }
    CrashHook *crashHook() const { return crashHook_; }

    /**
     * Fire one crash-point event of class @p k if a hook is attached.
     * Called from the controller's own mechanisms (GC migration,
     * checkpointing, log truncation, recovery replay) and from the
     * cache hierarchy at eviction drains. May throw SimCrash.
     *
     * Recovery implementations must only fire this from serial code:
     * a SimCrash unwinding a recovery worker thread would terminate
     * the process.
     */
    void
    crashStep(CrashPointKind k)
    {
        if (crashHook_)
            crashHook_->step(k);
    }

  protected:
    /** Per-core transaction state. */
    struct CoreTxState
    {
        bool active = false;
        TxId txId = kInvalidTxId;
    };

    /** Allocate the next transaction id. */
    TxId allocTxId() { return nextTxId++; }

    /** Allocate the next commit (durability order) id. */
    std::uint64_t allocCommitId() { return nextCommitId++; }

    /** Restart id allocation after recovery (ids must not repeat). */
    void
    restartIds(TxId next_tx, std::uint64_t next_commit)
    {
        nextTxId = next_tx;
        nextCommitId = next_commit;
    }

    // Null-safe forwarding to the attached ordering analyzer (see
    // OrderingTracker for the semantics). Out of line: the tracker is
    // an incomplete type here.

    /** Tag the write just issued as a dependency of @p rule. */
    void orderDep(const char *rule, std::uint64_t key);

    /** Claim @p rule's guarantee for group @p key; see trigger(). */
    void orderTrigger(const char *rule, std::uint64_t key,
                      Tick ack = 0, std::size_t minDeps = 0,
                      bool consume = true);

    /** Retire every dependency group of @p rule. */
    void orderClear(const char *rule);

    NvmDevice &nvm_;
    const SystemConfig &cfg;
    StatSet stats_;

    // Hot-path counter resolved once; StatSet references stay valid for
    // the StatSet's lifetime. Derived controllers follow the same
    // pattern for their per-event counters.
    Counter &txBegunC_;

    std::vector<CoreTxState> coreTx;

    /** See maintenancePressure(). */
    bool maintDirty_ = false;

  private:
    TxId nextTxId = 1;
    std::uint64_t nextCommitId = 1;
    CrashHook *crashHook_ = nullptr;
    OrderingTracker *ordering_ = nullptr;
    TraceBuffer *trace_ = nullptr;

    /** Client-side pressure overlay (see noteClientActivity()). */
    ClientActivity client_;
};

} // namespace hoopnvm

#endif // HOOPNVM_CONTROLLER_PERSISTENCE_CONTROLLER_HH
