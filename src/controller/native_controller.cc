#include "controller/native_controller.hh"

namespace hoopnvm
{

NativeController::NativeController(NvmDevice &nvm,
                                   const SystemConfig &cfg)
    : PersistenceController("native", nvm, cfg),
      txCommittedC_(stats_.counter("tx_committed")),
      homeWritebacksC_(stats_.counter("home_writebacks"))
{
}

Tick
NativeController::txEnd(CoreId core, Tick now)
{
    coreTx[core].active = false;
    coreTx[core].txId = kInvalidTxId;
    ++txCommittedC_;
    return now;
}

Tick
NativeController::storeWord(CoreId, Addr, const std::uint8_t *, Tick)
{
    // No persistence work: stores complete in the cache.
    return 0;
}

FillResult
NativeController::fillLine(CoreId, Addr line, std::uint8_t *buf,
                           Tick now)
{
    FillResult fr;
    fr.completion = nvm_.read(now, line, buf, kCacheLineSize);
    return fr;
}

void
NativeController::evictLine(CoreId, Addr line, const std::uint8_t *data,
                            bool, TxId, std::uint8_t, Tick now)
{
    // In-place writeback; the core does not wait for it.
    nvm_.write(now, line, data, kCacheLineSize);
    ++homeWritebacksC_;
}

void
NativeController::crash()
{
    // Nothing durable beyond what already reached NVM.
}

Tick
NativeController::recover(unsigned)
{
    // No recovery possible or needed: whatever reached NVM is the state.
    return 0;
}

} // namespace hoopnvm
