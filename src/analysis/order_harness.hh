/**
 * @file
 * One-call harness for the persistency-ordering analyzer: build a
 * small, eviction-heavy system, arm an OrderingTracker, drive a
 * workload through warmup + measured transactions, finalize (so
 * drain/GC/truncation paths fire their rules too) and report.
 *
 * Used by the hoop_ordercheck CLI and by the analyzer tests; the same
 * small machine configuration is shared with the crash explorer so a
 * rule exercised here is exercised under crash schedules too.
 */

#ifndef HOOPNVM_ANALYSIS_ORDER_HARNESS_HH
#define HOOPNVM_ANALYSIS_ORDER_HARNESS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/ordering_tracker.hh"
#include "sim/system_config.hh"

namespace hoopnvm
{

/** One order-check run: scheme x workload plus debug-bug knobs. */
struct OrderCheckOptions
{
    Scheme scheme = Scheme::Hoop;
    std::string workload = "hashmap";
    std::uint64_t seed = 1;
    unsigned numCores = 2;

    /** Transactions per core before the tracker arms. */
    std::uint64_t warmupTx = 10;

    /** Tracked transactions per core (before the final drain). */
    std::uint64_t runTx = 120;

    /** Also enable torn-write fault injection (crash realism). */
    bool tornWrites = false;

    // Seeded-bug knobs (forwarded into SystemConfig; see there).
    bool breakCommitFence = false;
    bool earlyCommitAck = false;
    bool skipSettleFences = false;
    bool skipUndoLog = false;
};

/** Everything the tracker learned from one run. */
struct OrderCheckReport
{
    std::vector<OrderingRuleReport> rules;
    std::vector<std::string> deadRules;
    std::vector<OrderingViolation> violations;
    std::vector<OrderingViolation> warnings;
    OrderingCounters counters;
    std::uint64_t totalViolations = 0;

    /** Transactions driven while the tracker was armed. */
    std::uint64_t transactions = 0;

    /** Workload self-verification after the run (sanity). */
    bool verified = false;
};

/**
 * The small, eviction-heavy machine both the ordering harness and the
 * crash explorer check on: tiny caches force evictions, small OOP
 * blocks give HOOP's GC real candidates, and a short GC period puts
 * maintenance boundaries inside short windows.
 */
SystemConfig smallCheckConfig(unsigned numCores, std::uint64_t seed);

/** Run one tracked workload per @p opt and report. */
OrderCheckReport runOrderCheck(const OrderCheckOptions &opt);

} // namespace hoopnvm

#endif // HOOPNVM_ANALYSIS_ORDER_HARNESS_HH
