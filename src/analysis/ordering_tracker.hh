/**
 * @file
 * Persistency-ordering analyzer (PMTest/Witcher-style, adapted to the
 * simulator's timed write model).
 *
 * Controllers declare their durability happens-before rules once,
 * through a small DSL:
 *
 *   t.rule("hoop-commit-record")
 *       .requiresDurable("chain slices + record at the commit ack");
 *   t.rule("hoop-gc-recycle")
 *       .requiresSettled("the GC watermark write");
 *   t.rule("undo-home-write")
 *       .requiresIssued("the line's undo-log entry");
 *
 * and then tag the runtime with the writes each rule depends on
 * (addDep) and the moments the rule's guarantee is claimed (trigger).
 * The tracker — hooked into NvmDevice/FaultModel as an
 * NvmWriteObserver — mirrors the fault model's in-flight write set and
 * checks every trigger against the declared rule:
 *
 *  - SettledAtTrigger  every dependency must have left the in-flight
 *                      set (a durability fence drained it) when the
 *                      trigger fires. This is the drain-before-truncate
 *                      / drain-before-recycle class of rule.
 *  - DurableByAck      every dependency's completion tick must be at
 *                      or before the acknowledged durability tick the
 *                      trigger reports. This is the commit-record
 *                      class: the ack the application receives must not
 *                      precede the writes it vouches for.
 *  - IssuedBeforeTrigger  the dependency writes must exist at all
 *                      (minDeps) — the write-ahead class: an undo
 *                      entry must be issued before any in-place home
 *                      write of its line.
 *
 * Beyond rule checks the tracker maintains perf/anti-pattern counters:
 * redundant settles (fences that drained nothing), words rewritten
 * while a prior write of the same word is still in flight ("persisted
 * twice"), and overwrites of still-in-flight rule dependencies
 * (reported as warnings — the not-yet-triggered rule still protects
 * them, but they are persistency races worth auditing).
 *
 * Spec coverage: a declared rule that never fires is dead — reported
 * so a protocol change cannot silently orphan its spec.
 */

#ifndef HOOPNVM_ANALYSIS_ORDERING_TRACKER_HH
#define HOOPNVM_ANALYSIS_ORDERING_TRACKER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "nvm/write_observer.hh"

namespace hoopnvm
{

/** The three durability happens-before rule classes. */
enum class OrderingRuleKind : std::uint8_t
{
    SettledAtTrigger,
    DurableByAck,
    IssuedBeforeTrigger,
};

/** Printable name of @p k ("settled-at-trigger", ...). */
const char *orderingRuleKindName(OrderingRuleKind k);

/** One detected ordering violation (or race warning). */
struct OrderingViolation
{
    std::string rule;
    std::string detail;
};

/** Per-rule outcome of a tracked run. */
struct OrderingRuleReport
{
    std::string name;
    OrderingRuleKind kind = OrderingRuleKind::SettledAtTrigger;
    std::string protects;
    std::uint64_t fires = 0;
    std::uint64_t depsChecked = 0;
    std::uint64_t violations = 0;
};

/** Whole-run counters ("persisted twice" / drain-overhead analysis). */
struct OrderingCounters
{
    std::uint64_t timedWrites = 0;
    std::uint64_t settleCalls = 0;

    /** Fences that drained no in-flight write at all. */
    std::uint64_t redundantSettles = 0;

    /** Writes retired from the in-flight set by a fence. */
    std::uint64_t settledWrites = 0;

    /**
     * 8-byte words rewritten while an earlier write covering the word
     * was still in flight — the "persisted twice" anti-pattern: the
     * earlier write's durability was never awaited before it was
     * superseded.
     */
    std::uint64_t inflightOverwrites = 0;

    /**
     * Subset of inflightOverwrites where the earlier write is a live
     * dependency of an open rule group (persistency race against a
     * declared obligation; reported as a warning trace too).
     */
    std::uint64_t depOverwrites = 0;
};

/** Declared-rule checker over one device's timed write stream. */
class OrderingTracker final : public NvmWriteObserver
{
  public:
    OrderingTracker() = default;

    // ---- Declaration DSL ----

    /** Builder returned by rule(); pick exactly one requires*(). */
    class RuleDecl
    {
      public:
        /** DurableByAck: deps durable by the acknowledged tick. */
        void requiresDurable(std::string what);

        /** SettledAtTrigger: deps fenced out of flight at trigger. */
        void requiresSettled(std::string what);

        /** IssuedBeforeTrigger: deps issued before the trigger. */
        void requiresIssued(std::string what);

      private:
        friend class OrderingTracker;
        RuleDecl(OrderingTracker &t, std::size_t idx)
            : t_(t), idx_(idx)
        {
        }
        OrderingTracker &t_;
        std::size_t idx_;
    };

    /** Declare (or re-open) the rule @p name. */
    RuleDecl rule(const std::string &name);

    // ---- Controller runtime ----

    /**
     * Record the most recently observed timed write as a dependency of
     * @p rule under group @p key (e.g. the TxId, the home line, or 0
     * for a singleton group). Must directly follow the write it tags.
     */
    void addDep(const char *rule, std::uint64_t key);

    /**
     * The moment @p rule's guarantee is claimed for group @p key: check
     * every recorded dependency per the rule's kind. @p ack is the
     * acknowledged durability tick (DurableByAck only). @p minDeps
     * flags groups with fewer dependencies than the protocol must have
     * produced. @p consume retires the group (default); pass false when
     * the same group is re-checked by later triggers.
     */
    void trigger(const char *rule, std::uint64_t key, Tick ack = 0,
                 std::size_t minDeps = 0, bool consume = true);

    /** Retire every group of @p rule (e.g. after a log truncation). */
    void clearRule(const char *rule);

    // ---- NvmWriteObserver ----

    void onTimedWrite(Addr addr, std::size_t len, Tick issue,
                      Tick completion) override;
    void onSettle(Tick tick) override;
    void onCrash(Tick tick) override;

    // ---- Reporting ----

    std::vector<OrderingRuleReport> ruleReports() const;

    /** Rules that never fired (spec-coverage holes). */
    std::vector<std::string> deadRules() const;

    const std::vector<OrderingViolation> &violations() const
    {
        return violations_;
    }
    std::uint64_t totalViolations() const { return totalViolations_; }

    /** Race warnings (dep overwritten in flight); not violations. */
    const std::vector<OrderingViolation> &warnings() const
    {
        return warnings_;
    }

    const OrderingCounters &counters() const { return counters_; }

  private:
    /** Stored-trace cap; counters keep exact totals beyond it. */
    static constexpr std::size_t kMaxStoredTraces = 100;

    struct WriteRec
    {
        std::uint64_t seq = 0;
        Addr addr = 0;
        std::uint32_t len = 0;
        Tick issue = 0;
        Tick completion = 0;
    };

    struct Rule
    {
        std::string name;
        OrderingRuleKind kind = OrderingRuleKind::SettledAtTrigger;
        std::string protects;
        std::uint64_t fires = 0;
        std::uint64_t depsChecked = 0;
        std::uint64_t violations = 0;
    };

    std::size_t indexOf(const char *rule) const;
    void recordViolation(std::size_t rule_idx, std::string detail);
    void eraseGroup(std::size_t rule_idx, std::uint64_t key);

    std::vector<Rule> rules_;
    std::unordered_map<std::string, std::size_t> ruleIdx_;

    /** Dependency groups: (rule, key) -> tagged writes. */
    std::map<std::pair<std::size_t, std::uint64_t>,
             std::vector<WriteRec>>
        groups_;

    /** Mirror of the fault model's in-flight write set (issue order). */
    std::deque<WriteRec> inflight_;

    /** Writes with seq <= this have settled (completion monotonic). */
    std::uint64_t maxSettledSeq_ = 0;

    std::uint64_t nextSeq_ = 1;
    WriteRec lastWrite_;
    bool haveLastWrite_ = false;

    /** Last writer of each 8-byte word (race detection). */
    std::unordered_map<Addr, std::uint64_t> lastWriterSeq_;

    /** In-flight dependency writes: seq -> owning rule. */
    std::unordered_map<std::uint64_t, std::size_t> openDepSeqs_;

    OrderingCounters counters_;
    std::vector<OrderingViolation> violations_;
    std::vector<OrderingViolation> warnings_;
    std::uint64_t totalViolations_ = 0;
};

} // namespace hoopnvm

#endif // HOOPNVM_ANALYSIS_ORDERING_TRACKER_HH
