#include "analysis/ordering_tracker.hh"

#include <cstdio>

#include "common/logging.hh"

namespace hoopnvm
{

namespace
{

std::string
describeWrite(Addr addr, std::uint32_t len, Tick completion)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "write [0x%llx,+%u) completing at %llu",
                  static_cast<unsigned long long>(addr), len,
                  static_cast<unsigned long long>(completion));
    return buf;
}

} // namespace

const char *
orderingRuleKindName(OrderingRuleKind k)
{
    switch (k) {
      case OrderingRuleKind::SettledAtTrigger:
        return "settled-at-trigger";
      case OrderingRuleKind::DurableByAck:
        return "durable-by-ack";
      case OrderingRuleKind::IssuedBeforeTrigger:
        return "issued-before-trigger";
    }
    return "?";
}

void
OrderingTracker::RuleDecl::requiresDurable(std::string what)
{
    t_.rules_[idx_].kind = OrderingRuleKind::DurableByAck;
    t_.rules_[idx_].protects = std::move(what);
}

void
OrderingTracker::RuleDecl::requiresSettled(std::string what)
{
    t_.rules_[idx_].kind = OrderingRuleKind::SettledAtTrigger;
    t_.rules_[idx_].protects = std::move(what);
}

void
OrderingTracker::RuleDecl::requiresIssued(std::string what)
{
    t_.rules_[idx_].kind = OrderingRuleKind::IssuedBeforeTrigger;
    t_.rules_[idx_].protects = std::move(what);
}

OrderingTracker::RuleDecl
OrderingTracker::rule(const std::string &name)
{
    auto it = ruleIdx_.find(name);
    if (it != ruleIdx_.end())
        return RuleDecl(*this, it->second);
    const std::size_t idx = rules_.size();
    Rule r;
    r.name = name;
    rules_.push_back(std::move(r));
    ruleIdx_.emplace(name, idx);
    return RuleDecl(*this, idx);
}

std::size_t
OrderingTracker::indexOf(const char *rule) const
{
    auto it = ruleIdx_.find(rule);
    HOOP_ASSERT(it != ruleIdx_.end(),
                "ordering rule '%s' used before declaration", rule);
    return it->second;
}

void
OrderingTracker::addDep(const char *rule, std::uint64_t key)
{
    HOOP_ASSERT(haveLastWrite_,
                "addDep('%s') with no preceding timed write", rule);
    const std::size_t ri = indexOf(rule);
    groups_[{ri, key}].push_back(lastWrite_);
    openDepSeqs_[lastWrite_.seq] = ri;
}

void
OrderingTracker::trigger(const char *rule, std::uint64_t key, Tick ack,
                         std::size_t minDeps, bool consume)
{
    const std::size_t ri = indexOf(rule);
    Rule &r = rules_[ri];
    ++r.fires;

    auto git = groups_.find({ri, key});
    const std::vector<WriteRec> *deps =
        git == groups_.end() ? nullptr : &git->second;
    const std::size_t n = deps ? deps->size() : 0;

    if (n < minDeps) {
        recordViolation(
            ri, "group " + std::to_string(key) + " has " +
                    std::to_string(n) + " dependency write(s), " +
                    "protocol requires at least " +
                    std::to_string(minDeps) + " (" + r.protects + ")");
    }

    for (std::size_t i = 0; i < n; ++i) {
        const WriteRec &d = (*deps)[i];
        ++r.depsChecked;
        switch (r.kind) {
          case OrderingRuleKind::SettledAtTrigger:
            if (d.seq > maxSettledSeq_) {
                recordViolation(
                    ri, "dependency " +
                            describeWrite(d.addr, d.len, d.completion) +
                            " still in flight at trigger (no fence "
                            "settled it; protects " + r.protects + ")");
            }
            break;
          case OrderingRuleKind::DurableByAck:
            if (d.completion > ack) {
                recordViolation(
                    ri, "dependency " +
                            describeWrite(d.addr, d.len, d.completion) +
                            " not durable at acknowledged tick " +
                            std::to_string(ack) + " (protects " +
                            r.protects + ")");
            }
            break;
          case OrderingRuleKind::IssuedBeforeTrigger:
            // Presence (checked via minDeps above) is the contract;
            // issue order is implied by the capture discipline.
            break;
        }
    }

    if (consume && git != groups_.end())
        eraseGroup(ri, key);
}

void
OrderingTracker::clearRule(const char *rule)
{
    const std::size_t ri = indexOf(rule);
    auto it = groups_.lower_bound({ri, 0});
    while (it != groups_.end() && it->first.first == ri) {
        for (const WriteRec &d : it->second)
            openDepSeqs_.erase(d.seq);
        it = groups_.erase(it);
    }
}

void
OrderingTracker::eraseGroup(std::size_t rule_idx, std::uint64_t key)
{
    auto it = groups_.find({rule_idx, key});
    if (it == groups_.end())
        return;
    for (const WriteRec &d : it->second)
        openDepSeqs_.erase(d.seq);
    groups_.erase(it);
}

void
OrderingTracker::onTimedWrite(Addr addr, std::size_t len, Tick issue,
                              Tick completion)
{
    WriteRec rec;
    rec.seq = nextSeq_++;
    rec.addr = addr;
    rec.len = static_cast<std::uint32_t>(len);
    rec.issue = issue;
    rec.completion = completion;
    ++counters_.timedWrites;

    // Race scan at the fault model's tear granularity (8-byte words).
    const Addr end = addr + len;
    for (Addr word = alignDown(addr, kWordSize); word < end;
         word += kWordSize) {
        auto it = lastWriterSeq_.find(word);
        if (it != lastWriterSeq_.end() && it->second > maxSettledSeq_) {
            ++counters_.inflightOverwrites;
            auto dep = openDepSeqs_.find(it->second);
            if (dep != openDepSeqs_.end()) {
                ++counters_.depOverwrites;
                if (warnings_.size() < kMaxStoredTraces) {
                    char at[32];
                    std::snprintf(at, sizeof(at), "0x%llx",
                                  static_cast<unsigned long long>(word));
                    warnings_.push_back(
                        {rules_[dep->second].name,
                         describeWrite(addr, rec.len, completion) +
                             " overwrites an in-flight dependency "
                             "word at " + at});
                }
            }
            it->second = rec.seq;
        } else if (it != lastWriterSeq_.end()) {
            it->second = rec.seq;
        } else {
            lastWriterSeq_.emplace(word, rec.seq);
        }
    }

    inflight_.push_back(rec);
    lastWrite_ = rec;
    haveLastWrite_ = true;
}

void
OrderingTracker::onSettle(Tick tick)
{
    ++counters_.settleCalls;
    std::uint64_t popped = 0;
    while (!inflight_.empty() &&
           inflight_.front().completion <= tick) {
        maxSettledSeq_ = inflight_.front().seq;
        inflight_.pop_front();
        ++popped;
    }
    counters_.settledWrites += popped;
    if (popped == 0)
        ++counters_.redundantSettles;
}

void
OrderingTracker::onCrash(Tick tick)
{
    (void)tick;
    // Every write issued before the crash is resolved (persisted or
    // torn): nothing stays in flight, and every open dependency group
    // died with the volatile protocol state that owned it.
    if (!inflight_.empty())
        maxSettledSeq_ = inflight_.back().seq;
    inflight_.clear();
    lastWriterSeq_.clear();
    openDepSeqs_.clear();
    groups_.clear();
    haveLastWrite_ = false;
}

void
OrderingTracker::recordViolation(std::size_t rule_idx,
                                 std::string detail)
{
    ++rules_[rule_idx].violations;
    ++totalViolations_;
    if (violations_.size() < kMaxStoredTraces)
        violations_.push_back(
            {rules_[rule_idx].name, std::move(detail)});
}

std::vector<OrderingRuleReport>
OrderingTracker::ruleReports() const
{
    std::vector<OrderingRuleReport> out;
    out.reserve(rules_.size());
    for (const Rule &r : rules_) {
        OrderingRuleReport rep;
        rep.name = r.name;
        rep.kind = r.kind;
        rep.protects = r.protects;
        rep.fires = r.fires;
        rep.depsChecked = r.depsChecked;
        rep.violations = r.violations;
        out.push_back(std::move(rep));
    }
    return out;
}

std::vector<std::string>
OrderingTracker::deadRules() const
{
    std::vector<std::string> out;
    for (const Rule &r : rules_) {
        if (r.fires == 0)
            out.push_back(r.name);
    }
    return out;
}

} // namespace hoopnvm
