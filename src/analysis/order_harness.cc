#include "analysis/order_harness.hh"

#include <memory>

#include "sim/system.hh"
#include "workloads/registry.hh"

namespace hoopnvm
{

SystemConfig
smallCheckConfig(unsigned numCores, std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.numCores = numCores;
    cfg.seed = seed;
    cfg.homeBytes = miB(64);
    // Small OOP blocks fill within a short window, so HOOP's GC has
    // real migration candidates; the watermark and recycle rules need
    // GC to actually collect something.
    cfg.oopBytes = miB(1);
    cfg.oopBlockBytes = kiB(8);
    cfg.auxBytes = miB(64) + miB(8);
    cfg.cache.l1Size = kiB(1);
    cfg.cache.l1Assoc = 2;
    cfg.cache.l2Size = kiB(4);
    cfg.cache.l2Assoc = 2;
    cfg.cache.llcSize = kiB(16);
    cfg.cache.llcAssoc = 4;
    cfg.gcPeriod = nsToTicks(10'000);
    return cfg;
}

OrderCheckReport
runOrderCheck(const OrderCheckOptions &opt)
{
    SystemConfig cfg = smallCheckConfig(opt.numCores, opt.seed);
    cfg.debugNoCommitFence = opt.breakCommitFence;
    cfg.debugEarlyCommitAck = opt.earlyCommitAck;
    cfg.debugSkipSettleFences = opt.skipSettleFences;
    cfg.debugSkipUndoLog = opt.skipUndoLog;

    System sys(cfg, opt.scheme);
    if (opt.tornWrites) {
        sys.nvm().faults().setSeed(opt.seed ^ 0x7ea55eedULL);
        sys.nvm().faults().setTornWrites(true);
    }

    WorkloadParams params;
    params.valueBytes = 64;
    params.scale = 128;
    auto factory = makeWorkload(opt.workload, params);
    std::vector<std::unique_ptr<Workload>> wls;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        wls.push_back(factory(sys, c));
        wls.back()->setup();
    }

    // Warmup runs untracked: rules judge the steady state, and setup /
    // cold-cache traffic would only add noise to the counters.
    std::uint64_t txi = 0;
    for (; txi < opt.warmupTx; ++txi) {
        for (unsigned c = 0; c < cfg.numCores; ++c)
            wls[c]->runTransaction(txi);
        sys.maintenance();
    }

    OrderingTracker tracker;
    sys.armOrdering(&tracker);

    OrderCheckReport rep;
    for (std::uint64_t n = 0; n < opt.runTx; ++n, ++txi) {
        for (unsigned c = 0; c < cfg.numCores; ++c)
            wls[c]->runTransaction(txi);
        sys.maintenance();
        rep.transactions += cfg.numCores;
    }
    // The final drain pushes every background mechanism to completion
    // (GC, checkpoints, truncation), so drain-side rules must fire at
    // least once in any non-trivial run.
    sys.finalize();

    rep.verified = true;
    for (auto &wl : wls)
        rep.verified = rep.verified && wl->verify();

    rep.rules = tracker.ruleReports();
    rep.deadRules = tracker.deadRules();
    rep.violations = tracker.violations();
    rep.warnings = tracker.warnings();
    rep.counters = tracker.counters();
    rep.totalViolations = tracker.totalViolations();

    sys.armOrdering(nullptr);
    return rep;
}

} // namespace hoopnvm
