/**
 * @file
 * Deterministic chaos schedules for the fleet harness.
 *
 * A chaos schedule is the fleet analogue of a crash schedule: a fixed,
 * seeded list of per-shard adversities applied mid-traffic while the
 * sibling shards keep serving. Three event kinds cover the fault
 * domains the harness cares about:
 *
 *  - Crash: the shard power-fails and runs online recovery; it is
 *    unavailable for the modelled recovery duration and the oracle
 *    checks committed-shadow equality the moment it comes back.
 *  - Stall: the shard stops answering for a fixed window (a GC storm,
 *    an OS hiccup) without losing state — clients see unavailability
 *    and must ride it out with retries/backoff.
 *  - FaultRamp: a fresh battery of seeded media faults lands on the
 *    shard's free capacity (reusing the soak engine's
 *    installRuntimeFaults), pushing it toward capacity degradation
 *    and admission rejects.
 *
 * Named profiles expand to concrete event lists purely from (profile,
 * shards, horizon, seed), so a fleet run is replayable from its spec
 * alone.
 */

#ifndef HOOPNVM_FLEET_CHAOS_HH
#define HOOPNVM_FLEET_CHAOS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace hoopnvm
{

/** What a chaos event does to its shard. */
enum class ChaosKind
{
    /** Power failure + online recovery (siblings keep serving). */
    Crash,

    /** Unavailability window with no state loss. */
    Stall,

    /** Seeded media-fault battery over then-free capacity. */
    FaultRamp,
};

/** Stable lowercase token for @p k (fleet JSON, logs). */
const char *chaosKindName(ChaosKind k);

/** One scheduled adversity. */
struct ChaosEvent
{
    /** Fleet-clock tick the event fires at. */
    Tick at = 0;

    /** Target shard index. */
    unsigned shard = 0;

    ChaosKind kind = ChaosKind::Crash;

    /** Stall window length (Stall only). */
    Tick durationTicks = 0;

    /** Per-word fault probability (FaultRamp only). */
    double faultProb = 0.0;

    /** Polarity/stripe salt forwarded to installRuntimeFaults. */
    unsigned salt = 0;
};

/** Tuning knobs for profile expansion. */
struct ChaosTuning
{
    /** Events per shard (profiles scale off this). */
    unsigned eventsPerShard = 2;

    /** Base per-word probability for FaultRamp events. */
    double faultProb = 0.05;
};

/**
 * True when @p profile names a known chaos profile: "none" (no
 * events), "crashes", "stalls", "faults" (one kind each), or "mixed"
 * (round-robin over all three kinds).
 */
bool chaosProfileKnown(const std::string &profile);

/**
 * Expand @p profile into a concrete event list for @p shards shards
 * over [0, @p horizon): event times are seeded-uniform within the
 * middle of the horizon (so warmup and the final drain stay quiet),
 * and the result is sorted by (at, shard). Deterministic in all
 * arguments.
 */
std::vector<ChaosEvent> expandChaosProfile(const std::string &profile,
                                           unsigned shards,
                                           Tick horizon,
                                           std::uint64_t seed,
                                           const ChaosTuning &tuning);

} // namespace hoopnvm

#endif // HOOPNVM_FLEET_CHAOS_HH
