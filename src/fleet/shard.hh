/**
 * @file
 * One fleet shard: an independent HOOP fault domain.
 *
 * A shard wraps a complete System — its own OOP region, mapping
 * table, GC, scrubber and NVM device — plus one workload instance per
 * core, exactly the machine the soak harness checks, but embedded in
 * a fleet where siblings keep serving while this shard crashes,
 * recovers, stalls or degrades. The shard owns everything that is
 * per-fault-domain state:
 *
 *  - availability: a crash makes the shard unavailable for the
 *    modelled recovery duration; a stall for the stall window. The
 *    front-end routes around unavailability with client retries.
 *  - admission control: a hysteretic queue-depth gate, its thresholds
 *    tightened as retired capacity grows (a degraded shard sheds
 *    earlier). The low/high split guarantees a drained shard always
 *    re-admits — the end-of-run oracle insists on it.
 *  - the committed-shadow oracle: after every recovery the shard's
 *    structures must equal the per-core committed shadows (with the
 *    commit-ambiguity window resolved both ways) and pass structural
 *    verification — an acked transaction is never lost.
 */

#ifndef HOOPNVM_FLEET_SHARD_HH
#define HOOPNVM_FLEET_SHARD_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "stats/histogram.hh"
#include "workloads/workload.hh"

namespace hoopnvm
{

/** Per-shard build/runtime knobs. */
struct ShardConfig
{
    Scheme scheme = Scheme::Hoop;
    std::string workload = "vector";
    unsigned numCores = 2;
    std::uint64_t seed = 42;
    unsigned recoverThreads = 2;

    /** Warmup transactions per core before traffic starts. */
    std::uint64_t warmupTx = 10;

    /**
     * Seeded-bug self-test: acknowledge commits before the commit
     * record is durably fenced (debugNoCommitFence + torn writes).
     * A chaos crash on such a shard must surface as a lost acked
     * transaction — the harness self-test asserts it is detected.
     */
    bool injectAckBeforeDurable = false;

    /** Queue depth (ticks of backlog) that closes admission. */
    Tick shedHighTicks = nsToTicks(200'000);

    /** Queue depth at or below which admission re-opens. */
    Tick shedLowTicks = nsToTicks(50'000);
};

/** How one serve attempt on a shard ended. */
enum class ServeStatus
{
    /** Transaction committed; the ack is client-visible. */
    Acked,

    /** Admission-time TxRejected (no state touched; retryable). */
    RejectedAdmission,

    /** Mid-transaction TxRejected; the shard crash+recovered. */
    RejectedMidTx,
};

/** Outcome of one FleetShard::serve(). */
struct ServeResult
{
    ServeStatus status = ServeStatus::Acked;

    /** Core time the attempt consumed (service component). */
    Tick serviceTicks = 0;

    /** Modelled recovery duration (RejectedMidTx only). */
    Tick recoveryTicks = 0;
};

/** Cumulative per-shard observability. */
struct ShardCounters
{
    std::uint64_t acked = 0;
    std::uint64_t rejectedAdmission = 0;
    std::uint64_t rejectedMidTx = 0;

    /** All recoveries: chaos crashes + mid-transaction unwinds. */
    std::uint64_t recoveries = 0;

    std::uint64_t chaosCrashes = 0;
    std::uint64_t stallWindows = 0;
    std::uint64_t faultRamps = 0;
};

/** One independent HOOP fault domain inside the fleet. */
class FleetShard
{
  public:
    FleetShard(unsigned id, const ShardConfig &cfg);
    ~FleetShard();

    FleetShard(const FleetShard &) = delete;
    FleetShard &operator=(const FleetShard &) = delete;

    /** Run the configured warmup transactions on every core. */
    void warmup();

    /**
     * Serve one transaction on @p core. TxRejected is resolved with
     * the shared client policy (admission skip vs crash+recover); a
     * recovery re-runs the committed-shadow oracle and reports a
     * violation through @p violation.
     */
    ServeResult serve(CoreId core, std::uint64_t seq,
                      std::string *violation);

    // ---- Chaos ----

    /**
     * Power-fail now and run online recovery; the shard is unavailable
     * until @p now + the modelled recovery duration. Re-runs the
     * oracle; @return false with @p violation set on a violation.
     */
    bool chaosCrash(Tick now, std::string *violation);

    /** Stop serving until @p now + @p duration (no state loss). */
    void chaosStall(Tick now, Tick duration);

    /** Land a seeded media-fault battery on then-free capacity. */
    void chaosFaultRamp(double prob, unsigned salt);

    // ---- Availability & admission ----

    bool availableAt(Tick now) const { return now >= unavailableUntil_; }
    Tick unavailableUntil() const { return unavailableUntil_; }

    /**
     * Mark the shard unavailable until @p from + @p duration without
     * counting a chaos event (mid-transaction unwind recoveries).
     */
    void beginUnavailability(Tick from, Tick duration)
    {
        unavailableUntil_ = std::max(unavailableUntil_,
                                     from + duration);
    }

    /**
     * Hysteretic admission decision for a request seeing @p queueDepth
     * ticks of backlog: close above the high threshold, re-open at or
     * below the low one. Thresholds shrink as retired capacity grows
     * (floored so a drained shard always re-admits).
     */
    bool admit(Tick queueDepth);

    bool admitting() const { return admitting_; }

    // ---- Oracle ----

    /**
     * Committed-shadow equality + structural invariants on every core,
     * with the commit-ambiguity window resolved both ways.
     * @return false with @p violation set on the first failure.
     */
    bool oracle(const std::string &when, std::string *violation);

    // ---- Observability ----

    unsigned id() const { return id_; }
    unsigned numCores() const { return cfg_.numCores; }
    const ShardCounters &counters() const { return counters_; }
    ShardCounters &counters() { return counters_; }

    /** Record one end-to-end request latency (queue + service). */
    void recordLatency(Tick t) { latency_.record(t); }
    const Histogram &latency() const { return latency_; }

    /** Forward client-side degradation gauges to the epoch sampler. */
    void noteClientActivity(const ClientActivity &a);

    double degradedFraction();
    System &system() { return *sys_; }

  private:
    unsigned id_;
    ShardConfig cfg_;
    SystemConfig sysCfg_;
    std::unique_ptr<System> sys_;
    std::vector<std::unique_ptr<Workload>> wls_;

    Tick unavailableUntil_ = 0;
    bool admitting_ = true;
    ShardCounters counters_;
    Histogram latency_;
};

} // namespace hoopnvm

#endif // HOOPNVM_FLEET_SHARD_HH
