#include "fleet/shard.hh"

#include <algorithm>

#include "analysis/order_harness.hh"
#include "check/soak.hh"
#include "common/errors.hh"
#include "fleet/client_policy.hh"
#include "workloads/registry.hh"

namespace hoopnvm
{

FleetShard::FleetShard(unsigned id, const ShardConfig &cfg)
    : id_(id),
      cfg_(cfg),
      sysCfg_(smallCheckConfig(cfg.numCores, cfg.seed))
{
    sysCfg_.ft.enabled = true;
    if (cfg_.injectAckBeforeDurable) {
        // Seeded bug: drop the fence between data persistence and the
        // commit record, so a crash can tear an already-acked commit.
        sysCfg_.debugNoCommitFence = true;
    }
    sys_ = std::make_unique<System>(sysCfg_, cfg_.scheme);
    sys_->nvm().faults().setSeed(cfg_.seed ^ 0x7ea55eedULL);
    if (cfg_.injectAckBeforeDurable)
        sys_->nvm().faults().setTornWrites(true);

    WorkloadParams params;
    params.valueBytes = 64;
    params.scale = 128;
    auto factory = makeWorkload(cfg_.workload, params);
    for (CoreId c = 0; c < cfg_.numCores; ++c) {
        wls_.push_back(factory(*sys_, c));
        wls_.back()->setup();
    }
}

FleetShard::~FleetShard() = default;

void
FleetShard::warmup()
{
    for (std::uint64_t txi = 0; txi < cfg_.warmupTx; ++txi) {
        for (CoreId c = 0; c < cfg_.numCores; ++c)
            wls_[c]->runTransaction(txi);
        sys_->maintenance();
    }
}

ServeResult
FleetShard::serve(CoreId core, std::uint64_t seq,
                  std::string *violation)
{
    ServeResult r;
    const Tick before = sys_->core(core).clock();
    try {
        wls_[core]->runTransaction(seq);
        sys_->maintenance();
        r.status = ServeStatus::Acked;
        ++counters_.acked;
    } catch (const TxRejected &rj) {
        const RejectResolution res = handleClientReject(
            rj, *sys_, wls_, core, cfg_.recoverThreads);
        if (res.action == RejectAction::AdmissionSkip) {
            r.status = ServeStatus::RejectedAdmission;
            ++counters_.rejectedAdmission;
        } else {
            r.status = ServeStatus::RejectedMidTx;
            r.recoveryTicks = res.recoveryTicks;
            ++counters_.rejectedMidTx;
            ++counters_.recoveries;
            // Every recovery must land on the survivor state.
            oracle("after mid-transaction unwind recovery", violation);
        }
    }
    const Tick after = sys_->core(core).clock();
    r.serviceTicks = after > before ? after - before : 1;
    return r;
}

bool
FleetShard::chaosCrash(Tick now, std::string *violation)
{
    sys_->crash();
    const Tick rt = sys_->recover(cfg_.recoverThreads);
    for (auto &wl : wls_)
        wl->dropPendingShadow();
    unavailableUntil_ = std::max(unavailableUntil_, now + rt);
    ++counters_.chaosCrashes;
    ++counters_.recoveries;
    return oracle("after chaos crash recovery", violation);
}

void
FleetShard::chaosStall(Tick now, Tick duration)
{
    unavailableUntil_ = std::max(unavailableUntil_, now + duration);
    ++counters_.stallWindows;
}

void
FleetShard::chaosFaultRamp(double prob, unsigned salt)
{
    installRuntimeFaults(*sys_, sysCfg_, prob, salt);
    ++counters_.faultRamps;
}

bool
FleetShard::admit(Tick queueDepth)
{
    // Tighten the gate as retirement eats capacity, but floor the
    // scale: the re-admission threshold must stay positive so a shard
    // with an empty queue always re-opens, no matter how degraded —
    // the end-of-run "every shard re-admitted" oracle relies on it.
    const double scale = std::max(0.25, 1.0 - degradedFraction());
    const Tick high = static_cast<Tick>(
        static_cast<double>(cfg_.shedHighTicks) * scale);
    const Tick low = static_cast<Tick>(
        static_cast<double>(cfg_.shedLowTicks) * scale);
    if (admitting_) {
        if (queueDepth > high)
            admitting_ = false;
    } else if (queueDepth <= low) {
        admitting_ = true;
    }
    return admitting_;
}

bool
FleetShard::oracle(const std::string &when, std::string *violation)
{
    for (CoreId c = 0; c < cfg_.numCores; ++c) {
        bool ok = wls_[c]->verify();
        if (!ok && wls_[c]->hasPendingShadow()) {
            wls_[c]->applyPendingShadow();
            ok = wls_[c]->verify();
        } else {
            wls_[c]->dropPendingShadow();
        }
        if (!ok) {
            if (violation && violation->empty())
                *violation = "shard " + std::to_string(id_) + " core " +
                             std::to_string(c) +
                             ": committed state lost or phantom data "
                             "surfaced (" + when + ")";
            return false;
        }
        std::string why;
        if (!wls_[c]->verifyStructure(&why)) {
            if (violation && violation->empty())
                *violation = "shard " + std::to_string(id_) + " core " +
                             std::to_string(c) +
                             ": structural invariant broken (" + when +
                             "): " + why;
            return false;
        }
    }
    return true;
}

void
FleetShard::noteClientActivity(const ClientActivity &a)
{
    sys_->controller().noteClientActivity(a);
}

double
FleetShard::degradedFraction()
{
    return sys_->controller().gauges().degradedFraction;
}

} // namespace hoopnvm
