/**
 * @file
 * The sharded HOOP fleet harness: N independent shard fault domains
 * behind a hashing front-end, driven by an open-loop client under a
 * deterministic chaos schedule.
 *
 * One FleetSpec pins down an entire experiment — scheme, workload,
 * shard count, the arrival process, the client retry policy and the
 * chaos profile — and runFleet() executes it bit-for-bit
 * deterministically on simulated time. Requests hash by tenant to a
 * shard (tenant data is shard-local, so retries return to the same
 * shard); the client layer turns every adversity into a structured
 * ClientOutcome via bounded retries with exponential backoff + seeded
 * jitter and a per-request deadline. Shards shed load hysteretically
 * when their queues back up and must all be re-admitted by the end of
 * the run.
 *
 * Oracles, checked continuously:
 *  - after every recovery (chaos crash or mid-transaction unwind) the
 *    shard's structures must equal its committed shadows — no acked
 *    transaction is ever lost, no phantom data surfaces;
 *  - every request ends in exactly one ClientOutcome, never a fatal;
 *  - at end of run every shard is admitting and serves a probe
 *    transaction on every core, after a final oracle pass.
 *
 * A violating spec serializes to JSON and shrinks to a minimal
 * reproducer (`hoop_fleet --replay`), mirroring the soak harness.
 */

#ifndef HOOPNVM_FLEET_FLEET_HH
#define HOOPNVM_FLEET_FLEET_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/crash_schedule.hh" // schemeToken
#include "fleet/shard.hh"

namespace hoopnvm
{

/** One deterministic fleet experiment. */
struct FleetSpec
{
    Scheme scheme = Scheme::Hoop;
    std::string workload = "vector";

    /** Chaos profile: none / crashes / stalls / faults / mixed. */
    std::string chaosProfile = "mixed";

    std::uint64_t seed = 42;
    unsigned shards = 4;
    unsigned coresPerShard = 2;

    /** Client requests dispatched through the front-end. */
    std::uint64_t requests = 1500;

    /** Warmup transactions per core per shard (before traffic). */
    std::uint64_t warmupTx = 10;

    unsigned recoverThreads = 2;

    // ---- Client retry policy ----

    /** Total tries per request, including the first. */
    unsigned maxAttempts = 6;

    /** First-retry backoff (exponential with seeded jitter on top). */
    double backoffBaseNs = 2'000;

    /** Per-request deadline from first arrival (0 disables). */
    double deadlineNs = 20e6;

    // ---- Open-loop arrival process ----

    double meanInterarrivalNs = 500;
    double thinkNs = 2'000;
    unsigned tenants = 16;
    double tenantTheta = 0.99;
    unsigned connections = 16;
    double churnProb = 0.02;

    // ---- Chaos scaling ----

    unsigned chaosEventsPerShard = 2;

    /** Base per-word probability of FaultRamp events. */
    double faultProb = 0.05;

    /**
     * Self-test: shard 0 acks commits before they are durable (and a
     * crash is forced onto it). The run must detect the lost acked
     * transaction — used to prove the oracles can fail.
     */
    bool injectAckBeforeDurable = false;

    std::string toJson() const;

    /**
     * Parse @p text (as produced by toJson()).
     * @return false with @p err set on malformed input.
     */
    static bool fromJson(const std::string &text, FleetSpec *out,
                         std::string *err);
};

/** Per-shard slice of a fleet run's outcome. */
struct FleetShardReport
{
    unsigned shard = 0;
    ShardCounters counters;

    // Client-side degradation totals attributed to this shard.
    std::uint64_t retryAttempts = 0;
    std::uint64_t backoffTicks = 0;
    std::uint64_t deadlineMisses = 0;
    std::uint64_t shedAdmissions = 0;

    /** Admission gate state at end of run (oracle: must be true). */
    bool admittingAtEnd = true;

    std::uint64_t retiredUnits = 0;
    double degradedFraction = 0.0;

    /** End-to-end (queue + service) request latency on this shard. */
    LatencySummary latency;
};

/** Outcome of one fleet run. */
struct FleetResult
{
    bool violated = false;

    /** Human-readable description of the first violation. */
    std::string detail;

    std::uint64_t requests = 0;

    // ClientOutcome totals; acked+rejected+timedOut+shed == requests
    // on any run that completes without an oracle violation.
    std::uint64_t acked = 0;
    std::uint64_t rejected = 0;
    std::uint64_t timedOut = 0;
    std::uint64_t shed = 0;

    // Fleet-wide client-activity totals.
    std::uint64_t retryAttempts = 0;
    std::uint64_t backoffTicks = 0;
    std::uint64_t deadlineMisses = 0;
    std::uint64_t shedAdmissions = 0;

    // Fleet-wide chaos/recovery totals.
    std::uint64_t recoveries = 0;
    std::uint64_t chaosCrashes = 0;
    std::uint64_t stallWindows = 0;
    std::uint64_t faultRamps = 0;

    /** Fleet-wide latency (per-shard histograms merged). */
    LatencySummary latency;

    std::vector<FleetShardReport> shards;
};

/** Progress sink: invoked with a label as the run advances. */
using FleetProgress = std::function<void(const std::string &)>;

/** Execute @p spec deterministically. */
FleetResult runFleet(const FleetSpec &spec,
                     const FleetProgress &progress = {});

/**
 * Greedily shrink @p failing toward a minimal still-violating spec:
 * fewer requests, shards, chaos events and warmup.
 */
FleetSpec shrinkFleet(const FleetSpec &failing,
                      std::string *detail = nullptr,
                      const FleetProgress &progress = {});

} // namespace hoopnvm

#endif // HOOPNVM_FLEET_FLEET_HH
