/**
 * @file
 * Open-loop client arrival generator for the fleet harness.
 *
 * The fleet front-end is driven the way a real service is: requests
 * arrive on their own schedule (seeded Poisson process), not when the
 * server happens to be free — so a stalled or recovering shard builds
 * a real queue instead of silently slowing the generator down. On top
 * of the Poisson base rate sit the client-realism knobs: a skewed
 * tenant population (Zipfian, so a few hot tenants dominate exactly
 * like YCSB key popularity), per-connection think times (a connection
 * cannot issue its next request until its think window elapses), and
 * connection churn (connections occasionally die and are replaced by
 * fresh ones with no think-time debt).
 *
 * Everything is drawn from one explicitly seeded xorshift64* stream,
 * so the arrival schedule is a pure function of ArrivalConfig — the
 * determinism tests demand bit-identical streams whether generated
 * serially or from worker threads.
 */

#ifndef HOOPNVM_FLEET_ARRIVALS_HH
#define HOOPNVM_FLEET_ARRIVALS_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "common/zipfian.hh"

namespace hoopnvm
{

/** Knobs of the open-loop arrival process. */
struct ArrivalConfig
{
    std::uint64_t seed = 1;

    /** Mean Poisson interarrival time across the whole client set. */
    Tick meanInterarrival = nsToTicks(500);

    /** Per-connection think time between consecutive requests. */
    Tick thinkTicks = nsToTicks(2'000);

    /** Tenant population size (requests are skewed across it). */
    unsigned tenants = 16;

    /** Zipfian skew of tenant popularity (YCSB-style). */
    double tenantTheta = 0.99;

    /** Concurrent client connections (think-time slots). */
    unsigned connections = 16;

    /** Per-arrival probability that the drawn connection churned. */
    double churnProb = 0.02;
};

/** One generated request arrival. */
struct Arrival
{
    /**
     * Fleet-clock tick the request arrives at. The Poisson base clock
     * is monotone, but think time can push an individual connection's
     * arrival past later base ticks, so the emitted stream is not
     * globally time-sorted — consumers sort by (at, seq) before
     * dispatching.
     */
    Tick at = 0;

    /** Issuing tenant (drives shard routing). */
    std::uint64_t tenant = 0;

    /** Issuing connection id (monotone across churn). */
    std::uint64_t connection = 0;

    /** Zero-based request sequence number. */
    std::uint64_t seq = 0;
};

/** Seeded open-loop arrival stream (Poisson + think + churn). */
class ArrivalGenerator
{
  public:
    explicit ArrivalGenerator(const ArrivalConfig &cfg);

    /** Generate the next arrival (issue order; see Arrival::at). */
    Arrival next();

    /** Base-process clock after the last next() (excludes think). */
    Tick clock() const { return clock_; }

  private:
    ArrivalConfig cfg_;
    Rng rng_;
    ZipfianGenerator tenantZipf_;

    /** Poisson base-process clock. */
    Tick clock_ = 0;

    std::uint64_t seq_ = 0;

    /** Next fresh connection id handed out on churn. */
    std::uint64_t nextConnId_ = 0;

    /** Slot -> live connection id. */
    std::vector<std::uint64_t> connId_;

    /** Slot -> earliest tick its next request may be issued. */
    std::vector<Tick> connReadyAt_;
};

} // namespace hoopnvm

#endif // HOOPNVM_FLEET_ARRIVALS_HH
