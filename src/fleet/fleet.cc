#include "fleet/fleet.hh"

#include <algorithm>
#include <memory>

#include "check/spec_json.hh"
#include "common/json.hh"
#include "common/rng.hh"
#include "fleet/arrivals.hh"
#include "fleet/chaos.hh"
#include "fleet/client_policy.hh"

namespace hoopnvm
{
namespace
{

/** Stateless 64-bit finalizer (splitmix64) for tenant routing. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/** Summarize a tick-valued histogram into nanosecond quantiles. */
LatencySummary
summarizeLatency(const Histogram &h)
{
    LatencySummary s;
    s.count = h.count();
    if (s.count == 0)
        return s;
    const double k = static_cast<double>(kTicksPerNs);
    s.p50Ns = h.quantile(0.5) / k;
    s.p95Ns = h.quantile(0.95) / k;
    s.p99Ns = h.quantile(0.99) / k;
    s.p999Ns = h.quantile(0.999) / k;
    s.maxNs = static_cast<double>(h.max()) / k;
    s.meanNs = h.mean() / k;
    return s;
}

} // namespace

std::string
FleetSpec::toJson() const
{
    std::string out = "{\n";
    auto field = [&out](const char *key, const std::string &val,
                        bool last = false) {
        // lint: raw-json-ok (keys are compile-time literals; string values arrive jsonQuote()d)
        out += std::string("  \"") + key + "\": " + val +
               (last ? "\n" : ",\n");
    };
    field("scheme", jsonQuote(schemeToken(scheme)));
    field("workload", jsonQuote(workload));
    field("chaos_profile", jsonQuote(chaosProfile));
    field("seed", std::to_string(seed));
    field("shards", std::to_string(shards));
    field("cores_per_shard", std::to_string(coresPerShard));
    field("requests", std::to_string(requests));
    field("warmup_tx", std::to_string(warmupTx));
    field("recover_threads", std::to_string(recoverThreads));
    field("max_attempts", std::to_string(maxAttempts));
    field("backoff_base_ns", std::to_string(backoffBaseNs));
    field("deadline_ns", std::to_string(deadlineNs));
    field("mean_interarrival_ns", std::to_string(meanInterarrivalNs));
    field("think_ns", std::to_string(thinkNs));
    field("tenants", std::to_string(tenants));
    field("tenant_theta", std::to_string(tenantTheta));
    field("connections", std::to_string(connections));
    field("churn_prob", std::to_string(churnProb));
    field("chaos_events_per_shard",
          std::to_string(chaosEventsPerShard));
    field("fault_prob", std::to_string(faultProb));
    field("inject_ack_before_durable",
          injectAckBeforeDurable ? "true" : "false", true);
    out += "}\n";
    return out;
}

bool
FleetSpec::fromJson(const std::string &text, FleetSpec *out,
                    std::string *err)
{
    *out = FleetSpec{};
    SpecParser p(text);
    std::string str;
    double num = 0;

    auto u64 = [&](std::uint64_t *dst) {
        if (!p.parseNumber(&num))
            return false;
        *dst = static_cast<std::uint64_t>(num);
        return true;
    };
    auto u32 = [&](unsigned *dst) {
        if (!p.parseNumber(&num))
            return false;
        *dst = static_cast<unsigned>(num);
        return true;
    };

    const bool ok = p.parseObject([&](const std::string &key) {
        if (key == "scheme") {
            return p.parseString(&str) &&
                   (schemeFromToken(str, &out->scheme) ||
                    p.fail("unknown scheme \"" + str + "\""));
        }
        if (key == "workload")
            return p.parseString(&out->workload);
        if (key == "chaos_profile") {
            return p.parseString(&out->chaosProfile) &&
                   (chaosProfileKnown(out->chaosProfile) ||
                    p.fail("unknown chaos profile \"" +
                           out->chaosProfile + "\""));
        }
        if (key == "seed")
            return u64(&out->seed);
        if (key == "shards")
            return u32(&out->shards);
        if (key == "cores_per_shard")
            return u32(&out->coresPerShard);
        if (key == "requests")
            return u64(&out->requests);
        if (key == "warmup_tx")
            return u64(&out->warmupTx);
        if (key == "recover_threads")
            return u32(&out->recoverThreads);
        if (key == "max_attempts")
            return u32(&out->maxAttempts);
        if (key == "backoff_base_ns")
            return p.parseNumber(&out->backoffBaseNs);
        if (key == "deadline_ns")
            return p.parseNumber(&out->deadlineNs);
        if (key == "mean_interarrival_ns")
            return p.parseNumber(&out->meanInterarrivalNs);
        if (key == "think_ns")
            return p.parseNumber(&out->thinkNs);
        if (key == "tenants")
            return u32(&out->tenants);
        if (key == "tenant_theta")
            return p.parseNumber(&out->tenantTheta);
        if (key == "connections")
            return u32(&out->connections);
        if (key == "churn_prob")
            return p.parseNumber(&out->churnProb);
        if (key == "chaos_events_per_shard")
            return u32(&out->chaosEventsPerShard);
        if (key == "fault_prob")
            return p.parseNumber(&out->faultProb);
        if (key == "inject_ack_before_durable")
            return p.parseBool(&out->injectAckBeforeDurable);
        return p.fail("unknown key \"" + key + "\"");
    });

    if (!ok && err)
        *err = p.error();
    return ok;
}

FleetResult
runFleet(const FleetSpec &spec, const FleetProgress &progress)
{
    FleetResult res;
    res.requests = spec.requests;
    if (spec.shards == 0 || spec.coresPerShard == 0)
        return res;

    // ---- Build the shard fleet (each its own System + workloads) ----
    std::vector<std::unique_ptr<FleetShard>> shards;
    for (unsigned s = 0; s < spec.shards; ++s) {
        ShardConfig sc;
        sc.scheme = spec.scheme;
        sc.workload = spec.workload;
        sc.numCores = spec.coresPerShard;
        // Distinct per-shard seeds: sibling shards must not be clones
        // of each other, or a data-dependent bug fires in lockstep.
        sc.seed = spec.seed + 0x100003ULL * (s + 1);
        sc.recoverThreads = spec.recoverThreads;
        sc.warmupTx = spec.warmupTx;
        sc.injectAckBeforeDurable =
            spec.injectAckBeforeDurable && s == 0;
        shards.push_back(std::make_unique<FleetShard>(s, sc));
        shards.back()->warmup();
    }

    // ---- Generate the open-loop arrival schedule ----
    ArrivalConfig ac;
    ac.seed = spec.seed ^ 0xa55a5aa5ULL;
    ac.meanInterarrival =
        std::max<Tick>(1, nsToTicks(spec.meanInterarrivalNs));
    ac.thinkTicks = nsToTicks(spec.thinkNs);
    ac.tenants = std::max(1u, spec.tenants);
    ac.tenantTheta = spec.tenantTheta;
    ac.connections = std::max(1u, spec.connections);
    ac.churnProb = spec.churnProb;
    ArrivalGenerator gen(ac);
    std::vector<Arrival> arrivals;
    arrivals.reserve(spec.requests);
    for (std::uint64_t i = 0; i < spec.requests; ++i)
        arrivals.push_back(gen.next());
    std::sort(arrivals.begin(), arrivals.end(),
              [](const Arrival &a, const Arrival &b) {
                  if (a.at != b.at)
                      return a.at < b.at;
                  return a.seq < b.seq;
              });

    // ---- Expand the chaos schedule over the traffic horizon ----
    const Tick horizon =
        arrivals.empty() ? 0 : arrivals.back().at + 1;
    ChaosTuning tuning;
    tuning.eventsPerShard = spec.chaosEventsPerShard;
    tuning.faultProb = spec.faultProb;
    std::vector<ChaosEvent> chaos = expandChaosProfile(
        spec.chaosProfile, spec.shards, horizon, spec.seed, tuning);
    if (spec.injectAckBeforeDurable) {
        // The self-test needs crashes on the buggy shard to expose the
        // non-durable ack. Force several across the traffic window —
        // whether a specific crash tears the undurable commit record
        // depends on what was in flight, so one shot is not enough.
        for (unsigned k = 1; k <= 3; ++k) {
            ChaosEvent ev;
            ev.at = horizon * k / 4;
            ev.shard = 0;
            ev.kind = ChaosKind::Crash;
            ev.salt = 10'000 + k;
            chaos.push_back(ev);
        }
        std::sort(chaos.begin(), chaos.end(),
                  [](const ChaosEvent &a, const ChaosEvent &b) {
                      if (a.at != b.at)
                          return a.at < b.at;
                      if (a.shard != b.shard)
                          return a.shard < b.shard;
                      return a.salt < b.salt;
                  });
    }

    // ---- Client state ----
    RetryPolicy policy;
    policy.maxAttempts = std::max(1u, spec.maxAttempts);
    policy.backoffBase = std::max<Tick>(1, nsToTicks(spec.backoffBaseNs));
    policy.deadlineTicks = nsToTicks(spec.deadlineNs);
    Rng retryRng(spec.seed ^ 0xb0ffb0ffULL);

    // Per-shard, per-core backlog horizon in fleet ticks: the earliest
    // tick a new request on that core could start. Decoupled from the
    // Systems' internal clocks — a System advances core time only when
    // it actually serves.
    std::vector<std::vector<Tick>> busyUntil(
        spec.shards, std::vector<Tick>(spec.coresPerShard, 0));

    // Cumulative client-activity gauges per shard, fed into each
    // shard's controller so its epoch sampler captures the
    // degradation timeline alongside the capacity gauges.
    std::vector<ClientActivity> act(spec.shards);

    std::size_t chaosIdx = 0;
    std::uint64_t seq = 0;

    // Apply chaos events the fleet clock has passed. Events land
    // between requests (a documented approximation — the schedule
    // stays deterministic and every event still fires mid-traffic).
    auto applyChaosUpTo = [&](Tick now) {
        while (chaosIdx < chaos.size() && chaos[chaosIdx].at <= now) {
            const ChaosEvent &ev = chaos[chaosIdx++];
            FleetShard &sh = *shards[ev.shard];
            switch (ev.kind) {
              case ChaosKind::Crash:
                if (!sh.chaosCrash(ev.at, &res.detail))
                    res.violated = true;
                // The crash wiped the queue's context; nothing can
                // start before the recovery completes.
                for (Tick &b : busyUntil[ev.shard])
                    b = std::max(b, sh.unavailableUntil());
                break;
              case ChaosKind::Stall:
                sh.chaosStall(ev.at, ev.durationTicks);
                break;
              case ChaosKind::FaultRamp:
                sh.chaosFaultRamp(ev.faultProb, ev.salt);
                break;
            }
            if (progress)
                progress("chaos " +
                         std::string(chaosKindName(ev.kind)) +
                         " shard " + std::to_string(ev.shard) + " @" +
                         std::to_string(ev.at));
            if (res.violated)
                return;
        }
    };

    // ---- Dispatch loop ----
    const std::uint64_t tenth =
        std::max<std::uint64_t>(1, arrivals.size() / 10);
    for (std::size_t i = 0; i < arrivals.size() && !res.violated;
         ++i) {
        const Arrival &a = arrivals[i];
        if (progress && i % tenth == 0)
            progress("request " + std::to_string(i) + "/" +
                     std::to_string(arrivals.size()));
        applyChaosUpTo(a.at);
        if (res.violated)
            break;

        const unsigned s =
            static_cast<unsigned>(mix64(a.tenant) % spec.shards);
        const CoreId core = static_cast<CoreId>(
            mix64(a.tenant ^ 0x9e3779b97f4a7c15ULL) %
            spec.coresPerShard);
        FleetShard &sh = *shards[s];

        Tick t = a.at;
        unsigned attempts = 0;
        ClientOutcome outcome = ClientOutcome::Rejected;

        auto backoffOrGiveUp = [&](Tick floorTick,
                                   ClientOutcome onExhaust) {
            ++attempts;
            if (attempts >= policy.maxAttempts) {
                outcome = onExhaust;
                return false;
            }
            const Tick b =
                retryBackoffTicks(policy, attempts - 1, retryRng);
            ++act[s].retryAttempts;
            act[s].backoffTicks += b;
            t = std::max(floorTick, t + b);
            return true;
        };

        for (;;) {
            if (pastDeadline(policy, a.at, t)) {
                outcome = ClientOutcome::TxTimeout;
                ++act[s].deadlineMisses;
                break;
            }
            if (!sh.availableAt(t)) {
                if (!backoffOrGiveUp(sh.unavailableUntil(),
                                     ClientOutcome::Rejected))
                    break;
                continue;
            }
            const Tick start = std::max(
                {t, busyUntil[s][core], sh.unavailableUntil()});
            if (!sh.admit(start - t)) {
                ++act[s].shedAdmissions;
                if (!backoffOrGiveUp(t, ClientOutcome::Shed))
                    break;
                continue;
            }

            // Feed the cumulative client gauges in before serving so
            // the shard's next epoch sample reflects them.
            sh.noteClientActivity(act[s]);
            const ServeResult sr = sh.serve(core, seq++, &res.detail);
            if (!res.detail.empty()) {
                res.violated = true;
                break;
            }
            const Tick done = start + sr.serviceTicks;
            busyUntil[s][core] = done;

            if (sr.status == ServeStatus::Acked) {
                sh.recordLatency(done - a.at);
                if (pastDeadline(policy, a.at, done)) {
                    // The commit is durable and acked — late, not
                    // lost. Count the miss; the outcome stays Acked.
                    ++act[s].deadlineMisses;
                }
                outcome = ClientOutcome::Acked;
                break;
            }
            if (sr.status == ServeStatus::RejectedMidTx) {
                // The unwind crash+recovered the shard: unavailable
                // until recovery completes, then the client retries.
                sh.beginUnavailability(done, sr.recoveryTicks);
                for (Tick &b : busyUntil[s])
                    b = std::max(b, sh.unavailableUntil());
                if (!backoffOrGiveUp(sh.unavailableUntil(),
                                     ClientOutcome::Rejected))
                    break;
                continue;
            }
            // Admission-time TxRejected (capacity degraded).
            if (!backoffOrGiveUp(done, ClientOutcome::Rejected))
                break;
        }

        if (res.violated)
            break;
        switch (outcome) {
          case ClientOutcome::Acked:
            ++res.acked;
            break;
          case ClientOutcome::Rejected:
            ++res.rejected;
            break;
          case ClientOutcome::TxTimeout:
            ++res.timedOut;
            break;
          case ClientOutcome::Shed:
            ++res.shed;
            break;
        }
    }

    // ---- Drain + probe phase ----
    if (!res.violated) {
        if (progress)
            progress("drain + probe");
        // Fire any chaos events still pending, then let every queue
        // and unavailability window drain.
        applyChaosUpTo(kNeverTick - 1);
    }
    if (!res.violated) {
        for (unsigned s = 0; s < spec.shards; ++s) {
            FleetShard &sh = *shards[s];
            // A drained shard sees zero backlog; the hysteresis gate
            // must re-open no matter how degraded the shard got.
            sh.admit(0);
            if (!sh.admitting()) {
                res.violated = true;
                res.detail = "shard " + std::to_string(s) +
                             " not re-admitted after drain";
                break;
            }
            // Probe: every core serves one more transaction, proving
            // the shard is live after all its recoveries.
            for (CoreId c = 0; c < spec.coresPerShard && !res.violated;
                 ++c) {
                const ServeResult sr = sh.serve(c, seq++, &res.detail);
                if (!res.detail.empty()) {
                    res.violated = true;
                    break;
                }
                if (sr.status == ServeStatus::RejectedMidTx) {
                    res.violated = true;
                    res.detail = "shard " + std::to_string(s) +
                                 " probe transaction unwound after "
                                 "drain";
                    break;
                }
            }
            if (res.violated)
                break;
            if (!sh.oracle("end of run", &res.detail)) {
                res.violated = true;
                break;
            }
        }
    }

    // ---- Reports (always emitted, also for violating runs) ----
    Histogram fleetH;
    for (unsigned s = 0; s < spec.shards; ++s) {
        FleetShard &sh = *shards[s];
        sh.noteClientActivity(act[s]);
        FleetShardReport rep;
        rep.shard = s;
        rep.counters = sh.counters();
        rep.retryAttempts = act[s].retryAttempts;
        rep.backoffTicks = act[s].backoffTicks;
        rep.deadlineMisses = act[s].deadlineMisses;
        rep.shedAdmissions = act[s].shedAdmissions;
        rep.admittingAtEnd = sh.admitting();
        const ControllerGauges g = sh.system().controller().gauges();
        rep.retiredUnits = g.retiredUnits;
        rep.degradedFraction = g.degradedFraction;
        rep.latency = summarizeLatency(sh.latency());
        fleetH.merge(sh.latency());

        res.retryAttempts += rep.retryAttempts;
        res.backoffTicks += rep.backoffTicks;
        res.deadlineMisses += rep.deadlineMisses;
        res.shedAdmissions += rep.shedAdmissions;
        res.recoveries += rep.counters.recoveries;
        res.chaosCrashes += rep.counters.chaosCrashes;
        res.stallWindows += rep.counters.stallWindows;
        res.faultRamps += rep.counters.faultRamps;
        res.shards.push_back(rep);
    }
    res.latency = summarizeLatency(fleetH);
    return res;
}

FleetSpec
shrinkFleet(const FleetSpec &failing, std::string *detail,
            const FleetProgress &progress)
{
    FleetSpec best = failing;
    int budget = 24;

    auto attempt = [&](const FleetSpec &cand) -> bool {
        if (budget <= 0)
            return false;
        --budget;
        const FleetResult r = runFleet(cand, progress);
        if (!r.violated)
            return false;
        best = cand;
        if (detail)
            *detail = r.detail;
        return true;
    };

    bool improved = true;
    while (improved && budget > 0) {
        improved = false;

        if (best.requests > 16) {
            FleetSpec cand = best;
            cand.requests = std::max<std::uint64_t>(16,
                                                    cand.requests / 2);
            if (attempt(cand)) {
                improved = true;
                continue;
            }
        }

        if (best.shards > 1) {
            FleetSpec cand = best;
            cand.shards = std::max(1u, cand.shards / 2);
            if (attempt(cand)) {
                improved = true;
                continue;
            }
        }

        if (best.chaosEventsPerShard > 0) {
            FleetSpec cand = best;
            cand.chaosEventsPerShard /= 2;
            if (attempt(cand)) {
                improved = true;
                continue;
            }
        }

        if (best.warmupTx > 0) {
            FleetSpec cand = best;
            cand.warmupTx /= 2;
            if (attempt(cand)) {
                improved = true;
                continue;
            }
        }
    }
    return best;
}

} // namespace hoopnvm
