#include "fleet/arrivals.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace hoopnvm
{

ArrivalGenerator::ArrivalGenerator(const ArrivalConfig &cfg)
    : cfg_(cfg),
      rng_(cfg.seed ^ 0xa11cafe5ULL),
      tenantZipf_(std::max(1u, cfg.tenants), cfg.tenantTheta,
                  cfg.seed ^ 0x7e9a97ULL)
{
    HOOP_ASSERT(cfg_.connections > 0, "arrival config needs >= 1 "
                "connection");
    HOOP_ASSERT(cfg_.meanInterarrival > 0, "arrival config needs a "
                "non-zero mean interarrival");
    connId_.resize(cfg_.connections);
    connReadyAt_.assign(cfg_.connections, 0);
    for (unsigned s = 0; s < cfg_.connections; ++s)
        connId_[s] = nextConnId_++;
}

Arrival
ArrivalGenerator::next()
{
    // Exponential interarrival: -ln(1 - U) * mean, floored at one tick
    // so the clock strictly advances and the stream cannot stall.
    const double u = rng_.nextDouble();
    const double dt =
        -std::log(1.0 - u) * static_cast<double>(cfg_.meanInterarrival);
    clock_ += std::max<Tick>(1, static_cast<Tick>(dt));

    const unsigned slot =
        static_cast<unsigned>(rng_.nextBounded(cfg_.connections));
    if (rng_.nextBool(cfg_.churnProb)) {
        // The connection in this slot dropped; its replacement starts
        // fresh with no think-time debt from the predecessor.
        connId_[slot] = nextConnId_++;
        connReadyAt_[slot] = clock_;
    }

    Arrival a;
    // Think time: the connection cannot issue before its window ends,
    // even if the Poisson process already ticked.
    a.at = std::max(clock_, connReadyAt_[slot]);
    a.tenant = tenantZipf_.next();
    a.connection = connId_[slot];
    a.seq = seq_++;
    connReadyAt_[slot] = a.at + cfg_.thinkTicks;
    return a;
}

} // namespace hoopnvm
