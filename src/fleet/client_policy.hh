/**
 * @file
 * Client-side transaction-outcome policy shared by the soak harness
 * and the fleet front-end.
 *
 * Both drivers face the same question when a shard throws TxRejected:
 * was this an admission-time refusal (no transactional state exists —
 * the client may simply retry later), or a mid-transaction unwind (the
 * rejected transaction has partial out-of-place/logged effects with no
 * commit record, so the shard power-cycles and recovers onto the
 * survivor state before serving again)? The classification and the
 * crash+recover dance used to live inline in src/check/soak.cc; the
 * fleet client needs exactly the same behaviour, so it lives here once.
 *
 * On top sits the fleet's retry policy: bounded attempts, exponential
 * backoff with seeded jitter, and a per-request deadline that converts
 * an exhausted budget into a structured ClientOutcome::TxTimeout —
 * never an abort, never an unbounded spin.
 */

#ifndef HOOPNVM_FLEET_CLIENT_POLICY_HH
#define HOOPNVM_FLEET_CLIENT_POLICY_HH

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/errors.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

namespace hoopnvm
{

/** What a client stack does about one TxRejected. */
enum class RejectAction
{
    /**
     * Admission-time refusal: txBegin was rejected before any
     * transactional state existed. The transaction was simply not
     * admitted — skip it (soak) or retry it after backoff (fleet).
     */
    AdmissionSkip,

    /**
     * Mid-transaction unwind: the transaction has partial effects but
     * no commit record. Power-cycle + recovery discards them exactly
     * like any other uncommitted transaction; the shard then serves
     * again from the survivor state.
     */
    CrashRecover,
};

/** Classify @p rj per the admission/mid-tx contract above. */
inline RejectAction
classifyReject(const TxRejected &rj)
{
    return rj.cause == RejectCause::CapacityDegraded
               ? RejectAction::AdmissionSkip
               : RejectAction::CrashRecover;
}

/** What handleClientReject() actually did. */
struct RejectResolution
{
    RejectAction action = RejectAction::AdmissionSkip;

    /** Modelled recovery duration (CrashRecover only); the fleet
     *  front-end turns it into an unavailability window. */
    Tick recoveryTicks = 0;
};

/**
 * Handle @p rj against @p sys the way a real client stack does:
 * admission rejects drop only the rejected core's staged shadow
 * (nothing was admitted), mid-transaction rejects crash + recover and
 * drop every core's staged shadow (the unwind discarded any commit
 * that had not yet become durable — there is none, but the staging
 * must not leak into the next verify()). Callers count the resolution
 * and, after a CrashRecover, re-check their oracles.
 */
inline RejectResolution
handleClientReject(const TxRejected &rj, System &sys,
                   std::vector<std::unique_ptr<Workload>> &wls,
                   CoreId rejectingCore, unsigned recoverThreads)
{
    RejectResolution res;
    res.action = classifyReject(rj);
    if (res.action == RejectAction::AdmissionSkip) {
        wls[rejectingCore]->dropPendingShadow();
        return res;
    }
    sys.crash();
    res.recoveryTicks = sys.recover(recoverThreads);
    for (auto &wl : wls)
        wl->dropPendingShadow();
    return res;
}

/**
 * Bounded client retry policy: exponential backoff with seeded jitter
 * under a per-request deadline. All times are simulated ticks.
 */
struct RetryPolicy
{
    /** Total tries per request, including the first. */
    unsigned maxAttempts = 6;

    /** Backoff before the first retry. */
    Tick backoffBase = nsToTicks(2'000);

    /** Per-retry backoff growth factor. */
    double backoffMultiplier = 2.0;

    /**
     * Uniform jitter amplitude as a fraction of the nominal backoff:
     * the drawn backoff is nominal * (1 + U[-j, +j)). Decorrelates
     * retry storms across clients while staying fully seeded.
     */
    double jitterFraction = 0.5;

    /**
     * Per-request deadline measured from first arrival; a request
     * still unacknowledged past it resolves to ClientOutcome::
     * TxTimeout. Zero disables the deadline.
     */
    Tick deadlineTicks = nsToTicks(20'000'000);
};

/**
 * Backoff before retry number @p retry (0 = first retry), jittered
 * from @p rng. Deterministic for a given RNG stream position.
 */
inline Tick
retryBackoffTicks(const RetryPolicy &p, unsigned retry, Rng &rng)
{
    // Cap the exponent so a pathological retry count cannot overflow
    // the double; the deadline bounds real waits long before this.
    double nominal = static_cast<double>(p.backoffBase);
    nominal *= std::pow(p.backoffMultiplier,
                        static_cast<double>(std::min(retry, 24u)));
    const double jitter =
        1.0 + p.jitterFraction * (2.0 * rng.nextDouble() - 1.0);
    const double ticks = std::max(1.0, nominal * jitter);
    return static_cast<Tick>(ticks);
}

/** True when @p now has passed @p p's deadline for @p arrival. */
inline bool
pastDeadline(const RetryPolicy &p, Tick arrival, Tick now)
{
    return p.deadlineTicks != 0 && now > arrival + p.deadlineTicks;
}

} // namespace hoopnvm

#endif // HOOPNVM_FLEET_CLIENT_POLICY_HH
