#include "fleet/chaos.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace hoopnvm
{

const char *
chaosKindName(ChaosKind k)
{
    switch (k) {
      case ChaosKind::Crash:
        return "crash";
      case ChaosKind::Stall:
        return "stall";
      case ChaosKind::FaultRamp:
        return "fault_ramp";
    }
    return "?";
}

bool
chaosProfileKnown(const std::string &profile)
{
    return profile == "none" || profile == "crashes" ||
           profile == "stalls" || profile == "faults" ||
           profile == "mixed";
}

std::vector<ChaosEvent>
expandChaosProfile(const std::string &profile, unsigned shards,
                   Tick horizon, std::uint64_t seed,
                   const ChaosTuning &tuning)
{
    HOOP_ASSERT(chaosProfileKnown(profile),
                "unknown chaos profile \"%s\"", profile.c_str());
    std::vector<ChaosEvent> events;
    if (profile == "none" || shards == 0 || horizon == 0 ||
        tuning.eventsPerShard == 0)
        return events;

    // Keep the first and last eighth of the horizon quiet: warmup
    // settles before the first adversity, and the final drain + probe
    // phase runs on a chaos-free fleet so "every shard re-admitted"
    // is a fair end-of-run oracle.
    const Tick lo = horizon / 8;
    const Tick hi = horizon - horizon / 8;
    Rng rng(seed ^ 0xc4a05c4edULL);

    unsigned salt = 0;
    for (unsigned s = 0; s < shards; ++s) {
        for (unsigned e = 0; e < tuning.eventsPerShard; ++e, ++salt) {
            ChaosEvent ev;
            ev.shard = s;
            ev.at = lo + rng.nextBounded(std::max<Tick>(1, hi - lo));
            ev.salt = salt;
            if (profile == "crashes") {
                ev.kind = ChaosKind::Crash;
            } else if (profile == "stalls") {
                ev.kind = ChaosKind::Stall;
            } else if (profile == "faults") {
                ev.kind = ChaosKind::FaultRamp;
            } else { // mixed: rotate kinds across (shard, event)
                switch (salt % 3) {
                  case 0:
                    ev.kind = ChaosKind::Crash;
                    break;
                  case 1:
                    ev.kind = ChaosKind::Stall;
                    break;
                  default:
                    ev.kind = ChaosKind::FaultRamp;
                    break;
                }
            }
            if (ev.kind == ChaosKind::Stall) {
                // Windows between 1/64 and 1/16 of the horizon: long
                // enough to force queueing and retries, short enough
                // that the run always outlives the stall.
                const Tick base = std::max<Tick>(1, horizon / 64);
                ev.durationTicks = base + rng.nextBounded(3 * base + 1);
            }
            if (ev.kind == ChaosKind::FaultRamp) {
                // Escalate later ramps on the same shard so repeated
                // events push the shard toward capacity degradation.
                ev.faultProb =
                    tuning.faultProb * static_cast<double>(e + 1);
            }
            events.push_back(ev);
        }
    }

    std::sort(events.begin(), events.end(),
              [](const ChaosEvent &a, const ChaosEvent &b) {
                  if (a.at != b.at)
                      return a.at < b.at;
                  if (a.shard != b.shard)
                      return a.shard < b.shard;
                  return a.salt < b.salt;
              });
    return events;
}

} // namespace hoopnvm
