/**
 * @file
 * Log-bucketed latency histogram (HdrHistogram-style).
 *
 * The simulator's scalar counters answer "how much"; the histograms
 * answer "how is it distributed" — the paper's evaluation reasons about
 * critical-path latency *tails* (Fig. 7b) and GC-induced pauses
 * (Fig. 10), which a mean conceals. Values are recorded in their
 * natural integer unit (usually ticks); buckets are exact below 16 and
 * grow geometrically above with 16 sub-buckets per octave, bounding
 * the relative quantile error at 1/16 (~6%) while keeping the whole
 * histogram under 8 KB.
 *
 * Histograms are mergeable: counts are plain integers, so merge() is
 * associative and commutative and a merged histogram reports exactly
 * the same quantiles regardless of merge order — the property the
 * parallel bench harness needs for bit-identical -jN results.
 */

#ifndef HOOPNVM_STATS_HISTOGRAM_HH
#define HOOPNVM_STATS_HISTOGRAM_HH

#include <array>
#include <cstdint>

namespace hoopnvm
{

/** Mergeable log-bucketed histogram of unsigned 64-bit samples. */
class Histogram
{
  public:
    /** Sub-buckets per octave; values below this are bucketed exactly. */
    static constexpr unsigned kSubBuckets = 16;

    /** log2(kSubBuckets). */
    static constexpr unsigned kSubBucketBits = 4;

    /** Total bucket count (indexes 0 .. kBuckets-1 cover all of u64). */
    static constexpr std::size_t kBuckets =
        kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

    Histogram() { reset(); }

    /** Record one sample. */
    void record(std::uint64_t value);

    /** Record @p n identical samples. */
    void recordN(std::uint64_t value, std::uint64_t n);

    /** Fold @p other into this histogram (associative, commutative). */
    void merge(const Histogram &other);

    /** Forget every sample. */
    void reset();

    std::uint64_t count() const { return count_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    std::uint64_t sum() const { return sum_; }

    /** Arithmetic mean of all samples (0 when empty). */
    double mean() const;

    /**
     * Quantile @p q in [0, 1], linearly interpolated within the bucket
     * holding the target rank and clamped to [min(), max()]. With
     * width-1 buckets (values < kSubBuckets, or any set of identical
     * samples) the result is exact.
     *
     * Saturation rule: when the target rank is the last sample —
     * i.e. ceil(q * count) >= count, equivalently count < 1/(1-q) —
     * the nearest-rank sample *is* the maximum, so the exact max() is
     * returned instead of interpolating inside the top occupied
     * bucket. A p999 of a 100-sample histogram is therefore the true
     * max, not a point ~6% into the max bucket. quantileSaturated()
     * reports when this rule applied so dumps can mark the value as
     * an under-populated tail rather than a resolved quantile.
     */
    double quantile(double q) const;

    /**
     * True when quantile(q) over @p count samples falls under the
     * saturation rule above (also true for empty histograms). Static:
     * callers often test a summary's recorded count without the
     * histogram at hand.
     */
    static bool quantileSaturated(std::uint64_t count, double q);

    /** Bucket index holding @p value. */
    static std::size_t bucketIndex(std::uint64_t value);

    /** Inclusive lower bound of bucket @p index. */
    static std::uint64_t bucketLow(std::size_t index);

    /** Exclusive upper bound of bucket @p index. */
    static std::uint64_t bucketHigh(std::size_t index);

    /** Raw count of bucket @p index (tests). */
    std::uint64_t bucketCount(std::size_t index) const
    {
        return buckets_[index];
    }

  private:
    std::array<std::uint64_t, kBuckets> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace hoopnvm

#endif // HOOPNVM_STATS_HISTOGRAM_HH
