/**
 * @file
 * Chrome trace-event tracer (Perfetto / chrome://tracing loadable).
 *
 * Each System owns a TraceBuffer; components append complete ("ph":"X")
 * spans for transactions, GC steps, migrations and recovery phases with
 * timestamps taken from the simulated clock. Buffers are single-threaded
 * (one per simulated System, matching the bench harness's
 * one-cell-per-thread model) and render events to JSON eagerly so the
 * global sink only concatenates strings under a mutex.
 *
 * Tracing is off unless the HOOP_TRACE environment variable names an
 * output file (or a tool calls Trace::setPath()). When off, no
 * TraceBuffer exists and the hot-path check is a single null-pointer
 * test — zero allocation, zero formatting.
 *
 * Timestamps: the trace-event format wants microseconds; the simulator
 * clock is ticks (integer picoseconds). Events are emitted with
 * fractional-microsecond precision (3 decimals = nanoseconds) so short
 * spans stay visible.
 */

#ifndef HOOPNVM_STATS_TRACE_HH
#define HOOPNVM_STATS_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace hoopnvm
{

/** Per-System collector of Chrome trace events. */
class TraceBuffer
{
  public:
    /**
     * @param processName Label shown for this System in the trace UI
     *                    (e.g. "hoop/updates-heavy").
     */
    explicit TraceBuffer(std::string processName);
    ~TraceBuffer();

    TraceBuffer(const TraceBuffer &) = delete;
    TraceBuffer &operator=(const TraceBuffer &) = delete;

    /**
     * Append a complete span.
     *
     * @param name  Event name ("tx", "gc", "recovery.scan", ...).
     * @param cat   Category ("tx", "gc", "recovery", "migration").
     * @param tid   Simulated thread id (core id, or a synthetic lane).
     * @param start Span start, in ticks.
     * @param end   Span end, in ticks (clamped to >= start).
     */
    void span(const char *name, const char *cat, unsigned tid,
              Tick start, Tick end);

    /** Append an instant event at @p at ticks. */
    void instant(const char *name, const char *cat, unsigned tid,
                 Tick at);

    /** Append a counter event (one numeric series) at @p at ticks. */
    void counter(const char *name, Tick at, std::uint64_t value);

    /** Flush this buffer's events into the global sink. */
    void flush();

    std::size_t eventCount() const { return events_.size(); }

  private:
    std::string processName_;
    int pid_;
    std::vector<std::string> events_;
};

/** Process-wide trace sink. */
namespace Trace
{

/** True when a trace file is armed (env HOOP_TRACE or setPath()). */
bool enabled();

/** Arm (or, with an empty path, disarm) tracing programmatically. */
void setPath(const std::string &path);

/** Path the trace will be written to, empty when disabled. */
std::string path();

/**
 * Write all flushed events as one Chrome trace JSON object. Called
 * automatically at process exit; tools may call it earlier. Returns
 * false if the file could not be written. Safe to call when disabled
 * (no-op, returns true).
 */
bool write();

/** Drop all flushed events (tests). */
void clearForTest();

} // namespace Trace

} // namespace hoopnvm

#endif // HOOPNVM_STATS_TRACE_HH
