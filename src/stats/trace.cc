#include "stats/trace.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "common/json.hh"

namespace hoopnvm
{

namespace
{

struct Sink
{
    std::mutex mu;
    std::string path;
    bool pathSet = false; // setPath() overrides the environment
    std::vector<std::string> events;
    std::atomic<int> nextPid{1};
    bool atexitArmed = false;
};

Sink &
sink()
{
    static Sink s;
    return s;
}

std::string
envPath()
{
    // lint: nondet-api-ok (HOOP_TRACE selects the trace output path; it never feeds simulated state)
    const char *p = std::getenv("HOOP_TRACE");
    return p ? std::string(p) : std::string();
}

void
appendJsonString(std::string &out, const std::string &s)
{
    out += jsonQuote(s);
}

void
appendMicros(std::string &out, Tick t)
{
    // ticks are picoseconds; trace "ts" is microseconds. Render with
    // six decimals so every distinct tick is a distinct timestamp.
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(t / 1000000),
                  static_cast<unsigned long long>(t % 1000000));
    out += buf;
}

void
atexitWrite()
{
    Trace::write();
}

} // namespace

TraceBuffer::TraceBuffer(std::string processName)
    : processName_(std::move(processName)),
      pid_(sink().nextPid.fetch_add(1, std::memory_order_relaxed))
{
    // Name the process in the trace UI.
    std::string e = "{\"ph\":\"M\",\"pid\":";
    e += std::to_string(pid_);
    e += ",\"name\":\"process_name\",\"args\":{\"name\":";
    appendJsonString(e, processName_);
    e += "}}";
    events_.push_back(std::move(e));
}

TraceBuffer::~TraceBuffer()
{
    flush();
}

void
TraceBuffer::span(const char *name, const char *cat, unsigned tid,
                  Tick start, Tick end)
{
    if (end < start)
        end = start;
    std::string e = "{\"ph\":\"X\",\"name\":\"";
    e += name;
    e += "\",\"cat\":\"";
    e += cat;
    e += "\",\"pid\":";
    e += std::to_string(pid_);
    e += ",\"tid\":";
    e += std::to_string(tid);
    e += ",\"ts\":";
    appendMicros(e, start);
    e += ",\"dur\":";
    appendMicros(e, end - start);
    e += '}';
    events_.push_back(std::move(e));
}

void
TraceBuffer::instant(const char *name, const char *cat, unsigned tid,
                     Tick at)
{
    std::string e = "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"";
    e += name;
    e += "\",\"cat\":\"";
    e += cat;
    e += "\",\"pid\":";
    e += std::to_string(pid_);
    e += ",\"tid\":";
    e += std::to_string(tid);
    e += ",\"ts\":";
    appendMicros(e, at);
    e += '}';
    events_.push_back(std::move(e));
}

void
TraceBuffer::counter(const char *name, Tick at, std::uint64_t value)
{
    std::string e = "{\"ph\":\"C\",\"name\":\"";
    e += name;
    e += "\",\"pid\":";
    e += std::to_string(pid_);
    e += ",\"ts\":";
    appendMicros(e, at);
    e += ",\"args\":{\"value\":";
    e += std::to_string(value);
    e += "}}";
    events_.push_back(std::move(e));
}

void
TraceBuffer::flush()
{
    if (events_.empty())
        return;
    Sink &s = sink();
    std::lock_guard<std::mutex> lk(s.mu);
    for (auto &e : events_)
        s.events.push_back(std::move(e));
    events_.clear();
}

namespace Trace
{

bool
enabled()
{
    return !path().empty();
}

void
setPath(const std::string &p)
{
    Sink &s = sink();
    std::lock_guard<std::mutex> lk(s.mu);
    s.path = p;
    s.pathSet = true;
    if (!p.empty() && !s.atexitArmed) {
        s.atexitArmed = true;
        std::atexit(atexitWrite);
    }
}

std::string
path()
{
    Sink &s = sink();
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.pathSet)
        return s.path;
    const std::string p = envPath();
    if (!p.empty() && !s.atexitArmed) {
        s.atexitArmed = true;
        std::atexit(atexitWrite);
    }
    return p;
}

bool
write()
{
    const std::string p = path();
    if (p.empty())
        return true;
    Sink &s = sink();
    std::lock_guard<std::mutex> lk(s.mu);
    std::FILE *f = std::fopen(p.c_str(), "w");
    if (!f)
        return false;
    std::fputs("{\"traceEvents\":[", f);
    for (std::size_t i = 0; i < s.events.size(); ++i) {
        if (i)
            std::fputc(',', f);
        std::fputc('\n', f);
        std::fputs(s.events[i].c_str(), f);
    }
    std::fputs("\n]}\n", f);
    const bool ok = std::fclose(f) == 0;
    return ok;
}

void
clearForTest()
{
    Sink &s = sink();
    std::lock_guard<std::mutex> lk(s.mu);
    s.events.clear();
}

} // namespace Trace

} // namespace hoopnvm
