/**
 * @file
 * Plain-text table printer used by the benchmark harness.
 *
 * Each bench binary regenerates one of the paper's figures or tables as
 * rows of numbers; TablePrinter renders them with aligned columns so the
 * output can be eyeballed against the paper and diffed run-to-run.
 */

#ifndef HOOPNVM_STATS_TABLE_HH
#define HOOPNVM_STATS_TABLE_HH

#include <string>
#include <vector>

namespace hoopnvm
{

/** Collects rows of string cells and prints them column-aligned. */
class TablePrinter
{
  public:
    /** @param title Caption printed above the table. */
    explicit TablePrinter(std::string title);

    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row (cells may be fewer than header columns). */
    void addRow(std::vector<std::string> cells);

    /** Render the whole table. */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

    /** Format a double with @p precision fractional digits. */
    static std::string num(double v, int precision = 3);

  private:
    std::string title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace hoopnvm

#endif // HOOPNVM_STATS_TABLE_HH
