#include "stats/histogram.hh"

#include <algorithm>
#include <bit>
#include <cmath>

namespace hoopnvm
{

std::size_t
Histogram::bucketIndex(std::uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<std::size_t>(value);
    const unsigned octave = std::bit_width(value) - 1; // floor(log2)
    const unsigned shift = octave - kSubBucketBits;
    const std::uint64_t sub = (value >> shift) - kSubBuckets;
    return kSubBuckets +
           static_cast<std::size_t>(octave - kSubBucketBits) *
               kSubBuckets +
           static_cast<std::size_t>(sub);
}

std::uint64_t
Histogram::bucketLow(std::size_t index)
{
    if (index < kSubBuckets)
        return index;
    const std::size_t rel = index - kSubBuckets;
    const unsigned octave =
        kSubBucketBits + static_cast<unsigned>(rel / kSubBuckets);
    const std::uint64_t sub = rel % kSubBuckets;
    return (kSubBuckets + sub) << (octave - kSubBucketBits);
}

std::uint64_t
Histogram::bucketHigh(std::size_t index)
{
    if (index < kSubBuckets)
        return index + 1;
    const std::size_t rel = index - kSubBuckets;
    const unsigned octave =
        kSubBucketBits + static_cast<unsigned>(rel / kSubBuckets);
    return bucketLow(index) +
           (std::uint64_t{1} << (octave - kSubBucketBits));
}

void
Histogram::record(std::uint64_t value)
{
    recordN(value, 1);
}

void
Histogram::recordN(std::uint64_t value, std::uint64_t n)
{
    if (n == 0)
        return;
    buckets_[bucketIndex(value)] += n;
    if (count_ == 0 || value < min_)
        min_ = value;
    if (value > max_)
        max_ = value;
    count_ += n;
    sum_ += value * n;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    for (std::size_t i = 0; i < kBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    if (count_ == 0 || other.min_ < min_)
        min_ = other.min_;
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Histogram::reset()
{
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

double
Histogram::mean() const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(count_);
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Target rank, 1-based: the smallest sample index covering q of
    // the distribution (nearest-rank), interpolated within its bucket.
    const std::uint64_t target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(count_))));
    // Saturated tail: the target rank is the last sample, whose exact
    // value the histogram tracks as max_. Return it directly instead
    // of interpolating inside the top occupied bucket — on small
    // populations (count < 1/(1-q)) the interpolation silently read a
    // point inside the max bucket, off by up to the ~6% bucket width.
    if (target >= count_)
        return static_cast<double>(max_);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        if (buckets_[i] == 0)
            continue;
        if (cum + buckets_[i] >= target) {
            const std::uint64_t lo = bucketLow(i);
            const std::uint64_t hi = bucketHigh(i);
            const double frac =
                (static_cast<double>(target - cum) - 0.5) /
                static_cast<double>(buckets_[i]);
            double v = static_cast<double>(lo) +
                       frac * static_cast<double>(hi - lo);
            v = std::min(v, static_cast<double>(max_));
            v = std::max(v, static_cast<double>(count_ ? min_ : 0));
            return v;
        }
        cum += buckets_[i];
    }
    return static_cast<double>(max_);
}

bool
Histogram::quantileSaturated(std::uint64_t count, double q)
{
    if (count == 0)
        return true;
    q = std::clamp(q, 0.0, 1.0);
    const std::uint64_t target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(count))));
    return target >= count;
}

} // namespace hoopnvm
