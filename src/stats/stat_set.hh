/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Every simulated component owns a StatSet and registers named counters
 * and histograms in it. The System aggregates the StatSets of all
 * components so benches can print any statistic by name without each
 * bench knowing the component internals.
 */

#ifndef HOOPNVM_STATS_STAT_SET_HH
#define HOOPNVM_STATS_STAT_SET_HH

#include <cstdint>
#include <map>
#include <string>

#include "stats/histogram.hh"

namespace hoopnvm
{

/** A monotonically increasing named counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    Counter &operator++() { ++value_; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** A set of named counters belonging to one component. */
class StatSet
{
  public:
    /** @param prefix Component name prepended to every counter name. */
    explicit StatSet(std::string prefix);

    /**
     * Get-or-create the counter named @p name. References stay valid
     * for the lifetime of the StatSet.
     */
    Counter &counter(const std::string &name);

    /** Value of counter @p name, or 0 if it was never created. */
    std::uint64_t value(const std::string &name) const;

    /**
     * Get-or-create the histogram named @p name. References stay valid
     * for the lifetime of the StatSet.
     */
    Histogram &histogram(const std::string &name);

    /** The histogram named @p name, or nullptr if never created. */
    const Histogram *findHistogram(const std::string &name) const;

    /**
     * Reset every counter and histogram to zero (used between
     * measurement phases).
     */
    void resetAll();

    /** Reset only the histograms (counters keep accumulating). */
    void resetHistograms();

    /** Render all counters and histogram summaries as text lines. */
    std::string dump() const;

    const std::string &prefix() const { return prefix_; }
    const std::map<std::string, Counter> &counters() const { return map; }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histMap;
    }

  private:
    std::string prefix_;
    std::map<std::string, Counter> map;
    std::map<std::string, Histogram> histMap;
};

} // namespace hoopnvm

#endif // HOOPNVM_STATS_STAT_SET_HH
