#include "stats/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace hoopnvm
{

TablePrinter::TablePrinter(std::string title_)
    : title(std::move(title_))
{
}

void
TablePrinter::setHeader(std::vector<std::string> cells)
{
    header = std::move(cells);
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::render() const
{
    // Compute per-column widths over header and all rows.
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header);
    for (const auto &r : rows)
        grow(r);

    std::ostringstream os;
    os << "== " << title << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << std::string(widths[i] - cells[i].size() + 2, ' ');
        }
        os << '\n';
    };
    if (!header.empty()) {
        emit(header);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows)
        emit(r);
    return os.str();
}

void
TablePrinter::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fputc('\n', stdout);
}

} // namespace hoopnvm
