#include "stats/stat_set.hh"

#include <sstream>

namespace hoopnvm
{

StatSet::StatSet(std::string prefix)
    : prefix_(std::move(prefix))
{
}

Counter &
StatSet::counter(const std::string &name)
{
    return map[name];
}

std::uint64_t
StatSet::value(const std::string &name) const
{
    auto it = map.find(name);
    return it == map.end() ? 0 : it->second.value();
}

Histogram &
StatSet::histogram(const std::string &name)
{
    return histMap[name];
}

const Histogram *
StatSet::findHistogram(const std::string &name) const
{
    auto it = histMap.find(name);
    return it == histMap.end() ? nullptr : &it->second;
}

void
StatSet::resetAll()
{
    for (auto &kv : map)
        kv.second.reset();
    resetHistograms();
}

void
StatSet::resetHistograms()
{
    for (auto &kv : histMap)
        kv.second.reset();
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &kv : map)
        os << prefix_ << '.' << kv.first << ' ' << kv.second.value()
           << '\n';
    for (const auto &kv : histMap) {
        const Histogram &h = kv.second;
        os << prefix_ << '.' << kv.first << " count " << h.count()
           << " p50 " << h.quantile(0.50) << " p95 " << h.quantile(0.95)
           << " p99 " << h.quantile(0.99) << " p999 "
           << h.quantile(0.999) << " max " << h.max() << '\n';
    }
    return os.str();
}

} // namespace hoopnvm
