#include "stats/stat_set.hh"

#include <sstream>

namespace hoopnvm
{

StatSet::StatSet(std::string prefix)
    : prefix_(std::move(prefix))
{
}

Counter &
StatSet::counter(const std::string &name)
{
    return map[name];
}

std::uint64_t
StatSet::value(const std::string &name) const
{
    auto it = map.find(name);
    return it == map.end() ? 0 : it->second.value();
}

void
StatSet::resetAll()
{
    for (auto &kv : map)
        kv.second.reset();
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &kv : map)
        os << prefix_ << '.' << kv.first << ' ' << kv.second.value()
           << '\n';
    return os.str();
}

} // namespace hoopnvm
