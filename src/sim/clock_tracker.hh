/**
 * @file
 * Incremental min/max tracking over a fixed set of per-core clocks.
 *
 * The engine needs two queries on every transaction boundary: the
 * slowest core (minClock() drives maintenance time and next-core
 * selection) and the fastest core (maxClock() stamps measurement
 * windows and crash instants). Scanning all cores is O(P) per query;
 * this tracker answers both in O(1) from a pair of tournament trees
 * and absorbs clock updates in O(1) by deferring tree repair to the
 * next query (a dirty list, repaired in O(log P) per dirty slot).
 *
 * Tie-breaking matters: argMin() returns the *lowest-indexed* slot
 * holding the minimum, matching the reference scan ("first core with a
 * strictly smaller clock wins"), so the workload driver picks the same
 * core in the same order as the scan it replaces —
 * clock_tracker_test.cc asserts this on randomized sequences.
 */

#ifndef HOOPNVM_SIM_CLOCK_TRACKER_HH
#define HOOPNVM_SIM_CLOCK_TRACKER_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace hoopnvm
{

/** Lazily-synced min/max tournament trees over @c n clock slots. */
class ClockTracker
{
  public:
    /** All @p n slots start at clock 0 and enabled. */
    explicit ClockTracker(std::size_t n)
        : n_(n), base_(leafBase(n)),
          minTree_(2 * base_, kNeverTick), maxTree_(2 * base_, 0),
          pendMin_(n, 0), pendMax_(n, 0), dirty_(n, 0)
    {
        for (std::size_t i = 0; i < n_; ++i)
            minTree_[base_ + i] = 0;
        for (std::size_t node = base_; node-- > 1;) {
            minTree_[node] =
                std::min(minTree_[2 * node], minTree_[2 * node + 1]);
        }
        dirtyList_.reserve(n_);
    }

    std::size_t size() const { return n_; }

    /** Record clock @p v for slot @p i; O(1), folded in on query. */
    void
    set(std::size_t i, Tick v)
    {
        pendMin_[i] = v;
        pendMax_[i] = v;
        markDirty(i);
    }

    /**
     * Remove slot @p i from both competitions (a finished core): it
     * can no longer win argMin()/min() and contributes 0 to max().
     */
    void
    disable(std::size_t i)
    {
        pendMin_[i] = kNeverTick;
        pendMax_[i] = 0;
        markDirty(i);
    }

    /** Smallest enabled clock (kNeverTick if all slots disabled). */
    Tick
    min() const
    {
        sync();
        return minTree_[1];
    }

    /** Largest enabled clock (0 if all slots disabled). */
    Tick
    max() const
    {
        sync();
        return maxTree_[1];
    }

    /** Lowest-indexed slot holding min(); only valid when one is
     *  enabled. */
    std::size_t
    argMin() const
    {
        sync();
        std::size_t node = 1;
        while (node < base_) {
            node = 2 * node;
            if (minTree_[node] > minTree_[node + 1])
                ++node;
        }
        return node - base_;
    }

  private:
    static std::size_t
    leafBase(std::size_t n)
    {
        std::size_t b = 1;
        while (b < n)
            b *= 2;
        return b;
    }

    void
    markDirty(std::size_t i)
    {
        if (!dirty_[i]) {
            dirty_[i] = 1;
            dirtyList_.push_back(static_cast<std::uint32_t>(i));
        }
    }

    /** Fold pending leaf updates into both trees. */
    void
    sync() const
    {
        for (const std::uint32_t i : dirtyList_) {
            dirty_[i] = 0;
            std::size_t node = base_ + i;
            minTree_[node] = pendMin_[i];
            maxTree_[node] = pendMax_[i];
            for (node /= 2; node >= 1; node /= 2) {
                minTree_[node] = std::min(minTree_[2 * node],
                                          minTree_[2 * node + 1]);
                maxTree_[node] = std::max(maxTree_[2 * node],
                                          maxTree_[2 * node + 1]);
            }
        }
        dirtyList_.clear();
    }

    std::size_t n_;
    std::size_t base_; ///< Leaf @c i lives at tree index base_ + i.

    // Queries are logically const: the trees are a cache of the
    // pending leaf values, repaired on read.
    mutable std::vector<Tick> minTree_;
    mutable std::vector<Tick> maxTree_;
    std::vector<Tick> pendMin_;
    std::vector<Tick> pendMax_;
    mutable std::vector<std::uint8_t> dirty_;
    mutable std::vector<std::uint32_t> dirtyList_;
};

} // namespace hoopnvm

#endif // HOOPNVM_SIM_CLOCK_TRACKER_HH
