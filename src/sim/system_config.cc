#include "sim/system_config.hh"

#include "common/logging.hh"

namespace hoopnvm
{

const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::Native:
        return "Ideal";
      case Scheme::Hoop:
        return "HOOP";
      case Scheme::OptRedo:
        return "Opt-Redo";
      case Scheme::OptUndo:
        return "Opt-Undo";
      case Scheme::Osp:
        return "OSP";
      case Scheme::Lsm:
        return "LSM";
      case Scheme::Lad:
        return "LAD";
    }
    HOOP_PANIC("unknown scheme");
}

} // namespace hoopnvm
