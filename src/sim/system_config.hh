/**
 * @file
 * Whole-system configuration, defaulted to the paper's Table II setup:
 * 2.5 GHz cores, 32 KB 4-way L1, 256 KB 8-way inclusive L2, 2 MB 16-way
 * inclusive LLC, NVM with 50/150 ns read/write latency, plus the HOOP
 * structure sizes from §III-H (2 MB mapping table, 1 KB per-core OOP
 * data buffer, 128 KB eviction buffer, 2 MB OOP blocks, 10 ms GC period).
 *
 * The simulated physical address space is laid out as:
 *
 *   [0, homeBytes)                      home region (application data)
 *   [oopBase, oopBase + oopBytes)       HOOP out-of-place region
 *   [auxBase, auxBase + auxBytes)       baseline log / shadow regions
 */

#ifndef HOOPNVM_SIM_SYSTEM_CONFIG_HH
#define HOOPNVM_SIM_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "nvm/energy_model.hh"
#include "nvm/nvm_timing.hh"

namespace hoopnvm
{

/** Crash-consistency scheme selector (the paper's six systems). */
enum class Scheme
{
    Native,  ///< No persistence guarantee ("Ideal" in Fig. 7).
    Hoop,    ///< Hardware-assisted out-of-place update (this paper).
    OptRedo, ///< Hardware redo logging after WrAP [13].
    OptUndo, ///< Hardware undo logging after ATOM [24].
    Osp,     ///< Optimized shadow paging after SSP [38], [39].
    Lsm,     ///< Log-structured NVM after LSNVMM [17].
    Lad,     ///< Logless atomic durability after LAD [16].
};

/** Printable name of @p s ("HOOP", "Opt-Redo", ...). */
const char *schemeName(Scheme s);

/** All schemes in the order the paper's figures list them. */
inline constexpr Scheme kAllSchemes[] = {
    Scheme::OptRedo, Scheme::OptUndo, Scheme::Osp,
    Scheme::Lsm,     Scheme::Lad,     Scheme::Hoop,
    Scheme::Native,
};

/** Cache hierarchy geometry and latencies. */
struct CacheParams
{
    std::uint64_t l1Size = kiB(32);
    unsigned l1Assoc = 4;
    Tick l1Latency = nsToTicks(1.6); // 4 cycles @ 2.5 GHz

    std::uint64_t l2Size = kiB(256);
    unsigned l2Assoc = 8;
    Tick l2Latency = nsToTicks(4.8); // 12 cycles

    std::uint64_t llcSize = miB(2);
    unsigned llcAssoc = 16;
    Tick llcLatency = nsToTicks(16); // 40 cycles
};

/**
 * Runtime media-fault tolerance: k-bit-correcting ECC on the read
 * path, seeded read retries for transient faults, a background
 * scrubber, and bad-block/slot retirement with graceful capacity
 * degradation. Disabled by default — every knob below is inert until
 * `enabled` is set, so fault-free runs are bit-identical to builds
 * without the subsystem.
 */
struct FaultToleranceConfig
{
    /** Master switch for ECC, retries, scrub and retirement. */
    bool enabled = false;

    /**
     * Bits per 8-byte word the modelled ECC corrects in-line. Faulty
     * words with at most this many affected bits are delivered clean
     * (counted, and charged the correction surcharge below); words
     * beyond it surface as uncorrectable unless a retry clears them.
     */
    unsigned eccCorrectBits = 1;

    /** Latency surcharge per ECC-corrected word on a timed read. */
    Tick eccCorrectCost = nsToTicks(20);

    /**
     * Maximum read retries after an uncorrectable first attempt.
     * Transient (read-disturb) faults clear after a seeded number of
     * attempts; stuck-at faults never do, so retries are bounded.
     */
    unsigned readRetryMax = 4;

    /** Modelled backoff added to the completion tick per retry. */
    Tick readRetryBackoff = nsToTicks(100);

    /**
     * Simulated-time cadence of the background scrubber (0 disables).
     * Each pass proactively reads a few blocks/slots, counts corrected
     * words, and retires blocks whose free slots fail program-verify.
     */
    Tick scrubPeriod = nsToTicks(2e6);

    /** OOP blocks (or log-slot stripes) examined per scrub pass. */
    std::uint32_t scrubChunks = 4;

    /**
     * Retire a block once this fraction of its slice slots failed
     * program-verify (skipped at write time as uncorrectable).
     */
    double retireBadSlotFraction = 0.25;

    /**
     * Reject new transactions (TxRejected, ENOSPC-style) once the
     * retired fraction of the OOP region / log ring reaches this —
     * graceful degradation instead of a backpressure wedge.
     */
    double rejectCapacityFraction = 0.5;
};

/** Complete configuration of one simulated system. */
struct SystemConfig
{
    /** Number of cores / workload threads (paper runs 8 threads). */
    unsigned numCores = 8;

    /** Core clock in GHz; non-memory work is charged in core cycles. */
    double cpuGhz = 2.5;

    /** Core cycles charged per executed load/store beyond memory time. */
    unsigned opCycles = 1;

    CacheParams cache;
    NvmTiming nvm;
    EnergyParams energy;

    /** Home region size (application-visible NVM). */
    std::uint64_t homeBytes = miB(512);

    /** OOP region size; the paper reserves ~10% of capacity. */
    std::uint64_t oopBytes = miB(48);

    /** Auxiliary region for baseline logs / shadow copies. */
    std::uint64_t auxBytes = miB(512) + miB(64);

    // ---- HOOP parameters (§III-H) ----

    /** Total mapping table capacity in bytes (2 MB default). */
    std::uint64_t mappingTableBytes = miB(2);

    /** Per-core OOP data buffer (1 KB default). */
    std::uint64_t oopDataBufferBytesPerCore = kiB(1);

    /** Eviction buffer capacity (128 KB default). */
    std::uint64_t evictionBufferBytes = kiB(128);

    /** OOP block size (2 MB default). */
    std::uint64_t oopBlockBytes = miB(2);

    /** Periodic GC trigger threshold (10 ms default, Fig. 10 sweeps). */
    Tick gcPeriod = nsToTicks(10e6);

    /** Enable word-granularity data packing (ablation switch). */
    bool dataPacking = true;

    /** Enable GC data coalescing (ablation switch). */
    bool gcCoalescing = true;

    /**
     * Enable periodic / pressure-triggered GC. When false the OOP
     * region fills until writers hit allocation backpressure (on-demand
     * GC on the critical path) — used by the exhaustion regression
     * tests. Explicit drain() still collects.
     */
    bool gcEnabled = true;

    /**
     * Deliberately broken commit path for checker validation: txEnd
     * acknowledges the commit without waiting for the commit record
     * (and the tail of the slice chain) to become durable. A crash
     * shortly after commit can then tear the record of an already
     * acknowledged transaction — exactly the bug class hoop_crashcheck
     * must catch. Never enable outside tests.
     */
    bool debugNoCommitFence = false;

    /**
     * Deliberately broken commit ack for checker validation: baseline
     * controllers (Opt-Redo, Opt-Undo, LSM, OSP) acknowledge the commit
     * at issue time instead of at the durability tick of their log /
     * shadow writes. The ordering analyzer's durable-by-ack rules must
     * flag every such commit. Never enable outside tests.
     */
    bool debugEarlyCommitAck = false;

    /**
     * Deliberately skip the settleUpTo() durability fences (HOOP GC
     * watermark/recycle, Opt-Redo and LSM log truncation, LAD commit
     * drain) while keeping the timing unchanged. Reintroduces the
     * torn-write bug class those fences exist to prevent; the ordering
     * analyzer's settled-at-trigger rules must flag it. Never enable
     * outside tests.
     */
    bool debugSkipSettleFences = false;

    /**
     * Deliberately skip appending the undo pre-image on first touch
     * (Opt-Undo only), breaking write-ahead logging. The analyzer's
     * issued-before-trigger rule must flag the in-place home writes.
     * Never enable outside tests.
     */
    bool debugSkipUndoLog = false;

    // ---- Baseline parameters ----

    /** Cost of one TLB shootdown charged to OSP commits. */
    Tick tlbShootdownCost = nsToTicks(1800);

    /** Commit handshake between cache and memory controller (LAD). */
    Tick ladCommitOverhead = nsToTicks(120);

    /** DRAM access latency used by LSM's software index walks. */
    Tick dramLatency = nsToTicks(30);

    /** CPU cycles of software bookkeeping per LSM index operation. */
    unsigned lsmIndexCycles = 24;

    // ---- Observability ----

    /**
     * Simulated-time period of the epoch gauge sampler. Every period
     * the System snapshots occupancy gauges (mapping-table entries,
     * OOP live bytes, in-flight writes, backpressure stalls) into the
     * epoch ring buffer. Zero disables sampling.
     */
    Tick epochSamplePeriod = nsToTicks(50e3);

    /**
     * Capacity of the epoch ring buffer. When full, the oldest samples
     * are dropped so a long run keeps its most recent history.
     */
    std::size_t epochRingCapacity = 256;

    // ---- Simulation engine ----

    /**
     * Use the batched fast paths (line-granularity range access and
     * event-driven maintenance scheduling). The fast paths are an
     * execution-strategy change only — every metric, histogram, epoch
     * sample and crash schedule is bit-identical to the reference
     * word-at-a-time/polled engine (fastpath_equiv_test asserts this
     * over the scheme × workload matrix). Off = reference engine, kept
     * for differential verification.
     */
    bool fastPath = true;

    /**
     * Coroutine-style miss overlap: up to this many outstanding
     * line-fill misses per core before the front-end stalls. 1 is the
     * classic blocking core (every miss serializes on its own
     * completion) and is guaranteed bit-identical to the historical
     * engine. Depth K > 1 models a prefetching/coroutine front-end
     * (interference suite, ROADMAP item 3): a scalar load whose fill
     * takes at least the NVM read latency is entered into a per-core
     * window instead of stalling, and the core only waits for the
     * oldest fill once K are outstanding (and for all of them at
     * transaction end — commits never overtake their own reads).
     * Stores and multi-word range reads remain blocking.
     */
    unsigned missOverlapDepth = 1;

    // ---- Runtime fault tolerance ----

    /** Media-fault tolerance subsystem (off by default). */
    FaultToleranceConfig ft;

    /** RNG seed for workloads. */
    std::uint64_t seed = 42;

    /** Duration of one core cycle. */
    Tick
    cycle() const
    {
        return nsToTicks(1.0 / cpuGhz);
    }

    /** Base cost of one executed memory operation. */
    Tick
    opCost() const
    {
        return opCycles * cycle();
    }

    Addr homeBase() const { return 0; }
    Addr oopBase() const { return homeBytes; }
    Addr auxBase() const { return homeBytes + oopBytes; }

    /** Total simulated NVM capacity. */
    std::uint64_t
    nvmCapacity() const
    {
        return homeBytes + oopBytes + auxBytes;
    }
};

} // namespace hoopnvm

#endif // HOOPNVM_SIM_SYSTEM_CONFIG_HH
