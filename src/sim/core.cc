#include "sim/core.hh"

#include "common/logging.hh"

namespace hoopnvm
{

Core::Core(CoreId id)
    : id_(id)
{
}

void
Core::advanceTo(Tick t)
{
    if (t > clock_) {
        clock_ = t;
        noteClock();
    }
}

void
Core::reset()
{
    inTx_ = false;
    txStart_ = 0;
}

} // namespace hoopnvm
