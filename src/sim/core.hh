/**
 * @file
 * One simulated core: a logical clock plus transaction-state bit.
 *
 * The engine executes workload transactions to completion one at a
 * time, always choosing the core with the smallest clock next, so the
 * per-core clocks stay within one transaction of each other — an
 * operation-granularity approximation of concurrent execution that
 * preserves shared-resource contention at the NVM channel.
 */

#ifndef HOOPNVM_SIM_CORE_HH
#define HOOPNVM_SIM_CORE_HH

#include "common/types.hh"
#include "sim/clock_tracker.hh"

namespace hoopnvm
{

/** Per-core execution state. */
class Core
{
  public:
    explicit Core(CoreId id);

    CoreId id() const { return id_; }

    Tick clock() const { return clock_; }

    /** Move the clock forward to @p t (never backwards). */
    void advanceTo(Tick t);

    /** Add @p d to the clock. */
    void
    advanceBy(Tick d)
    {
        clock_ += d;
        noteClock();
    }

    /**
     * Attach the system's clock tracker (nullptr detaches); every
     * clock change is mirrored into slot id() so min/max queries never
     * need to scan the cores.
     */
    void
    setTracker(ClockTracker *t)
    {
        tracker_ = t;
        noteClock();
    }

    bool inTx() const { return inTx_; }
    void setInTx(bool v) { inTx_ = v; }

    /** Mark a transaction begun at @p t (records the start tick). */
    void
    beginTx(Tick t)
    {
        inTx_ = true;
        txStart_ = t;
    }

    /** Start tick of the transaction in flight (valid while inTx()). */
    Tick txStart() const { return txStart_; }

    /** Reset after a crash. */
    void reset();

  private:
    void
    noteClock()
    {
        if (tracker_)
            tracker_->set(id_, clock_);
    }

    CoreId id_;
    Tick clock_ = 0;
    Tick txStart_ = 0;
    bool inTx_ = false;
    ClockTracker *tracker_ = nullptr;
};

} // namespace hoopnvm

#endif // HOOPNVM_SIM_CORE_HH
