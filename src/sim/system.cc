#include "sim/system.hh"

#include <algorithm>
#include <cstring>

#include "analysis/ordering_tracker.hh"
#include "baselines/lad_controller.hh"
#include "baselines/lsm_controller.hh"
#include "baselines/osp_controller.hh"
#include "baselines/redo_controller.hh"
#include "baselines/undo_controller.hh"
#include "common/host_profiler.hh"
#include "common/logging.hh"
#include "controller/native_controller.hh"
#include "hoop/hoop_controller.hh"
#include "stats/trace.hh"

namespace hoopnvm
{

namespace
{

/** Summarize @p h (samples in ticks) as nanosecond quantiles. */
LatencySummary
summarizeTicks(const Histogram *h)
{
    LatencySummary s;
    if (!h || h->count() == 0)
        return s;
    s.count = h->count();
    s.p50Ns = h->quantile(0.50) / static_cast<double>(kTicksPerNs);
    s.p95Ns = h->quantile(0.95) / static_cast<double>(kTicksPerNs);
    s.p99Ns = h->quantile(0.99) / static_cast<double>(kTicksPerNs);
    s.p999Ns = h->quantile(0.999) / static_cast<double>(kTicksPerNs);
    s.maxNs = ticksToNs(h->max());
    s.meanNs = h->mean() / static_cast<double>(kTicksPerNs);
    // Mark tails the population cannot resolve: the value is the
    // exact max under Histogram's saturation rule, not a quantile.
    s.p50Saturated = Histogram::quantileSaturated(s.count, 0.50);
    s.p95Saturated = Histogram::quantileSaturated(s.count, 0.95);
    s.p99Saturated = Histogram::quantileSaturated(s.count, 0.99);
    s.p999Saturated = Histogram::quantileSaturated(s.count, 0.999);
    return s;
}

/**
 * Role-name table for the interference workload's per-role latency
 * histograms ("role_<name>_ticks" in the system StatSet). metrics()
 * scans this fixed list so RunMetrics.roles is deterministic in both
 * content and order; workloads that never record them produce an
 * empty roles vector.
 */
constexpr const char *kRoleNames[] = {"log_append", "point_read",
                                      "seq_scan", "gc_pressure"};


} // namespace

std::unique_ptr<PersistenceController>
makeController(Scheme scheme, NvmDevice &nvm, const SystemConfig &cfg)
{
    switch (scheme) {
      case Scheme::Native:
        return std::make_unique<NativeController>(nvm, cfg);
      case Scheme::Hoop:
        return std::make_unique<HoopController>(nvm, cfg);
      case Scheme::OptRedo:
        return std::make_unique<RedoController>(nvm, cfg);
      case Scheme::OptUndo:
        return std::make_unique<UndoController>(nvm, cfg);
      case Scheme::Osp:
        return std::make_unique<OspController>(nvm, cfg);
      case Scheme::Lsm:
        return std::make_unique<LsmController>(nvm, cfg);
      case Scheme::Lad:
        return std::make_unique<LadController>(nvm, cfg);
    }
    HOOP_PANIC("unknown scheme");
}

System::System(const SystemConfig &cfg, Scheme scheme)
    : cfg_(cfg), scheme_(scheme), clockTracker_(cfg.numCores),
      stats_("system"),
      critPathH_(stats_.histogram("tx_critical_path_ticks"))
{
    nvm_ = std::make_unique<NvmDevice>(cfg_.nvmCapacity(), cfg_.nvm,
                                       cfg_.energy);
    if (cfg_.ft.enabled) {
        // Configure media tolerance before the controller exists: its
        // constructor may program-verify regions against the ECC view.
        nvm_->faults().setEcc(cfg_.ft.eccCorrectBits);
        nvm_->faults().setTransientFaults(cfg_.ft.readRetryMax);
        nvm_->setReadRetryPolicy(cfg_.ft.readRetryMax,
                                 cfg_.ft.readRetryBackoff,
                                 cfg_.ft.eccCorrectCost);
    }
    ctrl_ = makeController(scheme, *nvm_, cfg_);
    ctrl_->setCrashHook(&crashHook_);
    caches_ = std::make_unique<CacheHierarchy>(cfg_);
    caches_->setController(ctrl_.get());
    alloc_ = std::make_unique<SimAllocator>(cfg_.homeBase(),
                                            cfg_.homeBytes,
                                            cfg_.numCores);
    cores_.reserve(cfg_.numCores);
    for (unsigned c = 0; c < cfg_.numCores; ++c) {
        cores_.emplace_back(c);
        cores_.back().setTracker(&clockTracker_);
    }
    if (cfg_.missOverlapDepth > 1)
        overlapWin_.resize(cfg_.numCores);
    nextEpoch_ = cfg_.epochSamplePeriod;
    nextScrub_ = cfg_.ft.scrubPeriod;
    if (Trace::enabled()) {
        trace_ = std::make_unique<TraceBuffer>(schemeName(scheme_));
        ctrl_->setTrace(trace_.get());
    }
}

System::~System() = default;

void
System::txBegin(CoreId core)
{
    Core &c = cores_[core];
    HOOP_ASSERT(!c.inTx(), "nested txBegin on core %u", core);
    c.advanceBy(cfg_.opCost()); // Tx_begin sets the tx-state bit
    ctrl_->txBegin(core, c.clock());
    c.beginTx(c.clock());
}

void
System::txEnd(CoreId core)
{
    Core &c = cores_[core];
    HOOP_ASSERT(c.inTx(), "txEnd without txBegin on core %u", core);
    // A commit never overtakes its own reads: wait out every
    // outstanding overlapped fill before the commit record is built.
    drainOverlap(core);
    const Tick done = ctrl_->txEnd(core, c.clock() + cfg_.opCost());
    // Crash point between the commit record being issued and the
    // commit being acknowledged: the record is still in flight (the
    // core clock has not advanced to its completion), so torn-write
    // injection can tear it.
    crashHook_.step(CrashPointKind::CommitRecord);
    c.advanceTo(done);
    c.setInTx(false);
    ++committedTx_;
    const Tick latency = c.clock() - c.txStart();
    criticalPathSum_ += latency;
    critPathH_.record(latency);
    if (trace_)
        trace_->span("tx", "tx", core, c.txStart(), c.clock());
}

std::uint64_t
System::loadWord(CoreId core, Addr addr)
{
    Core &c = cores_[core];
    std::uint64_t v = 0;
    if (cfg_.missOverlapDepth <= 1) {
        // Blocking core: the literal historical path, kept verbatim so
        // depth 1 is bit-identical to the pre-knob engine
        // (interference_test pins the differential).
        c.advanceTo(caches_->loadWord(core, addr, v, c.clock()));
        return v;
    }
    overlappedAdvance(core, caches_->loadWord(core, addr, v, c.clock()));
    return v;
}

void
System::overlappedAdvance(CoreId core, Tick done)
{
    Core &c = cores_[core];
    // Fast completions — cache hits and anything cheaper than one NVM
    // array read — stall in place: there is no fill worth hiding, and
    // letting them occupy window slots would evict real misses.
    if (done <= c.clock() ||
        done - c.clock() < cfg_.nvm.readLatency) {
        c.advanceTo(done);
        return;
    }
    auto &win = overlapWin_[core];
    while (win.size() >= cfg_.missOverlapDepth) {
        // Window full: the front-end stalls for the oldest fill.
        c.advanceTo(win.front());
        win.erase(win.begin());
    }
    win.push_back(done);
    // The issue slot itself still costs one op: the core moves on to
    // independent work while the fill is in flight.
    c.advanceBy(cfg_.opCost());
}

void
System::drainOverlap(CoreId core)
{
    if (overlapWin_.empty())
        return;
    auto &win = overlapWin_[core];
    Core &c = cores_[core];
    for (const Tick t : win)
        c.advanceTo(t);
    win.clear();
}

void
System::idle(CoreId core, Tick d)
{
    Core &c = cores_[core];
    HOOP_ASSERT(!c.inTx(), "idle() inside a failure-atomic region");
    c.advanceBy(d);
}

void
System::storeWord(CoreId core, Addr addr, std::uint64_t value)
{
    crashHook_.step(CrashPointKind::Store);
    Core &c = cores_[core];
    c.advanceTo(caches_->storeWord(core, addr, value, c.clock()));
}

void
System::readBytes(CoreId core, Addr addr, void *buf, std::size_t len)
{
    HOOP_ASSERT(isAligned(addr, kWordSize) && len % kWordSize == 0,
                "readBytes requires word alignment");
    if (!cfg_.fastPath) {
        auto *out = static_cast<std::uint8_t *>(buf);
        for (std::size_t off = 0; off < len; off += kWordSize) {
            const std::uint64_t v = loadWord(core, addr + off);
            std::memcpy(out + off, &v, kWordSize);
        }
        return;
    }
    Core &c = cores_[core];
    caches_->loadRange(core, addr, static_cast<std::uint8_t *>(buf),
                       len, c.clock(), [&c](Tick t) {
                           c.advanceTo(t);
                           return c.clock();
                       });
}

void
System::writeBytes(CoreId core, Addr addr, const void *buf,
                   std::size_t len)
{
    HOOP_ASSERT(isAligned(addr, kWordSize) && len % kWordSize == 0,
                "writeBytes requires word alignment");
    if (!cfg_.fastPath) {
        const auto *in = static_cast<const std::uint8_t *>(buf);
        for (std::size_t off = 0; off < len; off += kWordSize) {
            std::uint64_t v;
            std::memcpy(&v, in + off, kWordSize);
            storeWord(core, addr + off, v);
        }
        return;
    }
    Core &c = cores_[core];
    caches_->storeRange(
        core, addr, static_cast<const std::uint8_t *>(buf), len,
        c.clock(),
        [this] { crashHook_.step(CrashPointKind::Store); },
        [&c](Tick t) {
            c.advanceTo(t);
            return c.clock();
        });
}

Addr
System::alloc(CoreId core, std::uint64_t size, std::uint64_t align)
{
    return alloc_->alloc(core, size, align);
}

void
System::pokeInit(Addr addr, const void *buf, std::size_t len)
{
    HOOP_ASSERT(addr + len <= cfg_.homeBytes,
                "pokeInit outside the home region");
    nvm_->poke(addr, buf, len);
}

void
System::debugRead(Addr addr, void *buf, std::size_t len) const
{
    caches_->debugRead(addr, buf, len);
}

std::uint64_t
System::debugLoadWord(Addr addr) const
{
    std::uint64_t v = 0;
    debugRead(addr, &v, kWordSize);
    return v;
}

void
System::scheduleCrashAfterStores(std::uint64_t n)
{
    crashHook_.arm(CrashPointKind::Store, n);
}

void
System::scheduleCrashAtCommit(std::uint64_t n)
{
    crashHook_.arm(CrashPointKind::CommitRecord, n);
}

void
System::crash()
{
    // Resolve torn writes first: every write whose completion lies
    // beyond the power-failure instant loses its non-persisted words.
    // Only then does the volatile state vanish.
    nvm_->applyCrashFaults(maxClock());
    // Outstanding overlapped fills die with the cores; dropping them
    // without advancing models the power failure cutting them off.
    for (auto &win : overlapWin_)
        win.clear();
    caches_->dropAll();
    ctrl_->crash();
    for (auto &c : cores_)
        c.reset();
    // Volatile-execution crash points die with the machine; an armed
    // RecoveryStep countdown survives so it can fire inside the
    // recovery that follows (crash-during-recovery coverage).
    crashHook_.disarmVolatile();
}

Tick
System::recover(unsigned threads)
{
    HostTimer ht(HostProfiler::kRecovery);
    return ctrl_->recover(threads);
}

void
System::armOrdering(OrderingTracker *tracker)
{
    nvm_->setWriteObserver(tracker);
    ctrl_->setOrderingTracker(tracker);
    if (tracker)
        ctrl_->declareOrderingRules(*tracker);
}

void
System::maintenance()
{
    const Tick now = minClock();
    // Event-driven fast path: skip the poll entirely when every
    // maintenance source is provably idle at `now` — the controller's
    // next time trigger lies in the future and no state trigger is
    // armed (controller maintenance would be a no-op), the scrubber is
    // not due, and the epoch sampler is not due. Each due tick is
    // checked against the same guard the corresponding body uses, so
    // the set of *firing* polls — and therefore every metric,
    // histogram, epoch sample and crash-point schedule — is
    // bit-identical to polling on every transaction.
    if (cfg_.fastPath && !ctrl_->maintenancePressure() &&
        now < ctrl_->nextMaintenanceDue() &&
        !(cfg_.ft.enabled && cfg_.ft.scrubPeriod > 0 &&
          now >= nextScrub_) &&
        !(cfg_.epochSamplePeriod != 0 && cfg_.epochRingCapacity != 0 &&
          now >= nextEpoch_))
        return;
    ctrl_->maintenance(now);
    if (cfg_.ft.enabled && cfg_.ft.scrubPeriod > 0 &&
        now >= nextScrub_) {
        ctrl_->scrub(now);
        nextScrub_ = now + cfg_.ft.scrubPeriod;
    }
    sampleEpoch(now);
}

void
System::sampleEpoch(Tick now)
{
    if (cfg_.epochSamplePeriod == 0 || cfg_.epochRingCapacity == 0 ||
        now < nextEpoch_)
        return;
    const ControllerGauges g = ctrl_->gauges();
    EpochSample s;
    s.at = now;
    s.mappingEntries = g.mappingEntries;
    s.structBytes = g.structBytes;
    s.backpressureStalls = g.backpressureStalls;
    s.inflightWrites = nvm_->faults().inflight();
    s.retiredUnits = g.retiredUnits;
    s.correctedWords = g.correctedWords;
    s.degradedFraction = g.degradedFraction;
    s.txRejected = g.txRejected;
    s.clientRetryAttempts = g.clientRetryAttempts;
    s.clientBackoffTicks = g.clientBackoffTicks;
    s.clientDeadlineMisses = g.clientDeadlineMisses;
    s.clientShedAdmissions = g.clientShedAdmissions;
    s.channelBusyTicks = nvm_->channelBusyTicks();
    s.channelWaitTicks = nvm_->channelWaitTicks();
    if (epochRing_.size() < cfg_.epochRingCapacity) {
        epochRing_.push_back(s);
    } else {
        epochRing_[epochHead_] = s;
        epochHead_ = (epochHead_ + 1) % epochRing_.size();
    }
    if (trace_)
        trace_->counter("mapping_entries", now, g.mappingEntries);
    nextEpoch_ = now + cfg_.epochSamplePeriod;
}

std::vector<EpochSample>
System::epochSamples() const
{
    std::vector<EpochSample> out;
    out.reserve(epochRing_.size());
    for (std::size_t i = 0; i < epochRing_.size(); ++i) {
        out.push_back(
            epochRing_[(epochHead_ + i) % epochRing_.size()]);
    }
    return out;
}

void
System::finalize()
{
    for (unsigned c = 0; c < cfg_.numCores; ++c)
        drainOverlap(c);
    const Tick t = maxClock();
    caches_->writebackAll(t);
    ctrl_->drain(t);
}

void
System::beginMeasurement()
{
    // Everything metrics() reports must cover only the measurement
    // interval: NVM traffic and energy, fault-model tallies, cache and
    // hierarchy counters (the LLC miss ratio used to count warmup
    // accesses), the latency histograms and the epoch samples. The
    // controller's *counters* deliberately keep accumulating — GC data
    // reduction (Table IV) is defined over the whole run.
    nvm_->resetCounters();
    nvm_->faults().resetCounters();
    caches_->resetStats();
    ctrl_->stats().resetHistograms();
    committedTx_ = 0;
    criticalPathSum_ = 0;
    stats_.resetAll();
    epochRing_.clear();
    epochHead_ = 0;
    measureStart = maxClock();
    nextEpoch_ = measureStart + cfg_.epochSamplePeriod;
}

RunMetrics
System::metrics() const
{
    RunMetrics m;
    m.transactions = committedTx_;
    m.simTicks = maxClock() - measureStart;
    if (m.simTicks > 0) {
        m.txPerSecond = static_cast<double>(m.transactions) /
                        (static_cast<double>(m.simTicks) * 1e-12);
    }
    if (m.transactions > 0) {
        m.avgCriticalPathNs =
            ticksToNs(criticalPathSum_) /
            static_cast<double>(m.transactions);
        m.bytesWrittenPerTx =
            static_cast<double>(nvm_->bytesWritten()) /
            static_cast<double>(m.transactions);
    }
    m.nvmBytesWritten = nvm_->bytesWritten();
    m.nvmBytesRead = nvm_->bytesRead();
    m.energyPj = nvm_->energy().totalEnergyPj();
    m.llcMissRatio = caches_->llcMissRatio();
    m.critPath = summarizeTicks(&critPathH_);
    m.llcMiss = summarizeTicks(
        caches_->stats().findHistogram("llc_miss_latency_ticks"));
    m.gcPause = summarizeTicks(
        ctrl_->stats().findHistogram("maint_pause_ticks"));
    m.scrubPause = summarizeTicks(
        ctrl_->stats().findHistogram("scrub_pause_ticks"));
    m.eccCorrectedWords = nvm_->faults().wordsEccCorrected();
    m.uncorrectableReads = nvm_->uncorrectableReads();
    m.readRetries = nvm_->readRetries();
    const ControllerGauges g = ctrl_->sampleGauges();
    m.retiredUnits = g.retiredUnits;
    m.txRejected = g.txRejected;
    m.degradedFraction = g.degradedFraction;
    m.channelBusyTicks = nvm_->channelBusyTicks();
    m.channelWaitTicks = nvm_->channelWaitTicks();
    m.drainFences = nvm_->drainFences();
    if (m.simTicks > 0) {
        m.channelUtilization =
            static_cast<double>(m.channelBusyTicks) /
            static_cast<double>(m.simTicks);
    }
    for (const char *role : kRoleNames) {
        const Histogram *h = stats_.findHistogram(
            std::string("role_") + role + "_ticks");
        if (!h || h->count() == 0)
            continue;
        RoleMetrics rm;
        rm.name = role;
        rm.transactions = h->count();
        if (m.simTicks > 0) {
            rm.txPerSecond =
                static_cast<double>(rm.transactions) /
                (static_cast<double>(m.simTicks) * 1e-12);
        }
        rm.latency = summarizeTicks(h);
        m.roles.push_back(std::move(rm));
    }
    m.epochs = epochSamples();
    return m;
}

Tick
System::minClock() const
{
    if (cfg_.fastPath)
        return clockTracker_.min();
    Tick t = cores_[0].clock();
    for (const Core &c : cores_)
        t = std::min(t, c.clock());
    return t;
}

Tick
System::maxClock() const
{
    if (cfg_.fastPath)
        return clockTracker_.max();
    Tick t = 0;
    for (const Core &c : cores_)
        t = std::max(t, c.clock());
    return t;
}

} // namespace hoopnvm
