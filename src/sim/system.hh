/**
 * @file
 * The complete simulated system: cores, cache hierarchy, persistence
 * controller (selected by Scheme) and the NVM device, wired per the
 * paper's Table II configuration.
 *
 * System is the public API workloads and benches program against:
 * transactional word loads/stores with failure-atomic regions, crash
 * injection, recovery, and measurement collection.
 */

#ifndef HOOPNVM_SIM_SYSTEM_HH
#define HOOPNVM_SIM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "controller/persistence_controller.hh"
#include "mem/cache_hierarchy.hh"
#include "nvm/nvm_device.hh"
#include "sim/core.hh"
#include "sim/crash_hook.hh"
#include "sim/system_config.hh"
#include "txn/sim_allocator.hh"

namespace hoopnvm
{

class TraceBuffer;

/** Quantile summary of one latency histogram, in nanoseconds. */
struct LatencySummary
{
    std::uint64_t count = 0;
    double p50Ns = 0.0;
    double p95Ns = 0.0;
    double p99Ns = 0.0;

    /** Extreme tail (p999): what the fleet harness reports per shard. */
    double p999Ns = 0.0;

    double maxNs = 0.0;
    double meanNs = 0.0;

    // Saturation markers (Histogram::quantileSaturated): true when the
    // matching quantile fell under the exact-max rule because the
    // population is too small to resolve it (count < ~1/(1-q)). The
    // value is then the exact max, not an interpolated quantile —
    // dumps mark these so under-populated tails are not mistaken for
    // resolved ones.
    bool p50Saturated = false;
    bool p95Saturated = false;
    bool p99Saturated = false;
    bool p999Saturated = false;
};

/** One snapshot of the system's occupancy gauges (epoch sampler). */
struct EpochSample
{
    /** Simulated tick the sample was taken at. */
    Tick at = 0;

    /** Live entries in the scheme's remap structure. */
    std::uint64_t mappingEntries = 0;

    /** Bytes live in the scheme's persistence structure (OOP, log). */
    std::uint64_t structBytes = 0;

    /** Cumulative allocation backpressure stalls at this epoch. */
    std::uint64_t backpressureStalls = 0;

    /** NVM writes issued but not yet settled (fault-model tracked). */
    std::uint64_t inflightWrites = 0;

    // ---- Media-fault tolerance gauges (zero unless cfg.ft.enabled) --

    /** Blocks (HOOP) or log slots (baselines) durably retired. */
    std::uint64_t retiredUnits = 0;

    /** Cumulative words repaired by the modelled ECC on reads. */
    std::uint64_t correctedWords = 0;

    /** Fraction of scheme capacity lost to retirement, in [0, 1]. */
    double degradedFraction = 0.0;

    /** Transactions rejected (admission or capacity exhaustion). */
    std::uint64_t txRejected = 0;

    // ---- Client-side degradation gauges (zero unless a fleet/soak
    // ---- driver feeds them via noteClientActivity) ----

    /** Cumulative client retry attempts against this shard. */
    std::uint64_t clientRetryAttempts = 0;

    /** Cumulative simulated ticks clients spent backing off. */
    std::uint64_t clientBackoffTicks = 0;

    /** Requests whose per-request deadline expired (TxTimeout). */
    std::uint64_t clientDeadlineMisses = 0;

    /** Requests refused by admission control (load shedding). */
    std::uint64_t clientShedAdmissions = 0;

    // ---- NVM channel gauges (interference suite) ----

    /** Cumulative ticks the channel was occupied (transfer + busy). */
    std::uint64_t channelBusyTicks = 0;

    /** Cumulative ticks accesses queued behind a busy channel. */
    std::uint64_t channelWaitTicks = 0;
};

/**
 * Per-role slice of an interference run: one entry per workload role
 * (log-append, point-read, seq-scan, gc-pressure) with cores assigned
 * to it. Populated from the `role_*_ticks` histograms the interference
 * workload records into the system StatSet; empty for every other
 * workload.
 */
struct RoleMetrics
{
    std::string name;

    /** Transactions this role's cores committed in the window. */
    std::uint64_t transactions = 0;

    /** Role-aggregate committed transactions per simulated second. */
    double txPerSecond = 0.0;

    /** Per-transaction latency distribution for this role. */
    LatencySummary latency;
};

/** Measurement snapshot of one run. */
struct RunMetrics
{
    std::uint64_t transactions = 0;
    Tick simTicks = 0;

    /** Committed transactions per simulated second. */
    double txPerSecond = 0.0;

    /** Mean Tx_begin..Tx_end latency in nanoseconds (Fig. 7b). */
    double avgCriticalPathNs = 0.0;

    std::uint64_t nvmBytesWritten = 0;
    std::uint64_t nvmBytesRead = 0;

    /** Bytes written to NVM per committed transaction (Fig. 8). */
    double bytesWrittenPerTx = 0.0;

    /** NVM access energy in picojoules (Fig. 9). */
    double energyPj = 0.0;

    double llcMissRatio = 0.0;

    /** Tx_begin..Tx_end latency distribution (Fig. 7b tails). */
    LatencySummary critPath;

    /** Per-LLC-miss memory latency distribution. */
    LatencySummary llcMiss;

    /** GC / maintenance pause distribution (Fig. 10). */
    LatencySummary gcPause;

    /** Background scrub pause distribution (media tolerance). */
    LatencySummary scrubPause;

    // ---- Media-fault tolerance (zero unless cfg.ft.enabled) ----

    /** Words repaired by the modelled ECC during the run. */
    std::uint64_t eccCorrectedWords = 0;

    /** Reads still uncorrectable after ECC and bounded retry. */
    std::uint64_t uncorrectableReads = 0;

    /** Read retries issued by the device's bounded-retry policy. */
    std::uint64_t readRetries = 0;

    /** Capacity units (blocks / log slots) durably retired. */
    std::uint64_t retiredUnits = 0;

    /** Transactions rejected instead of aborting the process. */
    std::uint64_t txRejected = 0;

    /** Fraction of scheme capacity lost to retirement, in [0, 1]. */
    double degradedFraction = 0.0;

    // ---- NVM channel occupancy (interference suite) ----

    /** Ticks the channel spent occupied (transfer + bank busy). */
    std::uint64_t channelBusyTicks = 0;

    /** Ticks accesses spent queued behind a busy channel. */
    std::uint64_t channelWaitTicks = 0;

    /** Drain fences issued (GC watermark / log truncation barriers). */
    std::uint64_t drainFences = 0;

    /** channelBusyTicks / simTicks, in [0, ~1]. */
    double channelUtilization = 0.0;

    /** Per-role interference metrics (empty outside the suite). */
    std::vector<RoleMetrics> roles;

    /** Epoch gauge samples, oldest first (ring-buffer bounded). */
    std::vector<EpochSample> epochs;
};

/** A full simulated machine running one persistence scheme. */
class System
{
  public:
    /** Build a system; @p cfg is copied and owned. */
    System(const SystemConfig &cfg, Scheme scheme);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    // ---- Transactional execution API ----

    /** Open a failure-atomic region on @p core. */
    void txBegin(CoreId core);

    /** Close and durably commit the region on @p core. */
    void txEnd(CoreId core);

    /** Timed word load. */
    std::uint64_t loadWord(CoreId core, Addr addr);

    /**
     * Advance @p core's clock by @p d ticks of deliberate idleness
     * (open-loop pacing: the interference workload's saturation knob
     * inserts think-time gaps between transactions). Must be called
     * outside a failure-atomic region.
     */
    void idle(CoreId core, Tick d);

    /** Timed word store (transactional if inside a region). */
    void storeWord(CoreId core, Addr addr, std::uint64_t value);

    /** Timed multi-word read; addr and len must be word-aligned. */
    void readBytes(CoreId core, Addr addr, void *buf, std::size_t len);

    /** Timed multi-word write; addr and len must be word-aligned. */
    void writeBytes(CoreId core, Addr addr, const void *buf,
                    std::size_t len);

    /** Allocate simulated home-region memory from @p core's arena. */
    Addr alloc(CoreId core, std::uint64_t size,
               std::uint64_t align = kWordSize);

    /** Untimed setup write straight into the home region. */
    void pokeInit(Addr addr, const void *buf, std::size_t len);

    /** Untimed coherent read (caches, then controller view). */
    void debugRead(Addr addr, void *buf, std::size_t len) const;

    /** Untimed coherent word read. */
    std::uint64_t debugLoadWord(Addr addr) const;

    // ---- Crash & recovery ----

    /**
     * Arrange for SimCrash to be thrown after @p n more stores
     * (0 disables). Convenience wrapper over
     * crashHook().arm(CrashPointKind::Store, n).
     */
    void scheduleCrashAfterStores(std::uint64_t n);

    /**
     * Arrange for SimCrash to be thrown inside the @p n-th next txEnd
     * (1 = the very next commit; 0 disables), after the controller has
     * issued the commit record but before the commit is acknowledged
     * to the core. At that point the record write is still in flight,
     * so with torn writes enabled it is exactly the write a crash can
     * tear — the window scheduleCrashAfterStores() can never hit.
     */
    void scheduleCrashAtCommit(std::uint64_t n);

    /**
     * Full crash-point injection interface: arm/disarm any boundary
     * class (stores, evictions, commit records, GC steps, recovery
     * steps) and read per-class event counts. The controller, cache
     * hierarchy, GC and recovery all fire through this one hook.
     */
    CrashHook &crashHook() { return crashHook_; }
    const CrashHook &crashHook() const { return crashHook_; }

    /**
     * Power failure: caches and volatile controller state vanish, and
     * the NVM fault injector resolves which in-flight writes tore
     * (see NvmDevice::faults()).
     */
    void crash();

    /** Run the scheme's recovery. @return modelled recovery ticks. */
    Tick recover(unsigned threads);

    // ---- Persistency-ordering analysis ----

    /**
     * Arm (or with nullptr disarm) the persistency-ordering analyzer:
     * hooks it into the NVM device's timed write stream and has the
     * controller declare its durability rules into it. The tracker must
     * outlive the system or be disarmed first.
     */
    void armOrdering(OrderingTracker *tracker);

    // ---- Engine hooks ----

    /** Invoke controller maintenance at the trailing core clock. */
    void maintenance();

    /** Flush caches and drain background work (end of measurement). */
    void finalize();

    /** Collect a metrics snapshot (call after finalize()). */
    RunMetrics metrics() const;

    /** Begin a measurement interval (resets traffic counters). */
    void beginMeasurement();

    // ---- Accessors ----

    Core &core(CoreId c) { return cores_[c]; }
    Tick minClock() const;
    Tick maxClock() const;
    const SystemConfig &config() const { return cfg_; }
    Scheme scheme() const { return scheme_; }
    NvmDevice &nvm() { return *nvm_; }
    CacheHierarchy &caches() { return *caches_; }
    PersistenceController &controller() { return *ctrl_; }
    SimAllocator &allocator() { return *alloc_; }

    /** Committed transactions since the last beginMeasurement(). */
    std::uint64_t committedTx() const { return committedTx_; }

    /** Sum of commit latencies since the last beginMeasurement(). */
    Tick criticalPathSum() const { return criticalPathSum_; }

    /** System-level statistics (critical-path histogram et al.). */
    const StatSet &stats() const { return stats_; }

    /**
     * Mutable statistics access for workloads that register their own
     * histograms (the interference suite's per-role latency series).
     * Resolve handles in constructors/setup, never on hot paths (the
     * lint stats-lookup rule applies to callers too).
     */
    StatSet &stats() { return stats_; }

    /** Epoch gauge samples collected so far, oldest first. */
    std::vector<EpochSample> epochSamples() const;

  private:
    /** Take an epoch gauge sample if the period has elapsed. */
    void sampleEpoch(Tick now);

    /**
     * Miss-overlap (cfg.missOverlapDepth > 1): enter a line-fill
     * completion @p done into @p core's outstanding-fill window
     * instead of stalling, waiting for the oldest fill only when the
     * window is full. Fast completions (below the NVM read latency —
     * cache hits and LLC-adjacent fills) stall in place: there is
     * nothing worth hiding and the window should hold real misses.
     */
    void overlappedAdvance(CoreId core, Tick done);

    /** Wait for every outstanding fill on @p core (commit boundary). */
    void drainOverlap(CoreId core);

    SystemConfig cfg_;
    Scheme scheme_;
    std::unique_ptr<NvmDevice> nvm_;
    std::unique_ptr<PersistenceController> ctrl_;
    std::unique_ptr<CacheHierarchy> caches_;
    std::unique_ptr<SimAllocator> alloc_;
    std::vector<Core> cores_;

    /**
     * Incremental min/max over the core clocks; each Core mirrors its
     * clock into the tracker so minClock()/maxClock() are O(1) instead
     * of scans. Exact regardless of cfg.fastPath (the tracker holds
     * the same values a scan would see); the reference engine still
     * scans so the differential harness covers the tracker.
     */
    ClockTracker clockTracker_;

    std::uint64_t committedTx_ = 0;
    Tick criticalPathSum_ = 0;
    CrashHook crashHook_;
    Tick measureStart = 0;

    StatSet stats_;
    Histogram &critPathH_;

    /** Epoch gauge ring buffer (oldest overwritten when full). */
    std::vector<EpochSample> epochRing_;
    std::size_t epochHead_ = 0;
    Tick nextEpoch_ = 0;

    /** Next background-scrub tick (cfg.ft.scrubPeriod cadence). */
    Tick nextScrub_ = 0;

    /**
     * Per-core outstanding line-fill completions, oldest first
     * (cfg.missOverlapDepth > 1 only; empty otherwise). Plain vectors:
     * the window is tiny (K <= ~8) and erase-front beats deque churn.
     */
    std::vector<std::vector<Tick>> overlapWin_;

    /** Present only when tracing is armed (HOOP_TRACE). */
    std::unique_ptr<TraceBuffer> trace_;
};

/** Instantiate the persistence controller for @p scheme. */
std::unique_ptr<PersistenceController>
makeController(Scheme scheme, NvmDevice &nvm, const SystemConfig &cfg);

} // namespace hoopnvm

#endif // HOOPNVM_SIM_SYSTEM_HH
