/**
 * @file
 * Crash-point injection hook shared by the whole simulated machine.
 *
 * Crash-consistency bugs hide at *boundaries*: between a store and its
 * eviction, inside a commit-record write, between two GC migration
 * writes, in the middle of recovery itself. The CrashHook names those
 * boundaries as classes and lets a test (or the src/check explorer)
 * arm a countdown on any class: the n-th subsequent event of that class
 * throws SimCrash, unwinding to the caller exactly as a power failure
 * would — volatile state still live, in-flight NVM writes unresolved
 * until System::crash() runs the fault model.
 *
 * Events are counted even when unarmed, so a profiling run can measure
 * how many crash points of each class one schedule exposes.
 */

#ifndef HOOPNVM_SIM_CRASH_HOOK_HH
#define HOOPNVM_SIM_CRASH_HOOK_HH

#include <array>
#include <cstdint>

namespace hoopnvm
{

/** The boundary classes at which a crash can be injected. */
enum class CrashPointKind : unsigned
{
    Store = 0,    ///< Before a transactional word store reaches L1.
    Eviction,     ///< Before an LLC dirty victim is handed off.
    CommitRecord, ///< Inside txEnd, commit record still in flight.
    GcStep,       ///< Between GC / checkpoint / truncation steps.
    RecoveryStep, ///< Between recovery replay steps (serial phases).
};

inline constexpr unsigned kNumCrashPointKinds = 5;

/** Stable lowercase token for @p k (schedule JSON, CLI flags). */
inline const char *
crashPointKindToken(CrashPointKind k)
{
    switch (k) {
      case CrashPointKind::Store:
        return "store";
      case CrashPointKind::Eviction:
        return "eviction";
      case CrashPointKind::CommitRecord:
        return "commit_record";
      case CrashPointKind::GcStep:
        return "gc_step";
      case CrashPointKind::RecoveryStep:
        return "recovery_step";
    }
    return "?";
}

/** Thrown when an armed crash point fires mid-execution. */
struct SimCrash
{
    CrashPointKind kind = CrashPointKind::Store;
};

/** Per-class crash-point event counters and armed countdowns. */
class CrashHook
{
  public:
    /**
     * Record one event of class @p k; throws SimCrash when an armed
     * countdown on @p k reaches zero. Hot path: two array accesses.
     */
    void
    step(CrashPointKind k)
    {
        const auto i = static_cast<unsigned>(k);
        ++counts_[i];
        if (countdown_[i] > 0 && --countdown_[i] == 0)
            throw SimCrash{k};
    }

    /**
     * Arm class @p k to crash on its @p n-th subsequent event
     * (1 = the very next one; 0 disarms).
     */
    void
    arm(CrashPointKind k, std::uint64_t n)
    {
        countdown_[static_cast<unsigned>(k)] = n;
    }

    void disarm(CrashPointKind k) { arm(k, 0); }

    /**
     * Called on power failure: volatile-execution countdowns die with
     * the machine, but a RecoveryStep countdown must survive so a test
     * can arm it *before* crashing and have it fire inside the very
     * recovery that follows.
     */
    void
    disarmVolatile()
    {
        for (unsigned i = 0; i < kNumCrashPointKinds; ++i) {
            if (i != static_cast<unsigned>(CrashPointKind::RecoveryStep))
                countdown_[i] = 0;
        }
    }

    bool
    armed(CrashPointKind k) const
    {
        return countdown_[static_cast<unsigned>(k)] > 0;
    }

    /** Events of class @p k seen since construction / resetCounts(). */
    std::uint64_t
    count(CrashPointKind k) const
    {
        return counts_[static_cast<unsigned>(k)];
    }

    std::array<std::uint64_t, kNumCrashPointKinds>
    counts() const
    {
        return counts_;
    }

    void resetCounts() { counts_.fill(0); }

  private:
    std::array<std::uint64_t, kNumCrashPointKinds> counts_{};
    std::array<std::uint64_t, kNumCrashPointKinds> countdown_{};
};

} // namespace hoopnvm

#endif // HOOPNVM_SIM_CRASH_HOOK_HH
